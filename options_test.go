package fast

import (
	"context"
	"strings"
	"testing"
	"time"

	"fastmatch/internal/host"
	"fastmatch/ldbc"
)

// TestInvalidCallOptionFailsBeforePlanning: an out-of-range per-call δ must
// fail in option resolution — with a fast:-prefixed error, before the
// engine records a plan-cache miss or occupies a cache slot. The regression:
// the value was only validated deep inside host.Match, after a full
// host.Prepare had been burned and cached for a call that could never run.
func TestInvalidCallOptionFailsBeforePlanning(t *testing.T) {
	eng, err := NewEngine(engineTestGraph(), engineTestOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	q, _ := ldbc.QueryByName("q1")
	for _, delta := range []float64{-0.5, 1.0, 1.5} {
		_, err := eng.MatchContext(context.Background(), q, WithDelta(delta))
		if err == nil {
			t.Fatalf("WithDelta(%v) accepted", delta)
		}
		if !strings.HasPrefix(err.Error(), "fast:") {
			t.Errorf("WithDelta(%v): error %q not fast:-prefixed — validated too deep", delta, err)
		}
	}
	hits, misses := eng.PlanCacheStats()
	if hits != 0 || misses != 0 {
		t.Errorf("invalid calls touched the plan cache: hits=%d misses=%d, want 0/0", hits, misses)
	}
	if eng.CachedPlans() != 0 {
		t.Errorf("invalid calls occupied %d plan-cache slots, want 0", eng.CachedPlans())
	}

	// The package-level entry point fails the same way, before planning.
	if _, err := MatchContext(context.Background(), q, engineTestGraph(), nil, WithDelta(1.5)); err == nil ||
		!strings.HasPrefix(err.Error(), "fast:") {
		t.Errorf("MatchContext WithDelta(1.5): err = %v, want fast:-prefixed error", err)
	}
}

// TestWithLimitZeroOverride mirrors the δ=0 regression test: WithLimit(0)
// must be an explicit override. The regression: callOptions.apply copied
// only limit > 0, so once a default limit sat in the host configuration a
// caller could never lift it back to unlimited.
func TestWithLimitZeroOverride(t *testing.T) {
	// Unit: a pre-set limit (a router/tenant default already applied to the
	// config) is lifted by an explicit WithLimit(0)...
	cfg := host.Config{Limit: 100}
	c, err := resolveCall([]MatchOption{WithLimit(0)})
	if err != nil {
		t.Fatal(err)
	}
	c.apply(&cfg)
	if cfg.Limit != 0 {
		t.Errorf("WithLimit(0): cfg.Limit = %d, want 0 (unlimited)", cfg.Limit)
	}
	// ...while a call that never mentions a limit keeps the default.
	cfg = host.Config{Limit: 100}
	c, err = resolveCall(nil)
	if err != nil {
		t.Fatal(err)
	}
	c.apply(&cfg)
	if cfg.Limit != 100 {
		t.Errorf("no WithLimit: cfg.Limit = %d, want the pre-set 100", cfg.Limit)
	}

	// Merge semantics: laid over a tenant default, the explicit zero wins,
	// and silence keeps the default.
	def, err := resolveCall([]MatchOption{WithLimit(5)})
	if err != nil {
		t.Fatal(err)
	}
	over, err := resolveCall([]MatchOption{WithLimit(0)})
	if err != nil {
		t.Fatal(err)
	}
	if m := over.over(def); !m.limitSet || m.limit != 0 {
		t.Errorf("WithLimit(0) over default: limit=%d set=%v, want 0/true", m.limit, m.limitSet)
	}
	var silent callOptions
	if m := silent.over(def); !m.limitSet || m.limit != 5 {
		t.Errorf("silence over default: limit=%d set=%v, want 5/true", m.limit, m.limitSet)
	}
}

// TestNegativeOptionValuesFailFast: resolveCall validates WithDelta up
// front, and the other numeric options must be symmetric. The regression:
// WithLimit(n<0) was silently normalised to "unlimited" and a negative
// WithTimeout was silently ignored by callContext, so a caller computing a
// remaining budget that went negative got an unbounded call instead of an
// error.
func TestNegativeOptionValuesFailFast(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  MatchOption
	}{
		{"WithLimit(-1)", WithLimit(-1)},
		{"WithTimeout(-1ns)", WithTimeout(-1)},
		{"WithWeight(0)", WithWeight(0)},
		{"WithWeight(-3)", WithWeight(-3)},
	} {
		_, err := resolveCall([]MatchOption{tc.opt})
		if err == nil {
			t.Errorf("%s accepted, want fast:-prefixed validation error", tc.name)
			continue
		}
		if !strings.HasPrefix(err.Error(), "fast:") {
			t.Errorf("%s: error %q not fast:-prefixed", tc.name, err)
		}
	}

	// And like WithDelta, the failure happens before planning: no plan-cache
	// miss, no occupied slot, for a call that can never run.
	eng, err := NewEngine(engineTestGraph(), engineTestOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	q, _ := ldbc.QueryByName("q1")
	if _, err := eng.MatchContext(context.Background(), q, WithLimit(-7)); err == nil {
		t.Error("Engine.MatchContext(WithLimit(-7)) accepted")
	}
	if _, err := eng.MatchContext(context.Background(), q, WithTimeout(-time.Second)); err == nil {
		t.Error("Engine.MatchContext(WithTimeout(-1s)) accepted")
	}
	if hits, misses := eng.PlanCacheStats(); hits != 0 || misses != 0 {
		t.Errorf("invalid calls touched the plan cache: hits=%d misses=%d, want 0/0", hits, misses)
	}
	if eng.CachedPlans() != 0 {
		t.Errorf("invalid calls occupied %d plan-cache slots, want 0", eng.CachedPlans())
	}

	// AddGraph rejects invalid defaults the same way, naming the graph.
	r := NewRouter(RouterOptions{Workers: 1})
	if err := r.AddGraph("t", engineTestGraph(), engineTestOptions(1), WithTimeout(-time.Minute)); err == nil ||
		!strings.HasPrefix(err.Error(), "fast:") {
		t.Errorf("AddGraph with negative default timeout: err = %v, want fast:-prefixed error", err)
	}
}
