package fast

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"fastmatch/graph"
	"fastmatch/ldbc"
)

// cancelTestGraph is big enough that q5 produces real work to interrupt.
func cancelTestGraph() *graph.Graph {
	return ldbc.Generate(ldbc.Config{ScaleFactor: 1, BasePersons: 200, Seed: 7})
}

// cancelTestOptions shrinks the modelled card so CSTs partition into many
// pieces — the pipeline then has many check points between partitions.
func cancelTestOptions(workers int) *Options {
	dev := DefaultDevice()
	dev.BRAMBytes = 64 << 10
	dev.BatchSize = 64
	return &Options{Variant: VariantShare, Device: dev, Workers: workers, PartitionWorkers: workers}
}

// awaitGoroutineBaseline fails the test if the goroutine count does not
// drain back to the pre-test baseline — the "no leaked goroutines"
// acceptance criterion for cancellation.
func awaitGoroutineBaseline(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak after cancellation: %d > baseline %d\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMatchContextExpiredDeadline: an already-expired deadline returns
// promptly — before planning — with context.DeadlineExceeded and a partial
// zero Result, on the heaviest benchmark query.
func TestMatchContextExpiredDeadline(t *testing.T) {
	g := cancelTestGraph()
	q, _ := ldbc.QueryByName("q5")
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res, err := MatchContext(ctx, q, g, cancelTestOptions(2))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if res == nil || !res.Partial {
		t.Fatalf("result = %+v, want non-nil Partial", res)
	}
	if res.Count != 0 || res.Partitions != 0 || res.BuildTime != 0 {
		t.Errorf("expired deadline still did work: %+v", res)
	}
}

// TestMatchContextCancelMidRun cancels a running match from inside its own
// stream callback — guaranteed mid-run — for Workers/PartitionWorkers ∈
// {2, 4}, and asserts a partial result, ErrCanceled, and that every pipeline
// goroutine exits (run under -race in CI).
func TestMatchContextCancelMidRun(t *testing.T) {
	g := cancelTestGraph()
	q, _ := ldbc.QueryByName("q5")
	for _, workers := range []int{2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			base := runtime.NumGoroutine()
			eng, err := NewEngine(g, cancelTestOptions(workers))
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var seen atomic.Int64
			res, err := eng.MatchStream(ctx, q, func(graph.Embedding) error {
				if seen.Add(1) == 10 {
					cancel()
				}
				return nil
			})
			if !errors.Is(err, ErrCanceled) {
				t.Fatalf("err = %v, want ErrCanceled", err)
			}
			if res == nil || !res.Partial {
				t.Fatalf("result = %+v, want partial", res)
			}
			if res.Count < 10 {
				t.Errorf("Count = %d, want >= 10 (embeddings seen before cancel)", res.Count)
			}
			awaitGoroutineBaseline(t, base)
		})
	}
}

// TestMatchContextCompletedThenCancelled: a call whose work finished before
// the context fired keeps its full counts and reports no error.
func TestMatchContextCompletedThenCancelled(t *testing.T) {
	g := engineTestGraph()
	q, _ := ldbc.QueryByName("q2")
	want, err := Match(q, g, engineTestOptions(0))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	res, err := MatchContext(ctx, q, g, engineTestOptions(2))
	cancel()
	if err != nil {
		t.Fatalf("completed call returned %v", err)
	}
	if res.Partial {
		t.Error("completed call reported Partial")
	}
	if res.Count != want.Count {
		t.Errorf("Count = %d, want %d", res.Count, want.Count)
	}
}

// TestWithLimitDeterminism: limit ≥ total keeps counts byte-identical to
// the unbounded run, and limit < total yields exactly limit embeddings —
// both regardless of Workers/PartitionWorkers.
func TestWithLimitDeterminism(t *testing.T) {
	g := engineTestGraph()
	q, _ := ldbc.QueryByName("q5")
	want, err := Match(q, g, engineTestOptions(0))
	if err != nil {
		t.Fatal(err)
	}
	if want.Count < 20 {
		t.Skipf("q5 count %d too small to exercise limits", want.Count)
	}
	under := want.Count / 2
	for _, workers := range []int{1, 2, 4} {
		eng, err := NewEngine(g, engineTestOptions(workers))
		if err != nil {
			t.Fatal(err)
		}
		for _, tc := range []struct {
			limit       int64
			wantCount   int64
			wantPartial bool
		}{
			{want.Count, want.Count, false},
			{want.Count + 10, want.Count, false},
			{under, under, true},
		} {
			res, err := eng.MatchContext(context.Background(), q, WithLimit(tc.limit))
			if err != nil {
				t.Fatalf("workers=%d limit=%d: %v", workers, tc.limit, err)
			}
			if res.Count != tc.wantCount {
				t.Errorf("workers=%d limit=%d: Count = %d, want %d", workers, tc.limit, res.Count, tc.wantCount)
			}
			if res.Partial != tc.wantPartial {
				t.Errorf("workers=%d limit=%d: Partial = %v, want %v", workers, tc.limit, res.Partial, tc.wantPartial)
			}
		}
	}
}

// TestWithLimitCollect: a limited collecting call materialises exactly the
// counted embeddings, all valid.
func TestWithLimitCollect(t *testing.T) {
	g := engineTestGraph()
	q, _ := ldbc.QueryByName("q2")
	res, err := MatchContext(context.Background(), q, g, engineTestOptions(0),
		WithLimit(25), WithCollect(true))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(res.Embeddings)) != res.Count {
		t.Fatalf("collected %d embeddings, counted %d", len(res.Embeddings), res.Count)
	}
	for _, e := range res.Embeddings {
		if err := graph.VerifyEmbedding(q, g, e); err != nil {
			t.Fatalf("invalid embedding: %v", err)
		}
	}
}

// TestMatchStream: the stream sees every embedding exactly once (count
// parity with the unbounded match), calls are serialized, and a callback
// error stops enumeration with a partial result.
func TestMatchStream(t *testing.T) {
	g := engineTestGraph()
	q, _ := ldbc.QueryByName("q2")
	want, err := Match(q, g, engineTestOptions(0))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(g, engineTestOptions(4))
	if err != nil {
		t.Fatal(err)
	}

	var streamed, inFlight, overlaps atomic.Int64
	res, err := eng.MatchStream(context.Background(), q, func(e graph.Embedding) error {
		if inFlight.Add(1) != 1 {
			overlaps.Add(1)
		}
		defer inFlight.Add(-1)
		if err := graph.VerifyEmbedding(q, g, e); err != nil {
			return err
		}
		streamed.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if overlaps.Load() != 0 {
		t.Errorf("emit callback ran concurrently %d times", overlaps.Load())
	}
	if res.Count != want.Count || streamed.Load() != want.Count {
		t.Errorf("stream count %d / result %d, want %d", streamed.Load(), res.Count, want.Count)
	}
	if res.Partial {
		t.Error("full stream reported Partial")
	}

	// Early stop: the callback's error comes back with a partial result.
	sentinel := errors.New("stop right there")
	var n atomic.Int64
	res, err = eng.MatchStream(context.Background(), q, func(graph.Embedding) error {
		if n.Add(1) >= 10 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the callback's sentinel", err)
	}
	if res == nil || !res.Partial {
		t.Fatalf("result = %+v, want partial", res)
	}
	if eng2, _ := NewEngine(g, engineTestOptions(1)); eng2 != nil {
		if _, err := eng2.MatchStream(context.Background(), q, nil); err == nil {
			t.Error("nil emit callback accepted")
		}
	}
}

// TestWithDeltaZero: the δ = 0 override must actually apply — the
// regression where a documented "δ >= 0 applies" zero was silently ignored
// because the plumbing tested δ > 0.
func TestWithDeltaZero(t *testing.T) {
	g := testGraph()
	q, _ := ldbc.QueryByName("q7")
	dev := DefaultDevice()
	dev.BRAMBytes = 1 << 16
	dev.BatchSize = 64
	opts := &Options{Variant: VariantShare, Device: dev}
	ref, err := Match(q, g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Partitions < 2 || ref.CPUPartitions == 0 {
		t.Skipf("workload too small to exercise δ: %d partitions, %d CPU", ref.Partitions, ref.CPUPartitions)
	}
	// Per-call override.
	res, err := MatchContext(context.Background(), q, g, opts, WithDelta(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.CPUPartitions != 0 {
		t.Errorf("WithDelta(0): %d partitions still went to the CPU", res.CPUPartitions)
	}
	if res.Count != ref.Count {
		t.Errorf("WithDelta(0) changed the count: %d vs %d", res.Count, ref.Count)
	}
	// Legacy struct override.
	res, err = Match(q, g, &Options{Variant: VariantShare, Device: dev, Delta: 0, DeltaSet: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.CPUPartitions != 0 {
		t.Errorf("Options.DeltaSet zero: %d partitions still went to the CPU", res.CPUPartitions)
	}
	// And without DeltaSet the zero still means "variant default".
	res, err = Match(q, g, &Options{Variant: VariantShare, Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	if res.CPUPartitions == 0 {
		t.Error("unset delta no longer falls back to the VariantShare default")
	}
	// An out-of-range per-call δ fails cleanly.
	if _, err := MatchContext(context.Background(), q, g, opts, WithDelta(1.5)); err == nil {
		t.Error("WithDelta(1.5) accepted")
	}
}

// TestMatchBatchContextAggregateErrors: every per-query failure is
// reported, wrapped with its index, lowest index first, and errors.Is sees
// each underlying cause.
func TestMatchBatchContextAggregateErrors(t *testing.T) {
	g := engineTestGraph()
	eng, err := NewEngine(g, engineTestOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	q1, _ := ldbc.QueryByName("q1")
	results, err := eng.MatchBatchContext(context.Background(), []*graph.Query{q1, nil, nil})
	if err == nil {
		t.Fatal("batch with nil queries returned no error")
	}
	if results[0] == nil || results[0].Count <= 0 {
		t.Error("healthy query did not run to completion")
	}
	if !strings.HasPrefix(err.Error(), "fast: MatchBatch query 1") {
		t.Errorf("lowest-index failure not first: %q", err.Error())
	}
	if got := strings.Count(err.Error(), "fast: MatchBatch query"); got != 2 {
		t.Errorf("aggregate reports %d failures, want 2:\n%s", got, err.Error())
	}
}

// TestMatchBatchContextCancel cancels a batch mid-flight and asserts the
// call returns, reports the cancellation, and leaks no goroutines.
func TestMatchBatchContextCancel(t *testing.T) {
	g := cancelTestGraph()
	base := runtime.NumGoroutine()
	eng, err := NewEngine(g, cancelTestOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	q5, _ := ldbc.QueryByName("q5")
	qs := make([]*graph.Query, 12)
	for i := range qs {
		qs[i] = q5
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		// Cancel as soon as the first embedding proves the batch is truly
		// mid-flight.
		_, _ = eng.MatchStream(context.Background(), q5, func(graph.Embedding) error {
			return errors.New("probe done")
		})
		cancel()
		close(done)
	}()
	results, err := eng.MatchBatchContext(ctx, qs)
	<-done
	if err == nil {
		// The batch may legitimately win the race on a fast machine; the
		// full counts must then all be present.
		for i, r := range results {
			if r == nil || r.Partial {
				t.Errorf("uncancelled batch entry %d incomplete: %+v", i, r)
			}
		}
	} else if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled in the aggregate", err)
	}
	awaitGoroutineBaseline(t, base)
}

// TestMatchBatchContextCancelledSkipsSubmission: once ctx has fired, batch
// submission short-circuits — unstarted queries are never scheduled (no
// goroutine per query, and their query pointers are never even inspected);
// their slots fill with a partial zero Result and ErrCanceled. The
// regression: a cancelled 10k-query batch still acquired the semaphore and
// spawned one no-op goroutine per query, each of which looked at the query
// first — so a nil entry in a cancelled batch surfaced a "nil query" error
// instead of the cancellation.
func TestMatchBatchContextCancelledSkipsSubmission(t *testing.T) {
	g := engineTestGraph()
	base := runtime.NumGoroutine()
	eng, err := NewEngine(g, engineTestOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	q1, _ := ldbc.QueryByName("q1")
	qs := make([]*graph.Query, 10_000)
	for i := range qs {
		qs[i] = q1
	}
	// The nil entry is the submission sentinel: only a goroutine that was
	// actually scheduled would trip over it.
	qs[5000] = nil

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := eng.MatchBatchContext(ctx, qs)
	if err == nil {
		t.Fatal("cancelled batch returned no error")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if strings.Contains(err.Error(), "nil query") {
		t.Error("cancelled batch still submitted queries: nil entry was inspected")
	}
	if len(results) != len(qs) {
		t.Fatalf("got %d results, want %d", len(results), len(qs))
	}
	for i, res := range results {
		if res == nil || !res.Partial || res.Count != 0 {
			t.Fatalf("results[%d] = %+v, want partial zero Result", i, res)
		}
	}
	// Nothing was scheduled, so nothing can linger.
	awaitGoroutineBaseline(t, base)
}

// TestMatchTimeoutOption: WithTimeout bounds a call's wall clock; the
// partial result surfaces context.DeadlineExceeded.
func TestMatchTimeoutOption(t *testing.T) {
	g := cancelTestGraph()
	q, _ := ldbc.QueryByName("q5")
	eng, err := NewEngine(g, cancelTestOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.MatchContext(context.Background(), q, WithTimeout(time.Nanosecond))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if res == nil || !res.Partial {
		t.Fatalf("result = %+v, want partial", res)
	}
}
