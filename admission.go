package fast

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Admission errors. The Router wraps them with the method and graph name,
// so errors.Is identifies the shed reason regardless of the message — and
// the HTTP front end maps them to machine-readable reasons (429/504).
var (
	// ErrQueueFull reports a call shed immediately because the tenant's
	// bounded admission queue was full. Nothing ran; no Result is returned.
	ErrQueueFull = errors.New("admission queue full")
	// ErrDeadlineDoomed reports a call shed immediately because its
	// deadline minus the estimated queue wait could not cover the tenant's
	// observed p50 service time — queueing it would only burn queue slots
	// on work guaranteed to time out. Errors wrapping it also match
	// context.DeadlineExceeded, so deadline-sensitive callers need no new
	// case.
	ErrDeadlineDoomed = errors.New("deadline cannot survive admission queue")
	// ErrQueueTimeout reports a call whose context fired while it waited in
	// the admission queue: it was admitted to the queue but never to the
	// budget. Errors wrapping it also wrap the context's own error
	// (context.DeadlineExceeded or context.Canceled), and the call returns
	// a zero partial Result, the same shape a cut-short running call has.
	ErrQueueTimeout = errors.New("deadline expired while queued for admission")
)

// DefaultMaxQueue is the per-tenant admission-queue bound a Router uses
// when RouterOptions.MaxQueue is 0.
const DefaultMaxQueue = 64

// latencyHistBuckets spans 1µs (bucket 0) to ~2^39µs ≈ 6 days (top
// bucket), log₂-spaced — coarse, but p50/p99 only steer shedding and
// dashboards, not billing.
const latencyHistBuckets = 40

// latencyHist is a fixed-size log₂-bucketed latency histogram. observe is
// lock-free (atomic adds), so the serving path never serialises on
// observability; quantiles are read as the upper bound of the bucket the
// rank falls in.
type latencyHist struct {
	count   atomic.Int64
	buckets [latencyHistBuckets]atomic.Int64
}

// bucketFor maps a duration to its bucket: i holds [2^(i-1), 2^i) µs, with
// sub-µs durations in bucket 0.
func bucketFor(d time.Duration) int {
	us := d.Microseconds()
	if us <= 0 {
		return 0
	}
	i := bits.Len64(uint64(us))
	if i >= latencyHistBuckets {
		i = latencyHistBuckets - 1
	}
	return i
}

func (h *latencyHist) observe(d time.Duration) {
	h.buckets[bucketFor(d)].Add(1)
	h.count.Add(1)
}

// bucketUpper is the inclusive upper bound reported for bucket i: 2^i µs.
func bucketUpper(i int) time.Duration {
	return time.Duration(int64(1)<<uint(i)) * time.Microsecond
}

// quantile returns the upper bound of the bucket containing the q-quantile
// (0 < q <= 1), or 0 when nothing has been observed.
func (h *latencyHist) quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < latencyHistBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(latencyHistBuckets - 1)
}

// admitter is the Router's admission controller: a weighted token
// dispenser sized to the shared worker budget, with one bounded FIFO queue
// per tenant and deadline-aware shedding. It sits in front of the engines'
// kernel pool — one grant admits one routed call, which then draws its
// kernel tokens from the untouched `pool` channel — replacing the
// symmetric first-come pool queue with explicit, observable admission.
//
// Fairness rule: tenant i's share is max(1, capacity·wᵢ/Σw). A tenant
// below its share is always grantable while capacity remains; a tenant at
// or over its share may borrow idle capacity only while no other tenant is
// waiting, and on every release the freed slot goes to the queued tenant
// with the largest share deficit — so a heavy tenant can use an idle
// budget but can never hold a light tenant below its share.
type admitter struct {
	capacity int
	maxQueue int

	mu      sync.Mutex
	total   int // outstanding grants across all tenants
	tenants map[string]*admTenant
}

// admTenant is one graph's admission state. It survives SwapGraph (same
// name, same tenant) and is replaced by RemoveGraph+AddGraph, mirroring
// the Router's counters semantics.
type admTenant struct {
	name     string
	weight   int
	inflight int
	queue    []*admWaiter

	admitted      int64
	shedQueueFull int64
	shedDoomed    int64
	queueTimeouts int64

	// estP50 is an exponentially-weighted estimate of service time (weight
	// 1/ewmaWeight per observation), updated on release under the admitter
	// lock. The doomed check reads it instead of the histogram's whole-life
	// median: the histogram never forgets, so one slow early phase would keep
	// shedding long after the workload turned fast — the EWMA tracks the
	// current regime. 0 means no history yet.
	estP50 time.Duration

	hist latencyHist
}

// ewmaWeight is the inverse weight of each new observation in estP50: the
// estimate moves 1/ewmaWeight of the way to each observed service time, so
// ~ewmaWeight·3 observations retire an old regime almost entirely.
const ewmaWeight = 5

// admWaiter is one queued call. ready closes exactly once: with grant set
// (admitted) or err set (tenant removed). A waiter that gives up removes
// itself from the queue under the admitter lock, so grant/give-up cannot
// race into a lost token.
type admWaiter struct {
	ready chan struct{}
	grant *admGrant
	err   error
}

// admGrant is one admitted call's token; release returns it and records
// the observed service time into the tenant's histogram.
type admGrant struct {
	t     *admTenant
	start time.Time
}

func newAdmitter(capacity, maxQueue int) *admitter {
	if capacity < 1 {
		capacity = 1
	}
	switch {
	case maxQueue == 0:
		maxQueue = DefaultMaxQueue
	case maxQueue < 0:
		maxQueue = 0 // explicit "no queue": shed whenever a grant isn't immediate
	}
	return &admitter{
		capacity: capacity,
		maxQueue: maxQueue,
		tenants:  make(map[string]*admTenant),
	}
}

// register installs a fresh tenant under name with the given weight
// (clamped to >= 1). Callers serialise registry mutation (Router.mu).
func (a *admitter) register(name string, weight int) {
	if weight < 1 {
		weight = 1
	}
	a.mu.Lock()
	a.tenants[name] = &admTenant{name: name, weight: weight}
	a.mu.Unlock()
}

// unregister removes name's tenant and fails its queued waiters with
// ErrUnknownGraph. Grants still in flight stay valid — their release finds
// the tenant struct through the grant, not the map.
func (a *admitter) unregister(name string) {
	a.mu.Lock()
	t, ok := a.tenants[name]
	if !ok {
		a.mu.Unlock()
		return
	}
	delete(a.tenants, name)
	waiters := t.queue
	t.queue = nil
	for _, w := range waiters {
		w.err = ErrUnknownGraph
		close(w.ready)
	}
	// The departed tenant's share redistributes; someone else may now admit.
	a.grantLocked()
	a.mu.Unlock()
}

// share is tenant t's guaranteed slot count: max(1, capacity·w/Σw).
// Called with a.mu held.
func (a *admitter) share(t *admTenant) int {
	sum := 0
	for _, o := range a.tenants {
		sum += o.weight
	}
	if sum <= 0 {
		return 1
	}
	s := a.capacity * t.weight / sum
	if s < 1 {
		s = 1
	}
	return s
}

// canGrant reports whether a new arrival for t may take a slot right now.
// Called with a.mu held.
func (a *admitter) canGrant(t *admTenant) bool {
	if a.total >= a.capacity {
		return false
	}
	if len(t.queue) > 0 {
		return false // FIFO within the tenant: no jumping its own queue
	}
	if t.inflight < a.share(t) {
		return true
	}
	// At or over its share: borrow idle capacity only while nobody waits.
	for _, o := range a.tenants {
		if o != t && len(o.queue) > 0 {
			return false
		}
	}
	return true
}

// grantLocked hands freed capacity to queued waiters, largest share
// deficit first (ties broken by name for determinism). Called with a.mu
// held, after anything that frees capacity or changes shares.
func (a *admitter) grantLocked() {
	for a.total < a.capacity {
		var best *admTenant
		bestDef := math.MinInt
		for _, t := range a.tenants {
			if len(t.queue) == 0 {
				continue
			}
			def := a.share(t) - t.inflight
			if best == nil || def > bestDef || (def == bestDef && t.name < best.name) {
				best, bestDef = t, def
			}
		}
		if best == nil {
			return
		}
		w := best.queue[0]
		best.queue = best.queue[1:]
		best.inflight++
		a.total++
		best.admitted++
		w.grant = &admGrant{t: best, start: time.Now()}
		close(w.ready)
	}
}

// admit asks for one call's budget grant for tenant name. The ctx must
// already carry the call's effective deadline (the Router applies
// WithTimeout before admitting, so queue time burns the caller's budget,
// not a fresh one). It returns immediately with a grant when the tenant's
// share allows it; otherwise it sheds (ErrQueueFull, ErrDeadlineDoomed) or
// queues until granted, the tenant disappears, or ctx fires
// (ErrQueueTimeout wrapping the context's error).
func (a *admitter) admit(ctx context.Context, name string) (*admGrant, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	a.mu.Lock()
	t, ok := a.tenants[name]
	if !ok {
		a.mu.Unlock()
		return nil, ErrUnknownGraph
	}
	if a.canGrant(t) {
		t.inflight++
		a.total++
		t.admitted++
		a.mu.Unlock()
		return &admGrant{t: t, start: time.Now()}, nil
	}
	// The call must wait. Shed instead when the queue is full…
	if len(t.queue) >= a.maxQueue {
		t.shedQueueFull++
		a.mu.Unlock()
		return nil, ErrQueueFull
	}
	// …or when its deadline is already doomed: the tenant drains roughly
	// share slots per typical service period, so a request entering behind
	// len(queue) waiters expects ~(len+1)·p50/share of queue wait and then
	// ~p50 of service. The period is the recency-weighted estP50, not the
	// histogram median — see admTenant.estP50. A fresh tenant (no history
	// yet) never sheds on this estimate — it has nothing to estimate with.
	if deadline, hasDeadline := ctx.Deadline(); hasDeadline {
		if p50 := t.estP50; p50 > 0 {
			wait := time.Duration(len(t.queue)+1) * p50 / time.Duration(a.share(t))
			if time.Until(deadline) < wait+p50 {
				t.shedDoomed++
				a.mu.Unlock()
				return nil, fmt.Errorf("%w (%w)", ErrDeadlineDoomed, context.DeadlineExceeded)
			}
		}
	}
	w := &admWaiter{ready: make(chan struct{})}
	t.queue = append(t.queue, w)
	a.mu.Unlock()

	select {
	case <-w.ready:
		if w.err != nil {
			return nil, w.err
		}
		return w.grant, nil
	case <-ctx.Done():
	}
	// ctx fired while queued. The grant may have landed concurrently: if the
	// waiter already left the queue, honor whatever it was handed (the
	// engine will observe the fired ctx immediately anyway).
	a.mu.Lock()
	for i, o := range t.queue {
		if o == w {
			t.queue = append(t.queue[:i], t.queue[i+1:]...)
			t.queueTimeouts++
			a.mu.Unlock()
			return nil, fmt.Errorf("%w (%w)", ErrQueueTimeout, ctx.Err())
		}
	}
	a.mu.Unlock()
	<-w.ready // off the queue: the verdict is committed and ready is closed
	if w.err != nil {
		return nil, w.err
	}
	return w.grant, nil
}

// release returns a grant, records the call's service time (histogram for
// reporting, EWMA for the doomed estimate) and wakes the neediest waiter.
func (a *admitter) release(g *admGrant) {
	obs := time.Since(g.start)
	g.t.hist.observe(obs)
	a.mu.Lock()
	if g.t.estP50 == 0 {
		g.t.estP50 = obs
	} else {
		g.t.estP50 += (obs - g.t.estP50) / ewmaWeight
	}
	g.t.inflight--
	a.total--
	a.grantLocked()
	a.mu.Unlock()
}

// admissionStats is one tenant's admission snapshot, folded into
// GraphStats by Router.Stats.
type admissionStats struct {
	weight        int
	queueDepth    int
	admitted      int64
	shedQueueFull int64
	shedDoomed    int64
	queueTimeouts int64
	p50, p99      time.Duration
}

// stats snapshots tenant name's admission state; ok is false when the
// tenant is not registered.
func (a *admitter) stats(name string) (admissionStats, bool) {
	a.mu.Lock()
	t, ok := a.tenants[name]
	if !ok {
		a.mu.Unlock()
		return admissionStats{}, false
	}
	s := admissionStats{
		weight:        t.weight,
		queueDepth:    len(t.queue),
		admitted:      t.admitted,
		shedQueueFull: t.shedQueueFull,
		shedDoomed:    t.shedDoomed,
		queueTimeouts: t.queueTimeouts,
	}
	a.mu.Unlock()
	// Quantiles read atomics; no need to hold the admission lock.
	s.p50 = t.hist.quantile(0.50)
	s.p99 = t.hist.quantile(0.99)
	return s, true
}
