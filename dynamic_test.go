package fast

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"fastmatch/graph"
	"fastmatch/ldbc"
)

// deltaOracle applies d to g at the graph layer and returns the post-delta
// snapshot, failing the test on error.
func deltaOracle(t *testing.T, g *graph.Graph, d graph.Delta) *graph.Graph {
	t.Helper()
	g2, _, err := g.ApplyDelta(d)
	if err != nil {
		t.Fatalf("oracle ApplyDelta: %v", err)
	}
	return g2
}

// fullMatchSet streams every embedding of q on the router's current epoch
// of name and returns them keyed by Embedding.Key.
func fullMatchSet(t *testing.T, r *Router, name string, q *graph.Query) map[string]bool {
	t.Helper()
	set := make(map[string]bool)
	_, err := r.MatchStream(context.Background(), name, q, func(em graph.Embedding) error {
		set[em.Key()] = true
		return nil
	})
	if err != nil {
		t.Fatalf("MatchStream: %v", err)
	}
	return set
}

// TestDeltaRouterApply: a committed batch advances the epoch, updates the
// serving counts to the post-delta graph, and shows up in Stats; invalid
// batches and unknown graphs leave everything untouched.
func TestDeltaRouterApply(t *testing.T) {
	gA, _ := routerTestGraphs()
	r := NewRouter(RouterOptions{Workers: 2, Engine: engineTestOptions(2)})
	if err := r.AddGraph("a", gA, nil); err != nil {
		t.Fatal(err)
	}
	q, err := ldbc.QueryByName("q1")
	if err != nil {
		t.Fatal(err)
	}

	// Connect a fresh vertex into the graph and drop one edge.
	n := graph.VertexID(gA.NumVertices())
	d := graph.Delta{
		AddVertices: []graph.Label{gA.Label(0)},
		AddEdges:    [][2]graph.VertexID{{n, 1}, {n, 2}},
		DelEdges:    [][2]graph.VertexID{{0, gA.Neighbors(0)[0]}},
	}
	want := deltaOracle(t, gA, d)

	res, err := r.ApplyDelta("a", d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 1 || res.Vertices != want.LiveVertices() || res.Edges != want.NumEdges() {
		t.Fatalf("DeltaResult = %+v, want epoch 1, %d vertices, %d edges", res, want.LiveVertices(), want.NumEdges())
	}
	if res.Touched == 0 {
		t.Fatal("DeltaResult.Touched = 0 for a non-empty batch")
	}

	got, err := r.MatchContext(context.Background(), "a", q)
	if err != nil {
		t.Fatal(err)
	}
	if wantCount := routerWant(t, q, want); got.Count != wantCount {
		t.Fatalf("post-delta count %d, want %d", got.Count, wantCount)
	}

	st := r.Stats()["a"]
	if st.Epoch != 1 || st.Deltas != 1 {
		t.Fatalf("Stats = epoch %d deltas %d, want 1/1", st.Epoch, st.Deltas)
	}

	// Unknown graph.
	if _, err := r.ApplyDelta("nope", graph.Delta{}); !errors.Is(err, ErrUnknownGraph) {
		t.Fatalf("unknown graph: err = %v, want ErrUnknownGraph", err)
	}
	// Invalid batch (self loop): no new epoch.
	if _, err := r.ApplyDelta("a", graph.Delta{AddEdges: [][2]graph.VertexID{{3, 3}}}); err == nil {
		t.Fatal("self-loop batch: want error")
	}
	if st := r.Stats()["a"]; st.Epoch != 1 || st.Deltas != 1 {
		t.Fatalf("failed batch moved state: %+v", st)
	}
}

// TestDeltaPlanSeeded: a label-preserving batch carries the warm plan cache
// into the new epoch as seeds (and the seeded plans still count correctly);
// a batch that widens the label alphabet invalidates it instead.
func TestDeltaPlanSeeded(t *testing.T) {
	gA, _ := routerTestGraphs()
	r := NewRouter(RouterOptions{Workers: 2, Engine: engineTestOptions(2)})
	if err := r.AddGraph("a", gA, nil); err != nil {
		t.Fatal(err)
	}
	// Warm the plan cache.
	for _, name := range []string{"q1", "q2"} {
		q, err := ldbc.QueryByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.MatchContext(context.Background(), "a", q); err != nil {
			t.Fatal(err)
		}
	}

	d := graph.Delta{AddEdges: [][2]graph.VertexID{{0, 50}}}
	if gA.HasEdge(0, 50) {
		d.AddEdges = [][2]graph.VertexID{{0, 51}}
	}
	want := deltaOracle(t, gA, d)
	res, err := r.ApplyDelta("a", d)
	if err != nil {
		t.Fatal(err)
	}
	if !res.PlanSeeded {
		t.Fatal("label-preserving delta over a warm cache: PlanSeeded = false")
	}
	for _, name := range []string{"q1", "q2"} {
		q, err := ldbc.QueryByName(name)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.MatchContext(context.Background(), "a", q)
		if err != nil {
			t.Fatal(err)
		}
		if wantCount := routerWant(t, q, want); got.Count != wantCount {
			t.Fatalf("%s: seeded-plan count %d, want %d", name, got.Count, wantCount)
		}
	}

	// Widening the label alphabet must not carry plans.
	g2 := r.Stats()["a"]
	_ = g2
	newLabel := graph.Label(want.NumLabels())
	res, err = r.ApplyDelta("a", graph.Delta{AddVertices: []graph.Label{newLabel}})
	if err != nil {
		t.Fatal(err)
	}
	if res.PlanSeeded {
		t.Fatal("label-widening delta: PlanSeeded = true, want false")
	}
}

// TestDeltaSwapRace: a SwapGraph interleaving between delta computation and
// commit must win — the delta is dropped with ErrGraphSwapped and the
// swapped-in graph serves, at a reset epoch. Fails without the commit-time
// snapshot check in Router.ApplyDelta.
func TestDeltaSwapRace(t *testing.T) {
	gA, gB := routerTestGraphs()
	r := NewRouter(RouterOptions{Workers: 2, Engine: engineTestOptions(2)})
	if err := r.AddGraph("a", gA, nil); err != nil {
		t.Fatal(err)
	}
	applyDeltaCommitHook = func() {
		if err := r.SwapGraph("a", gB); err != nil {
			t.Errorf("SwapGraph in hook: %v", err)
		}
	}
	defer func() { applyDeltaCommitHook = nil }()

	_, err := r.ApplyDelta("a", graph.Delta{AddVertices: []graph.Label{0}})
	if !errors.Is(err, ErrGraphSwapped) {
		t.Fatalf("ApplyDelta racing SwapGraph: err = %v, want ErrGraphSwapped", err)
	}
	applyDeltaCommitHook = nil

	q, err := ldbc.QueryByName("q1")
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.MatchContext(context.Background(), "a", q)
	if err != nil {
		t.Fatal(err)
	}
	if want := routerWant(t, q, gB); got.Count != want {
		t.Fatalf("post-swap count %d, want gB's %d — stale delta lineage served", got.Count, want)
	}
	if st := r.Stats()["a"]; st.Epoch != 0 || st.Deltas != 0 {
		t.Fatalf("post-swap Stats = epoch %d deltas %d, want 0/0", st.Epoch, st.Deltas)
	}
}

// TestDeltaRaceInflightMatchStream: a stream admitted before ApplyDelta is
// pinned to its epoch — its final count must be the pre-delta count even
// though the batch commits (and changes the answer) mid-stream.
func TestDeltaRaceInflightMatchStream(t *testing.T) {
	gA, _ := routerTestGraphs()
	r := NewRouter(RouterOptions{Workers: 2, Engine: engineTestOptions(2)})
	if err := r.AddGraph("a", gA, nil); err != nil {
		t.Fatal(err)
	}
	q, err := ldbc.QueryByName("q1")
	if err != nil {
		t.Fatal(err)
	}
	wantOld := routerWant(t, q, gA)

	// Delete a matched vertex so the post-delta answer provably differs.
	var victim graph.VertexID
	found := false
	if _, err := r.MatchStream(context.Background(), "a", q, func(em graph.Embedding) error {
		victim, found = em[0], true
		return errStopEnum
	}); err != nil && !errors.Is(err, errStopEnum) {
		t.Fatal(err)
	}
	if !found {
		t.Skip("q1 has no matches on this graph")
	}
	d := graph.Delta{DelVertices: []graph.VertexID{victim}}
	wantNew := routerWant(t, q, deltaOracle(t, gA, d))
	if wantNew == wantOld {
		t.Fatalf("victim delete did not change the count (%d)", wantOld)
	}

	started := make(chan struct{})
	applied := make(chan struct{})
	var once sync.Once
	var streamed int64
	done := make(chan error, 1)
	go func() {
		res, err := r.MatchStream(context.Background(), "a", q, func(em graph.Embedding) error {
			once.Do(func() { close(started) })
			<-applied // hold the stream open across the delta commit
			return nil
		})
		if res != nil {
			streamed = res.Count
		}
		done <- err
	}()

	<-started
	if _, err := r.ApplyDelta("a", d); err != nil {
		t.Fatal(err)
	}
	close(applied)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if streamed != wantOld {
		t.Fatalf("in-flight stream counted %d, want pinned-epoch %d", streamed, wantOld)
	}
	got, err := r.MatchContext(context.Background(), "a", q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count != wantNew {
		t.Fatalf("post-delta count %d, want %d", got.Count, wantNew)
	}
}

var errStopEnum = errors.New("stop")

// randomSingleBatch builds one small valid batch against mirror: connect a
// new vertex, delete a vertex, add an edge, or delete an edge.
func randomSingleBatch(rng *rand.Rand, mirror *graph.Graph) graph.Delta {
	live := make([]graph.VertexID, 0, mirror.NumVertices())
	for v := 0; v < mirror.NumVertices(); v++ {
		if !mirror.Deleted(graph.VertexID(v)) {
			live = append(live, graph.VertexID(v))
		}
	}
	pick := func() graph.VertexID { return live[rng.Intn(len(live))] }
	for {
		switch rng.Intn(4) {
		case 0: // new vertex wired to 1–3 live vertices
			n := graph.VertexID(mirror.NumVertices())
			d := graph.Delta{AddVertices: []graph.Label{graph.Label(rng.Intn(mirror.NumLabels()))}}
			seen := map[graph.VertexID]bool{}
			for i := 0; i < 1+rng.Intn(3); i++ {
				w := pick()
				if !seen[w] {
					seen[w] = true
					d.AddEdges = append(d.AddEdges, [2]graph.VertexID{n, w})
				}
			}
			return d
		case 1: // tombstone a vertex (keep most of the graph alive)
			if len(live) < mirror.NumVertices()/2 {
				continue
			}
			return graph.Delta{DelVertices: []graph.VertexID{pick()}}
		case 2: // add a missing edge
			for tries := 0; tries < 20; tries++ {
				u, w := pick(), pick()
				if u != w && !mirror.HasEdge(u, w) {
					return graph.Delta{AddEdges: [][2]graph.VertexID{{u, w}}}
				}
			}
		case 3: // delete an existing edge
			for tries := 0; tries < 20; tries++ {
				u := pick()
				if nbrs := mirror.Neighbors(u); len(nbrs) > 0 {
					return graph.Delta{DelEdges: [][2]graph.VertexID{{u, nbrs[rng.Intn(len(nbrs))]}}}
				}
			}
		}
	}
}

// TestSubscribeMatchDeltaOracle: over a random mutation sequence, every
// MatchDelta a standing query receives must equal the set difference of
// full re-matches on the two epochs it spans, with epochs delivered
// strictly in order and every batch producing exactly one notification.
func TestSubscribeMatchDeltaOracle(t *testing.T) {
	gA := ldbc.Generate(ldbc.Config{ScaleFactor: 1, BasePersons: 60, Seed: 21})
	r := NewRouter(RouterOptions{Workers: 2, Engine: engineTestOptions(2)})
	if err := r.AddGraph("a", gA, nil); err != nil {
		t.Fatal(err)
	}
	q, err := ldbc.QueryByName("q1")
	if err != nil {
		t.Fatal(err)
	}

	mds := make(chan MatchDelta, 256)
	sub, err := r.Subscribe(context.Background(), "a", q, func(md MatchDelta) error {
		mds <- md
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if sub.Epoch() != 0 || sub.Graph() != "a" || sub.Query() != q {
		t.Fatalf("subscription registration state wrong: epoch %d graph %q", sub.Epoch(), sub.Graph())
	}

	rng := rand.New(rand.NewSource(99))
	mirror := gA
	const steps = 20
	for step := 1; step <= steps; step++ {
		before := fullMatchSet(t, r, "a", q)
		d := randomSingleBatch(rng, mirror)
		mirror = deltaOracle(t, mirror, d)
		res, err := r.ApplyDelta("a", d)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if res.Notified != 1 {
			t.Fatalf("step %d: Notified = %d, want 1", step, res.Notified)
		}
		after := fullMatchSet(t, r, "a", q)

		var md MatchDelta
		select {
		case md = <-mds:
		case <-time.After(10 * time.Second):
			t.Fatalf("step %d: no MatchDelta delivered", step)
		}
		if md.Epoch != uint64(step) {
			t.Fatalf("step %d: MatchDelta.Epoch = %d", step, md.Epoch)
		}
		wantAdd := diffKeys(after, before)
		wantDel := diffKeys(before, after)
		gotAdd := embeddingKeys(md.Added)
		gotDel := embeddingKeys(md.Removed)
		if !sameKeySet(gotAdd, wantAdd) || !sameKeySet(gotDel, wantDel) {
			t.Fatalf("step %d epoch %d: MatchDelta mismatch\n added   %v\n want    %v\n removed %v\n want    %v",
				step, md.Epoch, keys(gotAdd), keys(wantAdd), keys(gotDel), keys(wantDel))
		}
	}

	st := r.Stats()["a"]
	if st.Subscriptions != 1 || st.Notifications != steps || st.Deltas != steps {
		t.Fatalf("Stats = %+v, want 1 subscription, %d notifications/deltas", st, steps)
	}

	sub.Close()
	if err := sub.Wait(); !errors.Is(err, ErrSubscriptionClosed) {
		t.Fatalf("Wait after Close: %v, want ErrSubscriptionClosed", err)
	}
	if st := r.Stats()["a"]; st.Subscriptions != 0 {
		t.Fatalf("closed subscription still registered: %+v", st)
	}
}

func diffKeys(a, b map[string]bool) map[string]bool {
	out := make(map[string]bool)
	for k := range a {
		if !b[k] {
			out[k] = true
		}
	}
	return out
}

func embeddingKeys(ems []graph.Embedding) map[string]bool {
	out := make(map[string]bool, len(ems))
	for _, em := range ems {
		out[em.Key()] = true
	}
	return out
}

func sameKeySet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestSubscribeTerminalCauses: swap, remove, context cancellation and emit
// errors each end a standing query with the right terminal error.
func TestSubscribeTerminalCauses(t *testing.T) {
	gA, gB := routerTestGraphs()
	q, err := ldbc.QueryByName("q1")
	if err != nil {
		t.Fatal(err)
	}
	noop := func(MatchDelta) error { return nil }

	t.Run("swap", func(t *testing.T) {
		r := NewRouter(RouterOptions{Workers: 2, Engine: engineTestOptions(2)})
		if err := r.AddGraph("a", gA, nil); err != nil {
			t.Fatal(err)
		}
		sub, err := r.Subscribe(context.Background(), "a", q, noop)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.SwapGraph("a", gB); err != nil {
			t.Fatal(err)
		}
		if err := sub.Wait(); !errors.Is(err, ErrGraphSwapped) {
			t.Fatalf("Wait after swap: %v, want ErrGraphSwapped", err)
		}
	})

	t.Run("remove", func(t *testing.T) {
		r := NewRouter(RouterOptions{Workers: 2, Engine: engineTestOptions(2)})
		if err := r.AddGraph("a", gA, nil); err != nil {
			t.Fatal(err)
		}
		sub, err := r.Subscribe(context.Background(), "a", q, noop)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.RemoveGraph("a"); err != nil {
			t.Fatal(err)
		}
		if err := sub.Wait(); !errors.Is(err, ErrUnknownGraph) {
			t.Fatalf("Wait after remove: %v, want ErrUnknownGraph", err)
		}
	})

	t.Run("context", func(t *testing.T) {
		r := NewRouter(RouterOptions{Workers: 2, Engine: engineTestOptions(2)})
		if err := r.AddGraph("a", gA, nil); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		sub, err := r.Subscribe(ctx, "a", q, noop)
		if err != nil {
			t.Fatal(err)
		}
		cancel()
		if err := sub.Wait(); !errors.Is(err, context.Canceled) {
			t.Fatalf("Wait after cancel: %v, want context.Canceled", err)
		}
	})

	t.Run("emit-error", func(t *testing.T) {
		r := NewRouter(RouterOptions{Workers: 2, Engine: engineTestOptions(2)})
		if err := r.AddGraph("a", gA, nil); err != nil {
			t.Fatal(err)
		}
		boom := errors.New("boom")
		sub, err := r.Subscribe(context.Background(), "a", q, func(MatchDelta) error { return boom })
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.ApplyDelta("a", graph.Delta{AddVertices: []graph.Label{0}}); err != nil {
			t.Fatal(err)
		}
		if err := sub.Wait(); !errors.Is(err, boom) {
			t.Fatalf("Wait after emit error: %v, want boom", err)
		}
	})

	t.Run("unknown-graph", func(t *testing.T) {
		r := NewRouter(RouterOptions{Workers: 2, Engine: engineTestOptions(2)})
		if _, err := r.Subscribe(context.Background(), "nope", q, noop); !errors.Is(err, ErrUnknownGraph) {
			t.Fatalf("Subscribe unknown: %v, want ErrUnknownGraph", err)
		}
	})
}

// TestSubscribeRaceDrains: deltas, in-flight matches, subscribers coming
// and going, and a swap at the end — everything must drain cleanly. Run
// under -race this exercises the mutMu/subMu/commit interleavings.
func TestSubscribeRaceDrains(t *testing.T) {
	gA, gB := routerTestGraphs()
	r := NewRouter(RouterOptions{Workers: 2, Engine: engineTestOptions(2)})
	if err := r.AddGraph("a", gA, nil); err != nil {
		t.Fatal(err)
	}
	q, err := ldbc.QueryByName("q1")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Standing queries: one long-lived, one churning.
	sub, err := r.Subscribe(context.Background(), "a", q, func(MatchDelta) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s, err := r.Subscribe(context.Background(), "a", q, func(MatchDelta) error { return nil })
			if err != nil {
				return // graph swapped away
			}
			s.Close()
			if err := s.Wait(); err != nil && !errors.Is(err, ErrSubscriptionClosed) && !errors.Is(err, ErrGraphSwapped) {
				t.Errorf("churn Wait: %v", err)
				return
			}
		}
	}()

	// In-flight matches racing the mutations.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := r.MatchContext(context.Background(), "a", q); err != nil && !errors.Is(err, ErrUnknownGraph) {
					t.Errorf("MatchContext: %v", err)
					return
				}
			}
		}()
	}

	// Mutator: a run of single-op batches.
	rng := rand.New(rand.NewSource(7))
	mirror := gA
	for i := 0; i < 15; i++ {
		d := randomSingleBatch(rng, mirror)
		mirror = deltaOracle(t, mirror, d)
		if _, err := r.ApplyDelta("a", d); err != nil {
			t.Fatalf("delta %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()

	if err := r.SwapGraph("a", gB); err != nil {
		t.Fatal(err)
	}
	waited := make(chan error, 1)
	go func() { waited <- sub.Wait() }()
	select {
	case err := <-waited:
		if !errors.Is(err, ErrGraphSwapped) {
			t.Fatalf("long-lived sub after swap: %v, want ErrGraphSwapped", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("subscription did not drain after swap")
	}
	if st := r.Stats()["a"]; st.Epoch != 0 {
		t.Fatalf("post-swap epoch %d, want 0", st.Epoch)
	}
}
