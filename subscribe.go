package fast

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"fastmatch/graph"
	"fastmatch/internal/cst"
	"fastmatch/internal/order"
)

// ErrSubscriptionClosed is the terminal error of a standing query ended by
// its own Close call (as opposed to context cancellation, an emit error, or
// the graph being swapped or removed).
var ErrSubscriptionClosed = errors.New("subscription closed")

// MatchDelta is one standing query's incremental result for one committed
// delta batch: the embeddings that appeared and vanished between Epoch-1
// and Epoch. A batch that does not affect the query yields a MatchDelta
// with empty Added/Removed — an epoch heartbeat subscribers can use to
// track how current their view is.
type MatchDelta struct {
	Epoch   uint64
	Added   []graph.Embedding
	Removed []graph.Embedding
}

// Subscription is a registered standing query. Its emit callback receives
// one MatchDelta per committed ApplyDelta batch, strictly in epoch order,
// on a dedicated drain goroutine (calls never overlap). It terminates when
// its context fires, emit returns an error, Close is called, or the graph
// is swapped or removed; Wait blocks until the drain goroutine has exited
// and returns the terminal error.
type Subscription struct {
	ent   *routerGraph
	id    int64
	graph string
	query *graph.Query
	epoch uint64 // epoch of the current cst; mutation-side state under ent.mutMu

	// Matching state owned by the mutation path (Subscribe and notify both
	// run under ent.mutMu): the plan is fixed at registration, the CST
	// tracks the current epoch.
	tree *order.Tree
	ord  order.Order
	cst  *cst.CST

	ch        chan MatchDelta
	done      chan struct{} // closed once, with closeErr set first
	closeOnce sync.Once
	closeErr  error
	drained   chan struct{} // closed when the drain goroutine exits
}

// subscriptionBuffer is each subscription's MatchDelta channel capacity: a
// slow consumer absorbs this many batches before ApplyDelta blocks on it.
const subscriptionBuffer = 16

// Subscribe registers a standing query against the named graph. From the
// epoch current at registration onward, every committed ApplyDelta batch
// produces one MatchDelta — computed from the affected region of the
// candidate space, verified-equivalent to diffing full re-matches — and
// emit receives them in epoch order on a dedicated goroutine. emit errors,
// ctx cancellation, Close, SwapGraph and RemoveGraph all terminate the
// subscription; Wait returns the terminal cause.
//
// Registration builds the query's plan and baseline CST against the
// current epoch (cost comparable to one cold match), serialized with
// ApplyDelta so the subscription joins the epoch sequence at a well-defined
// point: a batch either precedes the subscription (not delivered) or
// follows it (delivered), never half of each.
func (r *Router) Subscribe(ctx context.Context, graphName string, q *graph.Query, emit func(MatchDelta) error) (*Subscription, error) {
	if q == nil {
		return nil, fmt.Errorf("fast: Router.Subscribe %q: nil query", graphName)
	}
	if emit == nil {
		return nil, fmt.Errorf("fast: Router.Subscribe %q: nil emit callback", graphName)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	r.mu.RLock()
	ent, ok := r.graphs[graphName]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("fast: Router.Subscribe %q: %w", graphName, ErrUnknownGraph)
	}
	ent.mutMu.Lock()
	defer ent.mutMu.Unlock()

	r.mu.RLock()
	st := ent.state
	registered := r.graphs[graphName] == ent
	r.mu.RUnlock()
	if !registered {
		return nil, fmt.Errorf("fast: Router.Subscribe %q: %w", graphName, ErrUnknownGraph)
	}
	g := st.g

	root := order.SelectRoot(q, g)
	tree := order.BuildBFSTree(q, root)
	c := cst.BuildWorkers(q, g, tree, r.workers)
	o := order.PathBased(tree, c)
	if err := o.Validate(tree); err != nil {
		return nil, fmt.Errorf("fast: Router.Subscribe %q: %v", graphName, err)
	}

	s := &Subscription{
		ent:     ent,
		graph:   graphName,
		query:   q,
		epoch:   g.Epoch(),
		tree:    tree,
		ord:     o,
		cst:     c,
		ch:      make(chan MatchDelta, subscriptionBuffer),
		done:    make(chan struct{}),
		drained: make(chan struct{}),
	}
	ent.subMu.Lock()
	if ent.subs == nil {
		ent.subs = make(map[int64]*Subscription)
	}
	ent.nextSub++
	s.id = ent.nextSub
	ent.subs[s.id] = s
	ent.subMu.Unlock()

	go s.drain(ctx, emit)
	return s, nil
}

// notify computes and enqueues this subscription's MatchDelta for a freshly
// committed epoch. It runs under ent.mutMu (ApplyDelta's notification
// loop). The affected region — embeddings mapping at least one query vertex
// to a touched data vertex — is enumerated on both the old and new epochs'
// CSTs; everything outside it is shared by both epochs, so the set
// difference of the two affected sets is exactly the match delta. Returns
// false when the subscription has already terminated.
func (s *Subscription) notify(g2 *graph.Graph, touched []graph.VertexID, workers int) bool {
	select {
	case <-s.done:
		return false
	default:
	}
	dirtySet := make(map[graph.VertexID]bool, len(touched))
	for _, v := range touched {
		dirtySet[v] = true
	}
	dirty := func(v graph.VertexID) bool { return dirtySet[v] }

	newCST := cst.BuildWorkers(s.query, g2, s.tree, workers)
	affOld := cst.CollectAffected(s.cst, s.ord, dirty)
	affNew := cst.CollectAffected(newCST, s.ord, dirty)
	s.cst = newCST
	s.epoch = g2.Epoch()

	oldKeys := make(map[string]bool, len(affOld))
	for _, em := range affOld {
		oldKeys[em.Key()] = true
	}
	newKeys := make(map[string]bool, len(affNew))
	for _, em := range affNew {
		newKeys[em.Key()] = true
	}
	md := MatchDelta{Epoch: g2.Epoch()}
	for _, em := range affNew {
		if !oldKeys[em.Key()] {
			md.Added = append(md.Added, em)
		}
	}
	for _, em := range affOld {
		if !newKeys[em.Key()] {
			md.Removed = append(md.Removed, em)
		}
	}
	select {
	case s.ch <- md:
		return true
	case <-s.done:
		return false
	}
}

// drain is the delivery goroutine: it hands queued MatchDeltas to emit one
// at a time, and on termination flushes whatever was already queued before
// exiting.
func (s *Subscription) drain(ctx context.Context, emit func(MatchDelta) error) {
	defer close(s.drained)
	defer s.unregister()
	for {
		select {
		case md := <-s.ch:
			if err := emit(md); err != nil {
				s.close(fmt.Errorf("fast: subscription on %q: emit: %w", s.graph, err))
				return
			}
		case <-ctx.Done():
			s.close(ctx.Err())
			return
		case <-s.done:
			// Terminated by Close, a swap or a remove: deliver what was
			// already queued (best effort — an emit error just stops the
			// flush), then exit.
			for {
				select {
				case md := <-s.ch:
					if err := emit(md); err != nil {
						return
					}
				default:
					return
				}
			}
		}
	}
}

// close sets the terminal error and signals termination; first caller wins.
func (s *Subscription) close(err error) {
	s.closeOnce.Do(func() {
		s.closeErr = err
		close(s.done)
	})
}

// unregister removes the subscription from its tenant's registry.
func (s *Subscription) unregister() {
	s.ent.subMu.Lock()
	delete(s.ent.subs, s.id)
	s.ent.subMu.Unlock()
}

// Close terminates the subscription with ErrSubscriptionClosed. Idempotent;
// safe concurrently with delivery. Queued MatchDeltas are still flushed to
// emit before the drain goroutine exits (use Wait to observe that point).
func (s *Subscription) Close() {
	s.close(ErrSubscriptionClosed)
}

// Done is closed when the subscription has terminated (Err is valid from
// then on). Delivery may still be flushing; Wait covers that too.
func (s *Subscription) Done() <-chan struct{} { return s.done }

// Wait blocks until delivery has fully stopped — terminal state reached and
// queued notifications flushed — and returns the terminal error:
// ErrSubscriptionClosed after Close, the context's error after
// cancellation, the emit error that stopped delivery, or an error wrapping
// ErrGraphSwapped/ErrUnknownGraph after a swap or remove.
func (s *Subscription) Wait() error {
	<-s.drained
	return s.Err()
}

// Err returns the terminal error once Done is closed; nil while active.
func (s *Subscription) Err() error {
	select {
	case <-s.done:
		return s.closeErr
	default:
		return nil
	}
}

// Graph returns the graph name the subscription watches.
func (s *Subscription) Graph() string { return s.graph }

// Query returns the standing query.
func (s *Subscription) Query() *graph.Query { return s.query }

// Epoch returns the epoch the subscription registered at — MatchDeltas are
// delivered for every later epoch. (Registration-time value; it does not
// advance with deliveries.)
func (s *Subscription) Epoch() uint64 { return s.epoch }
