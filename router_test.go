package fast

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"fastmatch/graph"
	"fastmatch/ldbc"
)

func routerTestGraphs() (*graph.Graph, *graph.Graph) {
	a := ldbc.Generate(ldbc.Config{ScaleFactor: 1, BasePersons: 120, Seed: 7})
	b := ldbc.Generate(ldbc.Config{ScaleFactor: 1, BasePersons: 90, Seed: 9})
	return a, b
}

// routerWant computes the sequential one-shot reference count for (q, g)
// with the same engine options the router's graphs use.
func routerWant(t *testing.T, q *graph.Query, g *graph.Graph) int64 {
	t.Helper()
	res, err := Match(q, g, engineTestOptions(0))
	if err != nil {
		t.Fatal(err)
	}
	return res.Count
}

// TestRouterServesMultipleGraphs: two graphs behind one router, hammered
// concurrently under the shared budget, must each report their own
// sequential counts — per-graph determinism is the serving contract.
func TestRouterServesMultipleGraphs(t *testing.T) {
	gA, gB := routerTestGraphs()
	r := NewRouter(RouterOptions{Workers: 4, Engine: engineTestOptions(2)})
	if err := r.AddGraph("a", gA, nil); err != nil {
		t.Fatal(err)
	}
	if err := r.AddGraph("b", gB, nil); err != nil {
		t.Fatal(err)
	}
	if got := r.Graphs(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Graphs() = %v, want [a b]", got)
	}

	names := []string{"q1", "q2", "q3"}
	want := map[string]map[string]int64{"a": {}, "b": {}}
	for _, name := range names {
		q, err := ldbc.QueryByName(name)
		if err != nil {
			t.Fatal(err)
		}
		want["a"][name] = routerWant(t, q, gA)
		want["b"][name] = routerWant(t, q, gB)
	}

	const goroutines = 6
	const rounds = 3
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := []string{"a", "b"}[i%2]
			for r2 := 0; r2 < rounds; r2++ {
				name := names[(i+r2)%len(names)]
				q, err := ldbc.QueryByName(name)
				if err != nil {
					t.Error(err)
					return
				}
				res, err := r.MatchContext(context.Background(), tenant, q)
				if err != nil {
					t.Errorf("tenant %s %s: %v", tenant, name, err)
					return
				}
				if res.Count != want[tenant][name] {
					t.Errorf("tenant %s %s: count %d, want %d", tenant, name, res.Count, want[tenant][name])
				}
			}
		}(i)
	}
	wg.Wait()

	stats := r.Stats()
	for _, tenant := range []string{"a", "b"} {
		s := stats[tenant]
		if s.Calls != goroutines/2*rounds {
			t.Errorf("tenant %s: Calls = %d, want %d", tenant, s.Calls, goroutines/2*rounds)
		}
		if s.Failures != 0 || s.Partials != 0 {
			t.Errorf("tenant %s: unexpected failures/partials: %+v", tenant, s)
		}
		if s.CachedPlans != len(names) {
			t.Errorf("tenant %s: CachedPlans = %d, want %d", tenant, s.CachedPlans, len(names))
		}
		if s.PlanCacheHits+s.PlanCacheMisses != s.Calls {
			t.Errorf("tenant %s: hits+misses = %d, want %d calls", tenant, s.PlanCacheHits+s.PlanCacheMisses, s.Calls)
		}
	}
}

// TestRouterBatch: a routed batch keeps results aligned and counts each
// query as one call in the graph's counters.
func TestRouterBatch(t *testing.T) {
	gA, _ := routerTestGraphs()
	r := NewRouter(RouterOptions{Workers: 4, Engine: engineTestOptions(2)})
	if err := r.AddGraph("a", gA, nil); err != nil {
		t.Fatal(err)
	}
	names := []string{"q1", "q2", "q1"}
	qs := make([]*graph.Query, len(names))
	for i, name := range names {
		q, err := ldbc.QueryByName(name)
		if err != nil {
			t.Fatal(err)
		}
		qs[i] = q
	}
	results, err := r.MatchBatchContext(context.Background(), "a", qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if want := routerWant(t, qs[i], gA); res.Count != want {
			t.Errorf("batch[%d] (%s): count %d, want %d", i, names[i], res.Count, want)
		}
	}
	if s := r.Stats()["a"]; s.Calls != int64(len(qs)) {
		t.Errorf("Calls = %d, want %d (one per batch query)", s.Calls, len(qs))
	}
}

// TestRouterUnknownGraphAndRegistry: routing misses wrap ErrUnknownGraph,
// duplicate AddGraph fails, RemoveGraph makes a name unroutable, and
// invalid registrations (nil graph, empty name, bad defaults, bad variant)
// are rejected at AddGraph time.
func TestRouterUnknownGraphAndRegistry(t *testing.T) {
	gA, gB := routerTestGraphs()
	r := NewRouter(RouterOptions{Workers: 2})
	q, _ := ldbc.QueryByName("q1")

	if _, err := r.MatchContext(context.Background(), "ghost", q); !errors.Is(err, ErrUnknownGraph) {
		t.Errorf("MatchContext on unregistered graph: err = %v, want ErrUnknownGraph", err)
	}
	if err := r.SwapGraph("ghost", gA); !errors.Is(err, ErrUnknownGraph) {
		t.Errorf("SwapGraph: err = %v, want ErrUnknownGraph", err)
	}
	if err := r.RemoveGraph("ghost"); !errors.Is(err, ErrUnknownGraph) {
		t.Errorf("RemoveGraph: err = %v, want ErrUnknownGraph", err)
	}

	if err := r.AddGraph("a", gA, nil); err != nil {
		t.Fatal(err)
	}
	if err := r.AddGraph("a", gB, nil); err == nil {
		t.Error("duplicate AddGraph succeeded, want error")
	}
	if err := r.AddGraph("", gA, nil); err == nil {
		t.Error("empty graph name accepted")
	}
	if err := r.AddGraph("nilg", nil, nil); err == nil {
		t.Error("nil graph accepted")
	}
	if err := r.AddGraph("badv", gA, &Options{Variant: "no-such-variant"}); err == nil {
		t.Error("bad engine variant accepted at AddGraph")
	}
	if err := r.AddGraph("badd", gA, nil, WithDelta(1.5)); err == nil {
		t.Error("invalid tenant default delta accepted at AddGraph")
	}
	if err := r.AddGraph("bade", gA, &Options{Delta: 1.5}); err == nil {
		t.Error("invalid engine-level delta accepted at AddGraph")
	}
	if _, err := NewEngine(gA, &Options{Delta: 1.5}); err == nil {
		t.Error("invalid engine-level delta accepted by NewEngine")
	}

	if err := r.RemoveGraph("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.MatchContext(context.Background(), "a", q); !errors.Is(err, ErrUnknownGraph) {
		t.Errorf("MatchContext after RemoveGraph: err = %v, want ErrUnknownGraph", err)
	}
}

// TestRouterSwapGraph: a swap is atomic — the in-flight stream that
// resolved before the swap finishes with the old graph's count, the call
// made after it sees the new graph's count, and the plan cache rotates
// (fresh engine, zero cached plans) while the tenant's counters carry over.
func TestRouterSwapGraph(t *testing.T) {
	gA, gB := routerTestGraphs()
	q, _ := ldbc.QueryByName("q2")
	wantA := routerWant(t, q, gA)
	wantB := routerWant(t, q, gB)

	r := NewRouter(RouterOptions{Workers: 4, Engine: engineTestOptions(2)})
	if err := r.AddGraph("t", gA, nil); err != nil {
		t.Fatal(err)
	}
	// Warm the cache so the rotation below is observable.
	if res, err := r.MatchContext(context.Background(), "t", q); err != nil || res.Count != wantA {
		t.Fatalf("warm-up: count %v err %v, want %d", res, err, wantA)
	}
	if s := r.Stats()["t"]; s.CachedPlans != 1 {
		t.Fatalf("CachedPlans = %d before swap, want 1", s.CachedPlans)
	}

	// Swap from inside the stream's emit callback: the stream is then
	// provably in flight when the registry moves on, and must still finish
	// on the old graph and its plans.
	swapped := false
	res, err := r.MatchStream(context.Background(), "t", q, func(graph.Embedding) error {
		if !swapped {
			swapped = true
			if err := r.SwapGraph("t", gB); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !swapped {
		t.Fatal("stream produced no embeddings; swap never exercised mid-flight")
	}
	if res.Count != wantA {
		t.Errorf("in-flight stream count %d, want old graph's %d", res.Count, wantA)
	}

	// The next call resolves the new state: new graph, fresh plan cache.
	res, err = r.MatchContext(context.Background(), "t", q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != wantB {
		t.Errorf("post-swap count %d, want new graph's %d", res.Count, wantB)
	}
	s := r.Stats()["t"]
	if s.Swaps != 1 {
		t.Errorf("Swaps = %d, want 1", s.Swaps)
	}
	if s.CachedPlans != 1 || s.PlanCacheMisses != 1 || s.PlanCacheHits != 0 {
		t.Errorf("plan cache did not rotate with the swap: %+v", s)
	}
	if s.Calls != 3 {
		t.Errorf("Calls = %d, want 3 (counters survive the swap)", s.Calls)
	}
}

// TestRouterDefaultsAndOverrides: a graph's default MatchOptions are the
// tenant SLO — applied when the caller says nothing, sitting under any
// per-call overrides, with WithLimit(0) lifting a default limit back to
// unlimited (the set-flag regression this PR fixes).
func TestRouterDefaultsAndOverrides(t *testing.T) {
	gA, _ := routerTestGraphs()
	q, _ := ldbc.QueryByName("q2")
	total := routerWant(t, q, gA)
	if total < 10 {
		t.Skipf("q2 count %d too small to exercise limits", total)
	}

	r := NewRouter(RouterOptions{Workers: 2, Engine: engineTestOptions(2)})
	if err := r.AddGraph("t", gA, nil, WithLimit(5)); err != nil {
		t.Fatal(err)
	}

	// Default applies untouched.
	res, err := r.MatchContext(context.Background(), "t", q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 5 || !res.Partial {
		t.Errorf("default limit: count %d partial %v, want 5/true", res.Count, res.Partial)
	}
	// A tighter per-call limit wins.
	res, err = r.MatchContext(context.Background(), "t", q, WithLimit(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 3 {
		t.Errorf("override limit: count %d, want 3", res.Count)
	}
	// WithLimit(0) lifts the default entirely — the previously
	// inexpressible override.
	res, err = r.MatchContext(context.Background(), "t", q, WithLimit(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != total || res.Partial {
		t.Errorf("WithLimit(0): count %d partial %v, want full %d", res.Count, res.Partial, total)
	}

	// A default timeout is an SLO ceiling: it fires when the caller says
	// nothing, and neither WithTimeout(0) nor a more generous WithTimeout
	// lifts it — callers can only tighten a tenant deadline.
	if err := r.AddGraph("slo", gA, nil, WithTimeout(time.Nanosecond)); err != nil {
		t.Fatal(err)
	}
	for _, opts := range [][]MatchOption{nil, {WithTimeout(0)}, {WithTimeout(time.Hour)}} {
		res, err = r.MatchContext(context.Background(), "slo", q, opts...)
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("opts %v: err = %v, want DeadlineExceeded from the tenant SLO", opts, err)
		}
		if res == nil || !res.Partial {
			t.Errorf("opts %v: result %+v, want partial", opts, res)
		}
	}
	// An SLO firing is service, not failure: every deadline cut above
	// counts as a Partial, none as a Failure.
	if s := r.Stats()["slo"]; s.Failures != 0 || s.Partials != s.Calls {
		t.Errorf("SLO stats = %+v, want 0 failures and all calls partial", s)
	}

	// An invalid per-call option fails before any planning.
	if _, err := r.MatchContext(context.Background(), "t", q, WithDelta(2)); err == nil {
		t.Error("invalid per-call delta accepted by the router")
	}
}

// TestRouterSharedBudgetDeterminism: simultaneous traffic on every graph,
// all drawing from one small shared budget, must not change any graph's
// counts — the budget schedules work, it never alters results.
func TestRouterSharedBudgetDeterminism(t *testing.T) {
	gA, gB := routerTestGraphs()
	r := NewRouter(RouterOptions{Workers: 2, Engine: engineTestOptions(3)})
	if err := r.AddGraph("a", gA, nil); err != nil {
		t.Fatal(err)
	}
	if err := r.AddGraph("b", gB, nil); err != nil {
		t.Fatal(err)
	}
	q5, _ := ldbc.QueryByName("q5")
	q2, _ := ldbc.QueryByName("q2")
	want := map[string]map[string]int64{
		"a": {"q5": routerWant(t, q5, gA), "q2": routerWant(t, q2, gA)},
		"b": {"q5": routerWant(t, q5, gB), "q2": routerWant(t, q2, gB)},
	}

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := []string{"a", "b"}[i%2]
			q, name := q5, "q5"
			if i%4 >= 2 {
				q, name = q2, "q2"
			}
			res, err := r.MatchContext(context.Background(), tenant, q)
			if err != nil {
				t.Errorf("tenant %s %s: %v", tenant, name, err)
				return
			}
			if res.Count != want[tenant][name] {
				t.Errorf("tenant %s %s under contention: count %d, want %d",
					tenant, name, res.Count, want[tenant][name])
			}
		}(i)
	}
	wg.Wait()
}

// TestRouterDeadlineNotStarvedBySaturatedBudget: a tenant holding the
// budget's only token (blocked inside a kernel run's emit callback) must
// not stall another tenant's deadlined call past its budget — the pool
// acquire abandons the wait when the context fires. Before the cancellable
// acquire this scenario deadlocked: the victim queued on the pool forever
// while the hog waited for the victim to finish.
func TestRouterDeadlineNotStarvedBySaturatedBudget(t *testing.T) {
	gA, gB := routerTestGraphs()
	r := NewRouter(RouterOptions{Workers: 1, Engine: engineTestOptions(1)})
	if err := r.AddGraph("hog", gA, nil); err != nil {
		t.Fatal(err)
	}
	if err := r.AddGraph("victim", gB, nil); err != nil {
		t.Fatal(err)
	}
	q, _ := ldbc.QueryByName("q2")

	hold := make(chan struct{}, 1)
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		// The hog's first embedding arrives from inside a kernel run, while
		// the engine holds the shared budget's only token; blocking there
		// keeps the budget saturated until release.
		_, _ = r.MatchStream(context.Background(), "hog", q, func(graph.Embedding) error {
			select {
			case hold <- struct{}{}:
			default:
			}
			<-release
			return errors.New("done hogging")
		})
	}()
	<-hold

	start := time.Now()
	res, err := r.MatchContext(context.Background(), "victim", q, WithTimeout(50*time.Millisecond))
	elapsed := time.Since(start)
	close(release)
	<-done
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if res == nil || !res.Partial {
		t.Fatalf("result = %+v, want partial", res)
	}
	if elapsed > 5*time.Second {
		t.Errorf("deadlined call took %v to give up on the saturated budget", elapsed)
	}
}

// TestRouterConcurrentAddSwapRemove races registry mutation against live
// traffic (run under -race in CI): every match either fails with
// ErrUnknownGraph (the graph was momentarily removed) or reports one of the
// two graphs' exact counts — never a torn or mixed result.
func TestRouterConcurrentAddSwapRemove(t *testing.T) {
	gA, gB := routerTestGraphs()
	q, _ := ldbc.QueryByName("q1")
	wantA := routerWant(t, q, gA)
	wantB := routerWant(t, q, gB)

	r := NewRouter(RouterOptions{Workers: 4, Engine: engineTestOptions(2)})
	if err := r.AddGraph("t", gA, nil); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var mutWG sync.WaitGroup
	mutWG.Add(1)
	go func() {
		defer mutWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 4 {
			case 0:
				_ = r.SwapGraph("t", gB)
			case 1:
				_ = r.SwapGraph("t", gA)
			case 2:
				_ = r.RemoveGraph("t")
			case 3:
				_ = r.AddGraph("t", gA, nil)
			}
			time.Sleep(time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < 12; j++ {
				res, err := r.MatchContext(context.Background(), "t", q)
				if err != nil {
					if !errors.Is(err, ErrUnknownGraph) {
						t.Errorf("worker %d: unexpected error: %v", w, err)
					}
					continue
				}
				if res.Count != wantA && res.Count != wantB {
					t.Errorf("worker %d: count %d, want %d or %d", w, res.Count, wantA, wantB)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	mutWG.Wait()

	// The registry is still coherent afterwards: if "t" survived the last
	// mutation it must serve exact counts; fresh adds always work.
	if err := r.AddGraph("post", gA, nil); err != nil {
		t.Fatal(err)
	}
	res, err := r.MatchContext(context.Background(), "post", q)
	if err != nil || res.Count != wantA {
		t.Fatalf("post-race add: count %v err %v, want %d", res, err, wantA)
	}
}

// TestRouterLazyEngines: registration builds no engine — Stats stays all
// zero until the first match reaches a graph.
func TestRouterLazyEngines(t *testing.T) {
	gA, gB := routerTestGraphs()
	r := NewRouter(RouterOptions{Workers: 2})
	for i := 0; i < 8; i++ {
		if err := r.AddGraph(fmt.Sprintf("g%d", i), gA, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.AddGraph("live", gB, nil); err != nil {
		t.Fatal(err)
	}
	q, _ := ldbc.QueryByName("q1")
	if _, err := r.MatchContext(context.Background(), "live", q); err != nil {
		t.Fatal(err)
	}
	for name, s := range r.Stats() {
		if name == "live" {
			if s.PlanCacheMisses != 1 || s.CachedPlans != 1 {
				t.Errorf("live graph stats wrong: %+v", s)
			}
			continue
		}
		if s != (GraphStats{Weight: 1, BreakerState: breakerClosed}) {
			t.Errorf("idle graph %s has non-zero stats %+v — engine built eagerly?", name, s)
		}
	}
}
