// Package graph provides labelled, undirected, simple graphs stored in
// compressed sparse row (CSR) form, together with builders, loaders and
// synthetic generators. It is the substrate every other package in this
// module (CST construction, the FAST kernel, the baselines and the LDBC-like
// benchmark generator) operates on.
//
// Vertices are dense uint32 identifiers in [0, NumVertices). Every vertex
// carries exactly one label. Adjacency lists are sorted, which makes edge
// lookups O(log d) and set intersections linear.
package graph

import (
	"fmt"
	"sort"
)

// VertexID identifies a vertex of a data graph.
type VertexID = uint32

// Label identifies a vertex label.
type Label = uint16

// Graph is an immutable labelled undirected simple graph in CSR form.
// Construct one with a Builder, a loader from the io files, or a generator.
type Graph struct {
	offsets   []int64    // len = n+1; adjacency of v is neighbors[offsets[v]:offsets[v+1]]
	neighbors []VertexID // sorted within each vertex's range
	labels    []Label    // len = n
	byLabel   [][]VertexID
	numLabels int
	maxDegree int
	// edgeLabels, when non-nil, is aligned with neighbors: the label of
	// half-edge v→neighbors[i] is edgeLabels[i] (see edgelabel.go).
	edgeLabels []EdgeLabel
	// lidx groups every vertex's adjacency into label runs (labelindex.go)
	// so per-label neighbourhood probes are subslice reads, not filter
	// scans. Built once by every constructor.
	lidx *labelIndex
	// deleted marks tombstoned vertices (delta.go); nil until the first
	// vertex delete, so static graphs pay nothing. A tombstone keeps its id
	// (embeddings stay comparable across epochs) but has no adjacency and
	// is absent from byLabel, so it can never become a matching candidate.
	deleted    []bool
	numDeleted int
	// epoch counts ApplyDelta batches since construction; see Epoch.
	epoch uint64
}

// NumVertices returns |V(G)|.
func (g *Graph) NumVertices() int { return len(g.labels) }

// NumEdges returns |E(G)| counting each undirected edge once.
func (g *Graph) NumEdges() int { return len(g.neighbors) / 2 }

// NumLabels returns the size of the label alphabet Σ (the number of distinct
// labels the graph was built with, not necessarily all used).
func (g *Graph) NumLabels() int { return g.numLabels }

// Label returns the label of v.
func (g *Graph) Label(v VertexID) Label { return g.labels[v] }

// Degree returns d_G(v).
func (g *Graph) Degree(v VertexID) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// MaxDegree returns D_G, the maximum degree over all vertices.
func (g *Graph) MaxDegree() int { return g.maxDegree }

// AvgDegree returns the average degree 2|E|/|V|.
func (g *Graph) AvgDegree() float64 {
	if g.NumVertices() == 0 {
		return 0
	}
	return float64(len(g.neighbors)) / float64(g.NumVertices())
}

// Neighbors returns the sorted adjacency list of v. The returned slice
// aliases the graph's storage and must not be modified.
func (g *Graph) Neighbors(v VertexID) []VertexID {
	return g.neighbors[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether (u, v) ∈ E(G). It binary-searches the shorter
// adjacency list of the two endpoints.
func (g *Graph) HasEdge(u, v VertexID) bool {
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	adj := g.Neighbors(u)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	return i < len(adj) && adj[i] == v
}

// VerticesWithLabel returns all vertices carrying label l, in ascending
// order. The returned slice aliases internal storage.
func (g *Graph) VerticesWithLabel(l Label) []VertexID {
	if int(l) >= len(g.byLabel) {
		return nil
	}
	return g.byLabel[l]
}

// LabelFrequency returns the number of vertices with label l.
func (g *Graph) LabelFrequency(l Label) int { return len(g.VerticesWithLabel(l)) }

// NeighborsWithLabel returns the neighbours of v whose label is l, sorted
// ascending. With a nil dst the result is a zero-copy subslice of the label
// index and must not be modified; a non-nil dst gets the run appended, as
// before the index existed.
func (g *Graph) NeighborsWithLabel(v VertexID, l Label, dst []VertexID) []VertexID {
	lo, hi := g.labelRun(v, l)
	if dst == nil {
		if lo == hi {
			return nil
		}
		// Full-slice expression: an append by the caller copies instead of
		// writing into the shared index.
		return g.lidx.nbrs[lo:hi:hi]
	}
	return append(dst, g.lidx.nbrs[lo:hi]...)
}

// DegreeWithLabel counts neighbours of v labelled l — one run-length read
// against the label index. Used by the neighbourhood-label-frequency (NLF)
// candidate filter.
func (g *Graph) DegreeWithLabel(v VertexID, l Label) int {
	lo, hi := g.labelRun(v, l)
	return int(hi - lo)
}

// SizeBytes returns an estimate of the in-memory footprint of the CSR arrays
// (offsets, neighbours, labels), used when reporting S_G in Fig. 9.
func (g *Graph) SizeBytes() int64 {
	return int64(len(g.offsets))*8 + int64(len(g.neighbors))*4 + int64(len(g.labels))*2
}

// Validate checks structural invariants of the CSR representation: sorted
// adjacency, no self loops, no parallel edges, symmetric edges, offsets
// monotone. It is used by tests and loaders.
func (g *Graph) Validate() error {
	n := g.NumVertices()
	if len(g.offsets) != n+1 {
		return fmt.Errorf("graph: offsets length %d, want %d", len(g.offsets), n+1)
	}
	if g.offsets[0] != 0 || g.offsets[n] != int64(len(g.neighbors)) {
		return fmt.Errorf("graph: offsets endpoints [%d,%d], want [0,%d]", g.offsets[0], g.offsets[n], len(g.neighbors))
	}
	if g.deleted != nil && len(g.deleted) != n {
		return fmt.Errorf("graph: deleted length %d, want %d", len(g.deleted), n)
	}
	for v := 0; v < n; v++ {
		if g.offsets[v] > g.offsets[v+1] {
			return fmt.Errorf("graph: offsets not monotone at %d", v)
		}
		adj := g.Neighbors(VertexID(v))
		if g.Deleted(VertexID(v)) && len(adj) > 0 {
			return fmt.Errorf("graph: deleted vertex %d still has %d edges", v, len(adj))
		}
		for i, w := range adj {
			if int(w) >= n {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbour %d", v, w)
			}
			if w == VertexID(v) {
				return fmt.Errorf("graph: self loop at %d", v)
			}
			if g.Deleted(w) {
				return fmt.Errorf("graph: edge (%d,%d) into deleted vertex", v, w)
			}
			if i > 0 && adj[i-1] >= w {
				return fmt.Errorf("graph: adjacency of %d not strictly sorted", v)
			}
			if !g.HasEdge(w, VertexID(v)) {
				return fmt.Errorf("graph: edge (%d,%d) not symmetric", v, w)
			}
		}
	}
	if err := g.validateByLabel(); err != nil {
		return err
	}
	return g.validateLabelIndex()
}

// validateByLabel checks the per-label vertex lists: sorted, labels
// consistent, tombstones excluded, and complete — every live vertex appears
// under its label. ApplyDelta maintains these lists copy-on-write, so the
// check matters most after deltas.
func (g *Graph) validateByLabel() error {
	n := g.NumVertices()
	if len(g.byLabel) != g.numLabels {
		return fmt.Errorf("graph: byLabel has %d labels, want %d", len(g.byLabel), g.numLabels)
	}
	live := 0
	for l, lst := range g.byLabel {
		for i, v := range lst {
			if int(v) >= n {
				return fmt.Errorf("graph: byLabel[%d] has out-of-range vertex %d", l, v)
			}
			if g.labels[v] != Label(l) {
				return fmt.Errorf("graph: byLabel[%d] lists vertex %d with label %d", l, v, g.labels[v])
			}
			if g.Deleted(v) {
				return fmt.Errorf("graph: byLabel[%d] lists deleted vertex %d", l, v)
			}
			if i > 0 && lst[i-1] >= v {
				return fmt.Errorf("graph: byLabel[%d] not strictly sorted at %d", l, v)
			}
		}
		live += len(lst)
	}
	if live != n-g.numDeleted {
		return fmt.Errorf("graph: byLabel covers %d vertices, want %d live", live, n-g.numDeleted)
	}
	return nil
}

// String summarises the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph{|V|=%d |E|=%d labels=%d avgDeg=%.2f maxDeg=%d}",
		g.NumVertices(), g.NumEdges(), g.numLabels, g.AvgDegree(), g.maxDegree)
}
