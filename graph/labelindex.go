package graph

import (
	"errors"
	"slices"
	"sort"
)

var (
	errMissingLabelIndex = errors.New("graph: label index missing (constructor skipped buildLabelIndex)")
	errLabelIndexShape   = errors.New("graph: label index inconsistent with CSR adjacency")
)

// labelIndex is a secondary CSR over the adjacency in which every vertex's
// neighbours are grouped into runs by neighbour label (runs ordered by
// label, ids ascending within a run). It makes NeighborsWithLabel a
// zero-copy subslice and DegreeWithLabel a run-length read — the probes the
// CST construction passes (label filtering, NLF, per-label intersection)
// perform once per candidate, on the host's critical path while the
// (modelled) FPGA idles.
//
// nbrs has the same per-vertex extents as Graph.neighbors, so run ends are
// derived from the primary offsets: the last run of v ends at offsets[v+1].
type labelIndex struct {
	nbrs []VertexID // len(neighbors); per-vertex, grouped by (label, id)
	// elabels is aligned with nbrs when the graph is edge-labeled, so the
	// label-restricted view carries half-edge labels too; nil otherwise.
	elabels   []EdgeLabel
	runOff    []int64 // len n+1: label runs of v are indices [runOff[v], runOff[v+1]); int64 like the primary offsets (total runs is bounded by half-edges, which exceed int32)
	runLabels []Label // label of each run, ascending within a vertex
	runStarts []int64 // absolute start of each run in nbrs
}

// buildLabelIndex constructs the index; every Graph constructor calls it
// once the primary CSR and labels are final. Cost is O(|E| + runs) via a
// per-label counting pass (scratch is generation-free: only touched labels
// are reset).
func (g *Graph) buildLabelIndex() {
	n := g.NumVertices()
	idx := &labelIndex{
		nbrs:   make([]VertexID, len(g.neighbors)),
		runOff: make([]int64, n+1),
	}
	if g.edgeLabels != nil {
		idx.elabels = make([]EdgeLabel, len(g.neighbors))
	}
	cnt := make([]int64, g.numLabels) // per-label cursor/count for one vertex
	var touched []Label
	place := make([]int64, g.numLabels)
	for v := 0; v < n; v++ {
		touched = idx.appendVertexRuns(g, v, cnt, place, touched)
		idx.runOff[v+1] = int64(len(idx.runLabels))
	}
	g.lidx = idx
}

// appendVertexRuns groups v's adjacency in g into label runs: run metadata
// is appended to runLabels/runStarts, the grouped neighbours (and half-edge
// labels) are written into nbrs/elabels at v's primary CSR extent. cnt and
// place are zeroed numLabels-sized scratch, left zeroed on return; touched
// is reusable scratch, returned for the next call. Shared by the full build
// above and the incremental per-delta maintenance below.
func (idx *labelIndex) appendVertexRuns(g *Graph, v int, cnt, place []int64, touched []Label) []Label {
	adj := g.Neighbors(VertexID(v))
	touched = touched[:0]
	for _, w := range adj {
		l := g.labels[w]
		if cnt[l] == 0 {
			touched = append(touched, l)
		}
		cnt[l]++
	}
	slices.Sort(touched)
	base := g.offsets[v]
	for _, l := range touched {
		idx.runLabels = append(idx.runLabels, l)
		idx.runStarts = append(idx.runStarts, base)
		place[l] = base
		base += cnt[l]
	}
	// Second pass walks adj in ascending-id order, so ids stay sorted
	// within each label run.
	for i, w := range adj {
		l := g.labels[w]
		p := place[l]
		idx.nbrs[p] = w
		if idx.elabels != nil {
			idx.elabels[p] = g.edgeLabels[g.offsets[v]+int64(i)]
		}
		place[l] = p + 1
	}
	for _, l := range touched {
		cnt[l] = 0
	}
	return touched
}

// updateLabelIndexFrom maintains g2's label index incrementally from the
// pre-delta graph g: a clean vertex (adjacency untouched by the batch) has
// its run metadata copied with the starts shifted by its CSR offset delta
// and its grouped span copied verbatim; only dirty vertices are re-grouped.
// The index is never rebuilt from scratch — per-batch cost is O(|E| copied)
// plus the counting pass over dirty adjacency only. Vertex labels are
// immutable and an edge delete dirties both endpoints, so a clean vertex's
// runs are valid in the new epoch by construction.
func (g2 *Graph) updateLabelIndexFrom(g *Graph, dirty map[VertexID]bool) {
	n := g2.NumVertices()
	old := g.lidx
	idx := &labelIndex{
		nbrs:      make([]VertexID, len(g2.neighbors)),
		runOff:    make([]int64, n+1),
		runLabels: make([]Label, 0, len(old.runLabels)+2*len(dirty)),
		runStarts: make([]int64, 0, len(old.runStarts)+2*len(dirty)),
	}
	if g2.edgeLabels != nil {
		idx.elabels = make([]EdgeLabel, len(g2.neighbors))
	}
	cnt := make([]int64, g2.numLabels)
	place := make([]int64, g2.numLabels)
	var touched []Label
	for v := 0; v < n; v++ {
		if dirty[VertexID(v)] {
			touched = idx.appendVertexRuns(g2, v, cnt, place, touched)
		} else {
			shift := g2.offsets[v] - g.offsets[v]
			rs, re := old.runOff[v], old.runOff[v+1]
			idx.runLabels = append(idx.runLabels, old.runLabels[rs:re]...)
			for k := rs; k < re; k++ {
				idx.runStarts = append(idx.runStarts, old.runStarts[k]+shift)
			}
			copy(idx.nbrs[g2.offsets[v]:g2.offsets[v+1]], old.nbrs[g.offsets[v]:g.offsets[v+1]])
			if idx.elabels != nil {
				copy(idx.elabels[g2.offsets[v]:g2.offsets[v+1]], old.elabels[g.offsets[v]:g.offsets[v+1]])
			}
		}
		idx.runOff[v+1] = int64(len(idx.runLabels))
	}
	g2.lidx = idx
}

// labelRun returns the [lo, hi) extent in lidx.nbrs holding v's neighbours
// labelled l; lo == hi when v has none.
func (g *Graph) labelRun(v VertexID, l Label) (int64, int64) {
	idx := g.lidx
	rs, re := int(idx.runOff[v]), int(idx.runOff[v+1])
	labels := idx.runLabels[rs:re]
	k := sort.Search(len(labels), func(k int) bool { return labels[k] >= l })
	if k == len(labels) || labels[k] != l {
		return 0, 0
	}
	lo := idx.runStarts[rs+k]
	if rs+k+1 < re {
		return lo, idx.runStarts[rs+k+1]
	}
	return lo, g.offsets[v+1]
}

// NeighborsWithLabelAndEdgeLabels returns v's neighbours labelled l together
// with the matching half-edge labels (nil for edge-unlabeled graphs), both
// aliasing the label index's storage. Ids are ascending.
func (g *Graph) NeighborsWithLabelAndEdgeLabels(v VertexID, l Label) ([]VertexID, []EdgeLabel) {
	lo, hi := g.labelRun(v, l)
	if lo == hi {
		return nil, nil
	}
	if g.lidx.elabels == nil {
		return g.lidx.nbrs[lo:hi:hi], nil
	}
	return g.lidx.nbrs[lo:hi:hi], g.lidx.elabels[lo:hi:hi]
}

// validateLabelIndex checks the label index against the primary CSR: same
// multiset of neighbours per vertex, runs label-ascending, ids ascending
// within runs, edge labels carried over. Graph.Validate calls it.
func (g *Graph) validateLabelIndex() error {
	idx := g.lidx
	if idx == nil {
		return errMissingLabelIndex
	}
	n := g.NumVertices()
	if len(idx.nbrs) != len(g.neighbors) || len(idx.runOff) != n+1 {
		return errLabelIndexShape
	}
	for v := 0; v < n; v++ {
		rs, re := int(idx.runOff[v]), int(idx.runOff[v+1])
		total := int64(0)
		for k := rs; k < re; k++ {
			if k > rs && idx.runLabels[k-1] >= idx.runLabels[k] {
				return errLabelIndexShape
			}
			lo := idx.runStarts[k]
			hi := g.offsets[v+1]
			if k+1 < re {
				hi = idx.runStarts[k+1]
			}
			if lo < g.offsets[v] || hi < lo || hi > g.offsets[v+1] {
				return errLabelIndexShape
			}
			for p := lo; p < hi; p++ {
				w := idx.nbrs[p]
				if g.labels[w] != idx.runLabels[k] || !g.HasEdge(VertexID(v), w) {
					return errLabelIndexShape
				}
				if p > lo && idx.nbrs[p-1] >= w {
					return errLabelIndexShape
				}
			}
			total += hi - lo
		}
		if total != g.offsets[v+1]-g.offsets[v] {
			return errLabelIndexShape
		}
	}
	return nil
}
