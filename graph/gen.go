package graph

import (
	"math/rand"
)

// GenConfig parameterises the synthetic generators used in tests and
// property checks (the LDBC-like benchmark generator lives in package ldbc).
type GenConfig struct {
	NumVertices int
	NumLabels   int
	AvgDegree   float64
	Seed        int64
}

// RandomUniform generates an Erdős–Rényi-style labelled graph: each vertex
// gets a uniform label and ⌊n·avgDeg/2⌋ distinct random edges are inserted.
func RandomUniform(cfg GenConfig) *Graph {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.NumVertices
	m := int(float64(n) * cfg.AvgDegree / 2)
	b := NewBuilder(n, m)
	for i := 0; i < n; i++ {
		b.AddVertex(Label(rng.Intn(cfg.NumLabels)))
	}
	for i := 0; i < m; i++ {
		u := VertexID(rng.Intn(n))
		v := VertexID(rng.Intn(n))
		b.AddEdge(u, v) // self loops and duplicates are dropped by the builder
	}
	return b.MustBuild()
}

// RandomPowerLaw generates a labelled graph with a heavy-tailed degree
// distribution via preferential attachment: each new vertex attaches
// ~avgDeg/2 edges to endpoints sampled proportionally to current degree.
// Real-world graphs' power-law degrees are what make CST workloads skewed
// (Section V-C), so tests for the workload estimator use this generator.
func RandomPowerLaw(cfg GenConfig) *Graph {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.NumVertices
	k := int(cfg.AvgDegree / 2)
	if k < 1 {
		k = 1
	}
	b := NewBuilder(n, n*k)
	for i := 0; i < n; i++ {
		b.AddVertex(Label(rng.Intn(cfg.NumLabels)))
	}
	// endpoints repeats each vertex once per incident edge, so sampling a
	// uniform element of it is degree-proportional sampling.
	endpoints := make([]VertexID, 0, 2*n*k)
	endpoints = append(endpoints, 0)
	for v := 1; v < n; v++ {
		for j := 0; j < k && j < v; j++ {
			var w VertexID
			if rng.Float64() < 0.15 { // uniform escape keeps the graph connected-ish
				w = VertexID(rng.Intn(v))
			} else {
				w = endpoints[rng.Intn(len(endpoints))]
			}
			b.AddEdge(VertexID(v), w)
			endpoints = append(endpoints, VertexID(v), w)
		}
	}
	return b.MustBuild()
}

// RandomConnectedQuery generates a random connected query graph with nv
// vertices, extra random edges beyond the spanning tree, and labels drawn
// from the data graph's alphabet. Used by property tests to fuzz engines.
func RandomConnectedQuery(name string, nv, extraEdges, numLabels int, rng *rand.Rand) *Query {
	labels := make([]Label, nv)
	for i := range labels {
		labels[i] = Label(rng.Intn(numLabels))
	}
	var edges [][2]QueryVertex
	seen := make(map[[2]QueryVertex]bool)
	add := func(u, v QueryVertex) bool {
		if u == v {
			return false
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]QueryVertex{u, v}] {
			return false
		}
		seen[[2]QueryVertex{u, v}] = true
		edges = append(edges, [2]QueryVertex{u, v})
		return true
	}
	for v := 1; v < nv; v++ {
		add(v, rng.Intn(v)) // random spanning tree keeps it connected
	}
	for t := 0; t < extraEdges; t++ {
		add(rng.Intn(nv), rng.Intn(nv))
	}
	q, err := NewQuery(name, labels, edges)
	if err != nil {
		panic(err) // unreachable: construction guarantees validity
	}
	return q
}

// SampleEdges returns a new graph keeping every vertex of g but only a
// uniform fraction of its edges (Fig. 17's |E(G)| scalability experiment).
// fraction is clamped to [0,1]; the sample is deterministic in seed.
func SampleEdges(g *Graph, fraction float64, seed int64) *Graph {
	if fraction >= 1 {
		return g
	}
	if fraction < 0 {
		fraction = 0
	}
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(g.NumVertices(), int(float64(g.NumEdges())*fraction)+1)
	for v := 0; v < g.NumVertices(); v++ {
		b.AddVertex(g.Label(VertexID(v)))
	}
	for v := 0; v < g.NumVertices(); v++ {
		for _, w := range g.Neighbors(VertexID(v)) {
			if VertexID(v) < w && rng.Float64() < fraction {
				b.AddEdge(VertexID(v), w)
			}
		}
	}
	return b.MustBuild()
}

// InducedSubgraph returns the subgraph of g induced by keep (a vertex
// predicate), together with the mapping from new ids to old ids.
func InducedSubgraph(g *Graph, keep func(VertexID) bool) (*Graph, []VertexID) {
	oldToNew := make(map[VertexID]VertexID)
	var newToOld []VertexID
	for v := 0; v < g.NumVertices(); v++ {
		if keep(VertexID(v)) {
			oldToNew[VertexID(v)] = VertexID(len(newToOld))
			newToOld = append(newToOld, VertexID(v))
		}
	}
	b := NewBuilder(len(newToOld), g.NumEdges())
	for _, old := range newToOld {
		b.AddVertex(g.Label(old))
	}
	for _, old := range newToOld {
		nu := oldToNew[old]
		for _, w := range g.Neighbors(old) {
			if nw, ok := oldToNew[w]; ok && nu < nw {
				b.AddEdge(nu, nw)
			}
		}
	}
	return b.MustBuild(), newToOld
}
