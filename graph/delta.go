package graph

import (
	"fmt"
	"sort"
)

// Delta is one batch of graph mutations: vertex and edge inserts and
// deletes, applied atomically by ApplyDelta. Within a batch the operations
// are validated as a set against the pre-delta graph — added edges may
// reference vertices the same batch adds, deleted vertices implicitly drop
// their incident edges, and conflicting operations (the same edge added and
// deleted, an edge added at a vertex the batch deletes) are rejected up
// front so a delta either applies completely or not at all.
type Delta struct {
	// AddVertices appends one vertex per label; ids are assigned densely
	// starting at the pre-delta NumVertices, in slice order.
	AddVertices []Label
	// DelVertices tombstones existing vertices: their incident edges are
	// removed, they leave every label's vertex list (so they can never be
	// matching candidates again), and their ids stay allocated — vertex ids
	// are stable across epochs, which is what lets embeddings be compared
	// between snapshots. A tombstoned id cannot be revived.
	DelVertices []VertexID
	// AddEdges inserts undirected edges. Endpoints may be vertices this
	// batch adds; self loops, duplicate inserts and edges already present
	// are errors.
	AddEdges [][2]VertexID
	// AddEdgeLabels, when non-empty, is aligned with AddEdges and labels
	// both half-edges of each inserted edge. It is required to be empty for
	// edge-unlabeled graphs; on an edge-labeled graph an empty slice labels
	// every inserted edge 0.
	AddEdgeLabels []EdgeLabel
	// DelEdges removes undirected edges that must exist in the pre-delta
	// graph. Edges incident to a DelVertices entry are removed implicitly
	// and must not be listed here too.
	DelEdges [][2]VertexID
}

// Empty reports whether the delta carries no operations.
func (d Delta) Empty() bool {
	return len(d.AddVertices) == 0 && len(d.DelVertices) == 0 &&
		len(d.AddEdges) == 0 && len(d.DelEdges) == 0
}

// Ops returns the number of operations in the batch (implicit edge drops of
// deleted vertices not counted).
func (d Delta) Ops() int {
	return len(d.AddVertices) + len(d.DelVertices) + len(d.AddEdges) + len(d.DelEdges)
}

// Epoch returns the graph's snapshot epoch: 0 for a freshly constructed
// graph, incremented by one for every ApplyDelta batch. Epochs identify
// snapshots in the serving stack's MVCC story — an in-flight match pins the
// epoch it resolved and is never migrated to a later one.
func (g *Graph) Epoch() uint64 { return g.epoch }

// Deleted reports whether v is a tombstone: removed by a delta batch, id
// still allocated, no incident edges, excluded from every label's vertex
// list.
func (g *Graph) Deleted(v VertexID) bool {
	return g.deleted != nil && g.deleted[v]
}

// NumDeleted returns the number of tombstoned vertices.
func (g *Graph) NumDeleted() int { return g.numDeleted }

// LiveVertices returns the number of non-tombstoned vertices.
func (g *Graph) LiveVertices() int { return g.NumVertices() - g.numDeleted }

// nbAdd is one added half-edge: neighbour and (for edge-labeled graphs) the
// half-edge label.
type nbAdd struct {
	w VertexID
	l EdgeLabel
}

// ApplyDelta applies one mutation batch and returns the post-delta graph as
// a new immutable snapshot with Epoch()+1, plus the sorted set of vertices
// whose adjacency the batch touched (endpoints of inserted and removed
// edges, added vertices, tombstoned vertices and their former neighbours) —
// the "dirty" region incremental consumers re-expand. The receiver is not
// modified in any way: in-flight readers of the old epoch stay consistent,
// which is the copy-on-write MVCC contract the serving stack builds on.
//
// Cost is one pass over the CSR arrays: unchanged vertices have their
// adjacency spans and label-index runs copied verbatim (the label index is
// maintained incrementally, never rebuilt from scratch), and only dirty
// vertices pay the merge and re-grouping work.
//
// An invalid batch — out-of-range or tombstoned endpoints, self loops,
// duplicate or conflicting operations, inserting an existing edge, deleting
// a missing one — fails with an error and no new snapshot.
func (g *Graph) ApplyDelta(d Delta) (*Graph, []VertexID, error) {
	nOld := g.NumVertices()
	n := nOld + len(d.AddVertices)

	if len(d.AddEdgeLabels) != 0 && len(d.AddEdgeLabels) != len(d.AddEdges) {
		return nil, nil, fmt.Errorf("graph: ApplyDelta: %d edge labels for %d added edges", len(d.AddEdgeLabels), len(d.AddEdges))
	}
	if len(d.AddEdgeLabels) != 0 && g.edgeLabels == nil {
		return nil, nil, fmt.Errorf("graph: ApplyDelta: edge labels on an edge-unlabeled graph")
	}

	// Vertex deletions: in range, live, no duplicates.
	delV := make(map[VertexID]bool, len(d.DelVertices))
	for _, v := range d.DelVertices {
		if int(v) >= nOld {
			return nil, nil, fmt.Errorf("graph: ApplyDelta: delete of out-of-range vertex %d (n=%d)", v, nOld)
		}
		if g.Deleted(v) {
			return nil, nil, fmt.Errorf("graph: ApplyDelta: vertex %d already deleted", v)
		}
		if delV[v] {
			return nil, nil, fmt.Errorf("graph: ApplyDelta: vertex %d deleted twice", v)
		}
		delV[v] = true
	}

	// Edge operations: canonicalised, validated as a set.
	canon := func(u, v VertexID) [2]VertexID {
		if u > v {
			u, v = v, u
		}
		return [2]VertexID{u, v}
	}
	seen := make(map[[2]VertexID]bool, len(d.AddEdges)+len(d.DelEdges))
	for _, e := range d.AddEdges {
		u, v := e[0], e[1]
		if int(u) >= n || int(v) >= n {
			return nil, nil, fmt.Errorf("graph: ApplyDelta: added edge (%d,%d) references missing vertex (n=%d)", u, v, n)
		}
		if u == v {
			return nil, nil, fmt.Errorf("graph: ApplyDelta: self loop at %d", u)
		}
		for _, w := range [2]VertexID{u, v} {
			if (int(w) < nOld && g.Deleted(w)) || delV[w] {
				return nil, nil, fmt.Errorf("graph: ApplyDelta: added edge (%d,%d) touches deleted vertex %d", u, v, w)
			}
		}
		k := canon(u, v)
		if seen[k] {
			return nil, nil, fmt.Errorf("graph: ApplyDelta: duplicate or conflicting operation on edge (%d,%d)", k[0], k[1])
		}
		if int(u) < nOld && int(v) < nOld && g.HasEdge(u, v) {
			return nil, nil, fmt.Errorf("graph: ApplyDelta: edge (%d,%d) already present", u, v)
		}
		seen[k] = true
	}
	for _, e := range d.DelEdges {
		u, v := e[0], e[1]
		if int(u) >= nOld || int(v) >= nOld {
			return nil, nil, fmt.Errorf("graph: ApplyDelta: deleted edge (%d,%d) references missing vertex (n=%d)", u, v, nOld)
		}
		if u == v {
			return nil, nil, fmt.Errorf("graph: ApplyDelta: self loop at %d", u)
		}
		if delV[u] || delV[v] {
			return nil, nil, fmt.Errorf("graph: ApplyDelta: edge (%d,%d) is removed implicitly by a vertex delete", u, v)
		}
		k := canon(u, v)
		if seen[k] {
			return nil, nil, fmt.Errorf("graph: ApplyDelta: duplicate or conflicting operation on edge (%d,%d)", k[0], k[1])
		}
		if !g.HasEdge(u, v) {
			return nil, nil, fmt.Errorf("graph: ApplyDelta: deleted edge (%d,%d) not present", u, v)
		}
		seen[k] = true
	}

	// Per-vertex change lists. addN/delN are keyed only by dirty vertices,
	// so the maps stay proportional to the batch, not the graph.
	addN := make(map[VertexID][]nbAdd)
	for i, e := range d.AddEdges {
		var l EdgeLabel
		if len(d.AddEdgeLabels) > 0 {
			l = d.AddEdgeLabels[i]
		}
		addN[e[0]] = append(addN[e[0]], nbAdd{w: e[1], l: l})
		addN[e[1]] = append(addN[e[1]], nbAdd{w: e[0], l: l})
	}
	delN := make(map[VertexID][]VertexID)
	for _, e := range d.DelEdges {
		delN[e[0]] = append(delN[e[0]], e[1])
		delN[e[1]] = append(delN[e[1]], e[0])
	}
	for v := range delV {
		for _, w := range g.Neighbors(v) {
			if !delV[w] {
				delN[w] = append(delN[w], v)
			}
		}
	}
	for v := range addN {
		adds := addN[v]
		sort.Slice(adds, func(i, j int) bool { return adds[i].w < adds[j].w })
	}
	for v := range delN {
		dels := delN[v]
		sort.Slice(dels, func(i, j int) bool { return dels[i] < dels[j] })
	}

	// The dirty set: every vertex whose adjacency (or existence) changes.
	dirty := make(map[VertexID]bool, len(addN)+len(delN)+len(delV)+len(d.AddVertices))
	for v := range addN {
		dirty[v] = true
	}
	for v := range delN {
		dirty[v] = true
	}
	for v := range delV {
		dirty[v] = true
	}
	for i := range d.AddVertices {
		dirty[VertexID(nOld+i)] = true
	}
	touched := make([]VertexID, 0, len(dirty))
	for v := range dirty {
		touched = append(touched, v)
	}
	sort.Slice(touched, func(i, j int) bool { return touched[i] < touched[j] })

	// Labels and label alphabet.
	labels := make([]Label, 0, n)
	labels = append(labels, g.labels...)
	labels = append(labels, d.AddVertices...)
	numLabels := g.numLabels
	for _, l := range d.AddVertices {
		if int(l)+1 > numLabels {
			numLabels = int(l) + 1
		}
	}

	// Tombstones.
	var deleted []bool
	numDeleted := g.numDeleted
	if g.deleted != nil || len(delV) > 0 {
		deleted = make([]bool, n)
		copy(deleted, g.deleted)
		for v := range delV {
			deleted[v] = true
		}
		numDeleted += len(delV)
	}

	// New CSR extents: offsets from per-vertex degree arithmetic, maximum
	// degree folded in the same pass.
	offsets := make([]int64, n+1)
	maxDeg := 0
	for v := 0; v < n; v++ {
		var deg int
		switch {
		case v >= nOld:
			deg = len(addN[VertexID(v)])
		case delV[VertexID(v)] || g.Deleted(VertexID(v)):
			deg = 0
		default:
			deg = g.Degree(VertexID(v)) + len(addN[VertexID(v)]) - len(delN[VertexID(v)])
		}
		offsets[v+1] = offsets[v] + int64(deg)
		if deg > maxDeg {
			maxDeg = deg
		}
	}
	neighbors := make([]VertexID, offsets[n])
	var elab []EdgeLabel
	if g.edgeLabels != nil {
		elab = make([]EdgeLabel, offsets[n])
	}
	for v := 0; v < n; v++ {
		vid := VertexID(v)
		dst := neighbors[offsets[v]:offsets[v+1]]
		if v < nOld && !dirty[vid] {
			// Clean vertex: adjacency span copied verbatim.
			copy(dst, g.Neighbors(vid))
			if elab != nil {
				copy(elab[offsets[v]:offsets[v+1]], g.edgeLabels[g.offsets[v]:g.offsets[v+1]])
			}
			continue
		}
		if delV[vid] || (v < nOld && g.Deleted(vid)) {
			continue // tombstone: no adjacency
		}
		// Dirty vertex: sorted merge of (old adjacency minus removals) with
		// the sorted additions.
		var old []VertexID
		var oldLab []EdgeLabel
		if v < nOld {
			old = g.Neighbors(vid)
			if elab != nil {
				oldLab = g.edgeLabels[g.offsets[v]:g.offsets[v+1]]
			}
		}
		adds := addN[vid]
		dels := delN[vid]
		var di, ai, out int
		var dstLab []EdgeLabel
		if elab != nil {
			dstLab = elab[offsets[v]:offsets[v+1]]
		}
		for i, w := range old {
			if di < len(dels) && dels[di] == w {
				di++
				continue
			}
			for ai < len(adds) && adds[ai].w < w {
				dst[out] = adds[ai].w
				if dstLab != nil {
					dstLab[out] = adds[ai].l
				}
				out++
				ai++
			}
			dst[out] = w
			if dstLab != nil {
				dstLab[out] = oldLab[i]
			}
			out++
		}
		for ; ai < len(adds); ai++ {
			dst[out] = adds[ai].w
			if dstLab != nil {
				dstLab[out] = adds[ai].l
			}
			out++
		}
	}

	// Per-label vertex lists: the outer slice is fresh, untouched labels
	// share the old epoch's list, and only labels gaining or losing
	// vertices are rebuilt copy-on-write. New ids exceed every old id, so
	// appending them in id order keeps the lists sorted.
	byLabel := make([][]VertexID, numLabels)
	copy(byLabel, g.byLabel)
	newByLbl := make(map[Label][]VertexID)
	for i, l := range d.AddVertices {
		newByLbl[l] = append(newByLbl[l], VertexID(nOld+i))
	}
	relabel := make(map[Label]bool, len(newByLbl)+len(delV))
	for l := range newByLbl {
		relabel[l] = true
	}
	for v := range delV {
		relabel[g.labels[v]] = true
	}
	for l := range relabel {
		var old []VertexID
		if int(l) < len(g.byLabel) {
			old = g.byLabel[l]
		}
		lst := make([]VertexID, 0, len(old)+len(newByLbl[l]))
		for _, v := range old {
			if !delV[v] {
				lst = append(lst, v)
			}
		}
		byLabel[l] = append(lst, newByLbl[l]...)
	}

	g2 := &Graph{
		offsets:    offsets,
		neighbors:  neighbors,
		labels:     labels,
		byLabel:    byLabel,
		numLabels:  numLabels,
		maxDegree:  maxDeg,
		edgeLabels: elab,
		deleted:    deleted,
		numDeleted: numDeleted,
		epoch:      g.epoch + 1,
	}
	g2.updateLabelIndexFrom(g, dirty)
	return g2, touched, nil
}
