package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// The text format is the one used by most subgraph-matching codebases
// (CFL-Match, DAF, CECI and the in-memory study of Sun & Luo):
//
//	t <numVertices> <numEdges>
//	v <id> <label> [degree]
//	e <u> <v> [fwdEdgeLabel [revEdgeLabel]]
//
// Lines starting with '#' or '%' are comments. The optional degree field is
// ignored on load and emitted on save for compatibility. Edge labels are
// emitted only for edge-labeled graphs; a single label means both
// half-edges carry it, two labels encode a directed relation.

// WriteText serialises g in the text format.
func WriteText(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	fmt.Fprintf(bw, "t %d %d\n", g.NumVertices(), g.NumEdges())
	for v := 0; v < g.NumVertices(); v++ {
		fmt.Fprintf(bw, "v %d %d %d\n", v, g.Label(VertexID(v)), g.Degree(VertexID(v)))
	}
	for v := 0; v < g.NumVertices(); v++ {
		for _, w2 := range g.Neighbors(VertexID(v)) {
			if VertexID(v) >= w2 {
				continue
			}
			if !g.EdgeLabeled() {
				fmt.Fprintf(bw, "e %d %d\n", v, w2)
				continue
			}
			fwd, _ := g.EdgeLabelBetween(VertexID(v), w2)
			rev, _ := g.EdgeLabelBetween(w2, VertexID(v))
			if fwd == rev {
				fmt.Fprintf(bw, "e %d %d %d\n", v, w2, fwd)
			} else {
				fmt.Fprintf(bw, "e %d %d %d %d\n", v, w2, fwd, rev)
			}
		}
	}
	return bw.Flush()
}

// ReadText parses the text format into a Graph.
func ReadText(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var b *Builder
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "t":
			if len(fields) < 3 {
				return nil, fmt.Errorf("graph io: line %d: malformed header", line)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph io: line %d: %v", line, err)
			}
			m, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("graph io: line %d: %v", line, err)
			}
			b = NewBuilder(n, m)
		case "v":
			if b == nil {
				return nil, fmt.Errorf("graph io: line %d: 'v' before 't' header", line)
			}
			if len(fields) < 3 {
				return nil, fmt.Errorf("graph io: line %d: malformed vertex", line)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph io: line %d: %v", line, err)
			}
			if id != b.NumVertices() {
				return nil, fmt.Errorf("graph io: line %d: vertex ids must be dense and ascending (got %d, want %d)", line, id, b.NumVertices())
			}
			l, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("graph io: line %d: %v", line, err)
			}
			b.AddVertex(Label(l))
		case "e":
			if b == nil {
				return nil, fmt.Errorf("graph io: line %d: 'e' before 't' header", line)
			}
			if len(fields) < 3 {
				return nil, fmt.Errorf("graph io: line %d: malformed edge", line)
			}
			u, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph io: line %d: %v", line, err)
			}
			v, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("graph io: line %d: %v", line, err)
			}
			switch len(fields) {
			case 3:
				b.AddEdge(VertexID(u), VertexID(v))
			case 4:
				l, err := strconv.Atoi(fields[3])
				if err != nil {
					return nil, fmt.Errorf("graph io: line %d: %v", line, err)
				}
				b.AddEdgeLabeled(VertexID(u), VertexID(v), EdgeLabel(l))
			default:
				fwd, err := strconv.Atoi(fields[3])
				if err != nil {
					return nil, fmt.Errorf("graph io: line %d: %v", line, err)
				}
				rev, err := strconv.Atoi(fields[4])
				if err != nil {
					return nil, fmt.Errorf("graph io: line %d: %v", line, err)
				}
				b.AddEdgeArcs(VertexID(u), VertexID(v), EdgeLabel(fwd), EdgeLabel(rev))
			}
		default:
			return nil, fmt.Errorf("graph io: line %d: unknown record %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("graph io: empty input")
	}
	return b.Build()
}

// ReadQueryText parses the same text format into a Query.
func ReadQueryText(name string, r io.Reader) (*Query, error) {
	g, err := ReadText(r)
	if err != nil {
		return nil, err
	}
	labels := make([]Label, g.NumVertices())
	var edges [][2]QueryVertex
	for v := 0; v < g.NumVertices(); v++ {
		labels[v] = g.Label(VertexID(v))
		for _, w := range g.Neighbors(VertexID(v)) {
			if VertexID(v) < w {
				edges = append(edges, [2]QueryVertex{v, int(w)})
			}
		}
	}
	q, err := NewQuery(name, labels, edges)
	if err != nil {
		return nil, err
	}
	if g.EdgeLabeled() {
		for _, e := range edges {
			fwd, _ := g.EdgeLabelBetween(VertexID(e[0]), VertexID(e[1]))
			rev, _ := g.EdgeLabelBetween(VertexID(e[1]), VertexID(e[0]))
			if fwd != WildcardEdgeLabel || rev != WildcardEdgeLabel {
				if err := q.SetEdgeArcLabels(e[0], e[1], fwd, rev); err != nil {
					return nil, err
				}
			}
		}
	}
	return q, nil
}

// LoadFile reads a graph from path, choosing binary format when the file
// starts with the binary magic and text otherwise.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	head, err := br.Peek(4)
	if err == nil && (string(head) == binMagic || string(head) == binMagic2) {
		return ReadBinary(br)
	}
	return ReadText(br)
}

// SaveFile writes g to path in the given format ("text" or "binary").
func SaveFile(path, format string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch format {
	case "text":
		return WriteText(f, g)
	case "binary":
		return WriteBinary(f, g)
	default:
		return fmt.Errorf("graph io: unknown format %q", format)
	}
}

const (
	binMagic  = "FGB1" // FAST graph binary, version 1 (vertex labels only)
	binMagic2 = "FGB2" // version 2: adds per-half-edge labels
)

// WriteBinary serialises g in a compact little-endian binary format:
// magic, n, m, labels, offsets, neighbours[, edge labels].
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	magic := binMagic
	if g.EdgeLabeled() {
		magic = binMagic2
	}
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	hdr := [3]uint64{uint64(g.NumVertices()), uint64(len(g.neighbors)), uint64(g.numLabels)}
	for _, x := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, x); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.labels); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.offsets); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.neighbors); err != nil {
		return err
	}
	if g.EdgeLabeled() {
		if err := binary.Write(bw, binary.LittleEndian, g.edgeLabels); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses the binary format written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, err
	}
	if string(magic) != binMagic && string(magic) != binMagic2 {
		return nil, fmt.Errorf("graph io: bad magic %q", magic)
	}
	var hdr [3]uint64
	for i := range hdr {
		if err := binary.Read(r, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, err
		}
	}
	n, nn, numLabels := int(hdr[0]), int(hdr[1]), int(hdr[2])
	g := &Graph{
		labels:    make([]Label, n),
		offsets:   make([]int64, n+1),
		neighbors: make([]VertexID, nn),
		numLabels: numLabels,
	}
	if err := binary.Read(r, binary.LittleEndian, &g.labels); err != nil {
		return nil, err
	}
	if err := binary.Read(r, binary.LittleEndian, &g.offsets); err != nil {
		return nil, err
	}
	if err := binary.Read(r, binary.LittleEndian, &g.neighbors); err != nil {
		return nil, err
	}
	if string(magic) == binMagic2 {
		g.edgeLabels = make([]EdgeLabel, nn)
		if err := binary.Read(r, binary.LittleEndian, &g.edgeLabels); err != nil {
			return nil, err
		}
	}
	g.byLabel = make([][]VertexID, numLabels)
	for v, l := range g.labels {
		if int(l) >= numLabels {
			return nil, fmt.Errorf("graph io: label %d out of range (numLabels=%d)", l, numLabels)
		}
		g.byLabel[l] = append(g.byLabel[l], VertexID(v))
	}
	for v := 0; v < n; v++ {
		if d := g.Degree(VertexID(v)); d > g.maxDegree {
			g.maxDegree = d
		}
	}
	// Corrupt offsets or out-of-range neighbours must fail before the label
	// index walks the adjacency.
	if g.offsets[0] != 0 || g.offsets[n] != int64(nn) {
		return nil, fmt.Errorf("graph io: corrupt binary graph: offsets endpoints [%d,%d]", g.offsets[0], g.offsets[n])
	}
	for v := 0; v < n; v++ {
		if g.offsets[v] > g.offsets[v+1] {
			return nil, fmt.Errorf("graph io: corrupt binary graph: offsets not monotone at %d", v)
		}
	}
	for _, w := range g.neighbors {
		if int(w) >= n {
			return nil, fmt.Errorf("graph io: corrupt binary graph: neighbour %d out of range (n=%d)", w, n)
		}
	}
	g.buildLabelIndex()
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph io: corrupt binary graph: %v", err)
	}
	return g, nil
}
