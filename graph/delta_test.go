package graph

import (
	"strings"
	"testing"
)

// deltaBase builds the shared fixture: labels [0,1,0,1,2], edges forming a
// path 0-1-2-3 plus 1-4.
func deltaBase(t *testing.T) *Graph {
	t.Helper()
	g, err := FromEdgeList(
		[]Label{0, 1, 0, 1, 2},
		[][2]VertexID{{0, 1}, {1, 2}, {2, 3}, {1, 4}},
	)
	if err != nil {
		t.Fatalf("base graph: %v", err)
	}
	return g
}

func TestDeltaApplyBasic(t *testing.T) {
	g := deltaBase(t)
	if g.Epoch() != 0 {
		t.Fatalf("fresh graph epoch = %d, want 0", g.Epoch())
	}
	g2, touched, err := g.ApplyDelta(Delta{
		AddVertices: []Label{2}, // vertex 5
		AddEdges:    [][2]VertexID{{5, 0}, {3, 4}},
		DelEdges:    [][2]VertexID{{1, 2}},
	})
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	if g2.Epoch() != 1 {
		t.Errorf("epoch = %d, want 1", g2.Epoch())
	}
	if err := g2.Validate(); err != nil {
		t.Fatalf("post-delta Validate: %v", err)
	}
	wantTouched := []VertexID{0, 1, 2, 3, 4, 5}
	if len(touched) != len(wantTouched) {
		t.Fatalf("touched = %v, want %v", touched, wantTouched)
	}
	for i, v := range wantTouched {
		if touched[i] != v {
			t.Fatalf("touched = %v, want %v", touched, wantTouched)
		}
	}
	wantAdj := map[VertexID][]VertexID{
		0: {1, 5},
		1: {0, 4},
		2: {3},
		3: {2, 4},
		4: {1, 3},
		5: {0},
	}
	for v, want := range wantAdj {
		got := g2.Neighbors(v)
		if len(got) != len(want) {
			t.Fatalf("Neighbors(%d) = %v, want %v", v, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Neighbors(%d) = %v, want %v", v, got, want)
			}
		}
	}
	if got := g2.VerticesWithLabel(2); len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Errorf("VerticesWithLabel(2) = %v, want [4 5]", got)
	}
	// The pre-delta snapshot is untouched: same structure, same epoch.
	if g.NumVertices() != 5 || g.NumEdges() != 4 || g.Epoch() != 0 {
		t.Errorf("old snapshot mutated: %v epoch=%d", g, g.Epoch())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("old snapshot Validate: %v", err)
	}
}

func TestDeltaApplyVertexDelete(t *testing.T) {
	g := deltaBase(t)
	g2, touched, err := g.ApplyDelta(Delta{DelVertices: []VertexID{1}})
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	if err := g2.Validate(); err != nil {
		t.Fatalf("post-delta Validate: %v", err)
	}
	if !g2.Deleted(1) || g2.Deleted(0) {
		t.Errorf("Deleted flags wrong: Deleted(1)=%v Deleted(0)=%v", g2.Deleted(1), g2.Deleted(0))
	}
	if g2.NumVertices() != 5 || g2.LiveVertices() != 4 || g2.NumDeleted() != 1 {
		t.Errorf("vertex counts: n=%d live=%d deleted=%d", g2.NumVertices(), g2.LiveVertices(), g2.NumDeleted())
	}
	if d := g2.Degree(1); d != 0 {
		t.Errorf("deleted vertex degree = %d, want 0", d)
	}
	// Incident edges removed from the surviving endpoints too.
	for _, v := range []VertexID{0, 2, 4} {
		if g2.HasEdge(v, 1) {
			t.Errorf("edge (%d,1) survived the vertex delete", v)
		}
	}
	if g2.HasEdge(2, 3) != true {
		t.Errorf("unrelated edge (2,3) lost")
	}
	// Tombstones leave the label's candidate list.
	if got := g2.VerticesWithLabel(1); len(got) != 1 || got[0] != 3 {
		t.Errorf("VerticesWithLabel(1) = %v, want [3]", got)
	}
	if len(touched) != 4 { // 0, 1, 2, 4
		t.Errorf("touched = %v, want the deleted vertex plus former neighbours", touched)
	}
	// The old snapshot still sees vertex 1 alive and connected.
	if g.Deleted(1) || !g.HasEdge(0, 1) {
		t.Errorf("old snapshot mutated by vertex delete")
	}
	// A tombstoned id cannot be revived or reconnected.
	if _, _, err := g2.ApplyDelta(Delta{AddEdges: [][2]VertexID{{1, 3}}}); err == nil {
		t.Errorf("edge add at tombstone succeeded, want error")
	}
	if _, _, err := g2.ApplyDelta(Delta{DelVertices: []VertexID{1}}); err == nil {
		t.Errorf("double delete across epochs succeeded, want error")
	}
}

func TestDeltaApplyEdgeLabels(t *testing.T) {
	b := NewBuilder(4, 3)
	b.AddVertices(0, 2)
	b.AddVertices(1, 2)
	b.AddEdgeLabeled(0, 2, 7)
	b.AddEdgeLabeled(1, 3, 9)
	g := b.MustBuild()

	g2, _, err := g.ApplyDelta(Delta{
		AddEdges:      [][2]VertexID{{0, 3}, {1, 2}},
		AddEdgeLabels: []EdgeLabel{5, 6},
	})
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	if err := g2.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for _, tc := range []struct {
		u, v VertexID
		want EdgeLabel
	}{{0, 2, 7}, {1, 3, 9}, {0, 3, 5}, {1, 2, 6}} {
		if l, ok := g2.EdgeLabelBetween(tc.u, tc.v); !ok || l != tc.want {
			t.Errorf("EdgeLabelBetween(%d,%d) = %d,%v want %d", tc.u, tc.v, l, ok, tc.want)
		}
	}
	// The label index carries the half-edge labels of the new epoch.
	nbrs, labs := g2.NeighborsWithLabelAndEdgeLabels(0, 1)
	if len(nbrs) != 2 || nbrs[0] != 2 || nbrs[1] != 3 || labs[0] != 7 || labs[1] != 5 {
		t.Errorf("NeighborsWithLabelAndEdgeLabels(0,1) = %v %v", nbrs, labs)
	}

	// Edge labels on an edge-unlabeled graph are rejected.
	plain := deltaBase(t)
	_, _, err = plain.ApplyDelta(Delta{AddEdges: [][2]VertexID{{0, 3}}, AddEdgeLabels: []EdgeLabel{1}})
	if err == nil || !strings.Contains(err.Error(), "edge-unlabeled") {
		t.Errorf("edge labels on unlabeled graph: err = %v", err)
	}
}

func TestDeltaApplyErrors(t *testing.T) {
	g := deltaBase(t)
	cases := []struct {
		name string
		d    Delta
	}{
		{"del out-of-range vertex", Delta{DelVertices: []VertexID{9}}},
		{"del vertex twice", Delta{DelVertices: []VertexID{1, 1}}},
		{"add edge out of range", Delta{AddEdges: [][2]VertexID{{0, 9}}}},
		{"add self loop", Delta{AddEdges: [][2]VertexID{{2, 2}}}},
		{"add existing edge", Delta{AddEdges: [][2]VertexID{{1, 0}}}},
		{"add edge twice", Delta{AddEdges: [][2]VertexID{{0, 3}, {3, 0}}}},
		{"add edge at deleted endpoint", Delta{DelVertices: []VertexID{0}, AddEdges: [][2]VertexID{{0, 3}}}},
		{"del edge out of range", Delta{DelEdges: [][2]VertexID{{0, 9}}}},
		{"del missing edge", Delta{DelEdges: [][2]VertexID{{0, 3}}}},
		{"del edge twice", Delta{DelEdges: [][2]VertexID{{0, 1}, {1, 0}}}},
		{"add and del same edge", Delta{AddEdges: [][2]VertexID{{0, 3}}, DelEdges: [][2]VertexID{{0, 3}}}},
		{"del edge at deleted vertex", Delta{DelVertices: []VertexID{1}, DelEdges: [][2]VertexID{{0, 1}}}},
		{"edge label count mismatch", Delta{AddEdges: [][2]VertexID{{0, 3}}, AddEdgeLabels: []EdgeLabel{1, 2}}},
		{"del edge referencing batch-added vertex", Delta{AddVertices: []Label{0}, DelEdges: [][2]VertexID{{5, 0}}}},
	}
	for _, tc := range cases {
		if _, _, err := g.ApplyDelta(tc.d); err == nil {
			t.Errorf("%s: ApplyDelta succeeded, want error", tc.name)
		}
	}
	// A failed batch leaves no trace.
	if g.Epoch() != 0 || g.NumEdges() != 4 {
		t.Errorf("failed batch mutated the graph")
	}
}

func TestDeltaApplyEmpty(t *testing.T) {
	g := deltaBase(t)
	var d Delta
	if !d.Empty() || d.Ops() != 0 {
		t.Fatalf("zero Delta: Empty=%v Ops=%d", d.Empty(), d.Ops())
	}
	g2, touched, err := g.ApplyDelta(d)
	if err != nil {
		t.Fatalf("empty ApplyDelta: %v", err)
	}
	if g2.Epoch() != 1 || len(touched) != 0 {
		t.Errorf("empty delta: epoch=%d touched=%v", g2.Epoch(), touched)
	}
	if err := g2.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

// TestDeltaValidateCatchesCorruption corrupts post-delta invariants directly
// and checks Validate reports each — the consistency checks ApplyDelta's
// outputs are held to.
func TestDeltaValidateCatchesCorruption(t *testing.T) {
	fresh := func() *Graph {
		g := deltaBase(t)
		g2, _, err := g.ApplyDelta(Delta{DelVertices: []VertexID{4}})
		if err != nil {
			t.Fatalf("ApplyDelta: %v", err)
		}
		return g2
	}

	g := fresh()
	g.byLabel[2] = []VertexID{4} // resurrect the tombstone in its label list
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "deleted") {
		t.Errorf("byLabel listing a tombstone: Validate = %v", err)
	}

	g = fresh()
	g.byLabel[0] = g.byLabel[0][:1] // drop a live vertex from its label list
	if err := g.Validate(); err == nil {
		t.Errorf("incomplete byLabel: Validate = nil, want error")
	}

	g = fresh()
	g.deleted[0] = true // tombstone with live edges, count out of sync
	if err := g.Validate(); err == nil {
		t.Errorf("tombstone with edges: Validate = nil, want error")
	}

	g = fresh()
	g.lidx.runStarts[0]++ // break a label-index run start
	if err := g.Validate(); err == nil {
		t.Errorf("corrupt label index: Validate = nil, want error")
	}
}
