package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates vertices and edges and finalises them into an
// immutable CSR Graph. Duplicate edges and self loops are silently dropped,
// matching the paper's focus on simple graphs.
type Builder struct {
	labels   []Label
	edges    [][2]VertexID
	maxLabel Label
	// edgeLabels maps directed half-edges to labels when AddEdgeLabeled /
	// AddEdgeArcs were used; nil for edge-unlabeled graphs.
	edgeLabels map[[2]VertexID]EdgeLabel
}

// NewBuilder returns a Builder expecting roughly n vertices and m edges.
func NewBuilder(n, m int) *Builder {
	return &Builder{
		labels: make([]Label, 0, n),
		edges:  make([][2]VertexID, 0, m),
	}
}

// AddVertex appends a vertex with the given label and returns its id.
func (b *Builder) AddVertex(l Label) VertexID {
	id := VertexID(len(b.labels))
	b.labels = append(b.labels, l)
	if l > b.maxLabel {
		b.maxLabel = l
	}
	return id
}

// AddVertices appends k vertices with the same label and returns the id of
// the first one; the block is contiguous.
func (b *Builder) AddVertices(l Label, k int) VertexID {
	first := VertexID(len(b.labels))
	for i := 0; i < k; i++ {
		b.AddVertex(l)
	}
	return first
}

// SetLabel overrides the label of an existing vertex.
func (b *Builder) SetLabel(v VertexID, l Label) {
	b.labels[v] = l
	if l > b.maxLabel {
		b.maxLabel = l
	}
}

// AddEdge records an undirected edge. Self loops are ignored; duplicates are
// removed at Build time.
func (b *Builder) AddEdge(u, v VertexID) {
	if u == v {
		return
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, [2]VertexID{u, v})
}

// NumVertices returns the number of vertices added so far.
func (b *Builder) NumVertices() int { return len(b.labels) }

// NumEdges returns the number of (possibly duplicate) edges recorded so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build finalises the graph. The Builder must not be reused afterwards.
func (b *Builder) Build() (*Graph, error) {
	n := len(b.labels)
	for _, e := range b.edges {
		if int(e[0]) >= n || int(e[1]) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) references missing vertex (n=%d)", e[0], e[1], n)
		}
	}
	// Deduplicate canonicalised edges.
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i][0] != b.edges[j][0] {
			return b.edges[i][0] < b.edges[j][0]
		}
		return b.edges[i][1] < b.edges[j][1]
	})
	uniq := b.edges[:0]
	for i, e := range b.edges {
		if i == 0 || e != b.edges[i-1] {
			uniq = append(uniq, e)
		}
	}
	b.edges = uniq

	deg := make([]int64, n+1)
	for _, e := range b.edges {
		deg[e[0]+1]++
		deg[e[1]+1]++
	}
	offsets := make([]int64, n+1)
	for v := 0; v < n; v++ {
		offsets[v+1] = offsets[v] + deg[v+1]
	}
	neighbors := make([]VertexID, offsets[n])
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	for _, e := range b.edges {
		neighbors[cursor[e[0]]] = e[1]
		cursor[e[0]]++
		neighbors[cursor[e[1]]] = e[0]
		cursor[e[1]]++
	}
	maxDeg := 0
	for v := 0; v < n; v++ {
		adj := neighbors[offsets[v]:offsets[v+1]]
		sort.Slice(adj, func(i, j int) bool { return adj[i] < adj[j] })
		if len(adj) > maxDeg {
			maxDeg = len(adj)
		}
	}
	numLabels := int(b.maxLabel) + 1
	if n == 0 {
		numLabels = 0
	}
	byLabel := make([][]VertexID, numLabels)
	for v, l := range b.labels {
		byLabel[l] = append(byLabel[l], VertexID(v))
	}
	g := &Graph{
		offsets:   offsets,
		neighbors: neighbors,
		labels:    b.labels,
		byLabel:   byLabel,
		numLabels: numLabels,
		maxDegree: maxDeg,
	}
	if b.edgeLabels != nil {
		g.edgeLabels = make([]EdgeLabel, len(neighbors))
		for v := 0; v < n; v++ {
			adj := g.Neighbors(VertexID(v))
			for i, w := range adj {
				g.edgeLabels[offsets[v]+int64(i)] = b.edgeLabels[[2]VertexID{VertexID(v), w}]
			}
		}
	}
	g.buildLabelIndex()
	return g, nil
}

// MustBuild is Build but panics on error; convenient in tests and examples
// where the input is known to be well formed.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// FromEdgeList builds a graph from explicit label and edge slices.
func FromEdgeList(labels []Label, edges [][2]VertexID) (*Graph, error) {
	b := NewBuilder(len(labels), len(edges))
	for _, l := range labels {
		b.AddVertex(l)
	}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}
