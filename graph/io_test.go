package graph

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func graphsEqual(a, b *Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for v := 0; v < a.NumVertices(); v++ {
		if a.Label(VertexID(v)) != b.Label(VertexID(v)) {
			return false
		}
		av, bv := a.Neighbors(VertexID(v)), b.Neighbors(VertexID(v))
		if len(av) != len(bv) {
			return false
		}
		for i := range av {
			if av[i] != bv[i] {
				return false
			}
		}
	}
	return true
}

func TestTextRoundTrip(t *testing.T) {
	g := RandomUniform(GenConfig{NumVertices: 120, NumLabels: 5, AvgDegree: 6, Seed: 11})
	var buf bytes.Buffer
	if err := WriteText(&buf, g); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	g2, err := ReadText(&buf)
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	if !graphsEqual(g, g2) {
		t.Error("text round trip changed the graph")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g := RandomPowerLaw(GenConfig{NumVertices: 150, NumLabels: 7, AvgDegree: 6, Seed: 13})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if !graphsEqual(g, g2) {
		t.Error("binary round trip changed the graph")
	}
}

func TestReadTextCommentsAndErrors(t *testing.T) {
	src := "# comment\n% another\nt 2 1\nv 0 3\nv 1 4\ne 0 1\n"
	g, err := ReadText(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	if g.NumVertices() != 2 || g.NumEdges() != 1 || g.Label(1) != 4 {
		t.Errorf("parsed %v", g)
	}
	bad := []string{
		"",                             // empty
		"v 0 1\n",                      // vertex before header
		"t 1 0\nv 3 0\n",               // non-dense id
		"t 1 0\nx 0 0\n",               // unknown record
		"t 2 1\nv 0 1\ne 0 1\n",        // edge to undeclared vertex (id 1 missing)
		"t 1 0\nv 0 zebra\n",           // bad label
		"t 2 1\nv 0 1\nv 1 1\ne 0 q\n", // bad edge endpoint
	}
	for i, s := range bad {
		if _, err := ReadText(strings.NewReader(s)); err == nil {
			t.Errorf("bad input %d accepted", i)
		}
	}
}

func TestReadQueryText(t *testing.T) {
	src := "t 3 3\nv 0 0\nv 1 1\nv 2 1\ne 0 1\ne 1 2\ne 0 2\n"
	q, err := ReadQueryText("tri", strings.NewReader(src))
	if err != nil {
		t.Fatalf("ReadQueryText: %v", err)
	}
	if q.NumVertices() != 3 || q.NumEdges() != 3 || q.Label(2) != 1 {
		t.Errorf("parsed %v", q)
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("accepted bad magic")
	}
	if _, err := ReadBinary(bytes.NewReader([]byte("FGB1"))); err == nil {
		t.Error("accepted truncated header")
	}
}

func TestSaveLoadFile(t *testing.T) {
	g := RandomUniform(GenConfig{NumVertices: 60, NumLabels: 3, AvgDegree: 4, Seed: 21})
	dir := t.TempDir()
	for _, format := range []string{"text", "binary"} {
		path := filepath.Join(dir, "g."+format)
		if err := SaveFile(path, format, g); err != nil {
			t.Fatalf("SaveFile(%s): %v", format, err)
		}
		g2, err := LoadFile(path)
		if err != nil {
			t.Fatalf("LoadFile(%s): %v", format, err)
		}
		if !graphsEqual(g, g2) {
			t.Errorf("%s round trip via file changed the graph", format)
		}
	}
	if err := SaveFile(filepath.Join(dir, "g.x"), "xml", g); err == nil {
		t.Error("accepted unknown format")
	}
}

func TestStats(t *testing.T) {
	g := RandomUniform(GenConfig{NumVertices: 100, NumLabels: 4, AvgDegree: 6, Seed: 5})
	s := ComputeStats("t", g)
	if s.NumVertices != 100 || s.NumEdges != g.NumEdges() {
		t.Errorf("stats mismatch: %+v", s)
	}
	if s.NumLabels > 4 || s.NumLabels < 1 {
		t.Errorf("NumLabels = %d", s.NumLabels)
	}
	hist := DegreeHistogram(g)
	total := 0
	for _, dc := range hist {
		total += dc[1]
	}
	if total != 100 {
		t.Errorf("degree histogram covers %d vertices", total)
	}
	lh := LabelHistogram(g)
	sum := 0
	for _, c := range lh {
		sum += c
	}
	if sum != 100 {
		t.Errorf("label histogram covers %d vertices", sum)
	}
}
