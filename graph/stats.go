package graph

import (
	"fmt"
	"sort"
)

// Stats summarises a data graph the way Table III of the paper does:
// |V|, |E|, average degree, maximum degree and the number of labels.
type Stats struct {
	Name        string
	NumVertices int
	NumEdges    int
	AvgDegree   float64
	MaxDegree   int
	NumLabels   int
	SizeBytes   int64
}

// ComputeStats gathers Stats for g.
func ComputeStats(name string, g *Graph) Stats {
	used := 0
	for l := 0; l < g.NumLabels(); l++ {
		if g.LabelFrequency(Label(l)) > 0 {
			used++
		}
	}
	return Stats{
		Name:        name,
		NumVertices: g.NumVertices(),
		NumEdges:    g.NumEdges(),
		AvgDegree:   g.AvgDegree(),
		MaxDegree:   g.MaxDegree(),
		NumLabels:   used,
		SizeBytes:   g.SizeBytes(),
	}
}

// String renders the stats as a Table III-style row.
func (s Stats) String() string {
	return fmt.Sprintf("%-8s |V|=%-10d |E|=%-11d avgDeg=%-6.2f maxDeg=%-9d labels=%d",
		s.Name, s.NumVertices, s.NumEdges, s.AvgDegree, s.MaxDegree, s.NumLabels)
}

// DegreeHistogram returns sorted (degree, count) pairs for g; tests use it
// to confirm the power-law generator actually produces a heavy tail.
func DegreeHistogram(g *Graph) [][2]int {
	counts := make(map[int]int)
	for v := 0; v < g.NumVertices(); v++ {
		counts[g.Degree(VertexID(v))]++
	}
	out := make([][2]int, 0, len(counts))
	for d, c := range counts {
		out = append(out, [2]int{d, c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// LabelHistogram returns per-label vertex counts for labels that occur.
func LabelHistogram(g *Graph) map[Label]int {
	m := make(map[Label]int)
	for l := 0; l < g.NumLabels(); l++ {
		if c := g.LabelFrequency(Label(l)); c > 0 {
			m[Label(l)] = c
		}
	}
	return m
}
