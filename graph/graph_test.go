package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// triangleWithTail builds the 4-vertex graph 0-1-2-0, 2-3 with labels
// A,B,B,C used across the basic tests.
func triangleWithTail(t *testing.T) *Graph {
	t.Helper()
	g, err := FromEdgeList(
		[]Label{0, 1, 1, 2},
		[][2]VertexID{{0, 1}, {1, 2}, {0, 2}, {2, 3}},
	)
	if err != nil {
		t.Fatalf("FromEdgeList: %v", err)
	}
	return g
}

func TestBuilderBasics(t *testing.T) {
	g := triangleWithTail(t)
	if g.NumVertices() != 4 {
		t.Errorf("NumVertices = %d, want 4", g.NumVertices())
	}
	if g.NumEdges() != 4 {
		t.Errorf("NumEdges = %d, want 4", g.NumEdges())
	}
	if g.Degree(2) != 3 {
		t.Errorf("Degree(2) = %d, want 3", g.Degree(2))
	}
	if g.MaxDegree() != 3 {
		t.Errorf("MaxDegree = %d, want 3", g.MaxDegree())
	}
	if got := g.AvgDegree(); got != 2 {
		t.Errorf("AvgDegree = %v, want 2", got)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestBuilderDeduplicatesAndDropsSelfLoops(t *testing.T) {
	b := NewBuilder(3, 6)
	b.AddVertex(0)
	b.AddVertex(0)
	b.AddVertex(0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate, reversed
	b.AddEdge(0, 1) // duplicate
	b.AddEdge(2, 2) // self loop
	b.AddEdge(1, 2)
	g := b.MustBuild()
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", g.NumEdges())
	}
	if g.HasEdge(2, 2) {
		t.Error("self loop survived")
	}
}

func TestBuilderRejectsDanglingEdge(t *testing.T) {
	b := NewBuilder(1, 1)
	b.AddVertex(0)
	b.AddEdge(0, 5)
	if _, err := b.Build(); err == nil {
		t.Error("Build accepted edge to missing vertex")
	}
}

func TestHasEdge(t *testing.T) {
	g := triangleWithTail(t)
	cases := []struct {
		u, v VertexID
		want bool
	}{
		{0, 1, true}, {1, 0, true}, {0, 2, true}, {2, 3, true},
		{0, 3, false}, {1, 3, false}, {3, 3, false},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.u, c.v); got != c.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestVerticesWithLabel(t *testing.T) {
	g := triangleWithTail(t)
	if got := g.VerticesWithLabel(1); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("VerticesWithLabel(1) = %v, want [1 2]", got)
	}
	if got := g.VerticesWithLabel(7); got != nil {
		t.Errorf("VerticesWithLabel(7) = %v, want nil", got)
	}
	if g.LabelFrequency(2) != 1 {
		t.Errorf("LabelFrequency(2) = %d, want 1", g.LabelFrequency(2))
	}
}

func TestNeighborsWithLabelAndDegreeWithLabel(t *testing.T) {
	g := triangleWithTail(t)
	got := g.NeighborsWithLabel(2, 1, nil)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("NeighborsWithLabel(2, 1) = %v, want [1]", got)
	}
	if d := g.DegreeWithLabel(2, 0); d != 1 {
		t.Errorf("DegreeWithLabel(2, 0) = %d, want 1", d)
	}
	if d := g.DegreeWithLabel(2, 2); d != 1 {
		t.Errorf("DegreeWithLabel(2, 2) = %d, want 1", d)
	}
}

func TestRandomUniformValid(t *testing.T) {
	g := RandomUniform(GenConfig{NumVertices: 500, NumLabels: 5, AvgDegree: 8, Seed: 1})
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.NumVertices() != 500 {
		t.Errorf("NumVertices = %d", g.NumVertices())
	}
	if g.AvgDegree() < 4 || g.AvgDegree() > 8.5 {
		t.Errorf("AvgDegree = %v, outside plausible range", g.AvgDegree())
	}
}

func TestRandomPowerLawHeavyTail(t *testing.T) {
	g := RandomPowerLaw(GenConfig{NumVertices: 3000, NumLabels: 5, AvgDegree: 8, Seed: 7})
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// A power-law graph's max degree should dwarf the average.
	if float64(g.MaxDegree()) < 4*g.AvgDegree() {
		t.Errorf("MaxDegree %d vs avg %.1f: tail not heavy", g.MaxDegree(), g.AvgDegree())
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := RandomUniform(GenConfig{NumVertices: 200, NumLabels: 4, AvgDegree: 6, Seed: 42})
	b := RandomUniform(GenConfig{NumVertices: 200, NumLabels: 4, AvgDegree: 6, Seed: 42})
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("same seed, different edge counts: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	for v := 0; v < a.NumVertices(); v++ {
		av, bv := a.Neighbors(VertexID(v)), b.Neighbors(VertexID(v))
		if len(av) != len(bv) {
			t.Fatalf("vertex %d: degree mismatch", v)
		}
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("vertex %d: adjacency mismatch", v)
			}
		}
	}
}

func TestSampleEdges(t *testing.T) {
	g := RandomUniform(GenConfig{NumVertices: 1000, NumLabels: 3, AvgDegree: 10, Seed: 3})
	half := SampleEdges(g, 0.5, 9)
	if err := half.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if half.NumVertices() != g.NumVertices() {
		t.Errorf("sampling changed |V|: %d vs %d", half.NumVertices(), g.NumVertices())
	}
	ratio := float64(half.NumEdges()) / float64(g.NumEdges())
	if ratio < 0.42 || ratio > 0.58 {
		t.Errorf("edge ratio %.3f, want ≈0.5", ratio)
	}
	// Every sampled edge must exist in the original.
	for v := 0; v < half.NumVertices(); v++ {
		for _, w := range half.Neighbors(VertexID(v)) {
			if !g.HasEdge(VertexID(v), w) {
				t.Fatalf("sample invented edge (%d,%d)", v, w)
			}
		}
	}
	if full := SampleEdges(g, 1.0, 9); full != g {
		t.Error("fraction 1.0 should return the original graph")
	}
	if empty := SampleEdges(g, 0, 9); empty.NumEdges() != 0 {
		t.Errorf("fraction 0 kept %d edges", empty.NumEdges())
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := triangleWithTail(t)
	sub, newToOld := InducedSubgraph(g, func(v VertexID) bool { return v != 3 })
	if sub.NumVertices() != 3 || sub.NumEdges() != 3 {
		t.Fatalf("induced triangle: |V|=%d |E|=%d", sub.NumVertices(), sub.NumEdges())
	}
	for nu, old := range newToOld {
		if sub.Label(VertexID(nu)) != g.Label(old) {
			t.Errorf("label mismatch at new vertex %d", nu)
		}
	}
}

// Property: HasEdge is symmetric and consistent with Neighbors on random
// graphs.
func TestHasEdgeSymmetryProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := RandomUniform(GenConfig{
			NumVertices: 50 + rng.Intn(100),
			NumLabels:   1 + rng.Intn(5),
			AvgDegree:   1 + rng.Float64()*8,
			Seed:        seed,
		})
		for trial := 0; trial < 200; trial++ {
			u := VertexID(rng.Intn(g.NumVertices()))
			v := VertexID(rng.Intn(g.NumVertices()))
			if g.HasEdge(u, v) != g.HasEdge(v, u) {
				return false
			}
		}
		for v := 0; v < g.NumVertices(); v++ {
			for _, w := range g.Neighbors(VertexID(v)) {
				if !g.HasEdge(VertexID(v), w) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: degree sums to twice the edge count.
func TestDegreeSumProperty(t *testing.T) {
	check := func(seed int64) bool {
		g := RandomPowerLaw(GenConfig{NumVertices: 300, NumLabels: 4, AvgDegree: 6, Seed: seed})
		sum := 0
		for v := 0; v < g.NumVertices(); v++ {
			sum += g.Degree(VertexID(v))
		}
		return sum == 2*g.NumEdges()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
