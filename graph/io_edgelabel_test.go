package graph

import (
	"bytes"
	"strings"
	"testing"
)

func edgeLabeledSample(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(4, 4)
	b.AddVertex(0)
	b.AddVertex(1)
	b.AddVertex(1)
	b.AddVertex(2)
	b.AddEdgeLabeled(0, 1, 3)
	b.AddEdgeArcs(1, 2, 4, 5)
	b.AddEdge(2, 3) // unlabeled → wildcard half-edges
	return b.MustBuild()
}

func edgeLabelsEqual(a, b *Graph) bool {
	if a.EdgeLabeled() != b.EdgeLabeled() {
		return false
	}
	for v := 0; v < a.NumVertices(); v++ {
		for _, w := range a.Neighbors(VertexID(v)) {
			la, _ := a.EdgeLabelBetween(VertexID(v), w)
			lb, _ := b.EdgeLabelBetween(VertexID(v), w)
			if la != lb {
				return false
			}
		}
	}
	return true
}

func TestTextRoundTripEdgeLabels(t *testing.T) {
	g := edgeLabeledSample(t)
	var buf bytes.Buffer
	if err := WriteText(&buf, g); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "e 0 1 3") {
		t.Errorf("symmetric label not written:\n%s", out)
	}
	if !strings.Contains(out, "e 1 2 4 5") {
		t.Errorf("arc labels not written:\n%s", out)
	}
	g2, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, g2) || !edgeLabelsEqual(g, g2) {
		t.Error("text round trip lost edge labels")
	}
}

func TestBinaryRoundTripEdgeLabels(t *testing.T) {
	g := edgeLabeledSample(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte("FGB2")) {
		t.Error("edge-labeled graph not written as FGB2")
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, g2) || !edgeLabelsEqual(g, g2) {
		t.Error("binary round trip lost edge labels")
	}
}

func TestBinaryV1StillUnlabeled(t *testing.T) {
	g := RandomUniform(GenConfig{NumVertices: 30, NumLabels: 2, AvgDegree: 4, Seed: 2})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte("FGB1")) {
		t.Error("unlabeled graph not written as FGB1")
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.EdgeLabeled() {
		t.Error("V1 graph came back edge-labeled")
	}
}

func TestReadQueryTextEdgeLabels(t *testing.T) {
	src := "t 2 1\nv 0 0\nv 1 1\ne 0 1 7\n"
	q, err := ReadQueryText("lq", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if q.EdgeLabel(0, 1) != 7 || q.EdgeLabel(1, 0) != 7 {
		t.Errorf("labels %d/%d, want 7/7", q.EdgeLabel(0, 1), q.EdgeLabel(1, 0))
	}
	src2 := "t 2 1\nv 0 0\nv 1 1\ne 0 1 7 9\n"
	q2, err := ReadQueryText("aq", strings.NewReader(src2))
	if err != nil {
		t.Fatal(err)
	}
	if q2.EdgeLabel(0, 1) != 7 || q2.EdgeLabel(1, 0) != 9 {
		t.Errorf("arc labels %d/%d, want 7/9", q2.EdgeLabel(0, 1), q2.EdgeLabel(1, 0))
	}
}

func TestReadTextRejectsBadEdgeLabels(t *testing.T) {
	bad := []string{
		"t 2 1\nv 0 0\nv 1 1\ne 0 1 x\n",
		"t 2 1\nv 0 0\nv 1 1\ne 0 1 1 y\n",
	}
	for i, s := range bad {
		if _, err := ReadText(strings.NewReader(s)); err == nil {
			t.Errorf("bad edge label %d accepted", i)
		}
	}
}

func TestSaveLoadFileEdgeLabels(t *testing.T) {
	g := edgeLabeledSample(t)
	dir := t.TempDir()
	for _, format := range []string{"text", "binary"} {
		path := dir + "/g-" + format
		if err := SaveFile(path, format, g); err != nil {
			t.Fatal(err)
		}
		g2, err := LoadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !edgeLabelsEqual(g, g2) {
			t.Errorf("%s file round trip lost edge labels", format)
		}
	}
}
