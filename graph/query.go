package graph

import (
	"fmt"
	"sort"
)

// QueryVertex identifies a vertex of a query graph. Query graphs are tiny
// (the paper's largest has 7 vertices) so a plain int keeps indexing simple.
type QueryVertex = int

// Query is a small labelled, connected, undirected query graph q. Unlike
// Graph it stores adjacency as per-vertex slices because |V(q)| is tiny and
// the matching machinery iterates neighbourhoods constantly.
type Query struct {
	labels []Label
	adj    [][]QueryVertex
	name   string
	// edgeLabels maps directed half-edges to required labels; nil for
	// edge-unlabeled queries (see edgelabel.go).
	edgeLabels map[[2]QueryVertex]EdgeLabel
}

func errNoSuchEdge(name string, u, v QueryVertex) error {
	return fmt.Errorf("query %q: no edge (%d,%d)", name, u, v)
}

// NewQuery creates a query with the given vertex labels and edges.
// It validates simplicity and connectivity.
func NewQuery(name string, labels []Label, edges [][2]QueryVertex) (*Query, error) {
	n := len(labels)
	if n == 0 {
		return nil, fmt.Errorf("query %q: no vertices", name)
	}
	q := &Query{
		labels: append([]Label(nil), labels...),
		adj:    make([][]QueryVertex, n),
		name:   name,
	}
	seen := make(map[[2]QueryVertex]bool, len(edges))
	for _, e := range edges {
		u, v := e[0], e[1]
		if u < 0 || u >= n || v < 0 || v >= n {
			return nil, fmt.Errorf("query %q: edge (%d,%d) out of range", name, u, v)
		}
		if u == v {
			return nil, fmt.Errorf("query %q: self loop at %d", name, u)
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]QueryVertex{u, v}] {
			return nil, fmt.Errorf("query %q: duplicate edge (%d,%d)", name, u, v)
		}
		seen[[2]QueryVertex{u, v}] = true
		q.adj[u] = append(q.adj[u], v)
		q.adj[v] = append(q.adj[v], u)
	}
	for u := range q.adj {
		sort.Ints(q.adj[u])
	}
	if !q.connected() {
		return nil, fmt.Errorf("query %q: not connected", name)
	}
	return q, nil
}

// MustQuery is NewQuery but panics on error.
func MustQuery(name string, labels []Label, edges [][2]QueryVertex) *Query {
	q, err := NewQuery(name, labels, edges)
	if err != nil {
		panic(err)
	}
	return q
}

func (q *Query) connected() bool {
	n := len(q.labels)
	visited := make([]bool, n)
	stack := []QueryVertex{0}
	visited[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range q.adj[u] {
			if !visited[v] {
				visited[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count == n
}

// Name returns the query's human-readable name (e.g. "q3").
func (q *Query) Name() string { return q.name }

// NumVertices returns |V(q)|.
func (q *Query) NumVertices() int { return len(q.labels) }

// NumEdges returns |E(q)|.
func (q *Query) NumEdges() int {
	m := 0
	for _, a := range q.adj {
		m += len(a)
	}
	return m / 2
}

// Label returns the label of query vertex u.
func (q *Query) Label(u QueryVertex) Label { return q.labels[u] }

// Degree returns d_q(u).
func (q *Query) Degree(u QueryVertex) int { return len(q.adj[u]) }

// Neighbors returns the sorted neighbours of u. The slice aliases internal
// storage and must not be modified.
func (q *Query) Neighbors(u QueryVertex) []QueryVertex { return q.adj[u] }

// HasEdge reports whether (u,v) ∈ E(q).
func (q *Query) HasEdge(u, v QueryVertex) bool {
	a := q.adj[u]
	i := sort.SearchInts(a, v)
	return i < len(a) && a[i] == v
}

// NeighborLabelCounts returns, for vertex u, a map label → number of
// neighbours of u with that label; the NLF filter compares it against data
// vertices.
func (q *Query) NeighborLabelCounts(u QueryVertex) map[Label]int {
	m := make(map[Label]int, len(q.adj[u]))
	for _, v := range q.adj[u] {
		m[q.labels[v]]++
	}
	return m
}

// String summarises the query.
func (q *Query) String() string {
	return fmt.Sprintf("Query{%s |V|=%d |E|=%d}", q.name, q.NumVertices(), q.NumEdges())
}

// Embedding is an injective mapping from query vertices to data vertices:
// Embedding[u] is the data vertex query vertex u maps to. Its length always
// equals |V(q)| for complete embeddings.
type Embedding []VertexID

// Clone returns a copy of the embedding.
func (e Embedding) Clone() Embedding { return append(Embedding(nil), e...) }

// Key returns a canonical string key of the embedding, used by tests to
// compare embedding sets across engines.
func (e Embedding) Key() string {
	b := make([]byte, 0, len(e)*5)
	for _, v := range e {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24), ',')
	}
	return string(b)
}

// VerifyEmbedding checks that e is a genuine subgraph-isomorphism embedding
// of q in g: labels match, the mapping is injective and every query edge is
// present in g. Returns nil when valid.
func VerifyEmbedding(q *Query, g *Graph, e Embedding) error {
	if len(e) != q.NumVertices() {
		return fmt.Errorf("embedding length %d, want %d", len(e), q.NumVertices())
	}
	seen := make(map[VertexID]QueryVertex, len(e))
	for u, v := range e {
		if int(v) >= g.NumVertices() {
			return fmt.Errorf("u%d mapped to out-of-range vertex %d", u, v)
		}
		if g.Label(v) != q.Label(u) {
			return fmt.Errorf("u%d: label mismatch (query %d, data %d)", u, q.Label(u), g.Label(v))
		}
		if prev, dup := seen[v]; dup {
			return fmt.Errorf("vertices u%d and u%d both map to %d", prev, u, v)
		}
		seen[v] = u
	}
	for u := 0; u < q.NumVertices(); u++ {
		for _, w := range q.Neighbors(u) {
			if w > u {
				continue
			}
			if !g.HasEdge(e[u], e[w]) {
				return fmt.Errorf("query edge (u%d,u%d) not present: (%d,%d)", u, w, e[u], e[w])
			}
			if !g.HasEdgeLabeled(e[u], e[w], q.EdgeLabel(u, w)) ||
				!g.HasEdgeLabeled(e[w], e[u], q.EdgeLabel(w, u)) {
				return fmt.Errorf("query edge (u%d,u%d): edge-label mismatch on (%d,%d)", u, w, e[u], e[w])
			}
		}
	}
	return nil
}
