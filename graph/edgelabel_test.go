package graph

import (
	"testing"
)

// labeledTriangle builds A-B-C with edge labels 1 (A-B), 2 (B-C), 3 (A-C).
func labeledTriangle(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(3, 3)
	b.AddVertex(0)
	b.AddVertex(1)
	b.AddVertex(2)
	b.AddEdgeLabeled(0, 1, 1)
	b.AddEdgeLabeled(1, 2, 2)
	b.AddEdgeLabeled(0, 2, 3)
	return b.MustBuild()
}

func TestEdgeLabelStorage(t *testing.T) {
	g := labeledTriangle(t)
	if !g.EdgeLabeled() {
		t.Fatal("EdgeLabeled false")
	}
	cases := []struct {
		u, v VertexID
		want EdgeLabel
	}{
		{0, 1, 1}, {1, 0, 1}, {1, 2, 2}, {2, 1, 2}, {0, 2, 3}, {2, 0, 3},
	}
	for _, c := range cases {
		got, ok := g.EdgeLabelBetween(c.u, c.v)
		if !ok || got != c.want {
			t.Errorf("EdgeLabelBetween(%d,%d) = %d,%v want %d", c.u, c.v, got, ok, c.want)
		}
	}
	if _, ok := g.EdgeLabelBetween(0, 0); ok {
		t.Error("label on non-edge")
	}
	if !g.HasEdgeLabeled(0, 1, WildcardEdgeLabel) {
		t.Error("wildcard should match")
	}
	if !g.HasEdgeLabeled(0, 1, 1) || g.HasEdgeLabeled(0, 1, 2) {
		t.Error("HasEdgeLabeled wrong")
	}
	if labels := g.EdgeLabels(0); len(labels) != 2 {
		t.Errorf("EdgeLabels(0) = %v", labels)
	}
}

func TestUnlabeledGraphWildcards(t *testing.T) {
	g, err := FromEdgeList([]Label{0, 1}, [][2]VertexID{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if g.EdgeLabeled() {
		t.Error("unlabeled graph claims labels")
	}
	if g.EdgeLabels(0) != nil {
		t.Error("EdgeLabels non-nil for unlabeled graph")
	}
	l, ok := g.EdgeLabelBetween(0, 1)
	if !ok || l != WildcardEdgeLabel {
		t.Errorf("unlabeled edge label = %d,%v", l, ok)
	}
	if !g.HasEdgeLabeled(0, 1, 5) {
		t.Error("unlabeled data edge must match any requirement (wildcard storage)")
	}
}

func TestEdgeArcsEncodeDirection(t *testing.T) {
	b := NewBuilder(2, 1)
	b.AddVertex(0)
	b.AddVertex(1)
	b.AddEdgeArcs(0, 1, 7, 8) // 0→1 labelled 7, 1→0 labelled 8
	g := b.MustBuild()
	if l, _ := g.EdgeLabelBetween(0, 1); l != 7 {
		t.Errorf("fwd label = %d", l)
	}
	if l, _ := g.EdgeLabelBetween(1, 0); l != 8 {
		t.Errorf("rev label = %d", l)
	}
}

func TestQueryEdgeLabels(t *testing.T) {
	q := MustQuery("lq", []Label{0, 1}, [][2]QueryVertex{{0, 1}})
	if q.EdgeLabeled() {
		t.Error("fresh query claims edge labels")
	}
	if err := q.SetEdgeLabel(0, 1, 4); err != nil {
		t.Fatal(err)
	}
	if !q.EdgeLabeled() || q.EdgeLabel(0, 1) != 4 || q.EdgeLabel(1, 0) != 4 {
		t.Errorf("labels: %d / %d", q.EdgeLabel(0, 1), q.EdgeLabel(1, 0))
	}
	if err := q.SetEdgeArcLabels(0, 1, 5, 6); err != nil {
		t.Fatal(err)
	}
	if q.EdgeLabel(0, 1) != 5 || q.EdgeLabel(1, 0) != 6 {
		t.Error("arc labels not stored")
	}
	if err := q.SetEdgeLabel(0, 0, 1); err == nil {
		t.Error("labelled a non-edge")
	}
}

func TestVerifyEmbeddingEdgeLabels(t *testing.T) {
	g := labeledTriangle(t)
	q := MustQuery("lq", []Label{0, 1}, [][2]QueryVertex{{0, 1}})
	if err := q.SetEdgeLabel(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := VerifyEmbedding(q, g, Embedding{0, 1}); err != nil {
		t.Errorf("matching label rejected: %v", err)
	}
	q2 := MustQuery("lq2", []Label{0, 1}, [][2]QueryVertex{{0, 1}})
	if err := q2.SetEdgeLabel(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := VerifyEmbedding(q2, g, Embedding{0, 1}); err == nil {
		t.Error("label mismatch accepted")
	}
}
