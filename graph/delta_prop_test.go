package graph

import (
	"math/rand"
	"sort"
	"testing"
)

// deltaModel is the mutable reference implementation randomized batches are
// checked against: plain maps, rebuilt into expectations from scratch after
// every ApplyDelta — the rebuild-from-scratch oracle.
type deltaModel struct {
	labels  []Label
	deleted map[VertexID]bool
	edges   map[[2]VertexID]EdgeLabel // canonical u<v
	labeled bool
}

func newDeltaModel(g *Graph) *deltaModel {
	m := &deltaModel{
		labels:  append([]Label(nil), g.labels...),
		deleted: make(map[VertexID]bool),
		edges:   make(map[[2]VertexID]EdgeLabel),
		labeled: g.EdgeLabeled(),
	}
	for v := 0; v < g.NumVertices(); v++ {
		for i, w := range g.Neighbors(VertexID(v)) {
			if VertexID(v) < w {
				var l EdgeLabel
				if m.labeled {
					l = g.EdgeLabels(VertexID(v))[i]
				}
				m.edges[[2]VertexID{VertexID(v), w}] = l
			}
		}
	}
	return m
}

func (m *deltaModel) apply(d Delta) {
	m.labels = append(m.labels, d.AddVertices...)
	for _, v := range d.DelVertices {
		m.deleted[v] = true
		for k := range m.edges {
			if k[0] == v || k[1] == v {
				delete(m.edges, k)
			}
		}
	}
	for i, e := range d.AddEdges {
		u, v := e[0], e[1]
		if u > v {
			u, v = v, u
		}
		var l EdgeLabel
		if len(d.AddEdgeLabels) > 0 {
			l = d.AddEdgeLabels[i]
		}
		m.edges[[2]VertexID{u, v}] = l
	}
	for _, e := range d.DelEdges {
		u, v := e[0], e[1]
		if u > v {
			u, v = v, u
		}
		delete(m.edges, [2]VertexID{u, v})
	}
}

// neighbors returns v's expected sorted adjacency with aligned half-edge
// labels.
func (m *deltaModel) neighbors(v VertexID) ([]VertexID, []EdgeLabel) {
	var ns []VertexID
	lab := make(map[VertexID]EdgeLabel)
	for k, l := range m.edges {
		switch v {
		case k[0]:
			ns = append(ns, k[1])
			lab[k[1]] = l
		case k[1]:
			ns = append(ns, k[0])
			lab[k[0]] = l
		}
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	var ls []EdgeLabel
	if m.labeled {
		ls = make([]EdgeLabel, len(ns))
		for i, w := range ns {
			ls[i] = lab[w]
		}
	}
	return ns, ls
}

// oracleGraph rebuilds the expected post-delta graph from scratch with the
// Builder (tombstones become isolated vertices — their byLabel exclusion is
// checked separately against the incremental graph).
func (m *deltaModel) oracleGraph(t testing.TB) *Graph {
	t.Helper()
	b := NewBuilder(len(m.labels), len(m.edges))
	for _, l := range m.labels {
		b.AddVertex(l)
	}
	for k, l := range m.edges {
		if m.labeled {
			b.AddEdgeLabeled(k[0], k[1], l)
		} else {
			b.AddEdge(k[0], k[1])
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("oracle rebuild: %v", err)
	}
	return g
}

// checkAgainstModel compares the incrementally maintained graph against the
// model and the scratch-rebuilt oracle: structure, per-label lists, the
// label-run index (vs the oracle's independently built one), and Validate.
func checkAgainstModel(t testing.TB, g *Graph, m *deltaModel) {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.NumVertices() != len(m.labels) {
		t.Fatalf("NumVertices = %d, want %d", g.NumVertices(), len(m.labels))
	}
	if g.NumEdges() != len(m.edges) {
		t.Fatalf("NumEdges = %d, want %d", g.NumEdges(), len(m.edges))
	}
	if g.NumDeleted() != len(m.deleted) {
		t.Fatalf("NumDeleted = %d, want %d", g.NumDeleted(), len(m.deleted))
	}
	oracle := m.oracleGraph(t)
	if g.MaxDegree() != oracle.MaxDegree() {
		t.Fatalf("MaxDegree = %d, oracle %d", g.MaxDegree(), oracle.MaxDegree())
	}
	maxL := g.NumLabels()
	for v := 0; v < g.NumVertices(); v++ {
		vid := VertexID(v)
		if g.Label(vid) != m.labels[v] {
			t.Fatalf("Label(%d) = %d, want %d", v, g.Label(vid), m.labels[v])
		}
		if g.Deleted(vid) != m.deleted[vid] {
			t.Fatalf("Deleted(%d) = %v, want %v", v, g.Deleted(vid), m.deleted[vid])
		}
		wantN, wantL := m.neighbors(vid)
		gotN := g.Neighbors(vid)
		if len(gotN) != len(wantN) {
			t.Fatalf("Neighbors(%d) = %v, want %v", v, gotN, wantN)
		}
		for i := range wantN {
			if gotN[i] != wantN[i] {
				t.Fatalf("Neighbors(%d) = %v, want %v", v, gotN, wantN)
			}
		}
		if m.labeled {
			gotL := g.EdgeLabels(vid)
			for i := range wantL {
				if gotL[i] != wantL[i] {
					t.Fatalf("EdgeLabels(%d) = %v, want %v", v, gotL, wantL)
				}
			}
		}
		// Label-index equality against the oracle's independent build: the
		// per-label runs must agree for every label either side knows.
		for l := 0; l < maxL; l++ {
			got := g.NeighborsWithLabel(vid, Label(l), nil)
			want := oracle.NeighborsWithLabel(vid, Label(l), nil)
			if len(got) != len(want) {
				t.Fatalf("NeighborsWithLabel(%d,%d) = %v, oracle %v", v, l, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("NeighborsWithLabel(%d,%d) = %v, oracle %v", v, l, got, want)
				}
			}
		}
	}
	// Per-label candidate lists: the oracle lists tombstones (it rebuilds
	// them as isolated vertices), the incremental graph must not.
	for l := 0; l < maxL; l++ {
		var want []VertexID
		for _, v := range oracle.VerticesWithLabel(Label(l)) {
			if !m.deleted[v] {
				want = append(want, v)
			}
		}
		got := g.VerticesWithLabel(Label(l))
		if len(got) != len(want) {
			t.Fatalf("VerticesWithLabel(%d) = %v, want %v", l, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("VerticesWithLabel(%d) = %v, want %v", l, got, want)
			}
		}
	}
}

// bruteCount counts embeddings by exhaustive backtracking straight off the
// Graph API — the match-count oracle. Candidates come from VerticesWithLabel,
// so tombstones are excluded on the incremental side by construction; on the
// Builder-rebuilt oracle tombstones are isolated, and the connected queries
// used here require every query vertex to have degree ≥ 1, so they can never
// match there either.
func bruteCount(q *Query, g *Graph) int64 {
	n := q.NumVertices()
	emb := make([]VertexID, n)
	used := make(map[VertexID]bool)
	var rec func(u int) int64
	rec = func(u int) int64 {
		if u == n {
			return 1
		}
		var total int64
		for _, v := range g.VerticesWithLabel(q.Label(u)) {
			if used[v] {
				continue
			}
			ok := true
			for _, un := range q.Neighbors(u) {
				if un < u && !g.HasEdge(v, emb[un]) {
					ok = false
					break
				}
			}
			if ok {
				emb[u] = v
				used[v] = true
				total += rec(u + 1)
				delete(used, v)
			}
		}
		return total
	}
	return rec(0)
}

// randomDelta fabricates a valid batch against the model: new vertices, edge
// inserts (possibly at batch-new vertices), edge deletes and vertex deletes,
// all respecting ApplyDelta's validity rules.
func randomDelta(rng *rand.Rand, m *deltaModel, numLabels int, labeled bool) Delta {
	var d Delta
	nOld := len(m.labels)
	for i := rng.Intn(3); i > 0; i-- {
		d.AddVertices = append(d.AddVertices, Label(rng.Intn(numLabels)))
	}
	n := nOld + len(d.AddVertices)

	delV := make(map[VertexID]bool)
	var live []VertexID
	for v := 0; v < nOld; v++ {
		if !m.deleted[VertexID(v)] {
			live = append(live, VertexID(v))
		}
	}
	for i := rng.Intn(2); i > 0 && len(live) > 2; i-- {
		v := live[rng.Intn(len(live))]
		if !delV[v] {
			delV[v] = true
			d.DelVertices = append(d.DelVertices, v)
		}
	}

	canon := func(u, v VertexID) [2]VertexID {
		if u > v {
			u, v = v, u
		}
		return [2]VertexID{u, v}
	}
	seen := make(map[[2]VertexID]bool)
	for i := rng.Intn(6); i > 0; i-- {
		u := VertexID(rng.Intn(n))
		v := VertexID(rng.Intn(n))
		if u == v || delV[u] || delV[v] {
			continue
		}
		if int(u) < nOld && m.deleted[u] || int(v) < nOld && m.deleted[v] {
			continue
		}
		k := canon(u, v)
		if seen[k] {
			continue
		}
		if _, exists := m.edges[k]; exists {
			continue
		}
		seen[k] = true
		d.AddEdges = append(d.AddEdges, [2]VertexID{u, v})
		if labeled {
			d.AddEdgeLabels = append(d.AddEdgeLabels, EdgeLabel(rng.Intn(4)))
		}
	}
	if !labeled {
		d.AddEdgeLabels = nil
	}

	var existing [][2]VertexID
	for k := range m.edges {
		if !delV[k[0]] && !delV[k[1]] {
			existing = append(existing, k)
		}
	}
	sort.Slice(existing, func(i, j int) bool {
		if existing[i][0] != existing[j][0] {
			return existing[i][0] < existing[j][0]
		}
		return existing[i][1] < existing[j][1]
	})
	for i := rng.Intn(4); i > 0 && len(existing) > 0; i-- {
		k := existing[rng.Intn(len(existing))]
		if seen[k] {
			continue
		}
		seen[k] = true
		d.DelEdges = append(d.DelEdges, k)
	}
	return d
}

func runDeltaPropSequence(t *testing.T, seed int64, labeled bool) {
	rng := rand.New(rand.NewSource(seed))
	const numLabels = 3

	// Random connected-ish base graph.
	b := NewBuilder(12, 30)
	for i := 0; i < 12; i++ {
		b.AddVertex(Label(rng.Intn(numLabels)))
	}
	for i := 0; i < 20; i++ {
		u := VertexID(rng.Intn(12))
		v := VertexID(rng.Intn(12))
		if u == v {
			continue
		}
		if labeled {
			b.AddEdgeLabeled(u, v, EdgeLabel(rng.Intn(4)))
		} else {
			b.AddEdge(u, v)
		}
	}
	g := b.MustBuild()
	m := newDeltaModel(g)

	queries := []*Query{
		MustQuery("pp-path", []Label{0, 1, 0}, [][2]QueryVertex{{0, 1}, {1, 2}}),
		MustQuery("pp-tri", []Label{1, 2, 0}, [][2]QueryVertex{{0, 1}, {1, 2}, {0, 2}}),
	}

	for step := 0; step < 25; step++ {
		d := randomDelta(rng, m, numLabels, labeled)
		g2, _, err := g.ApplyDelta(d)
		if err != nil {
			t.Fatalf("step %d seed %d: ApplyDelta(%+v): %v", step, seed, d, err)
		}
		if g2.Epoch() != g.Epoch()+1 {
			t.Fatalf("step %d: epoch %d after %d", step, g2.Epoch(), g.Epoch())
		}
		m.apply(d)
		checkAgainstModel(t, g2, m)
		// Match-count equality per epoch vs the scratch-rebuilt oracle.
		oracle := m.oracleGraph(t)
		for _, q := range queries {
			if got, want := bruteCount(q, g2), bruteCount(q, oracle); got != want {
				t.Fatalf("step %d seed %d query %s: count %d, oracle %d", step, seed, q.Name(), got, want)
			}
		}
		g = g2
	}
}

func TestDeltaPropertyRandomBatches(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		runDeltaPropSequence(t, seed, false)
	}
}

func TestDeltaPropertyRandomBatchesEdgeLabeled(t *testing.T) {
	for seed := int64(10); seed <= 13; seed++ {
		runDeltaPropSequence(t, seed, true)
	}
}

// FuzzApplyDelta decodes arbitrary bytes into a delta sequence against a
// fixed base graph. Invalid batches must fail atomically (graph unchanged);
// valid ones must keep the incremental structures equal to the
// rebuild-from-scratch oracle.
func FuzzApplyDelta(f *testing.F) {
	f.Add([]byte{0x01, 0x02, 0x03, 0x04})
	f.Add([]byte{0xff, 0x00, 0x10, 0x20, 0x30, 0x40, 0x51})
	f.Add([]byte("delta-fuzz-seed"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := FromEdgeList(
			[]Label{0, 1, 2, 0, 1, 2},
			[][2]VertexID{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {0, 3}},
		)
		if err != nil {
			t.Fatalf("base: %v", err)
		}
		m := newDeltaModel(g)
		pos := 0
		next := func() (byte, bool) {
			if pos >= len(data) {
				return 0, false
			}
			b := data[pos]
			pos++
			return b, true
		}
		for batch := 0; batch < 8; batch++ {
			var d Delta
			nops, ok := next()
			if !ok {
				break
			}
			for i := 0; i < int(nops%5)+1; i++ {
				op, ok := next()
				if !ok {
					break
				}
				a, _ := next()
				c, _ := next()
				switch op % 4 {
				case 0:
					d.AddVertices = append(d.AddVertices, Label(a%3))
				case 1:
					d.DelVertices = append(d.DelVertices, VertexID(a%8))
				case 2:
					d.AddEdges = append(d.AddEdges, [2]VertexID{VertexID(a % 10), VertexID(c % 10)})
				case 3:
					d.DelEdges = append(d.DelEdges, [2]VertexID{VertexID(a % 8), VertexID(c % 8)})
				}
			}
			g2, _, err := g.ApplyDelta(d)
			if err != nil {
				// Atomic failure: the source snapshot is untouched.
				if verr := g.Validate(); verr != nil {
					t.Fatalf("failed batch corrupted source: %v", verr)
				}
				continue
			}
			m.apply(d)
			checkAgainstModel(t, g2, m)
			g = g2
		}
	})
}
