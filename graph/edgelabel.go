package graph

// Edge-labeled graphs (Section II: "our techniques can be readily extended
// to edge-labeled and directed graphs"). Edge labels are stored per
// half-edge, aligned with the CSR neighbour array; label 0 is the wildcard
// (an unlabeled query edge matches any data edge, and graphs built without
// labels carry 0 everywhere, so vertex-labeled workloads are unaffected).
// A directed relation can be encoded by giving the two half-edges of an
// undirected edge distinct labels (e.g. "replyOf" forward vs backward).

// EdgeLabel identifies an edge label; 0 is the wildcard.
type EdgeLabel = uint16

// WildcardEdgeLabel matches any edge label.
const WildcardEdgeLabel EdgeLabel = 0

// EdgeLabels returns the labels of v's half-edges, aligned with
// Neighbors(v). Nil when the graph is edge-unlabeled.
func (g *Graph) EdgeLabels(v VertexID) []EdgeLabel {
	if g.edgeLabels == nil {
		return nil
	}
	return g.edgeLabels[g.offsets[v]:g.offsets[v+1]]
}

// EdgeLabeled reports whether any edge of the graph carries a label.
func (g *Graph) EdgeLabeled() bool { return g.edgeLabels != nil }

// EdgeLabelBetween returns the label of the half-edge u→v; ok is false when
// the edge does not exist.
func (g *Graph) EdgeLabelBetween(u, v VertexID) (EdgeLabel, bool) {
	adj := g.Neighbors(u)
	lo, hi := 0, len(adj)
	for lo < hi {
		mid := (lo + hi) / 2
		if adj[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(adj) || adj[lo] != v {
		return 0, false
	}
	if g.edgeLabels == nil {
		return WildcardEdgeLabel, true
	}
	return g.edgeLabels[g.offsets[u]+int64(lo)], true
}

// HasEdgeLabeled reports whether (u,v) exists and its u→v label matches
// want. The wildcard matches anything, and an edge-unlabeled data graph is
// treated as all-wildcard (so vertex-labeled workloads never notice edge
// labels exist).
func (g *Graph) HasEdgeLabeled(u, v VertexID, want EdgeLabel) bool {
	if g.edgeLabels == nil {
		return g.HasEdge(u, v)
	}
	l, ok := g.EdgeLabelBetween(u, v)
	return ok && (want == WildcardEdgeLabel || l == want)
}

// AddEdgeLabeled records an undirected edge whose two half-edges carry the
// same label. Mixing with AddEdge is allowed; unlabeled edges carry the
// wildcard.
func (b *Builder) AddEdgeLabeled(u, v VertexID, l EdgeLabel) {
	b.AddEdgeArcs(u, v, l, l)
}

// AddEdgeArcs records an undirected edge with distinct half-edge labels
// (u→v carries fwd, v→u carries rev) — the encoding for directed
// relations.
func (b *Builder) AddEdgeArcs(u, v VertexID, fwd, rev EdgeLabel) {
	if u == v {
		return
	}
	if b.edgeLabels == nil {
		b.edgeLabels = make(map[[2]VertexID]EdgeLabel, 64)
	}
	b.edgeLabels[[2]VertexID{u, v}] = fwd
	b.edgeLabels[[2]VertexID{v, u}] = rev
	b.AddEdge(u, v)
}

// EdgeLabel of a query edge; stored canonically per direction so directed
// encodings survive.

// SetEdgeLabel labels the query edge {u,v} (both directions). The edge must
// exist.
func (q *Query) SetEdgeLabel(u, v QueryVertex, l EdgeLabel) error {
	return q.setEdgeLabelDir(u, v, l, l)
}

// SetEdgeArcLabels labels the query edge {u,v} with distinct per-direction
// labels, mirroring Builder.AddEdgeArcs.
func (q *Query) SetEdgeArcLabels(u, v QueryVertex, fwd, rev EdgeLabel) error {
	return q.setEdgeLabelDir(u, v, fwd, rev)
}

func (q *Query) setEdgeLabelDir(u, v QueryVertex, fwd, rev EdgeLabel) error {
	if !q.HasEdge(u, v) {
		return errNoSuchEdge(q.name, u, v)
	}
	if q.edgeLabels == nil {
		q.edgeLabels = make(map[[2]QueryVertex]EdgeLabel, 8)
	}
	q.edgeLabels[[2]QueryVertex{u, v}] = fwd
	q.edgeLabels[[2]QueryVertex{v, u}] = rev
	return nil
}

// EdgeLabel returns the label required on the half-edge u→v (wildcard when
// unlabeled).
func (q *Query) EdgeLabel(u, v QueryVertex) EdgeLabel {
	if q.edgeLabels == nil {
		return WildcardEdgeLabel
	}
	return q.edgeLabels[[2]QueryVertex{u, v}]
}

// EdgeLabeled reports whether the query constrains any edge label.
func (q *Query) EdgeLabeled() bool { return len(q.edgeLabels) > 0 }
