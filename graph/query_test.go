package graph

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func squareQuery(t *testing.T) *Query {
	t.Helper()
	// The paper's Fig. 1 query: A(u0)-B(u1), A-C(u2), B-C, C-D(u3).
	return MustQuery("fig1", []Label{0, 1, 2, 3},
		[][2]QueryVertex{{0, 1}, {0, 2}, {1, 2}, {2, 3}})
}

func TestQueryBasics(t *testing.T) {
	q := squareQuery(t)
	if q.NumVertices() != 4 || q.NumEdges() != 4 {
		t.Fatalf("|V|=%d |E|=%d, want 4/4", q.NumVertices(), q.NumEdges())
	}
	if q.Degree(2) != 3 {
		t.Errorf("Degree(2) = %d, want 3", q.Degree(2))
	}
	if !q.HasEdge(1, 2) || q.HasEdge(1, 3) {
		t.Error("HasEdge wrong")
	}
	counts := q.NeighborLabelCounts(2)
	if counts[0] != 1 || counts[1] != 1 || counts[3] != 1 {
		t.Errorf("NeighborLabelCounts(2) = %v", counts)
	}
}

func TestQueryValidation(t *testing.T) {
	if _, err := NewQuery("empty", nil, nil); err == nil {
		t.Error("accepted empty query")
	}
	if _, err := NewQuery("loop", []Label{0}, [][2]QueryVertex{{0, 0}}); err == nil {
		t.Error("accepted self loop")
	}
	if _, err := NewQuery("dup", []Label{0, 1}, [][2]QueryVertex{{0, 1}, {1, 0}}); err == nil {
		t.Error("accepted duplicate edge")
	}
	if _, err := NewQuery("disc", []Label{0, 1, 2}, [][2]QueryVertex{{0, 1}}); err == nil {
		t.Error("accepted disconnected query")
	}
	if _, err := NewQuery("range", []Label{0, 1}, [][2]QueryVertex{{0, 5}}); err == nil {
		t.Error("accepted out-of-range edge")
	}
}

func TestVerifyEmbedding(t *testing.T) {
	q := squareQuery(t)
	// Data graph of Fig. 1: we rebuild a fragment with one valid embedding.
	g, err := FromEdgeList(
		[]Label{0, 1, 2, 3}, // v0:A v1:B v2:C v3:D
		[][2]VertexID{{0, 1}, {0, 2}, {1, 2}, {2, 3}},
	)
	if err != nil {
		t.Fatal(err)
	}
	good := Embedding{0, 1, 2, 3}
	if err := VerifyEmbedding(q, g, good); err != nil {
		t.Errorf("valid embedding rejected: %v", err)
	}
	cases := []struct {
		name string
		e    Embedding
		want string
	}{
		{"short", Embedding{0, 1}, "length"},
		{"label", Embedding{1, 0, 2, 3}, "label"},
		{"dup", Embedding{0, 1, 1, 3}, "label"}, // label check fires first on v1 as C
		{"edge", Embedding{0, 1, 2, 0}, "label"},
	}
	for _, c := range cases {
		err := VerifyEmbedding(q, g, c.e)
		if err == nil {
			t.Errorf("%s: invalid embedding accepted", c.name)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestVerifyEmbeddingInjectivity(t *testing.T) {
	// Two query vertices of the same label mapped to the same data vertex
	// must be rejected even though labels match.
	q := MustQuery("twin", []Label{0, 0, 1}, [][2]QueryVertex{{0, 2}, {1, 2}})
	g, err := FromEdgeList([]Label{0, 0, 1}, [][2]VertexID{{0, 2}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyEmbedding(q, g, Embedding{0, 0, 2}); err == nil {
		t.Error("non-injective embedding accepted")
	}
	if err := VerifyEmbedding(q, g, Embedding{0, 1, 2}); err != nil {
		t.Errorf("valid embedding rejected: %v", err)
	}
}

func TestEmbeddingKeyDistinct(t *testing.T) {
	a := Embedding{1, 2, 3}
	b := Embedding{1, 2, 4}
	if a.Key() == b.Key() {
		t.Error("distinct embeddings share a key")
	}
	if a.Key() != a.Clone().Key() {
		t.Error("clone changed the key")
	}
}

func TestRandomConnectedQueryProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := 2 + rng.Intn(7)
		q := RandomConnectedQuery("rq", nv, rng.Intn(5), 3, rng)
		if q.NumVertices() != nv {
			return false
		}
		// Connectivity is validated by NewQuery; check degree sum.
		sum := 0
		for u := 0; u < nv; u++ {
			sum += q.Degree(u)
		}
		return sum == 2*q.NumEdges()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
