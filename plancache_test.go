package fast

import (
	"sync"
	"testing"

	"fastmatch/ldbc"
)

// TestEnginePlanCacheEviction: with a cache bound smaller than the query
// mix, the LRU evicts, the evicted query transparently re-plans on its next
// visit (a fresh miss, same count), and the stats stay consistent
// throughout: hits+misses equals Match calls, CachedPlans never exceeds the
// cap, and evictions are observable.
func TestEnginePlanCacheEviction(t *testing.T) {
	g := engineTestGraph()
	opts := engineTestOptions(1)
	opts.PlanCacheSize = 2
	eng, err := NewEngine(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if eng.PlanCacheCap() != 2 {
		t.Fatalf("PlanCacheCap = %d, want 2", eng.PlanCacheCap())
	}

	names := []string{"q1", "q2", "q3"}
	want := make(map[string]int64)
	calls := int64(0)
	match := func(name string) int64 {
		t.Helper()
		q, err := ldbc.QueryByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Match(q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		calls++
		return res.Count
	}

	// Fill and overflow: q1 q2 q3 → q1 is evicted at q3's insertion.
	for _, name := range names {
		want[name] = match(name)
	}
	if got := eng.CachedPlans(); got != 2 {
		t.Errorf("CachedPlans after overflow = %d, want 2", got)
	}
	if ev := eng.PlanCacheEvictions(); ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}

	// Round trip: q1 must re-plan (miss), return the same count, and evict
	// the now-least-recently-used q2.
	if got := match("q1"); got != want["q1"] {
		t.Errorf("q1 after eviction: count %d, want %d", got, want["q1"])
	}
	hits, misses := eng.PlanCacheStats()
	if hits != 0 || misses != 4 {
		t.Errorf("hits/misses = %d/%d, want 0/4 (q1 re-planned)", hits, misses)
	}
	if ev := eng.PlanCacheEvictions(); ev != 2 {
		t.Errorf("evictions = %d, want 2", ev)
	}

	// LRU order, not insertion order: touch q3 (hit), then bring q2 back —
	// the eviction victim must be q1 again, leaving q3 cached.
	if got := match("q3"); got != want["q3"] {
		t.Errorf("q3: count %d, want %d", got, want["q3"])
	}
	if got := match("q2"); got != want["q2"] {
		t.Errorf("q2 after eviction: count %d, want %d", got, want["q2"])
	}
	if got := match("q3"); got != want["q3"] {
		t.Errorf("q3 should still be cached: count %d, want %d", got, want["q3"])
	}
	hits, misses = eng.PlanCacheStats()
	if hits+misses != calls {
		t.Errorf("hits+misses = %d, want %d (one per Match call)", hits+misses, calls)
	}
	if hits != 2 || misses != 5 {
		t.Errorf("hits/misses = %d/%d, want 2/5", hits, misses)
	}
	if got := eng.CachedPlans(); got != 2 {
		t.Errorf("CachedPlans = %d, want 2", got)
	}
}

// TestEnginePlanCacheUnbounded: a negative PlanCacheSize disables the bound,
// preserving the pre-eviction behaviour for callers that want it.
func TestEnginePlanCacheUnbounded(t *testing.T) {
	g := engineTestGraph()
	opts := engineTestOptions(1)
	opts.PlanCacheSize = -1
	eng, err := NewEngine(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"q1", "q2", "q3", "q4", "q5"} {
		q, err := ldbc.QueryByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Match(q); err != nil {
			t.Fatal(err)
		}
	}
	if got := eng.CachedPlans(); got != 5 {
		t.Errorf("CachedPlans = %d, want 5", got)
	}
	if ev := eng.PlanCacheEvictions(); ev != 0 {
		t.Errorf("evictions = %d, want 0", ev)
	}
}

// TestEnginePlanCacheEvictionConcurrent: a tiny cache under concurrent
// traffic over more query structures than it can hold stays consistent —
// counts are right, CachedPlans respects the cap, and hits+misses equals the
// number of Match calls. Run under -race in CI.
func TestEnginePlanCacheEvictionConcurrent(t *testing.T) {
	g := engineTestGraph()
	opts := engineTestOptions(2)
	opts.PlanCacheSize = 2
	eng, err := NewEngine(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"q1", "q2", "q3", "q4", "q5"}
	want := make(map[string]int64)
	for _, name := range names {
		q, err := ldbc.QueryByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Match(q, g, engineTestOptions(0))
		if err != nil {
			t.Fatal(err)
		}
		want[name] = res.Count
	}

	const rounds = 4
	var wg sync.WaitGroup
	errs := make(chan error, len(names)*rounds)
	for r := 0; r < rounds; r++ {
		for _, name := range names {
			wg.Add(1)
			go func(name string) {
				defer wg.Done()
				q, err := ldbc.QueryByName(name)
				if err != nil {
					errs <- err
					return
				}
				res, err := eng.Match(q)
				if err != nil {
					errs <- err
					return
				}
				if res.Count != want[name] {
					t.Errorf("%s: count %d, want %d", name, res.Count, want[name])
				}
			}(name)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := eng.CachedPlans(); got > 2 {
		t.Errorf("CachedPlans = %d, want <= 2", got)
	}
	hits, misses := eng.PlanCacheStats()
	if hits+misses != int64(len(names)*rounds) {
		t.Errorf("hits+misses = %d, want %d", hits+misses, len(names)*rounds)
	}
}
