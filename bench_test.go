package fast

// The benchmark suite regenerates every table and figure of the paper's
// evaluation (one Benchmark per experiment, driving internal/exp at a
// reduced scale so `go test -bench=.` completes in minutes), plus
// micro-benchmarks of the pipeline's stages. cmd/fastbench runs the same
// experiments at full laptop scale and prints the tables.

import (
	"context"
	"io"
	"testing"
	"time"

	"fastmatch/graph"
	"fastmatch/internal/baseline"
	"fastmatch/internal/core"
	"fastmatch/internal/cst"
	"fastmatch/internal/exp"
	"fastmatch/internal/fpgasim"
	"fastmatch/internal/host"
	"fastmatch/internal/order"
	"fastmatch/ldbc"
)

// benchExpConfig keeps experiment benchmarks affordable while preserving
// every shape the experiments measure.
func benchExpConfig() exp.Config {
	return exp.Config{
		BasePersons:  100,
		Seed:         42,
		Timeout:      2 * time.Second,
		GPUMemBudget: 64 << 20,
		BRAMBytes:    128 << 10,
		BatchSize:    128,
	}
}

// runExperiment is the shared body of the per-figure benchmarks. The
// experiments that walk the DG60-scale ladder (fig9/10/16/17) run at a
// further reduced base so the whole suite stays within a CI budget;
// cmd/fastbench regenerates them at full laptop scale.
func runExperiment(b *testing.B, name string) {
	b.Helper()
	cfg := benchExpConfig()
	switch name {
	case "fig9", "fig10", "fig16", "fig17":
		cfg.BasePersons = 40
		cfg.Queries = []string{"q0", "q2", "q4", "q8"}
	case "fig14":
		cfg.Queries = []string{"q0", "q2", "q4", "q5", "q8"}
	}
	for i := 0; i < b.N; i++ {
		tables, err := exp.Run(name, cfg)
		if err != nil {
			b.Fatalf("%s: %v", name, err)
		}
		for _, t := range tables {
			t.Render(io.Discard)
		}
	}
}

// --- One benchmark per table / figure (DESIGN.md's experiment index). ---

func BenchmarkTable3Datasets(b *testing.B)           { runExperiment(b, "table3") }
func BenchmarkFig7DRAMvsBRAM(b *testing.B)           { runExperiment(b, "fig7") }
func BenchmarkFig8PartitionFactor(b *testing.B)      { runExperiment(b, "fig8") }
func BenchmarkFig9PartitionSize(b *testing.B)        { runExperiment(b, "fig9") }
func BenchmarkFig10PartitionTime(b *testing.B)       { runExperiment(b, "fig10") }
func BenchmarkFig11TaskParallelism(b *testing.B)     { runExperiment(b, "fig11") }
func BenchmarkFig12GeneratorSeparation(b *testing.B) { runExperiment(b, "fig12") }
func BenchmarkFig13CPUShare(b *testing.B)            { runExperiment(b, "fig13") }
func BenchmarkFig14Comparison(b *testing.B)          { runExperiment(b, "fig14") }
func BenchmarkFig15Orders(b *testing.B)              { runExperiment(b, "fig15") }
func BenchmarkFig16ScaleFactor(b *testing.B)         { runExperiment(b, "fig16") }
func BenchmarkFig17EdgeSampling(b *testing.B)        { runExperiment(b, "fig17") }
func BenchmarkNoSweep(b *testing.B)                  { runExperiment(b, "ablation-no") }
func BenchmarkCycleModelAblation(b *testing.B)       { runExperiment(b, "ablation-cycles") }

// --- Micro-benchmarks of the pipeline's stages. ---

func benchWorkload(b *testing.B) (*graph.Query, *graph.Graph) {
	b.Helper()
	g := ldbc.Generate(ldbc.Config{ScaleFactor: 3, BasePersons: 100, Seed: 42})
	q, err := ldbc.QueryByName("q5")
	if err != nil {
		b.Fatal(err)
	}
	return q, g
}

func BenchmarkCSTBuild(b *testing.B) {
	q, g := benchWorkload(b)
	root := order.SelectRoot(q, g)
	tree := order.BuildBFSTree(q, root)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := cst.Build(q, g, tree)
		if c.IsEmpty() {
			b.Fatal("empty CST")
		}
	}
}

func BenchmarkWorkloadEstimate(b *testing.B) {
	q, g := benchWorkload(b)
	tree := order.BuildBFSTree(q, order.SelectRoot(q, g))
	c := cst.Build(q, g, tree)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if w := cst.EstimateWorkload(c); w <= 0 {
			b.Fatal("zero workload")
		}
	}
}

func BenchmarkCSTPartition(b *testing.B) {
	q, g := benchWorkload(b)
	tree := order.BuildBFSTree(q, order.SelectRoot(q, g))
	c := cst.Build(q, g, tree)
	o := order.PathBased(tree, c)
	pc := cst.PartitionConfig{MaxSizeBytes: c.SizeBytes()/8 + 64, MaxCandDegree: 1 << 20}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n := cst.Partition(c, o, pc, func(*cst.CST) {}); n < 2 {
			b.Fatalf("only %d partitions", n)
		}
	}
}

// BenchmarkKernel benchmarks each hardware variant's full kernel execution
// (real enumeration plus cycle accounting) on the same CST.
func BenchmarkKernel(b *testing.B) {
	q, g := benchWorkload(b)
	tree := order.BuildBFSTree(q, order.SelectRoot(q, g))
	c := cst.Build(q, g, tree)
	o := order.PathBased(tree, c)
	dev := fpgasim.DefaultConfig()
	for _, v := range core.Variants() {
		b.Run(v.String(), func(b *testing.B) {
			var emb int64
			for i := 0; i < b.N; i++ {
				res, err := core.Run(c, o, core.Options{Variant: v, Config: dev})
				if err != nil {
					b.Fatal(err)
				}
				emb = res.Count
			}
			b.ReportMetric(float64(emb), "embeddings")
		})
	}
}

// BenchmarkBaselines measures each comparison algorithm on the same query.
func BenchmarkBaselines(b *testing.B) {
	q, g := benchWorkload(b)
	for _, name := range []string{"backtrack", "CFL", "CECI", "DAF", "GpSM", "GSI"} {
		alg := baseline.Registry()[name]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := alg(q, g, baseline.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEndToEnd measures the whole pipeline per variant, reporting
// embeddings per second of host wall time.
func BenchmarkEndToEnd(b *testing.B) {
	q, g := benchWorkload(b)
	for _, v := range []core.Variant{core.VariantBasic, core.VariantSep} {
		b.Run(v.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := host.Match(context.Background(), q, g, host.Config{Variant: v})
				if err != nil {
					b.Fatal(err)
				}
				if rep.Embeddings == 0 {
					b.Fatal("no embeddings")
				}
			}
		})
	}
}

// BenchmarkLDBCGenerate measures dataset generation throughput.
func BenchmarkLDBCGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := ldbc.Generate(ldbc.Config{ScaleFactor: 1, BasePersons: 200, Seed: int64(i)})
		if g.NumVertices() == 0 {
			b.Fatal("empty graph")
		}
	}
}
