package fast

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"fastmatch/graph"
	"fastmatch/internal/host"
)

// DefaultPlanCacheSize is the plan-cache entry cap an Engine uses when
// Options.PlanCacheSize is 0. Plans are small (a matching order plus a CST
// over the shared graph), but arbitrary traffic can present unboundedly many
// query structures, so serving needs a ceiling; 128 comfortably covers the
// benchmark workloads many times over.
const DefaultPlanCacheSize = 128

// Engine is the reusable, concurrent entry point for serving matching
// traffic against one data graph. Where the one-shot Match plans every call
// from scratch and runs partitions sequentially, an Engine
//
//   - owns a bounded worker pool that fans each query's CST partitions out
//     across goroutines (the software analogue of the paper's multi-PE
//     parallelism) and is shared by every concurrent Match/MatchBatch call,
//     so simultaneous queries cannot oversubscribe the host; and
//   - keeps a bounded LRU query-plan cache (root, BFS tree, matching order
//     and CST, keyed by a structural fingerprint of the query), so repeated
//     queries skip Phase 1 entirely — the dominant host-side cost for small
//     result sets — while arbitrary traffic cannot grow the cache without
//     limit (Options.PlanCacheSize; evicted plans are re-planned on demand).
//
// An Engine is safe for concurrent use. Counts are deterministic: the same
// query returns the same Result.Count regardless of Workers, of
// PartitionWorkers, or of how many goroutines call in at once.
type Engine struct {
	g    *graph.Graph
	opts Options
	cfg  host.Config
	pool chan struct{}

	// seeds carries planning decisions (root, BFS tree, matching order — no
	// CST) from the engine this one replaced across an ApplyDelta whose
	// label set is unchanged: a plan-cache miss with a seed rebuilds only
	// the CST via host.PrepareSeeded instead of re-planning from scratch.
	// Written once before the engine is published, read-only after.
	seeds map[string]*host.Plan

	mu        sync.Mutex
	plans     map[string]*list.Element // values are *planEntry; list order is LRU
	lru       *list.List               // front = most recently used
	planCap   int                      // <= 0 means unbounded
	hits      int64
	miss      int64
	evictions int64
}

// planEntry is a singleflight slot: concurrent first requests for the same
// fingerprint share one host.Prepare instead of each rebuilding the CST —
// Phase 1 is the dominant host-side cost the cache exists to avoid. An
// entry evicted while a holder is still preparing or matching stays valid
// for that holder; it is merely no longer findable in the cache.
type planEntry struct {
	key  string
	once sync.Once
	plan *host.Plan
	err  error
	// ready is set (inside once) when plan/err are final; planSeeds uses it
	// to skip entries still being prepared without blocking on their once.
	ready atomic.Bool
}

// NewEngine creates an Engine over g. opts follows Match's semantics, with
// two differences: Workers defaults to runtime.NumCPU() instead of 1,
// because an Engine exists to exploit parallelism, and PartitionWorkers
// defaults to Workers so the partition producer scales with the kernel
// fan-out it feeds. A nil opts means VariantShare on the default device.
func NewEngine(g *graph.Graph, opts *Options) (*Engine, error) {
	return newEngine(g, opts, nil)
}

// newEngine builds an Engine, optionally around an externally owned worker
// pool — the Router's shared budget. With an external pool the engine does
// not size its own: Workers defaults to the pool's capacity, and the pool is
// installed whatever Workers is, so even a sequential engine draws its
// kernel tokens from the shared budget instead of adding load beside it.
func newEngine(g *graph.Graph, opts *Options, pool chan struct{}) (*Engine, error) {
	if g == nil {
		return nil, fmt.Errorf("fast: NewEngine: nil graph")
	}
	if opts == nil {
		opts = &Options{Variant: VariantShare}
	}
	o := *opts
	if o.Workers <= 0 {
		if pool != nil {
			o.Workers = cap(pool)
		} else {
			o.Workers = runtime.NumCPU()
		}
	}
	if o.PartitionWorkers == 0 {
		o.PartitionWorkers = o.Workers
	}
	cfg, err := o.hostConfig()
	if err != nil {
		return nil, err
	}
	planCap := o.PlanCacheSize
	if planCap == 0 {
		planCap = DefaultPlanCacheSize
	}
	e := &Engine{
		g:       g,
		opts:    o,
		cfg:     cfg,
		plans:   make(map[string]*list.Element),
		lru:     list.New(),
		planCap: planCap,
	}
	switch {
	case pool != nil:
		e.pool = pool
		e.cfg.Pool = pool
	case o.Workers > 1:
		e.pool = make(chan struct{}, o.Workers)
		e.cfg.Pool = e.pool
	}
	return e, nil
}

// Match finds all embeddings of q in the engine's graph, reusing the cached
// plan when q (by structural fingerprint) has been matched before. It is
// MatchContext with context.Background() and no per-call options.
func (e *Engine) Match(q *graph.Query) (*Result, error) {
	return e.MatchContext(context.Background(), q)
}

// MatchContext finds embeddings of q under ctx and the per-call options,
// reusing the cached plan when q (by structural fingerprint) has been
// matched before. Per-call options never invalidate the plan — a plan is
// the matching order plus the CST, independent of limits, deadlines, δ and
// collection — so one Engine serves callers with different budgets without
// re-planning.
//
// Cancellation semantics match the package-level MatchContext: a cancelled
// or deadlined call returns its partial Result (Partial set) with
// ErrCanceled or context.DeadlineExceeded, a WithLimit stop returns the
// partial Result with a nil error, and an already-expired ctx returns
// promptly without planning or matching.
func (e *Engine) MatchContext(ctx context.Context, q *graph.Query, opts ...MatchOption) (*Result, error) {
	return e.matchContext(ctx, q, nil, opts)
}

// MatchStream finds embeddings of q and hands each one to emit as it is
// found, while the pipeline keeps running — the serving shape for callers
// that want first results before the full count. emit is never called
// concurrently with itself. Returning a non-nil error from emit stops
// enumeration early; MatchStream then returns that error with the partial
// Result. Context cancellation stops the stream with
// ErrCanceled/context.DeadlineExceeded the same way.
//
// With Workers <= 1 and deterministic plans the emission order is the
// sequential pipeline's; with Workers > 1 embeddings arrive in unspecified
// order (calls are still serialized). Embeddings are only materialised into
// Result.Embeddings when WithCollect(true) (or the engine's
// CollectEmbeddings) asks for it.
func (e *Engine) MatchStream(ctx context.Context, q *graph.Query, emit func(graph.Embedding) error, opts ...MatchOption) (*Result, error) {
	if emit == nil {
		return nil, fmt.Errorf("fast: Engine.MatchStream: nil emit callback")
	}
	return e.matchContext(ctx, q, emit, opts)
}

func (e *Engine) matchContext(ctx context.Context, q *graph.Query, emit func(graph.Embedding) error, opts []MatchOption) (*Result, error) {
	call, err := resolveCall(opts)
	if err != nil {
		// An invalid per-call value fails here, before the plan cache: it
		// must not burn a host.Prepare or occupy a cache slot for a call
		// that can never run.
		return nil, err
	}
	if q == nil {
		return nil, fmt.Errorf("fast: Engine.Match: nil query")
	}
	ctx, cancel := call.callContext(ctx)
	defer cancel()
	if err := ctx.Err(); err != nil {
		return &Result{Partial: true}, err
	}
	plan, err := e.plan(q)
	if err != nil {
		return nil, err
	}
	cfg := e.cfg
	cfg.Plan = plan
	cfg.Emit = emit
	call.apply(&cfg)
	return matchReport(host.Match(ctx, q, e.g, cfg))
}

// enginePrepare is Engine.plan's planning hook. Tests stub it to model
// host.Prepare failures — the singleflight retry path is otherwise
// unreachable with options NewEngine already validated.
var enginePrepare = host.Prepare

// enginePrepareSeeded is the seeded variant's hook, stubbed by the delta
// tests to observe seed reuse.
var enginePrepareSeeded = host.PrepareSeeded

// plan returns q's cached plan, planning it (once, even under concurrent
// first requests) on a miss. Planning runs detached from any caller's
// context: Prepare is not cancellable mid-build, and one caller's ctx must
// not poison the shared singleflight slot for everyone else — callers check
// their own context before and after.
func (e *Engine) plan(q *graph.Query) (*host.Plan, error) {
	key := fingerprint(q)
	e.mu.Lock()
	var ent *planEntry
	if el, ok := e.plans[key]; ok {
		e.hits++
		e.lru.MoveToFront(el)
		ent = el.Value.(*planEntry)
	} else {
		e.miss++
		ent = &planEntry{key: key}
		e.plans[key] = e.lru.PushFront(ent)
		if e.planCap > 0 {
			for e.lru.Len() > e.planCap {
				oldest := e.lru.Back()
				e.lru.Remove(oldest)
				delete(e.plans, oldest.Value.(*planEntry).key)
				e.evictions++
			}
		}
	}
	e.mu.Unlock()
	ent.once.Do(func() {
		if seed := e.seeds[key]; seed != nil {
			ent.plan, ent.err = enginePrepareSeeded(context.Background(), q, e.g, e.cfg, seed)
		} else {
			ent.plan, ent.err = enginePrepare(context.Background(), q, e.g, e.cfg)
		}
		ent.ready.Store(true)
	})
	if ent.err != nil {
		// Drop the failed slot so a later call can retry planning.
		e.mu.Lock()
		if el, ok := e.plans[key]; ok && el.Value.(*planEntry) == ent {
			e.lru.Remove(el)
			delete(e.plans, key)
		}
		e.mu.Unlock()
		return nil, ent.err
	}
	return ent.plan, nil
}

// MatchBatch runs every query concurrently with no cancellation or per-call
// bounds — MatchBatchContext with context.Background().
func (e *Engine) MatchBatch(qs []*graph.Query) ([]*Result, error) {
	return e.MatchBatchContext(context.Background(), qs)
}

// MatchBatchContext runs every query concurrently — each on its own
// producer goroutine, all sharing the engine's worker pool — and returns
// results aligned with qs. ctx and the per-call options govern every query
// in the batch; cancelling ctx stops all of them at their next check point,
// so one cancelled batch does not leak goroutines. Submission itself also
// stops: once ctx has fired, queries not yet started are never scheduled —
// their slots are filled with a partial zero Result and the context's error
// — so a cancelled 10k-query batch does not spawn 10k no-op goroutines.
//
// Every query runs to its own completion (or cancellation) regardless of
// other queries' failures. The returned error aggregates all per-query
// failures via errors.Join, each wrapped with its index and query name, in
// index order — so the lowest-index failure stays first (the error
// MatchBatch historically returned alone) and errors.Is/As see every
// underlying cause.
func (e *Engine) MatchBatchContext(ctx context.Context, qs []*graph.Query, opts ...MatchOption) ([]*Result, error) {
	results, errs := e.matchBatch(ctx, qs, opts)
	return results, joinBatchErrors(qs, errs)
}

// matchBatch is MatchBatchContext's engine: it runs the batch and returns
// the raw per-index errors, unwrapped and unjoined, so callers that account
// per query (the Router's counters, which must attribute a Failure to the
// query that failed and not to its batch-mates) see each query's own error
// instead of the aggregate.
func (e *Engine) matchBatch(ctx context.Context, qs []*graph.Query, opts []MatchOption) ([]*Result, []error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]*Result, len(qs))
	errs := make([]error, len(qs))
	// Bound in-flight queries: the shared pool already bounds kernel
	// compute at Workers, so query-level concurrency beyond a handful only
	// buys buffered partition memory (each in-flight Match keeps its own
	// worker goroutines and channel buffers). The cap keeps the batch's
	// footprint linear in Workers instead of quadratic.
	inflight := min(e.opts.Workers, 8)
	if inflight < 1 {
		inflight = 1
	}
	sem := make(chan struct{}, inflight)
	// cancelFrom marks queries the short-circuit never submitted: each gets
	// a partial zero Result and the context's error, the same shape a
	// submitted-then-cancelled query reports.
	cancelFrom := func(i int) {
		err := ctx.Err()
		for j := i; j < len(qs); j++ {
			results[j] = &Result{Partial: true}
			errs[j] = err
		}
	}
	var wg sync.WaitGroup
submit:
	for i, q := range qs {
		if ctx.Err() != nil {
			cancelFrom(i)
			break
		}
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			cancelFrom(i)
			break submit
		}
		wg.Add(1)
		go func(i int, q *graph.Query) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i], errs[i] = e.MatchContext(ctx, q, opts...)
		}(i, q)
	}
	wg.Wait()
	return results, errs
}

// joinBatchErrors wraps each per-query error with its index and query name
// and aggregates them via errors.Join, in index order — so the lowest-index
// failure stays first and errors.Is/As see every underlying cause. The
// per-index slice is left untouched.
func joinBatchErrors(qs []*graph.Query, errs []error) error {
	var wrapped []error
	for i, err := range errs {
		if err == nil {
			continue
		}
		name := "<nil>"
		if qs[i] != nil {
			name = qs[i].Name()
		}
		wrapped = append(wrapped, fmt.Errorf("fast: MatchBatch query %d (%s): %w", i, name, err))
	}
	return errors.Join(wrapped...)
}

// planSeeds harvests the cached plans' planning decisions for carrying into
// a successor engine after ApplyDelta: per fingerprint the root, BFS tree
// and matching order — not the CST, which belongs to the old epoch and must
// be rebuilt against the new graph. Entries still mid-preparation are
// skipped (they just re-plan in the successor); the ready flag makes that a
// non-blocking check.
func (e *Engine) planSeeds() map[string]*host.Plan {
	e.mu.Lock()
	entries := make([]*planEntry, 0, len(e.plans))
	for _, el := range e.plans {
		entries = append(entries, el.Value.(*planEntry))
	}
	e.mu.Unlock()
	seeds := make(map[string]*host.Plan, len(entries))
	for _, ent := range entries {
		if !ent.ready.Load() || ent.err != nil || ent.plan == nil {
			continue
		}
		seeds[ent.key] = &host.Plan{Root: ent.plan.Root, Tree: ent.plan.Tree, Order: ent.plan.Order}
	}
	return seeds
}

// sameLabelSet reports whether the set of labels with at least one live
// vertex is identical in a and b. ApplyDelta carries plan seeds only when it
// is: a label appearing or vanishing changes which candidate sets are empty,
// and with them the planning heuristics' inputs, so those deltas invalidate
// the plan cache outright.
func sameLabelSet(a, b *graph.Graph) bool {
	na, nb := a.NumLabels(), b.NumLabels()
	n := na
	if nb > n {
		n = nb
	}
	for l := 0; l < n; l++ {
		if (a.LabelFrequency(graph.Label(l)) > 0) != (b.LabelFrequency(graph.Label(l)) > 0) {
			return false
		}
	}
	return true
}

// PlanCacheStats reports plan-cache hits and misses since the engine was
// created. A query whose plan was evicted and re-planned counts as a miss
// again, so hits+misses always equals the number of Match calls that reached
// the cache.
func (e *Engine) PlanCacheStats() (hits, misses int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.hits, e.miss
}

// PlanCacheEvictions reports how many cached plans the LRU bound has evicted
// since the engine was created.
func (e *Engine) PlanCacheEvictions() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.evictions
}

// PlanCacheCap returns the plan-cache entry bound (<= 0 means unbounded).
func (e *Engine) PlanCacheCap() int { return e.planCap }

// CachedPlans returns the number of distinct query plans currently cached;
// it never exceeds PlanCacheCap when that bound is positive.
func (e *Engine) CachedPlans() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.plans)
}

// Workers returns the engine's worker-pool size.
func (e *Engine) Workers() int { return e.opts.Workers }

// fingerprint canonically encodes a query's structure — vertex labels,
// adjacency and edge labels (the name is deliberately excluded, so two
// structurally identical queries share one plan). Query graphs are tiny, so
// a plain string key is cheap and collision-free.
func fingerprint(q *graph.Query) string {
	var b strings.Builder
	fmt.Fprintf(&b, "n%d", q.NumVertices())
	for u := 0; u < q.NumVertices(); u++ {
		fmt.Fprintf(&b, "|%d:", q.Label(u))
		for _, v := range q.Neighbors(u) {
			fmt.Fprintf(&b, "%d/%d,", v, q.EdgeLabel(u, v))
		}
	}
	return b.String()
}
