package fast

import (
	"testing"

	"fastmatch/graph"
	"fastmatch/ldbc"
)

// TestEdgeLabeledFacade: the Section II extension is reachable through the
// public API and agrees with the oracle.
func TestEdgeLabeledFacade(t *testing.T) {
	b := graph.NewBuilder(6, 4)
	p1 := b.AddVertex(0)
	p2 := b.AddVertex(0)
	m1 := b.AddVertex(1)
	m2 := b.AddVertex(1)
	m3 := b.AddVertex(1)
	b.AddEdgeLabeled(p1, m1, 1)
	b.AddEdgeLabeled(p1, m2, 2)
	b.AddEdgeLabeled(p2, m2, 1)
	b.AddEdgeLabeled(p2, m3, 2)
	g := b.MustBuild()

	q := graph.MustQuery("labeled-wedge", []graph.Label{0, 1, 1},
		[][2]graph.QueryVertex{{0, 1}, {0, 2}})
	if err := q.SetEdgeLabel(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := q.SetEdgeLabel(0, 2, 2); err != nil {
		t.Fatal(err)
	}
	res, err := Match(q, g, &Options{CollectEmbeddings: true})
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := RunBaseline(BaselineBacktrack, q, g, BaselineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != oracle.Count {
		t.Errorf("FAST %d vs oracle %d", res.Count, oracle.Count)
	}
	if res.Count != 2 { // (p1,m1,m2) and (p2,m2,m3)
		t.Errorf("count = %d, want 2", res.Count)
	}
	for _, e := range res.Embeddings {
		if err := graph.VerifyEmbedding(q, g, e); err != nil {
			t.Errorf("invalid: %v", err)
		}
	}
}

func TestDefaultDeviceMirrorsPaper(t *testing.T) {
	d := DefaultDevice()
	if d.ClockMHz != 300 {
		t.Errorf("clock %v, want the paper's 300 MHz", d.ClockMHz)
	}
	if d.BRAMBytes != 35<<20 {
		t.Errorf("BRAM %d, want 35 MB", d.BRAMBytes)
	}
	if d.DRAMBytes != 64<<30 {
		t.Errorf("DRAM %d, want 64 GB", d.DRAMBytes)
	}
	if d.PCIeGBps != 16 {
		t.Errorf("PCIe %v GB/s, want 16", d.PCIeGBps)
	}
}

func TestMatchMultiFPGAFacade(t *testing.T) {
	g := ldbc.Generate(ldbc.Config{ScaleFactor: 1, Seed: 42})
	q, _ := ldbc.QueryByName("q5")
	dev := DefaultDevice()
	dev.BRAMBytes = 64 << 10
	dev.BatchSize = 128
	one, err := Match(q, g, &Options{Device: dev, NumFPGAs: 1})
	if err != nil {
		t.Fatal(err)
	}
	four, err := Match(q, g, &Options{Device: dev, NumFPGAs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if one.Count != four.Count {
		t.Errorf("multi-FPGA changed count: %d vs %d", one.Count, four.Count)
	}
	if one.Partitions >= 4 && four.FPGATime >= one.FPGATime {
		t.Errorf("4 cards not faster: %v vs %v", four.FPGATime, one.FPGATime)
	}
}

func TestAllVariantsListedAndDistinct(t *testing.T) {
	seen := map[Variant]bool{}
	for _, v := range AllVariants() {
		if seen[v] {
			t.Errorf("duplicate variant %s", v)
		}
		seen[v] = true
		if _, _, err := v.toCore(); err != nil {
			t.Errorf("%s: %v", v, err)
		}
	}
	if len(seen) != 5 {
		t.Errorf("got %d variants", len(seen))
	}
}

func TestAnalyzeCSTAgainstDevice(t *testing.T) {
	g := ldbc.Generate(ldbc.Config{ScaleFactor: 1, Seed: 42})
	q, _ := ldbc.QueryByName("q7")
	s := AnalyzeCST(q, g)
	// The CST must be a fraction of the data graph (Fig. 9: < 60%).
	if s.SizeBytes <= 0 || float64(s.SizeBytes) > 2*float64(g.SizeBytes()) {
		t.Errorf("CST size %d vs graph %d", s.SizeBytes, g.SizeBytes())
	}
}
