package fast

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"fastmatch/graph"
)

// ServerOptions configures a Server.
type ServerOptions struct {
	// QueryByName resolves a request's "query" field to a query graph (for
	// example ldbc.QueryByName). nil disables named queries: requests must
	// spell out labels and edges.
	QueryByName func(name string) (*graph.Query, error)
	// MaxBodyBytes bounds request bodies (JSON and binary graph uploads
	// alike). 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64
}

// DefaultMaxBodyBytes bounds request bodies when ServerOptions leaves
// MaxBodyBytes zero — large enough for a swapped data graph, small enough
// that a stray upload cannot exhaust memory.
const DefaultMaxBodyBytes = 256 << 20

// Server is the HTTP/JSON serving front end over a Router. Every match
// request passes through the Router's admission controller, so a saturated
// server sheds with machine-readable reasons instead of stacking blocked
// handlers:
//
//	POST /v1/graphs/{name}/count     unary match, JSON in/out
//	POST /v1/graphs/{name}/match     streaming match, NDJSON out
//	POST /v1/graphs/{name}/delta     apply a mutation batch (new epoch)
//	GET  /v1/graphs/{name}/subscribe standing query, NDJSON MatchDelta stream
//	GET  /v1/graphs                  list graphs with serving stats
//	GET  /v1/graphs/{name}/stats     one graph's GraphStats
//	PUT  /v1/graphs/{name}           swap the data graph (binary body)
//	GET  /metrics                    Prometheus text format
//
// Errors are JSON envelopes {"error": ..., "reason": ...} where reason is
// one of bad_request (400), unknown_graph (404), queue_full (429),
// breaker_open (503), draining (503), deadline_doomed (504), queue_timeout
// (504) or internal (500). An admitted call cut short by its deadline is
// service, not failure: it returns 200 with "partial": true, mirroring the
// Go API's partial Result.
//
// Fault tolerance: every request runs behind a recovery middleware — a
// handler panic is recovered, counted (fastmatch_panics_total) and answered
// with 500 "internal" instead of tearing down the connection served by this
// process. Shutdown drains gracefully: new requests are refused with 503
// "draining", standing subscriptions terminate with a "draining" close
// line, and in-flight requests run to completion (or until the caller's
// Shutdown context fires).
type Server struct {
	router *Router
	opts   ServerOptions
	mux    *http.ServeMux

	draining  atomic.Bool
	inflight  sync.WaitGroup
	panics    atomic.Int64
	drainCtx  context.Context // cancelled by Shutdown: ends subscriptions
	drainStop context.CancelFunc
	drainOnce sync.Once
	drainedCh chan struct{} // closed when the in-flight count hits zero
}

// NewServer wraps r in the HTTP front end. The Server holds no state of its
// own beyond the mux and drain bookkeeping: graphs added or swapped on the
// Router are visible to requests immediately.
func NewServer(r *Router, opts ServerOptions) *Server {
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = DefaultMaxBodyBytes
	}
	s := &Server{router: r, opts: opts, mux: http.NewServeMux(), drainedCh: make(chan struct{})}
	s.drainCtx, s.drainStop = context.WithCancel(context.Background())
	s.mux.HandleFunc("POST /v1/graphs/{name}/count", s.handleCount)
	s.mux.HandleFunc("POST /v1/graphs/{name}/match", s.handleMatch)
	s.mux.HandleFunc("POST /v1/graphs/{name}/delta", s.handleDelta)
	s.mux.HandleFunc("GET /v1/graphs/{name}/subscribe", s.handleSubscribe)
	s.mux.HandleFunc("GET /v1/graphs", s.handleList)
	s.mux.HandleFunc("GET /v1/graphs/{name}/stats", s.handleStats)
	s.mux.HandleFunc("PUT /v1/graphs/{name}", s.handleSwap)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// statusRecorder remembers whether a handler already wrote its header, so
// the panic middleware knows whether a 500 envelope can still go out.
type statusRecorder struct {
	http.ResponseWriter
	wrote bool
}

func (sr *statusRecorder) WriteHeader(status int) {
	sr.wrote = true
	sr.ResponseWriter.WriteHeader(status)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	sr.wrote = true
	return sr.ResponseWriter.Write(b)
}

// Flush forwards http.Flusher so the streaming handlers keep flushing
// through the recorder.
func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// ServeHTTP implements http.Handler: the drain gate and panic-recovery
// middleware around the mux. The in-flight count is taken before the drain
// check, so Shutdown's wait can never miss a request that saw draining
// false.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.inflight.Add(1)
	defer s.inflight.Done()
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining", "server is draining")
		return
	}
	sr := &statusRecorder{ResponseWriter: w}
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		if rec == http.ErrAbortHandler { // the stdlib's own abort protocol
			panic(rec)
		}
		s.panics.Add(1)
		if !sr.wrote {
			writeError(sr, http.StatusInternalServerError, "internal", fmt.Sprintf("handler panic: %v", rec))
		}
	}()
	s.mux.ServeHTTP(sr, r)
}

// Shutdown drains the server: new requests are refused with 503 "draining",
// standing subscription streams terminate with a "draining" close line, and
// Shutdown blocks until every in-flight request has finished or ctx fires
// (returning ctx's error with requests still running). Shutdown is
// idempotent and safe to call concurrently; the Server keeps refusing
// requests afterwards.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.drainStop() // ends every subscription stream's wait
	s.drainOnce.Do(func() {
		go func() {
			s.inflight.Wait()
			close(s.drainedCh)
		}()
	})
	select {
	case <-s.drainedCh:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Panics reports handler panics recovered by the serving middleware.
func (s *Server) Panics() int64 { return s.panics.Load() }

// matchRequest is the body of /count and /match. A query is either named
// (resolved through ServerOptions.QueryByName) or spelled out as vertex
// labels plus an undirected edge list — exactly graph.NewQuery's shape.
type matchRequest struct {
	Query  string        `json:"query,omitempty"`
	Labels []graph.Label `json:"labels,omitempty"`
	Edges  [][2]int      `json:"edges,omitempty"`

	// Limit caps embeddings (0 = unlimited override, absent = tenant
	// default); TimeoutMS bounds the call's wall clock including admission
	// queue time; Delta overrides the CPU share δ.
	Limit     *int64   `json:"limit,omitempty"`
	TimeoutMS *int64   `json:"timeout_ms,omitempty"`
	Delta     *float64 `json:"delta,omitempty"`
}

// countResponse is /count's reply. ElapsedMS is the server-side wall clock
// of the routed call, queue time included.
type countResponse struct {
	Graph     string  `json:"graph"`
	Query     string  `json:"query,omitempty"`
	Count     int64   `json:"count"`
	Partial   bool    `json:"partial"`
	Reason    string  `json:"reason,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// errorResponse is the JSON error envelope every non-2xx reply carries.
type errorResponse struct {
	Error  string `json:"error"`
	Reason string `json:"reason"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // header is out; nothing useful to do on a failed write
}

func writeError(w http.ResponseWriter, status int, reason, msg string) {
	writeJSON(w, status, errorResponse{Error: msg, Reason: reason})
}

// shedStatus maps a routed call's error to (status, reason) for the
// envelope; ok is false for errors that are not admission or routing
// verdicts (the caller decides whether those are 400s or 500s).
func shedStatus(err error) (int, string, bool) {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests, "queue_full", true
	case errors.Is(err, ErrDeadlineDoomed):
		return http.StatusGatewayTimeout, "deadline_doomed", true
	case errors.Is(err, ErrQueueTimeout):
		return http.StatusGatewayTimeout, "queue_timeout", true
	case errors.Is(err, ErrBreakerOpen):
		return http.StatusServiceUnavailable, "breaker_open", true
	case errors.Is(err, ErrUnknownGraph):
		return http.StatusNotFound, "unknown_graph", true
	}
	return 0, "", false
}

// parseMatchRequest decodes and validates a /count or /match body into a
// query plus per-call options.
func (s *Server) parseMatchRequest(r *http.Request) (*graph.Query, []MatchOption, error) {
	var req matchRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, s.opts.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, nil, fmt.Errorf("decoding request body: %w", err)
	}
	var q *graph.Query
	switch {
	case req.Query != "" && req.Labels != nil:
		return nil, nil, errors.New(`request names a query and spells one out; use "query" or "labels"+"edges", not both`)
	case req.Query != "":
		if s.opts.QueryByName == nil {
			return nil, nil, errors.New("named queries are not enabled on this server")
		}
		var err error
		if q, err = s.opts.QueryByName(req.Query); err != nil {
			return nil, nil, err
		}
	case req.Labels != nil:
		edges := make([][2]graph.QueryVertex, len(req.Edges))
		for i, e := range req.Edges {
			edges[i] = [2]graph.QueryVertex{e[0], e[1]}
		}
		var err error
		if q, err = graph.NewQuery("http", req.Labels, edges); err != nil {
			return nil, nil, err
		}
	default:
		return nil, nil, errors.New(`request carries no query: set "query" or "labels"+"edges"`)
	}
	var opts []MatchOption
	if req.Limit != nil {
		opts = append(opts, WithLimit(*req.Limit))
	}
	if req.TimeoutMS != nil {
		opts = append(opts, WithTimeout(time.Duration(*req.TimeoutMS)*time.Millisecond))
	}
	if req.Delta != nil {
		opts = append(opts, WithDelta(*req.Delta))
	}
	return q, opts, nil
}

// finishReason labels a completed call for the response body: partial
// results carry why they stopped.
func finishReason(res *Result, err error) string {
	switch {
	case err == nil && res.Partial:
		return "limit"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(err, context.Canceled):
		return "canceled"
	}
	return ""
}

func (s *Server) handleCount(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	q, opts, err := s.parseMatchRequest(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	start := time.Now()
	res, err := s.router.MatchContext(r.Context(), name, q, opts...)
	if err != nil {
		if status, reason, ok := shedStatus(err); ok {
			writeError(w, status, reason, err.Error())
			return
		}
		if res == nil {
			// Hard failure with no shed verdict: the remaining producers are
			// option validation and query shape — the caller's fault.
			writeError(w, http.StatusBadRequest, "bad_request", err.Error())
			return
		}
		// Admitted but cut short (deadline or client cancel): service, not
		// failure — 200 with the partial count, like the Go API's partial
		// Result with its error.
	}
	writeJSON(w, http.StatusOK, countResponse{
		Graph:     name,
		Query:     q.Name(),
		Count:     res.Count,
		Partial:   res.Partial,
		Reason:    finishReason(res, err),
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1e3,
	})
}

// matchLine is one NDJSON line of /match: embedding lines stream as they
// are found, then exactly one summary line with done set reports the final
// count and why the stream stopped, mirroring countResponse.
type matchLine struct {
	Embedding []graph.VertexID `json:"embedding,omitempty"`
	Done      bool             `json:"done,omitempty"`
	Count     int64            `json:"count,omitempty"`
	Partial   bool             `json:"partial,omitempty"`
	Reason    string           `json:"reason,omitempty"`
	Error     string           `json:"error,omitempty"`
}

func (s *Server) handleMatch(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	q, opts, err := s.parseMatchRequest(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	// Sheds must keep their status codes, so admission is probed before the
	// 200 header goes out: a request the controller would reject fails fast
	// here with the same JSON envelope as /count. The probe is the real
	// call — the header is written only once the stream is admitted and
	// running, i.e. on the first emit or at completion.
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	headerOut := false
	emit := func(e graph.Embedding) error {
		if !headerOut {
			headerOut = true
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
		}
		if err := enc.Encode(matchLine{Embedding: e}); err != nil {
			return err // client went away: stop enumerating
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	res, err := s.router.MatchStream(r.Context(), name, q, emit, opts...)
	if err != nil && !headerOut {
		if status, reason, ok := shedStatus(err); ok {
			writeError(w, status, reason, err.Error())
			return
		}
		if res == nil {
			writeError(w, http.StatusBadRequest, "bad_request", err.Error())
			return
		}
	}
	if !headerOut {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
	}
	line := matchLine{Done: true, Count: res.Count, Partial: res.Partial, Reason: finishReason(res, err)}
	if err != nil && line.Reason == "" {
		line.Error = err.Error()
	}
	_ = enc.Encode(line)
	if flusher != nil {
		flusher.Flush()
	}
}

// deltaRequest is the body of POST /v1/graphs/{name}/delta — graph.Delta's
// shape on the wire. add_edge_labels, when present, must parallel add_edges.
type deltaRequest struct {
	AddVertices   []graph.Label       `json:"add_vertices,omitempty"`
	DelVertices   []graph.VertexID    `json:"del_vertices,omitempty"`
	AddEdges      [][2]graph.VertexID `json:"add_edges,omitempty"`
	AddEdgeLabels []graph.EdgeLabel   `json:"add_edge_labels,omitempty"`
	DelEdges      [][2]graph.VertexID `json:"del_edges,omitempty"`
}

// deltaResponse mirrors DeltaResult for the wire.
type deltaResponse struct {
	Graph      string `json:"graph"`
	Epoch      uint64 `json:"epoch"`
	Vertices   int    `json:"vertices"`
	Edges      int    `json:"edges"`
	Touched    int    `json:"touched"`
	Notified   int    `json:"notified"`
	PlanSeeded bool   `json:"plan_seeded"`
}

func (s *Server) handleDelta(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req deltaRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("decoding request body: %v", err))
		return
	}
	res, err := s.router.ApplyDelta(name, graph.Delta{
		AddVertices:   req.AddVertices,
		DelVertices:   req.DelVertices,
		AddEdges:      req.AddEdges,
		AddEdgeLabels: req.AddEdgeLabels,
		DelEdges:      req.DelEdges,
	})
	if err != nil {
		switch {
		case errors.Is(err, ErrUnknownGraph):
			writeError(w, http.StatusNotFound, "unknown_graph", err.Error())
		case errors.Is(err, ErrGraphSwapped):
			// The batch lost against a concurrent swap: the snapshot it was
			// computed over is gone. Retrying against the new graph is the
			// client's call, hence 409 rather than 5xx.
			writeError(w, http.StatusConflict, "conflict", err.Error())
		default:
			writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		}
		return
	}
	writeJSON(w, http.StatusOK, deltaResponse{
		Graph:      name,
		Epoch:      res.Epoch,
		Vertices:   res.Vertices,
		Edges:      res.Edges,
		Touched:    res.Touched,
		Notified:   res.Notified,
		PlanSeeded: res.PlanSeeded,
	})
}

// subscribeLine is one NDJSON line of GET .../subscribe. The first line has
// subscribed set (with the registration epoch); every committed batch after
// that is a line with its epoch and the added/removed embeddings (both
// empty for a batch that did not affect the query — an epoch heartbeat);
// the last line has closed set with the terminal reason.
type subscribeLine struct {
	Subscribed bool              `json:"subscribed,omitempty"`
	Graph      string            `json:"graph,omitempty"`
	Query      string            `json:"query,omitempty"`
	Epoch      uint64            `json:"epoch"`
	Added      []graph.Embedding `json:"added,omitempty"`
	Removed    []graph.Embedding `json:"removed,omitempty"`
	Closed     bool              `json:"closed,omitempty"`
	Reason     string            `json:"reason,omitempty"`
}

// subscribeCloseReason labels the terminal line of a subscription stream.
func subscribeCloseReason(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrGraphSwapped):
		return "swapped"
	case errors.Is(err, ErrUnknownGraph):
		return "removed"
	case errors.Is(err, context.Canceled):
		return "canceled"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(err, ErrSubscriptionClosed):
		return "closed"
	}
	return "error"
}

// handleSubscribe registers a standing query (named via ?query=, resolved
// through ServerOptions.QueryByName) and streams its MatchDeltas as NDJSON
// until the client disconnects or the graph is swapped or removed. The
// stream's epochs are exactly the graph's committed epochs from the
// subscription point on, in order, one line each.
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	qname := r.URL.Query().Get("query")
	if qname == "" {
		writeError(w, http.StatusBadRequest, "bad_request", `subscribe needs a named query: ?query=...`)
		return
	}
	if s.opts.QueryByName == nil {
		writeError(w, http.StatusBadRequest, "bad_request", "named queries are not enabled on this server")
		return
	}
	q, err := s.opts.QueryByName(qname)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}

	// A server Shutdown must end this stream too: the subscription's
	// context is the request's, cancelled early when the drain starts.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stopAfter := context.AfterFunc(s.drainCtx, cancel)
	defer stopAfter()

	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	// The drain goroutine writes MatchDelta lines while this handler writes
	// the first and last lines: mu serializes the encoder, ready holds
	// deliveries back until the subscribed line is out.
	var mu sync.Mutex
	ready := make(chan struct{})
	sub, err := s.router.Subscribe(ctx, name, q, func(md MatchDelta) error {
		<-ready
		mu.Lock()
		defer mu.Unlock()
		if err := enc.Encode(subscribeLine{Epoch: md.Epoch, Added: md.Added, Removed: md.Removed}); err != nil {
			return err // client went away: terminate the subscription
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
	if err != nil {
		if errors.Is(err, ErrUnknownGraph) {
			writeError(w, http.StatusNotFound, "unknown_graph", err.Error())
			return
		}
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	mu.Lock()
	_ = enc.Encode(subscribeLine{Subscribed: true, Graph: name, Query: qname, Epoch: sub.Epoch()})
	if flusher != nil {
		flusher.Flush()
	}
	mu.Unlock()
	close(ready)

	err = sub.Wait() // client disconnect or server drain ends this
	reason := subscribeCloseReason(err)
	if errors.Is(err, context.Canceled) && s.drainCtx.Err() != nil && r.Context().Err() == nil {
		reason = "draining" // the server ended the stream, not the client
	}
	mu.Lock()
	_ = enc.Encode(subscribeLine{Closed: true, Reason: reason})
	if flusher != nil {
		flusher.Flush()
	}
	mu.Unlock()
}

// graphInfo is one entry of GET /v1/graphs.
type graphInfo struct {
	Name  string     `json:"name"`
	Stats GraphStats `json:"stats"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	stats := s.router.Stats()
	names := s.router.Graphs()
	out := make([]graphInfo, 0, len(names))
	for _, name := range names {
		out = append(out, graphInfo{Name: name, Stats: stats[name]})
	}
	writeJSON(w, http.StatusOK, struct {
		Graphs []graphInfo `json:"graphs"`
	}{out})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	st, ok := s.router.Stats()[name]
	if !ok {
		writeError(w, http.StatusNotFound, "unknown_graph", fmt.Sprintf("fast: no graph %q", name))
		return
	}
	writeJSON(w, http.StatusOK, graphInfo{Name: name, Stats: st})
}

func (s *Server) handleSwap(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	g, err := graph.ReadBinary(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	if err := s.router.SwapGraph(name, g); err != nil {
		if errors.Is(err, ErrUnknownGraph) {
			writeError(w, http.StatusNotFound, "unknown_graph", err.Error())
			return
		}
		writeError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Graph    string `json:"graph"`
		Swapped  bool   `json:"swapped"`
		Vertices int    `json:"vertices"`
		Edges    int    `json:"edges"`
	}{name, true, g.NumVertices(), g.NumEdges()})
}

// handleMetrics renders Router.Stats in Prometheus text exposition format.
// Metric names are stable API: the serving dashboards and the CI smoke test
// key on them.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	stats := s.router.Stats()
	names := s.router.Graphs()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")

	counter := func(metric, help string, value func(GraphStats) int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", metric, help, metric)
		for _, name := range names {
			fmt.Fprintf(w, "%s{graph=%q} %d\n", metric, name, value(stats[name]))
		}
	}
	gauge := func(metric, help string, value func(GraphStats) float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", metric, help, metric)
		for _, name := range names {
			fmt.Fprintf(w, "%s{graph=%q} %g\n", metric, name, value(stats[name]))
		}
	}

	counter("fastmatch_calls_total", "Routed queries served (batch queries count individually).",
		func(s GraphStats) int64 { return s.Calls })
	counter("fastmatch_partials_total", "Served queries that returned a partial result.",
		func(s GraphStats) int64 { return s.Partials })
	counter("fastmatch_failures_total", "Served queries that failed outright.",
		func(s GraphStats) int64 { return s.Failures })
	counter("fastmatch_admitted_total", "Calls granted a worker-budget slot (a batch is one call).",
		func(s GraphStats) int64 { return s.Admitted })
	counter("fastmatch_shed_queue_full_total", "Calls shed on arrival: admission queue full.",
		func(s GraphStats) int64 { return s.ShedQueueFull })
	counter("fastmatch_shed_deadline_doomed_total", "Calls shed on arrival: deadline cannot survive the queue.",
		func(s GraphStats) int64 { return s.ShedDoomed })
	counter("fastmatch_queue_timeouts_total", "Calls whose deadline fired while queued for admission.",
		func(s GraphStats) int64 { return s.QueueTimeouts })
	counter("fastmatch_breaker_opens_total", "Circuit-breaker trips (including re-opens after a failed probe).",
		func(s GraphStats) int64 { return s.BreakerOpens })
	counter("fastmatch_shed_breaker_open_total", "Calls shed because the tenant's circuit breaker was open.",
		func(s GraphStats) int64 { return s.ShedBreakerOpen })
	counter("fastmatch_swaps_total", "SwapGraph replacements since AddGraph.",
		func(s GraphStats) int64 { return s.Swaps })
	counter("fastmatch_deltas_total", "ApplyDelta batches committed since AddGraph/SwapGraph.",
		func(s GraphStats) int64 { return s.Deltas })
	counter("fastmatch_notifications_total", "MatchDeltas delivered to standing queries.",
		func(s GraphStats) int64 { return s.Notifications })
	gauge("fastmatch_subscriptions", "Standing queries currently registered.",
		func(s GraphStats) float64 { return float64(s.Subscriptions) })
	gauge("fastmatch_epoch", "Current graph epoch (0 = as added/swapped).",
		func(s GraphStats) float64 { return float64(s.Epoch) })
	gauge("fastmatch_queue_depth", "Calls currently waiting for admission.",
		func(s GraphStats) float64 { return float64(s.QueueDepth) })
	gauge("fastmatch_budget_weight", "Tenant's weighted share of the worker budget.",
		func(s GraphStats) float64 { return float64(s.Weight) })
	gauge("fastmatch_breaker_state", "Circuit-breaker state (0 closed, 0.5 half-open, 1 open).",
		func(s GraphStats) float64 {
			switch s.BreakerState {
			case breakerOpen:
				return 1
			case breakerHalfOpen:
				return 0.5
			}
			return 0
		})

	fmt.Fprintf(w, "# HELP fastmatch_latency_seconds Service latency of admitted calls (log2-bucket upper bounds).\n# TYPE fastmatch_latency_seconds summary\n")
	for _, name := range names {
		st := stats[name]
		fmt.Fprintf(w, "fastmatch_latency_seconds{graph=%q,quantile=\"0.5\"} %g\n", name, st.P50Latency.Seconds())
		fmt.Fprintf(w, "fastmatch_latency_seconds{graph=%q,quantile=\"0.99\"} %g\n", name, st.P99Latency.Seconds())
		fmt.Fprintf(w, "fastmatch_latency_seconds_count{graph=%q} %d\n", name, st.Admitted)
	}
	fmt.Fprintf(w, "# HELP fastmatch_worker_budget Shared worker budget capacity.\n# TYPE fastmatch_worker_budget gauge\nfastmatch_worker_budget %d\n", s.router.Workers())
	fmt.Fprintf(w, "# HELP fastmatch_panics_total Handler panics recovered by the serving middleware.\n# TYPE fastmatch_panics_total counter\nfastmatch_panics_total %d\n", s.panics.Load())
}
