package fast

import (
	"errors"
	"fmt"

	"fastmatch/graph"
)

// ErrGraphSwapped reports that a graph mutation (ApplyDelta) lost the race
// against a concurrent SwapGraph: the delta was computed over the pre-swap
// snapshot, so committing it would resurrect the replaced graph's lineage.
// The delta is dropped — re-apply it against the swapped-in graph if it
// still makes sense there. Errors returned by the Router wrap it, so
// errors.Is(err, ErrGraphSwapped) identifies the condition.
var ErrGraphSwapped = errors.New("graph swapped during delta")

// DeltaResult summarises one committed ApplyDelta batch.
type DeltaResult struct {
	// Epoch is the new snapshot's epoch (pre-delta epoch + 1).
	Epoch uint64
	// Vertices is the live (non-tombstoned) vertex count and Edges the edge
	// count after the batch.
	Vertices int
	Edges    int
	// Touched is the number of data vertices whose adjacency the batch
	// changed — the dirty region incremental notification re-expanded.
	Touched int
	// PlanSeeded reports whether the new epoch's engine was seeded with the
	// previous epoch's planning decisions. True when the batch kept the
	// label set (so cached roots/trees/orders stay sound and only CSTs are
	// rebuilt, lazily); false when the label set changed — then the plan
	// cache is invalidated outright — or when no plans were cached yet.
	PlanSeeded bool
	// Notified is the number of standing queries that received a MatchDelta
	// for this batch.
	Notified int
}

// applyDeltaCommitHook, when non-nil, runs between delta computation and
// commit, with the tenant's mutation lock held. It is a test seam: the
// swap-interleave regression test injects a SwapGraph here to prove the
// commit-time snapshot check drops the stale delta.
var applyDeltaCommitHook func()

// ApplyDelta applies one mutation batch to the named graph and installs the
// resulting snapshot as the tenant's new serving state. The MVCC contract:
//
//   - In-flight matches keep the epoch they resolved at admission — the old
//     snapshot and its engine serve them to completion, unchanged.
//   - Calls resolving after ApplyDelta returns see the new epoch.
//   - The plan cache carries over as seeds when the batch preserves the
//     label set (only CSTs rebuild, lazily, reusing cached planning
//     decisions); a label-set change invalidates it outright.
//   - Standing queries (Subscribe) receive this batch's MatchDelta before
//     ApplyDelta returns — delivery into each subscription's buffer is part
//     of the commit, so subscribers observe every epoch exactly once, in
//     order.
//
// Batches for one graph serialize with each other and with Subscribe; a
// concurrent SwapGraph wins over a delta computed against the pre-swap
// snapshot (the commit fails with ErrGraphSwapped and the delta is
// dropped). An invalid batch fails with the graph package's validation
// error and no new epoch.
func (r *Router) ApplyDelta(name string, d graph.Delta) (*DeltaResult, error) {
	r.mu.RLock()
	ent, ok := r.graphs[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("fast: Router.ApplyDelta %q: %w", name, ErrUnknownGraph)
	}
	ent.mutMu.Lock()
	defer ent.mutMu.Unlock()

	r.mu.RLock()
	st := ent.state
	registered := r.graphs[name] == ent
	r.mu.RUnlock()
	if !registered {
		return nil, fmt.Errorf("fast: Router.ApplyDelta %q: %w", name, ErrUnknownGraph)
	}

	g2, touched, err := st.g.ApplyDelta(d)
	if err != nil {
		return nil, fmt.Errorf("fast: Router.ApplyDelta %q: %w", name, err)
	}
	newState := &graphState{g: g2}
	seeded := false
	if eng := st.eng.Load(); eng != nil && sameLabelSet(st.g, g2) {
		if seeds := eng.planSeeds(); len(seeds) > 0 {
			newState.carry = seeds
			seeded = true
		}
	}

	if applyDeltaCommitHook != nil {
		applyDeltaCommitHook()
	}

	// Commit: install the new epoch only if the serving state is still the
	// snapshot the delta was computed from. A SwapGraph (or remove) that
	// landed since invalidates the whole lineage — committing over it would
	// serve a graph derived from the one the operator just replaced.
	r.mu.Lock()
	if r.graphs[name] != ent || ent.state != st {
		r.mu.Unlock()
		return nil, fmt.Errorf("fast: Router.ApplyDelta %q: %w", name, ErrGraphSwapped)
	}
	ent.state = newState
	r.mu.Unlock()
	ent.counters.deltas.Add(1)

	// Notify standing queries, still under mutMu: the next batch cannot
	// overtake this one's notifications, so every subscriber sees epochs
	// strictly in order. Delivery blocks on a full subscription buffer
	// (backpressure onto the mutator) unless the subscription has
	// terminated.
	ent.subMu.Lock()
	subs := make([]*Subscription, 0, len(ent.subs))
	for _, s := range ent.subs {
		subs = append(subs, s)
	}
	ent.subMu.Unlock()
	notified := 0
	for _, s := range subs {
		if s.notify(g2, touched, r.workers) {
			notified++
		}
	}
	ent.counters.notifications.Add(int64(notified))

	return &DeltaResult{
		Epoch:      g2.Epoch(),
		Vertices:   g2.LiveVertices(),
		Edges:      g2.NumEdges(),
		Touched:    len(touched),
		PlanSeeded: seeded,
		Notified:   notified,
	}, nil
}
