// Command fastload replays an open-loop, multi-client workload against a
// fastserve instance and reports client-observed latency and shed rates.
// Open-loop means arrivals follow the configured rate regardless of how
// fast the server answers — the arrival process does not slow down to hide
// queueing, so saturation shows up as shed responses and latency growth
// instead of a silently throttled client.
//
// Usage:
//
//	fastload -url http://localhost:8080 -graph social -queries q1,q2 -rps 50 -duration 10s
//	fastload -graph hot -rps 200 -timeout-ms 100 -json load.json
//	fastload -graph social -duration 5s -merge BENCH_pr7.json
//
// -json writes the serving record alone; -merge folds it into an existing
// fastbench BENCH_*.json document under its "serving" list, adding the
// latency-histogram and shed-rate columns next to the matching trajectory.
// -faults additionally scrapes the server's fault-tolerance counters
// (recovered panics, circuit-breaker trips and sheds) from /metrics into a
// "faults" column after the run.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/bits"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

type shot struct {
	latency time.Duration
	status  int
	reason  string
	err     bool
}

type quantiles struct {
	P50NS int64 `json:"p50_ns"`
	P90NS int64 `json:"p90_ns"`
	P99NS int64 `json:"p99_ns"`
	MaxNS int64 `json:"max_ns"`
}

// histBucket is one log₂ latency bucket: count of responses with latency
// <= le_ns (per-bucket, not cumulative).
type histBucket struct {
	LeNS  int64 `json:"le_ns"`
	Count int64 `json:"count"`
}

// servingRecord is the JSON this run appends under "serving".
type servingRecord struct {
	URL        string  `json:"url"`
	Graph      string  `json:"graph"`
	Queries    string  `json:"queries"`
	RPS        float64 `json:"rps"`
	DurationNS int64   `json:"duration_ns"`
	TimeoutMS  int64   `json:"timeout_ms,omitempty"`
	Limit      int64   `json:"limit,omitempty"`

	Sent            int64        `json:"sent"`
	OK              int64        `json:"ok"`
	Partial         int64        `json:"partial"`
	ShedQueueFull   int64        `json:"shed_queue_full"`
	ShedDoomed      int64        `json:"shed_deadline_doomed"`
	QueueTimeouts   int64        `json:"queue_timeouts"`
	ShedBreakerOpen int64        `json:"shed_breaker_open,omitempty"`
	OtherErrors     int64        `json:"other_errors"`
	ShedRate        float64      `json:"shed_rate"`
	AchievedRPS     float64      `json:"achieved_rps"`
	Latency         quantiles    `json:"latency"`
	LatencyHist     []histBucket `json:"latency_hist"`

	// Faults is the server's fault-tolerance counters scraped from /metrics
	// after the run (-faults); nil when scraping is off.
	Faults *faultsRecord `json:"faults,omitempty"`
}

// faultsRecord is the -faults column: the server-side fault-tolerance
// counters after the run, from /metrics.
type faultsRecord struct {
	Panics       int64 `json:"panics"`
	BreakerOpens int64 `json:"breaker_opens"`
	BreakerShed  int64 `json:"breaker_shed"`
}

func main() {
	var (
		url       = flag.String("url", "http://localhost:8080", "fastserve base URL")
		graphName = flag.String("graph", "social", "graph to query")
		queries   = flag.String("queries", "q1,q2,q3", "comma-separated named queries, issued round-robin")
		rps       = flag.Float64("rps", 20, "open-loop arrival rate, requests per second")
		duration  = flag.Duration("duration", 5*time.Second, "how long to keep arriving")
		timeoutMS = flag.Int64("timeout-ms", 0, "per-request timeout_ms field; 0 = none")
		limit     = flag.Int64("limit", 0, "per-request embedding limit; 0 = unlimited")
		jsonOut   = flag.String("json", "", "write the serving record to this file")
		merge     = flag.String("merge", "", "fold the serving record into this existing BENCH_*.json")
		faults    = flag.Bool("faults", false, "scrape the server's fault-tolerance counters (/metrics) into the record after the run")
	)
	flag.Parse()
	if *rps <= 0 || *duration <= 0 {
		fmt.Fprintln(os.Stderr, "fastload: -rps and -duration must be positive")
		os.Exit(2)
	}

	names := strings.Split(*queries, ",")
	bodies := make([][]byte, len(names))
	for i, name := range names {
		req := map[string]any{"query": strings.TrimSpace(name)}
		if *timeoutMS > 0 {
			req["timeout_ms"] = *timeoutMS
		}
		if *limit > 0 {
			req["limit"] = *limit
		}
		bodies[i], _ = json.Marshal(req)
	}
	target := strings.TrimRight(*url, "/") + "/v1/graphs/" + *graphName + "/count"
	client := &http.Client{} // per-request deadlines come from timeout_ms server-side

	// Open loop: a ticker fires arrivals at the configured rate; every
	// arrival gets its own goroutine so a slow response never delays the
	// next arrival.
	interval := time.Duration(float64(time.Second) / *rps)
	if interval <= 0 {
		interval = time.Microsecond
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		shots []shot
	)
	start := time.Now()
	tick := time.NewTicker(interval)
	for i := 0; time.Since(start) < *duration; i++ {
		body := bodies[i%len(bodies)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := fire(client, target, body)
			mu.Lock()
			shots = append(shots, s)
			mu.Unlock()
		}()
		<-tick.C
	}
	tick.Stop()
	wg.Wait()
	elapsed := time.Since(start)

	rec := summarize(shots, elapsed)
	rec.URL, rec.Graph, rec.Queries = *url, *graphName, *queries
	rec.RPS, rec.DurationNS = *rps, elapsed.Nanoseconds()
	rec.TimeoutMS, rec.Limit = *timeoutMS, *limit
	if *faults {
		fr, err := scrapeFaults(client, strings.TrimRight(*url, "/")+"/metrics")
		if err != nil {
			fmt.Fprintln(os.Stderr, "fastload: scraping /metrics:", err)
			os.Exit(1)
		}
		rec.Faults = fr
	}

	report(os.Stdout, rec)
	if *jsonOut != "" {
		if err := writeJSONFile(*jsonOut, rec); err != nil {
			fmt.Fprintln(os.Stderr, "fastload:", err)
			os.Exit(1)
		}
	}
	if *merge != "" {
		if err := mergeInto(*merge, rec); err != nil {
			fmt.Fprintln(os.Stderr, "fastload:", err)
			os.Exit(1)
		}
		fmt.Printf("merged serving record into %s\n", *merge)
	}
	if rec.OtherErrors > 0 {
		os.Exit(1)
	}
}

// fire issues one request and classifies the outcome. Shed replies carry
// their machine-readable reason in the JSON envelope; transport errors and
// unexpected statuses count as other_errors.
func fire(client *http.Client, target string, body []byte) shot {
	start := time.Now()
	resp, err := client.Post(target, "application/json", bytes.NewReader(body))
	if err != nil {
		return shot{latency: time.Since(start), err: true}
	}
	defer resp.Body.Close()
	var payload struct {
		Partial bool   `json:"partial"`
		Reason  string `json:"reason"`
	}
	decodeErr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&payload)
	s := shot{latency: time.Since(start), status: resp.StatusCode, reason: payload.Reason}
	if decodeErr != nil || (resp.StatusCode != http.StatusOK && payload.Reason == "") {
		s.err = true
		return s
	}
	if resp.StatusCode == http.StatusOK && payload.Partial && payload.Reason != "limit" {
		s.reason = "partial"
	}
	return s
}

// scrapeFaults pulls the fault-tolerance counters from the server's
// Prometheus exposition: recovered handler panics, circuit-breaker trips
// and breaker sheds (the latter two summed across graphs).
func scrapeFaults(client *http.Client, metricsURL string) (*faultsRecord, error) {
	resp, err := client.Get(metricsURL)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: status %d", metricsURL, resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	var fr faultsRecord
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		var v int64
		if _, err := fmt.Sscanf(fields[1], "%d", &v); err != nil {
			continue
		}
		metric, _, _ := strings.Cut(fields[0], "{")
		switch metric {
		case "fastmatch_panics_total":
			fr.Panics += v
		case "fastmatch_breaker_opens_total":
			fr.BreakerOpens += v
		case "fastmatch_shed_breaker_open_total":
			fr.BreakerShed += v
		}
	}
	return &fr, nil
}

func summarize(shots []shot, elapsed time.Duration) servingRecord {
	rec := servingRecord{Sent: int64(len(shots))}
	latencies := make([]time.Duration, 0, len(shots))
	histCounts := map[int]int64{}
	for _, s := range shots {
		latencies = append(latencies, s.latency)
		histCounts[bits.Len64(uint64(max(s.latency.Microseconds(), 1)))]++
		switch {
		case s.err:
			rec.OtherErrors++
		case s.status == http.StatusOK:
			rec.OK++
			if s.reason == "partial" {
				rec.Partial++
			}
		case s.reason == "queue_full":
			rec.ShedQueueFull++
		case s.reason == "deadline_doomed":
			rec.ShedDoomed++
		case s.reason == "queue_timeout":
			rec.QueueTimeouts++
		case s.reason == "breaker_open":
			rec.ShedBreakerOpen++
		default:
			rec.OtherErrors++
		}
	}
	if rec.Sent > 0 {
		rec.ShedRate = float64(rec.ShedQueueFull+rec.ShedDoomed+rec.QueueTimeouts+rec.ShedBreakerOpen) / float64(rec.Sent)
		rec.AchievedRPS = float64(rec.Sent) / elapsed.Seconds()
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	q := func(p float64) int64 {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return latencies[i].Nanoseconds()
	}
	rec.Latency = quantiles{P50NS: q(0.50), P90NS: q(0.90), P99NS: q(0.99), MaxNS: q(1)}
	buckets := make([]int, 0, len(histCounts))
	for b := range histCounts {
		buckets = append(buckets, b)
	}
	sort.Ints(buckets)
	for _, b := range buckets {
		le := time.Duration(int64(1)<<uint(b)) * time.Microsecond
		rec.LatencyHist = append(rec.LatencyHist, histBucket{LeNS: le.Nanoseconds(), Count: histCounts[b]})
	}
	return rec
}

func report(w io.Writer, rec servingRecord) {
	fmt.Fprintf(w, "fastload %s graph=%s rps=%g for %v\n",
		rec.URL, rec.Graph, rec.RPS, time.Duration(rec.DurationNS).Round(time.Millisecond))
	fmt.Fprintf(w, "  sent %d  ok %d (partial %d)  shed %d (queue_full %d, doomed %d, queue_timeout %d, breaker %d)  errors %d\n",
		rec.Sent, rec.OK, rec.Partial,
		rec.ShedQueueFull+rec.ShedDoomed+rec.QueueTimeouts+rec.ShedBreakerOpen,
		rec.ShedQueueFull, rec.ShedDoomed, rec.QueueTimeouts, rec.ShedBreakerOpen, rec.OtherErrors)
	fmt.Fprintf(w, "  achieved %.1f req/s  shed rate %.1f%%  latency p50 %v  p90 %v  p99 %v  max %v\n",
		rec.AchievedRPS, rec.ShedRate*100,
		time.Duration(rec.Latency.P50NS).Round(time.Microsecond),
		time.Duration(rec.Latency.P90NS).Round(time.Microsecond),
		time.Duration(rec.Latency.P99NS).Round(time.Microsecond),
		time.Duration(rec.Latency.MaxNS).Round(time.Microsecond))
	if rec.Faults != nil {
		fmt.Fprintf(w, "  server faults: panics %d  breaker opens %d  breaker shed %d\n",
			rec.Faults.Panics, rec.Faults.BreakerOpens, rec.Faults.BreakerShed)
	}
}

func writeJSONFile(path string, v any) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// mergeInto appends rec to the "serving" list of an existing fastbench
// JSON document, preserving everything else byte-for-byte semantically
// (the document is re-marshalled, keys survive as generic JSON).
func mergeInto(path string, rec servingRecord) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	var recAny any
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(b, &recAny); err != nil {
		return err
	}
	serving, _ := doc["serving"].([]any)
	doc["serving"] = append(serving, recAny)
	return writeJSONFile(path, doc)
}
