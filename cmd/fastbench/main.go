// Command fastbench regenerates the paper's tables and figures, and runs
// the machine-readable matching benchmark that feeds BENCH_*.json
// trajectory tracking.
//
// Usage:
//
//	fastbench -list
//	fastbench -exp fig14
//	fastbench -exp all -base 200 -timeout 10s -out results.txt
//	fastbench -bench -workers 1,2,4 -variants sep,share -json bench.json
//	fastbench -bench -workers 4 -pworkers 1 -json serial-producer.json
//	fastbench -bench -workers 1,2 -limits 0,1000 -mtimeout 30s -json bench.json
//	fastbench -bench -workers 1 -reps 1 -compare BENCH_pr3.json
//	fastbench -bench -workers 1 -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Each experiment prints one or more aligned text tables; EXPERIMENTS.md
// maps them back to the paper's figures and records the expected shapes.
// -bench instead sweeps kernel variants × worker-pool sizes over the LDBC
// queries through fast.Engine and emits one JSON document with per-run
// counts and timings (wall_ns is measured host wall-clock; model_ns the
// pipeline's modelled total).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"fastmatch/internal/exp"
)

func main() {
	var (
		name    = flag.String("exp", "", "experiment to run (see -list), or 'all'")
		list    = flag.Bool("list", false, "list available experiments")
		base    = flag.Int("base", 0, "BasePersons scale knob (default 200)")
		seed    = flag.Int64("seed", 0, "generator seed (default 42)")
		timeout = flag.Duration("timeout", 0, "per-baseline time limit (default 10s)")
		budget  = flag.Int64("gpumem", 0, "GPU memory budget in MB for GSI/GpSM (default 64)")
		queries = flag.String("queries", "", "comma-separated query filter (e.g. q2,q5)")
		out     = flag.String("out", "", "write results to file instead of stdout")
		format  = flag.String("format", "text", "output format: text or csv")

		bench    = flag.Bool("bench", false, "run the JSON matching benchmark instead of an experiment")
		reps     = flag.Int("reps", 0, "measured repetitions per bench cell after warm-up (default 5)")
		workers  = flag.String("workers", "1", "comma-separated worker-pool sizes to sweep (bench mode)")
		pworkers = flag.Int("pworkers", 0, "partition-producer pool size; 0 matches each cell's -workers value (bench mode)")
		variants = flag.String("variants", "share", "comma-separated kernel variants to sweep, or 'all' (bench mode)")
		limits   = flag.String("limits", "0", "comma-separated per-call embedding limits to sweep; 0 = unlimited (bench mode)")
		mtimeout = flag.Duration("mtimeout", 0, "per-call WithTimeout budget for every bench cell; 0 = none (bench mode)")
		graphs   = flag.Int("graphs", 1, "serve this many generated graphs (seeds seed,seed+1,…) concurrently through one Router per cell, measuring cross-tenant contention (bench mode)")
		sf       = flag.Float64("sf", 1, "LDBC scale factor (bench mode)")
		jsonOut  = flag.String("json", "", "write bench JSON to file instead of stdout (bench mode)")
		compare  = flag.String("compare", "", "previous BENCH_*.json: fail on count drift in shared sweep cells (bench mode)")

		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile (after the run) to this file")
	)
	flag.Parse()

	// Profiling wraps both modes so perf PRs can attach pprof evidence from
	// the exact workload they claim to speed up. stop() flushes the CPU
	// profile and writes the heap profile; exit routes every error path
	// through it because os.Exit skips deferred calls.
	stop, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fastbench:", err)
		os.Exit(1)
	}
	defer stop()
	exit := func(code int) {
		stop()
		os.Exit(code)
	}

	if *bench {
		cfg := benchConfig{
			ScaleFactor: *sf,
			BasePersons: *base,
			Seed:        *seed,
			Reps:        *reps,
			Workers:     *workers,
			PWorkers:    *pworkers,
			Variants:    *variants,
			Queries:     *queries,
			Limits:      *limits,
			MTimeout:    *mtimeout,
			Graphs:      *graphs,
			Out:         *jsonOut,
			Compare:     *compare,
		}
		if err := runBench(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "fastbench:", err)
			exit(1)
		}
		return
	}

	if *list {
		for _, n := range exp.Names() {
			fmt.Println(n)
		}
		return
	}
	if *name == "" {
		fmt.Fprintln(os.Stderr, "fastbench: -exp required (or -list); e.g. -exp fig14")
		exit(2)
	}

	cfg := exp.Config{
		BasePersons: *base,
		Seed:        *seed,
		Timeout:     *timeout,
	}
	if *budget > 0 {
		cfg.GPUMemBudget = *budget << 20
	}
	if *queries != "" {
		cfg.Queries = strings.Split(*queries, ",")
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fastbench:", err)
			exit(1)
		}
		defer f.Close()
		w = f
	}

	names := []string{*name}
	if *name == "all" {
		names = exp.Names()
	}
	for _, n := range names {
		start := time.Now()
		tables, err := exp.Run(n, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fastbench: %s: %v\n", n, err)
			exit(1)
		}
		for _, t := range tables {
			if *format == "csv" {
				fmt.Fprintf(w, "# %s\n", t.ID)
				if err := t.RenderCSV(w); err != nil {
					fmt.Fprintln(os.Stderr, "fastbench:", err)
					exit(1)
				}
				fmt.Fprintln(w)
			} else {
				t.Render(w)
			}
		}
		if *format != "csv" {
			fmt.Fprintf(w, "[%s completed in %v]\n\n", n, time.Since(start).Round(time.Millisecond))
		}
	}
}

// startProfiles starts a CPU profile and/or arms a heap profile write. The
// returned stop is idempotent: it flushes the CPU profile and captures the
// heap profile (after a GC, so the numbers reflect retained memory, not
// garbage awaiting collection).
func startProfiles(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		cpuFile = f
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "fastbench: -cpuprofile:", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fastbench: -memprofile:", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "fastbench: -memprofile:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "fastbench: -memprofile:", err)
			}
		}
	}, nil
}
