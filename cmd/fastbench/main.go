// Command fastbench regenerates the paper's tables and figures, and runs
// the machine-readable matching benchmark that feeds BENCH_*.json
// trajectory tracking.
//
// Usage:
//
//	fastbench -list
//	fastbench -exp fig14
//	fastbench -exp all -base 200 -timeout 10s -out results.txt
//	fastbench -bench -workers 1,2,4 -variants sep,share -json bench.json
//	fastbench -bench -workers 4 -pworkers 1 -json serial-producer.json
//	fastbench -bench -workers 1,2 -limits 0,1000 -mtimeout 30s -json bench.json
//	fastbench -bench -workers 1 -reps 1 -compare BENCH_pr3.json
//
// Each experiment prints one or more aligned text tables; EXPERIMENTS.md
// maps them back to the paper's figures and records the expected shapes.
// -bench instead sweeps kernel variants × worker-pool sizes over the LDBC
// queries through fast.Engine and emits one JSON document with per-run
// counts and timings (wall_ns is measured host wall-clock; model_ns the
// pipeline's modelled total).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"fastmatch/internal/exp"
)

func main() {
	var (
		name    = flag.String("exp", "", "experiment to run (see -list), or 'all'")
		list    = flag.Bool("list", false, "list available experiments")
		base    = flag.Int("base", 0, "BasePersons scale knob (default 200)")
		seed    = flag.Int64("seed", 0, "generator seed (default 42)")
		timeout = flag.Duration("timeout", 0, "per-baseline time limit (default 10s)")
		budget  = flag.Int64("gpumem", 0, "GPU memory budget in MB for GSI/GpSM (default 64)")
		queries = flag.String("queries", "", "comma-separated query filter (e.g. q2,q5)")
		out     = flag.String("out", "", "write results to file instead of stdout")
		format  = flag.String("format", "text", "output format: text or csv")

		bench    = flag.Bool("bench", false, "run the JSON matching benchmark instead of an experiment")
		reps     = flag.Int("reps", 0, "measured repetitions per bench cell after warm-up (default 5)")
		workers  = flag.String("workers", "1", "comma-separated worker-pool sizes to sweep (bench mode)")
		pworkers = flag.Int("pworkers", 0, "partition-producer pool size; 0 matches each cell's -workers value (bench mode)")
		variants = flag.String("variants", "share", "comma-separated kernel variants to sweep, or 'all' (bench mode)")
		limits   = flag.String("limits", "0", "comma-separated per-call embedding limits to sweep; 0 = unlimited (bench mode)")
		mtimeout = flag.Duration("mtimeout", 0, "per-call WithTimeout budget for every bench cell; 0 = none (bench mode)")
		graphs   = flag.Int("graphs", 1, "serve this many generated graphs (seeds seed,seed+1,…) concurrently through one Router per cell, measuring cross-tenant contention (bench mode)")
		sf       = flag.Float64("sf", 1, "LDBC scale factor (bench mode)")
		jsonOut  = flag.String("json", "", "write bench JSON to file instead of stdout (bench mode)")
		compare  = flag.String("compare", "", "previous BENCH_*.json: fail on count drift in shared sweep cells (bench mode)")
	)
	flag.Parse()

	if *bench {
		cfg := benchConfig{
			ScaleFactor: *sf,
			BasePersons: *base,
			Seed:        *seed,
			Reps:        *reps,
			Workers:     *workers,
			PWorkers:    *pworkers,
			Variants:    *variants,
			Queries:     *queries,
			Limits:      *limits,
			MTimeout:    *mtimeout,
			Graphs:      *graphs,
			Out:         *jsonOut,
			Compare:     *compare,
		}
		if err := runBench(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "fastbench:", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, n := range exp.Names() {
			fmt.Println(n)
		}
		return
	}
	if *name == "" {
		fmt.Fprintln(os.Stderr, "fastbench: -exp required (or -list); e.g. -exp fig14")
		os.Exit(2)
	}

	cfg := exp.Config{
		BasePersons: *base,
		Seed:        *seed,
		Timeout:     *timeout,
	}
	if *budget > 0 {
		cfg.GPUMemBudget = *budget << 20
	}
	if *queries != "" {
		cfg.Queries = strings.Split(*queries, ",")
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fastbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	names := []string{*name}
	if *name == "all" {
		names = exp.Names()
	}
	for _, n := range names {
		start := time.Now()
		tables, err := exp.Run(n, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fastbench: %s: %v\n", n, err)
			os.Exit(1)
		}
		for _, t := range tables {
			if *format == "csv" {
				fmt.Fprintf(w, "# %s\n", t.ID)
				if err := t.RenderCSV(w); err != nil {
					fmt.Fprintln(os.Stderr, "fastbench:", err)
					os.Exit(1)
				}
				fmt.Fprintln(w)
			} else {
				t.Render(w)
			}
		}
		if *format != "csv" {
			fmt.Fprintf(w, "[%s completed in %v]\n\n", n, time.Since(start).Round(time.Millisecond))
		}
	}
}
