// Command fastbench regenerates the paper's tables and figures.
//
// Usage:
//
//	fastbench -list
//	fastbench -exp fig14
//	fastbench -exp all -base 200 -timeout 10s -out results.txt
//
// Each experiment prints one or more aligned text tables; EXPERIMENTS.md
// maps them back to the paper's figures and records the expected shapes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"fastmatch/internal/exp"
)

func main() {
	var (
		name    = flag.String("exp", "", "experiment to run (see -list), or 'all'")
		list    = flag.Bool("list", false, "list available experiments")
		base    = flag.Int("base", 0, "BasePersons scale knob (default 200)")
		seed    = flag.Int64("seed", 0, "generator seed (default 42)")
		timeout = flag.Duration("timeout", 0, "per-baseline time limit (default 10s)")
		budget  = flag.Int64("gpumem", 0, "GPU memory budget in MB for GSI/GpSM (default 64)")
		queries = flag.String("queries", "", "comma-separated query filter (e.g. q2,q5)")
		out     = flag.String("out", "", "write results to file instead of stdout")
		format  = flag.String("format", "text", "output format: text or csv")
	)
	flag.Parse()

	if *list {
		for _, n := range exp.Names() {
			fmt.Println(n)
		}
		return
	}
	if *name == "" {
		fmt.Fprintln(os.Stderr, "fastbench: -exp required (or -list); e.g. -exp fig14")
		os.Exit(2)
	}

	cfg := exp.Config{
		BasePersons: *base,
		Seed:        *seed,
		Timeout:     *timeout,
	}
	if *budget > 0 {
		cfg.GPUMemBudget = *budget << 20
	}
	if *queries != "" {
		cfg.Queries = strings.Split(*queries, ",")
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fastbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	names := []string{*name}
	if *name == "all" {
		names = exp.Names()
	}
	for _, n := range names {
		start := time.Now()
		tables, err := exp.Run(n, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fastbench: %s: %v\n", n, err)
			os.Exit(1)
		}
		for _, t := range tables {
			if *format == "csv" {
				fmt.Fprintf(w, "# %s\n", t.ID)
				if err := t.RenderCSV(w); err != nil {
					fmt.Fprintln(os.Stderr, "fastbench:", err)
					os.Exit(1)
				}
				fmt.Fprintln(w)
			} else {
				t.Render(w)
			}
		}
		if *format != "csv" {
			fmt.Fprintf(w, "[%s completed in %v]\n\n", n, time.Since(start).Round(time.Millisecond))
		}
	}
}
