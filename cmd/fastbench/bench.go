package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	fast "fastmatch"
	"fastmatch/ldbc"
)

// benchConfig carries the -bench flags.
type benchConfig struct {
	ScaleFactor float64
	BasePersons int
	Seed        int64
	Reps        int    // measured repetitions per cell after the warm-up call
	Workers     string // comma-separated pool sizes
	PWorkers    int    // partition-producer pool size (0 = match the cell's workers)
	Variants    string // comma-separated kernel variants, or "all"
	Queries     string // comma-separated query filter
	Out         string // JSON output path ("" = stdout)
}

// benchRun is one (query, variant, workers) cell of the sweep. plan_ns is
// the cold first call (plan construction included); wall_ns is the minimum
// measured host wall-clock over the warm calls that follow — the
// serving-path number the -workers sweep is expected to improve — while
// model_ns is the pipeline's modelled end-to-end total, which on the
// bench's single-card configuration is workers-invariant.
type benchRun struct {
	Query         string  `json:"query"`
	Variant       string  `json:"variant"`
	Workers       int     `json:"workers"`
	PartWorkers   int     `json:"partition_workers"`
	Count         int64   `json:"count"`
	PlanNS        int64   `json:"plan_ns"`
	WallNS        int64   `json:"wall_ns"`
	ModelNS       int64   `json:"model_ns"`
	BuildNS       int64   `json:"build_ns"`
	PartitionNS   int64   `json:"partition_ns"`
	CPUShareNS    int64   `json:"cpu_share_ns"`
	Partitions    int     `json:"partitions"`
	CPUPartitions int     `json:"cpu_partitions"`
	KernelCycles  int64   `json:"kernel_cycles"`
	CSTBytes      int64   `json:"cst_bytes"`
	SpeedupVsW1   float64 `json:"speedup_vs_w1,omitempty"`
}

// benchOutput is the JSON document -bench emits, shaped for BENCH_*.json
// trajectory tracking: one stable header plus a flat runs array.
type benchOutput struct {
	Bench       string     `json:"bench"`
	ScaleFactor float64    `json:"scale_factor"`
	BasePersons int        `json:"base_persons"`
	Seed        int64      `json:"seed"`
	Timestamp   string     `json:"timestamp"`
	Runs        []benchRun `json:"runs"`
}

func runBench(cfg benchConfig) error {
	if cfg.BasePersons <= 0 {
		// Bench default is larger than the experiments' 200: the pool only
		// has something to chew on when kernel work dominates per-call
		// overheads.
		cfg.BasePersons = 400
	}
	if cfg.Reps <= 0 {
		cfg.Reps = 5
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	workerList, err := parseWorkers(cfg.Workers)
	if err != nil {
		return err
	}
	variantList, err := parseVariants(cfg.Variants)
	if err != nil {
		return err
	}
	queryNames := []string{"q1", "q2", "q3", "q4", "q5"}
	if cfg.Queries != "" {
		queryNames = strings.Split(cfg.Queries, ",")
	}

	g := ldbc.Generate(ldbc.Config{
		ScaleFactor: cfg.ScaleFactor,
		BasePersons: cfg.BasePersons,
		Seed:        cfg.Seed,
	})

	out := benchOutput{
		Bench:       "fastmatch",
		ScaleFactor: cfg.ScaleFactor,
		BasePersons: cfg.BasePersons,
		Seed:        cfg.Seed,
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
	}

	for _, v := range variantList {
		for _, w := range workerList {
			// One engine per pool size: the sweep measures the pool, and a
			// fresh plan cache per (variant, workers) keeps the first query
			// of every cell paying the same planning cost.
			dev := fast.DefaultDevice()
			// Shrink the modelled card the way internal/exp does, so CSTs
			// partition at bench scale and the pool has work to fan out.
			dev.BRAMBytes = 32 << 10
			dev.BatchSize = 32
			// PartitionWorkers: the engine defaults 0 to the pool size, so
			// the sweep exercises the concurrent producer at every cell
			// unless -pworkers pins it.
			pw := cfg.PWorkers
			if pw == 0 {
				pw = w
			}
			eng, err := fast.NewEngine(g, &fast.Options{
				Variant: v, Device: dev, Workers: w, PartitionWorkers: pw,
			})
			if err != nil {
				return err
			}
			for _, name := range queryNames {
				q, err := ldbc.QueryByName(strings.TrimSpace(name))
				if err != nil {
					return err
				}
				// Cold call: plans, builds the CST, fills the cache.
				coldStart := time.Now()
				if _, err := eng.Match(q); err != nil {
					return err
				}
				cold := time.Since(coldStart)
				// Warm calls: the serving path the engine exists for. The
				// minimum over reps is the least noise-sensitive estimator
				// for short wall-clock benchmarks.
				var res *fast.Result
				wall := time.Duration(1<<62 - 1)
				for r := 0; r < cfg.Reps; r++ {
					start := time.Now()
					res, err = eng.Match(q)
					if err != nil {
						return err
					}
					if el := time.Since(start); el < wall {
						wall = el
					}
				}
				run := benchRun{
					Query:         q.Name(),
					Variant:       string(v),
					Workers:       w,
					PartWorkers:   pw,
					Count:         res.Count,
					PlanNS:        cold.Nanoseconds(),
					WallNS:        wall.Nanoseconds(),
					ModelNS:       res.Total.Nanoseconds(),
					BuildNS:       res.BuildTime.Nanoseconds(),
					PartitionNS:   res.PartitionTime.Nanoseconds(),
					CPUShareNS:    res.CPUShareTime.Nanoseconds(),
					Partitions:    res.Partitions,
					CPUPartitions: res.CPUPartitions,
					KernelCycles:  res.KernelCycles,
					CSTBytes:      res.CSTBytes,
				}
				out.Runs = append(out.Runs, run)
			}
		}
	}

	// Speedups, computed after the sweep so -workers ordering is
	// irrelevant: emitted for every workers>1 run whose (query, variant)
	// has a workers=1 cell anywhere in the sweep, and only for those.
	baseWall := make(map[string]int64)
	for _, r := range out.Runs {
		if r.Workers == 1 {
			baseWall[r.Query+"/"+r.Variant] = r.WallNS
		}
	}
	for i := range out.Runs {
		r := &out.Runs[i]
		if base := baseWall[r.Query+"/"+r.Variant]; r.Workers != 1 && base > 0 && r.WallNS > 0 {
			r.SpeedupVsW1 = float64(base) / float64(r.WallNS)
		}
	}

	enc := json.NewEncoder(os.Stdout)
	if cfg.Out != "" {
		f, err := os.Create(cfg.Out)
		if err != nil {
			return err
		}
		defer f.Close()
		enc = json.NewEncoder(f)
	}
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -workers entry %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseVariants(s string) ([]fast.Variant, error) {
	if s == "all" {
		return fast.AllVariants(), nil
	}
	known := make(map[fast.Variant]bool)
	for _, v := range fast.AllVariants() {
		known[v] = true
	}
	var out []fast.Variant
	for _, part := range strings.Split(s, ",") {
		v := fast.Variant(strings.TrimSpace(part))
		if !known[v] {
			return nil, fmt.Errorf("unknown variant %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
