package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	fast "fastmatch"
	"fastmatch/graph"
	"fastmatch/ldbc"
)

// benchConfig carries the -bench flags.
type benchConfig struct {
	ScaleFactor float64
	BasePersons int
	Seed        int64
	Reps        int    // measured repetitions per cell after the warm-up call
	Workers     string // comma-separated pool sizes
	PWorkers    int    // partition-producer pool size (0 = match the cell's workers)
	Variants    string // comma-separated kernel variants, or "all"
	Queries     string // comma-separated query filter
	Limits      string // comma-separated per-call embedding limits (0 = unlimited)
	MTimeout    time.Duration
	Graphs      int    // > 1: serve this many graphs through one Router, measuring contention
	Out         string // JSON output path ("" = stdout)
	Compare     string // previous BENCH_*.json to check counts against
}

// benchRun is one (query, variant, workers) cell of the sweep. plan_ns is
// the cold first call (plan construction included); wall_ns is the minimum
// measured host wall-clock over the warm calls that follow — the
// serving-path number the -workers sweep is expected to improve — while
// model_ns is the pipeline's modelled end-to-end total, which on the
// bench's single-card configuration is workers-invariant.
type benchRun struct {
	Query   string `json:"query"`
	Variant string `json:"variant"`
	// Graph names the data graph in a -graphs multi-graph sweep (g0, g1,
	// …, generated from consecutive seeds and served concurrently through
	// one Router under one shared budget — the wall then includes
	// cross-graph contention). Empty in single-graph sweeps, keeping their
	// cell keys byte-compatible with older BENCH_*.json files.
	Graph       string `json:"graph,omitempty"`
	Workers     int    `json:"workers"`
	PartWorkers int    `json:"partition_workers"`
	// Limit and TimeoutNS are the cell's per-call bounds (the -limits /
	// -mtimeout sweep through MatchContext); 0 means unbounded. With a
	// limit the count is deterministic (min(limit, total)); Partial marks
	// cells a bound actually cut short.
	Limit         int64   `json:"limit"`
	TimeoutNS     int64   `json:"timeout_ns"`
	Partial       bool    `json:"partial,omitempty"`
	Count         int64   `json:"count"`
	PlanNS        int64   `json:"plan_ns"`
	WallNS        int64   `json:"wall_ns"`
	ModelNS       int64   `json:"model_ns"`
	BuildNS       int64   `json:"build_ns"`
	PartitionNS   int64   `json:"partition_ns"`
	CPUShareNS    int64   `json:"cpu_share_ns"`
	Partitions    int     `json:"partitions"`
	CPUPartitions int     `json:"cpu_partitions"`
	KernelCycles  int64   `json:"kernel_cycles"`
	CSTBytes      int64   `json:"cst_bytes"`
	SpeedupVsW1   float64 `json:"speedup_vs_w1,omitempty"`
}

// benchOutput is the JSON document -bench emits, shaped for BENCH_*.json
// trajectory tracking: one stable header plus a flat runs array.
type benchOutput struct {
	Bench       string     `json:"bench"`
	ScaleFactor float64    `json:"scale_factor"`
	BasePersons int        `json:"base_persons"`
	Seed        int64      `json:"seed"`
	Timestamp   string     `json:"timestamp"`
	Runs        []benchRun `json:"runs"`
}

func runBench(cfg benchConfig) error {
	if cfg.BasePersons <= 0 {
		// Bench default is larger than the experiments' 200: the pool only
		// has something to chew on when kernel work dominates per-call
		// overheads.
		cfg.BasePersons = 400
	}
	if cfg.Reps <= 0 {
		cfg.Reps = 5
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	workerList, err := parseWorkers(cfg.Workers)
	if err != nil {
		return err
	}
	variantList, err := parseVariants(cfg.Variants)
	if err != nil {
		return err
	}
	limitList, err := parseLimits(cfg.Limits)
	if err != nil {
		return err
	}
	queryNames := []string{"q1", "q2", "q3", "q4", "q5"}
	if cfg.Queries != "" {
		queryNames = strings.Split(cfg.Queries, ",")
	}

	g := ldbc.Generate(ldbc.Config{
		ScaleFactor: cfg.ScaleFactor,
		BasePersons: cfg.BasePersons,
		Seed:        cfg.Seed,
	})
	// Multi-graph mode: N graphs from consecutive seeds (g0 = the single
	// sweep's graph), served concurrently through one Router per cell.
	var targets []benchGraph
	if cfg.Graphs > 1 {
		targets = append(targets, benchGraph{name: "g0", g: g})
		for i := 1; i < cfg.Graphs; i++ {
			targets = append(targets, benchGraph{
				name: fmt.Sprintf("g%d", i),
				g: ldbc.Generate(ldbc.Config{
					ScaleFactor: cfg.ScaleFactor,
					BasePersons: cfg.BasePersons,
					Seed:        cfg.Seed + int64(i),
				}),
			})
		}
	}

	out := benchOutput{
		Bench:       "fastmatch",
		ScaleFactor: cfg.ScaleFactor,
		BasePersons: cfg.BasePersons,
		Seed:        cfg.Seed,
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
	}

	for _, v := range variantList {
		for _, w := range workerList {
			// One engine per pool size: the sweep measures the pool, and a
			// fresh plan cache per (variant, workers) keeps the first query
			// of every cell paying the same planning cost.
			dev := fast.DefaultDevice()
			// Shrink the modelled card the way internal/exp does, so CSTs
			// partition at bench scale and the pool has work to fan out.
			dev.BRAMBytes = 32 << 10
			dev.BatchSize = 32
			// PartitionWorkers: the engine defaults 0 to the pool size, so
			// the sweep exercises the concurrent producer at every cell
			// unless -pworkers pins it.
			pw := cfg.PWorkers
			if pw == 0 {
				pw = w
			}
			if len(targets) > 0 {
				runs, err := benchMultiGraphCell(cfg, v, w, pw, dev, targets, queryNames, limitList)
				if err != nil {
					return err
				}
				out.Runs = append(out.Runs, runs...)
				continue
			}
			eng, err := fast.NewEngine(g, &fast.Options{
				Variant: v, Device: dev, Workers: w, PartitionWorkers: pw,
			})
			if err != nil {
				return err
			}
			ctx := context.Background()
			for _, name := range queryNames {
				q, err := ldbc.QueryByName(strings.TrimSpace(name))
				if err != nil {
					return err
				}
				// A deadline cutting a cell short is a measurement, not a
				// harness failure: keep the partial result and mark the cell.
				match := func(callOpts []fast.MatchOption) (*fast.Result, error) {
					res, err := eng.MatchContext(ctx, q, callOpts...)
					if err != nil && res != nil && res.Partial {
						return res, nil
					}
					return res, err
				}
				var timeoutOpt []fast.MatchOption
				if cfg.MTimeout > 0 {
					timeoutOpt = append(timeoutOpt, fast.WithTimeout(cfg.MTimeout))
				}
				// Cold call: plans, builds the CST, fills the cache — once
				// per (engine, query), before the limit sweep, so plan_ns
				// really is planning cost in every cell that shares it.
				coldStart := time.Now()
				if _, err := match(timeoutOpt); err != nil {
					return err
				}
				cold := time.Since(coldStart)
				// The limit sweep reuses the engine and its cached plan:
				// per-call options never invalidate the plan cache, which is
				// exactly the multi-budget serving shape the API exists for.
				for _, limit := range limitList {
					callOpts := timeoutOpt
					if limit > 0 {
						callOpts = append(callOpts[:len(callOpts):len(callOpts)], fast.WithLimit(limit))
					}
					// Warm calls: the serving path the engine exists for. A
					// cell whose reps straddle the deadline cannot emit a
					// full count with a truncated wall (or vice versa) —
					// betterRep keeps count and wall from one rep.
					var res *fast.Result
					var wall time.Duration
					for r := 0; r < cfg.Reps; r++ {
						start := time.Now()
						cur, err := match(callOpts)
						if err != nil {
							return err
						}
						if el := time.Since(start); betterRep(res, wall, cur, el) {
							res, wall = cur, el
						}
					}
					out.Runs = append(out.Runs, makeRun(q, v, "", w, pw, limit, cfg.MTimeout, res, cold, wall))
				}
			}
		}
	}

	// Speedups, computed after the sweep so -workers ordering is
	// irrelevant: emitted for every workers>1 run whose (query, variant,
	// limit) has a workers=1 cell anywhere in the sweep, and only for those.
	baseWall := make(map[string]int64)
	wallKey := func(r benchRun) string {
		return fmt.Sprintf("%s/%s/%s/%d", r.Query, r.Variant, r.Graph, r.Limit)
	}
	// Timeout-cut cells are excluded on both sides: a wall truncated by the
	// budget measures the budget, not the work, so a ratio against (or of)
	// one is meaningless — the same classification compareCounts uses.
	for _, r := range out.Runs {
		if r.Workers == 1 && !timeoutCut(r) {
			baseWall[wallKey(r)] = r.WallNS
		}
	}
	for i := range out.Runs {
		r := &out.Runs[i]
		if timeoutCut(*r) {
			continue
		}
		if base := baseWall[wallKey(*r)]; r.Workers != 1 && base > 0 && r.WallNS > 0 {
			r.SpeedupVsW1 = float64(base) / float64(r.WallNS)
		}
	}

	// Emit the JSON before the compare verdict: when the regression gate
	// trips, the document that shows the drift must still exist for
	// investigation (CI uploads it as an artifact either way).
	enc := json.NewEncoder(os.Stdout)
	if cfg.Out != "" {
		f, err := os.Create(cfg.Out)
		if err != nil {
			return err
		}
		defer f.Close()
		enc = json.NewEncoder(f)
	}
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return err
	}
	if cfg.Compare != "" {
		return compareCounts(cfg.Compare, out)
	}
	return nil
}

// benchGraph is one named data graph of a -graphs multi-graph sweep.
type benchGraph struct {
	name string
	g    *graph.Graph
}

// betterRep reports whether (cur, wall) should replace (best, bestWall) as
// a cell's measured rep — shared by the single- and multi-graph sweeps so
// their cells stay comparable. Any rep beats none, a complete rep beats a
// timeout-cut one, then the fastest wall wins: the minimum is the least
// noise-sensitive estimator for short wall-clock benchmarks, and count and
// wall always come from the same rep.
func betterRep(best *fast.Result, bestWall time.Duration, cur *fast.Result, wall time.Duration) bool {
	return best == nil ||
		(best.Partial && !cur.Partial) ||
		(best.Partial == cur.Partial && wall < bestWall)
}

// makeRun builds one benchRun row from a cell's best rep; graphName is
// empty for single-graph sweeps.
func makeRun(q *graph.Query, v fast.Variant, graphName string, w, pw int, limit int64,
	mtimeout time.Duration, res *fast.Result, cold, wall time.Duration) benchRun {
	return benchRun{
		Query:         q.Name(),
		Variant:       string(v),
		Graph:         graphName,
		Workers:       w,
		PartWorkers:   pw,
		Limit:         limit,
		TimeoutNS:     mtimeout.Nanoseconds(),
		Partial:       res.Partial,
		Count:         res.Count,
		PlanNS:        cold.Nanoseconds(),
		WallNS:        wall.Nanoseconds(),
		ModelNS:       res.Total.Nanoseconds(),
		BuildNS:       res.BuildTime.Nanoseconds(),
		PartitionNS:   res.PartitionTime.Nanoseconds(),
		CPUShareNS:    res.CPUShareTime.Nanoseconds(),
		Partitions:    res.Partitions,
		CPUPartitions: res.CPUPartitions,
		KernelCycles:  res.KernelCycles,
		CSTBytes:      res.CSTBytes,
	}
}

// benchMultiGraphCell measures one (variant, workers) cell of the
// multi-graph contention sweep: every graph behind one Router drawing from
// one shared worker budget of w tokens, and each rep running the query on
// all graphs simultaneously — so wall_ns includes what cross-tenant
// contention costs, while counts stay each graph's deterministic totals.
func benchMultiGraphCell(cfg benchConfig, v fast.Variant, w, pw int, dev fast.DeviceConfig,
	targets []benchGraph, queryNames []string, limitList []int64) ([]benchRun, error) {

	r := fast.NewRouter(fast.RouterOptions{Workers: w})
	for _, tgt := range targets {
		err := r.AddGraph(tgt.name, tgt.g, &fast.Options{
			Variant: v, Device: dev, Workers: w, PartitionWorkers: pw,
		})
		if err != nil {
			return nil, err
		}
	}
	ctx := context.Background()
	match := func(tgt string, q *graph.Query, callOpts []fast.MatchOption) (*fast.Result, error) {
		res, err := r.MatchContext(ctx, tgt, q, callOpts...)
		if err != nil && res != nil && res.Partial {
			return res, nil
		}
		return res, err
	}
	var timeoutOpt []fast.MatchOption
	if cfg.MTimeout > 0 {
		timeoutOpt = append(timeoutOpt, fast.WithTimeout(cfg.MTimeout))
	}

	var runs []benchRun
	for _, name := range queryNames {
		q, err := ldbc.QueryByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		// Cold call per graph, uncontended: plan_ns stays a planning cost.
		cold := make(map[string]time.Duration, len(targets))
		for _, tgt := range targets {
			start := time.Now()
			if _, err := match(tgt.name, q, timeoutOpt); err != nil {
				return nil, err
			}
			cold[tgt.name] = time.Since(start)
		}
		for _, limit := range limitList {
			callOpts := timeoutOpt
			if limit > 0 {
				callOpts = append(callOpts[:len(callOpts):len(callOpts)], fast.WithLimit(limit))
			}
			type cell struct {
				res  *fast.Result
				wall time.Duration
			}
			best := make(map[string]cell, len(targets))
			for rep := 0; rep < cfg.Reps; rep++ {
				cells := make([]cell, len(targets))
				errs := make([]error, len(targets))
				var wg sync.WaitGroup
				for i, tgt := range targets {
					wg.Add(1)
					go func(i int, tgt benchGraph) {
						defer wg.Done()
						start := time.Now()
						res, err := match(tgt.name, q, callOpts)
						cells[i] = cell{res: res, wall: time.Since(start)}
						errs[i] = err
					}(i, tgt)
				}
				wg.Wait()
				for i, tgt := range targets {
					if errs[i] != nil {
						return nil, errs[i]
					}
					cur, b := cells[i], best[tgt.name]
					if betterRep(b.res, b.wall, cur.res, cur.wall) {
						best[tgt.name] = cur
					}
				}
			}
			for _, tgt := range targets {
				b := best[tgt.name]
				runs = append(runs, makeRun(q, v, tgt.name, w, pw, limit, cfg.MTimeout, b.res, cold[tgt.name], b.wall))
			}
		}
	}
	return runs, nil
}

// cellKey identifies a sweep cell across bench runs for count comparison.
// The timeout is deliberately not part of the key: a budget that did not
// fire cannot change counts (cells it did cut are skipped via timeoutCut),
// so sweeps with different -mtimeout settings stay comparable. The graph
// component is omitted for single-graph sweeps, keeping keys byte-identical
// to pre-multi-graph BENCH_*.json files.
func cellKey(r benchRun) string {
	key := fmt.Sprintf("%s/%s/w%d/pw%d/l%d", r.Query, r.Variant, r.Workers, r.PartWorkers, r.Limit)
	if r.Graph != "" {
		key += "/" + r.Graph
	}
	return key
}

// timeoutCut reports that a cell's partial count came from the wall-clock
// timeout, not the limit: a limit cut is deterministic (count == limit) and
// stays comparable, a timeout cut depends on machine speed and does not.
func timeoutCut(r benchRun) bool {
	return r.TimeoutNS > 0 && r.Partial && !(r.Limit > 0 && r.Count == r.Limit)
}

// compareCounts is the bench-regression gate: it loads a previously
// committed BENCH_*.json and fails on any count drift in cells the two
// sweeps share. Counts are deterministic for unbounded and limit-bounded
// cells, so any drift is a correctness regression, not noise; cells a
// wall-clock timeout actually cut are skipped on either side.
func compareCounts(path string, cur benchOutput) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("-compare: %w", err)
	}
	var ref benchOutput
	if err := json.Unmarshal(data, &ref); err != nil {
		return fmt.Errorf("-compare %s: %w", path, err)
	}
	if ref.ScaleFactor != cur.ScaleFactor || ref.BasePersons != cur.BasePersons || ref.Seed != cur.Seed {
		return fmt.Errorf("-compare %s: workload mismatch (sf=%v base=%d seed=%d vs sf=%v base=%d seed=%d); counts are not comparable",
			path, ref.ScaleFactor, ref.BasePersons, ref.Seed, cur.ScaleFactor, cur.BasePersons, cur.Seed)
	}
	refCounts := make(map[string]int64)
	for _, r := range ref.Runs {
		if timeoutCut(r) {
			continue
		}
		refCounts[cellKey(r)] = r.Count
	}
	compared, drifted := 0, 0
	for _, r := range cur.Runs {
		if timeoutCut(r) {
			continue
		}
		want, ok := refCounts[cellKey(r)]
		if !ok {
			continue
		}
		compared++
		if r.Count != want {
			drifted++
			fmt.Fprintf(os.Stderr, "fastbench: count drift in %s: got %d, %s has %d\n", cellKey(r), r.Count, path, want)
		}
	}
	if compared == 0 {
		return fmt.Errorf("-compare %s: no overlapping cells — sweeps are disjoint, nothing was checked", path)
	}
	if drifted > 0 {
		return fmt.Errorf("-compare %s: %d of %d shared cells drifted", path, drifted, compared)
	}
	fmt.Fprintf(os.Stderr, "fastbench: counts match %s on all %d shared cells\n", path, compared)
	return nil
}

func parseLimits(s string) ([]int64, error) {
	if s == "" {
		return []int64{0}, nil
	}
	var out []int64
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad -limits entry %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -workers entry %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseVariants(s string) ([]fast.Variant, error) {
	if s == "all" {
		return fast.AllVariants(), nil
	}
	known := make(map[fast.Variant]bool)
	for _, v := range fast.AllVariants() {
		known[v] = true
	}
	var out []fast.Variant
	for _, part := range strings.Split(s, ",") {
		v := fast.Variant(strings.TrimSpace(part))
		if !known[v] {
			return nil, fmt.Errorf("unknown variant %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
