package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	fast "fastmatch"
	"fastmatch/ldbc"
)

// benchConfig carries the -bench flags.
type benchConfig struct {
	ScaleFactor float64
	BasePersons int
	Seed        int64
	Reps        int    // measured repetitions per cell after the warm-up call
	Workers     string // comma-separated pool sizes
	PWorkers    int    // partition-producer pool size (0 = match the cell's workers)
	Variants    string // comma-separated kernel variants, or "all"
	Queries     string // comma-separated query filter
	Limits      string // comma-separated per-call embedding limits (0 = unlimited)
	MTimeout    time.Duration
	Out         string // JSON output path ("" = stdout)
	Compare     string // previous BENCH_*.json to check counts against
}

// benchRun is one (query, variant, workers) cell of the sweep. plan_ns is
// the cold first call (plan construction included); wall_ns is the minimum
// measured host wall-clock over the warm calls that follow — the
// serving-path number the -workers sweep is expected to improve — while
// model_ns is the pipeline's modelled end-to-end total, which on the
// bench's single-card configuration is workers-invariant.
type benchRun struct {
	Query       string `json:"query"`
	Variant     string `json:"variant"`
	Workers     int    `json:"workers"`
	PartWorkers int    `json:"partition_workers"`
	// Limit and TimeoutNS are the cell's per-call bounds (the -limits /
	// -mtimeout sweep through MatchContext); 0 means unbounded. With a
	// limit the count is deterministic (min(limit, total)); Partial marks
	// cells a bound actually cut short.
	Limit         int64   `json:"limit"`
	TimeoutNS     int64   `json:"timeout_ns"`
	Partial       bool    `json:"partial,omitempty"`
	Count         int64   `json:"count"`
	PlanNS        int64   `json:"plan_ns"`
	WallNS        int64   `json:"wall_ns"`
	ModelNS       int64   `json:"model_ns"`
	BuildNS       int64   `json:"build_ns"`
	PartitionNS   int64   `json:"partition_ns"`
	CPUShareNS    int64   `json:"cpu_share_ns"`
	Partitions    int     `json:"partitions"`
	CPUPartitions int     `json:"cpu_partitions"`
	KernelCycles  int64   `json:"kernel_cycles"`
	CSTBytes      int64   `json:"cst_bytes"`
	SpeedupVsW1   float64 `json:"speedup_vs_w1,omitempty"`
}

// benchOutput is the JSON document -bench emits, shaped for BENCH_*.json
// trajectory tracking: one stable header plus a flat runs array.
type benchOutput struct {
	Bench       string     `json:"bench"`
	ScaleFactor float64    `json:"scale_factor"`
	BasePersons int        `json:"base_persons"`
	Seed        int64      `json:"seed"`
	Timestamp   string     `json:"timestamp"`
	Runs        []benchRun `json:"runs"`
}

func runBench(cfg benchConfig) error {
	if cfg.BasePersons <= 0 {
		// Bench default is larger than the experiments' 200: the pool only
		// has something to chew on when kernel work dominates per-call
		// overheads.
		cfg.BasePersons = 400
	}
	if cfg.Reps <= 0 {
		cfg.Reps = 5
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	workerList, err := parseWorkers(cfg.Workers)
	if err != nil {
		return err
	}
	variantList, err := parseVariants(cfg.Variants)
	if err != nil {
		return err
	}
	limitList, err := parseLimits(cfg.Limits)
	if err != nil {
		return err
	}
	queryNames := []string{"q1", "q2", "q3", "q4", "q5"}
	if cfg.Queries != "" {
		queryNames = strings.Split(cfg.Queries, ",")
	}

	g := ldbc.Generate(ldbc.Config{
		ScaleFactor: cfg.ScaleFactor,
		BasePersons: cfg.BasePersons,
		Seed:        cfg.Seed,
	})

	out := benchOutput{
		Bench:       "fastmatch",
		ScaleFactor: cfg.ScaleFactor,
		BasePersons: cfg.BasePersons,
		Seed:        cfg.Seed,
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
	}

	for _, v := range variantList {
		for _, w := range workerList {
			// One engine per pool size: the sweep measures the pool, and a
			// fresh plan cache per (variant, workers) keeps the first query
			// of every cell paying the same planning cost.
			dev := fast.DefaultDevice()
			// Shrink the modelled card the way internal/exp does, so CSTs
			// partition at bench scale and the pool has work to fan out.
			dev.BRAMBytes = 32 << 10
			dev.BatchSize = 32
			// PartitionWorkers: the engine defaults 0 to the pool size, so
			// the sweep exercises the concurrent producer at every cell
			// unless -pworkers pins it.
			pw := cfg.PWorkers
			if pw == 0 {
				pw = w
			}
			eng, err := fast.NewEngine(g, &fast.Options{
				Variant: v, Device: dev, Workers: w, PartitionWorkers: pw,
			})
			if err != nil {
				return err
			}
			ctx := context.Background()
			for _, name := range queryNames {
				q, err := ldbc.QueryByName(strings.TrimSpace(name))
				if err != nil {
					return err
				}
				// A deadline cutting a cell short is a measurement, not a
				// harness failure: keep the partial result and mark the cell.
				match := func(callOpts []fast.MatchOption) (*fast.Result, error) {
					res, err := eng.MatchContext(ctx, q, callOpts...)
					if err != nil && res != nil && res.Partial {
						return res, nil
					}
					return res, err
				}
				var timeoutOpt []fast.MatchOption
				if cfg.MTimeout > 0 {
					timeoutOpt = append(timeoutOpt, fast.WithTimeout(cfg.MTimeout))
				}
				// Cold call: plans, builds the CST, fills the cache — once
				// per (engine, query), before the limit sweep, so plan_ns
				// really is planning cost in every cell that shares it.
				coldStart := time.Now()
				if _, err := match(timeoutOpt); err != nil {
					return err
				}
				cold := time.Since(coldStart)
				// The limit sweep reuses the engine and its cached plan:
				// per-call options never invalidate the plan cache, which is
				// exactly the multi-budget serving shape the API exists for.
				for _, limit := range limitList {
					callOpts := timeoutOpt
					if limit > 0 {
						callOpts = append(callOpts[:len(callOpts):len(callOpts)], fast.WithLimit(limit))
					}
					// Warm calls: the serving path the engine exists for. The
					// minimum over reps is the least noise-sensitive estimator
					// for short wall-clock benchmarks. Count and wall always
					// come from the same rep, and a complete rep beats a
					// timeout-cut one, so a cell whose reps straddle the
					// deadline cannot emit a full count with a truncated wall
					// (or vice versa).
					var res *fast.Result
					var wall time.Duration
					for r := 0; r < cfg.Reps; r++ {
						start := time.Now()
						cur, err := match(callOpts)
						if err != nil {
							return err
						}
						el := time.Since(start)
						better := res == nil ||
							(res.Partial && !cur.Partial) ||
							(res.Partial == cur.Partial && el < wall)
						if better {
							res, wall = cur, el
						}
					}
					run := benchRun{
						Query:         q.Name(),
						Variant:       string(v),
						Workers:       w,
						PartWorkers:   pw,
						Limit:         limit,
						TimeoutNS:     cfg.MTimeout.Nanoseconds(),
						Partial:       res.Partial,
						Count:         res.Count,
						PlanNS:        cold.Nanoseconds(),
						WallNS:        wall.Nanoseconds(),
						ModelNS:       res.Total.Nanoseconds(),
						BuildNS:       res.BuildTime.Nanoseconds(),
						PartitionNS:   res.PartitionTime.Nanoseconds(),
						CPUShareNS:    res.CPUShareTime.Nanoseconds(),
						Partitions:    res.Partitions,
						CPUPartitions: res.CPUPartitions,
						KernelCycles:  res.KernelCycles,
						CSTBytes:      res.CSTBytes,
					}
					out.Runs = append(out.Runs, run)
				}
			}
		}
	}

	// Speedups, computed after the sweep so -workers ordering is
	// irrelevant: emitted for every workers>1 run whose (query, variant,
	// limit) has a workers=1 cell anywhere in the sweep, and only for those.
	baseWall := make(map[string]int64)
	wallKey := func(r benchRun) string {
		return fmt.Sprintf("%s/%s/%d", r.Query, r.Variant, r.Limit)
	}
	// Timeout-cut cells are excluded on both sides: a wall truncated by the
	// budget measures the budget, not the work, so a ratio against (or of)
	// one is meaningless — the same classification compareCounts uses.
	for _, r := range out.Runs {
		if r.Workers == 1 && !timeoutCut(r) {
			baseWall[wallKey(r)] = r.WallNS
		}
	}
	for i := range out.Runs {
		r := &out.Runs[i]
		if timeoutCut(*r) {
			continue
		}
		if base := baseWall[wallKey(*r)]; r.Workers != 1 && base > 0 && r.WallNS > 0 {
			r.SpeedupVsW1 = float64(base) / float64(r.WallNS)
		}
	}

	// Emit the JSON before the compare verdict: when the regression gate
	// trips, the document that shows the drift must still exist for
	// investigation (CI uploads it as an artifact either way).
	enc := json.NewEncoder(os.Stdout)
	if cfg.Out != "" {
		f, err := os.Create(cfg.Out)
		if err != nil {
			return err
		}
		defer f.Close()
		enc = json.NewEncoder(f)
	}
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return err
	}
	if cfg.Compare != "" {
		return compareCounts(cfg.Compare, out)
	}
	return nil
}

// cellKey identifies a sweep cell across bench runs for count comparison.
// The timeout is deliberately not part of the key: a budget that did not
// fire cannot change counts (cells it did cut are skipped via timeoutCut),
// so sweeps with different -mtimeout settings stay comparable.
func cellKey(r benchRun) string {
	return fmt.Sprintf("%s/%s/w%d/pw%d/l%d", r.Query, r.Variant, r.Workers, r.PartWorkers, r.Limit)
}

// timeoutCut reports that a cell's partial count came from the wall-clock
// timeout, not the limit: a limit cut is deterministic (count == limit) and
// stays comparable, a timeout cut depends on machine speed and does not.
func timeoutCut(r benchRun) bool {
	return r.TimeoutNS > 0 && r.Partial && !(r.Limit > 0 && r.Count == r.Limit)
}

// compareCounts is the bench-regression gate: it loads a previously
// committed BENCH_*.json and fails on any count drift in cells the two
// sweeps share. Counts are deterministic for unbounded and limit-bounded
// cells, so any drift is a correctness regression, not noise; cells a
// wall-clock timeout actually cut are skipped on either side.
func compareCounts(path string, cur benchOutput) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("-compare: %w", err)
	}
	var ref benchOutput
	if err := json.Unmarshal(data, &ref); err != nil {
		return fmt.Errorf("-compare %s: %w", path, err)
	}
	if ref.ScaleFactor != cur.ScaleFactor || ref.BasePersons != cur.BasePersons || ref.Seed != cur.Seed {
		return fmt.Errorf("-compare %s: workload mismatch (sf=%v base=%d seed=%d vs sf=%v base=%d seed=%d); counts are not comparable",
			path, ref.ScaleFactor, ref.BasePersons, ref.Seed, cur.ScaleFactor, cur.BasePersons, cur.Seed)
	}
	refCounts := make(map[string]int64)
	for _, r := range ref.Runs {
		if timeoutCut(r) {
			continue
		}
		refCounts[cellKey(r)] = r.Count
	}
	compared, drifted := 0, 0
	for _, r := range cur.Runs {
		if timeoutCut(r) {
			continue
		}
		want, ok := refCounts[cellKey(r)]
		if !ok {
			continue
		}
		compared++
		if r.Count != want {
			drifted++
			fmt.Fprintf(os.Stderr, "fastbench: count drift in %s: got %d, %s has %d\n", cellKey(r), r.Count, path, want)
		}
	}
	if compared == 0 {
		return fmt.Errorf("-compare %s: no overlapping cells — sweeps are disjoint, nothing was checked", path)
	}
	if drifted > 0 {
		return fmt.Errorf("-compare %s: %d of %d shared cells drifted", path, drifted, compared)
	}
	fmt.Fprintf(os.Stderr, "fastbench: counts match %s on all %d shared cells\n", path, compared)
	return nil
}

func parseLimits(s string) ([]int64, error) {
	if s == "" {
		return []int64{0}, nil
	}
	var out []int64
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad -limits entry %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -workers entry %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseVariants(s string) ([]fast.Variant, error) {
	if s == "all" {
		return fast.AllVariants(), nil
	}
	known := make(map[fast.Variant]bool)
	for _, v := range fast.AllVariants() {
		known[v] = true
	}
	var out []fast.Variant
	for _, part := range strings.Split(s, ",") {
		v := fast.Variant(strings.TrimSpace(part))
		if !known[v] {
			return nil, fmt.Errorf("unknown variant %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
