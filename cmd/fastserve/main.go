// Command fastserve runs the HTTP/JSON serving front end over a
// fast.Router: named LDBC queries or explicit label/edge queries against
// one or more registered graphs, behind deadline-aware admission control.
//
// Usage:
//
//	fastserve -addr :8080 -graphs social
//	fastserve -graphs hot=DG03@3,cold=DG01 -workers 8 -maxqueue 128
//	fastserve -graphs prod=/data/prod.bin -base 400 -seed 42
//
// Each -graphs entry is name[=source][@weight]:
//
//	name            generate an LDBC graph (-sf/-base/-seed; seeds step by
//	                one per generated graph so names differ)
//	name=DG01       an LDBC dataset preset (DG01, DG03, DG10, DG60)
//	name=path.bin   a graph.WriteBinary file
//	@weight         the tenant's share weight of the worker budget (>= 1)
//
// Endpoints, request shapes and the /metrics exposition are documented on
// fast.Server; queries named in requests resolve through ldbc.QueryByName.
//
// SIGINT or SIGTERM drains gracefully: the listener stops accepting, new
// requests are refused with 503 "draining", standing subscription streams
// close with a "draining" line, and in-flight requests get up to
// -drain-timeout to finish before the process exits. A second signal exits
// immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	fast "fastmatch"
	"fastmatch/graph"
	"fastmatch/ldbc"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		graphs   = flag.String("graphs", "social", "comma-separated graphs to serve: name[=dataset|=path.bin][@weight]")
		workers  = flag.Int("workers", 0, "shared worker budget (default GOMAXPROCS)")
		maxQueue = flag.Int("maxqueue", 0, "per-tenant admission queue bound (0 = default, negative disables queuing)")
		timeout  = flag.Duration("timeout", 0, "default per-call timeout applied as every tenant's SLO ceiling; 0 = none")
		sf       = flag.Float64("sf", 1, "LDBC scale factor for generated graphs")
		base     = flag.Int("base", 0, "BasePersons scale knob for generated graphs (default 200)")
		seed     = flag.Int64("seed", 42, "generator seed for generated graphs")
		drain    = flag.Duration("drain-timeout", 15*time.Second, "how long a SIGINT/SIGTERM drain waits for in-flight requests")
		breaker  = flag.Int("breaker", 0, "per-tenant circuit-breaker threshold: consecutive hard failures that trip it (0 = default, negative disables)")
	)
	flag.Parse()

	router := fast.NewRouter(fast.RouterOptions{
		Workers:  *workers,
		MaxQueue: *maxQueue,
		Breaker:  fast.BreakerOptions{Threshold: *breaker},
	})
	genSeed := *seed
	for _, spec := range strings.Split(*graphs, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		name, source, weight, err := parseSpec(spec)
		if err != nil {
			log.Fatalf("fastserve: -graphs %q: %v", spec, err)
		}
		g, desc, err := loadGraph(source, *sf, *base, genSeed)
		if err != nil {
			log.Fatalf("fastserve: graph %s: %v", name, err)
		}
		if source == "" {
			genSeed++
		}
		var defaults []fast.MatchOption
		if weight > 0 {
			defaults = append(defaults, fast.WithWeight(weight))
		}
		if *timeout > 0 {
			defaults = append(defaults, fast.WithTimeout(*timeout))
		}
		if err := router.AddGraph(name, g, nil, defaults...); err != nil {
			log.Fatalf("fastserve: %v", err)
		}
		log.Printf("serving %s: %s (%d vertices, %d edges, weight %d)",
			name, desc, g.NumVertices(), g.NumEdges(), max(weight, 1))
	}
	if len(router.Graphs()) == 0 {
		fmt.Fprintln(os.Stderr, "fastserve: no graphs to serve")
		os.Exit(2)
	}

	server := fast.NewServer(router, fast.ServerOptions{QueryByName: ldbc.QueryByName})
	httpSrv := &http.Server{Addr: *addr, Handler: server}

	// Graceful drain on SIGINT/SIGTERM: stop accepting, let the fast.Server
	// refuse new work and finish what is in flight, then exit. A second
	// signal aborts the drain immediately.
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	drained := make(chan struct{})
	go func() {
		sig := <-sigs
		log.Printf("received %s: draining (up to %s; signal again to abort)", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		go func() {
			<-sigs
			log.Print("second signal: aborting drain")
			cancel()
		}()
		if err := server.Shutdown(ctx); err != nil {
			log.Printf("drain incomplete: %v", err)
		}
		// Close the listener after the app-level drain so in-flight
		// responses are written before connections go away.
		if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			log.Printf("http shutdown: %v", err)
		}
		close(drained)
	}()

	log.Printf("listening on %s (%d workers)", *addr, router.Workers())
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-drained
	log.Print("drained; exiting")
}

// parseSpec splits name[=source][@weight].
func parseSpec(spec string) (name, source string, weight int, err error) {
	if at := strings.LastIndex(spec, "@"); at >= 0 {
		w, err := strconv.Atoi(spec[at+1:])
		if err != nil || w < 1 {
			return "", "", 0, fmt.Errorf("weight %q: want an integer >= 1", spec[at+1:])
		}
		weight, spec = w, spec[:at]
	}
	name, source, _ = strings.Cut(spec, "=")
	if name == "" {
		return "", "", 0, fmt.Errorf("empty graph name")
	}
	return name, source, weight, nil
}

// loadGraph resolves a -graphs source: empty generates, a dataset name uses
// its preset, anything else reads a binary graph file.
func loadGraph(source string, sf float64, base int, seed int64) (*graph.Graph, string, error) {
	if source == "" {
		cfg := ldbc.Config{ScaleFactor: sf, BasePersons: base, Seed: seed}
		return ldbc.Generate(cfg), fmt.Sprintf("generated sf=%g seed=%d", sf, seed), nil
	}
	for _, preset := range ldbc.DatasetNames() {
		if source == preset {
			cfg, err := ldbc.Dataset(source)
			if err != nil {
				return nil, "", err
			}
			return ldbc.Generate(cfg), "dataset " + source, nil
		}
	}
	f, err := os.Open(source)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	g, err := graph.ReadBinary(f)
	if err != nil {
		return nil, "", fmt.Errorf("%s: %w", source, err)
	}
	return g, "file " + source, nil
}
