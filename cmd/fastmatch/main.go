// Command fastmatch runs one subgraph-matching query through the CPU–FPGA
// pipeline (or a baseline) and prints counts and a timing breakdown.
//
// Usage:
//
//	fastmatch -data graph.txt -query query.txt
//	fastmatch -dataset DG03 -q q5 -variant share -fpgas 2
//	fastmatch -dataset DG01 -q q2 -engine CECI -threads 8
//	fastmatch -dataset DG03 -q q5 -timeout 100ms -limit 1000
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	fast "fastmatch"
	"fastmatch/graph"
	"fastmatch/ldbc"
)

func main() {
	var (
		dataPath  = flag.String("data", "", "data graph file (text or binary format)")
		queryPath = flag.String("query", "", "query graph file (text format)")
		dataset   = flag.String("dataset", "", "generated dataset instead of -data: DG01/DG03/DG10/DG60")
		base      = flag.Int("base", 200, "BasePersons for generated datasets")
		qname     = flag.String("q", "", "benchmark query instead of -query: q0…q8")
		engine    = flag.String("engine", "FAST", "FAST or a baseline: backtrack, CFL, DAF, CECI, GpSM, GSI")
		variant   = flag.String("variant", "share", "FAST variant: dram, basic, task, sep, share")
		fpgas     = flag.Int("fpgas", 1, "number of simulated FPGA cards")
		delta     = flag.Float64("delta", 0, "CPU workload share δ override")
		threads   = flag.Int("threads", 1, "threads for baseline engines (e.g. 8 for CECI-8)")
		timeout   = flag.Duration("timeout", 0, "time limit (FAST pipeline and baselines)")
		limit     = flag.Int64("limit", 0, "stop after this many embeddings (FAST pipeline)")
		verbose   = flag.Bool("v", false, "print per-phase details")
	)
	flag.Parse()
	// An explicit -delta 0 must force everything to the FPGA, not fall back
	// to the variant default — distinguish "passed" from "zero value".
	deltaSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "delta" {
			deltaSet = true
		}
	})
	if err := run(*dataPath, *queryPath, *dataset, *base, *qname, *engine, *variant,
		*fpgas, *delta, deltaSet, *threads, *timeout, *limit, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "fastmatch:", err)
		os.Exit(1)
	}
}

func run(dataPath, queryPath, dataset string, base int, qname, engine, variant string,
	fpgas int, delta float64, deltaSet bool, threads int, timeout time.Duration, limit int64, verbose bool) error {

	// Load or generate the data graph.
	var g *graph.Graph
	switch {
	case dataPath != "":
		var err error
		if g, err = graph.LoadFile(dataPath); err != nil {
			return err
		}
	case dataset != "":
		cfg, err := ldbc.Dataset(dataset)
		if err != nil {
			return err
		}
		cfg.BasePersons = base
		g = ldbc.Generate(cfg)
	default:
		return fmt.Errorf("need -data or -dataset")
	}

	// Load or pick the query.
	var q *graph.Query
	switch {
	case queryPath != "":
		f, err := os.Open(queryPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if q, err = graph.ReadQueryText(queryPath, f); err != nil {
			return err
		}
	case qname != "":
		var err error
		if q, err = ldbc.QueryByName(qname); err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -query or -q")
	}

	fmt.Printf("data:  %v\n", g)
	fmt.Printf("query: %v\n", q)

	if engine != "FAST" {
		res, err := fast.RunBaseline(fast.Baseline(engine), q, g, fast.BaselineOptions{
			Threads: threads,
			Timeout: timeout,
		})
		if err != nil {
			return err
		}
		fmt.Printf("engine %s: %d embeddings in %v (peak memory %d B)\n",
			engine, res.Count, res.Elapsed.Round(time.Microsecond), res.PeakMemory)
		return nil
	}

	var callOpts []fast.MatchOption
	if timeout > 0 {
		callOpts = append(callOpts, fast.WithTimeout(timeout))
	}
	if limit > 0 {
		callOpts = append(callOpts, fast.WithLimit(limit))
	}
	res, err := fast.MatchContext(context.Background(), q, g, &fast.Options{
		Variant:  fast.Variant(variant),
		NumFPGAs: fpgas,
		Delta:    delta,
		DeltaSet: deltaSet,
	}, callOpts...)
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		fmt.Printf("FAST (%s): timed out after %v — partial results follow\n", variant, timeout)
	case err != nil:
		return err
	}
	partial := ""
	if res.Partial {
		partial = " (partial)"
	}
	fmt.Printf("FAST (%s, %d card(s)): %d embeddings%s in %v\n",
		variant, fpgas, res.Count, partial, res.Total.Round(time.Microsecond))
	if verbose {
		fmt.Printf("  CST build:      %v\n", res.BuildTime.Round(time.Microsecond))
		fmt.Printf("  partition:      %v (%d partitions, %d to CPU)\n",
			res.PartitionTime.Round(time.Microsecond), res.Partitions, res.CPUPartitions)
		fmt.Printf("  PCIe transfer:  %v\n", res.TransferTime.Round(time.Microsecond))
		fmt.Printf("  FPGA kernels:   %v (%d cycles)\n", res.FPGATime.Round(time.Microsecond), res.KernelCycles)
		fmt.Printf("  CPU share:      %v\n", res.CPUShareTime.Round(time.Microsecond))
		fmt.Printf("  CST bytes:      %d (data graph %d)\n", res.CSTBytes, res.DataBytes)
	}
	return nil
}
