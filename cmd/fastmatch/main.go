// Command fastmatch runs one subgraph-matching query through the CPU–FPGA
// pipeline (or a baseline) and prints counts and a timing breakdown. With
// -graphs it instead serves several named data graphs through one
// fast.Router — one shared worker budget across all of them — routing each
// -route entry's query to its named graph.
//
// Usage:
//
//	fastmatch -data graph.txt -query query.txt
//	fastmatch -dataset DG03 -q q5 -variant share -fpgas 2
//	fastmatch -dataset DG01 -q q2 -engine CECI -threads 8
//	fastmatch -dataset DG03 -q q5 -timeout 100ms -limit 1000
//	fastmatch -graphs a=DG01,b=DG03 -route a=q2,b=q5,a=q1 -limit 1000
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	fast "fastmatch"
	"fastmatch/graph"
	"fastmatch/ldbc"
)

func main() {
	var (
		dataPath  = flag.String("data", "", "data graph file (text or binary format)")
		queryPath = flag.String("query", "", "query graph file (text format)")
		dataset   = flag.String("dataset", "", "generated dataset instead of -data: DG01/DG03/DG10/DG60")
		base      = flag.Int("base", 200, "BasePersons for generated datasets")
		qname     = flag.String("q", "", "benchmark query instead of -query: q0…q8")
		engine    = flag.String("engine", "FAST", "FAST or a baseline: backtrack, CFL, DAF, CECI, GpSM, GSI")
		variant   = flag.String("variant", "share", "FAST variant: dram, basic, task, sep, share")
		fpgas     = flag.Int("fpgas", 1, "number of simulated FPGA cards")
		delta     = flag.Float64("delta", 0, "CPU workload share δ override")
		threads   = flag.Int("threads", 1, "threads for baseline engines (e.g. 8 for CECI-8)")
		timeout   = flag.Duration("timeout", 0, "time limit (FAST pipeline and baselines)")
		limit     = flag.Int64("limit", 0, "stop after this many embeddings (FAST pipeline)")
		graphs    = flag.String("graphs", "", "multi-graph mode: name=source pairs (source: dataset DG01/DG03/DG10/DG60 or a graph file), served through one Router")
		route     = flag.String("route", "", "multi-graph mode: name=query routes (query: q0…q8 or a query file), each run against its named graph")
		workers   = flag.Int("workers", 0, "multi-graph mode: shared worker budget across all graphs (default NumCPU)")
		verbose   = flag.Bool("v", false, "print per-phase details")
	)
	flag.Parse()
	// An explicit -delta 0 must force everything to the FPGA, not fall back
	// to the variant default — distinguish "passed" from "zero value".
	deltaSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "delta" {
			deltaSet = true
		}
	})
	if *graphs != "" {
		if err := runMulti(*graphs, *route, *base, *variant, *fpgas, *delta, deltaSet,
			*workers, *timeout, *limit); err != nil {
			fmt.Fprintln(os.Stderr, "fastmatch:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*dataPath, *queryPath, *dataset, *base, *qname, *engine, *variant,
		*fpgas, *delta, deltaSet, *threads, *timeout, *limit, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "fastmatch:", err)
		os.Exit(1)
	}
}

// loadData resolves a data-graph source: a generated dataset name (DG01,
// DG03, …) or a graph file path. When neither resolves, both diagnostics
// are reported — a typo'd dataset name must not masquerade as a plain
// missing-file error.
func loadData(source string, base int) (*graph.Graph, error) {
	cfg, dsErr := ldbc.Dataset(source)
	if dsErr == nil {
		cfg.BasePersons = base
		return ldbc.Generate(cfg), nil
	}
	g, err := graph.LoadFile(source)
	if err != nil {
		return nil, fmt.Errorf("%v (and not a dataset: %v)", err, dsErr)
	}
	return g, nil
}

// loadQuery resolves a query source: a benchmark name (q0…q8) or a query
// file path, reporting both diagnostics when neither resolves.
func loadQuery(source string) (*graph.Query, error) {
	q, nameErr := ldbc.QueryByName(source)
	if nameErr == nil {
		return q, nil
	}
	f, err := os.Open(source)
	if err != nil {
		return nil, fmt.Errorf("%v (and not a benchmark query: %v)", err, nameErr)
	}
	defer f.Close()
	return graph.ReadQueryText(source, f)
}

// parsePairs splits "name=value,name=value" keeping order of first
// appearance for names.
func parsePairs(spec string) ([][2]string, error) {
	var out [][2]string
	for _, part := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" || val == "" {
			return nil, fmt.Errorf("bad name=value entry %q", part)
		}
		out = append(out, [2]string{name, val})
	}
	return out, nil
}

// runMulti serves several named graphs through one Router with a shared
// worker budget, routes each -route query to its graph concurrently, and
// prints per-route results plus the router's per-graph serving stats.
func runMulti(graphsSpec, routeSpec string, base int, variant string, fpgas int,
	delta float64, deltaSet bool, workers int, timeout time.Duration, limit int64) error {

	if routeSpec == "" {
		return fmt.Errorf("-graphs needs -route (name=query pairs to serve)")
	}
	graphPairs, err := parsePairs(graphsSpec)
	if err != nil {
		return fmt.Errorf("-graphs: %w", err)
	}
	routes, err := parsePairs(routeSpec)
	if err != nil {
		return fmt.Errorf("-route: %w", err)
	}

	r := fast.NewRouter(fast.RouterOptions{
		Workers: workers,
		Engine:  &fast.Options{Variant: fast.Variant(variant), NumFPGAs: fpgas, Delta: delta, DeltaSet: deltaSet},
	})
	for _, p := range graphPairs {
		g, err := loadData(p[1], base)
		if err != nil {
			return fmt.Errorf("graph %s: %w", p[0], err)
		}
		if err := r.AddGraph(p[0], g, nil); err != nil {
			return err
		}
		fmt.Printf("graph %s (%s): %v\n", p[0], p[1], g)
	}

	var callOpts []fast.MatchOption
	if timeout > 0 {
		callOpts = append(callOpts, fast.WithTimeout(timeout))
	}
	if limit > 0 {
		callOpts = append(callOpts, fast.WithLimit(limit))
	}

	// Resolve every route's query before launching anything: a typo in the
	// last route must fail cleanly, not abandon matches already in flight.
	queries := make([]*graph.Query, len(routes))
	for i, rt := range routes {
		q, err := loadQuery(rt[1])
		if err != nil {
			return fmt.Errorf("route %s=%s: %w", rt[0], rt[1], err)
		}
		queries[i] = q
	}

	// All routes run concurrently — the contention the shared budget
	// exists to bound — and print in route order once everything is done.
	type outcome struct {
		res *fast.Result
		err error
	}
	outcomes := make([]outcome, len(routes))
	var wg sync.WaitGroup
	start := time.Now()
	for i, rt := range routes {
		wg.Add(1)
		go func(i int, name string, q *graph.Query) {
			defer wg.Done()
			res, err := r.MatchContext(context.Background(), name, q, callOpts...)
			outcomes[i] = outcome{res, err}
		}(i, rt[0], queries[i])
	}
	wg.Wait()
	wall := time.Since(start)

	failed := 0
	for i, rt := range routes {
		o := outcomes[i]
		switch {
		case o.res != nil && o.err != nil:
			fmt.Printf("route %s<-%s: %d embeddings (partial: %v)\n", rt[0], rt[1], o.res.Count, o.err)
		case o.err != nil:
			failed++
			fmt.Printf("route %s<-%s: error: %v\n", rt[0], rt[1], o.err)
		default:
			partial := ""
			if o.res.Partial {
				partial = " (partial)"
			}
			fmt.Printf("route %s<-%s: %d embeddings%s in %v\n",
				rt[0], rt[1], o.res.Count, partial, o.res.Total.Round(time.Microsecond))
		}
	}
	fmt.Printf("served %d routes across %d graphs in %v (budget %d workers)\n",
		len(routes), len(graphPairs), wall.Round(time.Microsecond), r.Workers())

	stats := r.Stats()
	names := make([]string, 0, len(stats))
	for name := range stats {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := stats[name]
		fmt.Printf("  %s: calls=%d partial=%d failed=%d plans=%d (hits=%d misses=%d)\n",
			name, s.Calls, s.Partials, s.Failures, s.CachedPlans, s.PlanCacheHits, s.PlanCacheMisses)
	}
	if failed > 0 {
		return fmt.Errorf("%d route(s) failed", failed)
	}
	return nil
}

func run(dataPath, queryPath, dataset string, base int, qname, engine, variant string,
	fpgas int, delta float64, deltaSet bool, threads int, timeout time.Duration, limit int64, verbose bool) error {

	// Load or generate the data graph.
	var g *graph.Graph
	switch {
	case dataPath != "":
		var err error
		if g, err = graph.LoadFile(dataPath); err != nil {
			return err
		}
	case dataset != "":
		cfg, err := ldbc.Dataset(dataset)
		if err != nil {
			return err
		}
		cfg.BasePersons = base
		g = ldbc.Generate(cfg)
	default:
		return fmt.Errorf("need -data or -dataset")
	}

	// Load or pick the query.
	var q *graph.Query
	switch {
	case queryPath != "":
		f, err := os.Open(queryPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if q, err = graph.ReadQueryText(queryPath, f); err != nil {
			return err
		}
	case qname != "":
		var err error
		if q, err = ldbc.QueryByName(qname); err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -query or -q")
	}

	fmt.Printf("data:  %v\n", g)
	fmt.Printf("query: %v\n", q)

	if engine != "FAST" {
		res, err := fast.RunBaseline(fast.Baseline(engine), q, g, fast.BaselineOptions{
			Threads: threads,
			Timeout: timeout,
		})
		if err != nil {
			return err
		}
		fmt.Printf("engine %s: %d embeddings in %v (peak memory %d B)\n",
			engine, res.Count, res.Elapsed.Round(time.Microsecond), res.PeakMemory)
		return nil
	}

	var callOpts []fast.MatchOption
	if timeout > 0 {
		callOpts = append(callOpts, fast.WithTimeout(timeout))
	}
	if limit > 0 {
		callOpts = append(callOpts, fast.WithLimit(limit))
	}
	res, err := fast.MatchContext(context.Background(), q, g, &fast.Options{
		Variant:  fast.Variant(variant),
		NumFPGAs: fpgas,
		Delta:    delta,
		DeltaSet: deltaSet,
	}, callOpts...)
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		fmt.Printf("FAST (%s): timed out after %v — partial results follow\n", variant, timeout)
	case err != nil:
		return err
	}
	partial := ""
	if res.Partial {
		partial = " (partial)"
	}
	fmt.Printf("FAST (%s, %d card(s)): %d embeddings%s in %v\n",
		variant, fpgas, res.Count, partial, res.Total.Round(time.Microsecond))
	if verbose {
		fmt.Printf("  CST build:      %v\n", res.BuildTime.Round(time.Microsecond))
		fmt.Printf("  partition:      %v (%d partitions, %d to CPU)\n",
			res.PartitionTime.Round(time.Microsecond), res.Partitions, res.CPUPartitions)
		fmt.Printf("  PCIe transfer:  %v\n", res.TransferTime.Round(time.Microsecond))
		fmt.Printf("  FPGA kernels:   %v (%d cycles)\n", res.FPGATime.Round(time.Microsecond), res.KernelCycles)
		fmt.Printf("  CPU share:      %v\n", res.CPUShareTime.Round(time.Microsecond))
		fmt.Printf("  CST bytes:      %d (data graph %d)\n", res.CSTBytes, res.DataBytes)
	}
	return nil
}
