// Command fastmutate replays a randomized delta workload against a
// fastserve instance and reports mutation throughput and continuous-query
// notification latency. It regenerates the server's graph locally (same
// generator flags as fastserve) and maintains that mirror through every
// batch it sends, so each batch is valid against the server's current epoch
// without ever reading the graph back.
//
// A standing query is held open over NDJSON for the whole run; notification
// latency is the time from just before a batch's POST to the arrival of the
// subscription line carrying that batch's epoch — admission, commit,
// affected-region diff and delivery included.
//
// Usage:
//
//	fastmutate -url http://localhost:8080 -graph social -query q1 -batches 200 -rate 50
//	fastmutate -graph social -seed 42 -base 200 -merge BENCH_pr8.json
//
// -json writes the mutation record alone; -merge folds it into an existing
// fastbench BENCH_*.json document under its "mutation" list.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"fastmatch/graph"
	"fastmatch/ldbc"
)

type quantiles struct {
	P50NS int64 `json:"p50_ns"`
	P90NS int64 `json:"p90_ns"`
	P99NS int64 `json:"p99_ns"`
	MaxNS int64 `json:"max_ns"`
}

// mutationRecord is the JSON this run appends under "mutation".
type mutationRecord struct {
	URL     string  `json:"url"`
	Graph   string  `json:"graph"`
	Query   string  `json:"query"`
	Batches int     `json:"batches"`
	Rate    float64 `json:"rate"`

	Committed  int64 `json:"committed"`
	Conflicts  int64 `json:"conflicts"`
	Errors     int64 `json:"errors"`
	Ops        int64 `json:"ops"`
	FinalEpoch int64 `json:"final_epoch"`

	AchievedBatchesPerSec float64 `json:"achieved_batches_per_sec"`
	AchievedOpsPerSec     float64 `json:"achieved_ops_per_sec"`

	ApplyLatency quantiles `json:"apply_latency"`
	// NotifyLatency covers send→matching-epoch-line; Notified is how many
	// epochs the standing query reported back within the drain window.
	NotifyLatency quantiles `json:"notify_latency"`
	Notified      int64     `json:"notified"`
}

func main() {
	var (
		url       = flag.String("url", "http://localhost:8080", "fastserve base URL")
		graphName = flag.String("graph", "social", "graph to mutate")
		query     = flag.String("query", "q1", "named standing query to subscribe with")
		batches   = flag.Int("batches", 200, "delta batches to send")
		rate      = flag.Float64("rate", 50, "batch arrival rate per second (0 = as fast as acked)")
		sf        = flag.Float64("sf", 1, "LDBC scale factor of the server's generated graph")
		base      = flag.Int("base", 0, "BasePersons knob of the server's generated graph")
		seed      = flag.Int64("seed", 42, "generator seed of the server's generated graph")
		opSeed    = flag.Int64("opseed", 1, "randomized workload seed")
		jsonOut   = flag.String("json", "", "write the mutation record to this file")
		merge     = flag.String("merge", "", "fold the mutation record into this existing BENCH_*.json")
	)
	flag.Parse()
	if *batches <= 0 {
		fmt.Fprintln(os.Stderr, "fastmutate: -batches must be positive")
		os.Exit(2)
	}

	mirror := ldbc.Generate(ldbc.Config{ScaleFactor: *sf, BasePersons: *base, Seed: *seed})
	baseURL := strings.TrimRight(*url, "/")
	client := &http.Client{}

	// Standing query: one NDJSON stream for the whole run, recording when
	// each epoch's line lands.
	var (
		lineMu    sync.Mutex
		lineAt    = map[int64]time.Time{}
		subClosed = make(chan error, 1)
	)
	resp, err := client.Get(baseURL + "/v1/graphs/" + *graphName + "/subscribe?query=" + *query)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fastmutate: subscribe:", err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		fmt.Fprintf(os.Stderr, "fastmutate: subscribe: status %d: %s\n", resp.StatusCode, body)
		os.Exit(1)
	}
	go func() {
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 16<<20)
		for sc.Scan() {
			var line struct {
				Epoch  int64 `json:"epoch"`
				Closed bool  `json:"closed"`
			}
			if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
				continue
			}
			if line.Closed {
				break
			}
			if line.Epoch > 0 {
				lineMu.Lock()
				lineAt[line.Epoch] = time.Now()
				lineMu.Unlock()
			}
		}
		subClosed <- sc.Err()
	}()

	rng := rand.New(rand.NewSource(*opSeed))
	var (
		rec      mutationRecord
		applyLat []time.Duration
		sendAt   = map[int64]time.Time{}
	)
	var interval time.Duration
	if *rate > 0 {
		interval = time.Duration(float64(time.Second) / *rate)
	}
	start := time.Now()
	next := start
	for i := 0; i < *batches; i++ {
		if interval > 0 {
			time.Sleep(time.Until(next))
			next = next.Add(interval)
		}
		d := randomBatch(rng, mirror)
		body, _ := json.Marshal(map[string]any{
			"add_vertices":    d.AddVertices,
			"del_vertices":    d.DelVertices,
			"add_edges":       d.AddEdges,
			"add_edge_labels": d.AddEdgeLabels,
			"del_edges":       d.DelEdges,
		})
		sent := time.Now()
		epoch, status, err := postDelta(client, baseURL+"/v1/graphs/"+*graphName+"/delta", body)
		took := time.Since(sent)
		switch {
		case err != nil || status != http.StatusOK && status != http.StatusConflict:
			rec.Errors++
			fmt.Fprintf(os.Stderr, "fastmutate: batch %d: status %d err %v\n", i, status, err)
		case status == http.StatusConflict:
			rec.Conflicts++ // graph swapped under us: the mirror is stale, stop
			fmt.Fprintf(os.Stderr, "fastmutate: batch %d: conflict (graph swapped), stopping\n", i)
		default:
			rec.Committed++
			rec.Ops += int64(d.Ops())
			rec.FinalEpoch = epoch
			applyLat = append(applyLat, took)
			sendAt[epoch] = sent
			if mirror, _, err = mirror.ApplyDelta(d); err != nil {
				fmt.Fprintf(os.Stderr, "fastmutate: mirror diverged: %v\n", err)
				os.Exit(1)
			}
		}
		if rec.Conflicts > 0 {
			break
		}
	}
	elapsed := time.Since(start)

	// Give the subscription a moment to drain the last epochs, then join
	// send times with line arrivals.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		lineMu.Lock()
		_, ok := lineAt[rec.FinalEpoch]
		lineMu.Unlock()
		if ok || rec.FinalEpoch == 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	var notifyLat []time.Duration
	lineMu.Lock()
	for epoch, sent := range sendAt {
		if at, ok := lineAt[epoch]; ok {
			notifyLat = append(notifyLat, at.Sub(sent))
		}
	}
	lineMu.Unlock()
	rec.Notified = int64(len(notifyLat))

	rec.URL, rec.Graph, rec.Query = *url, *graphName, *query
	rec.Batches, rec.Rate = *batches, *rate
	if elapsed > 0 {
		rec.AchievedBatchesPerSec = float64(rec.Committed) / elapsed.Seconds()
		rec.AchievedOpsPerSec = float64(rec.Ops) / elapsed.Seconds()
	}
	rec.ApplyLatency = summarize(applyLat)
	rec.NotifyLatency = summarize(notifyLat)

	report(os.Stdout, rec)
	if *jsonOut != "" {
		if err := writeJSONFile(*jsonOut, rec); err != nil {
			fmt.Fprintln(os.Stderr, "fastmutate:", err)
			os.Exit(1)
		}
	}
	if *merge != "" {
		if err := mergeInto(*merge, rec); err != nil {
			fmt.Fprintln(os.Stderr, "fastmutate:", err)
			os.Exit(1)
		}
		fmt.Printf("merged mutation record into %s\n", *merge)
	}
	if rec.Errors > 0 {
		os.Exit(1)
	}
}

// postDelta sends one batch and returns the committed epoch (0 on non-200).
func postDelta(client *http.Client, target string, body []byte) (int64, int, error) {
	resp, err := client.Post(target, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	var payload struct {
		Epoch int64 `json:"epoch"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&payload); err != nil && resp.StatusCode == http.StatusOK {
		return 0, resp.StatusCode, err
	}
	return payload.Epoch, resp.StatusCode, nil
}

// randomBatch builds one valid batch against mirror: wire in a new vertex,
// tombstone a vertex, or flip an edge. Mirroring Router-side validation
// locally keeps the server's 400 path cold — every batch should commit.
func randomBatch(rng *rand.Rand, mirror *graph.Graph) graph.Delta {
	live := make([]graph.VertexID, 0, mirror.NumVertices())
	for v := 0; v < mirror.NumVertices(); v++ {
		if !mirror.Deleted(graph.VertexID(v)) {
			live = append(live, graph.VertexID(v))
		}
	}
	pick := func() graph.VertexID { return live[rng.Intn(len(live))] }
	for {
		switch rng.Intn(5) {
		case 0: // new vertex wired to 1–3 live vertices
			n := graph.VertexID(mirror.NumVertices())
			d := graph.Delta{AddVertices: []graph.Label{graph.Label(rng.Intn(mirror.NumLabels()))}}
			seen := map[graph.VertexID]bool{}
			for i := 0; i < 1+rng.Intn(3); i++ {
				w := pick()
				if !seen[w] {
					seen[w] = true
					d.AddEdges = append(d.AddEdges, [2]graph.VertexID{n, w})
				}
			}
			return d
		case 1: // tombstone a vertex, but never drain the graph
			if len(live) < mirror.NumVertices()*3/4 {
				continue
			}
			return graph.Delta{DelVertices: []graph.VertexID{pick()}}
		case 2, 3: // add a missing edge (weighted up to offset deletes)
			for tries := 0; tries < 20; tries++ {
				u, w := pick(), pick()
				if u != w && !mirror.HasEdge(u, w) {
					return graph.Delta{AddEdges: [][2]graph.VertexID{{u, w}}}
				}
			}
		case 4: // delete an existing edge
			for tries := 0; tries < 20; tries++ {
				u := pick()
				if nbrs := mirror.Neighbors(u); len(nbrs) > 0 {
					return graph.Delta{DelEdges: [][2]graph.VertexID{{u, nbrs[rng.Intn(len(nbrs))]}}}
				}
			}
		}
	}
}

func summarize(lats []time.Duration) quantiles {
	if len(lats) == 0 {
		return quantiles{}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	q := func(p float64) int64 {
		return lats[int(p*float64(len(lats)-1))].Nanoseconds()
	}
	return quantiles{P50NS: q(0.50), P90NS: q(0.90), P99NS: q(0.99), MaxNS: q(1)}
}

func report(w io.Writer, rec mutationRecord) {
	fmt.Fprintf(w, "fastmutate %s graph=%s query=%s batches=%d rate=%g\n",
		rec.URL, rec.Graph, rec.Query, rec.Batches, rec.Rate)
	fmt.Fprintf(w, "  committed %d (%d ops)  conflicts %d  errors %d  final epoch %d\n",
		rec.Committed, rec.Ops, rec.Conflicts, rec.Errors, rec.FinalEpoch)
	fmt.Fprintf(w, "  throughput %.1f batches/s (%.1f ops/s)\n", rec.AchievedBatchesPerSec, rec.AchievedOpsPerSec)
	fmt.Fprintf(w, "  apply  p50 %v  p90 %v  p99 %v  max %v\n",
		time.Duration(rec.ApplyLatency.P50NS).Round(time.Microsecond),
		time.Duration(rec.ApplyLatency.P90NS).Round(time.Microsecond),
		time.Duration(rec.ApplyLatency.P99NS).Round(time.Microsecond),
		time.Duration(rec.ApplyLatency.MaxNS).Round(time.Microsecond))
	fmt.Fprintf(w, "  notify p50 %v  p90 %v  p99 %v  max %v  (%d/%d epochs seen)\n",
		time.Duration(rec.NotifyLatency.P50NS).Round(time.Microsecond),
		time.Duration(rec.NotifyLatency.P90NS).Round(time.Microsecond),
		time.Duration(rec.NotifyLatency.P99NS).Round(time.Microsecond),
		time.Duration(rec.NotifyLatency.MaxNS).Round(time.Microsecond),
		rec.Notified, rec.Committed)
}

func writeJSONFile(path string, v any) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// mergeInto appends rec to the "mutation" list of an existing fastbench
// JSON document, preserving every other key.
func mergeInto(path string, rec mutationRecord) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	var recAny any
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(b, &recAny); err != nil {
		return err
	}
	mutation, _ := doc["mutation"].([]any)
	doc["mutation"] = append(mutation, recAny)
	return writeJSONFile(path, doc)
}
