// Command fastlint is the driver for fastmatch's repo-specific analyzers
// (internal/lint). It speaks the go vet unitchecker protocol, so it runs as:
//
//	go build -o bin/fastlint ./cmd/fastlint
//	go vet -vettool=$PWD/bin/fastlint ./...
//
// Individual analyzers can be selected the same way as with go vet, e.g.
// `go vet -vettool=$PWD/bin/fastlint -cancelpoll ./...`.
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"fastmatch/internal/lint"
)

func main() {
	unitchecker.Main(lint.Analyzers()...)
}
