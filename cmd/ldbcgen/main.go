// Command ldbcgen generates LDBC-SNB-like benchmark datasets and writes
// them in the module's graph formats.
//
// Usage:
//
//	ldbcgen -dataset DG03 -o dg03.bin -format binary
//	ldbcgen -sf 2.5 -base 500 -seed 7 -o custom.txt
//	ldbcgen -dataset DG01 -stats
package main

import (
	"flag"
	"fmt"
	"os"

	"fastmatch/graph"
	"fastmatch/ldbc"
)

func main() {
	var (
		dataset = flag.String("dataset", "", "preset: DG01/DG03/DG10/DG60")
		sf      = flag.Float64("sf", 0, "custom scale factor (alternative to -dataset)")
		base    = flag.Int("base", 0, "BasePersons (persons at scale factor 1; default 250)")
		seed    = flag.Int64("seed", 42, "generator seed")
		out     = flag.String("o", "", "output file (omit to only print stats)")
		format  = flag.String("format", "text", "output format: text or binary")
		stats   = flag.Bool("stats", false, "print Table III-style statistics")
	)
	flag.Parse()

	var cfg ldbc.Config
	switch {
	case *dataset != "":
		var err error
		cfg, err = ldbc.Dataset(*dataset)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ldbcgen:", err)
			os.Exit(2)
		}
	case *sf > 0:
		cfg = ldbc.Config{ScaleFactor: *sf}
	default:
		fmt.Fprintln(os.Stderr, "ldbcgen: need -dataset or -sf")
		os.Exit(2)
	}
	cfg.Seed = *seed
	if *base > 0 {
		cfg.BasePersons = *base
	}

	g := ldbc.Generate(cfg)
	if *stats || *out == "" {
		name := *dataset
		if name == "" {
			name = fmt.Sprintf("SF%.2f", *sf)
		}
		fmt.Println(graph.ComputeStats(name, g))
		for l, c := range graph.LabelHistogram(g) {
			fmt.Printf("  %-11s %d\n", ldbc.LabelNames[l], c)
		}
	}
	if *out != "" {
		if err := graph.SaveFile(*out, *format, g); err != nil {
			fmt.Fprintln(os.Stderr, "ldbcgen:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%s)\n", *out, *format)
	}
}
