package fast

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrBreakerOpen reports a call rejected because the tenant's circuit
// breaker is open: recent calls failed hard back to back, and the router is
// fast-failing new ones for the cooldown instead of feeding a tenant whose
// engine keeps blowing up. Errors returned by the Router wrap it, so
// errors.Is(err, ErrBreakerOpen) identifies breaker sheds regardless of the
// message; the HTTP front end maps it to 503 "breaker_open".
var ErrBreakerOpen = errors.New("circuit breaker open")

// Breaker defaults: BreakerOptions zero values mean a breaker that trips
// after DefaultBreakerThreshold consecutive hard failures and probes again
// after DefaultBreakerCooldown.
const (
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = time.Second
)

// BreakerOptions configures the per-tenant circuit breaker every routed
// call passes through. The breaker watches hard failures only — a call that
// returns no usable Result for a reason that is the engine's fault, such as
// a recovered kernel panic or an exhausted device-retry budget. Partial
// results, deadline and cancellation cut-offs, and admission sheds are
// service under load, not evidence of a broken engine, and never move the
// breaker.
//
// State machine: Threshold consecutive hard failures trip the breaker open;
// open calls are shed immediately with ErrBreakerOpen; after Cooldown one
// probe call is admitted (half-open) — if it succeeds the breaker closes
// and the failure streak resets, if it fails hard the breaker re-opens for
// another cooldown.
type BreakerOptions struct {
	// Threshold is the consecutive hard-failure count that trips the
	// breaker. 0 means DefaultBreakerThreshold; negative disables the
	// breaker entirely.
	Threshold int
	// Cooldown is how long an open breaker sheds before admitting a probe.
	// 0 means DefaultBreakerCooldown.
	Cooldown time.Duration
}

// breaker state constants, exported through GraphStats.BreakerState.
const (
	breakerClosed   = "closed"
	breakerOpen     = "open"
	breakerHalfOpen = "half_open"
)

// breaker is one tenant's circuit breaker. A nil *breaker is a disabled
// breaker: allow admits everything and records nothing. It lives on the
// routerGraph next to the counters, so it survives SwapGraph — a swap
// replaces the graph, not the evidence that the tenant's serving path was
// just failing.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable clock for tests

	mu          sync.Mutex
	state       string
	consecutive int       // hard failures in a row while closed
	openedAt    time.Time // when the breaker last tripped
	probing     bool      // a half-open probe is in flight
	opens       int64     // times the breaker tripped open (incl. re-opens)
	shed        int64     // calls rejected with ErrBreakerOpen
}

// newBreaker builds a breaker from opts, or nil when opts disables it.
func newBreaker(opts BreakerOptions) *breaker {
	if opts.Threshold < 0 {
		return nil
	}
	b := &breaker{threshold: opts.Threshold, cooldown: opts.Cooldown, now: time.Now, state: breakerClosed}
	if b.threshold == 0 {
		b.threshold = DefaultBreakerThreshold
	}
	if b.cooldown <= 0 {
		b.cooldown = DefaultBreakerCooldown
	}
	return b
}

// allow gates one routed call. On admission it returns a done callback the
// caller MUST invoke exactly once with the call's final error (nil for
// success); on rejection done is nil and err wraps ErrBreakerOpen. A nil
// breaker admits everything with a nil done.
func (b *breaker) allow() (done func(error), err error) {
	if b == nil {
		return nil, nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			b.shed++
			return nil, ErrBreakerOpen
		}
		// Cooldown over: this call becomes the half-open probe.
		b.state = breakerHalfOpen
		b.probing = true
		return b.finishProbe, nil
	case breakerHalfOpen:
		if b.probing {
			b.shed++
			return nil, ErrBreakerOpen
		}
		b.probing = true
		return b.finishProbe, nil
	default:
		return b.finish, nil
	}
}

// breakerVerdict classifies a routed call's outcome for the breaker.
type breakerVerdict int

const (
	verdictSuccess breakerVerdict = iota
	verdictNeutral                // shed, deadline, cancellation: no evidence either way
	verdictFailure                // hard failure: the engine's fault
)

// classify maps a routed call's final error to a breaker verdict. Hard
// failure means the engine blew up — a recovered panic, an exhausted device
// retry budget, anything that is not the caller's own deadline,
// cancellation or an admission-controller shed.
func classify(err error) breakerVerdict {
	switch {
	case err == nil:
		return verdictSuccess
	case errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, ErrQueueFull),
		errors.Is(err, ErrDeadlineDoomed),
		errors.Is(err, ErrQueueTimeout):
		return verdictNeutral
	}
	return verdictFailure
}

// finish records a closed-state call's outcome.
func (b *breaker) finish(callErr error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch classify(callErr) {
	case verdictSuccess:
		b.consecutive = 0
	case verdictFailure:
		b.consecutive++
		if b.consecutive >= b.threshold {
			b.trip()
		}
	}
}

// finishProbe records the half-open probe's outcome.
func (b *breaker) finishProbe(callErr error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if b.state != breakerHalfOpen {
		return // a concurrent trip already moved the state
	}
	switch classify(callErr) {
	case verdictSuccess:
		b.state = breakerClosed
		b.consecutive = 0
	case verdictFailure:
		b.trip()
	default:
		// The probe was cut short by its caller: no evidence either way,
		// stay half-open and let the next call probe.
	}
}

// trip opens the breaker. Callers hold b.mu.
func (b *breaker) trip() {
	b.state = breakerOpen
	b.openedAt = b.now()
	b.consecutive = 0
	b.opens++
}

// snapshot reports the breaker's state for GraphStats. A nil breaker is
// closed with zero counters (disabled breakers never shed).
func (b *breaker) snapshot() (state string, opens, shed int64) {
	if b == nil {
		return breakerClosed, 0, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	// An open breaker whose cooldown has lapsed reports half-open: the next
	// call will probe, and dashboards should see the recovery attempt.
	state = b.state
	if state == breakerOpen && b.now().Sub(b.openedAt) >= b.cooldown {
		state = breakerHalfOpen
	}
	return state, b.opens, b.shed
}
