package fast_test

import (
	"fmt"

	fast "fastmatch"
	"fastmatch/graph"
	"fastmatch/ldbc"
)

// ExampleMatch runs the paper's Fig. 1 query end to end through the
// CPU–FPGA pipeline.
func ExampleMatch() {
	// Fig. 1(b)'s data graph (labels A=0 B=1 C=2 D=3 E=4, 0-based ids).
	b := graph.NewBuilder(12, 14)
	for _, l := range []graph.Label{0, 0, 2, 1, 2, 1, 2, 3, 3, 3, 4, 4} {
		b.AddVertex(l)
	}
	for _, e := range [][2]graph.VertexID{
		{0, 3}, {0, 2}, {0, 6}, {3, 2}, {2, 8}, {1, 5}, {1, 4},
		{5, 4}, {5, 6}, {4, 9}, {6, 9}, {5, 7}, {6, 10}, {8, 11},
	} {
		b.AddEdge(e[0], e[1])
	}
	g := b.MustBuild()
	q := graph.MustQuery("fig1", []graph.Label{0, 1, 2, 3},
		[][2]graph.QueryVertex{{0, 1}, {0, 2}, {1, 2}, {2, 3}})

	res, err := fast.Match(q, g, &fast.Options{CollectEmbeddings: true})
	if err != nil {
		panic(err)
	}
	fmt.Println("embeddings:", res.Count)
	for _, e := range res.Embeddings {
		fmt.Println(e)
	}
	// Output:
	// embeddings: 2
	// [0 3 2 8]
	// [1 5 4 9]
}

// ExampleRunBaseline compares FAST's count with a CPU baseline.
func ExampleRunBaseline() {
	g := ldbc.Generate(ldbc.Config{ScaleFactor: 1, Seed: 42})
	q, _ := ldbc.QueryByName("q2")

	pipeline, _ := fast.Match(q, g, nil)
	ceci, _ := fast.RunBaseline(fast.BaselineCECI, q, g, fast.BaselineOptions{})
	fmt.Println("counts agree:", pipeline.Count == ceci.Count)
	// Output:
	// counts agree: true
}

// ExampleEstimateWorkload shows the scheduler's workload DP, which upper
// bounds the true embedding count (false positives are ignored).
func ExampleEstimateWorkload() {
	g := ldbc.Generate(ldbc.Config{ScaleFactor: 1, Seed: 42})
	q, _ := ldbc.QueryByName("q0")
	w := fast.EstimateWorkload(q, g)
	n, _ := fast.Count(q, g)
	fmt.Println("estimate bounds count:", w >= float64(n))
	// Output:
	// estimate bounds count: true
}
