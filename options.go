package fast

import (
	"context"
	"time"

	"fastmatch/internal/host"
)

// ErrCanceled is the error a context-cancelled match returns alongside its
// partial Result. It aliases context.Canceled, so errors.Is works against
// either name; a deadline expiry returns context.DeadlineExceeded instead.
var ErrCanceled = context.Canceled

// MatchOption is a per-call override for MatchContext, Engine.MatchContext,
// Engine.MatchStream and Engine.MatchBatchContext. Per-call options change
// only how one call executes — budget, deadline, materialisation — never
// the query plan, so one Engine serves callers with different budgets
// without re-planning.
type MatchOption func(*callOptions)

// callOptions is the resolved per-call state. Pointer fields distinguish
// "not set" from an explicit zero — that is what makes WithDelta(0) (force
// everything to the FPGA) expressible where the legacy Options.Delta field
// historically could not.
type callOptions struct {
	limit   int64
	timeout time.Duration
	collect *bool
	delta   *float64
}

// WithLimit stops the call after n embeddings. The count is exact and
// deterministic — min(n, total) — regardless of Workers or
// PartitionWorkers. A limit stop is a bounded query succeeding: the Result
// comes back with Partial set and a nil error. n <= 0 means unlimited.
func WithLimit(n int64) MatchOption {
	return func(c *callOptions) {
		if n < 0 {
			n = 0
		}
		c.limit = n
	}
}

// WithTimeout bounds the call's wall-clock time, on top of whatever
// deadline the caller's context already carries (the effective deadline is
// the earlier of the two). An expired budget stops the pipeline at its next
// check point and the call returns the partial Result with
// context.DeadlineExceeded. d <= 0 means no per-call timeout.
func WithTimeout(d time.Duration) MatchOption {
	return func(c *callOptions) { c.timeout = d }
}

// WithCollect overrides Options.CollectEmbeddings for this call:
// WithCollect(true) materialises matches in Result.Embeddings,
// WithCollect(false) keeps only the count.
func WithCollect(collect bool) MatchOption {
	return func(c *callOptions) { c.collect = &collect }
}

// WithDelta overrides the CPU workload share δ for this call, including
// the explicit zero: WithDelta(0) sends everything to the FPGA even when
// the engine's variant defaults to DefaultDelta. δ outside [0, 1) fails
// the call.
func WithDelta(d float64) MatchOption {
	return func(c *callOptions) { c.delta = &d }
}

// resolveCall folds a call's options into one callOptions.
func resolveCall(opts []MatchOption) callOptions {
	var c callOptions
	for _, o := range opts {
		if o != nil {
			o(&c)
		}
	}
	return c
}

// apply lays the per-call overrides over the host configuration.
func (c callOptions) apply(cfg *host.Config) {
	if c.limit > 0 {
		cfg.Limit = c.limit
	}
	if c.collect != nil {
		cfg.Collect = *c.collect
	}
	if c.delta != nil {
		cfg.Delta = *c.delta
	}
}

// callContext normalises ctx and applies WithTimeout. The returned cancel
// must be called when the match returns.
func (c callOptions) callContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if c.timeout > 0 {
		return context.WithTimeout(ctx, c.timeout)
	}
	return ctx, func() {}
}
