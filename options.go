package fast

import (
	"context"
	"fmt"
	"time"

	"fastmatch/internal/host"
)

// ErrCanceled is the error a context-cancelled match returns alongside its
// partial Result. It aliases context.Canceled, so errors.Is works against
// either name; a deadline expiry returns context.DeadlineExceeded instead.
var ErrCanceled = context.Canceled

// MatchOption is a per-call override for MatchContext, Engine.MatchContext,
// Engine.MatchStream, Engine.MatchBatchContext and the Router's Match
// methods. Per-call options change only how one call executes — budget,
// deadline, materialisation — never the query plan, so one Engine serves
// callers with different budgets without re-planning.
type MatchOption func(*callOptions)

// callOptions is the resolved per-call state. Pointer fields and set flags
// distinguish "not set" from an explicit zero — that is what makes
// WithDelta(0) (force everything to the FPGA) and WithLimit(0) (lift a
// tenant's default limit back to unlimited) expressible where a bare zero
// value historically could not be.
type callOptions struct {
	limit     int64
	limitSet  bool
	timeout   time.Duration
	collect   *bool
	delta     *float64
	weight    int
	weightSet bool
}

// WithLimit stops the call after n embeddings. The count is exact and
// deterministic — min(n, total) — regardless of Workers or
// PartitionWorkers. A limit stop is a bounded query succeeding: the Result
// comes back with Partial set and a nil error. n == 0 means unlimited, and
// is an explicit override: under a Router graph's default limit,
// WithLimit(0) lifts the call back to unlimited. A negative n fails the
// call up front, before any planning — it is never silently normalised.
func WithLimit(n int64) MatchOption {
	return func(c *callOptions) {
		c.limit = n
		c.limitSet = true
	}
}

// WithTimeout bounds the call's wall-clock time, on top of whatever
// deadline the caller's context already carries (the effective deadline is
// the earlier of the two). An expired budget stops the pipeline at its next
// check point and the call returns the partial Result with
// context.DeadlineExceeded. d == 0 means no per-call timeout; it does not
// lift a Router graph's default timeout — a tenant deadline is an SLO
// ceiling, callers can only tighten it. A negative d fails the call up
// front, before any planning — it is never silently ignored.
func WithTimeout(d time.Duration) MatchOption {
	return func(c *callOptions) { c.timeout = d }
}

// WithWeight sets a graph's share weight of the Router's worker budget,
// used as an AddGraph default: under contention each tenant is guaranteed
// a slice of the budget proportional to its weight (at least one slot),
// enforced by the Router's admission controller. w must be >= 1.
// Unregistered weights default to 1 (symmetric sharing). As a per-call
// option it validates but has no effect — admission weights belong to the
// tenant, not the call.
func WithWeight(w int) MatchOption {
	return func(c *callOptions) {
		c.weight = w
		c.weightSet = true
	}
}

// WithCollect overrides Options.CollectEmbeddings for this call:
// WithCollect(true) materialises matches in Result.Embeddings,
// WithCollect(false) keeps only the count.
func WithCollect(collect bool) MatchOption {
	return func(c *callOptions) { c.collect = &collect }
}

// WithDelta overrides the CPU workload share δ for this call, including
// the explicit zero: WithDelta(0) sends everything to the FPGA even when
// the engine's variant defaults to DefaultDelta. δ outside [0, 1) fails
// the call up front, before any planning.
func WithDelta(d float64) MatchOption {
	return func(c *callOptions) { c.delta = &d }
}

// resolveCall folds a call's options into one callOptions and validates the
// values, so an invalid call fails with a fast:-prefixed error before any
// planning work — in particular before an Engine records a plan-cache miss
// or occupies a cache slot for a call that can never run.
func resolveCall(opts []MatchOption) (callOptions, error) {
	var c callOptions
	for _, o := range opts {
		if o != nil {
			o(&c)
		}
	}
	if c.limitSet && c.limit < 0 {
		return c, fmt.Errorf("fast: WithLimit(%d): negative limit (use 0 for unlimited)", c.limit)
	}
	if c.timeout < 0 {
		return c, fmt.Errorf("fast: WithTimeout(%v): negative timeout (use 0 for none)", c.timeout)
	}
	if c.delta != nil && (*c.delta < 0 || *c.delta >= 1) {
		return c, fmt.Errorf("fast: WithDelta(%v): delta outside [0,1)", *c.delta)
	}
	if c.weightSet && c.weight < 1 {
		return c, fmt.Errorf("fast: WithWeight(%d): weight must be >= 1", c.weight)
	}
	return c, nil
}

// over lays the call's explicit settings on top of base (a Router graph's
// resolved defaults): fields the call set win, fields it left alone keep the
// tenant default. The set flags are what make the merge unambiguous — a
// caller's explicit WithLimit(0) must lift the default, not vanish into it.
func (c callOptions) over(base callOptions) callOptions {
	out := base
	if c.limitSet {
		out.limit, out.limitSet = c.limit, true
	}
	// A default timeout is an SLO ceiling: the caller's budget applies only
	// where it is tighter, so a generous per-call WithTimeout cannot loosen
	// the tenant deadline.
	if c.timeout > 0 && (base.timeout == 0 || c.timeout < base.timeout) {
		out.timeout = c.timeout
	}
	if c.collect != nil {
		out.collect = c.collect
	}
	if c.delta != nil {
		out.delta = c.delta
	}
	if c.weightSet {
		out.weight, out.weightSet = c.weight, true
	}
	return out
}

// asOption re-wraps an already-merged callOptions as a single MatchOption,
// so the Router can hand a call's defaults-plus-overrides to the Engine's
// public entry points as one resolved value.
func (c callOptions) asOption() MatchOption {
	return func(dst *callOptions) { *dst = c }
}

// apply lays the per-call overrides over the host configuration.
func (c callOptions) apply(cfg *host.Config) {
	if c.limitSet {
		cfg.Limit = c.limit
	}
	if c.collect != nil {
		cfg.Collect = *c.collect
	}
	if c.delta != nil {
		cfg.Delta = *c.delta
	}
}

// callContext normalises ctx and applies WithTimeout. The returned cancel
// must be called when the match returns.
func (c callOptions) callContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if c.timeout > 0 {
		return context.WithTimeout(ctx, c.timeout)
	}
	return ctx, func() {}
}
