package fast

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fastmatch/graph"
	"fastmatch/ldbc"
)

// TestServerPanicMiddleware: a panicking handler is answered with 500
// "internal" instead of killing the connection, and the panic is counted in
// Panics and /metrics. (Pre-middleware, the panic escaped ServeHTTP.)
func TestServerPanicMiddleware(t *testing.T) {
	gA, _ := routerTestGraphs()
	r := NewRouter(RouterOptions{Workers: 2, Engine: engineTestOptions(1)})
	if err := r.AddGraph("a", gA, nil); err != nil {
		t.Fatal(err)
	}
	s := NewServer(r, ServerOptions{QueryByName: func(string) (*graph.Query, error) {
		panic("resolver exploded")
	}})
	w := postJSON(t, s, "/v1/graphs/a/count", `{"query":"q1"}`)
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500; body %s", w.Code, w.Body)
	}
	var resp errorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Reason != "internal" || !strings.Contains(resp.Error, "resolver exploded") {
		t.Fatalf("envelope %+v, want internal with the panic value", resp)
	}
	if s.Panics() != 1 {
		t.Fatalf("Panics() = %d, want 1", s.Panics())
	}
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	mw := httptest.NewRecorder()
	s.ServeHTTP(mw, req)
	if !strings.Contains(mw.Body.String(), "fastmatch_panics_total 1") {
		t.Fatal("/metrics missing fastmatch_panics_total 1")
	}
}

// TestServerShutdownWaitsForInflight: Shutdown refuses new requests with
// 503 "draining" but blocks until requests already in flight finish.
func TestServerShutdownWaitsForInflight(t *testing.T) {
	gA, _ := routerTestGraphs()
	r := NewRouter(RouterOptions{Workers: 2, Engine: engineTestOptions(1)})
	if err := r.AddGraph("a", gA, nil); err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	s := NewServer(r, ServerOptions{QueryByName: func(name string) (*graph.Query, error) {
		close(entered)
		<-release // the in-flight request Shutdown must wait for
		return ldbc.QueryByName(name)
	}})

	reqDone := make(chan *httptest.ResponseRecorder, 1)
	go func() { reqDone <- postJSON(t, s, "/v1/graphs/a/count", `{"query":"q1"}`) }()
	<-entered

	shutDone := make(chan error, 1)
	go func() { shutDone <- s.Shutdown(context.Background()) }()

	// New arrivals are refused while the drain waits.
	deadline := time.After(5 * time.Second)
	for {
		w := postJSON(t, s, "/v1/graphs/a/count", `{"query":"q1"}`)
		if w.Code == http.StatusServiceUnavailable {
			if !strings.Contains(w.Body.String(), `"draining"`) {
				t.Fatalf("503 body %s missing draining reason", w.Body)
			}
			break
		}
		select {
		case <-deadline:
			t.Fatal("server never started refusing new requests")
		default:
		}
	}
	select {
	case err := <-shutDone:
		t.Fatalf("Shutdown returned %v with a request still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	select {
	case err := <-shutDone:
		if err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown did not return after the in-flight request finished")
	}
	w := <-reqDone
	if w.Code != http.StatusOK {
		t.Fatalf("in-flight request finished %d, want 200; body %s", w.Code, w.Body)
	}
}

// TestServerShutdownContextExpires: a Shutdown whose context fires with
// requests still running returns the context's error instead of hanging.
func TestServerShutdownContextExpires(t *testing.T) {
	gA, _ := routerTestGraphs()
	r := NewRouter(RouterOptions{Workers: 2, Engine: engineTestOptions(1)})
	if err := r.AddGraph("a", gA, nil); err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	s := NewServer(r, ServerOptions{QueryByName: func(name string) (*graph.Query, error) {
		close(entered)
		<-release
		return ldbc.QueryByName(name)
	}})
	reqDone := make(chan *httptest.ResponseRecorder, 1)
	go func() { reqDone <- postJSON(t, s, "/v1/graphs/a/count", `{"query":"q1"}`) }()
	<-entered
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}
	close(release)
	<-reqDone
}

// TestServerShutdownDrainsSubscriptions: a standing subscription stream is
// terminated by Shutdown with a "draining" close line — Shutdown does not
// wait behind an open-ended stream.
func TestServerShutdownDrainsSubscriptions(t *testing.T) {
	gA, _ := routerTestGraphs()
	r := NewRouter(RouterOptions{Workers: 2, Engine: engineTestOptions(1)})
	if err := r.AddGraph("a", gA, nil); err != nil {
		t.Fatal(err)
	}
	s := NewServer(r, ServerOptions{QueryByName: ldbc.QueryByName})
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/graphs/a/subscribe?query=q1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no subscribed line: %v", sc.Err())
	}
	var first subscribeLine
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil || !first.Subscribed {
		t.Fatalf("first line %s, want subscribed", sc.Bytes())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown with an open subscription: %v", err)
	}
	var last subscribeLine
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatal(err)
		}
		if last.Closed {
			break
		}
	}
	if !last.Closed || last.Reason != "draining" {
		t.Fatalf("terminal line %+v, want closed with reason draining", last)
	}
}
