package ldbc

import (
	"testing"

	"fastmatch/graph"
	"fastmatch/internal/baseline"
)

// TestSchemaRelationsExist: spot-check the generator emits every relation
// shape the queries need (persons located in cities, cities in countries,
// comments replying to posts with creators, tags typed by tag classes).
func TestSchemaRelationsExist(t *testing.T) {
	g := Generate(Config{ScaleFactor: 2, Seed: 11})
	relations := []struct {
		name string
		a, b graph.Label
	}{
		{"person-city", Person, City},
		{"city-country", City, Country},
		{"country-continent", Country, Continent},
		{"person-university", Person, University},
		{"company-country", Company, Country},
		{"post-person", Post, Person},
		{"post-forum", Post, Forum},
		{"comment-post", Comment, Post},
		{"comment-person", Comment, Person},
		{"post-tag", Post, Tag},
		{"tag-tagclass", Tag, TagClass},
		{"person-person", Person, Person},
	}
	for _, rel := range relations {
		found := false
	scan:
		for _, v := range g.VerticesWithLabel(rel.a) {
			for _, w := range g.Neighbors(v) {
				if g.Label(w) == rel.b {
					found = true
					break scan
				}
			}
		}
		if !found {
			t.Errorf("relation %s missing from generated graph", rel.name)
		}
	}
}

// TestEveryPersonHasCity: structural guarantee queries q4–q8 rely on.
func TestEveryPersonHasCity(t *testing.T) {
	g := Generate(Config{ScaleFactor: 1, Seed: 4})
	for _, p := range g.VerticesWithLabel(Person) {
		if g.DegreeWithLabel(p, City) == 0 {
			t.Fatalf("person %d has no city", p)
		}
	}
	for _, c := range g.VerticesWithLabel(City) {
		if g.DegreeWithLabel(c, Country) == 0 {
			t.Fatalf("city %d has no country", c)
		}
	}
	for _, c := range g.VerticesWithLabel(Comment) {
		if g.DegreeWithLabel(c, Post) == 0 || g.DegreeWithLabel(c, Person) == 0 {
			t.Fatalf("comment %d missing post or creator", c)
		}
	}
}

// TestQuerySelectivityOrdering: structurally stricter queries cannot have
// more embeddings: q6 (triangle in one city) ⊆ projections of q5's
// triangles, so count(q6) ≤ count(q5) × maxCityMultiplicity is loose;
// directly, adding constraints to the same vertex set reduces counts.
func TestQuerySelectivityOrdering(t *testing.T) {
	g := Generate(Config{ScaleFactor: 2, Seed: 42})
	countOf := func(name string) int64 {
		q, err := QueryByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := baseline.Backtrack(q, g, baseline.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Count
	}
	// q6 adds two more person–city edges to q5's shape (all three persons
	// in the same city): strictly more constrained per embedding of the
	// underlying triangle, so q6 ≤ q5 on any graph.
	if c5, c6 := countOf("q5"), countOf("q6"); c6 > c5 {
		t.Errorf("q6 (%d) > q5 (%d): constraint ordering violated", c6, c5)
	}
	// q3 = q2 plus a pendant tag: each q3 embedding projects to a q2
	// embedding, with multiplicity ≥ 0; both must be nonzero here.
	if c2, c3 := countOf("q2"), countOf("q3"); c2 == 0 || c3 == 0 {
		t.Errorf("q2=%d q3=%d: expected both nonzero", c2, c3)
	}
}

// TestZipfSkew: popular cities exist (the head of the Zipf distribution is
// much larger than the tail), which drives workload imbalance — the reason
// the paper needs workload estimation.
func TestZipfSkew(t *testing.T) {
	g := Generate(Config{ScaleFactor: 4, Seed: 13})
	var maxCity, minCity int
	first := true
	for _, c := range g.VerticesWithLabel(City) {
		d := g.DegreeWithLabel(c, Person)
		if first || d > maxCity {
			maxCity = d
		}
		if first || d < minCity {
			minCity = d
		}
		first = false
	}
	if maxCity < 4*(minCity+1) {
		t.Errorf("city population skew too flat: max %d vs min %d", maxCity, minCity)
	}
}

// TestKnowsDegreeKnob: the KnowsDegree knob scales the person-person
// density.
func TestKnowsDegreeKnob(t *testing.T) {
	sparse := Generate(Config{ScaleFactor: 1, Seed: 9, KnowsDegree: 4})
	dense := Generate(Config{ScaleFactor: 1, Seed: 9, KnowsDegree: 16})
	countKnows := func(g *graph.Graph) int {
		n := 0
		for _, p := range g.VerticesWithLabel(Person) {
			n += g.DegreeWithLabel(p, Person)
		}
		return n
	}
	if countKnows(dense) <= countKnows(sparse) {
		t.Error("KnowsDegree knob has no effect")
	}
}
