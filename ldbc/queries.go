package ldbc

import (
	"fmt"

	"fastmatch/graph"
)

// Queries returns q0–q8, adapted from the LDBC-SNB complex tasks the way the
// paper does (Fig. 6, following Lai et al.'s selection): node types become
// vertex labels, multi-hop edges are removed, and each query stays a
// connected, simple, labelled pattern.
//
//	q0: Person–Post–Comment–Tag–TagClass            (5-vertex path; content chain)
//	q1: TagClass–Tag–Post–Person–Person             (5-vertex path; tagged posts of friends)
//	q2: Person₁–Person₂–Post–Comment–Person₁        (4-cycle; friend replies to friend's post)
//	q3: q2's cycle + Comment–Tag pendant            (5 vertices; tagged reply between friends)
//	q4: Person₁–Person₂, Personᵢ–Cityᵢ–Country      (5-cycle; friends in two cities of one country)
//	q5: Person triangle + Person–City–Country       (triangle with geography tail)
//	q6: Person triangle all in one City–Country     (dense: 7 edges on 5 vertices)
//	q7: Person 4-cycle, two Cities, one Country     (7 vertices; largest query)
//	q8: Person triangle spanning two Cities–Country (6 vertices, 7 edges)
func Queries() []*graph.Query {
	P, Ci, Cy, Po, Cm, Tg, TC := Person, City, Country, Post, Comment, Tag, TagClass
	return []*graph.Query{
		graph.MustQuery("q0", []graph.Label{P, Po, Cm, Tg, TC},
			[][2]graph.QueryVertex{{0, 1}, {1, 2}, {2, 3}, {3, 4}}),
		graph.MustQuery("q1", []graph.Label{TC, Tg, Po, P, P},
			[][2]graph.QueryVertex{{0, 1}, {1, 2}, {2, 3}, {3, 4}}),
		graph.MustQuery("q2", []graph.Label{P, P, Po, Cm},
			[][2]graph.QueryVertex{{0, 1}, {1, 2}, {2, 3}, {3, 0}}),
		graph.MustQuery("q3", []graph.Label{P, P, Po, Cm, Tg},
			[][2]graph.QueryVertex{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {3, 4}}),
		graph.MustQuery("q4", []graph.Label{P, P, Ci, Ci, Cy},
			[][2]graph.QueryVertex{{0, 1}, {0, 2}, {1, 3}, {2, 4}, {3, 4}}),
		graph.MustQuery("q5", []graph.Label{P, P, P, Ci, Cy},
			[][2]graph.QueryVertex{{0, 1}, {1, 2}, {0, 2}, {0, 3}, {3, 4}}),
		graph.MustQuery("q6", []graph.Label{P, P, P, Ci, Cy},
			[][2]graph.QueryVertex{{0, 1}, {1, 2}, {0, 2}, {0, 3}, {1, 3}, {2, 3}, {3, 4}}),
		graph.MustQuery("q7", []graph.Label{P, P, P, P, Ci, Ci, Cy},
			[][2]graph.QueryVertex{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 4}, {2, 5}, {4, 6}, {5, 6}}),
		graph.MustQuery("q8", []graph.Label{P, P, P, Ci, Ci, Cy},
			[][2]graph.QueryVertex{{0, 1}, {1, 2}, {0, 2}, {0, 3}, {1, 4}, {3, 5}, {4, 5}}),
	}
}

// QueryByName returns the named benchmark query ("q0" … "q8").
func QueryByName(name string) (*graph.Query, error) {
	for _, q := range Queries() {
		if q.Name() == name {
			return q, nil
		}
	}
	return nil, fmt.Errorf("ldbc: unknown query %q (want q0…q8)", name)
}
