// Package ldbc generates LDBC-SNB-like social networks and the nine
// labelled queries (q0–q8) the paper evaluates (Section VII, Fig. 6).
//
// The real LDBC datagen is a Hadoop/Spark pipeline that is unavailable
// offline, so this package is the documented substitution (DESIGN.md): a
// deterministic, seeded generator producing the same 11 vertex types, the
// SNB relation shapes (knows, isLocatedIn, isPartOf, hasCreator, replyOf,
// hasTag, hasType, …), a power-law person–knows–person degree distribution
// with triangle closure, and a scale-factor knob mirroring DG01…DG60. The
// experiments depend on label skew, heavy-tailed degrees and the relational
// shape — all reproduced here — rather than on the exact SNB tuples.
package ldbc

import (
	"fmt"
	"math/rand"

	"fastmatch/graph"
)

// The 11 vertex labels of the benchmark datasets (Table III: "# Labels 11").
const (
	Person graph.Label = iota
	City
	Country
	Continent
	University
	Company
	Forum
	Post
	Comment
	Tag
	TagClass
)

// LabelNames maps labels to their SNB names.
var LabelNames = [...]string{
	"Person", "City", "Country", "Continent", "University", "Company",
	"Forum", "Post", "Comment", "Tag", "TagClass",
}

// NumLabels is the size of the label alphabet.
const NumLabels = len(LabelNames)

// Config parameterises the generator.
type Config struct {
	// ScaleFactor plays the role of the paper's DGx scale factor x: entity
	// counts grow linearly in it.
	ScaleFactor float64
	// BasePersons is the number of Person vertices at ScaleFactor 1
	// (default 250; the paper's SF 1 has ~9.9k persons per LDBC spec, but
	// reproduction experiments run at laptop scale — see EXPERIMENTS.md).
	BasePersons int
	// KnowsDegree is the average person–knows–person degree (default 10).
	KnowsDegree int
	// Seed makes generation deterministic.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.ScaleFactor <= 0 {
		c.ScaleFactor = 1
	}
	if c.BasePersons <= 0 {
		c.BasePersons = 250
	}
	if c.KnowsDegree <= 0 {
		c.KnowsDegree = 10
	}
	return c
}

// Dataset returns the generator configuration for a named dataset DG01,
// DG03, DG10 or DG60, preserving the paper's 1:3:10:60 scale ratios.
func Dataset(name string) (Config, error) {
	sf := map[string]float64{"DG01": 1, "DG03": 3, "DG10": 10, "DG60": 60}
	f, ok := sf[name]
	if !ok {
		return Config{}, fmt.Errorf("ldbc: unknown dataset %q (want DG01/DG03/DG10/DG60)", name)
	}
	return Config{ScaleFactor: f, Seed: 42}, nil
}

// DatasetNames lists the benchmark datasets in ascending size.
func DatasetNames() []string { return []string{"DG01", "DG03", "DG10", "DG60"} }

// Generate builds the social network for cfg.
func Generate(cfg Config) *graph.Graph {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	persons := int(float64(cfg.BasePersons) * cfg.ScaleFactor)
	if persons < 10 {
		persons = 10
	}
	cities := clampMin(persons/25, 8)
	countries := clampMin(cities/4, 4)
	continents := 6
	universities := cities
	companies := countries * 3
	forums := persons / 2
	posts := persons * 3
	comments := persons * 6
	tags := clampMin(persons/5, 20)
	tagClasses := clampMin(tags/10, 5)

	nv := persons + cities + countries + continents + universities +
		companies + clampMin(forums, 1) + posts + comments + tags + tagClasses
	b := graph.NewBuilder(nv, nv*6)

	// Contiguous id blocks per type.
	personAt := b.AddVertices(Person, persons)
	cityAt := b.AddVertices(City, cities)
	countryAt := b.AddVertices(Country, countries)
	continentAt := b.AddVertices(Continent, continents)
	universityAt := b.AddVertices(University, universities)
	companyAt := b.AddVertices(Company, companies)
	forumAt := b.AddVertices(Forum, clampMin(forums, 1))
	postAt := b.AddVertices(Post, posts)
	commentAt := b.AddVertices(Comment, comments)
	tagAt := b.AddVertices(Tag, tags)
	tagClassAt := b.AddVertices(TagClass, tagClasses)
	forums = clampMin(forums, 1)

	pick := func(base graph.VertexID, n int) graph.VertexID {
		return base + graph.VertexID(rng.Intn(n))
	}

	// Geography: city –isPartOf→ country –isPartOf→ continent. Zipf-ish
	// city→country assignment gives some countries many cities (needed by
	// the multi-city queries q4/q7/q8).
	cityCountry := make([]graph.VertexID, cities)
	for i := 0; i < cities; i++ {
		c := countryAt + graph.VertexID(zipfIndex(rng, countries))
		cityCountry[i] = c
		b.AddEdge(cityAt+graph.VertexID(i), c)
	}
	for i := 0; i < countries; i++ {
		b.AddEdge(countryAt+graph.VertexID(i), pick(continentAt, continents))
	}
	for i := 0; i < universities; i++ {
		b.AddEdge(universityAt+graph.VertexID(i), cityAt+graph.VertexID(i%cities))
	}
	for i := 0; i < companies; i++ {
		b.AddEdge(companyAt+graph.VertexID(i), countryAt+graph.VertexID(i%countries))
	}

	// Persons: located in a Zipf city, study/work relations, and a
	// preferential-attachment knows graph with triangle closure so the
	// clustering the knows-triangle queries (q5, q6) rely on exists.
	personCity := make([]graph.VertexID, persons)
	for i := 0; i < persons; i++ {
		city := graph.VertexID(zipfIndex(rng, cities))
		personCity[i] = cityAt + city
		b.AddEdge(personAt+graph.VertexID(i), cityAt+city)
		b.AddEdge(personAt+graph.VertexID(i), pick(universityAt, universities))
		if rng.Float64() < 0.7 {
			b.AddEdge(personAt+graph.VertexID(i), pick(companyAt, companies))
		}
	}
	m := cfg.KnowsDegree / 2
	if m < 1 {
		m = 1
	}
	knows := make([][]graph.VertexID, persons) // person index → known person ids
	endpoints := make([]graph.VertexID, 0, persons*m*2)
	endpoints = append(endpoints, personAt)
	addKnows := func(a, bID graph.VertexID) {
		if a == bID {
			return
		}
		b.AddEdge(a, bID)
		knows[a-personAt] = append(knows[a-personAt], bID)
		knows[bID-personAt] = append(knows[bID-personAt], a)
		endpoints = append(endpoints, a, bID)
	}
	for i := 1; i < persons; i++ {
		v := personAt + graph.VertexID(i)
		for j := 0; j < m && j < i; j++ {
			var w graph.VertexID
			if rng.Float64() < 0.2 {
				w = personAt + graph.VertexID(rng.Intn(i))
			} else {
				w = endpoints[rng.Intn(len(endpoints))]
			}
			addKnows(v, w)
		}
		// Triangle closure: befriend a friend-of-friend.
		if friends := knows[i]; len(friends) >= 2 && rng.Float64() < 0.5 {
			f := friends[rng.Intn(len(friends))]
			if ff := knows[f-personAt]; len(ff) > 0 {
				addKnows(v, ff[rng.Intn(len(ff))])
			}
		}
	}

	// Tags: tag –hasType→ tagClass; tagClass hierarchy.
	for i := 0; i < tags; i++ {
		b.AddEdge(tagAt+graph.VertexID(i), tagClassAt+graph.VertexID(zipfIndex(rng, tagClasses)))
	}
	for i := 1; i < tagClasses; i++ {
		b.AddEdge(tagClassAt+graph.VertexID(i), tagClassAt+graph.VertexID(rng.Intn(i)))
	}

	// Forums: moderator, a few members, a couple of tags.
	for i := 0; i < forums; i++ {
		f := forumAt + graph.VertexID(i)
		b.AddEdge(f, pick(personAt, persons))
		for j := 0; j < 3; j++ {
			b.AddEdge(f, pick(personAt, persons))
		}
		b.AddEdge(f, pick(tagAt, tags))
	}

	// Posts: container forum, creator, 1–2 tags.
	postCreator := make([]graph.VertexID, posts)
	for i := 0; i < posts; i++ {
		p := postAt + graph.VertexID(i)
		creator := pick(personAt, persons)
		postCreator[i] = creator
		b.AddEdge(p, creator)
		b.AddEdge(p, pick(forumAt, forums))
		b.AddEdge(p, pick(tagAt, tags))
		if rng.Float64() < 0.5 {
			b.AddEdge(p, pick(tagAt, tags))
		}
	}

	// Comments: replyOf a post, creator biased towards friends of the post
	// creator (making the comment-cycle queries q2/q3 selective but
	// non-empty, as in real reply networks), and usually one tag.
	for i := 0; i < comments; i++ {
		c := commentAt + graph.VertexID(i)
		post := rng.Intn(posts)
		b.AddEdge(c, postAt+graph.VertexID(post))
		creator := pick(personAt, persons)
		if friends := knows[postCreator[post]-personAt]; len(friends) > 0 && rng.Float64() < 0.4 {
			creator = friends[rng.Intn(len(friends))]
		}
		b.AddEdge(c, creator)
		if rng.Float64() < 0.7 {
			b.AddEdge(c, pick(tagAt, tags))
		}
	}

	return b.MustBuild()
}

func clampMin(v, lo int) int {
	if v < lo {
		return lo
	}
	return v
}

// zipfIndex samples an index in [0, n) with a Zipf-like skew, giving the
// label-internal skew (popular cities, tags, tag classes) that real SNB
// data exhibits.
func zipfIndex(rng *rand.Rand, n int) int {
	if n <= 1 {
		return 0
	}
	// Inverse-power sampling, exponent ≈1.3 truncated to n.
	u := rng.Float64()
	idx := int(float64(n) * (u * u * u)) // cubic bias towards 0
	if idx >= n {
		idx = n - 1
	}
	return idx
}
