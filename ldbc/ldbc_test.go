package ldbc

import (
	"testing"

	"fastmatch/graph"
	"fastmatch/internal/baseline"
)

func TestGenerateValidAndDeterministic(t *testing.T) {
	cfg := Config{ScaleFactor: 1, Seed: 7}
	g := Generate(cfg)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	g2 := Generate(cfg)
	if g.NumVertices() != g2.NumVertices() || g.NumEdges() != g2.NumEdges() {
		t.Errorf("same seed, different graphs: %v vs %v", g, g2)
	}
	g3 := Generate(Config{ScaleFactor: 1, Seed: 8})
	if g.NumEdges() == g3.NumEdges() {
		t.Log("warning: different seeds gave identical edge counts (possible, unlikely)")
	}
}

func TestGenerateUsesAll11Labels(t *testing.T) {
	g := Generate(Config{ScaleFactor: 1, Seed: 1})
	if g.NumLabels() != NumLabels {
		t.Errorf("NumLabels = %d, want %d", g.NumLabels(), NumLabels)
	}
	for l := 0; l < NumLabels; l++ {
		if g.LabelFrequency(graph.Label(l)) == 0 {
			t.Errorf("label %s unused", LabelNames[l])
		}
	}
	s := graph.ComputeStats("DG-test", g)
	if s.NumLabels != 11 {
		t.Errorf("stats labels = %d, want 11 (Table III)", s.NumLabels)
	}
}

func TestScaleFactorGrowsLinearly(t *testing.T) {
	g1 := Generate(Config{ScaleFactor: 1, Seed: 5})
	g3 := Generate(Config{ScaleFactor: 3, Seed: 5})
	ratioV := float64(g3.NumVertices()) / float64(g1.NumVertices())
	if ratioV < 2.2 || ratioV > 3.8 {
		t.Errorf("vertex ratio DG03/DG01 = %.2f, want ≈3", ratioV)
	}
	ratioE := float64(g3.NumEdges()) / float64(g1.NumEdges())
	if ratioE < 2.2 || ratioE > 3.8 {
		t.Errorf("edge ratio = %.2f, want ≈3", ratioE)
	}
}

func TestKnowsIsHeavyTailed(t *testing.T) {
	g := Generate(Config{ScaleFactor: 4, Seed: 9})
	// Person degrees should have a heavy tail: max person degree several
	// times the average (Table III shows D_G ≫ d̄_G).
	var sum, max int
	persons := g.VerticesWithLabel(Person)
	for _, v := range persons {
		d := g.Degree(v)
		sum += d
		if d > max {
			max = d
		}
	}
	avg := float64(sum) / float64(len(persons))
	if float64(max) < 4*avg {
		t.Errorf("person degree max %d vs avg %.1f: tail not heavy", max, avg)
	}
}

func TestDatasetPresets(t *testing.T) {
	var prev float64
	for _, name := range DatasetNames() {
		cfg, err := Dataset(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if cfg.ScaleFactor <= prev {
			t.Errorf("%s scale %v not increasing", name, cfg.ScaleFactor)
		}
		prev = cfg.ScaleFactor
	}
	if _, err := Dataset("DG99"); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestQueriesWellFormed(t *testing.T) {
	qs := Queries()
	if len(qs) != 9 {
		t.Fatalf("got %d queries, want 9", len(qs))
	}
	for i, q := range qs {
		wantName := "q" + string(rune('0'+i))
		if q.Name() != wantName {
			t.Errorf("query %d named %q", i, q.Name())
		}
	}
	// Structural spot checks against Fig. 6's shapes.
	q2, _ := QueryByName("q2")
	if q2.NumVertices() != 4 || q2.NumEdges() != 4 {
		t.Errorf("q2 is not a 4-cycle: %v", q2)
	}
	q6, _ := QueryByName("q6")
	if q6.NumEdges() != 7 {
		t.Errorf("q6 has %d edges, want 7", q6.NumEdges())
	}
	q7, _ := QueryByName("q7")
	if q7.NumVertices() != 7 {
		t.Errorf("q7 has %d vertices, want 7", q7.NumVertices())
	}
	if _, err := QueryByName("q9"); err == nil {
		t.Error("unknown query accepted")
	}
}

// TestQueriesHaveEmbeddings: on a moderate graph, every benchmark query must
// produce at least one match — otherwise the Fig. 14 comparison degenerates.
func TestQueriesHaveEmbeddings(t *testing.T) {
	g := Generate(Config{ScaleFactor: 4, Seed: 42})
	for _, q := range Queries() {
		res, err := baseline.Backtrack(q, g, baseline.Options{Limit: 1})
		if err != nil {
			t.Fatalf("%s: %v", q.Name(), err)
		}
		if res.Count == 0 {
			t.Errorf("%s has no embeddings on SF4", q.Name())
		}
	}
}

func TestTinyScaleFactorStillValid(t *testing.T) {
	g := Generate(Config{ScaleFactor: 0.01, Seed: 3})
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.NumVertices() == 0 {
		t.Error("empty graph")
	}
}
