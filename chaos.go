package fast

import (
	"fmt"
	"time"

	"fastmatch/internal/faultinject"
	"fastmatch/internal/host"
)

// Fault kinds accepted by FaultRule.Kind.
const (
	// FaultTransient fails the call with a retryable error; the device or
	// kernel is healthy again on the next attempt. The pipeline retries it
	// under the RetryPolicy, so a run whose transient faults all retry away
	// completes with its full, byte-identical counts.
	FaultTransient = "transient"
	// FaultDeath permanently kills the device behind the site; the pipeline
	// redistributes its queued partitions to surviving devices or the CPU
	// enumeration path, again completing with identical counts.
	FaultDeath = "death"
	// FaultPanic panics at the call site, modelling a crashed worker; the
	// recover barriers convert it into a typed error on a partial Result.
	FaultPanic = "panic"
)

// Fault sites. Device staging sites are per card (FaultSiteDevice); the
// kernel-launch and CPU δ-share sites are shared by all workers.
const (
	FaultSiteKernel    = faultinject.SiteKernel
	FaultSiteEnumerate = faultinject.SiteEnumerate
)

// FaultSiteDevice names card id's DRAM staging site.
func FaultSiteDevice(id int) string { return faultinject.SiteDeviceStage(id) }

// FaultRule is one fault schedule bound to a site. Trigger conditions
// (Nth, EveryNth, Rate) are OR-ed; the first matching rule per call wins.
type FaultRule struct {
	// Site the rule applies to: FaultSiteKernel, FaultSiteEnumerate, or
	// FaultSiteDevice(id).
	Site string
	// Kind is FaultTransient (default), FaultDeath or FaultPanic.
	Kind string
	// Nth fires on these 1-based call numbers at the site.
	Nth []int64
	// EveryNth fires on every multiple of this call number (> 0).
	EveryNth int64
	// Rate fires with this probability per call, drawn deterministically
	// from the chaos seed.
	Rate float64
	// Once limits the rule to a single firing — the natural shape for a
	// death schedule.
	Once bool
	// Delay adds modelled (device sites) or real (kernel site) latency on a
	// match; a transient rule carrying only a Delay is a pure latency spike
	// — slow, not failed.
	Delay time.Duration
}

// ChaosConfig schedules deterministic fault injection into a run: the same
// Seed and Rules against the same call sequence inject the same faults, so
// a schedule that trips a bug replays byte-identically. The degraded-run
// contract: a run whose injected faults are all absorbed — transients
// retried away, dead devices' partitions redistributed — returns the same
// counts as the fault-free run, just slower; only exhausted retries and
// panics surface as errors, always with Result.Partial set and a typed
// error (*KernelPanicError or *DeviceFaultError).
type ChaosConfig struct {
	Seed  int64
	Rules []FaultRule
}

// KernelPanicError reports a panic recovered inside the pipeline — the run
// returns its partial Result with this error instead of crashing the
// process. Match it with errors.As.
type KernelPanicError = host.KernelPanicError

// DeviceFaultError reports a device fault the retry budget could not
// absorb; the run returns its partial Result with this error. Match it
// with errors.As.
type DeviceFaultError = host.DeviceFaultError

func (cc *ChaosConfig) toInjector() (*faultinject.Injector, error) {
	if cc == nil {
		return nil, nil
	}
	rules := make([]faultinject.Rule, len(cc.Rules))
	for i, fr := range cc.Rules {
		var kind faultinject.Kind
		switch fr.Kind {
		case FaultTransient, "":
			kind = faultinject.Transient
		case FaultDeath:
			kind = faultinject.Death
		case FaultPanic:
			kind = faultinject.Panic
		default:
			return nil, fmt.Errorf("fast: unknown fault kind %q", fr.Kind)
		}
		if fr.Site == "" {
			return nil, fmt.Errorf("fast: fault rule %d has no site", i)
		}
		rules[i] = faultinject.Rule{
			Site:     fr.Site,
			Kind:     kind,
			Nth:      fr.Nth,
			EveryNth: fr.EveryNth,
			Rate:     fr.Rate,
			Once:     fr.Once,
			Delay:    fr.Delay,
		}
	}
	return faultinject.New(cc.Seed, rules...), nil
}

// RetryPolicy bounds the backoff-retry applied to transient device faults;
// see host.RetryPolicy. The zero value means the host defaults
// (host.DefaultRetryMax retries from host.DefaultRetryBase up to
// host.DefaultRetryCap); Max < 0 disables retries.
type RetryPolicy struct {
	Max  int
	Base time.Duration
	Cap  time.Duration
}

func (p RetryPolicy) toHost() host.RetryPolicy {
	return host.RetryPolicy{Max: p.Max, Base: p.Base, Cap: p.Cap}
}
