package fast

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"fastmatch/graph"
	"fastmatch/ldbc"
)

func serverFixture(t *testing.T, workers, maxQueue int) (*Server, *Router, *graph.Graph) {
	t.Helper()
	gA, _ := routerTestGraphs()
	r := NewRouter(RouterOptions{Workers: workers, Engine: engineTestOptions(1), MaxQueue: maxQueue})
	if err := r.AddGraph("a", gA, nil); err != nil {
		t.Fatal(err)
	}
	return NewServer(r, ServerOptions{QueryByName: ldbc.QueryByName}), r, gA
}

func postJSON(t *testing.T, h http.Handler, url, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, url, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// TestServerCount: the unary endpoint serves a named query and an explicit
// labels+edges query, both matching the Go API's count.
func TestServerCount(t *testing.T) {
	s, _, gA := serverFixture(t, 2, 0)
	q1, err := ldbc.QueryByName("q1")
	if err != nil {
		t.Fatal(err)
	}
	want := routerWant(t, q1, gA)

	w := postJSON(t, s, "/v1/graphs/a/count", `{"query":"q1"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", w.Code, w.Body)
	}
	var resp countResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != want || resp.Partial || resp.Graph != "a" || resp.Query != "q1" {
		t.Errorf("response %+v, want count %d on graph a", resp, want)
	}

	// The same query spelled out explicitly must agree.
	var labels []graph.Label
	var edges [][2]int
	for u := 0; u < q1.NumVertices(); u++ {
		labels = append(labels, q1.Label(u))
		for _, v := range q1.Neighbors(u) {
			if u < v {
				edges = append(edges, [2]int{u, v})
			}
		}
	}
	body, _ := json.Marshal(matchRequest{Labels: labels, Edges: edges})
	w = postJSON(t, s, "/v1/graphs/a/count", string(body))
	if w.Code != http.StatusOK {
		t.Fatalf("explicit query status %d, body %s", w.Code, w.Body)
	}
	resp = countResponse{}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != want {
		t.Errorf("explicit query count %d, want %d", resp.Count, want)
	}

	// A limit turns the same call partial with reason "limit".
	w = postJSON(t, s, "/v1/graphs/a/count", `{"query":"q1","limit":1}`)
	resp = countResponse{}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if w.Code != http.StatusOK || resp.Count != 1 || !resp.Partial || resp.Reason != "limit" {
		t.Errorf("limited call = %d %+v, want 200, count 1, partial, reason limit", w.Code, resp)
	}
}

// TestServerBadRequests: every malformed request fails with 400 and the
// machine-readable bad_request reason — including option validation, which
// must reject before any matching work.
func TestServerBadRequests(t *testing.T) {
	s, _, _ := serverFixture(t, 2, 0)
	for name, body := range map[string]string{
		"empty":          `{}`,
		"bad json":       `{"query":`,
		"unknown query":  `{"query":"nope"}`,
		"both shapes":    `{"query":"q1","labels":[0],"edges":[]}`,
		"unknown field":  `{"query":"q1","bogus":1}`,
		"negative limit": `{"query":"q1","limit":-4}`,
		"bad delta":      `{"query":"q1","delta":1.5}`,
		"disconnected":   `{"labels":[0,1],"edges":[]}`,
	} {
		w := postJSON(t, s, "/v1/graphs/a/count", body)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", name, w.Code, w.Body)
			continue
		}
		var er errorResponse
		if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil || er.Reason != "bad_request" {
			t.Errorf("%s: envelope %s, want reason bad_request", name, w.Body)
		}
	}
	if w := postJSON(t, s, "/v1/graphs/ghost/count", `{"query":"q1"}`); w.Code != http.StatusNotFound {
		t.Errorf("unknown graph: status %d, want 404 (body %s)", w.Code, w.Body)
	}
}

// TestServerMatchStream: /match streams one NDJSON line per embedding and
// closes with a summary line whose count equals the number of lines.
func TestServerMatchStream(t *testing.T) {
	s, _, gA := serverFixture(t, 2, 0)
	q1, err := ldbc.QueryByName("q1")
	if err != nil {
		t.Fatal(err)
	}
	want := routerWant(t, q1, gA)

	w := postJSON(t, s, "/v1/graphs/a/match", `{"query":"q1"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type %q, want application/x-ndjson", ct)
	}
	var embeddings int64
	var summary *matchLine
	sc := bufio.NewScanner(w.Body)
	for sc.Scan() {
		var line matchLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if line.Done {
			if summary != nil {
				t.Fatal("two summary lines")
			}
			l := line
			summary = &l
			continue
		}
		if len(line.Embedding) != q1.NumVertices() {
			t.Fatalf("embedding arity %d, want %d", len(line.Embedding), q1.NumVertices())
		}
		embeddings++
	}
	if summary == nil {
		t.Fatal("stream ended without a summary line")
	}
	if summary.Count != want || embeddings != want || summary.Partial {
		t.Errorf("streamed %d lines, summary %+v, want count %d", embeddings, summary, want)
	}

	// A shed on /match keeps its error status: unknown graph is 404, not a
	// 200 stream that errors mid-way.
	if w := postJSON(t, s, "/v1/graphs/ghost/match", `{"query":"q1"}`); w.Code != http.StatusNotFound {
		t.Errorf("unknown graph stream: status %d, want 404", w.Code)
	}
}

// TestServerShedStatuses: a saturated server sheds with 429 (queue full)
// and 504 (deadline doomed) plus machine-readable reasons, instead of
// hanging the request until the budget frees up.
func TestServerShedStatuses(t *testing.T) {
	s, r, _ := serverFixture(t, 1, -1) // one slot, queueing disabled
	q1, err := ldbc.QueryByName("q1")
	if err != nil {
		t.Fatal(err)
	}

	var once sync.Once
	started := make(chan struct{})
	block := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := r.MatchStream(nil, "a", q1, func(graph.Embedding) error {
			once.Do(func() { close(started) })
			<-block
			return nil
		})
		if err != nil {
			t.Errorf("hog: %v", err)
		}
	}()
	<-started

	w := postJSON(t, s, "/v1/graphs/a/count", `{"query":"q1"}`)
	var er errorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil {
		t.Fatal(err)
	}
	if w.Code != http.StatusTooManyRequests || er.Reason != "queue_full" {
		t.Errorf("saturated count = %d %+v, want 429 queue_full", w.Code, er)
	}

	// With a queue and service history, a hopeless deadline is doomed.
	r2 := NewRouter(RouterOptions{Workers: 1, Engine: engineTestOptions(1)})
	gA, _ := routerTestGraphs()
	if err := r2.AddGraph("a", gA, nil); err != nil {
		t.Fatal(err)
	}
	r2.adm.mu.Lock()
	tn := r2.adm.tenants["a"]
	tn.estP50 = time.Second
	r2.adm.mu.Unlock()
	for i := 0; i < 8; i++ {
		tn.hist.observe(time.Second)
	}
	s2 := NewServer(r2, ServerOptions{QueryByName: ldbc.QueryByName})
	var once2 sync.Once
	started2 := make(chan struct{})
	done2 := make(chan struct{})
	go func() {
		defer close(done2)
		_, err := r2.MatchStream(nil, "a", q1, func(graph.Embedding) error {
			once2.Do(func() { close(started2) })
			<-block
			return nil
		})
		if err != nil {
			t.Errorf("hog 2: %v", err)
		}
	}()
	<-started2
	w = postJSON(t, s2, "/v1/graphs/a/count", `{"query":"q1","timeout_ms":50}`)
	er = errorResponse{}
	if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil {
		t.Fatal(err)
	}
	if w.Code != http.StatusGatewayTimeout || er.Reason != "deadline_doomed" {
		t.Errorf("doomed count = %d %+v, want 504 deadline_doomed", w.Code, er)
	}

	close(block)
	<-done
	<-done2
}

// TestServerAdminEndpoints: list, stats, swap and metrics round-trip
// against the live Router.
func TestServerAdminEndpoints(t *testing.T) {
	s, _, gA := serverFixture(t, 2, 0)
	q1, err := ldbc.QueryByName("q1")
	if err != nil {
		t.Fatal(err)
	}
	wantA := routerWant(t, q1, gA)
	if w := postJSON(t, s, "/v1/graphs/a/count", `{"query":"q1"}`); w.Code != http.StatusOK {
		t.Fatalf("warmup call failed: %s", w.Body)
	}

	// List carries the graph with its serving stats.
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/graphs", nil))
	var list struct {
		Graphs []graphInfo `json:"graphs"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Graphs) != 1 || list.Graphs[0].Name != "a" || list.Graphs[0].Stats.Calls != 1 {
		t.Errorf("list = %+v, want graph a with 1 call", list)
	}

	// Per-graph stats, and 404 for strangers.
	w = httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/graphs/a/stats", nil))
	var info graphInfo
	if err := json.Unmarshal(w.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Stats.Admitted != 1 || info.Stats.Weight != 1 || info.Stats.P50Latency <= 0 {
		t.Errorf("stats = %+v, want admitted 1, weight 1, live p50", info.Stats)
	}
	w = httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/graphs/ghost/stats", nil))
	if w.Code != http.StatusNotFound {
		t.Errorf("ghost stats status %d, want 404", w.Code)
	}

	// Swap replaces the data graph in place: counts change to the new
	// graph's, the tenant and its counters survive.
	_, gB := routerTestGraphs()
	wantB := routerWant(t, q1, gB)
	if wantA == wantB {
		t.Fatal("fixture graphs should disagree on q1")
	}
	var bin bytes.Buffer
	if err := graph.WriteBinary(&bin, gB); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPut, "/v1/graphs/a", bytes.NewReader(bin.Bytes()))
	w = httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("swap status %d, body %s", w.Code, w.Body)
	}
	var cr countResponse
	resp := postJSON(t, s, "/v1/graphs/a/count", `{"query":"q1"}`)
	if err := json.Unmarshal(resp.Body.Bytes(), &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Count != wantB {
		t.Errorf("post-swap count %d, want %d", cr.Count, wantB)
	}
	req = httptest.NewRequest(http.MethodPut, "/v1/graphs/ghost", bytes.NewReader(bin.Bytes()))
	w = httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusNotFound {
		t.Errorf("ghost swap status %d, want 404", w.Code)
	}
	req = httptest.NewRequest(http.MethodPut, "/v1/graphs/a", strings.NewReader("not a graph"))
	w = httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Errorf("garbage swap status %d, want 400", w.Code)
	}

	// Metrics: Prometheus text with the stable names, self-consistent with
	// the call history (2 calls served, both admitted, nothing shed).
	w = httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := w.Body.String()
	for metric, want := range map[string]string{
		"fastmatch_calls_total":                `fastmatch_calls_total{graph="a"} 2`,
		"fastmatch_admitted_total":             `fastmatch_admitted_total{graph="a"} 2`,
		"fastmatch_shed_queue_full_total":      `fastmatch_shed_queue_full_total{graph="a"} 0`,
		"fastmatch_shed_deadline_doomed_total": `fastmatch_shed_deadline_doomed_total{graph="a"} 0`,
		"fastmatch_queue_timeouts_total":       `fastmatch_queue_timeouts_total{graph="a"} 0`,
		"fastmatch_queue_depth":                `fastmatch_queue_depth{graph="a"} 0`,
		"fastmatch_swaps_total":                `fastmatch_swaps_total{graph="a"} 1`,
		"fastmatch_worker_budget":              "fastmatch_worker_budget 2",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %s line %q", metric, want)
		}
	}
	if !strings.Contains(body, `fastmatch_latency_seconds{graph="a",quantile="0.5"}`) {
		t.Error("metrics missing latency summary")
	}
	// Every exposed family is typed: counters and gauges declare themselves.
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "fastmatch_") {
			metric := strings.FieldsFunc(line, func(r rune) bool { return r == '{' || r == ' ' })[0]
			base := strings.TrimSuffix(metric, "_count")
			if !strings.Contains(body, fmt.Sprintf("# TYPE %s ", base)) {
				t.Errorf("metric %s has no TYPE declaration", metric)
			}
		}
	}
}
