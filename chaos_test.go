package fast

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fastmatch/graph"
	"fastmatch/ldbc"
)

// TestChaosMatchParity: the public chaos surface — absorbed transient
// faults leave Result counts byte-identical to the fault-free run, with the
// retries visible on the Result.
func TestChaosMatchParity(t *testing.T) {
	g := ldbc.Generate(ldbc.Config{ScaleFactor: 1, BasePersons: 120, Seed: 7})
	q, err := ldbc.QueryByName("q2")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Match(q, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Match(q, g, &Options{
		Chaos: &ChaosConfig{Seed: 4, Rules: []FaultRule{
			{Site: FaultSiteDevice(0), Nth: []int64{1, 2}},
			{Site: FaultSiteKernel, Nth: []int64{1}},
		}},
	})
	if err != nil {
		t.Fatalf("absorbed transients must not error: %v", err)
	}
	if res.Count != ref.Count || res.Partial {
		t.Fatalf("degraded run: count %d partial %v, want %d false", res.Count, res.Partial, ref.Count)
	}
	if res.Retries == 0 {
		t.Fatal("schedule fired but Result shows no retries")
	}
}

// TestChaosSeedSweep replays a rate-based fault schedule across a bounded
// seed sweep (the CI chaos-smoke sweep). Every outcome must be one of the
// two contract shapes: faults absorbed → fault-free counts, no error, not
// Partial; faults surfaced → a typed error with Partial set. Any third
// shape (wrong count without an error, an untyped error, a typed error
// without Partial) is a contract violation.
func TestChaosSeedSweep(t *testing.T) {
	g := ldbc.Generate(ldbc.Config{ScaleFactor: 1, BasePersons: 100, Seed: 11})
	q, err := ldbc.QueryByName("q3")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Match(q, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 8; seed++ {
		res, err := Match(q, g, &Options{
			Chaos: &ChaosConfig{Seed: seed, Rules: []FaultRule{
				{Site: FaultSiteDevice(0), Rate: 0.2},
				{Site: FaultSiteKernel, Rate: 0.05},
			}},
			Retry: RetryPolicy{Max: 3, Base: 20 * time.Microsecond},
		})
		if err == nil {
			if res.Partial || res.Count != ref.Count {
				t.Fatalf("seed %d: absorbed run count %d partial %v, want %d false",
					seed, res.Count, res.Partial, ref.Count)
			}
			continue
		}
		var kp *KernelPanicError
		var df *DeviceFaultError
		if !errors.As(err, &kp) && !errors.As(err, &df) {
			t.Fatalf("seed %d: untyped chaos error %v", seed, err)
		}
		if !res.Partial {
			t.Fatalf("seed %d: surfaced fault %v without Partial", seed, err)
		}
	}
}

// TestChaosInvalidRules: unknown kinds and empty sites are rejected at
// option resolution, not discovered mid-run.
func TestChaosInvalidRules(t *testing.T) {
	g := ldbc.Generate(ldbc.Config{ScaleFactor: 1, BasePersons: 40, Seed: 1})
	q, err := ldbc.QueryByName("q1")
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []*ChaosConfig{
		{Rules: []FaultRule{{Site: FaultSiteKernel, Kind: "explode"}}},
		{Rules: []FaultRule{{Kind: FaultTransient}}},
	} {
		if _, err := Match(q, g, &Options{Chaos: bad}); err == nil {
			t.Fatalf("invalid chaos config %+v accepted", bad)
		}
	}
}

// TestChaosServingStorm races every structural mutation the serving layer
// offers — ApplyDelta batches, Subscribe/Close churn, SwapGraph, and match
// traffic against a tenant whose engine takes injected transient faults —
// under the race detector. The assertions are light (no call may deadlock
// or crash; every error must be a typed, expected verdict); the detector
// and the recover barriers carry the real load.
func TestChaosServingStorm(t *testing.T) {
	g := ldbc.Generate(ldbc.Config{ScaleFactor: 1, BasePersons: 80, Seed: 3})
	r := NewRouter(RouterOptions{Workers: 4, Breaker: BreakerOptions{Threshold: 3, Cooldown: 10 * time.Millisecond}})
	err := r.AddGraph("g", g, &Options{
		Chaos: &ChaosConfig{Seed: 17, Rules: []FaultRule{
			{Site: FaultSiteDevice(0), EveryNth: 7},
			{Site: FaultSiteKernel, EveryNth: 11},
		}},
		Retry: RetryPolicy{Max: 5, Base: 50 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	q, err := ldbc.QueryByName("q1")
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	deadline := time.After(3 * time.Second)
	stop := make(chan struct{})
	go func() {
		<-deadline
		close(stop)
	}()
	stopped := func() bool {
		select {
		case <-stop:
			return true
		default:
			return false
		}
	}

	var wg sync.WaitGroup
	var fatal atomic.Value // first unexpected error, if any

	unexpected := func(op string, err error) {
		var kp *KernelPanicError
		var df *DeviceFaultError
		switch {
		case err == nil,
			errors.As(err, &kp), errors.As(err, &df),
			errors.Is(err, ErrBreakerOpen),
			errors.Is(err, ErrGraphSwapped),
			errors.Is(err, ErrSubscriptionClosed),
			errors.Is(err, context.Canceled):
			return
		}
		fatal.CompareAndSwap(nil, op+": "+err.Error())
	}

	// Match traffic: most calls absorb their faults; an unlucky streak may
	// exhaust retries (DeviceFaultError) or trip the breaker — all expected.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stopped() {
				_, err := r.MatchContext(ctx, "g", q)
				unexpected("MatchContext", err)
			}
		}()
	}

	// Delta storm: vertex+edge batches keep committing epochs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stopped(); i++ {
			_, err := r.ApplyDelta("g", graph.Delta{AddVertices: []graph.Label{graph.Label(i % 4)}})
			unexpected("ApplyDelta", err)
		}
	}()

	// Subscription churn: register, ride a few notifications, close.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stopped() {
			sub, err := r.Subscribe(ctx, "g", q, func(MatchDelta) error { return nil })
			if err != nil {
				unexpected("Subscribe", err)
				continue
			}
			time.Sleep(time.Millisecond)
			sub.Close()
			unexpected("Subscription.Wait", sub.Wait())
		}
	}()

	// Swap storm: periodically replace the graph wholesale.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stopped(); i++ {
			g2 := ldbc.Generate(ldbc.Config{ScaleFactor: 1, BasePersons: 60 + i%3, Seed: int64(i)})
			unexpected("SwapGraph", r.SwapGraph("g", g2))
			time.Sleep(5 * time.Millisecond)
		}
	}()

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("chaos storm deadlocked")
	}
	if msg := fatal.Load(); msg != nil {
		t.Fatalf("unexpected error under chaos: %v", msg)
	}
}
