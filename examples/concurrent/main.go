// Concurrent serving: one fast.Engine answering simultaneous and repeated
// queries over a single LDBC-like social network — the scenario the
// engine's shared worker pool and query-plan cache exist for. The pool
// fans each query's CST partitions across goroutines (the paper's multi-PE
// parallelism in software) while the CPU δ-share co-processes, and repeated
// queries skip planning entirely.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	fast "fastmatch"
	"fastmatch/graph"
	"fastmatch/ldbc"
)

func main() {
	g := ldbc.Generate(ldbc.Config{ScaleFactor: 1, BasePersons: 300, Seed: 42})
	fmt.Println("data:", g)

	// Shrink the modelled card so CSTs partition at this scale and the
	// pool has pieces to fan out (the real 35 MB U200 would swallow these
	// toy CSTs whole).
	dev := fast.DefaultDevice()
	dev.BRAMBytes = 32 << 10
	dev.BatchSize = 32

	eng, err := fast.NewEngine(g, &fast.Options{
		Variant: fast.VariantShare,
		Device:  dev,
		Workers: runtime.NumCPU(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engine: %d workers\n\n", eng.Workers())

	// A burst of traffic: every benchmark query, three times over — the
	// repeats are what a serving workload looks like.
	names := []string{"q1", "q2", "q3", "q4", "q5"}
	var batch []*graph.Query
	for r := 0; r < 3; r++ {
		for _, n := range names {
			q, err := ldbc.QueryByName(n)
			if err != nil {
				log.Fatal(err)
			}
			batch = append(batch, q)
		}
	}

	start := time.Now()
	results, err := eng.MatchBatch(batch)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Println("query  count  partitions  cpu-parts")
	for i, n := range names {
		r := results[i]
		fmt.Printf("%-5s %6d %11d %10d\n", n, r.Count, r.Partitions, r.CPUPartitions)
	}
	// Repeats must agree with the first round — same counts, cached plan.
	for i, r := range results {
		if r.Count != results[i%len(names)].Count {
			log.Fatalf("repeat of %s diverged: %d vs %d",
				batch[i].Name(), r.Count, results[i%len(names)].Count)
		}
	}

	hits, misses := eng.PlanCacheStats()
	fmt.Printf("\n%d queries served in %v\n", len(results), elapsed.Round(time.Millisecond))
	fmt.Printf("plan cache: %d hits, %d misses (%d distinct plans)\n",
		hits, misses, eng.CachedPlans())
}
