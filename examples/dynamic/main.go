// Dynamic graphs and continuous queries: a served graph mutated in place
// with ApplyDelta epoch snapshots while a standing query streams the match
// deltas each batch causes. In-flight matches keep the epoch they were
// admitted against; each committed batch advances the epoch by one and the
// subscription sees every epoch exactly once, in order — its Added/Removed
// sets are computed incrementally from the affected region of the
// candidate space, not by re-running the query.
package main

import (
	"context"
	"fmt"
	"log"

	fast "fastmatch"
	"fastmatch/graph"
	"fastmatch/ldbc"
)

func main() {
	router := fast.NewRouter(fast.RouterOptions{Workers: 2})
	g := ldbc.Generate(ldbc.Config{ScaleFactor: 1, BasePersons: 120, Seed: 7})
	if err := router.AddGraph("social", g, nil); err != nil {
		log.Fatal(err)
	}
	q, err := ldbc.QueryByName("q1")
	if err != nil {
		log.Fatal(err)
	}

	res, err := router.MatchContext(context.Background(), "social", q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("epoch 0: %s has %d matches\n", q.Name(), res.Count)

	// Watch q1 while the graph changes. The emit callback runs on its own
	// goroutine, one MatchDelta per committed batch.
	sub, err := router.Subscribe(context.Background(), "social", q, func(md fast.MatchDelta) error {
		fmt.Printf("epoch %d: %+d added, %-d removed\n", md.Epoch, len(md.Added), len(md.Removed))
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Batch 1: wire a brand-new vertex into the neighborhood of vertex 1 —
	// new triangles appear. Vertex ids are stable across epochs: the new
	// vertex's id is the old NumVertices().
	n := graph.VertexID(g.NumVertices())
	dr, err := router.ApplyDelta("social", graph.Delta{
		AddVertices: []graph.Label{g.Label(1)},
		AddEdges:    [][2]graph.VertexID{{n, 1}, {n, 2}, {n, 3}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("committed epoch %d: %d vertices, %d edges, %d touched, plan seeded: %v\n",
		dr.Epoch, dr.Vertices, dr.Edges, dr.Touched, dr.PlanSeeded)

	// Batch 2: tombstone a vertex — everything it participated in vanishes.
	if _, err := router.ApplyDelta("social", graph.Delta{
		DelVertices: []graph.VertexID{1},
	}); err != nil {
		log.Fatal(err)
	}

	// The router serves the newest epoch; the standing query has already
	// been told exactly what changed.
	res, err = router.MatchContext(context.Background(), "social", q)
	if err != nil {
		log.Fatal(err)
	}
	st := router.Stats()["social"]
	fmt.Printf("epoch %d: %d matches now (%d deltas, %d notifications)\n",
		st.Epoch, res.Count, st.Deltas, st.Notifications)

	sub.Close()
	if err := sub.Wait(); err != fast.ErrSubscriptionClosed {
		log.Fatal(err)
	}
}
