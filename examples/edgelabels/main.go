// Edgelabels: the paper's Section II extension — edge-labeled and
// directed-encoded queries running through the same FAST pipeline.
//
// We model a tiny message board: the relation between a Person and a Post
// is carried on the half-edge labels (simple graphs keep one edge per
// vertex pair, so "authored and liked" uses the arc encoding: forward
// half-edge = the person's relation to the post, backward half-edge = a
// second relation). The query asks for self-likes — a person who both
// authored and liked the same post — which vertex labels alone cannot
// express.
package main

import (
	"fmt"
	"log"

	fast "fastmatch"
	"fastmatch/graph"
)

const (
	person = graph.Label(0)
	post   = graph.Label(1)

	authored = graph.EdgeLabel(1)
	liked    = graph.EdgeLabel(2)
)

func main() {
	b := graph.NewBuilder(5, 4)
	alice := b.AddVertex(person)
	bob := b.AddVertex(person)
	p1 := b.AddVertex(post)
	p2 := b.AddVertex(post)
	p3 := b.AddVertex(post)
	b.AddEdgeArcs(alice, p1, authored, authored) // authored only
	b.AddEdgeArcs(alice, p2, authored, liked)    // authored + liked own post
	b.AddEdgeArcs(bob, p2, liked, liked)         // liked someone else's post
	b.AddEdgeArcs(bob, p3, authored, liked)      // authored + liked own post
	g := b.MustBuild()

	// Query: Person –(authored→, ←liked)– Post.
	q := graph.MustQuery("self-like", []graph.Label{person, post},
		[][2]graph.QueryVertex{{0, 1}})
	if err := q.SetEdgeArcLabels(0, 1, authored, liked); err != nil {
		log.Fatal(err)
	}

	res, err := fast.Match(q, g, &fast.Options{CollectEmbeddings: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("self-liked posts: %d\n", res.Count) // expect 2: (alice,p2) and (bob,p3)
	for _, e := range res.Embeddings {
		fmt.Printf("  person %d → post %d\n", e[0], e[1])
	}

	// The backtracking oracle agrees.
	oracle, err := fast.RunBaseline(fast.BaselineBacktrack, q, g, fast.BaselineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("oracle: %d\n", oracle.Count)
}
