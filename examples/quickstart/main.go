// Quickstart: build a tiny labelled graph, define a query, and match it
// with the FAST pipeline — the paper's Fig. 1 example end to end.
package main

import (
	"fmt"
	"log"

	fast "fastmatch"
	"fastmatch/graph"
)

func main() {
	// The data graph of the paper's Fig. 1(b) (0-based ids; labels
	// A=0, B=1, C=2, D=3, E=4).
	b := graph.NewBuilder(12, 14)
	for _, l := range []graph.Label{0, 0, 2, 1, 2, 1, 2, 3, 3, 3, 4, 4} {
		b.AddVertex(l)
	}
	for _, e := range [][2]graph.VertexID{
		{0, 3}, {0, 2}, {0, 6}, {3, 2}, {2, 8}, {1, 5}, {1, 4},
		{5, 4}, {5, 6}, {4, 9}, {6, 9}, {5, 7}, {6, 10}, {8, 11},
	} {
		b.AddEdge(e[0], e[1])
	}
	g := b.MustBuild()

	// The query of Fig. 1(a): a labelled square with a diagonal and a tail.
	q := graph.MustQuery("fig1", []graph.Label{0, 1, 2, 3},
		[][2]graph.QueryVertex{{0, 1}, {0, 2}, {1, 2}, {2, 3}})

	fmt.Println("data: ", g)
	fmt.Println("query:", q)

	// Match with the full CPU–FPGA pipeline and collect the embeddings.
	res, err := fast.Match(q, g, &fast.Options{CollectEmbeddings: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FAST found %d embeddings in %v (%d kernel cycles)\n",
		res.Count, res.Total, res.KernelCycles)
	for _, e := range res.Embeddings {
		fmt.Printf("  %v\n", e) // expect (v1,v4,v3,v9) and (v2,v6,v5,v10), 0-based
	}

	// Cross-check against the plain backtracking oracle.
	oracle, err := fast.RunBaseline(fast.BaselineBacktrack, q, g, fast.BaselineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("backtracking oracle agrees: %d embeddings in %v\n", oracle.Count, oracle.Elapsed)
}
