// Ordersweep: a Fig. 15-style study of FAST's sensitivity to the matching
// order — run one query under the path-based default, the CFL/DAF/CECI
// orders, and a sample of random connected orders, and compare.
package main

import (
	"fmt"
	"log"
	"time"

	fast "fastmatch"
	"fastmatch/ldbc"
)

func main() {
	g := ldbc.Generate(ldbc.Config{ScaleFactor: 3, BasePersons: 200, Seed: 42})
	q, err := ldbc.QueryByName("q8")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %s on |V|=%d |E|=%d\n\n", q.Name(), g.NumVertices(), g.NumEdges())

	var baselineTotal time.Duration
	for _, strategy := range []string{"path", "cfl", "daf", "ceci"} {
		res, err := fast.Match(q, g, &fast.Options{Order: strategy})
		if err != nil {
			log.Fatal(err)
		}
		if strategy == "path" {
			baselineTotal = res.Total
		}
		fmt.Printf("order %-5s: %8d embeddings in %10v (%.2fx vs path)\n",
			strategy, res.Count, res.Total.Round(time.Microsecond),
			float64(baselineTotal)/float64(res.Total))
	}

	// The paper's punchline: even the worst order beats CPU baselines.
	ceci, err := fast.RunBaseline(fast.BaselineCECI, q, g, fast.BaselineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCPU CECI for reference: %v\n", ceci.Elapsed.Round(time.Microsecond))
}
