// Socialnetwork: generate an LDBC-SNB-like graph and run the paper's nine
// benchmark queries (Fig. 6) with FAST and two CPU baselines, printing a
// small Fig. 14-style comparison.
package main

import (
	"fmt"
	"log"
	"time"

	fast "fastmatch"
	"fastmatch/graph"
	"fastmatch/ldbc"
)

func main() {
	cfg := ldbc.Config{ScaleFactor: 3, BasePersons: 200, Seed: 42}
	g := ldbc.Generate(cfg)
	fmt.Println("generated:", graph.ComputeStats("DG03-small", g))
	fmt.Println()
	fmt.Printf("%-5s %12s %12s %12s %12s\n", "query", "#emb", "FAST", "CECI", "DAF")

	for _, q := range ldbc.Queries() {
		res, err := fast.Match(q, g, nil)
		if err != nil {
			log.Fatalf("%s: %v", q.Name(), err)
		}
		row := fmt.Sprintf("%-5s %12d %12v", q.Name(), res.Count, res.Total.Round(time.Microsecond))
		for _, b := range []fast.Baseline{fast.BaselineCECI, fast.BaselineDAF} {
			br, err := fast.RunBaseline(b, q, g, fast.BaselineOptions{Timeout: 30 * time.Second})
			switch {
			case err != nil:
				row += fmt.Sprintf(" %12s", "INF")
			case br.Count != res.Count:
				log.Fatalf("%s: %s found %d, FAST found %d", q.Name(), b, br.Count, res.Count)
			default:
				row += fmt.Sprintf(" %12v", br.Elapsed.Round(time.Microsecond))
			}
		}
		fmt.Println(row)
	}
}
