// Multifpga: the Section VII-E extension — partition one query's CST across
// several simulated FPGA cards and watch the slowest-card completion time
// drop as cards are added, while counts stay identical.
//
// A small BRAM budget is configured so the CST genuinely needs partitioning
// at this scale; with the real card's 35 MB nothing this size would split.
package main

import (
	"fmt"
	"log"
	"time"

	fast "fastmatch"
	"fastmatch/ldbc"
)

func main() {
	g := ldbc.Generate(ldbc.Config{ScaleFactor: 10, BasePersons: 200, Seed: 42})
	q, err := ldbc.QueryByName("q7")
	if err != nil {
		log.Fatal(err)
	}
	dev := fast.DefaultDevice()
	dev.BRAMBytes = 256 << 10 // scaled-down card → many partitions
	dev.BatchSize = 256

	fmt.Printf("query %s on |V|=%d |E|=%d\n\n", q.Name(), g.NumVertices(), g.NumEdges())
	fmt.Printf("%6s %12s %14s %12s %12s\n", "cards", "#emb", "partitions", "FPGA time", "total")
	var oneCard time.Duration
	for _, cards := range []int{1, 2, 4, 8} {
		res, err := fast.Match(q, g, &fast.Options{
			Variant:  fast.VariantSep,
			Device:   dev,
			NumFPGAs: cards,
		})
		if err != nil {
			log.Fatal(err)
		}
		if cards == 1 {
			oneCard = res.FPGATime
		}
		fmt.Printf("%6d %12d %14d %12v %12v  (%.1fx kernel speedup)\n",
			cards, res.Count, res.Partitions,
			res.FPGATime.Round(time.Microsecond), res.Total.Round(time.Microsecond),
			float64(oneCard)/float64(res.FPGATime))
	}
}
