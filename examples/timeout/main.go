// Budgeted serving: the context-first API enforcing an SLO on a heavy
// query. A deadline aborts a large q5 run mid-flight — between CST
// partitions, between kernel batch rounds, between δ-share embeddings —
// and the call returns the partial statistics it gathered, the way a
// serving front end sheds load instead of letting one pathological query
// occupy the card (the paper's own evaluation runs baselines under exactly
// such per-query budgets, marking the losers INF).
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	fast "fastmatch"
	"fastmatch/ldbc"
)

func main() {
	// A large social network: q5 (the 5-cycle) is the heaviest benchmark
	// query on it.
	g := ldbc.Generate(ldbc.Config{ScaleFactor: 1, BasePersons: 1200, Seed: 42})
	fmt.Println("data:", g)

	// Shrink the modelled card so the CST partitions into many pieces —
	// each boundary is a cancellation check point.
	dev := fast.DefaultDevice()
	dev.BRAMBytes = 32 << 10
	dev.BatchSize = 32

	eng, err := fast.NewEngine(g, &fast.Options{
		Variant: fast.VariantShare,
		Device:  dev,
		Workers: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	q, err := ldbc.QueryByName("q5")
	if err != nil {
		log.Fatal(err)
	}

	// First, the unbounded run: how much work is actually there.
	full, err := eng.MatchContext(context.Background(), q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unbounded:  %d embeddings, %d partitions\n\n", full.Count, full.Partitions)

	// Now the same query under a budget far too small for it. The same
	// engine serves both calls — per-call options never re-plan.
	const budget = 12 * time.Millisecond
	start := time.Now()
	res, err := eng.MatchContext(context.Background(), q, fast.WithTimeout(budget))
	elapsed := time.Since(start)

	switch {
	case errors.Is(err, context.DeadlineExceeded):
		fmt.Printf("deadline %v hit after %v — partial stats:\n", budget, elapsed.Round(time.Microsecond))
	case err != nil:
		log.Fatal(err)
	default:
		fmt.Printf("run fit inside %v (fast machine) — full stats:\n", budget)
	}
	fmt.Printf("  partial:        %v\n", res.Partial)
	fmt.Printf("  embeddings:     %d of %d\n", res.Count, full.Count)
	fmt.Printf("  partitions:     %d of %d\n", res.Partitions, full.Partitions)
	fmt.Printf("  kernel cycles:  %d\n", res.KernelCycles)
	fmt.Printf("  kernel aborts:  %d (modelled work the deadline threw away)\n\n", res.KernelAborts)

	// A result cap is the other budget shape: first 1000 embeddings, then
	// stop — deterministic, unlike the wall-clock cut.
	res, err = eng.MatchContext(context.Background(), q, fast.WithLimit(1000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("WithLimit(1000): %d embeddings (partial=%v, no error)\n", res.Count, res.Partial)
}
