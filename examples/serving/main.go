// Network serving with admission control: a fast.Server exposes a Router
// over HTTP — unary counts, NDJSON streaming, admin endpoints and
// Prometheus metrics — with an explicit admission controller in front of
// the shared worker budget. Tenants hold weighted shares of the budget; a
// saturated server sheds immediately with machine-readable reasons
// (queue_full, deadline_doomed, queue_timeout) instead of stacking blocked
// requests, and a request whose deadline cannot survive the admission queue
// is rejected on arrival rather than timing out in line.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	fast "fastmatch"
	"fastmatch/ldbc"
)

func main() {
	// Two tenants on a four-worker budget: "hot" carries weight 3, so under
	// contention it is guaranteed three of the four slots — and "cold" is
	// guaranteed the fourth, which "hot" can never starve.
	router := fast.NewRouter(fast.RouterOptions{Workers: 4})
	hot := ldbc.Generate(ldbc.Config{ScaleFactor: 1, BasePersons: 300, Seed: 1})
	cold := ldbc.Generate(ldbc.Config{ScaleFactor: 1, BasePersons: 150, Seed: 2})
	if err := router.AddGraph("hot", hot, nil, fast.WithWeight(3)); err != nil {
		log.Fatal(err)
	}
	if err := router.AddGraph("cold", cold, nil); err != nil {
		log.Fatal(err)
	}

	// The Server is a plain http.Handler; in production hand it to
	// http.ListenAndServe (see cmd/fastserve). httptest keeps this example
	// self-contained.
	server := fast.NewServer(router, fast.ServerOptions{QueryByName: ldbc.QueryByName})
	ts := httptest.NewServer(server)
	defer ts.Close()

	// Unary count: POST a named query, read one JSON document.
	resp, err := http.Post(ts.URL+"/v1/graphs/hot/count", "application/json",
		strings.NewReader(`{"query":"q2"}`))
	if err != nil {
		log.Fatal(err)
	}
	var count struct {
		Count   int64 `json:"count"`
		Partial bool  `json:"partial"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&count); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("hot q2: %d embeddings (partial=%v)\n", count.Count, count.Partial)

	// Streaming match: NDJSON, one line per embedding, then a summary line.
	resp, err = http.Post(ts.URL+"/v1/graphs/cold/match", "application/json",
		strings.NewReader(`{"query":"q1","limit":5}`))
	if err != nil {
		log.Fatal(err)
	}
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line struct {
			Embedding []uint32 `json:"embedding"`
			Done      bool     `json:"done"`
			Count     int64    `json:"count"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			log.Fatal(err)
		}
		if line.Done {
			fmt.Printf("cold q1 stream: %d lines, final count %d\n", lines, line.Count)
			break
		}
		lines++
	}
	resp.Body.Close()

	// A hopeless deadline is shed with a machine-readable reason instead of
	// burning a queue slot. (1ns of budget cannot cover any queue wait once
	// the server has service-time history; a fresh server may simply serve
	// it as a deadline-cut partial — both shapes are shown here.)
	resp, err = http.Post(ts.URL+"/v1/graphs/hot/count", "application/json",
		strings.NewReader(`{"query":"q2","timeout_ms":1}`))
	if err != nil {
		log.Fatal(err)
	}
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	fmt.Printf("tight deadline: HTTP %d %s", resp.StatusCode, body.String())

	// Observability: the same counters behind Router.Stats render as
	// Prometheus text on /metrics.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	sc = bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "fastmatch_admitted_total") ||
			strings.HasPrefix(sc.Text(), "fastmatch_budget_weight") {
			fmt.Println(sc.Text())
		}
	}
	resp.Body.Close()
}
