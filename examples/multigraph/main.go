// Multi-tenant serving: one fast.Router fronting several data graphs, all
// drawing kernel work from a single shared worker budget — the serving
// shape the paper's host/coordinator role scales to. Each tenant gets its
// own default MatchOptions (an SLO: a standing result limit or deadline)
// that per-call options can override — including WithLimit(0), which lifts
// a default limit back to unlimited — and graphs hot-swap atomically while
// traffic is in flight: running matches finish on the graph and plans they
// started with, new calls see the new graph with a fresh plan cache.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"sync"

	fast "fastmatch"
	"fastmatch/graph"
	"fastmatch/ldbc"
)

func main() {
	// Two tenants with their own social networks, one shared host budget:
	// four workers total, however many graphs are registered.
	router := fast.NewRouter(fast.RouterOptions{Workers: 4})

	acme := ldbc.Generate(ldbc.Config{ScaleFactor: 1, BasePersons: 300, Seed: 1})
	globex := ldbc.Generate(ldbc.Config{ScaleFactor: 1, BasePersons: 200, Seed: 2})

	// acme is unrestricted; globex's contract caps every query at 300
	// embeddings unless a call explicitly asks otherwise.
	if err := router.AddGraph("acme", acme, nil); err != nil {
		log.Fatal(err)
	}
	if err := router.AddGraph("globex", globex, nil, fast.WithLimit(300)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving %v under a budget of %d workers\n", router.Graphs(), router.Workers())

	q, err := ldbc.QueryByName("q2")
	if err != nil {
		log.Fatal(err)
	}

	// Concurrent traffic from both tenants: counts are deterministic per
	// graph no matter how the shared budget interleaves the work.
	var wg sync.WaitGroup
	for _, tenant := range []string{"acme", "globex"} {
		wg.Add(1)
		go func(tenant string) {
			defer wg.Done()
			res, err := router.MatchContext(context.Background(), tenant, q)
			if err != nil {
				log.Fatal(err)
			}
			partial := ""
			if res.Partial {
				partial = " (limited by tenant SLO)"
			}
			fmt.Printf("%s: q2 = %d embeddings%s\n", tenant, res.Count, partial)
		}(tenant)
	}
	wg.Wait()

	// A per-call override sits on top of the tenant default — and the
	// explicit WithLimit(0) lifts it entirely.
	res, err := router.MatchContext(context.Background(), "globex", q, fast.WithLimit(0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("globex with WithLimit(0): q2 = %d embeddings (SLO lifted for this call)\n", res.Count)

	// Hot swap: globex re-ingests its graph. The swap is atomic — this
	// stream resolved the old graph and finishes on it (and its cached
	// plans), while calls made after the swap see the new data.
	globex2 := ldbc.Generate(ldbc.Config{ScaleFactor: 1, BasePersons: 250, Seed: 3})
	var streamed int
	_, err = router.MatchStream(context.Background(), "globex", q, func(graph.Embedding) error {
		if streamed == 0 {
			if err := router.SwapGraph("globex", globex2); err != nil {
				return err
			}
		}
		streamed++
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err = router.MatchContext(context.Background(), "globex", q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("globex swapped mid-stream: old graph streamed %d, new graph counts %d\n", streamed, res.Count)

	// Per-graph serving stats: calls, partials and the plan cache — which
	// rotated with the swap.
	stats := router.Stats()
	names := make([]string, 0, len(stats))
	for name := range stats {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := stats[name]
		fmt.Printf("%s: calls=%d partial=%d swaps=%d cached plans=%d (hits=%d misses=%d)\n",
			name, s.Calls, s.Partials, s.Swaps, s.CachedPlans, s.PlanCacheHits, s.PlanCacheMisses)
	}
}
