// Package fast is the public API of this reproduction of "FAST: FPGA-based
// Subgraph Matching on Massive Graphs" (ICDE 2021). It exposes the
// CPU–FPGA co-designed matching pipeline (CST construction, partitioning,
// workload-balanced scheduling, and the pipelined FAST kernel running on a
// cycle-accurate FPGA device model), the paper's CPU and GPU-style baseline
// algorithms, and the LDBC-like benchmark workloads — everything the
// examples, command-line tools and benchmark harness consume.
//
// Quick start — the API is context-first: pass a context to cancel or
// deadline any call, and per-call options to bound it:
//
//	g := ldbc.Generate(ldbc.Config{ScaleFactor: 1, Seed: 42})
//	q, _ := ldbc.QueryByName("q2")
//	res, err := fast.MatchContext(ctx, q, g, nil)
//	fmt.Println(res.Count, res.Total)
//
//	// Bounded: at most 100 embeddings, at most 50 ms.
//	res, err = fast.MatchContext(ctx, q, g, nil,
//	    fast.WithLimit(100), fast.WithTimeout(50*time.Millisecond))
//	if res != nil && res.Partial {
//	    // deadline or limit cut the run short; res holds the partial counts
//	}
//
// Match, Count and MatchBatch are thin wrappers over context.Background()
// and keep compiling unchanged; they are equivalent to the context forms
// with an unbounded call.
//
// # Concurrency and serving
//
// MatchContext with Options.Workers > 1 fans the scheduler's FPGA-side
// partition queue out across that many goroutines while the CPU δ-share is
// enumerated concurrently, mirroring the paper's multi-PE parallelism and
// CPU–FPGA co-processing; counts are identical to the sequential run, and
// cancellation is observed inside the fan-out (workers drain and exit
// cleanly). For serving traffic — repeated and simultaneous queries against
// one graph, each under its own budget — construct an Engine: it shares one
// bounded worker pool across all concurrent calls and caches query plans
// (matching order + CST) keyed by query fingerprint, so one Engine serves
// callers with different limits, deadlines and δ overrides without
// re-planning:
//
//	eng, _ := fast.NewEngine(g, &fast.Options{Workers: 8})
//	res, err := eng.MatchContext(ctx, q, fast.WithLimit(1000))
//	res, err = eng.MatchStream(ctx, q, func(e graph.Embedding) error {
//	    return send(e) // first results stream out while the run continues
//	})
//	results, err := eng.MatchBatchContext(ctx, queries) // concurrent, pool-shared
//
// A cancelled or deadlined call stops mid-flight — between partitions,
// between kernel batch rounds, between δ-share embeddings — and returns
// the partial Result (Partial set) with ErrCanceled or
// context.DeadlineExceeded.
//
// # Multi-graph serving
//
// To serve several data graphs — multiple tenants, or one corpus sharded
// into named graphs — construct a Router: a registry of named graphs, each
// behind a lazily built Engine, all drawing kernel work from one shared
// worker budget, so N graphs cannot oversubscribe the host the way N
// independent engines would. Per-graph default MatchOptions are the tenant
// SLO (a standing limit or deadline, overridable per call — WithLimit(0)
// lifts a default limit), and SwapGraph hot-swaps a graph atomically:
// in-flight matches finish on the old graph and its cached plans, new
// calls see the new graph behind a fresh plan cache:
//
//	router := fast.NewRouter(fast.RouterOptions{Workers: 8})
//	router.AddGraph("acme", acmeGraph, nil)
//	router.AddGraph("globex", globexGraph, nil, fast.WithLimit(1000))
//	res, err := router.MatchContext(ctx, "acme", q)
//	router.SwapGraph("globex", reingested) // atomic; traffic keeps flowing
//	stats := router.Stats()                // per-graph calls, partials, plan cache
//
// Routed calls pass through an explicit admission controller in front of
// the shared budget: each tenant holds a weighted share (WithWeight as an
// AddGraph default), waits in a bounded per-tenant queue when the budget is
// saturated, and is shed immediately — ErrQueueFull, or ErrDeadlineDoomed
// when its deadline cannot survive the estimated queue wait — instead of
// blocking indefinitely. Stats reports queue depths, shed counters and
// p50/p99 service latency per graph.
//
// # Dynamic graphs and continuous queries
//
// Router.ApplyDelta mutates a served graph in place — batched vertex/edge
// inserts and deletes — by installing a copy-on-write epoch snapshot
// (graph.ApplyDelta). The epoch-consistency contract:
//
//   - Every routed call executes entirely against the single epoch current
//     when it resolved; a call admitted before ApplyDelta returns counts
//     and streams exactly what that epoch contains, no matter how many
//     batches commit while it runs.
//   - Calls resolving after ApplyDelta returns see the new epoch. Epochs
//     increment by one per committed batch; SwapGraph and RemoveGraph end
//     the lineage (a pending delta computed over the pre-swap snapshot
//     fails its commit with ErrGraphSwapped rather than resurrecting it).
//   - Batches for one graph serialize; a label-set-preserving batch seeds
//     the new epoch's plan cache with the previous epoch's planning
//     decisions, so repeat queries skip re-planning and rebuild only the
//     candidate space.
//
// Router.Subscribe registers a standing (continuous) query: from its
// registration epoch on, every committed batch delivers one MatchDelta —
// the embeddings the batch created and destroyed, computed incrementally
// from the affected region of the candidate space and delivered in strict
// epoch order — until the subscription's context fires, Close is called,
// or the graph is swapped or removed:
//
//	sub, _ := router.Subscribe(ctx, "acme", q, func(md fast.MatchDelta) error {
//		handle(md.Epoch, md.Added, md.Removed)
//		return nil
//	})
//	router.ApplyDelta("acme", graph.Delta{AddEdges: [][2]graph.VertexID{{u, v}}})
//	sub.Close()
//
// # Network serving
//
// Server wraps a Router as an http.Handler — unary counts, NDJSON
// streaming, graph list/stats/swap admin endpoints, mutation
// (POST .../delta) and standing-query NDJSON streams (GET .../subscribe),
// and a Prometheus-text /metrics — with admission verdicts mapped to
// machine-readable HTTP errors (429 queue_full, 504
// deadline_doomed/queue_timeout). cmd/fastserve runs it from the command
// line; cmd/fastload replays open-loop workloads against it, and
// cmd/fastmutate replays delta workloads while watching a subscription:
//
//	server := fast.NewServer(router, fast.ServerOptions{QueryByName: ldbc.QueryByName})
//	log.Fatal(http.ListenAndServe(":8080", server))
//
// # Fault tolerance
//
// The pipeline survives partial failure under a degraded-run contract: a
// run whose faults are all absorbed — transient device faults retried away
// under Options.Retry, a dead card's partitions redistributed to surviving
// devices or the CPU path — returns counts byte-identical to the
// fault-free run, just slower, with Result.Retries/DeviceFailures/
// Redistributed recording what happened. Only exhausted retries and worker
// panics surface, always as a typed error (*DeviceFaultError,
// *KernelPanicError) on a Partial result; a panic never kills the process.
// Options.Chaos injects deterministic fault schedules for testing. The
// Router gives each tenant a circuit breaker (RouterOptions.Breaker):
// consecutive hard failures shed the tenant's calls with ErrBreakerOpen
// until a half-open probe succeeds after the cooldown. Server.Shutdown
// drains in-flight matches and ends subscription streams with a terminal
// "draining" line; handler panics become 500 internal via the recovery
// middleware.
package fast

import (
	"context"
	"fmt"
	"time"

	"fastmatch/graph"
	"fastmatch/internal/baseline"
	"fastmatch/internal/core"
	"fastmatch/internal/cst"
	"fastmatch/internal/fpgasim"
	"fastmatch/internal/host"
	"fastmatch/internal/order"
)

// Variant selects the kernel implementation being modelled (Section VI).
type Variant string

// Kernel variants, in ascending optimisation order. VariantShare is the
// paper's final configuration ("FAST"): the SEP kernel plus a CPU share of
// δ = 0.1 (Fig. 13's sweet spot).
const (
	VariantDRAM  Variant = "dram"
	VariantBasic Variant = "basic"
	VariantTask  Variant = "task"
	VariantSep   Variant = "sep"
	VariantShare Variant = "share"
)

// DefaultDelta is the CPU workload share used by VariantShare.
const DefaultDelta = 0.1

// AllVariants lists the kernel variants in ascending optimisation order.
func AllVariants() []Variant {
	return []Variant{VariantDRAM, VariantBasic, VariantTask, VariantSep, VariantShare}
}

func (v Variant) toCore() (core.Variant, float64, error) {
	switch v {
	case VariantDRAM:
		return core.VariantDRAM, 0, nil
	case VariantBasic:
		return core.VariantBasic, 0, nil
	case VariantTask:
		return core.VariantTask, 0, nil
	case VariantSep, "":
		return core.VariantSep, 0, nil
	case VariantShare:
		return core.VariantSep, DefaultDelta, nil
	}
	return 0, 0, fmt.Errorf("fast: unknown variant %q", v)
}

// DeviceConfig describes the simulated FPGA card. The zero value means the
// paper's Alveo U200 setup (300 MHz, 35 MB BRAM, 64 GB DRAM, PCIe gen3×16).
type DeviceConfig struct {
	ClockMHz    float64
	BRAMBytes   int64
	DRAMBytes   int64
	PortMax     int
	BatchSize   int // the paper's No: partial results expanded per round
	DRAMLatency int // cycles per random DRAM read (paper: 7–8)
	PCIeGBps    float64
}

// DefaultDevice returns the U200-like configuration.
func DefaultDevice() DeviceConfig {
	d := fpgasim.DefaultConfig()
	return DeviceConfig{
		ClockMHz:    d.ClockMHz,
		BRAMBytes:   d.BRAMBytes,
		DRAMBytes:   d.DRAMBytes,
		PortMax:     d.PortMax,
		BatchSize:   d.No,
		DRAMLatency: d.DRAMLatency,
		PCIeGBps:    d.PCIeGBps,
	}
}

func (dc DeviceConfig) toSim() fpgasim.Config {
	cfg := fpgasim.DefaultConfig()
	if dc.ClockMHz > 0 {
		cfg.ClockMHz = dc.ClockMHz
	}
	if dc.BRAMBytes > 0 {
		cfg.BRAMBytes = dc.BRAMBytes
	}
	if dc.DRAMBytes > 0 {
		cfg.DRAMBytes = dc.DRAMBytes
	}
	if dc.PortMax > 0 {
		cfg.PortMax = dc.PortMax
	}
	if dc.BatchSize > 0 {
		cfg.No = dc.BatchSize
	}
	if dc.DRAMLatency > 0 {
		cfg.DRAMLatency = dc.DRAMLatency
	}
	if dc.PCIeGBps > 0 {
		cfg.PCIeGBps = dc.PCIeGBps
	}
	return cfg
}

// Options configures Match. A nil *Options means VariantShare on the
// default device.
type Options struct {
	Variant  Variant
	Device   DeviceConfig
	NumFPGAs int
	// Delta overrides the CPU workload share δ (the VariantShare default is
	// DefaultDelta). A positive Delta always applies; an explicit δ = 0
	// (force everything to the FPGA) is only distinguishable from "unset"
	// when DeltaSet is true — or use the per-call WithDelta(0), which needs
	// no flag.
	Delta float64
	// DeltaSet marks Delta as an explicit override even when it is zero.
	// Without it a zero Delta means "use the variant's default", which made
	// δ = 0 silently inexpressible through this struct.
	DeltaSet bool
	// Order picks the matching-order strategy: "path" (default), "cfl",
	// "daf", "ceci".
	Order string
	// CollectEmbeddings materialises matches in Result.Embeddings.
	CollectEmbeddings bool
	// Workers > 1 runs CST partitions across that many goroutines with the
	// CPU δ-share processed concurrently; 0 or 1 keeps the sequential
	// pipeline. Counts do not depend on Workers.
	Workers int
	// PartitionWorkers > 1 parallelises the partition producer itself
	// (Algorithm 2's restrict-and-recurse steps run on a bounded task pool)
	// so it no longer serialises in front of the Workers fan-out. Delivery
	// stays in sequential order, so counts do not depend on it either. In
	// Match, 0 or 1 keeps the sequential producer; NewEngine defaults 0 to
	// Workers.
	PartitionWorkers int
	// PlanCacheSize bounds Engine's plan cache (distinct query structures):
	// > 0 is an explicit entry cap, 0 means DefaultPlanCacheSize, and < 0
	// keeps the cache unbounded. Least-recently-used plans are evicted and
	// transparently re-planned if the query recurs. Match ignores it.
	PlanCacheSize int
	// Chaos, when non-nil, injects deterministic faults into the pipeline
	// (see ChaosConfig for the degraded-run contract). nil injects nothing.
	Chaos *ChaosConfig
	// Retry bounds the backoff-retry applied to transient device faults.
	// The zero value means the host defaults; Max < 0 disables retries.
	Retry RetryPolicy
}

// hostConfig translates Options into the internal pipeline configuration.
func (o *Options) hostConfig() (host.Config, error) {
	variant, delta, err := o.Variant.toCore()
	if err != nil {
		return host.Config{}, err
	}
	if o.DeltaSet || o.Delta > 0 {
		// Range-check the engine-level override here, where NewEngine and
		// Router.AddGraph validate, so a bad δ fails at construction or
		// registration — not as a host: error after a query has already
		// burned a Prepare and a plan-cache slot.
		if o.Delta < 0 || o.Delta >= 1 {
			return host.Config{}, fmt.Errorf("fast: Options.Delta %v outside [0,1)", o.Delta)
		}
		delta = o.Delta
	}
	faults, err := o.Chaos.toInjector()
	if err != nil {
		return host.Config{}, err
	}
	cfg := host.Config{
		Device:           o.Device.toSim(),
		NumFPGAs:         o.NumFPGAs,
		Variant:          variant,
		Delta:            delta,
		Strategy:         host.OrderStrategy(o.Order),
		Collect:          o.CollectEmbeddings,
		Workers:          o.Workers,
		PartitionWorkers: o.PartitionWorkers,
		Faults:           faults,
		Retry:            o.Retry.toHost(),
	}
	if cfg.Strategy == "" {
		cfg.Strategy = host.OrderPath
	}
	return cfg, nil
}

// Result reports one end-to-end match.
type Result struct {
	Count      int64
	Embeddings []graph.Embedding

	// Phase timings (see host.Report for composition semantics).
	BuildTime     time.Duration
	PartitionTime time.Duration
	TransferTime  time.Duration
	FPGATime      time.Duration
	CPUShareTime  time.Duration
	Total         time.Duration

	Partitions    int
	CPUPartitions int
	KernelCycles  int64
	CSTBytes      int64
	DataBytes     int64

	// Partial reports that the run stopped before exhausting the search
	// space — the context was cancelled, the deadline or WithTimeout budget
	// expired, a WithLimit bound was reached, or a MatchStream callback
	// returned an error. Count and the statistics cover the work done up to
	// that point.
	Partial bool
	// KernelAborts counts simulated kernel executions that a cancellation
	// interrupted between batch rounds — modelled work the budget threw
	// away.
	KernelAborts int

	// Fault-handling tallies (zero unless faults occurred or were injected).
	// A run that absorbed its faults — transients retried away, dead
	// devices' partitions redistributed — still completes with full,
	// byte-identical counts and no error; these counters are how it shows
	// it degraded. Retries counts backoff-retry attempts, DeviceFailures
	// counts devices observed dying, and Redistributed counts partitions
	// that fell back to the CPU enumeration path.
	Retries        int64
	DeviceFailures int
	Redistributed  int
}

// Match finds all embeddings of q in g using the CPU–FPGA pipeline. It is
// MatchContext with context.Background() and no per-call options — an
// unbounded, uncancellable call, kept for existing callers.
func Match(q *graph.Query, g *graph.Graph, opts *Options) (*Result, error) {
	return MatchContext(context.Background(), q, g, opts)
}

// MatchContext finds embeddings of q in g under ctx and the per-call
// options. Cancellation — ctx firing, a WithTimeout budget expiring, a
// WithLimit bound being reached — stops the pipeline at its next check
// point: between CST partitions, between kernel batch rounds, and between
// CPU δ-share embeddings, so a deadline interrupts a pathological query
// mid-flight.
//
// A cancelled call returns the partial Result (Partial set, counts covering
// the work done) together with ErrCanceled or context.DeadlineExceeded; a
// limit stop returns the partial Result with a nil error. An
// already-expired ctx returns promptly without planning. Callers that need
// repeated queries against one graph should use an Engine instead.
func MatchContext(ctx context.Context, q *graph.Query, g *graph.Graph, opts *Options, callOpts ...MatchOption) (*Result, error) {
	if opts == nil {
		opts = &Options{Variant: VariantShare}
	}
	call, err := resolveCall(callOpts)
	if err != nil {
		return nil, err
	}
	cfg, err := opts.hostConfig()
	if err != nil {
		return nil, err
	}
	call.apply(&cfg)
	ctx, cancel := call.callContext(ctx)
	defer cancel()
	return matchReport(host.Match(ctx, q, g, cfg))
}

// matchReport converts host.Match's (report, error) into the public shape:
// hard failures (bad configuration, device overflow) yield a nil Result,
// while an interrupted run keeps its partial Result alongside the error.
func matchReport(rep host.Report, err error) (*Result, error) {
	if err != nil && !rep.Partial {
		return nil, err
	}
	return resultFromReport(rep), err
}

// resultFromReport converts the internal report to the public Result.
func resultFromReport(rep host.Report) *Result {
	return &Result{
		Count:          rep.Embeddings,
		Embeddings:     rep.Collected,
		BuildTime:      rep.BuildTime,
		PartitionTime:  rep.PartitionTime,
		TransferTime:   rep.TransferTime,
		FPGATime:       rep.FPGATime,
		CPUShareTime:   rep.CPUShareTime,
		Total:          rep.Total,
		Partitions:     rep.NumPartitions,
		CPUPartitions:  rep.CPUPartitions,
		KernelCycles:   rep.KernelCycles,
		CSTBytes:       rep.CSTBytes,
		DataBytes:      rep.DataBytes,
		Partial:        rep.Partial,
		KernelAborts:   rep.KernelAborts,
		Retries:        rep.Retries,
		DeviceFailures: rep.DeviceFailures,
		Redistributed:  rep.Redistributed,
	}
}

// Count returns only the number of embeddings of q in g, using the default
// pipeline.
func Count(q *graph.Query, g *graph.Graph) (int64, error) {
	res, err := Match(q, g, nil)
	if err != nil {
		return 0, err
	}
	return res.Count, nil
}

// Baseline names a comparison algorithm from the paper's evaluation.
type Baseline string

// The comparison algorithms of Section VII.
const (
	BaselineBacktrack Baseline = "backtrack" // plain backtracking oracle
	BaselineCFL       Baseline = "CFL"       // CFL-Match-like (edge verification)
	BaselineDAF       Baseline = "DAF"       // DAF-like (candidate space, adaptive order)
	BaselineCECI      Baseline = "CECI"      // CECI-like (intersection based)
	BaselineGpSM      Baseline = "GpSM"      // GPU-style edge joins
	BaselineGSI       Baseline = "GSI"       // GPU-style prealloc-combine joins
)

// AllBaselines lists the comparison algorithms.
func AllBaselines() []Baseline {
	return []Baseline{BaselineBacktrack, BaselineCFL, BaselineDAF, BaselineCECI, BaselineGpSM, BaselineGSI}
}

// BaselineOptions configures RunBaseline.
type BaselineOptions struct {
	// Threads > 1 wraps the algorithm with root-candidate partitioning
	// (the paper's DAF-8 / CECI-8).
	Threads int
	// MemoryBudget bounds the join algorithms' device memory (bytes);
	// exceeding it returns ErrOOM like a real GPU allocation failure.
	MemoryBudget int64
	// Timeout aborts with ErrTimeout (the paper's INF marker).
	Timeout           time.Duration
	CollectEmbeddings bool
}

// Sentinel errors surfaced from baselines.
var (
	ErrOOM     = baseline.ErrOOM
	ErrTimeout = baseline.ErrTimeout
)

// BaselineResult reports a baseline run.
type BaselineResult struct {
	Count      int64
	Embeddings []graph.Embedding
	Elapsed    time.Duration
	PeakMemory int64
}

// RunBaseline executes one comparison algorithm and measures wall time.
func RunBaseline(name Baseline, q *graph.Query, g *graph.Graph, opts BaselineOptions) (*BaselineResult, error) {
	alg, ok := baseline.Registry()[string(name)]
	if !ok {
		return nil, fmt.Errorf("fast: unknown baseline %q", name)
	}
	if opts.Threads > 1 {
		alg = baseline.Parallel(alg, opts.Threads)
	}
	start := time.Now()
	res, err := alg(q, g, baseline.Options{
		Collect:      opts.CollectEmbeddings,
		MemoryBudget: opts.MemoryBudget,
		Timeout:      opts.Timeout,
	})
	elapsed := time.Since(start)
	if err != nil {
		return nil, err
	}
	return &BaselineResult{
		Count:      res.Count,
		Embeddings: res.Embeddings,
		Elapsed:    elapsed,
		PeakMemory: res.PeakMemory,
	}, nil
}

// EstimateWorkload exposes the paper's workload-estimation DP (Section V-C):
// the number of spanning-tree embeddings in the CST of (q, g), the quantity
// the scheduler balances between CPU and FPGA.
func EstimateWorkload(q *graph.Query, g *graph.Graph) float64 {
	root := order.SelectRoot(q, g)
	tree := order.BuildBFSTree(q, root)
	return cst.EstimateWorkload(cst.Build(q, g, tree))
}

// CSTStats summarises the CST the pipeline would build for (q, g):
// candidate totals, adjacency entries, size in bytes and the maximum
// candidate degree the partitioner bounds.
type CSTStats struct {
	Candidates int
	AdjEntries int
	SizeBytes  int64
	MaxDegree  int
}

// AnalyzeCST builds the CST for (q, g) and reports its statistics.
func AnalyzeCST(q *graph.Query, g *graph.Graph) CSTStats {
	root := order.SelectRoot(q, g)
	tree := order.BuildBFSTree(q, root)
	s := cst.Build(q, g, tree).ComputeStats()
	return CSTStats{
		Candidates: s.CandTotal,
		AdjEntries: s.AdjEntries,
		SizeBytes:  s.SizeBytes,
		MaxDegree:  s.MaxDegree,
	}
}
