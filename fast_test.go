package fast

import (
	"errors"
	"testing"
	"time"

	"fastmatch/graph"
	"fastmatch/ldbc"
)

func testGraph() *graph.Graph {
	return ldbc.Generate(ldbc.Config{ScaleFactor: 1, Seed: 42})
}

func TestMatchDefaults(t *testing.T) {
	g := testGraph()
	q, _ := ldbc.QueryByName("q2")
	res, err := Match(q, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count <= 0 {
		t.Errorf("Count = %d", res.Count)
	}
	if res.Total <= 0 || res.Partitions < 1 {
		t.Errorf("result: %+v", res)
	}
	n, err := Count(q, g)
	if err != nil || n != res.Count {
		t.Errorf("Count() = %d,%v want %d", n, err, res.Count)
	}
}

func TestAllVariantsAgree(t *testing.T) {
	g := testGraph()
	q, _ := ldbc.QueryByName("q5")
	var want int64 = -1
	for _, v := range AllVariants() {
		res, err := Match(q, g, &Options{Variant: v})
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if want == -1 {
			want = res.Count
		} else if res.Count != want {
			t.Errorf("%s: %d, want %d", v, res.Count, want)
		}
	}
	if _, err := Match(q, g, &Options{Variant: "warp"}); err == nil {
		t.Error("unknown variant accepted")
	}
}

func TestVariantShareUsesCPU(t *testing.T) {
	g := testGraph()
	q, _ := ldbc.QueryByName("q7")
	// Tiny BRAM forces many partitions, giving the scheduler something to
	// share with the CPU.
	dev := DefaultDevice()
	dev.BRAMBytes = 1 << 16
	dev.BatchSize = 64
	res, err := Match(q, g, &Options{Variant: VariantShare, Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	if res.Partitions < 2 {
		t.Skipf("only %d partitions", res.Partitions)
	}
	if res.CPUPartitions == 0 {
		t.Error("VariantShare assigned no CPU work despite many partitions")
	}
}

func TestMatchCollectEmbeddings(t *testing.T) {
	g := testGraph()
	q, _ := ldbc.QueryByName("q0")
	res, err := Match(q, g, &Options{CollectEmbeddings: true})
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(res.Embeddings)) != res.Count {
		t.Fatalf("collected %d of %d", len(res.Embeddings), res.Count)
	}
	for _, e := range res.Embeddings[:min(len(res.Embeddings), 50)] {
		if err := graph.VerifyEmbedding(q, g, e); err != nil {
			t.Fatalf("invalid embedding: %v", err)
		}
	}
}

func TestBaselinesMatchPipeline(t *testing.T) {
	g := testGraph()
	q, _ := ldbc.QueryByName("q4")
	want, err := Count(q, g)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range AllBaselines() {
		res, err := RunBaseline(b, q, g, BaselineOptions{})
		if err != nil {
			t.Fatalf("%s: %v", b, err)
		}
		if res.Count != want {
			t.Errorf("%s: %d, want %d", b, res.Count, want)
		}
		if res.Elapsed <= 0 {
			t.Errorf("%s: elapsed %v", b, res.Elapsed)
		}
	}
	if _, err := RunBaseline("nope", q, g, BaselineOptions{}); err == nil {
		t.Error("unknown baseline accepted")
	}
}

func TestBaselineThreads(t *testing.T) {
	g := testGraph()
	q, _ := ldbc.QueryByName("q5")
	seq, err := RunBaseline(BaselineCECI, q, g, BaselineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunBaseline(BaselineCECI, q, g, BaselineOptions{Threads: 8})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Count != par.Count {
		t.Errorf("CECI-8 count %d, CECI %d", par.Count, seq.Count)
	}
}

func TestBaselineOOMAndTimeout(t *testing.T) {
	g := ldbc.Generate(ldbc.Config{ScaleFactor: 3, Seed: 42})
	q, _ := ldbc.QueryByName("q6")
	if _, err := RunBaseline(BaselineGpSM, q, g, BaselineOptions{MemoryBudget: 1 << 10}); !errors.Is(err, ErrOOM) {
		t.Errorf("GpSM with 1KB: %v, want ErrOOM", err)
	}
	if _, err := RunBaseline(BaselineBacktrack, q, g, BaselineOptions{Timeout: time.Nanosecond}); !errors.Is(err, ErrTimeout) {
		t.Errorf("1ns timeout: %v, want ErrTimeout", err)
	}
}

func TestEstimateWorkloadAndAnalyze(t *testing.T) {
	g := testGraph()
	q, _ := ldbc.QueryByName("q1")
	w := EstimateWorkload(q, g)
	n, _ := Count(q, g)
	if w < float64(n) {
		t.Errorf("workload estimate %v below true count %d", w, n)
	}
	s := AnalyzeCST(q, g)
	if s.Candidates <= 0 || s.SizeBytes <= 0 || s.MaxDegree <= 0 {
		t.Errorf("AnalyzeCST: %+v", s)
	}
}

func TestDeviceConfigKnobs(t *testing.T) {
	g := testGraph()
	q, _ := ldbc.QueryByName("q2")
	slow := DefaultDevice()
	slow.ClockMHz = 30 // 10× slower clock → 10× the kernel time
	fastRes, err := Match(q, g, &Options{Variant: VariantSep})
	if err != nil {
		t.Fatal(err)
	}
	slowRes, err := Match(q, g, &Options{Variant: VariantSep, Device: slow})
	if err != nil {
		t.Fatal(err)
	}
	if slowRes.Count != fastRes.Count {
		t.Fatalf("clock changed results")
	}
	ratio := float64(slowRes.FPGATime) / float64(fastRes.FPGATime)
	if ratio < 5 || ratio > 20 {
		t.Errorf("10× clock slowdown gave FPGA-time ratio %.1f", ratio)
	}
}
