package fast

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fastmatch/graph"
	"fastmatch/internal/host"
)

// ErrUnknownGraph reports a Router call naming a graph that is not (or no
// longer) registered. Errors returned by the Router wrap it, so
// errors.Is(err, ErrUnknownGraph) identifies routing misses regardless of
// the message.
var ErrUnknownGraph = errors.New("unknown graph")

// RouterOptions configures a Router.
type RouterOptions struct {
	// Workers is the global kernel-work budget: one token bucket of this
	// size is shared by every graph's engine, so N graphs serving traffic
	// at once cannot oversubscribe the host the way N independent engines
	// (each sized to the machine) would. 0 means runtime.NumCPU().
	Workers int
	// Engine is the default engine Options template for graphs added with
	// a nil per-graph *Options. nil means VariantShare on the default
	// device. Workers/PartitionWorkers left zero default to the router's
	// shared budget size.
	Engine *Options
	// MaxQueue bounds each tenant's admission queue: calls beyond a
	// tenant's weighted budget share wait in a per-tenant FIFO of at most
	// this many entries, and arrivals past it are shed immediately with
	// ErrQueueFull. 0 means DefaultMaxQueue; negative disables queuing
	// entirely (any call that cannot be granted on arrival is shed).
	MaxQueue int
	// Breaker configures the per-tenant circuit breaker (see
	// BreakerOptions): consecutive hard failures trip it, open tenants shed
	// with ErrBreakerOpen until a cooldown probe succeeds. The zero value
	// enables it with the defaults; Threshold < 0 disables it.
	Breaker BreakerOptions
}

// Router is a multi-graph serving front end: a registry of named data
// graphs, each backed by a lazily constructed Engine, all drawing kernel
// work from one shared worker budget. It is the multi-tenant shape the
// paper's host/coordinator role scales to — per-tenant SLOs ride on the
// per-call option surface (default MatchOptions per graph, overridable per
// call), and graphs can be added, removed and hot-swapped while traffic is
// in flight.
//
// In front of the engines sits an explicit admission controller: each call
// takes one grant from a weighted token dispenser sized to the shared
// budget before it runs. Per-tenant weights (WithWeight as an AddGraph
// default) guarantee each graph a proportional share of the budget under
// contention, excess calls wait in a bounded per-tenant FIFO, and a call is
// shed immediately — ErrQueueFull, or ErrDeadlineDoomed when its deadline
// cannot survive the estimated queue wait plus the tenant's observed p50
// service time — instead of queue-blindly blocking. Queue depth, shed and
// latency figures surface through Stats.
//
// A Router is safe for concurrent use. SwapGraph is atomic: calls that
// already resolved the name finish on the old graph and its cached plans;
// calls that resolve after the swap see the new graph with a fresh plan
// cache. Counts stay deterministic per graph regardless of how many tenants
// run concurrently — the budget changes scheduling, never results.
type Router struct {
	workers int
	pool    chan struct{}
	tmpl    *Options
	adm     *admitter
	brkOpts BreakerOptions

	mu     sync.RWMutex
	graphs map[string]*routerGraph
}

// routerGraph is one named tenant: its engine options (fixed at AddGraph),
// resolved default call options, counters that survive SwapGraph, and the
// current serving state, which SwapGraph replaces wholesale.
type routerGraph struct {
	opts     *Options
	defaults callOptions
	counters *graphCounters
	brk      *breaker    // per-tenant circuit breaker; nil when disabled
	state    *graphState // replaced by SwapGraph/ApplyDelta under Router.mu

	// mutMu serializes structural mutation of this tenant — ApplyDelta
	// batches and Subscribe registrations — so every standing query observes
	// an unbroken epoch sequence: registered at epoch E, notified for E+1,
	// E+2, … with no gap and no duplicate. SwapGraph deliberately does NOT
	// take it (a swap must not wait behind a long delta); ApplyDelta detects
	// the interleave by re-checking its state snapshot at commit. Lock
	// order: mutMu before Router.mu; never the reverse. The order is
	// machine-checked by the lockorder analyzer (internal/lint) through the
	// declarations below.
	//
	//fastmatch:lockorder routerGraph.mutMu < Router.mu
	mutMu sync.Mutex

	// Standing continuous queries (subscribe.go), guarded by subMu, which
	// nests inside both mutMu and Router.mu and takes no lock itself.
	//
	//fastmatch:lockorder Router.mu < routerGraph.subMu
	//fastmatch:lockorder routerGraph.mutMu < routerGraph.subMu
	subMu   sync.Mutex
	subs    map[int64]*Subscription
	nextSub int64
}

// closeSubs terminates every standing query on this tenant with reason
// (graph swapped or removed). Each drain goroutine flushes what was already
// queued and exits; the subscriptions unregister themselves.
func (ent *routerGraph) closeSubs(reason error) {
	ent.subMu.Lock()
	subs := make([]*Subscription, 0, len(ent.subs))
	for _, s := range ent.subs {
		subs = append(subs, s)
	}
	ent.subMu.Unlock()
	for _, s := range subs {
		s.close(reason)
	}
}

// graphState binds one data graph to its lazily built Engine. In-flight
// matches hold the state they resolved, so a swap never yanks a graph or a
// plan out from under a running call.
type graphState struct {
	g *graph.Graph
	// carry seeds the lazily built engine's plan cache with the previous
	// epoch's planning decisions (ApplyDelta sets it when the delta keeps
	// the label set; see Engine.planSeeds). Written before the state is
	// published, read only inside once.
	carry map[string]*host.Plan
	once  sync.Once
	eng   atomic.Pointer[Engine]
	err   error // set by once; read only after once.Do returns
}

// engine returns the state's Engine, building it on first use. Construction
// is a singleflight: concurrent first calls share one build.
func (st *graphState) engine(opts *Options, pool chan struct{}) (*Engine, error) {
	st.once.Do(func() {
		eng, err := newEngine(st.g, opts, pool)
		if err != nil {
			st.err = err
			return
		}
		eng.seeds = st.carry
		st.eng.Store(eng)
	})
	if st.err != nil {
		return nil, st.err
	}
	return st.eng.Load(), nil
}

// graphCounters aggregates one tenant's serving history across swaps.
type graphCounters struct {
	calls         atomic.Int64
	partials      atomic.Int64
	failures      atomic.Int64
	kernelAborts  atomic.Int64
	swaps         atomic.Int64
	deltas        atomic.Int64
	notifications atomic.Int64
}

// record tallies one routed call. A hard failure yields no Result; a call
// cut short by a limit, deadline or cancellation keeps its partial Result
// and counts as a Partial, not a Failure — a tenant whose SLO fires on
// every query is being served as designed, and the batch path (which has
// only the nil-result signal) counts the same way.
func (c *graphCounters) record(res *Result, err error) {
	c.calls.Add(1)
	if res == nil {
		if err != nil {
			c.failures.Add(1)
		}
		return
	}
	if res.Partial {
		c.partials.Add(1)
	}
	c.kernelAborts.Add(int64(res.KernelAborts))
}

// GraphStats is one graph's slice of Router.Stats: serving counters
// accumulated across swaps, plus the current engine's plan-cache state
// (zero until the first match builds the engine; reset by SwapGraph, which
// rotates the plan cache with the graph).
type GraphStats struct {
	// Calls counts every routed match (batch queries count individually);
	// Partials those that returned a partial Result (limit, deadline or
	// cancellation — an SLO firing is service, not failure), Failures those
	// that failed outright with no Result, and KernelAborts the modelled
	// kernel executions cancellation threw away.
	Calls, Partials, Failures, KernelAborts int64
	// Swaps counts SwapGraph replacements since AddGraph.
	Swaps int64
	// Dynamics (delta.go in package graph; dynamic.go/subscribe.go here).
	// Epoch is the current graph snapshot's epoch — 0 for a freshly added
	// or swapped graph, +1 per applied delta batch (a swap resets it with
	// the graph). Deltas counts ApplyDelta batches committed across the
	// tenant's lifetime; Subscriptions the standing queries currently
	// registered; Notifications the MatchDelta records computed for
	// subscribers (one per subscription per committed batch).
	Epoch         uint64
	Deltas        int64
	Subscriptions int
	Notifications int64
	// Plan-cache state of the graph's current engine.
	PlanCacheHits, PlanCacheMisses, PlanCacheEvictions int64
	CachedPlans                                        int
	// Admission-controller state. Weight is the tenant's registered budget
	// share weight (1 unless WithWeight was given at AddGraph); QueueDepth
	// the calls currently waiting for a grant. Admitted counts calls that
	// received a grant (a batch is one admission however many queries it
	// carries — Calls counts the queries); ShedQueueFull and ShedDoomed
	// count calls rejected on arrival, QueueTimeouts calls whose context
	// fired while queued. Shed and queue-timed-out calls never ran, so they
	// appear here and not in Calls/Failures.
	Weight        int
	QueueDepth    int
	Admitted      int64
	ShedQueueFull int64
	ShedDoomed    int64
	QueueTimeouts int64
	// Service-latency quantiles of admitted calls (log₂-bucket upper
	// bounds; zero until the first call completes). The p50 also steers the
	// deadline-doomed shed estimate.
	P50Latency time.Duration
	P99Latency time.Duration
	// Circuit-breaker state (breaker.go). BreakerState is "closed", "open"
	// or "half_open" (a disabled breaker reports "closed" forever);
	// BreakerOpens counts trips including re-opens after a failed probe;
	// ShedBreakerOpen counts calls rejected with ErrBreakerOpen. Like the
	// other counters, breaker state survives SwapGraph: a swap replaces the
	// graph, not the evidence that the tenant's serving path was failing.
	BreakerState    string
	BreakerOpens    int64
	ShedBreakerOpen int64
}

// NewRouter creates an empty Router with its shared worker budget.
func NewRouter(opts RouterOptions) *Router {
	w := opts.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	return &Router{
		workers: w,
		pool:    make(chan struct{}, w),
		tmpl:    opts.Engine,
		adm:     newAdmitter(w, opts.MaxQueue),
		brkOpts: opts.Breaker,
		graphs:  make(map[string]*routerGraph),
	}
}

// Workers returns the size of the shared worker budget.
func (r *Router) Workers() int { return r.workers }

// AddGraph registers g under name. opts configures the graph's engine (nil
// means the router's Engine template, else the package default); Workers
// and PartitionWorkers left zero default to the shared budget size, and the
// engine always draws its kernel tokens from the router's budget whatever
// they are set to. defaults are the graph's standing MatchOptions — the
// tenant's SLO, e.g. WithLimit/WithTimeout — applied under any per-call
// overrides (an explicit WithLimit(0) lifts a default limit; a default
// timeout can only be tightened, not lifted).
//
// The engine itself is built lazily on the first match, so registering many
// graphs is cheap. AddGraph fails if name is already registered — use
// SwapGraph to replace a graph in place.
func (r *Router) AddGraph(name string, g *graph.Graph, opts *Options, defaults ...MatchOption) error {
	if name == "" {
		return fmt.Errorf("fast: Router.AddGraph: empty graph name")
	}
	if g == nil {
		return fmt.Errorf("fast: Router.AddGraph %q: nil graph", name)
	}
	def, err := resolveCall(defaults)
	if err != nil {
		return fmt.Errorf("fast: Router.AddGraph %q: invalid defaults: %w", name, err)
	}
	o := r.engineOptions(opts)
	// Surface a bad variant or device now, at registration, not as a
	// surprise on the tenant's first query.
	if _, err := o.hostConfig(); err != nil {
		return fmt.Errorf("fast: Router.AddGraph %q: %w", name, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.graphs[name]; ok {
		return fmt.Errorf("fast: Router.AddGraph: graph %q already registered (use SwapGraph to replace it)", name)
	}
	r.graphs[name] = &routerGraph{
		opts:     o,
		defaults: def,
		counters: &graphCounters{},
		brk:      newBreaker(r.brkOpts),
		state:    &graphState{g: g},
	}
	// Register the admission tenant inside the same critical section, so a
	// concurrent call can never resolve the graph and then miss its tenant.
	// WithWeight among the defaults sets the tenant's budget share weight
	// (resolveCall already validated it); unset means 1.
	weight := 1
	if def.weightSet {
		weight = def.weight
	}
	r.adm.register(name, weight)
	return nil
}

// engineOptions resolves the per-graph engine options: an explicit opts
// wins, else the router's template, else the package default — copied, so
// later mutation by the caller cannot leak into the registry — with zero
// Workers defaulting to the shared budget size (newEngine derives that from
// the pool's capacity).
func (r *Router) engineOptions(opts *Options) *Options {
	var o Options
	switch {
	case opts != nil:
		o = *opts
	case r.tmpl != nil:
		o = *r.tmpl
	default:
		o = Options{Variant: VariantShare}
	}
	return &o
}

// RemoveGraph unregisters name. Calls that already resolved the name finish
// on the removed graph; new calls fail with ErrUnknownGraph, and standing
// queries on the graph terminate with an error wrapping ErrUnknownGraph.
func (r *Router) RemoveGraph(name string) error {
	r.mu.Lock()
	ent, ok := r.graphs[name]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("fast: Router.RemoveGraph %q: %w", name, ErrUnknownGraph)
	}
	delete(r.graphs, name)
	// Queued waiters fail with ErrUnknownGraph; in-flight grants release
	// normally through their tenant reference.
	r.adm.unregister(name)
	r.mu.Unlock()
	ent.closeSubs(fmt.Errorf("fast: graph %q removed: %w", name, ErrUnknownGraph))
	return nil
}

// SwapGraph atomically replaces name's data graph: in-flight matches finish
// on the old graph and its cached plans, calls that resolve after the swap
// see g behind a fresh engine — the plan cache rotates with the graph, so
// no plan built over the old graph can ever serve the new one. The graph's
// engine options, default MatchOptions and counters carry over.
//
// A swap also resets the tenant's delta lineage: the epoch counter restarts
// with the new graph (a constructor-fresh graph is epoch 0), an ApplyDelta
// computed against the pre-swap snapshot fails its commit with
// ErrGraphSwapped instead of resurrecting the old lineage, and standing
// queries terminate with an error wrapping ErrGraphSwapped — their epoch
// sequence ended with the graph they were watching.
func (r *Router) SwapGraph(name string, g *graph.Graph) error {
	if g == nil {
		return fmt.Errorf("fast: Router.SwapGraph %q: nil graph", name)
	}
	r.mu.Lock()
	ent, ok := r.graphs[name]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("fast: Router.SwapGraph %q: %w", name, ErrUnknownGraph)
	}
	ent.state = &graphState{g: g}
	ent.counters.swaps.Add(1)
	r.mu.Unlock()
	ent.closeSubs(fmt.Errorf("fast: graph %q swapped: %w", name, ErrGraphSwapped))
	return nil
}

// Graphs lists the registered graph names, sorted.
func (r *Router) Graphs() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.graphs))
	for name := range r.graphs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// resolve snapshots a graph's serving state and merges the call's options
// over its defaults. The snapshot is what makes SwapGraph atomic: the
// returned state keeps serving this call even if the registry moves on.
func (r *Router) resolve(method, name string, opts []MatchOption) (*routerGraph, *graphState, callOptions, error) {
	call, err := resolveCall(opts)
	if err != nil {
		return nil, nil, callOptions{}, err
	}
	r.mu.RLock()
	ent, ok := r.graphs[name]
	var st *graphState
	if ok {
		st = ent.state
	}
	r.mu.RUnlock()
	if !ok {
		return nil, nil, callOptions{}, fmt.Errorf("fast: Router.%s %q: %w", method, name, ErrUnknownGraph)
	}
	return ent, st, call.over(ent.defaults), nil
}

// admit takes one admission grant for a routed call. ctx must already carry
// the call's effective deadline (callContext applied), so queue time burns
// the caller's own budget. On success the grant is returned; on a shed or
// queue timeout the grant is nil and (res, err) are what the Router method
// should return — sheds carry no Result, a queue timeout carries the zero
// partial Result a cut-short running call has, with an error wrapping both
// ErrQueueTimeout and the context's own error.
func (r *Router) admit(ctx context.Context, method, name string) (grant *admGrant, res *Result, err error) {
	grant, err = r.adm.admit(ctx, name)
	if err == nil {
		return grant, nil, nil
	}
	wrapped := fmt.Errorf("fast: Router.%s %q: %w", method, name, err)
	if errors.Is(err, ErrQueueTimeout) {
		return nil, &Result{Partial: true}, wrapped
	}
	return nil, nil, wrapped
}

// MatchContext routes one match to the named graph, under the graph's
// default options with the call's laid on top. Cancellation and budget
// semantics are Engine.MatchContext's, behind the router's admission
// controller: the call may be shed (ErrQueueFull, ErrDeadlineDoomed) or
// time out in the admission queue (ErrQueueTimeout) before any matching
// work starts.
func (r *Router) MatchContext(ctx context.Context, graphName string, q *graph.Query, opts ...MatchOption) (*Result, error) {
	ent, st, call, err := r.resolve("MatchContext", graphName, opts)
	if err != nil {
		return nil, err
	}
	bdone, err := ent.brk.allow()
	if err != nil {
		return nil, fmt.Errorf("fast: Router.MatchContext %q: %w", graphName, err)
	}
	eng, err := st.engine(ent.opts, r.pool)
	if err != nil {
		breakerDone(bdone, err)
		return nil, err
	}
	ctx, cancel := call.callContext(ctx)
	defer cancel()
	grant, shedRes, err := r.admit(ctx, "MatchContext", graphName)
	if grant == nil {
		breakerDone(bdone, err)
		return shedRes, err
	}
	res, err := eng.MatchContext(ctx, q, call.asOption())
	r.adm.release(grant)
	breakerDone(bdone, err)
	ent.counters.record(res, err)
	return res, err
}

// breakerDone settles a breaker admission with the call's final error; a
// nil done (breaker disabled) is a no-op.
func breakerDone(done func(error), err error) {
	if done != nil {
		done(err)
	}
}

// MatchStream routes a streaming match to the named graph; semantics are
// Engine.MatchStream's under the graph's default options, behind the same
// admission control as MatchContext. The grant is held for the stream's
// whole duration — a slow consumer occupies budget, which is what makes a
// saturated router shed rather than stack up blocked streams.
func (r *Router) MatchStream(ctx context.Context, graphName string, q *graph.Query, emit func(graph.Embedding) error, opts ...MatchOption) (*Result, error) {
	ent, st, call, err := r.resolve("MatchStream", graphName, opts)
	if err != nil {
		return nil, err
	}
	bdone, err := ent.brk.allow()
	if err != nil {
		return nil, fmt.Errorf("fast: Router.MatchStream %q: %w", graphName, err)
	}
	eng, err := st.engine(ent.opts, r.pool)
	if err != nil {
		breakerDone(bdone, err)
		return nil, err
	}
	ctx, cancel := call.callContext(ctx)
	defer cancel()
	grant, shedRes, err := r.admit(ctx, "MatchStream", graphName)
	if grant == nil {
		breakerDone(bdone, err)
		return shedRes, err
	}
	res, err := eng.MatchStream(ctx, q, emit, call.asOption())
	r.adm.release(grant)
	breakerDone(bdone, err)
	ent.counters.record(res, err)
	return res, err
}

// MatchBatchContext routes a whole batch to the named graph; semantics are
// Engine.MatchBatchContext's (aligned results, errors.Join aggregate,
// submission short-circuits once ctx fires), with the graph's defaults
// under every query's options. The batch takes one admission grant however
// many queries it carries; each query still counts as one call in Stats,
// and failures/partials are attributed per query from the batch's own
// per-index errors — never from the joined aggregate, which would charge
// one query's failure to its batch-mates.
func (r *Router) MatchBatchContext(ctx context.Context, graphName string, qs []*graph.Query, opts ...MatchOption) ([]*Result, error) {
	ent, st, call, err := r.resolve("MatchBatchContext", graphName, opts)
	if err != nil {
		return nil, err
	}
	bdone, err := ent.brk.allow()
	if err != nil {
		return nil, fmt.Errorf("fast: Router.MatchBatchContext %q: %w", graphName, err)
	}
	eng, err := st.engine(ent.opts, r.pool)
	if err != nil {
		breakerDone(bdone, err)
		return nil, err
	}
	ctx, cancel := call.callContext(ctx)
	defer cancel()
	grant, shedRes, err := r.admit(ctx, "MatchBatchContext", graphName)
	if grant == nil {
		breakerDone(bdone, err)
		if shedRes == nil {
			return nil, err // shed on arrival: nothing ran
		}
		// Queue timeout: aligned partial zero results, like a batch whose
		// ctx fired before submission.
		results := make([]*Result, len(qs))
		for i := range results {
			results[i] = &Result{Partial: true}
		}
		return results, err
	}
	results, errs := eng.matchBatch(ctx, qs, []MatchOption{call.asOption()})
	r.adm.release(grant)
	// The batch is one breaker admission; settle it with the worst per-query
	// verdict, so one hard failure is not laundered by a batch-mate's
	// deadline in the joined aggregate.
	var bErr error
	for _, e := range errs {
		if e == nil {
			continue
		}
		if bErr == nil {
			bErr = e
		}
		if classify(e) == verdictFailure {
			bErr = e
			break
		}
	}
	breakerDone(bdone, bErr)
	for i, res := range results {
		ent.counters.record(res, errs[i])
	}
	return results, joinBatchErrors(qs, errs)
}

// Stats reports every registered graph's serving counters and its current
// engine's plan-cache state. The map is a copy; mutating it is safe.
func (r *Router) Stats() map[string]GraphStats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]GraphStats, len(r.graphs))
	for name, ent := range r.graphs {
		s := GraphStats{
			Calls:         ent.counters.calls.Load(),
			Partials:      ent.counters.partials.Load(),
			Failures:      ent.counters.failures.Load(),
			KernelAborts:  ent.counters.kernelAborts.Load(),
			Swaps:         ent.counters.swaps.Load(),
			Deltas:        ent.counters.deltas.Load(),
			Notifications: ent.counters.notifications.Load(),
			Epoch:         ent.state.g.Epoch(),
		}
		ent.subMu.Lock()
		s.Subscriptions = len(ent.subs)
		ent.subMu.Unlock()
		s.BreakerState, s.BreakerOpens, s.ShedBreakerOpen = ent.brk.snapshot()
		// The engine pointer is set exactly once per state; a nil load means
		// no match has reached this graph since it was added or swapped.
		if eng := ent.state.eng.Load(); eng != nil {
			s.PlanCacheHits, s.PlanCacheMisses = eng.PlanCacheStats()
			s.PlanCacheEvictions = eng.PlanCacheEvictions()
			s.CachedPlans = eng.CachedPlans()
		}
		if as, ok := r.adm.stats(name); ok {
			s.Weight = as.weight
			s.QueueDepth = as.queueDepth
			s.Admitted = as.admitted
			s.ShedQueueFull = as.shedQueueFull
			s.ShedDoomed = as.shedDoomed
			s.QueueTimeouts = as.queueTimeouts
			s.P50Latency = as.p50
			s.P99Latency = as.p99
		}
		out[name] = s
	}
	return out
}
