package fast

import (
	"sync"
	"testing"

	"fastmatch/graph"
	"fastmatch/ldbc"
)

func engineTestGraph() *graph.Graph {
	return ldbc.Generate(ldbc.Config{ScaleFactor: 1, BasePersons: 120, Seed: 7})
}

// engineTestOptions shrinks the modelled card so CSTs actually partition
// and the worker pool has work to fan out.
func engineTestOptions(workers int) *Options {
	dev := DefaultDevice()
	dev.BRAMBytes = 256 << 10
	dev.BatchSize = 256
	return &Options{Variant: VariantShare, Device: dev, Workers: workers}
}

// TestEngineMatchesOneShot: Engine.Match must agree with the one-shot Match
// on every LDBC query, both on the first (planning) call and on the cached
// repeat.
func TestEngineMatchesOneShot(t *testing.T) {
	g := engineTestGraph()
	eng, err := NewEngine(g, engineTestOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"q1", "q2", "q3", "q4", "q5"} {
		q, err := ldbc.QueryByName(name)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Match(q, g, engineTestOptions(0))
		if err != nil {
			t.Fatal(err)
		}
		first, err := eng.Match(q)
		if err != nil {
			t.Fatal(err)
		}
		repeat, err := eng.Match(q)
		if err != nil {
			t.Fatal(err)
		}
		if first.Count != want.Count || repeat.Count != want.Count {
			t.Errorf("%s: engine counts %d/%d, want %d", name, first.Count, repeat.Count, want.Count)
		}
	}
	hits, misses := eng.PlanCacheStats()
	if misses != 5 || hits != 5 {
		t.Errorf("plan cache hits/misses = %d/%d, want 5/5", hits, misses)
	}
	if eng.CachedPlans() != 5 {
		t.Errorf("CachedPlans = %d, want 5", eng.CachedPlans())
	}
}

// TestEngineConcurrentMatchStress: N goroutines hammering the same engine
// with a mix of queries must all observe the sequential counts — the
// "serving traffic" scenario, run under -race in CI.
func TestEngineConcurrentMatchStress(t *testing.T) {
	g := engineTestGraph()
	eng, err := NewEngine(g, engineTestOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"q1", "q2", "q3"}
	want := make(map[string]int64, len(names))
	for _, name := range names {
		q, err := ldbc.QueryByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Match(q, g, engineTestOptions(0))
		if err != nil {
			t.Fatal(err)
		}
		want[name] = res.Count
	}

	const goroutines = 8
	const rounds = 3
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				name := names[(i+r)%len(names)]
				q, err := ldbc.QueryByName(name)
				if err != nil {
					errCh <- err
					return
				}
				res, err := eng.Match(q)
				if err != nil {
					errCh <- err
					return
				}
				if res.Count != want[name] {
					t.Errorf("goroutine %d round %d: %s count %d, want %d", i, r, name, res.Count, want[name])
				}
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if eng.CachedPlans() != len(names) {
		t.Errorf("CachedPlans = %d, want %d", eng.CachedPlans(), len(names))
	}
}

// TestEngineMatchBatch: results stay aligned with the input order and each
// matches its one-shot count; plans are cached across the batch's repeats.
func TestEngineMatchBatch(t *testing.T) {
	g := engineTestGraph()
	eng, err := NewEngine(g, engineTestOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"q1", "q2", "q3", "q1", "q2", "q3"}
	qs := make([]*graph.Query, len(names))
	for i, name := range names {
		q, err := ldbc.QueryByName(name)
		if err != nil {
			t.Fatal(err)
		}
		qs[i] = q
	}
	results, err := eng.MatchBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(qs) {
		t.Fatalf("got %d results, want %d", len(results), len(qs))
	}
	for i, res := range results {
		want, err := Match(qs[i], g, engineTestOptions(0))
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != want.Count {
			t.Errorf("batch[%d] (%s): count %d, want %d", i, names[i], res.Count, want.Count)
		}
	}
	if eng.CachedPlans() != 3 {
		t.Errorf("CachedPlans = %d, want 3", eng.CachedPlans())
	}
}

// TestEngineDefaults: nil options and zero workers fall back to NumCPU, and
// a nil graph is rejected.
func TestEngineDefaults(t *testing.T) {
	if _, err := NewEngine(nil, nil); err == nil {
		t.Error("NewEngine(nil, nil) succeeded, want error")
	}
	eng, err := NewEngine(engineTestGraph(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Workers() < 1 {
		t.Errorf("Workers = %d, want >= 1", eng.Workers())
	}
}
