package fast

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"fastmatch/graph"
	"fastmatch/internal/host"
	"fastmatch/ldbc"
)

func engineTestGraph() *graph.Graph {
	return ldbc.Generate(ldbc.Config{ScaleFactor: 1, BasePersons: 120, Seed: 7})
}

// engineTestOptions shrinks the modelled card so CSTs actually partition
// and the worker pool has work to fan out.
func engineTestOptions(workers int) *Options {
	dev := DefaultDevice()
	dev.BRAMBytes = 256 << 10
	dev.BatchSize = 256
	return &Options{Variant: VariantShare, Device: dev, Workers: workers}
}

// TestEngineMatchesOneShot: Engine.Match must agree with the one-shot Match
// on every LDBC query, both on the first (planning) call and on the cached
// repeat.
func TestEngineMatchesOneShot(t *testing.T) {
	g := engineTestGraph()
	eng, err := NewEngine(g, engineTestOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"q1", "q2", "q3", "q4", "q5"} {
		q, err := ldbc.QueryByName(name)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Match(q, g, engineTestOptions(0))
		if err != nil {
			t.Fatal(err)
		}
		first, err := eng.Match(q)
		if err != nil {
			t.Fatal(err)
		}
		repeat, err := eng.Match(q)
		if err != nil {
			t.Fatal(err)
		}
		if first.Count != want.Count || repeat.Count != want.Count {
			t.Errorf("%s: engine counts %d/%d, want %d", name, first.Count, repeat.Count, want.Count)
		}
	}
	hits, misses := eng.PlanCacheStats()
	if misses != 5 || hits != 5 {
		t.Errorf("plan cache hits/misses = %d/%d, want 5/5", hits, misses)
	}
	if eng.CachedPlans() != 5 {
		t.Errorf("CachedPlans = %d, want 5", eng.CachedPlans())
	}
}

// TestEngineConcurrentMatchStress: N goroutines hammering the same engine
// with a mix of queries must all observe the sequential counts — the
// "serving traffic" scenario, run under -race in CI.
func TestEngineConcurrentMatchStress(t *testing.T) {
	g := engineTestGraph()
	eng, err := NewEngine(g, engineTestOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"q1", "q2", "q3"}
	want := make(map[string]int64, len(names))
	for _, name := range names {
		q, err := ldbc.QueryByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Match(q, g, engineTestOptions(0))
		if err != nil {
			t.Fatal(err)
		}
		want[name] = res.Count
	}

	const goroutines = 8
	const rounds = 3
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				name := names[(i+r)%len(names)]
				q, err := ldbc.QueryByName(name)
				if err != nil {
					errCh <- err
					return
				}
				res, err := eng.Match(q)
				if err != nil {
					errCh <- err
					return
				}
				if res.Count != want[name] {
					t.Errorf("goroutine %d round %d: %s count %d, want %d", i, r, name, res.Count, want[name])
				}
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if eng.CachedPlans() != len(names) {
		t.Errorf("CachedPlans = %d, want %d", eng.CachedPlans(), len(names))
	}
}

// TestEngineMatchBatch: results stay aligned with the input order and each
// matches its one-shot count; plans are cached across the batch's repeats.
func TestEngineMatchBatch(t *testing.T) {
	g := engineTestGraph()
	eng, err := NewEngine(g, engineTestOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"q1", "q2", "q3", "q1", "q2", "q3"}
	qs := make([]*graph.Query, len(names))
	for i, name := range names {
		q, err := ldbc.QueryByName(name)
		if err != nil {
			t.Fatal(err)
		}
		qs[i] = q
	}
	results, err := eng.MatchBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(qs) {
		t.Fatalf("got %d results, want %d", len(results), len(qs))
	}
	for i, res := range results {
		want, err := Match(qs[i], g, engineTestOptions(0))
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != want.Count {
			t.Errorf("batch[%d] (%s): count %d, want %d", i, names[i], res.Count, want.Count)
		}
	}
	if eng.CachedPlans() != 3 {
		t.Errorf("CachedPlans = %d, want 3", eng.CachedPlans())
	}
}

// TestEnginePlanFailureRetry: a host.Prepare failure must drop the
// singleflight slot so a later call retries — under concurrent first
// requests racing the failing Prepare. Every caller of the failing wave
// shares the one error (one Prepare run, not N), no slot stays poisoned,
// and the retry plans again and serves the right count. Prepare failures
// are unreachable with options NewEngine validates, so the planning hook is
// stubbed.
func TestEnginePlanFailureRetry(t *testing.T) {
	injected := errors.New("injected prepare failure")
	var prepares atomic.Int64
	enginePrepare = func(ctx context.Context, q *graph.Query, g *graph.Graph, cfg host.Config) (*host.Plan, error) {
		if prepares.Add(1) == 1 {
			return nil, injected
		}
		return host.Prepare(ctx, q, g, cfg)
	}
	defer func() { enginePrepare = host.Prepare }()

	g := engineTestGraph()
	eng, err := NewEngine(g, engineTestOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	q, _ := ldbc.QueryByName("q1")
	want, err := Match(q, g, engineTestOptions(0))
	if err != nil {
		t.Fatal(err)
	}

	// First wave: concurrent first requests all race the one failing
	// Prepare. Whoever joins the failed slot must see the injected error;
	// whoever arrives after the slot was dropped may already succeed on the
	// retry path.
	const callers = 8
	var wg sync.WaitGroup
	var failed, succeeded atomic.Int64
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := eng.Match(q)
			switch {
			case errors.Is(err, injected):
				failed.Add(1)
			case err == nil && res.Count == want.Count:
				succeeded.Add(1)
			default:
				t.Errorf("unexpected outcome: res=%+v err=%v", res, err)
			}
		}()
	}
	wg.Wait()
	if failed.Load() == 0 {
		t.Fatal("no caller observed the injected Prepare failure")
	}

	// The failed slot must be gone: a later call retries and succeeds.
	res, err := eng.Match(q)
	if err != nil {
		t.Fatalf("retry after Prepare failure: %v", err)
	}
	if res.Count != want.Count {
		t.Errorf("retry count %d, want %d", res.Count, want.Count)
	}
	if eng.CachedPlans() != 1 {
		t.Errorf("CachedPlans = %d after retry, want 1", eng.CachedPlans())
	}
	if got := prepares.Load(); got != 2 {
		t.Errorf("Prepare ran %d times, want 2 (one shared failure, one retry)", got)
	}
}

// TestEngineDefaults: nil options and zero workers fall back to NumCPU, and
// a nil graph is rejected.
func TestEngineDefaults(t *testing.T) {
	if _, err := NewEngine(nil, nil); err == nil {
		t.Error("NewEngine(nil, nil) succeeded, want error")
	}
	eng, err := NewEngine(engineTestGraph(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Workers() < 1 {
		t.Errorf("Workers = %d, want >= 1", eng.Workers())
	}
}
