module fastmatch

go 1.22
