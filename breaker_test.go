package fast

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fastmatch/ldbc"
)

// fakeClock drives a breaker's injectable clock.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func testBreaker(threshold int, cooldown time.Duration) (*breaker, *fakeClock) {
	b := newBreaker(BreakerOptions{Threshold: threshold, Cooldown: cooldown})
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b.now = clk.now
	return b, clk
}

var errHard = errors.New("engine blew up")

func TestBreakerTripsAfterConsecutiveFailures(t *testing.T) {
	b, _ := testBreaker(3, time.Second)
	for i := 0; i < 3; i++ {
		done, err := b.allow()
		if err != nil {
			t.Fatalf("call %d rejected while closed: %v", i, err)
		}
		done(errHard)
	}
	if state, opens, _ := b.snapshot(); state != breakerOpen || opens != 1 {
		t.Fatalf("after threshold failures: state %s, opens %d; want open, 1", state, opens)
	}
	if _, err := b.allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker admitted a call: %v", err)
	}
	if _, _, shed := b.snapshot(); shed != 1 {
		t.Fatalf("shed = %d, want 1", shed)
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b, _ := testBreaker(2, time.Second)
	for i := 0; i < 5; i++ {
		done, err := b.allow()
		if err != nil {
			t.Fatalf("call %d rejected: %v", i, err)
		}
		if i%2 == 0 {
			done(errHard) // never two in a row
		} else {
			done(nil)
		}
	}
	if state, opens, _ := b.snapshot(); state != breakerClosed || opens != 0 {
		t.Fatalf("interleaved failures tripped the breaker: state %s, opens %d", state, opens)
	}
}

func TestBreakerNeutralOutcomesDoNotCount(t *testing.T) {
	b, _ := testBreaker(2, time.Second)
	for _, err := range []error{
		context.Canceled, context.DeadlineExceeded,
		ErrQueueFull, ErrDeadlineDoomed, ErrQueueTimeout,
	} {
		done, aerr := b.allow()
		if aerr != nil {
			t.Fatalf("rejected during neutral run: %v", aerr)
		}
		done(err)
	}
	if state, opens, _ := b.snapshot(); state != breakerClosed || opens != 0 {
		t.Fatalf("neutral outcomes moved the breaker: state %s, opens %d", state, opens)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b, clk := testBreaker(1, time.Second)
	done, _ := b.allow()
	done(errHard) // trips
	if _, err := b.allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("open breaker admitted a call before cooldown")
	}
	clk.advance(time.Second)
	if state, _, _ := b.snapshot(); state != breakerHalfOpen {
		t.Fatalf("lapsed cooldown reports %s, want half_open", state)
	}
	probe, err := b.allow()
	if err != nil {
		t.Fatalf("cooldown lapsed but probe rejected: %v", err)
	}
	// While the probe is in flight every other call is shed.
	if _, err := b.allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("second call admitted while probe in flight")
	}
	probe(nil)
	if state, opens, _ := b.snapshot(); state != breakerClosed || opens != 1 {
		t.Fatalf("successful probe: state %s, opens %d; want closed, 1", state, opens)
	}
	done, err = b.allow()
	if err != nil {
		t.Fatalf("closed breaker rejected: %v", err)
	}
	done(nil)
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	b, clk := testBreaker(1, time.Second)
	done, _ := b.allow()
	done(errHard)
	clk.advance(time.Second)
	probe, err := b.allow()
	if err != nil {
		t.Fatal(err)
	}
	probe(errHard)
	if state, opens, _ := b.snapshot(); state != breakerOpen || opens != 2 {
		t.Fatalf("failed probe: state %s, opens %d; want open, 2", state, opens)
	}
	if _, err := b.allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("re-opened breaker admitted a call")
	}
}

func TestBreakerNeutralProbeStaysHalfOpen(t *testing.T) {
	b, clk := testBreaker(1, time.Second)
	done, _ := b.allow()
	done(errHard)
	clk.advance(time.Second)
	probe, err := b.allow()
	if err != nil {
		t.Fatal(err)
	}
	probe(context.Canceled) // probe cut short: no evidence either way
	if state, opens, _ := b.snapshot(); state != breakerHalfOpen || opens != 1 {
		t.Fatalf("neutral probe: state %s, opens %d; want half_open, 1", state, opens)
	}
	// The next call probes again.
	if _, err := b.allow(); err != nil {
		t.Fatalf("follow-up probe rejected: %v", err)
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := newBreaker(BreakerOptions{Threshold: -1})
	if b != nil {
		t.Fatal("negative threshold must disable the breaker")
	}
	done, err := b.allow() // nil receiver
	if err != nil || done != nil {
		t.Fatalf("nil breaker allow: done non-nil %v, err %v; want (nil, nil)", done != nil, err)
	}
	if state, opens, shed := b.snapshot(); state != breakerClosed || opens != 0 || shed != 0 {
		t.Fatalf("nil breaker snapshot = (%s, %d, %d)", state, opens, shed)
	}
}

// chaoticRouter builds a Router whose single tenant "g" panics on every
// kernel launch — each routed call is a hard failure.
func chaoticRouter(t *testing.T, brk BreakerOptions) *Router {
	t.Helper()
	g := ldbc.Generate(ldbc.Config{ScaleFactor: 1, BasePersons: 80, Seed: 3})
	r := NewRouter(RouterOptions{Workers: 2, Breaker: brk})
	err := r.AddGraph("g", g, &Options{
		Chaos: &ChaosConfig{Seed: 1, Rules: []FaultRule{
			{Site: FaultSiteKernel, Kind: FaultPanic, EveryNth: 1},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestRouterBreakerShedsFailingTenant: consecutive hard failures through
// the router trip the tenant's breaker; subsequent calls shed with
// ErrBreakerOpen before any matching work, and Stats reports the trip.
func TestRouterBreakerShedsFailingTenant(t *testing.T) {
	r := chaoticRouter(t, BreakerOptions{Threshold: 2, Cooldown: time.Hour})
	q, err := ldbc.QueryByName("q1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		_, err := r.MatchContext(context.Background(), "g", q)
		var kp *KernelPanicError
		if !errors.As(err, &kp) {
			t.Fatalf("call %d: err %v, want the injected kernel panic", i, err)
		}
	}
	_, err = r.MatchContext(context.Background(), "g", q)
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("tripped tenant's call err = %v, want ErrBreakerOpen", err)
	}
	s := r.Stats()["g"]
	if s.BreakerState != breakerOpen || s.BreakerOpens != 1 || s.ShedBreakerOpen != 1 {
		t.Fatalf("stats after trip: %+v", s)
	}
	if s.Calls != 2 {
		t.Fatalf("shed call counted as served: Calls = %d, want 2", s.Calls)
	}
}

// TestRouterBreakerSurvivesSwap: SwapGraph replaces the graph but not the
// breaker — a tenant that was shedding keeps shedding until the cooldown
// probe, even with a fresh graph behind it.
func TestRouterBreakerSurvivesSwap(t *testing.T) {
	r := chaoticRouter(t, BreakerOptions{Threshold: 1, Cooldown: time.Hour})
	q, err := ldbc.QueryByName("q1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.MatchContext(context.Background(), "g", q); err == nil {
		t.Fatal("chaotic call succeeded")
	}
	g2 := ldbc.Generate(ldbc.Config{ScaleFactor: 1, BasePersons: 60, Seed: 4})
	if err := r.SwapGraph("g", g2); err != nil {
		t.Fatal(err)
	}
	if _, err := r.MatchContext(context.Background(), "g", q); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("post-swap call err = %v, want ErrBreakerOpen", err)
	}
}

// TestServerBreakerOpen503: the HTTP front end maps ErrBreakerOpen to 503
// with reason "breaker_open", and the breaker surfaces in /metrics.
func TestServerBreakerOpen503(t *testing.T) {
	r := chaoticRouter(t, BreakerOptions{Threshold: 1, Cooldown: time.Hour})
	srv := NewServer(r, ServerOptions{QueryByName: ldbc.QueryByName})
	post := func() *httptest.ResponseRecorder {
		req := httptest.NewRequest("POST", "/v1/graphs/g/count", strings.NewReader(`{"query":"q1"}`))
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, req)
		return w
	}
	post() // trips the breaker (hard failure surfaces as a non-shed error)
	w := post()
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503; body %s", w.Code, w.Body)
	}
	if !strings.Contains(w.Body.String(), `"breaker_open"`) {
		t.Fatalf("body %s missing breaker_open reason", w.Body)
	}
	mreq := httptest.NewRequest("GET", "/metrics", nil)
	mw := httptest.NewRecorder()
	srv.ServeHTTP(mw, mreq)
	metrics := mw.Body.String()
	for _, want := range []string{
		`fastmatch_breaker_opens_total{graph="g"} 1`,
		`fastmatch_shed_breaker_open_total{graph="g"} 1`,
		`fastmatch_breaker_state{graph="g"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
