package fast

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fastmatch/graph"
	"fastmatch/ldbc"
)

// TestAdmitterQueueFullShed: a tenant whose bounded queue is full sheds
// arrivals immediately with ErrQueueFull — they never block, never count as
// calls, and the shed is visible in the stats.
func TestAdmitterQueueFullShed(t *testing.T) {
	a := newAdmitter(1, -1) // capacity 1, queueing disabled
	a.register("a", 1)

	g, err := a.admit(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := a.admit(context.Background(), "a"); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("admit with zero queue = %v, want ErrQueueFull", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("queue-full shed took %v, want immediate", elapsed)
	}
	s, ok := a.stats("a")
	if !ok || s.shedQueueFull != 1 || s.admitted != 1 {
		t.Errorf("stats = %+v, want shedQueueFull 1, admitted 1", s)
	}
	a.release(g)

	// With a bounded queue of 2: one grant in flight, two queued, the third
	// arrival sheds.
	b := newAdmitter(1, 2)
	b.register("a", 1)
	g, err = b.admit(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if g, err := b.admit(context.Background(), "a"); err == nil {
				b.release(g)
			} else {
				t.Errorf("queued admit failed: %v", err)
			}
		}()
	}
	// Wait for both waiters to be queued before probing the bound.
	for deadline := time.Now().Add(5 * time.Second); ; {
		if s, _ := b.stats("a"); s.queueDepth == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiters never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := b.admit(context.Background(), "a"); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("admit over full queue = %v, want ErrQueueFull", err)
	}
	b.release(g) // drains the queue: each waiter releases its own grant
	wg.Wait()
}

// TestAdmitterDoomedShed: with service history established, a request whose
// deadline cannot cover the estimated queue wait plus one p50 service time
// is rejected on arrival — ErrDeadlineDoomed, matching
// context.DeadlineExceeded — instead of occupying a queue slot it is
// guaranteed to time out in. A tenant with no history never doomed-sheds.
func TestAdmitterDoomedShed(t *testing.T) {
	a := newAdmitter(1, 8)
	a.register("a", 1)
	g, err := a.admit(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}

	// No history: a hopeless deadline still queues (and times out there).
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	_, err = a.admit(ctx, "a")
	cancel()
	if !errors.Is(err, ErrQueueTimeout) || errors.Is(err, ErrDeadlineDoomed) {
		t.Fatalf("fresh-tenant admit = %v, want ErrQueueTimeout (never doomed without history)", err)
	}

	// Seed ~1s of observed service time; now the same deadline is doomed.
	for i := 0; i < 8; i++ {
		g.t.hist.observe(time.Second)
	}
	a.mu.Lock()
	g.t.estP50 = time.Second
	a.mu.Unlock()
	ctx, cancel = context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = a.admit(ctx, "a")
	if !errors.Is(err, ErrDeadlineDoomed) {
		t.Fatalf("admit = %v, want ErrDeadlineDoomed", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("doomed shed error %v should match context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("doomed shed took %v, want immediate rejection", elapsed)
	}
	// A roomy deadline with the same history queues normally.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Hour)
	defer cancel2()
	done := make(chan error, 1)
	go func() {
		g2, err := a.admit(ctx2, "a")
		if err == nil {
			a.release(g2)
		}
		done <- err
	}()
	for deadline := time.Now().Add(5 * time.Second); ; {
		if s, _ := a.stats("a"); s.queueDepth == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("roomy-deadline admit never queued")
		}
		time.Sleep(time.Millisecond)
	}
	a.release(g)
	if err := <-done; err != nil {
		t.Fatalf("queued admit after release = %v, want grant", err)
	}
	s, _ := a.stats("a")
	if s.shedDoomed != 1 || s.queueTimeouts != 1 {
		t.Errorf("stats = %+v, want shedDoomed 1, queueTimeouts 1", s)
	}
}

// TestAdmitterDoomedEWMAAdapts: the doomed estimate must track the current
// service-time regime, not the whole-life histogram median. After a slow
// phase and then a fast one, a deadline the fast regime can easily meet must
// queue — under the old histogram-median check it was shed as doomed,
// because the histogram never forgets the slow phase.
func TestAdmitterDoomedEWMAAdapts(t *testing.T) {
	a := newAdmitter(1, 8)
	a.register("a", 1)

	observe := func(d time.Duration, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			g, err := a.admit(context.Background(), "a")
			if err != nil {
				t.Fatal(err)
			}
			g.start = time.Now().Add(-d) // backdate: the call "took" d
			a.release(g)
		}
	}
	observe(8*time.Second, 30) // slow phase dominates the histogram…
	observe(10*time.Millisecond, 20)

	// …so the reported (histogram) median still says seconds, while the
	// recency-weighted estimate has come down to the fast regime.
	if s, _ := a.stats("a"); s.p50 < time.Second {
		t.Fatalf("histogram p50 = %v, expected the slow phase to dominate it", s.p50)
	}
	if est := a.tenants["a"].estP50; est > 500*time.Millisecond {
		t.Fatalf("estP50 = %v, want it adapted to the fast regime", est)
	}

	// Occupy the only slot so the next call must queue, then offer a 1s
	// deadline: trivially serviceable at ~10ms, doomed at the 8s median.
	g, err := a.admit(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_, err = a.admit(ctx, "a")
	if errors.Is(err, ErrDeadlineDoomed) {
		t.Fatal("serviceable deadline shed as doomed: estimate stuck on stale history")
	}
	if !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("queued admit = %v, want ErrQueueTimeout once the deadline fires", err)
	}
	a.release(g)
}

// TestAdmitterWeightedShares: a heavy tenant may borrow idle capacity, but
// once a light tenant has waiters, every freed slot goes to the tenant with
// the largest share deficit — the heavy tenant cannot hold the light one
// below its guaranteed share.
func TestAdmitterWeightedShares(t *testing.T) {
	a := newAdmitter(4, 8)
	a.register("heavy", 3) // share = max(1, 4·3/4) = 3
	a.register("light", 1) // share = max(1, 4·1/4) = 1

	// Idle borrow: heavy can take the whole budget while light is idle.
	grants := make([]*admGrant, 0, 4)
	for i := 0; i < 4; i++ {
		g, err := a.admit(context.Background(), "heavy")
		if err != nil {
			t.Fatalf("heavy borrow grant %d: %v", i, err)
		}
		grants = append(grants, g)
	}

	// Light arrives: must queue (budget is full) but must win the next free
	// slot over heavy's own backlog — its deficit (1-0) beats heavy's (3-4).
	type outcome struct {
		tenant string
		err    error
	}
	results := make(chan outcome, 2)
	admitAsync := func(tenant string) {
		go func() {
			g, err := a.admit(context.Background(), tenant)
			if err == nil {
				defer a.release(g)
			}
			results <- outcome{tenant, err}
		}()
	}
	admitAsync("heavy") // heavy backlog first, to prove FIFO is per-tenant
	for deadline := time.Now().Add(5 * time.Second); ; {
		if s, _ := a.stats("heavy"); s.queueDepth == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("heavy waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	admitAsync("light")
	for deadline := time.Now().Add(5 * time.Second); ; {
		if s, _ := a.stats("light"); s.queueDepth == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("light waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}

	a.release(grants[0])
	first := <-results
	if first.tenant != "light" || first.err != nil {
		t.Fatalf("first freed slot went to %q (err %v), want light — heavy starved light's share", first.tenant, first.err)
	}
	a.release(grants[1])
	second := <-results
	if second.tenant != "heavy" || second.err != nil {
		t.Fatalf("second freed slot went to %q (err %v), want heavy", second.tenant, second.err)
	}
	for _, g := range grants[2:] {
		a.release(g)
	}

	// While light has a waiter, heavy at-or-over its share cannot take a new
	// slot even if one is momentarily free (no borrow past share under
	// contention).
	hs, _ := a.stats("heavy")
	ls, _ := a.stats("light")
	if hs.admitted != 5 || ls.admitted != 1 {
		t.Errorf("admitted heavy %d light %d, want 5 and 1", hs.admitted, ls.admitted)
	}
}

// TestRouterDoomedShedUnderSaturatedBudget is the PR's acceptance check at
// the Router layer: with the whole worker budget blocked and service
// history established, a request whose deadline cannot survive the queue is
// rejected immediately — returning in far less time than the queue would
// take to drain — rather than waiting out its deadline in line.
func TestRouterDoomedShedUnderSaturatedBudget(t *testing.T) {
	gA, _ := routerTestGraphs()
	r := NewRouter(RouterOptions{Workers: 1, Engine: engineTestOptions(1)})
	if err := r.AddGraph("a", gA, nil); err != nil {
		t.Fatal(err)
	}
	q, err := ldbc.QueryByName("q1")
	if err != nil {
		t.Fatal(err)
	}

	// Seed the tenant's observed service time at ~1s per call: the
	// histogram for reported stats, estP50 for the doomed check.
	r.adm.mu.Lock()
	tn := r.adm.tenants["a"]
	tn.estP50 = time.Second
	r.adm.mu.Unlock()
	for i := 0; i < 8; i++ {
		tn.hist.observe(time.Second)
	}

	// Saturate the budget: a hog stream blocks in emit, holding its grant.
	var once sync.Once
	started := make(chan struct{})
	block := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := r.MatchStream(context.Background(), "a", q, func(graph.Embedding) error {
			once.Do(func() { close(started) })
			<-block
			return nil
		})
		if err != nil {
			t.Errorf("hog stream: %v", err)
		}
	}()
	<-started

	start := time.Now()
	res, err := r.MatchContext(context.Background(), "a", q, WithTimeout(50*time.Millisecond))
	elapsed := time.Since(start)
	if !errors.Is(err, ErrDeadlineDoomed) {
		t.Fatalf("victim error = %v, want ErrDeadlineDoomed", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("victim error %v should match context.DeadlineExceeded", err)
	}
	if res != nil {
		t.Errorf("doomed shed returned a Result: %+v", res)
	}
	// The queue would drain only when the hog unblocks (seconds away, and
	// its own p50 estimate says ~2s); immediate rejection must be far under
	// that. 1s is a generous CI ceiling that still proves "did not wait".
	if elapsed > time.Second {
		t.Errorf("doomed request returned after %v, want immediate rejection ≪ queue drain time", elapsed)
	}

	close(block)
	<-done
	s := r.Stats()["a"]
	if s.ShedDoomed != 1 {
		t.Errorf("ShedDoomed = %d, want 1", s.ShedDoomed)
	}
	if s.Calls != 1 || s.Failures != 0 {
		t.Errorf("shed call leaked into Calls/Failures: %+v", s)
	}
	if s.Admitted != 1 {
		t.Errorf("Admitted = %d, want 1 (the hog)", s.Admitted)
	}
	if s.P50Latency == 0 {
		t.Errorf("P50Latency = 0, want nonzero after hog release")
	}
}

// TestRouterBatchMixedFailureAttribution: a mixed batch must attribute
// failures per query from the batch's own per-index errors — not record the
// joined aggregate against every query — and take exactly one admission
// grant however many queries it carries.
func TestRouterBatchMixedFailureAttribution(t *testing.T) {
	gA, _ := routerTestGraphs()
	r := NewRouter(RouterOptions{Workers: 2, Engine: engineTestOptions(1)})
	if err := r.AddGraph("a", gA, nil); err != nil {
		t.Fatal(err)
	}
	q1, err := ldbc.QueryByName("q1")
	if err != nil {
		t.Fatal(err)
	}
	q2, err := ldbc.QueryByName("q2")
	if err != nil {
		t.Fatal(err)
	}
	want1, want2 := routerWant(t, q1, gA), routerWant(t, q2, gA)

	qs := []*graph.Query{q1, nil, q2}
	results, err := r.MatchBatchContext(context.Background(), "a", qs)
	if err == nil {
		t.Fatal("mixed batch returned nil error, want aggregate naming query 1")
	}
	if len(results) != 3 {
		t.Fatalf("len(results) = %d, want 3", len(results))
	}
	if results[0] == nil || results[0].Count != want1 {
		t.Errorf("results[0] = %+v, want count %d", results[0], want1)
	}
	if results[1] != nil {
		t.Errorf("results[1] = %+v, want nil for the failed query", results[1])
	}
	if results[2] == nil || results[2].Count != want2 {
		t.Errorf("results[2] = %+v, want count %d", results[2], want2)
	}
	if msg := err.Error(); !strings.Contains(msg, "query 1") || strings.Contains(msg, "query 0") || strings.Contains(msg, "query 2") {
		t.Errorf("aggregate error %q should name exactly query 1", msg)
	}

	s := r.Stats()["a"]
	if s.Calls != 3 {
		t.Errorf("Calls = %d, want 3 (each query counts)", s.Calls)
	}
	if s.Failures != 1 {
		t.Errorf("Failures = %d, want 1 — aggregate error must not be charged to every query", s.Failures)
	}
	if s.Partials != 0 {
		t.Errorf("Partials = %d, want 0", s.Partials)
	}
	if s.Admitted != 1 {
		t.Errorf("Admitted = %d, want 1 (one grant per batch)", s.Admitted)
	}
}

// TestAdmitRacesSwapRemove: concurrent admits racing SwapGraph and
// RemoveGraph/AddGraph must never deadlock, leak grants, or surface any
// error other than the admission verdicts and ErrUnknownGraph. Run under
// -race in CI.
func TestAdmitRacesSwapRemove(t *testing.T) {
	gA, gB := routerTestGraphs()
	r := NewRouter(RouterOptions{Workers: 2, Engine: engineTestOptions(1), MaxQueue: 4})
	if err := r.AddGraph("x", gA, nil); err != nil {
		t.Fatal(err)
	}
	q, err := ldbc.QueryByName("q1")
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var served atomic.Int64
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := r.MatchContext(context.Background(), "x", q, WithTimeout(50*time.Millisecond))
				switch {
				case err == nil:
					served.Add(1)
				case errors.Is(err, ErrUnknownGraph),
					errors.Is(err, ErrQueueFull),
					errors.Is(err, ErrDeadlineDoomed),
					errors.Is(err, ErrQueueTimeout),
					errors.Is(err, context.DeadlineExceeded):
					// expected under mutation and a tiny deadline
				default:
					t.Errorf("unexpected error: %v", err)
					return
				}
				_ = res
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 3 {
			case 0:
				_ = r.SwapGraph("x", gB)
			case 1:
				_ = r.RemoveGraph("x")
			case 2:
				_ = r.AddGraph("x", gA, nil)
			}
		}
	}()
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	// The registry may or may not hold x at shutdown; whatever tenant exists
	// must carry a consistent snapshot (queue fully drained).
	if s, ok := r.Stats()["x"]; ok && s.QueueDepth != 0 {
		t.Errorf("queue depth %d after drain, want 0", s.QueueDepth)
	}
	if served.Load() == 0 {
		t.Error("no call ever served during the race — admission wedged?")
	}
}
