package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// AtomicMix flags struct fields that are accessed through sync/atomic
// somewhere in the package but read or written directly elsewhere. Mixing
// the two is a data race even when it "works" on amd64: the plain access is
// unsynchronized. (The serving counters migrated to typed atomic.Int64 in
// PR 6–8 precisely to make this impossible; this analyzer keeps legacy
// atomic.AddInt64-style code from reintroducing the mix.)
var AtomicMix = &analysis.Analyzer{
	Name: "atomicmix",
	Doc:  "flag non-atomic access to struct fields that are elsewhere accessed via sync/atomic",
	Run:  runAtomicMix,
}

func runAtomicMix(pass *analysis.Pass) (any, error) {
	sup := newSuppressor(pass)

	// Pass 1: fields whose address is taken by a sync/atomic call, plus the
	// exact selector nodes used inside those calls (so pass 2 skips them).
	atomicFields := map[*types.Var]token.Pos{}
	inAtomicCall := map[ast.Node]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isSyncAtomicCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if v, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
					if _, seen := atomicFields[v]; !seen {
						atomicFields[v] = call.Pos()
					}
					inAtomicCall[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil, nil
	}

	// Pass 2: any other use of those fields is a plain access.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || inAtomicCall[sel] {
				return true
			}
			v, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
			if !ok || !v.IsField() {
				return true
			}
			if firstAtomic, ok := atomicFields[v]; ok {
				reportf(pass, sup, sel.Pos(),
					"field %s is accessed with sync/atomic (e.g. %s) but read/written directly here; use atomic access everywhere or a typed atomic",
					v.Name(), pass.Fset.Position(firstAtomic))
			}
			return true
		})
	}
	return nil, nil
}

func isSyncAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	name := fn.Name()
	for _, prefix := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}
