package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// CancelPoll flags loops in the engine packages that walk data-scale state
// (partitions, candidate lists, task stacks) without polling a cancellation
// source anywhere in the loop nest. It generalizes the PR 7 fix that threaded
// PartitionConfig.Cancel into restrict's reachability loops: a producer loop
// that never polls turns one slow piece into unbounded cancel latency.
var CancelPoll = &analysis.Analyzer{
	Name: "cancelpoll",
	Doc:  "flag engine loops that never poll a cancellation source",
	Run:  runCancelPoll,
}

// cancelPollScope limits the analyzer to the packages that host producer and
// kernel loops; fixtures reproduce the same import-path suffixes.
var cancelPollScope = []string{"internal/cst", "internal/core", "internal/host"}

// pollNameRE matches call names that count as observing cancellation:
// ctx.Err, ctx.Done, the cancelled()/halted() closures threaded through the
// host layer, and restrictScratch.polled.
var pollNameRE = regexp.MustCompile(`(?i)^(err|done|cancell?ed|cancel|halted?|halt|polled?|poll|stop(ped)?)$`)

// sourceFieldRE matches struct field names that make a value a cancellation
// source (PartitionConfig.Cancel, Options.Cancel, runState.cancel, ...).
var sourceFieldRE = regexp.MustCompile(`(?i)^(cancel|halt|stop)$`)

// sourceMethodRE matches method names that make a type a cancellation source.
var sourceMethodRE = regexp.MustCompile(`(?i)^(cancell?ed|halted|stopped|polled)$`)

func runCancelPoll(pass *analysis.Pass) (any, error) {
	inScope := false
	for _, suf := range cancelPollScope {
		if strings.HasSuffix(pass.Pkg.Path(), suf) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil, nil
	}
	sup := newSuppressor(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !hasCancelSource(pass, fd) {
				continue
			}
			small := smallScaleVars(pass, fd.Body)
			addSmallParams(pass, fd, small)
			cp := &cancelPollCheck{
				pass:       pass,
				sup:        sup,
				localFuncs: localFuncVars(pass, fd.Body),
				queryVars:  queryScaleVars(pass, fd.Body),
				smallVars:  small,
				polls:      map[*ast.FuncLit]bool{},
			}
			cp.checkOutermost(fd.Body)
		}
	}
	return nil, nil
}

// hasCancelSource reports whether fn's receiver or parameters give it a way
// to observe cancellation: a context.Context, a struct with a Cancel-like
// field, or a type with a cancelled()/halted()-like method.
func hasCancelSource(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	var fields []*ast.Field
	if fn.Recv != nil {
		fields = append(fields, fn.Recv.List...)
	}
	if fn.Type.Params != nil {
		fields = append(fields, fn.Type.Params.List...)
	}
	for _, fl := range fields {
		t := pass.TypesInfo.TypeOf(fl.Type)
		if t == nil {
			continue
		}
		if typeIsCancelSource(t) {
			return true
		}
	}
	return false
}

func typeIsCancelSource(t types.Type) bool {
	if isContext(t) {
		return true
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	for i := 0; i < named.NumMethods(); i++ {
		if sourceMethodRE.MatchString(named.Method(i).Name()) {
			return true
		}
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if sourceFieldRE.MatchString(f.Name()) || isContext(f.Type()) {
			return true
		}
	}
	return false
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// localFuncVars maps single-assignment local variables to their function
// literal, so calls like drain(n) inside a loop can be resolved to the
// recursive closure they invoke.
func localFuncVars(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]*ast.FuncLit {
	lits := map[types.Object]*ast.FuncLit{}
	assigns := map[types.Object]int{}
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			return
		}
		assigns[obj]++
		if lit, ok := rhs.(*ast.FuncLit); ok {
			lits[obj] = lit
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || len(vs.Values) != len(vs.Names) {
						continue
					}
					for i, name := range vs.Names {
						record(name, vs.Values[i])
					}
				}
			}
		}
		return true
	})
	// Only single-assignment vars are trustworthy: `handle = func(...)`
	// after `var handle func(...)` counts as one real assignment plus the
	// zero-value declaration, so allow up to two sightings when exactly one
	// bound a literal.
	for obj := range lits {
		if assigns[obj] > 2 {
			delete(lits, obj)
		}
	}
	return lits
}

// queryScaleVars collects local variables whose value is query-sized
// (assigned from a NumVertices() call or from len of a query-scale value);
// loops bounded by them are O(|query|) and exempt from polling.
func queryScaleVars(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Lhs {
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj == nil {
				continue
			}
			if queryScaleExpr(pass, as.Rhs[i]) {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// queryScaleExpr reports whether e denotes a query-sized quantity or value:
// a NumVertices() call, len() of a query-scale value, or a value of a type
// whose name marks it as part of the query plan (QueryVertex, Order, ...).
func queryScaleExpr(pass *analysis.Pass, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CallExpr:
		switch fun := e.Fun.(type) {
		case *ast.SelectorExpr:
			if fun.Sel.Name == "NumVertices" {
				return true
			}
		case *ast.Ident:
			if fun.Name == "len" && len(e.Args) == 1 {
				return queryScaleExpr(pass, e.Args[0])
			}
		}
	}
	if t := pass.TypesInfo.TypeOf(e); t != nil && queryScaleType(t) {
		return true
	}
	return false
}

func queryScaleType(t types.Type) bool {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
			continue
		case *types.Slice:
			t = u.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	name := named.Obj().Name()
	return strings.Contains(name, "Query") || name == "Order"
}

// smallScaleRE matches the names of config fields that size fan-out slices
// (devices, shards, workers): `make([]T, cfg.NumFPGAs)` is device-scale, not
// data-scale, so loops bounded by it need no poll.
var smallScaleRE = regexp.MustCompile(`(?i)^(num\w*|workers|shards|fanout)$`)

// smallScaleVars collects locals assigned `make([]T, E)` where E is a
// Num*-style config field; loops over them (or bounded by their len) are
// fan-out-scale and exempt from polling.
func smallScaleVars(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Lhs {
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			call, ok := as.Rhs[i].(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				continue
			}
			if fun, ok := call.Fun.(*ast.Ident); !ok || fun.Name != "make" {
				continue
			}
			sel, ok := call.Args[1].(*ast.SelectorExpr)
			if !ok || !smallScaleRE.MatchString(sel.Sel.Name) {
				continue
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// smallNameRE matches parameter names that denote fan-out collections
// (device lists, worker sets) rather than data-scale state.
var smallNameRE = regexp.MustCompile(`(?i)^(devices|cards|workers|shards)$`)

// addSmallParams marks fan-out-named slice parameters as small-scale.
func addSmallParams(pass *analysis.Pass, fd *ast.FuncDecl, small map[types.Object]bool) {
	if fd.Type.Params == nil {
		return
	}
	for _, fl := range fd.Type.Params.List {
		for _, name := range fl.Names {
			if !smallNameRE.MatchString(name.Name) {
				continue
			}
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				small[obj] = true
			}
		}
	}
}

type cancelPollCheck struct {
	pass       *analysis.Pass
	sup        *suppressor
	localFuncs map[types.Object]*ast.FuncLit
	queryVars  map[types.Object]bool
	smallVars  map[types.Object]bool
	polls      map[*ast.FuncLit]bool // memo: does this local closure poll?
}

// checkOutermost walks stmts and checks each outermost loop; nested loops are
// only visited individually when their parent's bound is exempt.
func (cp *cancelPollCheck) checkOutermost(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			cp.checkLoop(n)
			return false
		case *ast.RangeStmt:
			cp.checkLoop(n)
			return false
		case *ast.FuncLit:
			// Closures are analyzed through the localFuncs resolution when
			// called from a loop; their own outermost loops are checked in
			// place (they run with the enclosing function's sources).
			return true
		}
		return true
	})
}

func (cp *cancelPollCheck) checkLoop(loop ast.Stmt) {
	if cp.exemptBound(loop) {
		// O(|query|) or constant trip count: recurse into the body so a
		// data-scale inner loop is still checked on its own.
		var body *ast.BlockStmt
		switch l := loop.(type) {
		case *ast.ForStmt:
			body = l.Body
		case *ast.RangeStmt:
			body = l.Body
		}
		if body != nil {
			for _, st := range body.List {
				cp.checkOutermost(st)
			}
		}
		return
	}
	if cp.nestPolls(loop, map[*ast.FuncLit]bool{}) {
		return
	}
	if cp.trivialLoop(loop) {
		// A straight-line fill/reduce pass (no calls, no appends, no
		// nested data loops) is memory-bandwidth bound with O(1) work per
		// element; the engine's amortized-poll design accepts those, same
		// as clear() or copy().
		return
	}
	reportf(cp.pass, cp.sup, loop.Pos(),
		"loop does not poll a cancellation source on any path; poll ctx.Err/Cancel/cancelled() in the loop body (see PartitionConfig.Cancel, PR 7)")
}

// exemptBound reports whether the loop's trip count is bounded by the query
// size or a constant, making a poll unnecessary.
func (cp *cancelPollCheck) exemptBound(loop ast.Stmt) bool {
	switch l := loop.(type) {
	case *ast.ForStmt:
		if l.Cond == nil {
			return false
		}
		bin, ok := l.Cond.(*ast.BinaryExpr)
		if !ok || (bin.Op != token.LSS && bin.Op != token.LEQ && bin.Op != token.GTR && bin.Op != token.GEQ) {
			return false
		}
		// i < N or N > i: the non-index side is the bound.
		for _, side := range []ast.Expr{bin.X, bin.Y} {
			if cp.exemptBoundExpr(side) {
				return true
			}
		}
		return false
	case *ast.RangeStmt:
		t := cp.pass.TypesInfo.TypeOf(l.X)
		if t != nil {
			switch t.Underlying().(type) {
			case *types.Array, *types.Chan:
				// Fixed trip count, or a blocking receive whose producer
				// owns cancellation.
				return true
			case *types.Basic:
				// go1.22 `range n` integer ranges: exempt when n is
				// query-scale or constant.
				return cp.exemptBoundExpr(l.X)
			}
		}
		return cp.exemptBoundExpr(l.X)
	}
	return false
}

func (cp *cancelPollCheck) exemptBoundExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.BasicLit:
		return true
	case *ast.Ident:
		if obj := cp.pass.TypesInfo.Uses[e]; obj != nil {
			if cp.queryVars[obj] || cp.smallVars[obj] {
				return true
			}
			if _, isConst := obj.(*types.Const); isConst {
				return true
			}
		}
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "len" && len(e.Args) == 1 {
			if cp.exemptBoundExpr(e.Args[0]) {
				return true
			}
		}
	}
	return queryScaleExpr(cp.pass, e)
}

// trivialLoop reports whether the loop nest does only straight-line per-
// element work: assignments, increments, ifs and selects over index/selector
// expressions, with no function calls other than len/cap/type conversions,
// no appends, and no closures. Such passes are O(1)-per-element scans whose
// total latency is bounded by memory bandwidth.
func (cp *cancelPollCheck) trivialLoop(loop ast.Stmt) bool {
	trivial := true
	ast.Inspect(loop, func(n ast.Node) bool {
		if !trivial {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			// Type conversions like int64(x) or CandIndex(i) stay trivial;
			// so do len/cap/min/max. Real calls (and append's potential
			// growth work) do not.
			if tv, ok := cp.pass.TypesInfo.Types[n.Fun]; ok && tv.IsType() {
				return true
			}
			if id, ok := n.Fun.(*ast.Ident); ok {
				switch id.Name {
				case "len", "cap", "min", "max":
					if cp.pass.TypesInfo.Uses[id] == nil || cp.pass.TypesInfo.Uses[id].Pkg() == nil {
						return true
					}
				}
			}
			trivial = false
			return false
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt, *ast.SendStmt:
			trivial = false
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				trivial = false
				return false
			}
		}
		return true
	})
	return trivial
}

// nestPolls reports whether any statement inside the loop (including called
// single-assignment local closures, recursively) polls cancellation.
func (cp *cancelPollCheck) nestPolls(n ast.Node, visiting map[*ast.FuncLit]bool) bool {
	found := false
	ast.Inspect(n, func(node ast.Node) bool {
		if found {
			return false
		}
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		var name string
		var calleeObj types.Object
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			name = fun.Sel.Name
			calleeObj = cp.pass.TypesInfo.Uses[fun.Sel]
		case *ast.Ident:
			name = fun.Name
			calleeObj = cp.pass.TypesInfo.Uses[fun]
		}
		if pollNameRE.MatchString(name) {
			found = true
			return false
		}
		if lit, ok := cp.localFuncs[calleeObj]; ok && calleeObj != nil {
			if cp.litPolls(lit, visiting) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func (cp *cancelPollCheck) litPolls(lit *ast.FuncLit, visiting map[*ast.FuncLit]bool) bool {
	if v, ok := cp.polls[lit]; ok {
		return v
	}
	if visiting[lit] {
		return false
	}
	visiting[lit] = true
	v := cp.nestPolls(lit.Body, visiting)
	delete(visiting, lit)
	cp.polls[lit] = v
	return v
}
