// Package dir exercises validation of the //fastmatch: directive language.
package dir

//fastmatch:frobnicate // want `unknown //fastmatch: directive`
var a int

//fastmatch:hotpath // want `must be in a function's doc comment`
var b int

//fastmatch:nolint // want `needs an analyzer name`
var c int

//fastmatch:nolint nosuchanalyzer because reasons // want `unknown analyzer`
var d int

//fastmatch:nolint cancelpoll // want `has no reason`
var e int

//fastmatch:lockorder a b // want `wants the form`
var f int

//fastmatch:recoverbarrier // want `must be in a function's doc comment`
var fb int

//fastmatch: // want `empty //fastmatch: directive`
var g int

// Valid forms below produce no diagnostics.

//fastmatch:lockorder T.a < T.b
var h int

//fastmatch:recoverbarrier with args // want `takes no arguments`
func barrierArgs() {}

//fastmatch:hotpath
func hot() {}

//fastmatch:recoverbarrier
func barrier() {}

//fastmatch:nolint poolpair pooled conn is handed to the caller
func suppressed() {}
