// Package router reproduces the PR 8 Router.mu / tenant-mutation-mutex
// ordering contract and a plain two-mutex cycle.
package router

import "sync"

// The documented order: mutation mutex first, then the router lock, then
// the subscription mutex innermost.
//
//fastmatch:lockorder ent.mutMu < Router.mu
//fastmatch:lockorder Router.mu < ent.subMu

type Router struct {
	mu sync.RWMutex
}

type ent struct {
	mutMu sync.Mutex
	subMu sync.Mutex
}

// applyDelta follows the documented order: mutMu, then Router.mu (read),
// then subMu — clean.
func applyDelta(r *Router, e *ent) {
	e.mutMu.Lock()
	defer e.mutMu.Unlock()
	r.mu.RLock()
	defer r.mu.RUnlock()
	e.subMu.Lock()
	e.subMu.Unlock()
}

// swapThenMutate takes the tenant mutation mutex while holding the router
// lock: the documented inversion.
func swapThenMutate(r *Router, e *ent) {
	r.mu.Lock()
	e.mutMu.Lock() // want `inverts the documented lock order`
	e.mutMu.Unlock()
	r.mu.Unlock()
}

// pair has no documented order; opposite acquisition orders across the
// package still form a cycle.
type pair struct {
	a sync.Mutex
	b sync.Mutex
}

func lockAB(p *pair) {
	p.a.Lock()
	p.b.Lock() // want `lock acquisition cycle`
	p.b.Unlock()
	p.a.Unlock()
}

func lockBA(p *pair) {
	p.b.Lock()
	p.a.Lock()
	p.a.Unlock()
	p.b.Unlock()
}

// localOnly uses a function-local mutex: out of scope.
func localOnly() {
	var mu sync.Mutex
	mu.Lock()
	mu.Unlock()
}
