// Package pool exercises the sync.Pool Get/Put pairing rules.
package pool

import "sync"

type scratch struct{ buf []byte }

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func work(*scratch) {}

// good defers the Put: covered on every exit, including panics.
func good(fail bool) {
	s := scratchPool.Get().(*scratch)
	defer scratchPool.Put(s)
	if fail {
		return
	}
	work(s)
}

// closureDefer returns the object through a deferred closure: also covered.
func closureDefer() {
	s := scratchPool.Get().(*scratch)
	defer func() { scratchPool.Put(s) }()
	work(s)
}

// bad pairs the Get with a plain Put: the early return leaks.
func bad(fail bool) {
	s := scratchPool.Get().(*scratch) // want `non-deferred Put`
	if fail {
		return
	}
	work(s)
	scratchPool.Put(s)
}

// leak never returns the object at all.
func leak() *scratch {
	s := scratchPool.Get().(*scratch) // want `no matching Put`
	return s
}

// callback: a Get inside a function literal must pair inside that literal.
func callback(run func(func())) {
	run(func() {
		s := scratchPool.Get().(*scratch) // want `non-deferred Put`
		work(s)
		scratchPool.Put(s)
	})
}

// handoff documents an intentional ownership transfer with a reasoned
// nolint: the caller releases the object.
func handoff() *scratch {
	//fastmatch:nolint poolpair ownership transfers to the caller, which Puts on release
	s := scratchPool.Get().(*scratch)
	return s
}
