// Package hot exercises the //fastmatch:hotpath allocation rules.
package hot

import "fmt"

type table struct {
	m       map[int]int
	results []int
}

func sink(v any) {}

//fastmatch:hotpath
func round(t *table, xs []int) int {
	total := 0
	for _, x := range xs {
		total += t.m[x] // want `map index`
	}
	buf := make([]int, 8) // want `make allocates`
	_ = buf
	f := func() {} // want `closure allocation`
	f()
	fmt.Println(total)                   // want `fmt call`
	sink(total)                          // want `converted to interface`
	t.results = append(t.results, total) // want `append into escaping slice`

	// The blessed arena pattern: appending to a local over preallocated
	// capacity is silent.
	local := xs[:0]
	local = append(local, total)

	//fastmatch:nolint hotpathalloc one embedding per emitted match; callers own the copy
	em := make([]int, 4)
	_ = em

	total += helper(xs)
	return total
}

// helper is unmarked but reachable from round, so it inherits the rules.
func helper(xs []int) int {
	seen := map[int]bool{}
	n := 0
	for _, x := range xs {
		if seen[x] { // want `map index`
			continue
		}
		seen[x] = true // want `map index`
		n++
	}
	return n
}

// cold is not reachable from any hotpath function: map use is fine here.
func cold(m map[int]int) int {
	return m[1]
}
