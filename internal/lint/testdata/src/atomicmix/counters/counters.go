// Package counters exercises mixed atomic/plain field access detection.
package counters

import "sync/atomic"

type stats struct {
	hits   int64
	misses int64
	typed  atomic.Int64
}

var s stats

func hit() {
	atomic.AddInt64(&s.hits, 1)
	atomic.AddInt64(&s.misses, 1)
}

// snapshot mixes a plain read into an atomically-written field: racy.
func snapshot() int64 {
	return s.hits // want `accessed with sync/atomic`
}

// ok reads atomically and through a typed atomic: clean.
func ok() int64 {
	return atomic.LoadInt64(&s.misses) + s.typed.Load()
}

// reset documents a single-threaded exception with a reasoned nolint.
func reset() {
	//fastmatch:nolint atomicmix single-threaded reset before serving starts
	s.hits = 0
}
