// Package barrier exercises the recoverguard analyzer: marked functions
// must install a working recover barrier, recover() only works in directly
// deferred function literals, and the panic value must never be discarded.
package barrier

import "fmt"

// runWorker is a proper barrier: a deferred literal converts the panic
// value into an error. No diagnostic.
//
//fastmatch:recoverbarrier
func runWorker() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("worker panic: %v", r)
		}
	}()
	work()
	return nil
}

// brokenBarrier still carries the directive but the barrier was refactored
// away — callers believe panics are contained when they are not.
//
//fastmatch:recoverbarrier
func brokenBarrier() error { // want `installs no deferred recover`
	work()
	return nil
}

// nestedNoop puts the recover in a literal that is spawned, not deferred —
// the runtime ignores it and the panic keeps unwinding.
func nestedNoop() {
	go func() {
		if r := recover(); r != nil { // want `not directly deferred is a no-op`
			_ = r
		}
	}()
}

// passedNoop hands a recovering literal to another function; same no-op.
func passedNoop() {
	run(func() {
		_ = recover() // want `not directly deferred is a no-op`
	})
}

// swallowed drops the panic value on the floor: the worker "survives" but
// nothing records why it aborted.
func swallowed() {
	defer func() {
		recover() // want `result discarded`
	}()
	work()
}

// handlePanic is a declared function: recover here can be reached through
// `defer handlePanic()` at the call site, which this file-local analysis
// cannot prove — declared functions get the benefit of the doubt.
func handlePanic() {
	if r := recover(); r != nil {
		_ = r
	}
}

// delegated uses the declared-handler idiom; clean.
func delegated() {
	defer handlePanic()
	work()
}

// suppressed documents why it deliberately has no barrier.
//
//fastmatch:nolint recoverguard crash-only fixture worker, panics must escape
//
//fastmatch:recoverbarrier
func suppressed() {
	work()
}

func run(f func()) { f() }

func work() {}
