// Package core models the kernel side: Options.Cancel and context-driven
// loops.
package core

import "context"

type Options struct {
	Cancel func() bool
}

func compute(v int) int { return v * 2 }

// walkCtx polls ctx.Err per element: clean.
func walkCtx(ctx context.Context, items []int) int {
	s := 0
	for _, it := range items {
		if ctx.Err() != nil {
			return s
		}
		s += compute(it)
	}
	return s
}

// execute resolves the recursive local closure: drain polls, so the loop
// calling it is clean.
func execute(opts Options, tasks [][]int) int {
	s := 0
	var drain func(t []int) int
	drain = func(t []int) int {
		n := 0
		for _, v := range t {
			if opts.Cancel != nil && opts.Cancel() {
				return n
			}
			n += compute(v)
		}
		return n
	}
	for _, t := range tasks {
		s += drain(t)
	}
	return s
}

// scan forgot the poll entirely.
func scan(opts Options, items []int) int {
	s := 0
	for _, it := range items { // want `loop does not poll a cancellation source`
		s += compute(it)
	}
	return s
}
