// Package cst models the pre-PR 7 restrict shape: a partitioner with a
// Cancel hook whose candidate loops forgot to poll it.
package cst

type PartitionConfig struct {
	Cancel func() bool
}

func (cfg *PartitionConfig) cancelled() bool {
	return cfg.Cancel != nil && cfg.Cancel()
}

type Query struct{ n int }

func (q *Query) NumVertices() int { return q.n }

func expand(v int32) []int32 { return []int32{v} }

// restrictNoPoll reproduces the pre-PR 7 bug: top-down reachability over
// data-scale candidate lists with no poll on any path.
func restrictNoPoll(cfg *PartitionConfig, cand [][]int32) int {
	kept := 0
	for _, list := range cand { // want `loop does not poll a cancellation source`
		for _, v := range list {
			for _, w := range expand(v) {
				kept += int(w)
			}
		}
	}
	return kept
}

// restrictPolled is the post-PR 7 shape: the nest polls the hook, bounding
// cancel latency by one candidate row.
func restrictPolled(cfg *PartitionConfig, cand [][]int32) int {
	kept := 0
	for _, list := range cand {
		if cfg.cancelled() {
			return kept
		}
		for _, v := range list {
			kept += len(expand(v))
		}
	}
	return kept
}

// statsFold is bounded by NumVertices on both axes: query-scale work needs
// no poll even with real calls in the body.
func statsFold(cfg *PartitionConfig, q *Query, deg [][]int32) int {
	n := q.NumVertices()
	total := 0
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			total += len(expand(deg[u][v]))
		}
	}
	return total
}

// fill is a straight-line O(n) fill: call-free bodies are memory-bandwidth
// bound and exempt.
func fill(cfg *PartitionConfig, idx []int32) {
	for i := range idx {
		idx[i] = int32(i)
	}
}

// drainSuppressed documents an intentional exception with a reasoned nolint.
func drainSuppressed(cfg *PartitionConfig, tasks []func()) {
	//fastmatch:nolint cancelpoll tasks poll internally; the stack must drain to release waiters
	for _, t := range tasks {
		t()
	}
}
