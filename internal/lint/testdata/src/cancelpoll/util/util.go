// Package util is outside cancelpoll's scope (not an engine package), so
// even an unpolled data loop with a cancel source is not flagged.
package util

type Cfg struct {
	Cancel func() bool
}

func grow(v int) []int { return []int{v, v} }

func Walk(cfg *Cfg, items []int) int {
	s := 0
	for _, it := range items {
		s += len(grow(it))
	}
	return s
}
