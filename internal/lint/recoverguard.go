package lint

import (
	"go/ast"

	"golang.org/x/tools/go/analysis"
)

// RecoverGuard mechanizes the PR 10 panic-isolation contract. Functions
// whose doc comment carries //fastmatch:recoverbarrier are the pipeline's
// recover barriers — the places a worker panic is converted into a typed
// error instead of killing the process (host.runKernel, host.enumerateShare,
// cst's pool worker). The analyzer keeps the directive honest and catches
// the two ways a barrier quietly stops working:
//
//   - a marked function must actually contain a deferred function literal
//     that calls recover() — refactoring the barrier away while leaving the
//     directive (and the callers' assumptions) behind is reported;
//   - a recover() inside a function literal that is not directly deferred
//     is a no-op (the runtime only honours recover called directly by a
//     deferred function), which is how a barrier silently becomes a crash;
//   - a bare `recover()` expression statement discards the panic value,
//     swallowing the failure with no record — barriers must convert the
//     value into an error or re-throw, never drop it.
var RecoverGuard = &analysis.Analyzer{
	Name: "recoverguard",
	Doc:  "check //fastmatch:recoverbarrier functions really install a recover barrier, and flag no-op or silent recover() calls",
	Run:  runRecoverGuard,
}

func runRecoverGuard(pass *analysis.Pass) (any, error) {
	sup := newSuppressor(pass)
	for _, f := range pass.Files {
		// Marked functions must contain a working barrier.
		for _, d := range directivesIn(f) {
			if d.verb != "recoverbarrier" || d.fn == nil {
				continue
			}
			if d.fn.Body == nil || !hasDeferredRecover(d.fn.Body) {
				reportf(pass, sup, d.fn.Pos(),
					"%s is marked //fastmatch:recoverbarrier but installs no deferred recover(); a panic in it kills the worker", d.fn.Name.Name)
			}
		}
		checkRecoverCalls(pass, sup, f)
	}
	return nil, nil
}

// hasDeferredRecover reports whether body defers a function literal that
// calls recover() directly (not through a further nested literal).
func hasDeferredRecover(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if lit, ok := d.Call.Fun.(*ast.FuncLit); ok && callsRecoverDirectly(lit.Body) {
			found = true
		}
		return true
	})
	return found
}

// callsRecoverDirectly reports whether body calls recover() without an
// intervening function literal (recover in a nested literal belongs to that
// literal's frame, where it would be a no-op unless deferred again).
func callsRecoverDirectly(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // different frame
		case *ast.CallExpr:
			if isRecoverCall(n) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isRecoverCall reports whether call is the builtin recover().
func isRecoverCall(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "recover" && len(call.Args) == 0
}

// checkRecoverCalls walks one file reporting recover() calls that cannot
// work (their function literal is not directly deferred) or that discard
// the panic value (bare expression statement).
func checkRecoverCalls(pass *analysis.Pass, sup *suppressor, f *ast.File) {
	// deferredLits is the set of function literals that are the direct
	// operand of a defer statement — the only frames where recover works.
	deferredLits := map[*ast.FuncLit]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
				deferredLits[lit] = true
			}
		}
		return true
	})

	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		inspectFrame(pass, sup, fd.Body, nil, deferredLits)
	}
}

// inspectFrame scans one function frame. lit is the frame's literal (nil
// for a declared function); recursion enters nested literals with their own
// frame so each recover() is judged against its own function.
func inspectFrame(pass *analysis.Pass, sup *suppressor, body *ast.BlockStmt, lit *ast.FuncLit, deferredLits map[*ast.FuncLit]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n != lit {
				inspectFrame(pass, sup, n.Body, n, deferredLits)
				return false
			}
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && isRecoverCall(call) {
				reportf(pass, sup, call.Pos(),
					"recover() result discarded: the panic is swallowed with no record; convert it to an error or re-throw")
				return false
			}
		case *ast.CallExpr:
			if isRecoverCall(n) {
				// Effective only when this frame is a directly deferred
				// literal. Declared functions get the benefit of the doubt:
				// `defer handlePanic()` at the call sites is a legal idiom
				// this file-local analysis cannot see.
				if lit != nil && !deferredLits[lit] {
					reportf(pass, sup, n.Pos(),
						"recover() in a function literal that is not directly deferred is a no-op: the panic continues unwinding")
				}
			}
		}
		return true
	})
}
