package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// directivePrefix introduces every fastmatch directive comment.
const directivePrefix = "//fastmatch:"

// directive is one parsed //fastmatch: comment.
type directive struct {
	pos  token.Pos
	verb string   // "hotpath", "nolint", "lockorder", ...
	args []string // whitespace-split fields after the verb
	// fn is the function whose doc comment carries the directive, if any.
	fn *ast.FuncDecl
}

// directivesIn parses every //fastmatch: comment in f. Comments that are part
// of a function's doc group get that function attached, which widens nolint
// scope to the whole body and anchors hotpath marks.
func directivesIn(f *ast.File) []directive {
	docOwner := map[*ast.CommentGroup]*ast.FuncDecl{}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Doc != nil {
			docOwner[fd.Doc] = fd
		}
	}
	var out []directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, directivePrefix) {
				continue
			}
			text := strings.TrimPrefix(c.Text, directivePrefix)
			// Allow trailing commentary after a ` // ` separator (used by
			// the analysistest-style fixtures for want annotations).
			if i := strings.Index(text, " // "); i >= 0 {
				text = text[:i]
			}
			fields := strings.Fields(text)
			d := directive{pos: c.Slash, fn: docOwner[cg]}
			if len(fields) > 0 {
				d.verb = fields[0]
				d.args = fields[1:]
			}
			out = append(out, d)
		}
	}
	return out
}

// suppressor answers "is this diagnostic nolinted?" for one pass.
type suppressor struct {
	fset *token.FileSet
	// spans maps an analyzer name to suppressed position ranges.
	spans map[string][]span
}

type span struct {
	file      string
	startLine int
	endLine   int
}

// newSuppressor indexes every //fastmatch:nolint directive in the pass.
// A nolint in a function's doc comment covers the whole function; otherwise
// it covers its own line and the next one (so it can sit on the flagged line
// or immediately above it).
func newSuppressor(pass *analysis.Pass) *suppressor {
	s := &suppressor{fset: pass.Fset, spans: map[string][]span{}}
	for _, f := range pass.Files {
		for _, d := range directivesIn(f) {
			if d.verb != "nolint" || len(d.args) == 0 {
				continue
			}
			name := d.args[0]
			p := pass.Fset.Position(d.pos)
			sp := span{file: p.Filename, startLine: p.Line, endLine: p.Line + 1}
			if d.fn != nil {
				end := pass.Fset.Position(d.fn.End())
				sp.endLine = end.Line
			}
			s.spans[name] = append(s.spans[name], sp)
		}
	}
	return s
}

func (s *suppressor) suppressed(analyzer string, pos token.Pos) bool {
	p := s.fset.Position(pos)
	for _, sp := range s.spans[analyzer] {
		if sp.file == p.Filename && p.Line >= sp.startLine && p.Line <= sp.endLine {
			return true
		}
	}
	return false
}

// reportf reports a diagnostic unless a //fastmatch:nolint for this analyzer
// covers pos.
func reportf(pass *analysis.Pass, sup *suppressor, pos token.Pos, format string, args ...any) {
	if sup.suppressed(pass.Analyzer.Name, pos) {
		return
	}
	pass.Reportf(pos, format, args...)
}

// hotpathFuncs returns the FuncDecls marked //fastmatch:hotpath in f.
func hotpathFuncs(f *ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, d := range directivesIn(f) {
		if d.verb == "hotpath" && d.fn != nil {
			out = append(out, d.fn)
		}
	}
	return out
}
