package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"golang.org/x/tools/go/analysis"
)

// LockOrder builds a per-package acquisition graph over sync.Mutex and
// sync.RWMutex struct fields and flags (a) acquisitions that invert an order
// documented with //fastmatch:lockorder, and (b) acquisition cycles. It
// mechanizes the PR 8 comment-only contract "mutMu before Router.mu; never
// the reverse" and "subMu nests inside both".
var LockOrder = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "flag mutex acquisitions that invert the documented lock order or form cycles",
	Run:  runLockOrder,
}

// lockEdge is one observed "acquired B while holding A" event.
type lockEdge struct {
	from, to string
	pos      token.Pos
}

func runLockOrder(pass *analysis.Pass) (any, error) {
	sup := newSuppressor(pass)

	// Declared order: //fastmatch:lockorder Type.field < Type.field edges.
	declared := map[string][]string{}
	for _, f := range pass.Files {
		for _, d := range directivesIn(f) {
			if d.verb != "lockorder" || len(d.args) != 3 || d.args[1] != "<" {
				continue
			}
			declared[d.args[0]] = append(declared[d.args[0]], d.args[2])
		}
	}

	// Observed edges, in deterministic file order.
	var edges []lockEdge
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			edges = append(edges, observeLocks(pass, fd.Body)...)
		}
	}

	reported := map[string]bool{}
	for _, e := range edges {
		if declaredPath(declared, e.to, e.from) {
			key := e.from + "->" + e.to
			if !reported[key] {
				reported[key] = true
				reportf(pass, sup, e.pos,
					"acquiring %s while holding %s inverts the documented lock order %s < %s",
					e.to, e.from, e.to, e.from)
			}
		}
	}

	// Cycle detection over the observed graph (only edges not already
	// reported as inversions, so each defect surfaces once).
	adj := map[string]map[string]token.Pos{}
	for _, e := range edges {
		if reported[e.from+"->"+e.to] {
			continue
		}
		if adj[e.from] == nil {
			adj[e.from] = map[string]token.Pos{}
		}
		if _, ok := adj[e.from][e.to]; !ok {
			adj[e.from][e.to] = e.pos
		}
	}
	var nodes []string
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	cycleReported := map[string]bool{}
	for _, start := range nodes {
		for next, pos := range adj[start] {
			if observedPath(adj, next, start) && !cycleReported[start+"->"+next] {
				cycleReported[start+"->"+next] = true
				cycleReported[next+"->"+start] = true
				reportf(pass, sup, pos,
					"lock acquisition cycle: %s is taken while holding %s elsewhere %s is (transitively) taken while holding %s",
					next, start, start, next)
			}
		}
	}
	return nil, nil
}

// observeLocks linearly walks body in source order, tracking the set of
// package-struct mutex fields currently held, and records an edge for every
// acquisition made while another lock is held. Function literals are treated
// as separate bodies with an empty held set (their execution point is
// unknown), except that deferred unlocks keep their lock held to the end of
// the enclosing body.
func observeLocks(pass *analysis.Pass, body *ast.BlockStmt) []lockEdge {
	var edges []lockEdge
	var held []string
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				sub := observeLocks(pass, n.Body)
				edges = append(edges, sub...)
				return false
			case *ast.DeferStmt:
				// defer mu.Unlock(): the lock stays held for the rest of
				// the body, which is exactly the linear model's default.
				return false
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				key := mutexFieldKey(pass, sel.X)
				if key == "" {
					return true
				}
				switch sel.Sel.Name {
				case "Lock", "RLock":
					for _, h := range held {
						if h != key {
							edges = append(edges, lockEdge{from: h, to: key, pos: n.Pos()})
						}
					}
					held = append(held, key)
				case "Unlock", "RUnlock":
					for i := len(held) - 1; i >= 0; i-- {
						if held[i] == key {
							held = append(held[:i], held[i+1:]...)
							break
						}
					}
				}
			}
			return true
		})
	}
	walk(body)
	return edges
}

// mutexFieldKey resolves x (the receiver of a Lock/Unlock call) to a
// "Type.field" key when it is a sync.Mutex/RWMutex field of a named struct
// type in this package. Local mutex variables return "".
func mutexFieldKey(pass *analysis.Pass, x ast.Expr) string {
	sel, ok := x.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok || !obj.IsField() {
		return ""
	}
	if !isSyncMutexType(obj.Type()) {
		return ""
	}
	// Find the named struct type that owns the field via the receiver
	// expression's type.
	t := pass.TypesInfo.TypeOf(sel.X)
	for {
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return obj.Name()
	}
	return fmt.Sprintf("%s.%s", named.Obj().Name(), obj.Name())
}

func isSyncMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// declaredPath reports whether the documented order graph has a path
// from a to b (i.e. a must be acquired before b).
func declaredPath(declared map[string][]string, a, b string) bool {
	seen := map[string]bool{}
	var dfs func(string) bool
	dfs = func(n string) bool {
		if n == b {
			return true
		}
		if seen[n] {
			return false
		}
		seen[n] = true
		for _, m := range declared[n] {
			if dfs(m) {
				return true
			}
		}
		return false
	}
	return dfs(a)
}

func observedPath(adj map[string]map[string]token.Pos, a, b string) bool {
	seen := map[string]bool{}
	var dfs func(string) bool
	dfs = func(n string) bool {
		if n == b {
			return true
		}
		if seen[n] {
			return false
		}
		seen[n] = true
		for m := range adj[n] {
			if dfs(m) {
				return true
			}
		}
		return false
	}
	return dfs(a)
}
