// Package lint hosts fastmatch's repo-specific static analyzers.
//
// The engine's correctness rests on invariants that used to live only in
// prose and -race tests: the documented lock order between the Router and
// tenant mutation mutexes (PR 8), "every producer loop polls Cancel" (PR 3/7),
// the zero-alloc pooled-Scratch discipline in the kernel hot path (PR 5/6),
// and atomic-only access to serving counters (PR 7). Each analyzer in this
// package mechanizes one of those invariants so violations fail at vet time,
// not at bench or deadlock time.
//
// The analyzers are driven by cmd/fastlint (a go/analysis unitchecker) and
// run as:
//
//	go build -o bin/fastlint ./cmd/fastlint
//	go vet -vettool=$PWD/bin/fastlint ./...
//
// Analyzers:
//
//   - cancelpoll: loops over partitions/candidates/tasks in internal/cst,
//     internal/core and internal/host must poll a cancellation source
//     (ctx.Err, Options.Cancel, PartitionConfig.Cancel, halted()/cancelled()
//     closures) somewhere in the loop nest. Generalizes the PR 7 restrict fix.
//   - lockorder: builds a per-package mutex acquisition graph over
//     sync.Mutex/sync.RWMutex struct fields and flags acquisitions that
//     invert a documented //fastmatch:lockorder edge or form a cycle.
//   - hotpathalloc: //fastmatch:hotpath on a function forbids map indexing,
//     closure allocation, fmt, interface conversions, make, and appends to
//     escaping slices in that function and its intra-package callees.
//     Mechanizes the PR 5/6 AllocsPerRun gates.
//   - poolpair: every sync.Pool.Get must be matched by a deferred Put on the
//     same pool in the same function, so panic and early-return paths cannot
//     leak pooled objects.
//   - atomicmix: a struct field accessed through sync/atomic anywhere in the
//     package must never be read or written directly elsewhere.
//   - recoverguard: //fastmatch:recoverbarrier on a function requires a
//     deferred recover() in its body (the PR 10 panic-isolation barriers);
//     also flags recover() calls that cannot work (their function literal is
//     not directly deferred) or that silently discard the panic value.
//   - fastdirective: validates the //fastmatch: directive language itself
//     (unknown verbs, nolint without an analyzer name or reason, misplaced
//     hotpath or recoverbarrier, malformed lockorder declarations).
//
// Directives:
//
//	//fastmatch:hotpath
//	    On a function's doc comment: marks it (and, transitively, its
//	    same-package callees) allocation-free for hotpathalloc.
//
//	//fastmatch:nolint <analyzer> <reason...>
//	    Suppresses diagnostics of the named analyzer on the directive's
//	    line and the line below it; in a function's doc comment it covers
//	    the whole function. The reason is mandatory: a nolint without one
//	    is itself reported by fastdirective.
//
//	//fastmatch:lockorder Type.field < Type.field
//	    Declares a documented acquisition order edge for lockorder.
//
//	//fastmatch:recoverbarrier
//	    On a function's doc comment: declares it a panic-isolation barrier.
//	    recoverguard then requires a deferred recover() in its body.
package lint

import "golang.org/x/tools/go/analysis"

// Analyzers returns every fastmatch analyzer, in the order cmd/fastlint
// registers them.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		CancelPoll,
		LockOrder,
		HotPathAlloc,
		PoolPair,
		AtomicMix,
		RecoverGuard,
		Directive,
	}
}

// analyzerNames is the set of names //fastmatch:nolint may reference.
var analyzerNames = map[string]bool{
	"cancelpoll":    true,
	"lockorder":     true,
	"hotpathalloc":  true,
	"poolpair":      true,
	"atomicmix":     true,
	"recoverguard":  true,
	"fastdirective": true,
}
