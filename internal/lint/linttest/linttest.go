// Package linttest drives the fastlint analyzers end-to-end over the
// fixtures in internal/lint/testdata/src, in the style of
// golang.org/x/tools/go/analysis/analysistest but through the real driver:
// it builds cmd/fastlint once, materialises each fixture as a throwaway
// module, runs `go vet -vettool=fastlint -json -<analyzer> ./...` against
// it, and matches the reported diagnostics against `// want` comments.
//
// Expectations use the analysistest comment form: a comment
//
//	// want `regexp` `another`
//
// on a line means that line must produce one diagnostic matching each
// regexp; lines without a want comment must produce none. Both backquoted
// and double-quoted regexps are accepted.
package linttest

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

var (
	buildOnce sync.Once
	toolPath  string
	buildErr  error
)

// tool builds cmd/fastlint once per test process and returns its path.
func tool(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		root, err := moduleRoot()
		if err != nil {
			buildErr = err
			return
		}
		dir, err := os.MkdirTemp("", "fastlint-bin-")
		if err != nil {
			buildErr = err
			return
		}
		bin := filepath.Join(dir, "fastlint")
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/fastlint")
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("building fastlint: %v\n%s", err, out)
			return
		}
		toolPath = bin
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return toolPath
}

func moduleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("linttest must run inside the fastmatch module")
	}
	return filepath.Dir(gomod), nil
}

type diagnostic struct {
	file    string // relative to the fixture module root
	line    int
	message string
}

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run executes one analyzer over one fixture directory (a subdirectory of
// internal/lint/testdata/src) and asserts the diagnostics exactly match the
// fixture's want comments.
func Run(t *testing.T, analyzer, fixture string) {
	t.Helper()
	bin := tool(t)
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	src := filepath.Join(root, "internal", "lint", "testdata", "src", fixture)
	if _, err := os.Stat(src); err != nil {
		t.Fatalf("fixture %s: %v", fixture, err)
	}

	mod := t.TempDir()
	if resolved, err := filepath.EvalSymlinks(mod); err == nil {
		mod = resolved
	}
	if err := copyTree(src, mod); err != nil {
		t.Fatal(err)
	}
	gomod := filepath.Join(mod, "go.mod")
	if err := os.WriteFile(gomod, []byte("module fix\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command("go", "vet", "-vettool="+bin, "-json", "-"+analyzer, "./...")
	cmd.Dir = mod
	cmd.Env = append(os.Environ(), "GOWORK=off", "GOFLAGS=")
	out, _ := cmd.CombinedOutput()

	diags, perr := parseVetJSON(string(out), mod)
	if perr != nil {
		t.Fatalf("running %s over %s: %v\noutput:\n%s", analyzer, fixture, perr, out)
	}
	wants, err := parseWants(mod)
	if err != nil {
		t.Fatal(err)
	}

	for _, d := range diags {
		ok := false
		for _, w := range wants {
			if !w.matched && w.file == d.file && w.line == d.line && w.re.MatchString(d.message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic at %s:%d: %s", d.file, d.line, d.message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("missing diagnostic at %s:%d matching %q", w.file, w.line, w.re)
		}
	}
}

func copyTree(src, dst string) error {
	return filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		if _, err := io.Copy(out, in); err != nil {
			out.Close()
			return err
		}
		return out.Close()
	})
}

// parseVetJSON extracts diagnostics from `go vet -json` output: a stream of
// `# pkg` comment lines interleaved with JSON objects of the shape
// {"pkg": {"analyzer": [{"posn": "file:line:col", "message": "..."}]}}.
func parseVetJSON(out, mod string) ([]diagnostic, error) {
	var jsonText strings.Builder
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		jsonText.WriteString(line)
		jsonText.WriteString("\n")
	}
	type pos struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	var diags []diagnostic
	dec := json.NewDecoder(strings.NewReader(jsonText.String()))
	for {
		var blob map[string]map[string][]pos
		if err := dec.Decode(&blob); err == io.EOF {
			break
		} else if err != nil {
			// Non-JSON residue means vet failed before analysis (usually a
			// fixture compile error).
			if strings.TrimSpace(jsonText.String()) == "" {
				break
			}
			return nil, fmt.Errorf("parsing vet output: %v", err)
		}
		for _, byAnalyzer := range blob {
			for _, list := range byAnalyzer {
				for _, p := range list {
					file, line, err := splitPosn(p.Posn, mod)
					if err != nil {
						return nil, err
					}
					diags = append(diags, diagnostic{file: file, line: line, message: p.Message})
				}
			}
		}
	}
	return diags, nil
}

func splitPosn(posn, mod string) (string, int, error) {
	parts := strings.Split(posn, ":")
	if len(parts) < 2 {
		return "", 0, fmt.Errorf("bad position %q", posn)
	}
	// file:line:col with a possibly absolute file path.
	file := strings.Join(parts[:len(parts)-2], ":")
	line, err := strconv.Atoi(parts[len(parts)-2])
	if err != nil {
		return "", 0, fmt.Errorf("bad position %q", posn)
	}
	if resolved, rerr := filepath.EvalSymlinks(file); rerr == nil {
		file = resolved
	}
	if rel, rerr := filepath.Rel(mod, file); rerr == nil && !strings.HasPrefix(rel, "..") {
		file = rel
	}
	return file, line, nil
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// parseWants scans every fixture .go file for analysistest-style
// `// want \x60re\x60 "re"` comments.
func parseWants(mod string) ([]*want, error) {
	var wants []*want
	err := filepath.Walk(mod, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(mod, path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			res, perr := parseWantPatterns(m[1])
			if perr != nil {
				return fmt.Errorf("%s:%d: %v", rel, i+1, perr)
			}
			for _, re := range res {
				wants = append(wants, &want{file: rel, line: i + 1, re: re})
			}
		}
		return nil
	})
	return wants, err
}

// parseWantPatterns splits `\x60re\x60 "re" ...` into compiled regexps.
func parseWantPatterns(s string) ([]*regexp.Regexp, error) {
	var out []*regexp.Regexp
	s = strings.TrimSpace(s)
	for s != "" {
		var quote byte = s[0]
		if quote != '`' && quote != '"' {
			return nil, fmt.Errorf("want pattern must be quoted with backquotes or double quotes: %q", s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			return nil, fmt.Errorf("unterminated want pattern: %q", s)
		}
		pat := s[1 : 1+end]
		re, err := regexp.Compile(pat)
		if err != nil {
			return nil, fmt.Errorf("bad want regexp %q: %v", pat, err)
		}
		out = append(out, re)
		s = strings.TrimSpace(s[2+end:])
	}
	return out, nil
}
