package lint

import (
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Directive validates the //fastmatch: directive language itself: unknown
// verbs, nolint without an analyzer name or reason, hotpath on something
// that is not a function, and malformed lockorder declarations. An
// undocumented suppression is itself a lint error, so nolints stay auditable.
var Directive = &analysis.Analyzer{
	Name: "fastdirective",
	Doc:  "validate //fastmatch: directives (hotpath, nolint, lockorder, recoverbarrier)",
	Run:  runDirective,
}

func runDirective(pass *analysis.Pass) (any, error) {
	sup := newSuppressor(pass)
	for _, f := range pass.Files {
		for _, d := range directivesIn(f) {
			switch d.verb {
			case "hotpath":
				if d.fn == nil {
					reportf(pass, sup, d.pos,
						"//fastmatch:hotpath must be in a function's doc comment")
				} else if len(d.args) != 0 {
					reportf(pass, sup, d.pos,
						"//fastmatch:hotpath takes no arguments")
				}
			case "nolint":
				switch {
				case len(d.args) == 0:
					reportf(pass, sup, d.pos,
						"//fastmatch:nolint needs an analyzer name and a reason")
				case !analyzerNames[d.args[0]]:
					reportf(pass, sup, d.pos,
						"//fastmatch:nolint names unknown analyzer %q (known: cancelpoll, lockorder, hotpathalloc, poolpair, atomicmix, recoverguard, fastdirective)", d.args[0])
				case len(d.args) < 2:
					reportf(pass, sup, d.pos,
						"//fastmatch:nolint %s has no reason; undocumented suppressions are not allowed", d.args[0])
				}
			case "lockorder":
				if len(d.args) != 3 || d.args[1] != "<" ||
					!validLockKey(d.args[0]) || !validLockKey(d.args[2]) {
					reportf(pass, sup, d.pos,
						"//fastmatch:lockorder wants the form `Type.field < Type.field`")
				}
			case "recoverbarrier":
				if d.fn == nil {
					reportf(pass, sup, d.pos,
						"//fastmatch:recoverbarrier must be in a function's doc comment")
				} else if len(d.args) != 0 {
					reportf(pass, sup, d.pos,
						"//fastmatch:recoverbarrier takes no arguments")
				}
			case "":
				reportf(pass, sup, d.pos, "empty //fastmatch: directive")
			default:
				reportf(pass, sup, d.pos,
					"unknown //fastmatch: directive %q (known: hotpath, nolint, lockorder, recoverbarrier)", d.verb)
			}
		}
	}
	return nil, nil
}

func validLockKey(s string) bool {
	dot := strings.IndexByte(s, '.')
	return dot > 0 && dot < len(s)-1 && !strings.Contains(s[dot+1:], ".")
}
