package lint_test

import (
	"testing"

	"fastmatch/internal/lint/linttest"
)

// Each test drives one analyzer end-to-end through the real vet driver
// (`go vet -vettool=fastlint -json -<analyzer>`) over its fixture module
// under testdata/src, asserting the diagnostics exactly match the fixtures'
// `// want` comments. Every fixture contains both flagged and clean code.

func TestCancelPoll(t *testing.T)    { linttest.Run(t, "cancelpoll", "cancelpoll") }
func TestLockOrder(t *testing.T)     { linttest.Run(t, "lockorder", "lockorder") }
func TestHotPathAlloc(t *testing.T)  { linttest.Run(t, "hotpathalloc", "hotpathalloc") }
func TestPoolPair(t *testing.T)      { linttest.Run(t, "poolpair", "poolpair") }
func TestAtomicMix(t *testing.T)     { linttest.Run(t, "atomicmix", "atomicmix") }
func TestRecoverGuard(t *testing.T)  { linttest.Run(t, "recoverguard", "recoverguard") }
func TestFastDirective(t *testing.T) { linttest.Run(t, "fastdirective", "fastdirective") }
