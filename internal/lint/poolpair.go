package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// PoolPair checks that every sync.Pool.Get in a function is matched by a
// *deferred* Put on the same pool in that function, so early returns and
// panics cannot leak the pooled object. A plain (non-deferred) Put is
// reported too: it silently leaks on any exit between Get and Put, which is
// exactly how pooled Scratch/Enumerator reuse degrades back to
// allocate-per-call under errors.
var PoolPair = &analysis.Analyzer{
	Name: "poolpair",
	Doc:  "require sync.Pool.Get to be paired with a deferred Put on all exit paths",
	Run:  runPoolPair,
}

func runPoolPair(pass *analysis.Pass) (any, error) {
	sup := newSuppressor(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPoolBody(pass, sup, fd.Body)
		}
	}
	return nil, nil
}

type poolUse struct {
	key string
	pos ast.Node
}

// checkPoolBody analyzes one function body; nested function literals are
// analyzed as separate bodies (a Get in a callback must be paired inside
// that callback).
func checkPoolBody(pass *analysis.Pass, sup *suppressor, body *ast.BlockStmt) {
	var gets []poolUse
	plainPuts := map[string]bool{}
	deferredPuts := map[string]bool{}

	var scan func(n ast.Node, inDefer bool)
	scan = func(n ast.Node, inDefer bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				if !inDefer {
					checkPoolBody(pass, sup, n.Body)
					return false
				}
				// A deferred closure runs on exit: Puts inside it count as
				// deferred, but fresh Gets inside it are its own problem.
				checkPoolBody(pass, sup, n.Body)
				for _, key := range poolPutKeys(pass, n.Body) {
					deferredPuts[key] = true
				}
				return false
			case *ast.DeferStmt:
				if key, isPut := poolCallKey(pass, n.Call, "Put"); isPut {
					deferredPuts[key] = true
					return false
				}
				scan(n.Call, true)
				return false
			case *ast.CallExpr:
				if key, ok := poolCallKey(pass, n, "Get"); ok {
					gets = append(gets, poolUse{key: key, pos: n})
				}
				if key, ok := poolCallKey(pass, n, "Put"); ok {
					plainPuts[key] = true
				}
			}
			return true
		})
	}
	scan(body, false)

	for _, g := range gets {
		if deferredPuts[g.key] {
			continue
		}
		if plainPuts[g.key] {
			reportf(pass, sup, g.pos.Pos(),
				"sync.Pool.Get on %s is matched only by a non-deferred Put; an early return or panic between them leaks the pooled object (defer the Put)", g.key)
		} else {
			reportf(pass, sup, g.pos.Pos(),
				"sync.Pool.Get on %s has no matching Put in this function", g.key)
		}
	}
}

// poolPutKeys returns the pool keys Put inside body (used for deferred
// closures).
func poolPutKeys(pass *analysis.Pass, body *ast.BlockStmt) []string {
	var keys []string
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if key, isPut := poolCallKey(pass, call, "Put"); isPut {
				keys = append(keys, key)
			}
		}
		return true
	})
	return keys
}

// poolCallKey reports whether call is pool.<method>() on a sync.Pool value
// and returns a stable identity for the pool expression.
func poolCallKey(pass *analysis.Pass, call *ast.CallExpr, method string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return "", false
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return "", false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil ||
		named.Obj().Pkg().Path() != "sync" || named.Obj().Name() != "Pool" {
		return "", false
	}
	// Identity: the object behind the receiver when resolvable, else the
	// expression text.
	switch x := sel.X.(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[x]; obj != nil {
			return obj.Pkg().Path() + "." + obj.Name(), true
		}
	case *ast.SelectorExpr:
		if obj := pass.TypesInfo.Uses[x.Sel]; obj != nil {
			return obj.String(), true
		}
	}
	return types.ExprString(sel.X), true
}
