package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// HotPathAlloc enforces the PR 5/6 zero-alloc kernel discipline at vet time.
// A function marked //fastmatch:hotpath — and every same-package function it
// (transitively) calls — must not index maps, allocate closures, call fmt,
// convert concrete values to interfaces, call make, or append into escaping
// (field/pointer) slices. The AllocsPerRun CI gates catch regressions at
// bench time; this catches them in review.
var HotPathAlloc = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc:  "forbid allocation patterns in //fastmatch:hotpath functions and their intra-package callees",
	Run:  runHotPathAlloc,
}

func runHotPathAlloc(pass *analysis.Pass) (any, error) {
	sup := newSuppressor(pass)

	// Map every *types.Func in this package to its declaration so static
	// calls can be chased.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}

	var roots []*ast.FuncDecl
	for _, f := range pass.Files {
		roots = append(roots, hotpathFuncs(f)...)
	}

	visited := map[*ast.FuncDecl]bool{}
	var visit func(fd *ast.FuncDecl, root string)
	visit = func(fd *ast.FuncDecl, root string) {
		if fd.Body == nil || visited[fd] {
			return
		}
		visited[fd] = true
		via := ""
		if fd.Name.Name != root {
			via = " (reached from //fastmatch:hotpath function " + root + ")"
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				reportf(pass, sup, n.Pos(), "hot path%s: closure allocation", via)
				return false
			case *ast.IndexExpr:
				if t := pass.TypesInfo.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Map); ok {
						reportf(pass, sup, n.Pos(), "hot path%s: map index", via)
					}
				}
			case *ast.RangeStmt:
				if t := pass.TypesInfo.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Map); ok {
						reportf(pass, sup, n.Pos(), "hot path%s: range over map", via)
					}
				}
			case *ast.AssignStmt:
				checkEscapingAppend(pass, sup, n, via)
			case *ast.CallExpr:
				checkHotCall(pass, sup, n, via, decls, func(callee *ast.FuncDecl) {
					visit(callee, root)
				})
			}
			return true
		})
	}
	for _, fd := range roots {
		visit(fd, fd.Name.Name)
	}
	return nil, nil
}

// checkEscapingAppend flags `X.f = append(...)` and `*p = append(...)`:
// growth reallocates into a heap location that outlives the call. Appends to
// plain locals are the blessed arena pattern and stay silent.
func checkEscapingAppend(pass *analysis.Pass, sup *suppressor, as *ast.AssignStmt, via string) {
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			continue
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "append" {
			continue
		}
		if i >= len(as.Lhs) {
			continue
		}
		switch as.Lhs[i].(type) {
		case *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
			reportf(pass, sup, rhs.Pos(), "hot path%s: append into escaping slice", via)
		}
	}
}

func checkHotCall(pass *analysis.Pass, sup *suppressor, call *ast.CallExpr, via string,
	decls map[*types.Func]*ast.FuncDecl, follow func(*ast.FuncDecl)) {

	// Conversions: T(x) where T is an interface type.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			if at := pass.TypesInfo.TypeOf(call.Args[0]); at != nil && !types.IsInterface(at) {
				reportf(pass, sup, call.Pos(), "hot path%s: conversion to interface allocates", via)
			}
		}
		return
	}

	var calleeObj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		calleeObj = pass.TypesInfo.Uses[fun]
		if fun.Name == "make" || fun.Name == "new" {
			if _, isBuiltin := calleeObj.(*types.Builtin); isBuiltin || calleeObj == nil {
				reportf(pass, sup, call.Pos(), "hot path%s: %s allocates", via, fun.Name)
				return
			}
		}
	case *ast.SelectorExpr:
		calleeObj = pass.TypesInfo.Uses[fun.Sel]
	}
	fn, ok := calleeObj.(*types.Func)
	if !ok {
		return
	}
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" {
		reportf(pass, sup, call.Pos(), "hot path%s: fmt call", via)
		return
	}

	// Implicit interface conversions at the call boundary.
	if sig, ok := fn.Type().(*types.Signature); ok {
		checkInterfaceArgs(pass, sup, call, sig, via)
	}

	// Chase intra-package static callees.
	if callee, ok := decls[fn]; ok {
		follow(callee)
	}
}

// checkInterfaceArgs flags concrete-typed arguments passed to interface
// parameters (each such conversion may allocate).
func checkInterfaceArgs(pass *analysis.Pass, sup *suppressor, call *ast.CallExpr, sig *types.Signature, via string) {
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if sl, ok := last.(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := pass.TypesInfo.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		reportf(pass, sup, arg.Pos(), "hot path%s: argument converted to interface %s allocates", via, pt.String())
	}
}
