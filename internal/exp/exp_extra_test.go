package exp

import (
	"strings"
	"testing"
	"time"
)

// microConfig is even smaller than tinyConfig, for the experiments that
// touch DG60.
func microConfig() Config {
	return Config{
		BasePersons:  25,
		Seed:         42,
		Timeout:      3 * time.Second,
		GPUMemBudget: 64 << 20,
		BRAMBytes:    32 << 10,
		BatchSize:    64,
	}
}

func TestFig9StructureAndShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := microConfig()
	cfg.Queries = []string{"q2", "q4"}
	tables, err := Run("fig9", cfg)
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	// 2 queries × 4 datasets.
	if len(tab.Rows) != 8 {
		t.Fatalf("fig9 rows = %d, want 8", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if len(row) != 4 {
			t.Fatalf("fig9 row %v", row)
		}
		if !strings.HasSuffix(row[3], "%") {
			t.Errorf("S_CST/S_G cell %q not a percentage", row[3])
		}
	}
}

func TestFig10Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := microConfig()
	cfg.Queries = []string{"q2"}
	tables, err := Run("fig10", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables[0].Rows) != 4 { // 1 query × 4 datasets
		t.Fatalf("fig10 rows = %d", len(tables[0].Rows))
	}
}

func TestFig14StructureAndConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := microConfig()
	cfg.Queries = []string{"q2", "q5"}
	tables, err := Run("fig14", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 { // DG01, DG03, DG10
		t.Fatalf("fig14 tables = %d", len(tables))
	}
	for _, tab := range tables {
		if len(tab.Rows) != 7 { // FAST + 6 competitors
			t.Errorf("%s: %d algorithm rows, want 7", tab.ID, len(tab.Rows))
		}
		if tab.Rows[0][0] != "FAST" {
			t.Errorf("%s: first row %q", tab.ID, tab.Rows[0][0])
		}
		for _, row := range tab.Rows {
			for _, cell := range row[1:] {
				if cell == "" {
					t.Errorf("%s: empty cell in row %v", tab.ID, row)
				}
			}
		}
	}
}

func TestFig16And17Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := microConfig()
	cfg.Queries = []string{"q2"}
	t16, err := Run("fig16", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(t16[0].Rows) != 4 { // 4 datasets × 1 query
		t.Errorf("fig16 rows = %d", len(t16[0].Rows))
	}
	t17, err := Run("fig17", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(t17[0].Rows) != 5 { // 5 fractions × 1 query
		t.Errorf("fig17 rows = %d", len(t17[0].Rows))
	}
	// The 100% sample must be the full DG60: its embedding count equals
	// fig16's DG60 row.
	var fig16DG60, fig17Full string
	for _, row := range t16[0].Rows {
		if row[0] == "DG60" {
			fig16DG60 = row[2]
		}
	}
	for _, row := range t17[0].Rows {
		if row[0] == "100%" {
			fig17Full = row[2]
		}
	}
	if fig16DG60 != fig17Full {
		t.Errorf("DG60 counts disagree: fig16 %s vs fig17 %s", fig16DG60, fig17Full)
	}
}

func TestConfigWithDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	d := DefaultConfig()
	if c.BasePersons != d.BasePersons || c.Timeout != d.Timeout || c.BRAMBytes != d.BRAMBytes {
		t.Errorf("withDefaults: %+v", c)
	}
	// Partial overrides survive.
	c2 := Config{BasePersons: 7}.withDefaults()
	if c2.BasePersons != 7 || c2.Seed != d.Seed {
		t.Errorf("partial override: %+v", c2)
	}
}

func TestDatasetCacheReuse(t *testing.T) {
	cfg := microConfig()
	g1, err := cfg.dataset("DG01")
	if err != nil {
		t.Fatal(err)
	}
	g2, err := cfg.dataset("DG01")
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Error("dataset cache miss for identical config")
	}
	if _, err := cfg.dataset("DG99"); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestQueryFilterErrors(t *testing.T) {
	cfg := microConfig()
	cfg.Queries = []string{"q42"}
	if _, err := Run("fig7", cfg); err == nil {
		t.Error("unknown query accepted")
	}
}
