package exp

import (
	"context"
	"fmt"

	"fastmatch/internal/core"
	"fastmatch/internal/host"
)

func init() {
	register("fig7", runFig7)
	register("fig11", runFig11)
	register("fig12", runFig12)
}

// compareVariants runs two kernel variants over the Fig. 7/11/12 query set
// on one dataset and reports elapsed times plus the acceleration ratio
// slow/fast per query.
func compareVariants(cfg Config, id, title, dataset string, slow, fast core.Variant) ([]Table, error) {
	g, err := cfg.dataset(dataset)
	if err != nil {
		return nil, err
	}
	queries, err := cfg.queries([]string{"q2", "q3", "q5", "q6", "q7", "q8"})
	if err != nil {
		return nil, err
	}
	t := Table{
		ID:      id,
		Title:   title,
		Columns: []string{"query", slow.String() + " (ms)", fast.String() + " (ms)", "accel", "#emb"},
		Notes:   []string{fmt.Sprintf("dataset %s; FPGA time = modelled kernel cycles at 300 MHz", dataset)},
	}
	var sumRatio float64
	for _, q := range queries {
		repSlow, err := host.Match(context.Background(), q, g, cfg.hostConfig(slow, 0))
		if err != nil {
			return nil, err
		}
		repFast, err := host.Match(context.Background(), q, g, cfg.hostConfig(fast, 0))
		if err != nil {
			return nil, err
		}
		if repSlow.Embeddings != repFast.Embeddings {
			return nil, fmt.Errorf("%s: variants disagree on %s: %d vs %d",
				id, q.Name(), repSlow.Embeddings, repFast.Embeddings)
		}
		r := float64(repSlow.FPGATime) / float64(repFast.FPGATime)
		sumRatio += r
		t.AddRow(q.Name(), ms(repSlow.FPGATime), ms(repFast.FPGATime), ratio(r), count(repFast.Embeddings))
	}
	t.Notes = append(t.Notes, fmt.Sprintf("average acceleration %.2fx", sumRatio/float64(len(queries))))
	return []Table{t}, nil
}

// runFig7 regenerates Fig. 7: FAST-DRAM vs FAST-BASIC — the necessity of
// CST partitioning into BRAM. The paper sees ≈5× (the BRAM/DRAM latency
// ratio) on DG10.
func runFig7(cfg Config) ([]Table, error) {
	return compareVariants(cfg, "fig7",
		"FAST-DRAM vs FAST-BASIC (necessity of CST partition)",
		"DG10", core.VariantDRAM, core.VariantBasic)
}

// runFig11 regenerates Fig. 11: FAST-BASIC vs FAST-TASK — task parallelism
// buys up to 50% (Eq. 2 vs Eq. 3).
func runFig11(cfg Config) ([]Table, error) {
	return compareVariants(cfg, "fig11",
		"FAST-BASIC vs FAST-TASK (task parallelism)",
		"DG10", core.VariantBasic, core.VariantTask)
}

// runFig12 regenerates Fig. 12: FAST-TASK vs FAST-SEP — generator
// separation buys up to 33% more (Eq. 3 vs Eq. 4).
func runFig12(cfg Config) ([]Table, error) {
	return compareVariants(cfg, "fig12",
		"FAST-TASK vs FAST-SEP (task generator separation)",
		"DG10", core.VariantTask, core.VariantSep)
}
