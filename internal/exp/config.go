package exp

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"fastmatch/graph"
	"fastmatch/internal/core"
	"fastmatch/internal/cst"
	"fastmatch/internal/fpgasim"
	"fastmatch/internal/host"
	"fastmatch/ldbc"
)

// Config scales the experiment suite. The defaults run the whole evaluation
// at laptop scale while preserving the paper's ratios: datasets keep the
// 1:3:10:60 scale-factor ladder, and the device keeps the paper's clock and
// latency ratios but shrinks BRAM (and the batch size No with it) so the
// partition-and-offload dynamics appear at these graph sizes — on the real
// 35 MB card none of the scaled-down CSTs would ever need partitioning,
// which would silence Figs. 8, 9, 10 and 13 entirely.
type Config struct {
	// BasePersons scales every dataset (persons at ScaleFactor 1).
	BasePersons int
	// Seed drives the generator.
	Seed int64
	// Timeout per baseline run; expiry renders as INF (paper: 3 hours).
	Timeout time.Duration
	// GPUMemBudget bounds GSI/GpSM intermediates; exceeding renders OOM.
	GPUMemBudget int64
	// BRAMBytes / BatchSize configure the scaled-down card.
	BRAMBytes int64
	BatchSize int
	// Queries filters which benchmark queries run (nil = experiment
	// defaults).
	Queries []string
}

// DefaultConfig returns the laptop-scale configuration the benchmarks use.
func DefaultConfig() Config {
	return Config{
		BasePersons:  200,
		Seed:         42,
		Timeout:      10 * time.Second,
		GPUMemBudget: 64 << 20,
		BRAMBytes:    256 << 10,
		BatchSize:    256,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.BasePersons <= 0 {
		c.BasePersons = d.BasePersons
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.Timeout <= 0 {
		c.Timeout = d.Timeout
	}
	if c.GPUMemBudget <= 0 {
		c.GPUMemBudget = d.GPUMemBudget
	}
	if c.BRAMBytes <= 0 {
		c.BRAMBytes = d.BRAMBytes
	}
	if c.BatchSize <= 0 {
		c.BatchSize = d.BatchSize
	}
	return c
}

// device returns the scaled-down card model.
func (c Config) device() fpgasim.Config {
	dev := fpgasim.DefaultConfig()
	dev.BRAMBytes = c.BRAMBytes
	dev.No = c.BatchSize
	return dev
}

// hostConfig returns a host pipeline configuration for the given kernel
// variant and CPU share.
func (c Config) hostConfig(v core.Variant, delta float64) host.Config {
	return host.Config{Device: c.device(), Variant: v, Delta: delta}
}

// partitionConfig derives the partition thresholds from the scaled card,
// mirroring host.Config.withDefaults for a query of nq vertices.
func (c Config) partitionConfig(nq int) cst.PartitionConfig {
	dev := c.device()
	buffer := int64(nq-1) * int64(dev.No) * int64(nq*4+4)
	size := dev.BRAMBytes - buffer
	if size < 1024 {
		size = 1024
	}
	return cst.PartitionConfig{MaxSizeBytes: size, MaxCandDegree: dev.PortMax}
}

// queries resolves the query filter against defaults.
func (c Config) queries(defaults []string) ([]*graph.Query, error) {
	names := c.Queries
	if len(names) == 0 {
		names = defaults
	}
	out := make([]*graph.Query, 0, len(names))
	for _, n := range names {
		q, err := ldbc.QueryByName(n)
		if err != nil {
			return nil, err
		}
		out = append(out, q)
	}
	return out, nil
}

var allQueryNames = []string{"q0", "q1", "q2", "q3", "q4", "q5", "q6", "q7", "q8"}

// dataset generates (and caches) a benchmark dataset by name.
var (
	dsMu    sync.Mutex
	dsCache = map[string]*graph.Graph{}
)

func (c Config) dataset(name string) (*graph.Graph, error) {
	cfg, err := ldbc.Dataset(name)
	if err != nil {
		return nil, err
	}
	cfg.BasePersons = c.BasePersons
	cfg.Seed = c.Seed
	key := fmt.Sprintf("%s/%d/%d", name, c.BasePersons, c.Seed)
	dsMu.Lock()
	defer dsMu.Unlock()
	if g, ok := dsCache[key]; ok {
		return g, nil
	}
	g := ldbc.Generate(cfg)
	dsCache[key] = g
	return g, nil
}

// Runner regenerates one experiment.
type Runner func(Config) ([]Table, error)

var registry = map[string]Runner{}

func register(name string, r Runner) { registry[name] = r }

// Registry returns all experiment runners by name.
func Registry() map[string]Runner {
	out := make(map[string]Runner, len(registry))
	for k, v := range registry {
		out[k] = v
	}
	return out
}

// Names lists experiment names in a stable order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for k := range registry {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Run executes one named experiment.
func Run(name string, cfg Config) ([]Table, error) {
	r, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("exp: unknown experiment %q (have %v)", name, Names())
	}
	return r(cfg.withDefaults())
}
