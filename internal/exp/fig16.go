package exp

import (
	"context"
	"fmt"

	"fastmatch/graph"
	"fastmatch/internal/core"
	"fastmatch/internal/host"
)

func init() {
	register("fig16", runFig16)
	register("fig17", runFig17)
}

// runFig16 regenerates Fig. 16, the scalability test varying the scale
// factor x of DGx up to the largest dataset (the paper's billion-scale
// DG60, which only FAST completes): FAST's elapsed time against the number
// of embeddings. The paper observes elapsed time growing linearly with the
// embedding count.
func runFig16(cfg Config) ([]Table, error) {
	queries, err := cfg.queries([]string{"q0", "q1", "q2", "q3", "q5", "q6", "q7", "q8"})
	if err != nil {
		return nil, err
	}
	t := Table{
		ID:      "fig16",
		Title:   "Scalability of FAST varying scale factor (elapsed vs #embeddings)",
		Columns: []string{"dataset", "query", "#emb", "elapsed (ms)", "ns/emb"},
	}
	for _, ds := range []string{"DG01", "DG03", "DG10", "DG60"} {
		g, err := cfg.dataset(ds)
		if err != nil {
			return nil, err
		}
		for _, q := range queries {
			rep, err := host.Match(context.Background(), q, g, cfg.hostConfig(core.VariantSep, 0.1))
			if err != nil {
				return nil, err
			}
			perEmb := "-"
			if rep.Embeddings > 0 {
				perEmb = fmt.Sprintf("%.1f", float64(rep.Total.Nanoseconds())/float64(rep.Embeddings))
			}
			t.AddRow(ds, q.Name(), count(rep.Embeddings), ms(rep.Total), perEmb)
		}
	}
	return []Table{t}, nil
}

// runFig17 regenerates Fig. 17: keep all vertices of the largest dataset
// and sample 20–100% of its edges uniformly; FAST's time per embedding
// should stay roughly flat (small samples pay relatively more index and
// transfer overhead, as the paper notes for q5/q6/q8 at 20%).
func runFig17(cfg Config) ([]Table, error) {
	queries, err := cfg.queries([]string{"q1", "q2", "q3", "q5", "q6", "q7", "q8"})
	if err != nil {
		return nil, err
	}
	full, err := cfg.dataset("DG60")
	if err != nil {
		return nil, err
	}
	t := Table{
		ID:      "fig17",
		Title:   "Scalability of FAST varying |E(G)| (uniform edge samples of DG60)",
		Columns: []string{"sample", "query", "#emb", "elapsed (ms)", "ns/emb"},
	}
	for _, frac := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		g := graph.SampleEdges(full, frac, cfg.Seed)
		for _, q := range queries {
			rep, err := host.Match(context.Background(), q, g, cfg.hostConfig(core.VariantSep, 0.1))
			if err != nil {
				return nil, err
			}
			perEmb := "-"
			if rep.Embeddings > 0 {
				perEmb = fmt.Sprintf("%.1f", float64(rep.Total.Nanoseconds())/float64(rep.Embeddings))
			}
			t.AddRow(pct(frac), q.Name(), count(rep.Embeddings), ms(rep.Total), perEmb)
		}
	}
	return []Table{t}, nil
}
