// Package exp is the experiment harness: one runner per table/figure of the
// paper's evaluation (Section VII), each regenerating the corresponding
// rows/series at laptop scale. cmd/fastbench and the module's benchmark
// suite both drive this package; EXPERIMENTS.md records paper-vs-measured
// shapes for every experiment.
package exp

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is one regenerated table or figure-series.
type Table struct {
	ID      string // e.g. "fig14-DG01"
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// RenderCSV writes the table as CSV (header row first), for downstream
// plotting of the figure series.
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Cell formatting helpers shared by the runners.

// ms renders a duration as milliseconds with sensible precision.
func ms(d time.Duration) string {
	v := float64(d) / float64(time.Millisecond)
	switch {
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// secs renders a duration as seconds the way Fig. 14 does.
func secs(d time.Duration) string {
	v := d.Seconds()
	switch {
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// ratio renders a speed-up factor ("5.2x").
func ratio(r float64) string { return fmt.Sprintf("%.1fx", r) }

// pct renders a percentage.
func pct(r float64) string { return fmt.Sprintf("%.0f%%", 100*r) }

// count renders an embedding count.
func count(n int64) string { return fmt.Sprintf("%d", n) }
