package exp

import (
	"fmt"

	"fastmatch/graph"
)

func init() { register("table3", runTable3) }

// runTable3 regenerates Table III: characteristics of the datasets. The
// paper's absolute sizes (3.18M…187M vertices) are scaled down by
// BasePersons; the ratios between scales, the average-degree range and the
// 11-label alphabet are preserved.
func runTable3(cfg Config) ([]Table, error) {
	t := Table{
		ID:      "table3",
		Title:   "Characteristics of datasets (scaled LDBC-SNB-like)",
		Columns: []string{"Name", "|V_G|", "|E_G|", "avg d_G", "D_G", "# Labels"},
		Notes: []string{
			fmt.Sprintf("BasePersons=%d seed=%d; paper ratios 1:3:10:60 preserved", cfg.BasePersons, cfg.Seed),
		},
	}
	for _, name := range []string{"DG01", "DG03", "DG10", "DG60"} {
		g, err := cfg.dataset(name)
		if err != nil {
			return nil, err
		}
		s := graph.ComputeStats(name, g)
		t.AddRow(name,
			fmt.Sprintf("%d", s.NumVertices),
			fmt.Sprintf("%d", s.NumEdges),
			fmt.Sprintf("%.2f", s.AvgDegree),
			fmt.Sprintf("%d", s.MaxDegree),
			fmt.Sprintf("%d", s.NumLabels))
	}
	return []Table{t}, nil
}
