package exp

import (
	"context"
	"time"

	"fastmatch/internal/core"
	"fastmatch/internal/cst"
	"fastmatch/internal/host"
	"fastmatch/internal/order"
)

func init() { register("fig15", runFig15) }

// runFig15 regenerates Fig. 15: FAST's sensitivity to the matching order.
// For each dataset we run FAST with CFL's, DAF's and CECI's orders plus
// every other connected order (capped), and report BEST / AVG / WORST
// alongside the named strategies, averaged over the benchmark queries. The
// paper's finding: the named orders sit close together near BEST, and even
// WORST stays well ahead of the CPU baselines.
func runFig15(cfg Config) ([]Table, error) {
	queries, err := cfg.queries([]string{"q2", "q4", "q5", "q8"})
	if err != nil {
		return nil, err
	}
	const orderCap = 48 // connected orders per query (queries are tiny)
	t := Table{
		ID:      "fig15",
		Title:   "Average elapsed time of FAST under different matching orders",
		Columns: []string{"dataset", "BEST", "CFL", "DAF", "CECI", "AVG", "WORST"},
		Notes:   []string{"BEST/AVG/WORST over all connected topological orders (capped)"},
	}
	for _, ds := range []string{"DG01", "DG03"} {
		g, err := cfg.dataset(ds)
		if err != nil {
			return nil, err
		}
		var sums struct{ best, cfl, daf, ceci, avg, worst time.Duration }
		for _, q := range queries {
			root := order.SelectRoot(q, g)
			tree := order.BuildBFSTree(q, root)
			c := cst.Build(q, g, tree)
			run := func(o order.Order) (time.Duration, error) {
				rep, err := host.Match(context.Background(), q, g, host.Config{
					Device:        cfg.device(),
					Variant:       core.VariantSep,
					ExplicitOrder: o,
				})
				return rep.Total, err
			}
			best, worst, avg := time.Duration(0), time.Duration(0), time.Duration(0)
			orders := order.AllConnected(tree, orderCap)
			for i, o := range orders {
				d, err := run(o)
				if err != nil {
					return nil, err
				}
				if i == 0 || d < best {
					best = d
				}
				if d > worst {
					worst = d
				}
				avg += d
			}
			avg /= time.Duration(len(orders))
			dCFL, err := run(order.CFLLike(tree, c))
			if err != nil {
				return nil, err
			}
			dDAF, err := run(order.DAFLike(tree, c))
			if err != nil {
				return nil, err
			}
			dCECI, err := run(order.CECILike(tree, c))
			if err != nil {
				return nil, err
			}
			sums.best += best
			sums.worst += worst
			sums.avg += avg
			sums.cfl += dCFL
			sums.daf += dDAF
			sums.ceci += dCECI
		}
		n := time.Duration(len(queries))
		t.AddRow(ds, ms(sums.best/n), ms(sums.cfl/n), ms(sums.daf/n),
			ms(sums.ceci/n), ms(sums.avg/n), ms(sums.worst/n))
	}
	return []Table{t}, nil
}
