package exp

import (
	"context"
	"fmt"

	"fastmatch/internal/core"
	"fastmatch/internal/host"
)

func init() { register("fig13", runFig13) }

// runFig13 regenerates Fig. 13: the effect of the CPU-share threshold δ on
// end-to-end time, per dataset, averaged over the benchmark queries. The
// paper sees the largest improvement around δ = 0.1 and degradation beyond
// ≈0.15 where the CPU becomes the bottleneck.
func runFig13(cfg Config) ([]Table, error) {
	queries, err := cfg.queries([]string{"q2", "q4", "q5", "q7", "q8"})
	if err != nil {
		return nil, err
	}
	deltas := []float64{0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30}
	t := Table{
		ID:      "fig13",
		Title:   "Average acceleration over δ=0 varying CPU share δ (FAST-SHARE)",
		Columns: []string{"dataset", "δ", "avg accel", "CPU share obs."},
		Notes:   []string{"accel = total(δ=0) / total(δ); >1.0x means the CPU share helped"},
	}
	for _, ds := range []string{"DG01", "DG03", "DG10"} {
		g, err := cfg.dataset(ds)
		if err != nil {
			return nil, err
		}
		base := make(map[string]float64, len(queries))
		for _, q := range queries {
			rep, err := host.Match(context.Background(), q, g, cfg.hostConfig(core.VariantSep, 0))
			if err != nil {
				return nil, err
			}
			base[q.Name()] = float64(rep.Total)
		}
		for _, d := range deltas {
			var sumAccel, sumShare float64
			for _, q := range queries {
				rep, err := host.Match(context.Background(), q, g, cfg.hostConfig(core.VariantSep, d))
				if err != nil {
					return nil, err
				}
				sumAccel += base[q.Name()] / float64(rep.Total)
				if tot := rep.CPUWorkload + rep.FPGAWorkload; tot > 0 {
					sumShare += rep.CPUWorkload / tot
				}
			}
			n := float64(len(queries))
			t.AddRow(ds, fmt.Sprintf("%.2f", d), ratio(sumAccel/n), pct(sumShare/n))
		}
	}
	return []Table{t}, nil
}
