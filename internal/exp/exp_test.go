package exp

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// tinyConfig keeps experiment tests fast.
func tinyConfig() Config {
	return Config{
		BasePersons:  60,
		Seed:         42,
		Timeout:      5 * time.Second,
		GPUMemBudget: 64 << 20,
		BRAMBytes:    64 << 10,
		BatchSize:    128,
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table3", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
		"fig13", "fig14", "fig15", "fig16", "fig17",
		"ablation-no", "ablation-cycles",
	}
	reg := Registry()
	for _, name := range want {
		if _, ok := reg[name]; !ok {
			t.Errorf("experiment %q missing from registry", name)
		}
	}
	if len(Names()) != len(want) {
		t.Errorf("registry has %d entries, want %d: %v", len(Names()), len(want), Names())
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("fig99", tinyConfig()); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestTableRender(t *testing.T) {
	tab := Table{
		ID:      "t",
		Title:   "demo",
		Columns: []string{"a", "long-column"},
		Notes:   []string{"a note"},
	}
	tab.AddRow("1", "2")
	tab.AddRow("333333", "4")
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"demo", "long-column", "333333", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFormattingHelpers(t *testing.T) {
	if got := ms(1500 * time.Microsecond); got != "1.5" {
		t.Errorf("ms = %q", got)
	}
	if got := secs(2 * time.Second); got != "2.0" {
		t.Errorf("secs = %q", got)
	}
	if got := ratio(5.25); got != "5.2x" && got != "5.3x" {
		t.Errorf("ratio = %q", got)
	}
	if got := pct(0.5); got != "50%" {
		t.Errorf("pct = %q", got)
	}
}

// Smoke-run the cheap experiments end to end at tiny scale; the expensive
// ones (fig14, fig16, fig17) are exercised by the benchmark suite.
func TestSmallExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := tinyConfig()
	for _, name := range []string{"table3", "fig7", "fig8", "fig11", "fig12", "ablation-no", "ablation-cycles"} {
		tables, err := Run(name, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tables) == 0 {
			t.Fatalf("%s: no tables", name)
		}
		for _, tab := range tables {
			if len(tab.Rows) == 0 {
				t.Errorf("%s/%s: empty table", name, tab.ID)
			}
			var buf bytes.Buffer
			tab.Render(&buf)
			if buf.Len() == 0 {
				t.Errorf("%s/%s: empty render", name, tab.ID)
			}
		}
	}
}

func TestFig13AndFig15Run(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := tinyConfig()
	cfg.Queries = []string{"q2", "q4"}
	for _, name := range []string{"fig13", "fig15"} {
		tables, err := Run(name, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tables[0].Rows) == 0 {
			t.Fatalf("%s: empty", name)
		}
	}
}
