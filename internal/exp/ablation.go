package exp

import (
	"fmt"

	"fastmatch/internal/core"
	"fastmatch/internal/cst"
	"fastmatch/internal/order"
)

func init() {
	register("ablation-no", runAblationNo)
	register("ablation-cycles", runAblationCycles)
}

// runAblationNo sweeps the per-round batch size No (Section VI-B, Eq. 2):
// small No leaves pipeline fill and round overheads unamortised; large No
// buys nothing more once overheads vanish but costs BRAM for the buffer.
func runAblationNo(cfg Config) ([]Table, error) {
	c, o, err := buildCST(cfg, "DG03", "q5")
	if err != nil {
		return nil, err
	}
	t := Table{
		ID:      "ablation-no",
		Title:   "Batch size No vs kernel cycles and buffer footprint (q5, DG03, FAST-BASIC)",
		Columns: []string{"No", "cycles", "rounds", "buffer high-water", "buffer bytes"},
		Notes:   []string{"Eq. 2: overhead term ~ rounds × ΣL; buffer = (|V(q)|-1)·No slots"},
	}
	for _, no := range []int{8, 32, 128, 512, 2048} {
		dev := cfg.device()
		dev.No = no
		dev.BRAMBytes = 64 << 20 // generous so admission never interferes with the sweep
		res, err := core.Run(c, o, core.Options{Variant: core.VariantBasic, Config: dev})
		if err != nil {
			return nil, err
		}
		bufBytes := int64(c.Query.NumVertices()-1) * int64(no) * int64(c.Query.NumVertices()*4+4)
		t.AddRow(fmt.Sprintf("%d", no),
			fmt.Sprintf("%d", res.Cycles),
			fmt.Sprintf("%d", res.Rounds),
			fmt.Sprintf("%d", res.BufferHighWater),
			fmt.Sprintf("%d", bufBytes))
	}
	return []Table{t}, nil
}

// runAblationCycles checks the modelled cycle counts against the paper's
// closed-form equations on a fixed workload: with N partial results and M
// edge tasks, Eq. 2 ≈ 4N+2M (BASIC), Eq. 3 ≈ 2N+max(N,M) (TASK) and
// Eq. 4 ≈ N+max(N,M) (SEP), up to fill/overhead terms.
func runAblationCycles(cfg Config) ([]Table, error) {
	g, err := cfg.dataset("DG03")
	if err != nil {
		return nil, err
	}
	queries, err := cfg.queries([]string{"q2", "q5", "q7"})
	if err != nil {
		return nil, err
	}
	t := Table{
		ID:      "ablation-cycles",
		Title:   "Measured kernel cycles vs the paper's closed-form equations",
		Columns: []string{"query", "variant", "cycles", "equation", "cycles/eq"},
		Notes:   []string{"equation evaluated with measured N (partials) and M (edge tasks)"},
	}
	for _, q := range queries {
		root := order.SelectRoot(q, g)
		tree := order.BuildBFSTree(q, root)
		c := cst.Build(q, g, tree)
		o := order.PathBased(tree, c)
		dev := cfg.device()
		dev.BRAMBytes = 64 << 20
		for _, v := range []core.Variant{core.VariantBasic, core.VariantTask, core.VariantSep} {
			res, err := core.Run(c, o, core.Options{Variant: v, Config: dev})
			if err != nil {
				return nil, err
			}
			n, m := res.Partials, res.EdgeTasks
			var eq int64
			switch v {
			case core.VariantBasic:
				eq = 4*n + 2*m
			case core.VariantTask:
				eq = 2*n + max(n, m)
			case core.VariantSep:
				eq = n + max(n, m)
			}
			ratioCell := "-"
			if eq > 0 {
				ratioCell = fmt.Sprintf("%.2f", float64(res.Cycles)/float64(eq))
			}
			t.AddRow(q.Name(), v.String(),
				fmt.Sprintf("%d", res.Cycles),
				fmt.Sprintf("%d", eq), ratioCell)
		}
	}
	return []Table{t}, nil
}
