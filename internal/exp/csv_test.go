package exp

import (
	"bytes"
	"strings"
	"testing"
)

func TestRenderCSV(t *testing.T) {
	tab := Table{
		ID:      "x",
		Columns: []string{"a", "b"},
	}
	tab.AddRow("1", "hello, world") // comma must be quoted
	tab.AddRow("2", "plain")
	var buf bytes.Buffer
	if err := tab.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %v", lines)
	}
	if lines[0] != "a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], `"hello, world"`) {
		t.Errorf("comma cell not quoted: %q", lines[1])
	}
}
