package exp

import (
	"context"
	"errors"
	"fmt"
	"time"

	"fastmatch/graph"
	"fastmatch/internal/baseline"
	"fastmatch/internal/core"
	"fastmatch/internal/host"
)

func init() { register("fig14", runFig14) }

// runFig14 regenerates Fig. 14, the headline comparison: FAST against the
// GPU-style joins (GSI, GpSM) and the CPU algorithms (DAF, CFL, CECI,
// CECI-8) on every query over DG01/DG03/DG10. Cells are seconds; OOM marks
// a device-memory failure (join algorithms under the GPU budget), INF a
// timeout. The paper's shape: FAST wins everywhere (24.6× average), the
// gap to CPU algorithms widens with graph size, and the GPU joins start
// OOMing as data grows.
func runFig14(cfg Config) ([]Table, error) {
	queries, err := cfg.queries(allQueryNames)
	if err != nil {
		return nil, err
	}
	type algo struct {
		name string
		run  func(q *graph.Query, g *graph.Graph) (time.Duration, int64, error)
	}
	baselineAlgo := func(name string, threads int, budget int64) algo {
		fn := baseline.Registry()[name]
		if threads > 1 {
			fn = baseline.Parallel(fn, threads)
		}
		return algo{name: displayName(name, threads), run: func(q *graph.Query, g *graph.Graph) (time.Duration, int64, error) {
			start := time.Now()
			res, err := fn(q, g, baseline.Options{Timeout: cfg.Timeout, MemoryBudget: budget})
			return time.Since(start), res.Count, err
		}}
	}
	algos := []algo{
		{name: "FAST", run: func(q *graph.Query, g *graph.Graph) (time.Duration, int64, error) {
			rep, err := host.Match(context.Background(), q, g, cfg.hostConfig(core.VariantSep, 0.1))
			return rep.Total, rep.Embeddings, err
		}},
		baselineAlgo("GSI", 1, cfg.GPUMemBudget),
		baselineAlgo("GpSM", 1, cfg.GPUMemBudget),
		baselineAlgo("DAF", 1, 0),
		baselineAlgo("CFL", 1, 0),
		baselineAlgo("CECI", 1, 0),
		baselineAlgo("CECI", 8, 0),
	}

	var tables []Table
	for _, ds := range []string{"DG01", "DG03", "DG10"} {
		g, err := cfg.dataset(ds)
		if err != nil {
			return nil, err
		}
		t := Table{
			ID:      "fig14-" + ds,
			Title:   "Elapsed time (s) of FAST and competitors on " + ds,
			Columns: append([]string{"algorithm"}, queryNames(queries)...),
			Notes: []string{
				fmt.Sprintf("timeout %v → INF; GPU budget %d MB → OOM", cfg.Timeout, cfg.GPUMemBudget>>20),
			},
		}
		counts := make(map[string]int64)
		for _, a := range algos {
			row := []string{a.name}
			for _, q := range queries {
				elapsed, n, err := a.run(q, g)
				switch {
				case errors.Is(err, baseline.ErrOOM):
					row = append(row, "OOM")
				case errors.Is(err, baseline.ErrTimeout):
					row = append(row, "INF")
				case err != nil:
					return nil, fmt.Errorf("%s on %s/%s: %v", a.name, ds, q.Name(), err)
				default:
					if want, seen := counts[q.Name()]; seen && want != n {
						return nil, fmt.Errorf("%s on %s/%s: count %d, others found %d",
							a.name, ds, q.Name(), n, want)
					}
					counts[q.Name()] = n
					row = append(row, secs(elapsed))
				}
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

func displayName(name string, threads int) string {
	if threads > 1 {
		return fmt.Sprintf("%s-%d", name, threads)
	}
	return name
}

func queryNames(qs []*graph.Query) []string {
	out := make([]string, len(qs))
	for i, q := range qs {
		out[i] = q.Name()
	}
	return out
}
