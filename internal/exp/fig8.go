package exp

import (
	"context"
	"fmt"
	"time"

	"fastmatch/internal/cst"
	"fastmatch/internal/host"
	"fastmatch/internal/order"
)

func init() {
	register("fig8", runFig8)
	register("fig9", runFig9)
	register("fig10", runFig10)
}

// buildCST constructs the CST and matching order for (query, dataset).
func buildCST(cfg Config, dataset, query string) (*cst.CST, order.Order, error) {
	g, err := cfg.dataset(dataset)
	if err != nil {
		return nil, nil, err
	}
	qs, err := cfg.queries([]string{query})
	if err != nil {
		return nil, nil, err
	}
	q := qs[0]
	root := order.SelectRoot(q, g)
	tree := order.BuildBFSTree(q, root)
	c := cst.Build(q, g, tree)
	return c, order.PathBased(tree, c), nil
}

// runFig8 regenerates Fig. 8, the k-determination experiment: the greedy
// partition factor versus fixed k ∈ {2,4,6,8,10}, reporting the average
// number of CST partitions and average partition time across the benchmark
// queries on DG03. The paper finds greedy gives the fewest partitions and
// the least partition time, with little sensitivity for small fixed k.
func runFig8(cfg Config) ([]Table, error) {
	queries := allQueryNames
	if len(cfg.Queries) > 0 {
		queries = cfg.Queries
	}
	t := Table{
		ID:      "fig8",
		Title:   "Average #CST and partition time varying partition factor k (DG03)",
		Columns: []string{"k", "avg #CST", "avg partition time (ms)"},
		Notes:   []string{"greedy = max(|CST|/δS, D_CST/δD), the paper's strategy"},
	}
	for _, k := range []int{0, 2, 4, 6, 8, 10} {
		var totalParts int
		var totalTime time.Duration
		for _, qn := range queries {
			c, o, err := buildCST(cfg, "DG03", qn)
			if err != nil {
				return nil, err
			}
			pc := cfg.partitionConfig(c.Query.NumVertices())
			pc.FixedK = k
			start := time.Now()
			totalParts += cst.Partition(c, o, pc, func(*cst.CST) {})
			totalTime += time.Since(start)
		}
		label := "greedy"
		if k > 0 {
			label = fmt.Sprintf("%d", k)
		}
		t.AddRow(label,
			fmt.Sprintf("%.1f", float64(totalParts)/float64(len(queries))),
			ms(totalTime/time.Duration(len(queries))))
	}
	return []Table{t}, nil
}

// runFig9 regenerates Fig. 9: the number of CST partitions and the total
// partitioned-CST size relative to the data graph (S_CST/S_G) for the
// paper's query subset across all datasets. The paper sees #CST grow with
// graph size while S_CST/S_G stays below 60% and roughly stable.
func runFig9(cfg Config) ([]Table, error) {
	queries, err := cfg.queries([]string{"q0", "q1", "q2", "q4", "q7", "q8"})
	if err != nil {
		return nil, err
	}
	t := Table{
		ID:      "fig9",
		Title:   "Number and total size of partitioned CST",
		Columns: []string{"query", "dataset", "#CST", "S_CST/S_G"},
	}
	for _, q := range queries {
		for _, ds := range []string{"DG01", "DG03", "DG10", "DG60"} {
			c, o, err := buildCST(cfg, ds, q.Name())
			if err != nil {
				return nil, err
			}
			g, _ := cfg.dataset(ds)
			var totalBytes int64
			n := cst.Partition(c, o, cfg.partitionConfig(c.Query.NumVertices()), func(p *cst.CST) {
				totalBytes += p.SizeBytes()
			})
			t.AddRow(q.Name(), ds, fmt.Sprintf("%d", n), pct(float64(totalBytes)/float64(g.SizeBytes())))
		}
	}
	return []Table{t}, nil
}

// runFig10 regenerates Fig. 10: partition time against the number of
// embeddings as the data graph grows. The paper reports partition time per
// embedding staying within the same order of magnitude from DG01 to DG60.
func runFig10(cfg Config) ([]Table, error) {
	queries, err := cfg.queries([]string{"q0", "q1", "q2", "q4", "q7", "q8"})
	if err != nil {
		return nil, err
	}
	t := Table{
		ID:      "fig10",
		Title:   "Partition time vs #embeddings across scales",
		Columns: []string{"dataset", "query", "#emb", "partition (ms)", "ns/emb"},
	}
	for _, ds := range []string{"DG01", "DG03", "DG10", "DG60"} {
		g, err := cfg.dataset(ds)
		if err != nil {
			return nil, err
		}
		for _, q := range queries {
			rep, err := host.Match(context.Background(), q, g, cfg.hostConfig(0, 0)) // VariantSep
			if err != nil {
				return nil, err
			}
			perEmb := "-"
			if rep.Embeddings > 0 {
				perEmb = fmt.Sprintf("%.1f", float64(rep.PartitionTime.Nanoseconds())/float64(rep.Embeddings))
			}
			t.AddRow(ds, q.Name(), count(rep.Embeddings), ms(rep.PartitionTime), perEmb)
		}
	}
	return []Table{t}, nil
}
