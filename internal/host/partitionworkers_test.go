package host

import (
	"context"
	"sync"
	"testing"

	"fastmatch/ldbc"
)

// TestMatchPartitionWorkersParity is the host half of the acceptance gate:
// for every LDBC query and PartitionWorkers ∈ {1, 2, 4}, both pipelines
// (sequential Workers<=1 and the Workers>1 fan-out, each with the CPU
// δ-share active) report byte-identical embedding totals, partition counts
// and δ splits. The CI -race job runs this, pitting the concurrent producer
// against the δ-share drain and the FPGA worker pool at once.
func TestMatchPartitionWorkersParity(t *testing.T) {
	g, base := parallelTestSetup() // Delta 0.1 keeps the FAST-SHARE Steal hook in play
	for _, name := range []string{"q1", "q2", "q3", "q4", "q5"} {
		q, err := ldbc.QueryByName(name)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := Match(context.Background(), q, g, base)
		if err != nil {
			t.Fatalf("%s: reference match: %v", name, err)
		}
		if ref.Embeddings == 0 {
			t.Fatalf("%s: reference found no embeddings — test has no teeth", name)
		}
		for _, pw := range []int{1, 2, 4} {
			for _, workers := range []int{1, 3} {
				cfg := base
				cfg.PartitionWorkers = pw
				cfg.Workers = workers
				rep, err := Match(context.Background(), q, g, cfg)
				if err != nil {
					t.Fatalf("%s pw=%d workers=%d: %v", name, pw, workers, err)
				}
				if rep.Embeddings != ref.Embeddings {
					t.Errorf("%s pw=%d workers=%d: %d embeddings, want %d",
						name, pw, workers, rep.Embeddings, ref.Embeddings)
				}
				if rep.NumPartitions != ref.NumPartitions {
					t.Errorf("%s pw=%d workers=%d: %d partitions, want %d",
						name, pw, workers, rep.NumPartitions, ref.NumPartitions)
				}
				if rep.CPUPartitions != ref.CPUPartitions {
					t.Errorf("%s pw=%d workers=%d: %d CPU partitions, want %d",
						name, pw, workers, rep.CPUPartitions, ref.CPUPartitions)
				}
				if rep.CPUWorkload != ref.CPUWorkload || rep.FPGAWorkload != ref.FPGAWorkload {
					t.Errorf("%s pw=%d workers=%d: δ split (%v,%v), want (%v,%v)", name, pw, workers,
						rep.CPUWorkload, rep.FPGAWorkload, ref.CPUWorkload, ref.FPGAWorkload)
				}
			}
		}
	}
}

// TestMatchPartitionWorkersConcurrentCallers: many goroutines running
// Matches with the concurrent producer, the δ share and the FPGA fan-out all
// enabled at once stay race-clean and deterministic — the Engine serving
// pattern, exercised below the facade.
func TestMatchPartitionWorkersConcurrentCallers(t *testing.T) {
	g, cfg := parallelTestSetup()
	q, err := ldbc.QueryByName("q2")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 2
	cfg.PartitionWorkers = 2
	ref, err := Match(context.Background(), q, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const callers = 6
	var wg sync.WaitGroup
	results := make([]int64, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep, err := Match(context.Background(), q, g, cfg)
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = rep.Embeddings
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if results[i] != ref.Embeddings {
			t.Errorf("caller %d: %d embeddings, want %d", i, results[i], ref.Embeddings)
		}
	}
}
