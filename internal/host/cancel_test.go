package host

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"fastmatch/graph"
	"fastmatch/internal/cst"
	"fastmatch/ldbc"
)

// cancelConfig forces many partitions and a fat CPU δ-share so both the
// FPGA fan-out and the δ-share drain are mid-flight when cancellation hits.
func cancelConfig(workers int) Config {
	return Config{
		Delta:            0.3,
		Workers:          workers,
		PartitionWorkers: workers,
		Partition:        cst.PartitionConfig{MaxSizeBytes: 16 << 10, MaxCandDegree: 64},
	}
}

// TestHostLimitExact: Config.Limit yields exactly min(limit, total)
// embeddings for every worker shape, including while the concurrent
// δ-share drain is running (run under -race in CI).
func TestHostLimitExact(t *testing.T) {
	g := ldbc.Generate(ldbc.Config{ScaleFactor: 1, BasePersons: 150, Seed: 11})
	q, err := ldbc.QueryByName("q5")
	if err != nil {
		t.Fatal(err)
	}
	full, err := Match(context.Background(), q, g, cancelConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if full.Embeddings < 10 || full.CPUPartitions == 0 {
		t.Skipf("workload too small: %d embeddings, %d CPU partitions", full.Embeddings, full.CPUPartitions)
	}
	limit := full.Embeddings / 2
	for _, workers := range []int{1, 2, 4} {
		cfg := cancelConfig(workers)
		cfg.Limit = limit
		rep, err := Match(context.Background(), q, g, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if rep.Embeddings != limit || !rep.Partial {
			t.Errorf("workers=%d: %d embeddings (partial=%v), want exactly %d partial",
				workers, rep.Embeddings, rep.Partial, limit)
		}
		if rep.KernelAborts != 0 {
			t.Errorf("workers=%d: limit stop tallied %d kernel aborts; filling the budget throws nothing away",
				workers, rep.KernelAborts)
		}
		cfg.Limit = full.Embeddings + 100
		rep, err = Match(context.Background(), q, g, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if rep.Embeddings != full.Embeddings || rep.Partial {
			t.Errorf("workers=%d over-limit: %d embeddings (partial=%v), want full %d",
				workers, rep.Embeddings, rep.Partial, full.Embeddings)
		}
	}
}

// TestHostCancelDuringShareDrain cancels through the Emit hook while the
// CPU δ-share (and, with Workers > 1, the kernel fan-out) is mid-drain,
// asserting a clean partial return for every worker shape under -race.
func TestHostCancelDuringShareDrain(t *testing.T) {
	g := ldbc.Generate(ldbc.Config{ScaleFactor: 1, BasePersons: 150, Seed: 11})
	q, err := ldbc.QueryByName("q5")
	if err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("drain interrupted")
	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			cfg := cancelConfig(workers)
			var seen atomic.Int64
			cfg.Emit = func(graph.Embedding) error {
				if seen.Add(1) >= 5 {
					return sentinel
				}
				return nil
			}
			rep, err := Match(context.Background(), q, g, cfg)
			if !errors.Is(err, sentinel) {
				t.Fatalf("err = %v, want the emit sentinel", err)
			}
			if !rep.Partial {
				t.Error("interrupted run not marked Partial")
			}
			if rep.Embeddings < 5 {
				t.Errorf("Embeddings = %d, want >= 5 (delivered before the stop)", rep.Embeddings)
			}
		})
	}
}

// TestHostContextCancelMidPartition cancels via the context while the
// partition producer is running; the producer, workers and δ-share
// consumer all stop and Match returns the context's error with a partial
// report.
func TestHostContextCancelMidPartition(t *testing.T) {
	g := ldbc.Generate(ldbc.Config{ScaleFactor: 1, BasePersons: 150, Seed: 11})
	q, err := ldbc.QueryByName("q5")
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cfg := cancelConfig(workers)
		var seen atomic.Int64
		cfg.Emit = func(graph.Embedding) error {
			if seen.Add(1) == 3 {
				cancel()
			}
			return nil
		}
		rep, err := Match(ctx, q, g, cfg)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if !rep.Partial {
			t.Errorf("workers=%d: cancelled run not marked Partial", workers)
		}
	}
}
