package host

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"

	"fastmatch/internal/core"
	"fastmatch/internal/cst"
	"fastmatch/internal/faultinject"
	"fastmatch/internal/fpgasim"
	"fastmatch/internal/order"
)

// RetryPolicy bounds the exponential backoff applied to transient device
// faults (fpgasim.ErrTransient — injected PCIe hiccups and failed kernel
// launches). Attempt n waits min(Base·2ⁿ, Cap) before retrying, up to Max
// retries; the wait is interruptible by the run's cancellation. The zero
// value means the defaults below; Max < 0 disables retries entirely (every
// transient fault is terminal).
//
// Retries never change results: a transient fault fires before the kernel
// does any work, so re-running it cannot double-count or double-emit.
type RetryPolicy struct {
	Max  int
	Base time.Duration
	Cap  time.Duration
}

// Default retry bounds: three retries spread over a few milliseconds —
// enough to ride out a modelled hiccup, bounded enough that a card failing
// hard degrades the call fast.
const (
	DefaultRetryMax  = 3
	DefaultRetryBase = time.Millisecond
	DefaultRetryCap  = 50 * time.Millisecond
)

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Max < 0 {
		return RetryPolicy{Max: 0}
	}
	if p.Max == 0 {
		p.Max = DefaultRetryMax
	}
	if p.Base <= 0 {
		p.Base = DefaultRetryBase
	}
	if p.Cap <= 0 {
		p.Cap = DefaultRetryCap
	}
	return p
}

// backoff returns the wait before retry attempt n (0-based).
func (p RetryPolicy) backoff(attempt int) time.Duration {
	d := p.Base
	for i := 0; i < attempt && d < p.Cap; i++ {
		d *= 2
	}
	if d > p.Cap {
		d = p.Cap
	}
	return d
}

// KernelPanicError reports a panic recovered inside the pipeline — a kernel
// execution, a CPU δ-share enumeration, or a partition-pool worker. The
// panic is isolated to the work item that raised it: pooled scratch state
// it may have corrupted is discarded instead of returned, sibling workers
// and the ordered-drain protocol are unaffected, and the Match call returns
// its partial Report with this error instead of crashing the process.
type KernelPanicError struct {
	// Site names where the panic surfaced: faultinject.SiteKernel,
	// faultinject.SiteEnumerate, or "partition".
	Site string
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack, captured at recovery.
	Stack []byte
}

func (e *KernelPanicError) Error() string {
	return fmt.Sprintf("host: panic in %s: %v", e.Site, e.Value)
}

// DeviceFaultError reports a device fault the retry budget could not
// absorb: the site kept failing through Attempts attempts (the first try
// plus the policy's retries). The run returns its partial Report with this
// error — the degraded-run contract (identical counts) only covers faults
// that retry or redistribution could absorb.
type DeviceFaultError struct {
	// Site is the faulting site (faultinject.SiteKernel, a device's staging
	// site, faultinject.SiteEnumerate, or the parallel pipeline's "stage").
	Site string
	// Attempts counts tries made, the first plus every retry.
	Attempts int
	// Err is the final attempt's error.
	Err error
}

func (e *DeviceFaultError) Error() string {
	return fmt.Sprintf("host: %s failed after %d attempts: %v", e.Site, e.Attempts, e.Err)
}

func (e *DeviceFaultError) Unwrap() error { return e.Err }

// errRetryCancelled reports that the run was cancelled while backing off
// between retry attempts; like errStageCancelled it is a skip signal — the
// control's own state carries the cancellation — not a failure.
var errRetryCancelled = errors.New("host: retry abandoned: run cancelled")

// errAllDevicesDead reports that no healthy card remains to stage on; the
// caller degrades the partition to the CPU enumeration path.
var errAllDevicesDead = errors.New("host: all devices failed")

// isFaultError reports whether err is a fault-class failure — a recovered
// panic or an exhausted retry budget — for which Match keeps the partial
// Report (counts covering the work done) instead of discarding it.
func isFaultError(err error) bool {
	var pe *KernelPanicError
	var de *DeviceFaultError
	return errors.As(err, &pe) || errors.As(err, &de)
}

// isTransientFault reports whether err is retryable: an injected transient
// device fault or kernel-launch fault.
func isTransientFault(err error) bool {
	return errors.Is(err, fpgasim.ErrTransient) || errors.Is(err, faultinject.ErrInjected)
}

// newPanicError wraps a recovered panic value as a KernelPanicError. A
// cst.WorkerPanic (a panic a partition-pool worker already recovered and
// re-threw on the caller's goroutine) keeps its original value and worker
// stack instead of the rethrow site's.
func newPanicError(site string, r any) *KernelPanicError {
	if wp, ok := r.(*cst.WorkerPanic); ok {
		return &KernelPanicError{Site: site, Value: wp.Value, Stack: wp.Stack}
	}
	return &KernelPanicError{Site: site, Value: r, Stack: debug.Stack()}
}

// faultStats aggregates a run's fault-handling activity across goroutines;
// folded into the Report once the pipelines drain.
type faultStats struct {
	retries       atomic.Int64
	deviceDeaths  atomic.Int64
	redistributed atomic.Int64
}

func (fs *faultStats) fold(rep *Report) {
	rep.Retries += fs.retries.Load()
	rep.DeviceFailures += int(fs.deviceDeaths.Load())
	rep.Redistributed += int(fs.redistributed.Load())
}

// sleep waits d, abandoning the wait when the run stops first; it reports
// whether the run is still live. With no context armed the timer is the
// only wake source, exactly like a plain time.Sleep.
func (ct *runControl) sleep(d time.Duration) bool {
	if d <= 0 {
		return !ct.cancelled()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return !ct.cancelled()
	case <-ct.done:
		ct.interrupted.Store(true)
		ct.halt()
		return false
	case <-ct.stopCh:
		return false
	}
}

// pickDevice returns the index of the healthy card with the least
// accumulated work, or -1 when every card is dead.
func pickDevice(devices []*fpgasim.Device, transfer []time.Duration) int {
	best := -1
	for i := range devices {
		if !devices[i].Healthy() {
			continue
		}
		if best < 0 || devices[i].Busy()+transfer[i] < devices[best].Busy()+transfer[best] {
			best = i
		}
	}
	return best
}

// stageWithRetry stages bytes on dev, retrying injected transient faults
// under the run's policy with exponential backoff. Device death and
// non-fault failures (DRAM overflow keeps its original hard-failure
// semantics) return immediately; an exhausted retry budget returns a
// *DeviceFaultError; a cancellation during backoff returns
// errRetryCancelled. Only the sequential pipeline calls this — the parallel
// pipeline cannot sleep under its device mutex, so it retries at the worker
// level (stageParallel) instead.
func stageWithRetry(ct *runControl, dev *fpgasim.Device, bytes int64) (time.Duration, error) {
	for attempt := 0; ; attempt++ {
		if ct.cancelled() {
			return 0, errRetryCancelled
		}
		dur, err := dev.StageDRAM(bytes)
		if err == nil {
			return dur, nil
		}
		if errors.Is(err, fpgasim.ErrDeviceFailed) || !isTransientFault(err) {
			return 0, err
		}
		if attempt >= ct.retry.Max {
			return 0, &DeviceFaultError{Site: faultinject.SiteDeviceStage(dev.ID), Attempts: attempt + 1, Err: err}
		}
		ct.fstats.retries.Add(1)
		if !ct.sleep(ct.retry.backoff(attempt)) {
			return 0, errRetryCancelled
		}
	}
}

// stageParallel wraps the parallel pipeline's stage scan with the
// worker-level retry loop: the scan runs under the device mutex and cannot
// sleep there, so a transient fault surfaces to the worker, which backs off
// outside the lock and rescans (a rescan may land on a different card —
// that is redistribution working, not a bug).
func stageParallel(ct *runControl, stage func(*cst.CST) (*fpgasim.Device, error), p *cst.CST) (*fpgasim.Device, error) {
	for attempt := 0; ; attempt++ {
		if ct.cancelled() {
			return nil, errStageCancelled
		}
		dev, err := stage(p)
		if err == nil || !isTransientFault(err) {
			return dev, err
		}
		if attempt >= ct.retry.Max {
			return nil, &DeviceFaultError{Site: "stage", Attempts: attempt + 1, Err: err}
		}
		ct.fstats.retries.Add(1)
		if !ct.sleep(ct.retry.backoff(attempt)) {
			return nil, errStageCancelled
		}
	}
}

// runKernelWithRetry executes one kernel under the run's retry policy:
// injected launch faults (which fire before the kernel does any work, so a
// retry cannot double-emit) back off and re-run; a recovered kernel panic
// is terminal (the kernel may have emitted before dying — re-running could
// double-count); an exhausted budget returns a *DeviceFaultError.
func runKernelWithRetry(ct *runControl, p *cst.CST, o order.Order, kopts core.Options) (core.Result, error) {
	for attempt := 0; ; attempt++ {
		if ct.cancelled() {
			return core.Result{}, errRetryCancelled
		}
		res, err := runKernel(p, o, kopts, ct.faults)
		if err == nil || !isTransientFault(err) {
			return res, err
		}
		if attempt >= ct.retry.Max {
			return res, &DeviceFaultError{Site: faultinject.SiteKernel, Attempts: attempt + 1, Err: err}
		}
		ct.fstats.retries.Add(1)
		if !ct.sleep(ct.retry.backoff(attempt)) {
			return core.Result{}, errRetryCancelled
		}
	}
}
