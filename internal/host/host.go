// Package host implements the CPU side of the co-designed framework
// (Section IV/V): it builds the CST, partitions it under the device's BRAM
// and port budgets, estimates per-partition workloads, splits work between
// the CPU and one or more simulated FPGA cards under the δ threshold
// (Algorithm 3), offloads partitions over PCIe, runs the FAST kernel on
// each, enumerates the CPU share with the backtracking matcher, and merges
// results into an end-to-end report. With Config.Workers > 1 the FPGA-side
// partition queue fans out across a bounded goroutine pool while the CPU
// δ-share drains concurrently — the software analogue of the paper's
// multi-PE parallelism and CPU–FPGA co-processing (Fig. 13). With
// Config.PartitionWorkers > 1 the partition producer itself (Algorithm 2's
// recursion) also runs on a bounded task pool, in ordered mode, so neither
// side of the overlap serialises the other.
//
// Execution is context-first: Match and Prepare take a context.Context, and
// every layer that loops observes it — the partition producer between
// restrict steps, the kernel between batch rounds, the δ-share drain per
// embedding — so a deadline interrupts a pathological query mid-flight
// instead of after it finishes. A cancelled run returns its partial Report
// (Partial set) together with the context's error. Config.Limit bounds the
// result count and Config.Emit streams embeddings as they are found.
//
// Execution is also fault-tolerant, with a degraded-run contract: a run
// whose faults are all absorbed returns the same counts as the fault-free
// run, just slower. Transient device faults (fpgasim.ErrTransient) are
// retried with bounded exponential backoff under Config.Retry; a dead
// device's queued partitions are redistributed to surviving devices or the
// CPU δ-share path; and every kernel/enumeration worker runs under a
// recover barrier that converts a panic into a *KernelPanicError (stack
// captured, pooled scratch discarded, sibling workers and the ordered
// drain unaffected). Only exhausted retries (*DeviceFaultError) and panics
// surface as errors, always on a Partial report; Report.Retries,
// DeviceFailures and Redistributed record absorbed faults. Config.Inject
// accepts a deterministic faultinject.Injector so any failing schedule
// replays byte-identically.
package host

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fastmatch/graph"
	"fastmatch/internal/core"
	"fastmatch/internal/cst"
	"fastmatch/internal/faultinject"
	"fastmatch/internal/fpgasim"
	"fastmatch/internal/order"
)

// OrderStrategy names a matching-order policy.
type OrderStrategy string

// Matching-order strategies (Fig. 15 compares them).
const (
	OrderPath OrderStrategy = "path" // the paper's default
	OrderCFL  OrderStrategy = "cfl"
	OrderDAF  OrderStrategy = "daf"
	OrderCECI OrderStrategy = "ceci"
)

// Config drives one end-to-end match.
type Config struct {
	// Device is the FPGA card model; NumFPGAs > 1 enables the multi-FPGA
	// extension (Section VII-E). Default: one card, fpgasim.DefaultConfig.
	Device   fpgasim.Config
	NumFPGAs int
	// Variant selects the kernel implementation (default FAST-SEP, the
	// paper's final configuration before CPU sharing).
	Variant core.Variant
	// Delta is δ, the ceiling on the CPU's share of total estimated
	// workload (Algorithm 3); 0 sends everything to the FPGA. The paper
	// finds 0.1 the sweet spot (Fig. 13).
	Delta float64
	// Strategy picks the matching order; ExplicitOrder overrides it when
	// non-nil (used by the Fig. 15 order sweep).
	Strategy      OrderStrategy
	ExplicitOrder order.Order
	// Partition overrides the partition thresholds; zero values derive
	// δS from the device's BRAM budget minus the results buffer, and δD
	// from PortMax.
	Partition cst.PartitionConfig
	// Collect materialises embeddings in the report.
	Collect bool
	// Workers > 1 fans the FPGA-bound partition queue out across that many
	// goroutines while the CPU δ-share is enumerated concurrently; 0 or 1
	// keeps the original streaming-sequential pipeline. Embedding counts,
	// partition counts, the δ split and the aggregated kernel statistics
	// are identical either way. The modelled single-card FPGATime and
	// TransferTime are also workers-invariant; PartitionTime and
	// CPUShareTime are measured wall times and vary only with machine
	// noise. With NumFPGAs > 1 the partition→card assignment depends on
	// completion timing, so per-card modelled times may differ run to run.
	Workers int
	// PartitionWorkers > 1 parallelises the partition producer itself:
	// Algorithm 2's restrict-and-recurse steps run on a bounded task pool
	// of that many goroutines (cst.PartitionConcurrent in ordered mode)
	// instead of a single recursion, so on multi-core hosts partition
	// production no longer serialises in front of the Workers fan-out.
	// Pieces, Steal offers and the δ-routing decisions are still delivered
	// on the producer goroutine in the exact sequential order, so embedding
	// counts, partition counts and the δ split are byte-identical to
	// PartitionWorkers <= 1. PartitionTime then measures the drain's
	// critical path (waits on in-flight restrict tasks included), which is
	// the quantity that shrinks as the producer scales.
	PartitionWorkers int
	// Pool, when non-nil, is a shared token bucket: each worker holds one
	// token per FPGA-bound partition it processes, bounding the total
	// concurrent kernel work across simultaneous Match calls that share
	// the channel (fast.Engine hands every Match the same Pool).
	Pool chan struct{}
	// Plan supplies a precomputed matching plan (root, BFS tree, order,
	// CST). Callers that repeat a query against the same graph — the
	// serving scenario — cache the Plan from Prepare and skip Phase 1
	// entirely. The Plan must have been prepared for the same (q, g, cfg
	// order settings); Match does not re-verify that.
	Plan *Plan
	// Limit, when > 0, stops the run after that many embeddings. The count
	// is exact and deterministic — min(Limit, total) — regardless of
	// Workers or PartitionWorkers: every counted embedding holds a slot
	// reserved from one shared budget. A limit stop is not an error; the
	// Report just comes back Partial.
	Limit int64
	// Emit, when non-nil, receives every embedding as it is found. Calls
	// are serialized (the callback never runs concurrently with itself),
	// but with Workers > 1 the arrival order is unspecified. Returning a
	// non-nil error cancels the run; Match returns that error with the
	// partial Report.
	Emit func(graph.Embedding) error
	// Faults, when non-nil, injects scheduled faults into the run: it is
	// handed to every device (staging faults, latency spikes, card death)
	// and evaluated at the kernel-launch and CPU δ-share sites. nil injects
	// nothing and adds no work to the fault-free pipeline.
	Faults *faultinject.Injector
	// Retry bounds the backoff-retry applied to transient device faults.
	// The zero value means the package defaults (DefaultRetryMax etc.);
	// Max < 0 disables retries.
	Retry RetryPolicy
}

func (c Config) withDefaults(q *graph.Query) Config {
	if c.Device.ClockMHz == 0 {
		c.Device = fpgasim.DefaultConfig()
	}
	if c.NumFPGAs < 1 {
		c.NumFPGAs = 1
	}
	if c.Strategy == "" {
		c.Strategy = OrderPath
	}
	if c.Partition.MaxSizeBytes == 0 {
		buffer := int64(q.NumVertices()-1) * int64(c.Device.No) * int64(q.NumVertices()*4+4)
		c.Partition.MaxSizeBytes = c.Device.BRAMBytes - buffer
		if c.Partition.MaxSizeBytes < 1024 {
			c.Partition.MaxSizeBytes = 1024
		}
	}
	if c.Partition.MaxCandDegree == 0 {
		c.Partition.MaxCandDegree = c.Device.PortMax
	}
	return c
}

// runPartition dispatches Algorithm 2 under the configured producer mode:
// the sequential recursion, or the ordered concurrent producer when
// PartitionWorkers asks for it. Ordered mode keeps every delivery on the
// calling goroutine in sequential order, so both pipelines' δ routing stays
// deterministic no matter how many producer workers run.
func (c Config) runPartition(root *cst.CST, o order.Order, process func(*cst.CST)) int {
	if c.PartitionWorkers > 1 {
		return cst.PartitionConcurrent(root, o, c.Partition,
			cst.ConcurrentOptions{Workers: c.PartitionWorkers, Ordered: true}, process)
	}
	return cst.Partition(root, o, c.Partition, process)
}

// kernelScratch pools core.Scratch values across kernel runs — and across
// Match calls, since the pool is package-level — so steady-state serving
// performs no per-run arena allocation: each kernel execution borrows the
// partial-mapping arena for its duration and returns it when done.
var kernelScratch = sync.Pool{New: func() any { return new(core.Scratch) }}

// runKernel executes one kernel over p with a pooled scratch, under the
// run's recover barrier: a panic inside the kernel (injected or real) is
// converted into a *KernelPanicError with the stack captured, and the
// scratch the panicking run may have corrupted is dropped instead of being
// returned to the pool — sibling workers keep their own scratches and are
// unaffected. The fault site is evaluated before core.Run, so a faulted
// launch has produced no embeddings and is safe to retry.
//
//fastmatch:recoverbarrier
func runKernel(p *cst.CST, o order.Order, opts core.Options, faults *faultinject.Injector) (res core.Result, err error) {
	s := kernelScratch.Get().(*core.Scratch)
	defer func() {
		if r := recover(); r != nil {
			err = newPanicError(faultinject.SiteKernel, r)
			return
		}
		kernelScratch.Put(s)
	}()
	if out := faults.Eval(faultinject.SiteKernel); out.Fault {
		if out.Kind == faultinject.Panic {
			panic(out.Error())
		}
		// Transient and Death degrade alike to a retryable launch fault —
		// the kernel site has no per-card state to kill.
		return core.Result{}, fmt.Errorf("host: kernel launch: %w", out.Error())
	} else if out.Delay > 0 {
		// A latency spike at the launch site is real host-side time.
		time.Sleep(out.Delay)
	}
	opts.Scratch = s
	return core.Run(p, o, opts)
}

// Plan is the output of Phase 1: everything Match derives from (q, g)
// before partitioning starts. A Plan is immutable after Prepare and safe to
// share between concurrent Match calls — the CST is read-only during
// matching, which is what makes the plan cache sound.
type Plan struct {
	Root  graph.QueryVertex
	Tree  *order.Tree
	Order order.Order
	CST   *cst.CST
}

// Prepare runs Phase 1 (root selection, BFS tree, CST construction —
// Algorithm 1 — and matching-order selection) and returns the reusable
// plan. cfg contributes only the order settings (Strategy/ExplicitOrder).
// An already-cancelled ctx returns its error before any work; Phase 1 is
// otherwise not interruptible (it is one CST construction, not a loop).
func Prepare(ctx context.Context, q *graph.Query, g *graph.Graph, cfg Config) (*Plan, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	cfg = cfg.withDefaults(q)
	root := order.SelectRoot(q, g)
	tree := order.BuildBFSTree(q, root)
	c := cst.BuildWorkers(q, g, tree, cfg.PartitionWorkers)
	o := cfg.ExplicitOrder
	if o == nil {
		switch cfg.Strategy {
		case OrderCFL:
			o = order.CFLLike(tree, c)
		case OrderDAF:
			o = order.DAFLike(tree, c)
		case OrderCECI:
			o = order.CECILike(tree, c)
		default:
			o = order.PathBased(tree, c)
		}
	}
	if err := o.Validate(tree); err != nil {
		return nil, fmt.Errorf("host: %v", err)
	}
	return &Plan{Root: root, Tree: tree, Order: o, CST: c}, nil
}

// PrepareSeeded is Prepare with the planning decisions (root, BFS tree,
// matching order) carried over from a seed plan prepared for the same query
// against an earlier epoch of the same graph: only the CST — the part that
// depends on the data — is rebuilt. Any valid matching order yields the
// identical embedding set (the CST is a complete search space for every
// order over its tree), so seeding trades possibly mildly stale order
// heuristics for skipping root/tree/order selection; the serving layer uses
// it to keep plan caches warm across ApplyDelta batches whose label set is
// unchanged. A nil seed falls back to a full Prepare.
func PrepareSeeded(ctx context.Context, q *graph.Query, g *graph.Graph, cfg Config, seed *Plan) (*Plan, error) {
	if seed == nil {
		return Prepare(ctx, q, g, cfg)
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	cfg = cfg.withDefaults(q)
	c := cst.BuildWorkers(q, g, seed.Tree, cfg.PartitionWorkers)
	return &Plan{Root: seed.Root, Tree: seed.Tree, Order: seed.Order, CST: c}, nil
}

// Report is the end-to-end outcome of a match.
type Report struct {
	Query      string
	Embeddings int64
	Collected  []graph.Embedding

	// Phase timings. BuildTime and PartitionTime are measured host wall
	// time; TransferTime is the modelled PCIe cost; FPGATime is the
	// slowest card's kernel busy time; CPUShareTime is measured wall time
	// of the host's share. Total composes them the way the pipeline runs:
	// build, then partition, then max(card completion, CPU share) since
	// the CPU processes its cached share while cards drain theirs. With
	// Workers > 1 partitioning additionally overlaps kernel execution
	// (PartitionTime still counts only the partitioner's own work, not
	// waits on busy workers), so real host wall-clock runs ahead of the
	// modelled Total.
	BuildTime     time.Duration
	PartitionTime time.Duration
	TransferTime  time.Duration
	FPGATime      time.Duration
	CPUShareTime  time.Duration
	Total         time.Duration

	// Workload split (Algorithm 3's W_C and W_F).
	CPUWorkload, FPGAWorkload float64
	CPUPartitions             int
	NumPartitions             int

	// Aggregated kernel statistics across all partitions.
	KernelCycles    int64
	KernelPartials  int64 // N
	KernelEdgeTasks int64 // M
	KernelRounds    int64
	CSTBytes        int64 // total across partitions
	DataBytes       int64 // data graph size, for Fig. 9's S_CST/S_G
	MaxBufferUse    int
	Devices         int

	// Partial reports that the run stopped before exhausting the search
	// space — the context fired, the Emit callback failed, Limit was
	// reached, or a fault-class error ended the run — so Embeddings and the
	// statistics cover only the work done.
	Partial bool
	// KernelAborts counts kernel executions cancelled between batch rounds.
	KernelAborts int

	// Fault-handling tallies. A run that absorbed faults — transient
	// staging or launch errors retried away, a dead card's partitions
	// redistributed — still completes with its full, byte-identical counts
	// and no error; these counters are how such a run shows it degraded.
	// Retries counts backoff-retry attempts, DeviceFailures counts cards
	// observed dying, and Redistributed counts partitions that fell back to
	// the CPU enumeration path because no healthy card remained.
	Retries        int64
	DeviceFailures int
	Redistributed  int
}

// SpeedupOver returns how many times faster this run was than a reference
// duration.
func (r Report) SpeedupOver(ref time.Duration) float64 {
	if r.Total <= 0 {
		return 0
	}
	return float64(ref) / float64(r.Total)
}

// Match runs the full CPU–FPGA pipeline for q over g. A nil ctx is treated
// as context.Background(). When ctx is cancelled (or its deadline expires)
// mid-run the pipeline stops at its next check point — between partitions,
// between kernel batch rounds, between δ-share embeddings — and Match
// returns the partial Report (Partial set, counts covering the work done)
// together with the context's error. A run that completed all its work
// before observing the cancellation returns its full Report and no error.
func Match(ctx context.Context, q *graph.Query, g *graph.Graph, cfg Config) (Report, error) {
	cfg = cfg.withDefaults(q)
	if err := cfg.Device.Validate(); err != nil {
		return Report{}, err
	}
	if cfg.Delta < 0 || cfg.Delta >= 1 {
		return Report{}, fmt.Errorf("host: delta %v outside [0,1)", cfg.Delta)
	}
	if ctx == nil {
		ctx = context.Background()
	}

	rep := Report{Query: q.Name(), DataBytes: g.SizeBytes(), Devices: cfg.NumFPGAs}

	// An already-expired context returns promptly, before Phase 1.
	if err := ctx.Err(); err != nil {
		rep.Partial = true
		return rep, err
	}
	ct := newRunControl(ctx, cfg)

	// Phase 1: CST construction (Algorithm 1) on the host — or a plan
	// cache hit, which reduces this phase to nothing.
	buildStart := time.Now()
	plan := cfg.Plan
	if plan == nil {
		var err error
		plan, err = Prepare(ctx, q, g, cfg)
		if err != nil {
			if errors.Is(err, ctx.Err()) && ctx.Err() != nil {
				rep.Partial = true
				return rep, err
			}
			return Report{}, err
		}
	}
	c, o := plan.CST, plan.Order
	rep.BuildTime = time.Since(buildStart)
	if c.IsEmpty() {
		rep.Total = rep.BuildTime
		return rep, nil
	}
	if ct.active() && ct.cancelled() {
		rep.Partial = true
		rep.Total = rep.BuildTime
		return rep, ct.err()
	}

	// Devices.
	devices := make([]*fpgasim.Device, cfg.NumFPGAs)
	transfer := make([]time.Duration, cfg.NumFPGAs)
	for i := range devices {
		d, err := fpgasim.NewDevice(i, cfg.Device)
		if err != nil {
			return Report{}, err
		}
		d.Faults = cfg.Faults
		devices[i] = d
	}

	// Phases 2–5: partition, schedule, execute. A fault-class error — a
	// recovered panic or an exhausted retry budget — keeps the partial
	// Report (the completion accounting below still applies to the work
	// done); any other error keeps the original discard semantics.
	var err error
	if cfg.Workers > 1 {
		err = matchParallel(cfg, ct, &rep, c, o, devices, transfer)
	} else {
		err = matchSequential(cfg, ct, &rep, c, o, devices, transfer)
	}
	ct.fstats.fold(&rep)
	if err != nil && !isFaultError(err) {
		return Report{}, err
	}

	// Completion: cards run concurrently with each other and with the
	// CPU's share.
	for i, d := range devices {
		if t := transfer[i] + d.Busy(); t > rep.FPGATime {
			rep.FPGATime = t
		}
		rep.TransferTime += transfer[i]
		rep.KernelAborts += d.Aborts()
	}
	concurrent := rep.FPGATime
	if rep.CPUShareTime > concurrent {
		concurrent = rep.CPUShareTime
	}
	rep.Total = rep.BuildTime + rep.PartitionTime + concurrent
	rep.Partial = ct.partial() || err != nil
	if err != nil {
		return rep, err
	}
	return rep, ct.err()
}

// matchSequential is the original streaming pipeline: partitions are
// processed inline as the partitioner emits them, and the CPU share runs
// after partitioning finishes.
func matchSequential(cfg Config, ct *runControl, rep *Report, c *cst.CST, o order.Order, devices []*fpgasim.Device, transfer []time.Duration) error {
	// Phase 2+3: partition (Algorithm 2) and schedule (Algorithm 3).
	// Partitions stream out of the partitioner; each is either cached for
	// the CPU or offloaded immediately to the least-loaded card.
	var (
		cpuQueue []*cst.CST
		kernErr  error
	)
	sched := scheduler{delta: cfg.Delta}
	// Cancellation hooks are installed only for calls that can actually
	// cancel, limit or stream — a plain Match keeps the pre-context paths.
	kopts := core.Options{Variant: cfg.Variant, Config: cfg.Device, Collect: cfg.Collect}
	if ct.active() {
		cfg.Partition.Cancel = ct.cancelled
		kopts.Cancel = ct.cancelled
		kopts.Take = ct.take
	}
	if ct.emit != nil {
		kopts.Emit = func(e graph.Embedding) { ct.send(e) }
	}
	// FAST-SHARE's partitioning shortcut (Section VII-B): a CST that still
	// violates the BRAM/port thresholds may go straight to the CPU —
	// which has no such constraints — instead of being split further,
	// saving the recursive partitioning cost. The δ budget gates it.
	if cfg.Delta > 0 {
		cfg.Partition.Steal = func(p *cst.CST) bool {
			if !sched.tryCPU(cst.EstimateWorkload(p)) {
				return false
			}
			cpuQueue = append(cpuQueue, p)
			rep.CPUPartitions++
			rep.CSTBytes += p.SizeBytes()
			return true
		}
	}
	lastResume := time.Now()
	// The producer runs under the run's recover barrier: Algorithm 2 itself
	// and the inline offload callback are covered, and a partition-pool
	// worker panic rethrown by the ordered drain surfaces here as a
	// *cst.WorkerPanic (converted keeping the worker's stack).
	perr := func() (perr error) {
		defer func() {
			if r := recover(); r != nil {
				perr = newPanicError("partition", r)
			}
		}()
		rep.NumPartitions = cfg.runPartition(c, o, func(p *cst.CST) {
			rep.PartitionTime += time.Since(lastResume)
			defer func() { lastResume = time.Now() }()
			if kernErr != nil || ct.cancelled() {
				return
			}
			w := cst.EstimateWorkload(p)
			rep.CSTBytes += p.SizeBytes()
			if sched.assignToCPU(w) {
				cpuQueue = append(cpuQueue, p)
				rep.CPUPartitions++
				return
			}
			// Offload to the healthy card with the least accumulated work.
			// A card dying under us redistributes the partition to the next
			// card; losing the last card degrades it to the CPU enumeration
			// path — identical counts, just slower.
			for {
				if ct.cancelled() {
					return
				}
				best := pickDevice(devices, transfer)
				if best < 0 {
					cpuQueue = append(cpuQueue, p)
					ct.fstats.redistributed.Add(1)
					return
				}
				dev := devices[best]
				dur, err := stageWithRetry(ct, dev, p.SizeBytes())
				if errors.Is(err, fpgasim.ErrDeviceFailed) {
					// The death moment — the card was healthy when picked.
					ct.fstats.deviceDeaths.Add(1)
					continue
				}
				if err == errRetryCancelled {
					return
				}
				if err != nil {
					kernErr = err
					return
				}
				transfer[best] += dur
				// A shared Pool bounds kernel work across Match calls; the
				// sequential pipeline holds one token per kernel run so a
				// Workers<=1 engine behind a multi-tenant front end draws
				// from the same budget as the fanned-out ones instead of
				// adding load beside it. Without a Pool this is the
				// original path, untouched.
				if cfg.Pool != nil && !ct.acquirePool(cfg.Pool) {
					return // cancelled while queued behind other tenants
				}
				res, err := runKernelWithRetry(ct, p, o, kopts)
				if cfg.Pool != nil {
					<-cfg.Pool
				}
				if err == errRetryCancelled {
					return
				}
				if err != nil {
					kernErr = err
					return
				}
				if res.Stopped && ct.abortive() {
					dev.AbortKernel(res.Cycles)
				} else {
					dev.RunKernel(res.Cycles)
				}
				dev.ReleaseDRAM(p.SizeBytes())
				rep.Embeddings += res.Count
				rep.KernelCycles += res.Cycles
				rep.KernelPartials += res.Partials
				rep.KernelEdgeTasks += res.EdgeTasks
				rep.KernelRounds += res.Rounds
				if res.BufferHighWater > rep.MaxBufferUse {
					rep.MaxBufferUse = res.BufferHighWater
				}
				if cfg.Collect {
					rep.Collected = append(rep.Collected, res.Embeddings...)
				}
				return
			}
		})
		return nil
	}()
	rep.PartitionTime += time.Since(lastResume)
	if kernErr != nil {
		return kernErr
	}
	if perr != nil {
		return perr
	}

	// Phase 5: the CPU processes its cached share with the backtracking
	// matcher once partitioning finishes (Section V-C). Cancellation is
	// observed between δ-share partitions and, through the control's
	// budget, per embedding within one.
	cpuStart := time.Now()
	var enumErr error
	for _, p := range cpuQueue {
		if ct.cancelled() {
			break
		}
		n, err := enumerateShare(ct, p, o, cfg.Collect, &rep.Collected)
		rep.Embeddings += n
		if err != nil {
			enumErr = err
			break
		}
	}
	rep.CPUShareTime = time.Since(cpuStart)
	rep.CPUWorkload, rep.FPGAWorkload = sched.wc, sched.wf
	return enumErr
}

// fpgaWorkerStats is one worker's private accumulator; merging them after
// the pool drains keeps totals deterministic without shared counters.
type fpgaWorkerStats struct {
	embeddings int64
	cycles     int64
	partials   int64
	edgeTasks  int64
	rounds     int64
	maxBuffer  int
	collected  []graph.Embedding
}

// errStageCancelled reports that a worker gave up waiting for card DRAM
// because the run was cancelled; it is a skip signal, not a failure.
var errStageCancelled = errors.New("host: staging abandoned: run cancelled")

// matchParallel runs phases 2–5 with the FPGA-bound partition queue fanned
// out across cfg.Workers goroutines while the CPU δ-share drains on its own
// goroutine, all overlapping the partitioner — the paper's CPU–FPGA
// co-processing. Scheduling decisions (Algorithm 3) stay on the producer
// goroutine and see partitions in the exact order the sequential pipeline
// does, so the δ split, partition counts and embedding totals are identical
// to matchSequential's.
func matchParallel(cfg Config, ct *runControl, rep *Report, c *cst.CST, o order.Order, devices []*fpgasim.Device, transfer []time.Duration) error {
	var (
		devMu   sync.Mutex
		stop    atomic.Bool
		errOnce sync.Once
		kernErr error
	)
	fail := func(err error) {
		errOnce.Do(func() { kernErr = err })
		stop.Store(true)
	}
	// halted folds the two stop sources every stage checks: a hardware
	// error on any worker, and the call's cancellation (context, limit,
	// emit failure).
	halted := func() bool { return stop.Load() || ct.cancelled() }

	// Modest buffers: enough to decouple the producer from worker jitter,
	// capped so the resident partition CSTs a Match can hold (buffers plus
	// one dequeued per worker) stay small — backpressure on the producer
	// is free, its waits are excluded from PartitionTime.
	buf := min(cfg.Workers*2, 8)
	fpgaCh := make(chan *cst.CST, buf)
	cpuCh := make(chan *cst.CST, buf)

	// FPGA pool: each worker claims a card under devMu, runs the kernel
	// model outside it, and accumulates into private stats. After an
	// error workers keep draining the channel (without processing) so the
	// producer can never block forever.
	//
	// Staging: unlike the sequential path — which releases each
	// partition's DRAM before staging the next — up to Workers partitions
	// are resident concurrently. A partition that finds no card with room
	// waits on devCond for an in-flight one to release (guaranteed
	// progress: inflight > 0 means a release is coming) and only fails
	// when it would not fit an idle card, exactly when the sequential
	// pipeline fails too.
	devCond := sync.NewCond(&devMu)
	inflight := 0
	stage := func(p *cst.CST) (*fpgasim.Device, error) {
		devMu.Lock()
		defer devMu.Unlock()
		for {
			// Re-checked on every wake-up: a cancelled run stops staging
			// new partitions (in-flight kernels abort between rounds and
			// release their DRAM, so waiters always wake).
			if halted() {
				return nil, errStageCancelled
			}
			// Dead cards never come back mid-run: once none are healthy
			// the caller degrades the partition to the CPU enumeration
			// path instead of waiting on releases that cannot help.
			healthy := 0
			for i := range devices {
				if devices[i].Healthy() {
					healthy++
				}
			}
			if healthy == 0 {
				return nil, errAllDevicesDead
			}
			// Try healthy cards in ascending accumulated-load order via a
			// selection scan — alloc-free under the contended lock, and
			// NumFPGAs is tiny (the bitmask caps it at 64 cards, far
			// beyond any modelled deployment).
			var tried uint64
			var lastErr error
			for t := 0; t < len(devices) && t < 64; t++ {
				best := -1
				for i := range devices {
					if i >= 64 || tried&(1<<uint(i)) != 0 || !devices[i].Healthy() {
						continue
					}
					if best < 0 || devices[i].Busy()+transfer[i] < devices[best].Busy()+transfer[best] {
						best = i
					}
				}
				if best < 0 {
					break // every healthy card tried
				}
				tried |= 1 << uint(best)
				dur, err := devices[best].StageDRAM(p.SizeBytes())
				if err == nil {
					transfer[best] += dur
					inflight++
					return devices[best], nil
				}
				if errors.Is(err, fpgasim.ErrDeviceFailed) {
					// The death moment — the card was healthy when picked;
					// scan on across the survivors.
					ct.fstats.deviceDeaths.Add(1)
					continue
				}
				// Transient faults and DRAM overflows both land here: with
				// nothing in flight the error goes to the worker (which
				// backs off and retries a transient outside this lock);
				// otherwise wait for a release and rescan.
				lastErr = err
			}
			if inflight == 0 {
				if lastErr == nil {
					// Every card scanned died under us.
					return nil, errAllDevicesDead
				}
				return nil, lastErr
			}
			devCond.Wait()
		}
	}
	release := func(dev *fpgasim.Device, p *cst.CST, cycles int64, aborted bool) {
		devMu.Lock()
		if cycles > 0 {
			if aborted {
				dev.AbortKernel(cycles)
			} else {
				dev.RunKernel(cycles)
			}
		}
		dev.ReleaseDRAM(p.SizeBytes())
		inflight--
		devCond.Broadcast()
		devMu.Unlock()
	}
	// Per-call hooks: the kernels poll the shared halt state between batch
	// rounds (so a deadline interrupts a pathological partition mid-flight),
	// and reserve result slots when a limit or stream is in play.
	kopts := core.Options{Variant: cfg.Variant, Config: cfg.Device, Collect: cfg.Collect, Cancel: halted}
	if ct.active() {
		kopts.Take = ct.take
	}
	if ct.emit != nil {
		kopts.Emit = func(e graph.Embedding) { ct.send(e) }
	}
	stats := make([]fpgaWorkerStats, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(st *fpgaWorkerStats) {
			defer wg.Done()
			for p := range fpgaCh {
				if halted() {
					continue
				}
				// Same cancellable acquire as the sequential path: a
				// deadlined call must not queue behind other tenants on a
				// saturated shared budget.
				if cfg.Pool != nil && !ct.acquirePool(cfg.Pool) {
					continue
				}
				dev, err := stageParallel(ct, stage, p)
				if err != nil {
					if err == errAllDevicesDead {
						// Degrade: every card is dead, so this worker
						// enumerates the partition on the CPU itself (the
						// δ-share consumer's channel may already be closed)
						// and the call still completes with identical
						// counts. The pool token is held — it is real work.
						ct.fstats.redistributed.Add(1)
						n, eerr := enumerateShare(ct, p, o, cfg.Collect, &st.collected)
						st.embeddings += n
						if eerr != nil {
							fail(eerr)
						}
					} else if err != errStageCancelled {
						fail(err)
					}
					if cfg.Pool != nil {
						<-cfg.Pool
					}
					continue
				}
				res, err := runKernelWithRetry(ct, p, o, kopts)
				var cycles int64
				if err == nil {
					cycles = res.Cycles
				}
				release(dev, p, cycles, err == nil && res.Stopped && ct.abortive())
				if cfg.Pool != nil {
					<-cfg.Pool
				}
				if err != nil {
					if err != errRetryCancelled {
						fail(err)
					}
					continue
				}
				st.embeddings += res.Count
				st.cycles += res.Cycles
				st.partials += res.Partials
				st.edgeTasks += res.EdgeTasks
				st.rounds += res.Rounds
				if res.BufferHighWater > st.maxBuffer {
					st.maxBuffer = res.BufferHighWater
				}
				if cfg.Collect {
					st.collected = append(st.collected, res.Embeddings...)
				}
			}
		}(&stats[w])
	}

	// CPU δ-share consumer: enumerates its cached partitions while the
	// FPGA pool and the partitioner are still running. CPUShareTime is the
	// consumer's active enumeration time, matching the sequential report's
	// "wall time of the host's share" semantics.
	var (
		cpuWG        sync.WaitGroup
		cpuCount     int64
		cpuCollected []graph.Embedding
		cpuActive    time.Duration
	)
	cpuWG.Add(1)
	go func() {
		defer cpuWG.Done()
		for p := range cpuCh {
			if halted() {
				continue
			}
			start := time.Now()
			n, err := enumerateShare(ct, p, o, cfg.Collect, &cpuCollected)
			cpuCount += n
			cpuActive += time.Since(start)
			if err != nil {
				fail(err)
			}
		}
	}()

	// Producer: Algorithms 2 and 3 on the caller's goroutine.
	// PartitionTime accounts only the partitioner's own work — the resume
	// points bracket every channel send so backpressure waits (which
	// overlap kernel execution and are already counted in FPGATime /
	// CPUShareTime) are not double-counted into Total, keeping the report
	// comparable with the sequential pipeline's.
	lastResume := time.Now()
	send := func(ch chan *cst.CST, p *cst.CST) {
		rep.PartitionTime += time.Since(lastResume)
		ch <- p
		lastResume = time.Now()
	}
	sched := scheduler{delta: cfg.Delta}
	if ct.active() {
		// Stop producing once the run is cancelled; the concurrent producer
		// also abandons its speculation and drains its task pool.
		cfg.Partition.Cancel = halted
	}
	if cfg.Delta > 0 {
		cfg.Partition.Steal = func(p *cst.CST) bool {
			if !sched.tryCPU(cst.EstimateWorkload(p)) {
				return false
			}
			rep.CPUPartitions++
			rep.CSTBytes += p.SizeBytes()
			send(cpuCh, p)
			return true
		}
	}
	// The producer runs under the run's recover barrier: a panic anywhere
	// in Algorithm 2 — including a partition-pool worker panic rethrown by
	// the ordered drain as a *cst.WorkerPanic — is converted to a typed
	// error here, before the channels close, so the consumers always drain
	// and the WaitGroups always resolve.
	perr := func() (perr error) {
		defer func() {
			if r := recover(); r != nil {
				perr = newPanicError("partition", r)
			}
		}()
		rep.NumPartitions = cfg.runPartition(c, o, func(p *cst.CST) {
			w := cst.EstimateWorkload(p)
			rep.CSTBytes += p.SizeBytes()
			if sched.assignToCPU(w) {
				rep.CPUPartitions++
				send(cpuCh, p)
				return
			}
			send(fpgaCh, p)
		})
		return nil
	}()
	rep.PartitionTime += time.Since(lastResume)
	if perr != nil {
		fail(perr)
	}
	close(fpgaCh)
	close(cpuCh)
	wg.Wait()
	cpuWG.Wait()
	if kernErr != nil {
		return kernErr
	}

	for i := range stats {
		st := &stats[i]
		rep.Embeddings += st.embeddings
		rep.KernelCycles += st.cycles
		rep.KernelPartials += st.partials
		rep.KernelEdgeTasks += st.edgeTasks
		rep.KernelRounds += st.rounds
		if st.maxBuffer > rep.MaxBufferUse {
			rep.MaxBufferUse = st.maxBuffer
		}
		if cfg.Collect {
			rep.Collected = append(rep.Collected, st.collected...)
		}
	}
	rep.Embeddings += cpuCount
	rep.CPUShareTime = cpuActive
	if cfg.Collect {
		rep.Collected = append(rep.Collected, cpuCollected...)
	}
	rep.CPUWorkload, rep.FPGAWorkload = sched.wc, sched.wf
	return nil
}

// scheduler is Algorithm 3's running-total state.
type scheduler struct {
	delta  float64
	wc, wf float64
}

// assignToCPU implements the δ test for a finished partition: the CST goes
// to the CPU only while the CPU's share (including it) stays below δ of the
// total; otherwise its workload is committed to the FPGA side.
func (s *scheduler) assignToCPU(w float64) bool {
	if s.tryCPU(w) {
		return true
	}
	s.wf += w
	return false
}

// tryCPU is the non-committing δ test used for the partitioning shortcut:
// a rejected CST will be split further and its pieces accounted when they
// are scheduled, so nothing is added to W_F here.
func (s *scheduler) tryCPU(w float64) bool {
	if s.delta <= 0 {
		return false
	}
	if s.wc+w < s.delta*(s.wc+s.wf+w) {
		s.wc += w
		return true
	}
	return false
}
