// Package host implements the CPU side of the co-designed framework
// (Section IV/V): it builds the CST, partitions it under the device's BRAM
// and port budgets, estimates per-partition workloads, splits work between
// the CPU and one or more simulated FPGA cards under the δ threshold
// (Algorithm 3), offloads partitions over PCIe, runs the FAST kernel on
// each, enumerates the CPU share with the backtracking matcher, and merges
// results into an end-to-end report.
package host

import (
	"fmt"
	"time"

	"fastmatch/graph"
	"fastmatch/internal/core"
	"fastmatch/internal/cst"
	"fastmatch/internal/fpgasim"
	"fastmatch/internal/order"
)

// OrderStrategy names a matching-order policy.
type OrderStrategy string

// Matching-order strategies (Fig. 15 compares them).
const (
	OrderPath OrderStrategy = "path" // the paper's default
	OrderCFL  OrderStrategy = "cfl"
	OrderDAF  OrderStrategy = "daf"
	OrderCECI OrderStrategy = "ceci"
)

// Config drives one end-to-end match.
type Config struct {
	// Device is the FPGA card model; NumFPGAs > 1 enables the multi-FPGA
	// extension (Section VII-E). Default: one card, fpgasim.DefaultConfig.
	Device   fpgasim.Config
	NumFPGAs int
	// Variant selects the kernel implementation (default FAST-SEP, the
	// paper's final configuration before CPU sharing).
	Variant core.Variant
	// Delta is δ, the ceiling on the CPU's share of total estimated
	// workload (Algorithm 3); 0 sends everything to the FPGA. The paper
	// finds 0.1 the sweet spot (Fig. 13).
	Delta float64
	// Strategy picks the matching order; ExplicitOrder overrides it when
	// non-nil (used by the Fig. 15 order sweep).
	Strategy      OrderStrategy
	ExplicitOrder order.Order
	// Partition overrides the partition thresholds; zero values derive
	// δS from the device's BRAM budget minus the results buffer, and δD
	// from PortMax.
	Partition cst.PartitionConfig
	// Collect materialises embeddings in the report.
	Collect bool
}

func (c Config) withDefaults(q *graph.Query) Config {
	if c.Device.ClockMHz == 0 {
		c.Device = fpgasim.DefaultConfig()
	}
	if c.NumFPGAs < 1 {
		c.NumFPGAs = 1
	}
	if c.Strategy == "" {
		c.Strategy = OrderPath
	}
	if c.Partition.MaxSizeBytes == 0 {
		buffer := int64(q.NumVertices()-1) * int64(c.Device.No) * int64(q.NumVertices()*4+4)
		c.Partition.MaxSizeBytes = c.Device.BRAMBytes - buffer
		if c.Partition.MaxSizeBytes < 1024 {
			c.Partition.MaxSizeBytes = 1024
		}
	}
	if c.Partition.MaxCandDegree == 0 {
		c.Partition.MaxCandDegree = c.Device.PortMax
	}
	return c
}

// Report is the end-to-end outcome of a match.
type Report struct {
	Query      string
	Embeddings int64
	Collected  []graph.Embedding

	// Phase timings. BuildTime and PartitionTime are measured host wall
	// time; TransferTime is the modelled PCIe cost; FPGATime is the
	// slowest card's kernel busy time; CPUShareTime is measured wall time
	// of the host's share. Total composes them the way the pipeline runs:
	// build, then partition, then max(card completion, CPU share) since
	// the CPU processes its cached share while cards drain theirs.
	BuildTime     time.Duration
	PartitionTime time.Duration
	TransferTime  time.Duration
	FPGATime      time.Duration
	CPUShareTime  time.Duration
	Total         time.Duration

	// Workload split (Algorithm 3's W_C and W_F).
	CPUWorkload, FPGAWorkload float64
	CPUPartitions             int
	NumPartitions             int

	// Aggregated kernel statistics across all partitions.
	KernelCycles    int64
	KernelPartials  int64 // N
	KernelEdgeTasks int64 // M
	KernelRounds    int64
	CSTBytes        int64 // total across partitions
	DataBytes       int64 // data graph size, for Fig. 9's S_CST/S_G
	MaxBufferUse    int
	Devices         int
}

// SpeedupOver returns how many times faster this run was than a reference
// duration.
func (r Report) SpeedupOver(ref time.Duration) float64 {
	if r.Total <= 0 {
		return 0
	}
	return float64(ref) / float64(r.Total)
}

// Match runs the full CPU–FPGA pipeline for q over g.
func Match(q *graph.Query, g *graph.Graph, cfg Config) (Report, error) {
	cfg = cfg.withDefaults(q)
	if err := cfg.Device.Validate(); err != nil {
		return Report{}, err
	}
	if cfg.Delta < 0 || cfg.Delta >= 1 {
		return Report{}, fmt.Errorf("host: delta %v outside [0,1)", cfg.Delta)
	}

	rep := Report{Query: q.Name(), DataBytes: g.SizeBytes(), Devices: cfg.NumFPGAs}

	// Phase 1: CST construction (Algorithm 1) on the host.
	buildStart := time.Now()
	root := order.SelectRoot(q, g)
	tree := order.BuildBFSTree(q, root)
	c := cst.Build(q, g, tree)
	o := cfg.ExplicitOrder
	if o == nil {
		switch cfg.Strategy {
		case OrderCFL:
			o = order.CFLLike(tree, c)
		case OrderDAF:
			o = order.DAFLike(tree, c)
		case OrderCECI:
			o = order.CECILike(tree, c)
		default:
			o = order.PathBased(tree, c)
		}
	}
	if err := o.Validate(tree); err != nil {
		return Report{}, fmt.Errorf("host: %v", err)
	}
	rep.BuildTime = time.Since(buildStart)
	if c.IsEmpty() {
		rep.Total = rep.BuildTime
		return rep, nil
	}

	// Devices.
	devices := make([]*fpgasim.Device, cfg.NumFPGAs)
	transfer := make([]time.Duration, cfg.NumFPGAs)
	for i := range devices {
		d, err := fpgasim.NewDevice(i, cfg.Device)
		if err != nil {
			return Report{}, err
		}
		devices[i] = d
	}

	// Phase 2+3: partition (Algorithm 2) and schedule (Algorithm 3).
	// Partitions stream out of the partitioner; each is either cached for
	// the CPU or offloaded immediately to the least-loaded card.
	var (
		cpuQueue []*cst.CST
		kernErr  error
	)
	sched := scheduler{delta: cfg.Delta}
	// FAST-SHARE's partitioning shortcut (Section VII-B): a CST that still
	// violates the BRAM/port thresholds may go straight to the CPU —
	// which has no such constraints — instead of being split further,
	// saving the recursive partitioning cost. The δ budget gates it.
	if cfg.Delta > 0 {
		cfg.Partition.Steal = func(p *cst.CST) bool {
			if !sched.tryCPU(cst.EstimateWorkload(p)) {
				return false
			}
			cpuQueue = append(cpuQueue, p)
			rep.CPUPartitions++
			rep.CSTBytes += p.SizeBytes()
			return true
		}
	}
	lastResume := time.Now()
	rep.NumPartitions = cst.Partition(c, o, cfg.Partition, func(p *cst.CST) {
		rep.PartitionTime += time.Since(lastResume)
		defer func() { lastResume = time.Now() }()
		if kernErr != nil {
			return
		}
		w := cst.EstimateWorkload(p)
		rep.CSTBytes += p.SizeBytes()
		if sched.assignToCPU(w) {
			cpuQueue = append(cpuQueue, p)
			rep.CPUPartitions++
			return
		}
		// Offload to the card with the least accumulated work.
		best := 0
		for i := 1; i < len(devices); i++ {
			if devices[i].Busy()+transfer[i] < devices[best].Busy()+transfer[best] {
				best = i
			}
		}
		dev := devices[best]
		dur, err := dev.StageDRAM(p.SizeBytes())
		if err != nil {
			kernErr = err
			return
		}
		transfer[best] += dur
		res, err := core.Run(p, o, core.Options{
			Variant: cfg.Variant,
			Config:  cfg.Device,
			Collect: cfg.Collect,
		})
		if err != nil {
			kernErr = err
			return
		}
		dev.RunKernel(res.Cycles)
		dev.ReleaseDRAM(p.SizeBytes())
		rep.Embeddings += res.Count
		rep.KernelCycles += res.Cycles
		rep.KernelPartials += res.Partials
		rep.KernelEdgeTasks += res.EdgeTasks
		rep.KernelRounds += res.Rounds
		if res.BufferHighWater > rep.MaxBufferUse {
			rep.MaxBufferUse = res.BufferHighWater
		}
		if cfg.Collect {
			rep.Collected = append(rep.Collected, res.Embeddings...)
		}
	})
	rep.PartitionTime += time.Since(lastResume)
	if kernErr != nil {
		return Report{}, kernErr
	}

	// Phase 5: the CPU processes its cached share with the backtracking
	// matcher once partitioning finishes (Section V-C).
	cpuStart := time.Now()
	for _, p := range cpuQueue {
		n := cst.Enumerate(p, o, func(e graph.Embedding) bool {
			if cfg.Collect {
				rep.Collected = append(rep.Collected, e)
			}
			return true
		})
		rep.Embeddings += n
	}
	rep.CPUShareTime = time.Since(cpuStart)

	// Completion: cards run concurrently with each other and with the
	// CPU's share.
	for i, d := range devices {
		if t := transfer[i] + d.Busy(); t > rep.FPGATime {
			rep.FPGATime = t
		}
		rep.TransferTime += transfer[i]
	}
	rep.CPUWorkload, rep.FPGAWorkload = sched.wc, sched.wf
	concurrent := rep.FPGATime
	if rep.CPUShareTime > concurrent {
		concurrent = rep.CPUShareTime
	}
	rep.Total = rep.BuildTime + rep.PartitionTime + concurrent
	return rep, nil
}

// scheduler is Algorithm 3's running-total state.
type scheduler struct {
	delta  float64
	wc, wf float64
}

// assignToCPU implements the δ test for a finished partition: the CST goes
// to the CPU only while the CPU's share (including it) stays below δ of the
// total; otherwise its workload is committed to the FPGA side.
func (s *scheduler) assignToCPU(w float64) bool {
	if s.tryCPU(w) {
		return true
	}
	s.wf += w
	return false
}

// tryCPU is the non-committing δ test used for the partitioning shortcut:
// a rejected CST will be split further and its pieces accounted when they
// are scheduled, so nothing is added to W_F here.
func (s *scheduler) tryCPU(w float64) bool {
	if s.delta <= 0 {
		return false
	}
	if s.wc+w < s.delta*(s.wc+s.wf+w) {
		s.wc += w
		return true
	}
	return false
}
