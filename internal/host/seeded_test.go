package host

import (
	"context"
	"testing"

	"fastmatch/ldbc"
)

// TestPrepareSeededMatchesFresh: a plan seeded from an earlier epoch's
// planning decisions must produce identical counts to a freshly prepared
// one — the CST is a complete search space under any valid order over its
// tree, so carrying (root, tree, order) across graph changes is
// count-preserving.
func TestPrepareSeededMatchesFresh(t *testing.T) {
	g := smallSocial(t)
	for _, q := range ldbc.Queries() {
		base, err := Prepare(context.Background(), q, g, Config{})
		if err != nil {
			t.Fatalf("%s: Prepare: %v", q.Name(), err)
		}
		seed := &Plan{Root: base.Root, Tree: base.Tree, Order: base.Order}

		// The "new epoch" here is a structurally different graph (another
		// generator seed, same label alphabet) to make plan staleness real.
		g2 := ldbc.Generate(ldbc.Config{ScaleFactor: 1, Seed: 99})
		fresh, err := Prepare(context.Background(), q, g2, Config{})
		if err != nil {
			t.Fatalf("%s: fresh Prepare: %v", q.Name(), err)
		}
		seeded, err := PrepareSeeded(context.Background(), q, g2, Config{}, seed)
		if err != nil {
			t.Fatalf("%s: PrepareSeeded: %v", q.Name(), err)
		}
		if seeded.Root != base.Root || seeded.Tree != base.Tree {
			t.Errorf("%s: seeded plan did not reuse the seed's root/tree", q.Name())
		}
		if err := seeded.CST.Validate(g2); err != nil {
			t.Errorf("%s: seeded CST invalid: %v", q.Name(), err)
		}

		repFresh, err := Match(context.Background(), q, g2, Config{Plan: fresh})
		if err != nil {
			t.Fatalf("%s: fresh Match: %v", q.Name(), err)
		}
		repSeeded, err := Match(context.Background(), q, g2, Config{Plan: seeded})
		if err != nil {
			t.Fatalf("%s: seeded Match: %v", q.Name(), err)
		}
		if repFresh.Embeddings != repSeeded.Embeddings {
			t.Errorf("%s: seeded count %d, fresh %d", q.Name(), repSeeded.Embeddings, repFresh.Embeddings)
		}
	}

	// Nil seed falls back to a full Prepare.
	q, _ := ldbc.QueryByName("q1")
	p, err := PrepareSeeded(context.Background(), q, g, Config{}, nil)
	if err != nil || p == nil || p.CST == nil {
		t.Fatalf("nil-seed PrepareSeeded: %v %v", p, err)
	}
}
