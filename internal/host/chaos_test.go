package host

import (
	"context"
	"errors"
	"testing"

	"fastmatch/internal/cst"
	"fastmatch/internal/faultinject"
	"fastmatch/ldbc"
)

// chaosPartition forces enough partitions that fault schedules at the
// staging and kernel sites fire several times per run.
func chaosPartition() cst.PartitionConfig {
	return cst.PartitionConfig{MaxSizeBytes: 1 << 13, MaxCandDegree: 64}
}

// chaosConfigs are the pipeline shapes every oracle below is checked
// against: the streaming-sequential path and the fanned-out path.
var chaosConfigs = []struct {
	name              string
	workers, pworkers int
}{
	{"sequential", 0, 0},
	{"parallel", 4, 2},
}

// TestChaosTransientParity: transient faults at the device staging and
// kernel-launch sites are retried away, and the degraded run returns
// byte-identical counts to the fault-free run — no error, not Partial, with
// the absorbed retries visible in the report. The schedule is finite (Nth
// lists, never more faults in a row than the retry budget) so absorption is
// guaranteed even when concurrent workers interleave on the shared site
// counters.
func TestChaosTransientParity(t *testing.T) {
	g := smallSocial(t)
	baseline := map[string]int64{}
	for _, shape := range chaosConfigs {
		for _, name := range []string{"q1", "q2", "q3", "q4", "q5"} {
			q, err := ldbc.QueryByName(name)
			if err != nil {
				t.Fatal(err)
			}
			ref, ok := baseline[name]
			if !ok {
				rep, err := Match(context.Background(), q, g, Config{Partition: chaosPartition(), Delta: 0.1})
				if err != nil {
					t.Fatalf("%s baseline: %v", name, err)
				}
				ref = rep.Embeddings
				baseline[name] = ref
			}
			inj := faultinject.New(11,
				faultinject.Rule{Site: faultinject.SiteDeviceStage(0), Nth: []int64{1, 2, 5}},
				faultinject.Rule{Site: faultinject.SiteKernel, Nth: []int64{1, 4}},
			)
			rep, err := Match(context.Background(), q, g, Config{
				Partition: chaosPartition(), Delta: 0.1,
				Workers: shape.workers, PartitionWorkers: shape.pworkers,
				Faults: inj,
			})
			if err != nil {
				t.Fatalf("%s/%s: absorbed transients must not error: %v", shape.name, name, err)
			}
			if rep.Partial {
				t.Errorf("%s/%s: absorbed transients must not mark the run Partial", shape.name, name)
			}
			if rep.Embeddings != ref {
				t.Errorf("%s/%s: degraded run found %d, fault-free %d", shape.name, name, rep.Embeddings, ref)
			}
			if rep.Retries == 0 {
				t.Errorf("%s/%s: schedule fired but report shows no retries", shape.name, name)
			}
		}
	}
}

// TestChaosDeviceDeathSurvivor: with two cards, killing card 0 mid-run
// redistributes its queued partitions to the survivor; counts stay
// byte-identical and the death is reported without an error.
func TestChaosDeviceDeathSurvivor(t *testing.T) {
	g := smallSocial(t)
	for _, shape := range chaosConfigs {
		for _, name := range []string{"q2", "q5"} {
			q, err := ldbc.QueryByName(name)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := Match(context.Background(), q, g, Config{
				Partition: chaosPartition(), NumFPGAs: 2,
				Workers: shape.workers, PartitionWorkers: shape.pworkers,
			})
			if err != nil {
				t.Fatalf("%s/%s baseline: %v", shape.name, name, err)
			}
			inj := faultinject.New(5, faultinject.Rule{
				Site: faultinject.SiteDeviceStage(0), Kind: faultinject.Death, Nth: []int64{2}, Once: true,
			})
			rep, err := Match(context.Background(), q, g, Config{
				Partition: chaosPartition(), NumFPGAs: 2,
				Workers: shape.workers, PartitionWorkers: shape.pworkers,
				Faults: inj,
			})
			if err != nil {
				t.Fatalf("%s/%s: survivor should absorb the death: %v", shape.name, name, err)
			}
			if rep.Partial {
				t.Errorf("%s/%s: absorbed death must not mark the run Partial", shape.name, name)
			}
			if rep.Embeddings != ref.Embeddings {
				t.Errorf("%s/%s: degraded run found %d, fault-free %d", shape.name, name, rep.Embeddings, ref.Embeddings)
			}
			if rep.DeviceFailures != 1 {
				t.Errorf("%s/%s: DeviceFailures = %d, want 1", shape.name, name, rep.DeviceFailures)
			}
		}
	}
}

// TestChaosAllDevicesDeadFallsBackToCPU: with a single card that dies, the
// remaining FPGA-bound partitions are enumerated on the CPU path instead —
// the run completes with identical counts and reports the redistribution.
func TestChaosAllDevicesDeadFallsBackToCPU(t *testing.T) {
	g := smallSocial(t)
	for _, shape := range chaosConfigs {
		q, err := ldbc.QueryByName("q3")
		if err != nil {
			t.Fatal(err)
		}
		ref, err := Match(context.Background(), q, g, Config{
			Partition: chaosPartition(),
			Workers:   shape.workers, PartitionWorkers: shape.pworkers,
		})
		if err != nil {
			t.Fatalf("%s baseline: %v", shape.name, err)
		}
		inj := faultinject.New(9, faultinject.Rule{
			Site: faultinject.SiteDeviceStage(0), Kind: faultinject.Death, Nth: []int64{2}, Once: true,
		})
		rep, err := Match(context.Background(), q, g, Config{
			Partition: chaosPartition(),
			Workers:   shape.workers, PartitionWorkers: shape.pworkers,
			Faults: inj,
		})
		if err != nil {
			t.Fatalf("%s: CPU fallback should absorb a total device loss: %v", shape.name, err)
		}
		if rep.Partial {
			t.Errorf("%s: absorbed device loss must not mark the run Partial", shape.name)
		}
		if rep.Embeddings != ref.Embeddings {
			t.Errorf("%s: degraded run found %d, fault-free %d", shape.name, rep.Embeddings, ref.Embeddings)
		}
		if rep.DeviceFailures != 1 {
			t.Errorf("%s: DeviceFailures = %d, want 1", shape.name, rep.DeviceFailures)
		}
		if rep.Redistributed == 0 {
			t.Errorf("%s: no partitions reported redistributed to the CPU", shape.name)
		}
	}
}

// TestChaosKernelPanicIsolated: a panic injected at the kernel-launch site
// is recovered inside the barrier — the run returns a partial Report with a
// *KernelPanicError instead of crashing or deadlocking, in both pipeline
// shapes.
func TestChaosKernelPanicIsolated(t *testing.T) {
	g := smallSocial(t)
	for _, shape := range chaosConfigs {
		q, err := ldbc.QueryByName("q4")
		if err != nil {
			t.Fatal(err)
		}
		inj := faultinject.New(3, faultinject.Rule{
			Site: faultinject.SiteKernel, Kind: faultinject.Panic, Nth: []int64{2}, Once: true,
		})
		rep, err := Match(context.Background(), q, g, Config{
			Partition: chaosPartition(),
			Workers:   shape.workers, PartitionWorkers: shape.pworkers,
			Faults: inj,
		})
		if err == nil {
			t.Fatalf("%s: injected kernel panic surfaced no error", shape.name)
		}
		var kp *KernelPanicError
		if !errors.As(err, &kp) {
			t.Fatalf("%s: error %v (%T), want *KernelPanicError", shape.name, err, err)
		}
		if kp.Site != faultinject.SiteKernel {
			t.Errorf("%s: panic site %q, want %q", shape.name, kp.Site, faultinject.SiteKernel)
		}
		if !rep.Partial {
			t.Errorf("%s: a panicked run must report Partial", shape.name)
		}
	}
}

// TestChaosEnumeratePanicIsolated: same isolation contract for a panic in
// the CPU δ-share enumeration.
func TestChaosEnumeratePanicIsolated(t *testing.T) {
	g := smallSocial(t)
	for _, shape := range chaosConfigs {
		q, err := ldbc.QueryByName("q2")
		if err != nil {
			t.Fatal(err)
		}
		inj := faultinject.New(7, faultinject.Rule{
			Site: faultinject.SiteEnumerate, Kind: faultinject.Panic, Nth: []int64{1}, Once: true,
		})
		rep, err := Match(context.Background(), q, g, Config{
			Partition: chaosPartition(), Delta: 0.3,
			Workers: shape.workers, PartitionWorkers: shape.pworkers,
			Faults: inj,
		})
		if err == nil {
			t.Skipf("%s: δ-share drained no partitions; enumerate site never evaluated", shape.name)
		}
		var kp *KernelPanicError
		if !errors.As(err, &kp) {
			t.Fatalf("%s: error %v (%T), want *KernelPanicError", shape.name, err, err)
		}
		if !rep.Partial {
			t.Errorf("%s: a panicked run must report Partial", shape.name)
		}
	}
}

// TestChaosExhaustedRetriesPartial: a staging site that fails every attempt
// exhausts the retry budget; the run returns its partial Report with a
// *DeviceFaultError that unwraps to the injected cause.
func TestChaosExhaustedRetriesPartial(t *testing.T) {
	g := smallSocial(t)
	for _, shape := range chaosConfigs {
		q, err := ldbc.QueryByName("q1")
		if err != nil {
			t.Fatal(err)
		}
		inj := faultinject.New(1, faultinject.Rule{
			Site: faultinject.SiteDeviceStage(0), EveryNth: 1,
		})
		rep, err := Match(context.Background(), q, g, Config{
			Partition: chaosPartition(),
			Workers:   shape.workers, PartitionWorkers: shape.pworkers,
			Faults: inj,
			Retry:  RetryPolicy{Max: 2},
		})
		if err == nil {
			t.Fatalf("%s: permanently failing stage surfaced no error", shape.name)
		}
		var df *DeviceFaultError
		if !errors.As(err, &df) {
			t.Fatalf("%s: error %v (%T), want *DeviceFaultError", shape.name, err, err)
		}
		if df.Attempts != 3 { // initial try + Max retries
			t.Errorf("%s: attempts = %d, want 3", shape.name, df.Attempts)
		}
		if !errors.Is(err, faultinject.ErrInjected) {
			t.Errorf("%s: error does not unwrap to the injected cause: %v", shape.name, err)
		}
		if !rep.Partial {
			t.Errorf("%s: an exhausted-retry run must report Partial", shape.name)
		}
	}
}

// TestChaosDeterministicReplay: the same seed and schedule against the same
// run produce the same report — the property the chaos harness rests on.
func TestChaosDeterministicReplay(t *testing.T) {
	g := smallSocial(t)
	q, err := ldbc.QueryByName("q5")
	if err != nil {
		t.Fatal(err)
	}
	run := func() Report {
		inj := faultinject.New(21,
			faultinject.Rule{Site: faultinject.SiteDeviceStage(0), Rate: 0.3},
			faultinject.Rule{Site: faultinject.SiteKernel, Rate: 0.2},
		)
		rep, err := Match(context.Background(), q, g, Config{Partition: chaosPartition(), Faults: inj})
		if err != nil {
			t.Fatalf("replay run: %v", err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Embeddings != b.Embeddings || a.Retries != b.Retries || a.NumPartitions != b.NumPartitions {
		t.Fatalf("replay diverged: %+v vs %+v", a, b)
	}
}
