package host

import (
	"context"
	"sync"
	"sync/atomic"

	"fastmatch/graph"
	"fastmatch/internal/cst"
	"fastmatch/internal/faultinject"
	"fastmatch/internal/order"
)

// runControl carries one Match call's cancellation, result-limit and
// streaming state across every layer that loops: the partition producer
// polls cancelled between restrict steps, the kernel polls it between batch
// rounds and reserves result slots through take, and the CPU δ-share drain
// does both per embedding. One control is shared by all goroutines of a
// call, which is what makes Limit exact (min(Limit, total) embeddings are
// counted no matter how many workers race for the last slots) and Emit
// serialized.
type runControl struct {
	done        <-chan struct{} // ctx.Done(); nil when the context can never fire
	ctxErr      func() error
	limit       int64
	taken       atomic.Int64
	stopped     atomic.Bool
	stopCh      chan struct{} // closed by halt; lets blocked waits observe non-ctx stops
	stopOnce    sync.Once
	interrupted atomic.Bool // the context fired while work remained

	emitMu  sync.Mutex
	emit    func(graph.Embedding) error
	emitErr error // guarded by emitMu

	// Fault-tolerance state: the injector evaluated at the kernel and
	// δ-share sites (nil injects nothing), the resolved retry policy, and
	// the run's fault-handling tallies.
	faults *faultinject.Injector
	retry  RetryPolicy
	fstats faultStats
}

func newRunControl(ctx context.Context, cfg Config) *runControl {
	ct := &runControl{
		limit:  cfg.Limit,
		emit:   cfg.Emit,
		stopCh: make(chan struct{}),
		faults: cfg.Faults,
		retry:  cfg.Retry.withDefaults(),
	}
	if ctx != nil {
		ct.done = ctx.Done()
		ct.ctxErr = ctx.Err
	}
	return ct
}

// halt records that the run stopped — context, limit or emit failure — and
// closes stopCh so goroutines blocked in a select (a pool acquire) observe
// stops that have no context channel behind them.
func (ct *runControl) halt() {
	ct.stopped.Store(true)
	ct.stopOnce.Do(func() { close(ct.stopCh) })
}

// active reports whether any per-call feature needs the pipeline hooks
// installed. An inactive control installs none, so a plain Match runs the
// exact pre-context pipeline.
func (ct *runControl) active() bool {
	return ct.done != nil || ct.limit > 0 || ct.emit != nil
}

// cancelled is the pipeline's stop poll: true once the context fired, the
// limit was exhausted, or the streaming callback returned an error.
func (ct *runControl) cancelled() bool {
	if ct.stopped.Load() {
		return true
	}
	if ct.done != nil {
		select {
		case <-ct.done:
			ct.interrupted.Store(true)
			ct.halt()
			return true
		default:
		}
	}
	return false
}

// take reserves one result slot. Refusal (the run is cancelled, or the
// reservation would exceed Limit) stops the pipeline; every granted
// reservation corresponds to exactly one counted embedding, so the final
// count is deterministic.
func (ct *runControl) take() bool {
	if ct.cancelled() {
		return false
	}
	if ct.limit > 0 && ct.taken.Add(1) > ct.limit {
		ct.halt()
		return false
	}
	return true
}

// acquirePool takes one token from a shared worker pool, abandoning the
// wait if the run stops first — the context firing, the limit filling, or
// the stream callback failing. On a saturated multi-tenant budget a call
// whose work is already over must return promptly, not queue behind other
// tenants' kernel runs. Returns false when the run stopped. With neither
// stop source armed (done nil, stopCh never closed — a plain Match) the
// select reduces to the blocking send.
func (ct *runControl) acquirePool(pool chan struct{}) bool {
	select {
	case pool <- struct{}{}:
		return true
	case <-ct.done:
		ct.interrupted.Store(true)
		ct.halt()
		return false
	case <-ct.stopCh:
		return false
	}
}

// send streams one embedding to the caller. Calls are serialized — the
// callback never runs concurrently with itself — and a callback error stops
// the run.
func (ct *runControl) send(e graph.Embedding) bool {
	if ct.emit == nil {
		return true
	}
	ct.emitMu.Lock()
	defer ct.emitMu.Unlock()
	if ct.emitErr != nil {
		return false
	}
	if err := ct.emit(e); err != nil {
		ct.emitErr = err
		ct.halt()
		return false
	}
	return true
}

// partial reports whether the run stopped before exhausting the search
// space. A run that completes all its work returns false even if the
// context expires afterwards — a completed-then-cancelled call keeps its
// full counts.
func (ct *runControl) partial() bool { return ct.stopped.Load() }

// abortive reports whether the stop threw work away: a context firing or a
// failed stream callback aborts kernels mid-flight, whereas a limit stop
// just means the result budget was filled — every kernel's delivered
// embeddings were wanted, so those runs are not tallied as aborts.
func (ct *runControl) abortive() bool {
	if ct.interrupted.Load() {
		return true
	}
	ct.emitMu.Lock()
	defer ct.emitMu.Unlock()
	return ct.emitErr != nil
}

// err returns what interrupted the run: the context's error when
// cancellation fired mid-run, else the streaming callback's error, else nil
// — a limit stop is a bounded query succeeding, not a failure.
func (ct *runControl) err() error {
	if ct.interrupted.Load() && ct.ctxErr != nil {
		if err := ct.ctxErr(); err != nil {
			return err
		}
	}
	ct.emitMu.Lock()
	defer ct.emitMu.Unlock()
	return ct.emitErr
}

// enumerators pools prepared cst.Enumerator state across δ-share drains —
// and across Match calls, the pool being package-level — so steady-state
// serving re-derives no per-drain check lists and the count-only paths run
// allocation-free.
var enumerators = sync.Pool{New: func() any { return new(cst.Enumerator) }}

// enumerateShare drains one CPU δ-share partition under the control's
// budget and returns the number of embeddings counted. The count-only paths
// never materialise an embedding; the emitting paths keep the
// fresh-embedding contract (callers may retain what they receive).
//
// The drain runs under the run's recover barrier: a panicking enumeration
// (or an injected fault at the δ-share site) becomes a *KernelPanicError or
// *DeviceFaultError, and the pooled Enumerator the panic may have left
// inconsistent is dropped instead of being returned to the pool. The fault
// is evaluated before the enumerator runs, so a faulted drain has consumed
// no result slots and emitted nothing.
//
//fastmatch:recoverbarrier
func enumerateShare(ct *runControl, p *cst.CST, o order.Order, collect bool, sink *[]graph.Embedding) (n int64, err error) {
	e := enumerators.Get().(*cst.Enumerator)
	defer func() {
		if r := recover(); r != nil {
			err = newPanicError(faultinject.SiteEnumerate, r)
			return
		}
		enumerators.Put(e)
	}()
	if out := ct.faults.Eval(faultinject.SiteEnumerate); out.Fault {
		if out.Kind == faultinject.Panic {
			panic(out.Error())
		}
		// The CPU path has no retry semantics — any injected fault here is
		// terminal, reported as a fault-class error so Match keeps the
		// partial counts.
		return 0, &DeviceFaultError{Site: faultinject.SiteEnumerate, Attempts: 1, Err: out.Error()}
	}
	e.Reset(p, o)
	if !ct.active() {
		if !collect {
			return e.Run(nil), nil
		}
		return e.Run(func(em graph.Embedding) bool {
			*sink = append(*sink, em)
			return true
		}), nil
	}
	if !collect && ct.emit == nil {
		return e.RunCounted(ct.take), nil
	}
	e.Run(func(em graph.Embedding) bool {
		if !ct.take() {
			return false
		}
		n++
		if collect {
			*sink = append(*sink, em)
		}
		return ct.send(em)
	})
	return n, nil
}
