package host

import (
	"context"
	"testing"
	"time"

	"fastmatch/internal/core"
	"fastmatch/internal/fpgasim"
	"fastmatch/ldbc"
)

func TestReportSpeedupOver(t *testing.T) {
	r := Report{Total: 10 * time.Millisecond}
	if got := r.SpeedupOver(100 * time.Millisecond); got != 10 {
		t.Errorf("SpeedupOver = %v, want 10", got)
	}
	var zero Report
	if got := zero.SpeedupOver(time.Second); got != 0 {
		t.Errorf("zero-total speedup = %v", got)
	}
}

func TestReportTransferAccounting(t *testing.T) {
	g := smallSocial(t)
	q, _ := ldbc.QueryByName("q5")
	rep, err := Match(context.Background(), q, g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TransferTime <= 0 {
		t.Error("no PCIe transfer time accounted")
	}
	if rep.CSTBytes <= 0 || rep.DataBytes <= 0 {
		t.Errorf("size accounting: CST=%d data=%d", rep.CSTBytes, rep.DataBytes)
	}
	if rep.KernelPartials <= 0 || rep.KernelRounds <= 0 {
		t.Errorf("kernel stats: %+v", rep)
	}
	// Total must compose the phases: at least build + partition.
	if rep.Total < rep.BuildTime+rep.PartitionTime {
		t.Errorf("Total %v below build+partition %v", rep.Total, rep.BuildTime+rep.PartitionTime)
	}
}

// TestWithDefaultsDerivesPartitionBudget: the partition threshold must
// leave room for the partial-results buffer within BRAM.
func TestWithDefaultsDerivesPartitionBudget(t *testing.T) {
	q, _ := ldbc.QueryByName("q7") // 7 vertices
	dev := fpgasim.DefaultConfig()
	cfg := Config{Device: dev}.withDefaults(q)
	buffer := int64(q.NumVertices()-1) * int64(dev.No) * int64(q.NumVertices()*4+4)
	if cfg.Partition.MaxSizeBytes != dev.BRAMBytes-buffer {
		t.Errorf("δS = %d, want BRAM−buffer = %d", cfg.Partition.MaxSizeBytes, dev.BRAMBytes-buffer)
	}
	if cfg.Partition.MaxCandDegree != dev.PortMax {
		t.Errorf("δD = %d, want PortMax %d", cfg.Partition.MaxCandDegree, dev.PortMax)
	}
	if cfg.Strategy != OrderPath || cfg.NumFPGAs != 1 {
		t.Errorf("defaults: %+v", cfg)
	}
}

// TestDRAMVariantEndToEnd: the host pipeline supports the DRAM baseline
// variant (needed by Fig. 7) and it is slower on the FPGA axis.
func TestDRAMVariantEndToEnd(t *testing.T) {
	g := smallSocial(t)
	q, _ := ldbc.QueryByName("q2")
	dram, err := Match(context.Background(), q, g, Config{Variant: core.VariantDRAM})
	if err != nil {
		t.Fatal(err)
	}
	sep, err := Match(context.Background(), q, g, Config{Variant: core.VariantSep})
	if err != nil {
		t.Fatal(err)
	}
	if dram.Embeddings != sep.Embeddings {
		t.Fatalf("counts differ: %d vs %d", dram.Embeddings, sep.Embeddings)
	}
	if dram.FPGATime <= sep.FPGATime {
		t.Errorf("DRAM FPGA time %v not slower than SEP %v", dram.FPGATime, sep.FPGATime)
	}
}

// TestTinyBRAMForcesPartitioning: shrinking the card splits the CST and
// still conserves counts (the Fig. 9 mechanism end to end).
func TestTinyBRAMForcesPartitioning(t *testing.T) {
	g := smallSocial(t)
	q, _ := ldbc.QueryByName("q1")
	big, err := Match(context.Background(), q, g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	dev := fpgasim.DefaultConfig()
	dev.BRAMBytes = 32 << 10
	dev.No = 64
	small, err := Match(context.Background(), q, g, Config{Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	if small.Embeddings != big.Embeddings {
		t.Errorf("counts differ: %d vs %d", small.Embeddings, big.Embeddings)
	}
	if small.NumPartitions <= big.NumPartitions {
		t.Errorf("tiny BRAM gave %d partitions vs %d", small.NumPartitions, big.NumPartitions)
	}
}
