package host

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"fastmatch/graph"
	"fastmatch/internal/baseline"
	"fastmatch/internal/core"
	"fastmatch/internal/cst"
	"fastmatch/internal/fpgasim"
	"fastmatch/internal/order"
	"fastmatch/ldbc"
)

func smallSocial(t testing.TB) *graph.Graph {
	t.Helper()
	return ldbc.Generate(ldbc.Config{ScaleFactor: 1, Seed: 42})
}

func TestMatchAgreesWithOracle(t *testing.T) {
	g := smallSocial(t)
	for _, q := range ldbc.Queries() {
		want, err := baseline.Backtrack(q, g, baseline.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Match(context.Background(), q, g, Config{})
		if err != nil {
			t.Fatalf("%s: %v", q.Name(), err)
		}
		if rep.Embeddings != want.Count {
			t.Errorf("%s: host found %d, oracle %d", q.Name(), rep.Embeddings, want.Count)
		}
		if rep.Total <= 0 || rep.BuildTime <= 0 {
			t.Errorf("%s: timings %+v", q.Name(), rep)
		}
	}
}

func TestMatchCollectsValidEmbeddings(t *testing.T) {
	g := smallSocial(t)
	q, _ := ldbc.QueryByName("q2")
	rep, err := Match(context.Background(), q, g, Config{Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(rep.Collected)) != rep.Embeddings {
		t.Fatalf("collected %d, count %d", len(rep.Collected), rep.Embeddings)
	}
	for _, e := range rep.Collected {
		if err := graph.VerifyEmbedding(q, g, e); err != nil {
			t.Fatalf("invalid embedding: %v", err)
		}
	}
}

// TestDeltaSplitsWork: with δ > 0 some partitions go to the CPU, the
// CPU's workload share respects δ (within one-CST granularity), and the
// total embedding count is conserved.
func TestDeltaSplitsWork(t *testing.T) {
	g := smallSocial(t)
	q, _ := ldbc.QueryByName("q5")
	// Force many partitions so the scheduler has real choices.
	pc := cst.PartitionConfig{MaxSizeBytes: 1 << 13, MaxCandDegree: 64}
	ref, err := Match(context.Background(), q, g, Config{Partition: pc})
	if err != nil {
		t.Fatal(err)
	}
	if ref.NumPartitions < 4 {
		t.Skipf("only %d partitions; need more for a meaningful test", ref.NumPartitions)
	}
	rep, err := Match(context.Background(), q, g, Config{Partition: pc, Delta: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Embeddings != ref.Embeddings {
		t.Errorf("δ changed results: %d vs %d", rep.Embeddings, ref.Embeddings)
	}
	if rep.CPUPartitions == 0 {
		t.Error("δ=0.3 assigned nothing to the CPU")
	}
	total := rep.CPUWorkload + rep.FPGAWorkload
	if total > 0 && rep.CPUWorkload/total > 0.3+0.15 {
		t.Errorf("CPU share %.2f grossly exceeds δ", rep.CPUWorkload/total)
	}
	if ref.CPUPartitions != 0 || ref.CPUWorkload != 0 {
		t.Errorf("δ=0 sent work to the CPU: %+v", ref)
	}
}

// TestMultiFPGAConservesAndBalances: more cards must not change results and
// should cut the slowest card's busy time.
func TestMultiFPGAConservesAndBalances(t *testing.T) {
	g := smallSocial(t)
	q, _ := ldbc.QueryByName("q7")
	pc := cst.PartitionConfig{MaxSizeBytes: 1 << 13, MaxCandDegree: 64}
	one, err := Match(context.Background(), q, g, Config{Partition: pc, NumFPGAs: 1})
	if err != nil {
		t.Fatal(err)
	}
	four, err := Match(context.Background(), q, g, Config{Partition: pc, NumFPGAs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if one.Embeddings != four.Embeddings {
		t.Errorf("multi-FPGA changed results: %d vs %d", one.Embeddings, four.Embeddings)
	}
	if one.NumPartitions >= 4 && four.FPGATime >= one.FPGATime {
		t.Errorf("4 cards not faster: %v vs %v (%d partitions)",
			four.FPGATime, one.FPGATime, one.NumPartitions)
	}
}

// TestVariantsAgreeEndToEnd: the host pipeline returns identical counts for
// every kernel variant.
func TestVariantsAgreeEndToEnd(t *testing.T) {
	g := smallSocial(t)
	q, _ := ldbc.QueryByName("q3")
	var want int64 = -1
	for _, v := range core.Variants() {
		rep, err := Match(context.Background(), q, g, Config{Variant: v})
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if want == -1 {
			want = rep.Embeddings
		} else if rep.Embeddings != want {
			t.Errorf("%v: %d embeddings, want %d", v, rep.Embeddings, want)
		}
	}
}

// TestOrderStrategiesAgree: all matching-order strategies and explicit
// random orders give the same counts (Fig. 15's premise).
func TestOrderStrategiesAgree(t *testing.T) {
	g := smallSocial(t)
	q, _ := ldbc.QueryByName("q4")
	var want int64 = -1
	for _, s := range []OrderStrategy{OrderPath, OrderCFL, OrderDAF, OrderCECI} {
		rep, err := Match(context.Background(), q, g, Config{Strategy: s})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if want == -1 {
			want = rep.Embeddings
		} else if rep.Embeddings != want {
			t.Errorf("%s: %d, want %d", s, rep.Embeddings, want)
		}
	}
	// Explicit random orders.
	root := order.SelectRoot(q, g)
	tree := order.BuildBFSTree(q, root)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 3; i++ {
		o := order.RandomConnected(tree, rng)
		rep, err := Match(context.Background(), q, g, Config{ExplicitOrder: o})
		if err != nil {
			t.Fatalf("order %v: %v", o, err)
		}
		if rep.Embeddings != want {
			t.Errorf("order %v: %d, want %d", o, rep.Embeddings, want)
		}
	}
}

func TestMatchRejectsBadConfig(t *testing.T) {
	g := smallSocial(t)
	q, _ := ldbc.QueryByName("q0")
	if _, err := Match(context.Background(), q, g, Config{Delta: 1.5}); err == nil {
		t.Error("accepted delta 1.5")
	}
	bad := fpgasim.DefaultConfig()
	bad.ClockMHz = -1
	if _, err := Match(context.Background(), q, g, Config{Device: bad}); err == nil {
		t.Error("accepted invalid device")
	}
	tree := order.BuildBFSTree(q, 0)
	_ = tree
	if _, err := Match(context.Background(), q, g, Config{ExplicitOrder: order.Order{1, 0, 2, 3, 4}}); err == nil {
		t.Error("accepted invalid explicit order")
	}
}

func TestEmptyResultFastPath(t *testing.T) {
	// A query whose labels cannot match returns zero quickly.
	q := graph.MustQuery("none", []graph.Label{ldbc.TagClass, ldbc.TagClass, ldbc.TagClass},
		[][2]graph.QueryVertex{{0, 1}, {1, 2}, {0, 2}}) // TagClass triangle: none exists
	g := smallSocial(t)
	rep, err := Match(context.Background(), q, g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Embeddings != 0 {
		t.Errorf("found %d embeddings of an impossible query", rep.Embeddings)
	}
}

// TestSchedulerDeltaProperty: the assignToCPU invariant — W_C stays under
// δ·(W_C+W_F) after every decision, within the granularity of one CST.
func TestSchedulerDeltaProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		delta := rng.Float64() * 0.5
		s := scheduler{delta: delta}
		for i := 0; i < 200; i++ {
			w := rng.Float64() * 1000
			before := s.wc
			toCPU := s.assignToCPU(w)
			if toCPU && s.wc != before+w {
				return false
			}
			// The decision rule guarantees: if assigned to CPU, the new
			// share is below δ.
			if toCPU && s.wc >= delta*(s.wc+s.wf)+1e-9 && s.wf > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPartitionedMatchesUnpartitioned: aggressive partitioning must not
// change end-to-end counts (Theorem 1 + Fig. 4's no-overlap claim at the
// system level).
func TestPartitionedMatchesUnpartitioned(t *testing.T) {
	g := smallSocial(t)
	for _, name := range []string{"q2", "q5", "q8"} {
		q, _ := ldbc.QueryByName(name)
		loose, err := Match(context.Background(), q, g, Config{})
		if err != nil {
			t.Fatal(err)
		}
		tight, err := Match(context.Background(), q, g, Config{
			Partition: cst.PartitionConfig{MaxSizeBytes: 1 << 12, MaxCandDegree: 16},
		})
		if err != nil {
			t.Fatal(err)
		}
		if loose.Embeddings != tight.Embeddings {
			t.Errorf("%s: %d (loose) vs %d (tight, %d partitions)",
				name, loose.Embeddings, tight.Embeddings, tight.NumPartitions)
		}
		if tight.NumPartitions <= loose.NumPartitions {
			t.Errorf("%s: tight budget produced %d partitions vs %d", name,
				tight.NumPartitions, loose.NumPartitions)
		}
	}
}
