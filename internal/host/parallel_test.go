package host

import (
	"context"
	"sort"
	"sync"
	"testing"

	"fastmatch/graph"
	"fastmatch/internal/core"
	"fastmatch/internal/cst"
	"fastmatch/internal/fpgasim"
	"fastmatch/ldbc"
)

// parallelTestSetup returns a small LDBC-like graph and a host config whose
// shrunken BRAM forces real partitioning (mirroring internal/exp's scaled
// card) so the worker pool has something to fan out.
func parallelTestSetup() (*graph.Graph, Config) {
	g := ldbc.Generate(ldbc.Config{ScaleFactor: 1, BasePersons: 120, Seed: 7})
	dev := fpgasim.DefaultConfig()
	dev.BRAMBytes = 256 << 10
	dev.No = 256
	return g, Config{
		Device:    dev,
		Variant:   core.VariantSep,
		Delta:     0.1,
		Partition: cst.PartitionConfig{MaxSizeBytes: 8 << 10, MaxCandDegree: 64},
	}
}

// TestMatchWorkersCountsEqualSequential: for every LDBC query, Workers > 1
// must reproduce the sequential pipeline byte-for-byte on everything the
// scheduler decides — embedding totals, partition counts, the δ split and
// the aggregated kernel statistics.
func TestMatchWorkersCountsEqualSequential(t *testing.T) {
	g, base := parallelTestSetup()
	for _, name := range []string{"q1", "q2", "q3", "q4", "q5"} {
		q, err := ldbc.QueryByName(name)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := Match(context.Background(), q, g, base)
		if err != nil {
			t.Fatal(err)
		}
		if seq.NumPartitions < 2 {
			t.Errorf("%s: only %d partitions — device not small enough to exercise the pool", name, seq.NumPartitions)
		}
		for _, workers := range []int{2, 4} {
			cfg := base
			cfg.Workers = workers
			par, err := Match(context.Background(), q, g, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if par.Embeddings != seq.Embeddings {
				t.Errorf("%s workers=%d: %d embeddings, want %d", name, workers, par.Embeddings, seq.Embeddings)
			}
			if par.NumPartitions != seq.NumPartitions || par.CPUPartitions != seq.CPUPartitions {
				t.Errorf("%s workers=%d: partitions %d/%d cpu, want %d/%d",
					name, workers, par.NumPartitions, par.CPUPartitions, seq.NumPartitions, seq.CPUPartitions)
			}
			if par.KernelCycles != seq.KernelCycles || par.KernelPartials != seq.KernelPartials ||
				par.KernelEdgeTasks != seq.KernelEdgeTasks || par.KernelRounds != seq.KernelRounds {
				t.Errorf("%s workers=%d: kernel stats diverge from sequential", name, workers)
			}
			if par.CSTBytes != seq.CSTBytes {
				t.Errorf("%s workers=%d: CSTBytes %d, want %d", name, workers, par.CSTBytes, seq.CSTBytes)
			}
			if par.CPUWorkload != seq.CPUWorkload || par.FPGAWorkload != seq.FPGAWorkload {
				t.Errorf("%s workers=%d: δ split (%v,%v), want (%v,%v)",
					name, workers, par.CPUWorkload, par.FPGAWorkload, seq.CPUWorkload, seq.FPGAWorkload)
			}
		}
	}
}

// TestMatchWorkersCollectSameSet: collected embeddings arrive in a
// nondeterministic order under Workers > 1 but must form the same set.
func TestMatchWorkersCollectSameSet(t *testing.T) {
	g, base := parallelTestSetup()
	q, err := ldbc.QueryByName("q2")
	if err != nil {
		t.Fatal(err)
	}
	base.Collect = true
	seq, err := Match(context.Background(), q, g, base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Workers = 4
	par, err := Match(context.Background(), q, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	keys := func(es []graph.Embedding) []string {
		out := make([]string, len(es))
		for i, e := range es {
			out[i] = e.Key()
		}
		sort.Strings(out)
		return out
	}
	sk, pk := keys(seq.Collected), keys(par.Collected)
	if len(sk) != len(pk) {
		t.Fatalf("collected %d embeddings, want %d", len(pk), len(sk))
	}
	for i := range sk {
		if sk[i] != pk[i] {
			t.Fatalf("embedding sets differ at %d", i)
		}
	}
}

// TestPreparePlanReuse: a cached Plan must produce identical results to
// planning from scratch, including when shared by concurrent Match calls
// over a common worker-pool token bucket (the Engine's usage).
func TestPreparePlanReuse(t *testing.T) {
	g, base := parallelTestSetup()
	q, err := ldbc.QueryByName("q4")
	if err != nil {
		t.Fatal(err)
	}
	want, err := Match(context.Background(), q, g, base)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Prepare(context.Background(), q, g, base)
	if err != nil {
		t.Fatal(err)
	}

	cfg := base
	cfg.Plan = plan
	cfg.Workers = 3
	cfg.Pool = make(chan struct{}, 3)
	const calls = 4
	var wg sync.WaitGroup
	reports := make([]Report, calls)
	errs := make([]error, calls)
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reports[i], errs[i] = Match(context.Background(), q, g, cfg)
		}(i)
	}
	wg.Wait()
	for i := 0; i < calls; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if reports[i].Embeddings != want.Embeddings {
			t.Errorf("call %d: %d embeddings, want %d", i, reports[i].Embeddings, want.Embeddings)
		}
		if reports[i].NumPartitions != want.NumPartitions {
			t.Errorf("call %d: %d partitions, want %d", i, reports[i].NumPartitions, want.NumPartitions)
		}
	}
}

// TestMatchWorkersTightDRAM: when card DRAM has room for only one staged
// partition, parallel workers must wait for in-flight releases rather than
// fail — any workload that succeeds sequentially succeeds fanned out.
func TestMatchWorkersTightDRAM(t *testing.T) {
	g, base := parallelTestSetup()
	base.Delta = 0 // keep the partition stream independent of scheduling
	q, err := ldbc.QueryByName("q5")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Prepare(context.Background(), q, g, base)
	if err != nil {
		t.Fatal(err)
	}
	var maxSize int64
	parts := cst.Partition(plan.CST, plan.Order, base.Partition, func(p *cst.CST) {
		if s := p.SizeBytes(); s > maxSize {
			maxSize = s
		}
	})
	if parts < 2 {
		t.Fatalf("need multiple partitions, got %d", parts)
	}
	// Fits one staged partition, never two.
	base.Device.DRAMBytes = maxSize + maxSize/2
	seq, err := Match(context.Background(), q, g, base)
	if err != nil {
		t.Fatalf("sequential under tight DRAM: %v", err)
	}
	cfg := base
	cfg.Workers = 4
	par, err := Match(context.Background(), q, g, cfg)
	if err != nil {
		t.Fatalf("parallel under tight DRAM: %v", err)
	}
	if par.Embeddings != seq.Embeddings {
		t.Errorf("tight DRAM: %d embeddings, want %d", par.Embeddings, seq.Embeddings)
	}
}

// TestMatchWorkersMultiFPGA: the least-loaded-card selection under devMu
// keeps multi-card runs correct when fanned out.
func TestMatchWorkersMultiFPGA(t *testing.T) {
	g, base := parallelTestSetup()
	q, err := ldbc.QueryByName("q3")
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Match(context.Background(), q, g, base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.NumFPGAs = 3
	cfg.Workers = 4
	par, err := Match(context.Background(), q, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if par.Embeddings != seq.Embeddings {
		t.Errorf("multi-FPGA parallel: %d embeddings, want %d", par.Embeddings, seq.Embeddings)
	}
	if par.Devices != 3 {
		t.Errorf("Devices = %d, want 3", par.Devices)
	}
}
