package core

import (
	"math/rand"
	"sort"
	"testing"

	"fastmatch/internal/cst"
)

// oracleHas is the binary-search membership check the kernel used before the
// gallop/bitset strategies — the reference both are pitted against.
func oracleHas(rl []cst.CandIndex, ci cst.CandIndex) bool {
	i := sort.Search(len(rl), func(k int) bool { return rl[k] >= ci })
	return i < len(rl) && rl[i] == ci
}

// randomList draws a sorted duplicate-free candidate list from [0, universe).
// Skew concentrates mass near the low end (long runs the gallop cursor must
// skip) when true; otherwise the list is uniform.
func randomList(rng *rand.Rand, universe, size int, skew bool) []cst.CandIndex {
	seen := make(map[int32]bool, size)
	out := make([]cst.CandIndex, 0, size)
	for len(out) < size {
		var v int32
		if skew {
			// Square the uniform draw: density ~1/sqrt near zero.
			f := rng.Float64()
			v = int32(f * f * float64(universe))
		} else {
			v = int32(rng.Intn(universe))
		}
		if !seen[v] {
			seen[v] = true
			out = append(out, cst.CandIndex(v))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ascendingProbes draws an ascending probe sequence: roughly half the probes
// are real list members (hits), the rest uniform misses, mirroring how the
// kernel consumes a partial's candidate list in order.
func ascendingProbes(rng *rand.Rand, rl []cst.CandIndex, universe, n int) []cst.CandIndex {
	probes := make([]cst.CandIndex, 0, n)
	for i := 0; i < n; i++ {
		if len(rl) > 0 && rng.Intn(2) == 0 {
			probes = append(probes, rl[rng.Intn(len(rl))])
		} else {
			probes = append(probes, cst.CandIndex(rng.Intn(universe)))
		}
	}
	sort.Slice(probes, func(i, j int) bool { return probes[i] < probes[j] })
	return probes
}

// TestGallopProbeMatchesOracle pits the monotone gallop cursor against the
// binary-search oracle on randomized skewed and dense lists. The cursor's
// contract — probes within one batch never decrease — is exactly what the
// kernel guarantees, so the sequences here are sorted before probing.
func TestGallopProbeMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		universe := 1 + rng.Intn(2000)
		size := rng.Intn(universe)
		skew := trial%2 == 0
		rl := randomList(rng, universe, size, skew)
		probes := ascendingProbes(rng, rl, universe, rng.Intn(300))

		g := gallopState{rl: rl}
		for i, ci := range probes {
			got := g.probe(ci)
			want := oracleHas(rl, ci)
			if got != want {
				t.Fatalf("trial %d (skew=%v, |rl|=%d): probe #%d ci=%d: gallop=%v oracle=%v",
					trial, skew, len(rl), i, ci, got, want)
			}
		}
	}
}

// TestGallopProbeDuplicates: repeated probes of the same value (the kernel
// batch can carry equal candidate indices across partials after a cursor
// reset, and within a batch after a hit) must all agree with the oracle.
func TestGallopProbeDuplicates(t *testing.T) {
	rl := []cst.CandIndex{2, 5, 5, 9}
	g := gallopState{rl: rl}
	for _, probe := range []struct {
		ci   cst.CandIndex
		want bool
	}{{2, true}, {2, true}, {5, true}, {5, true}, {7, false}, {7, false}, {9, true}} {
		if got := g.probe(probe.ci); got != probe.want {
			t.Fatalf("probe(%d) = %v, want %v", probe.ci, got, probe.want)
		}
	}
}

// TestGallopTo checks the doubling-then-binary-search seek lands on the first
// position >= target for exhaustive small cases.
func TestGallopTo(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		universe := 1 + rng.Intn(200)
		rl := randomList(rng, universe, rng.Intn(universe), trial%2 == 0)
		cur := int32(0)
		if len(rl) > 0 {
			cur = int32(rng.Intn(len(rl) + 1))
		}
		target := cst.CandIndex(rng.Intn(universe + 1))
		got := gallopTo(rl, cur, target)
		want := cur
		for int(want) < len(rl) && rl[want] < target {
			want++
		}
		if got != want {
			t.Fatalf("trial %d: gallopTo(|rl|=%d, cur=%d, target=%d) = %d, want %d",
				trial, len(rl), cur, target, got, want)
		}
	}
}

// TestBitsetMarkMatchesOracle replicates the kernel's bitset strategy — mark
// every member of a reverse list, then word-test each probe — and pits it
// against the oracle on the same randomized lists. Unlike the gallop cursor
// the bitset has no monotonicity requirement, so probes here are unsorted.
func TestBitsetMarkMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		universe := 1 + rng.Intn(2000)
		rl := randomList(rng, universe, rng.Intn(universe), trial%2 == 0)

		words := make([]uint64, bitsetWords(universe))
		for _, ci := range rl {
			words[ci>>6] |= 1 << (uint(ci) & 63)
		}
		for i := 0; i < 300; i++ {
			ci := cst.CandIndex(rng.Intn(universe))
			got := words[ci>>6]&(1<<(uint(ci)&63)) != 0
			if want := oracleHas(rl, ci); got != want {
				t.Fatalf("trial %d: bitset(%d) = %v, oracle = %v", trial, ci, got, want)
			}
		}
	}
}

// TestBitsetWords pins the word-count arithmetic at the boundaries.
func TestBitsetWords(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{0, 0}, {1, 1}, {63, 1}, {64, 1}, {65, 2}, {128, 2}, {129, 3},
	} {
		if got := bitsetWords(tc.n); got != tc.want {
			t.Errorf("bitsetWords(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}
