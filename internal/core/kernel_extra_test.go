package core

import (
	"math/rand"
	"testing"

	"fastmatch/graph"
	"fastmatch/internal/cst"
	"fastmatch/internal/fpgasim"
	"fastmatch/internal/order"
)

// TestPortOverflowFallback: a CST whose candidate degree exceeds the port
// budget still runs (the partitioner normally prevents this; the kernel
// degrades to a multi-cycle probe), producing identical results at a higher
// cycle count.
func TestPortOverflowFallback(t *testing.T) {
	g := graph.RandomPowerLaw(graph.GenConfig{NumVertices: 800, NumLabels: 2, AvgDegree: 8, Seed: 3})
	rng := rand.New(rand.NewSource(3))
	q := graph.RandomConnectedQuery("rq", 4, 2, 2, rng)
	tr := order.BuildBFSTree(q, order.SelectRoot(q, g))
	c := cst.Build(q, g, tr)
	o := order.PathBased(tr, c)
	if c.MaxCandDegree() < 8 {
		t.Skipf("max degree %d too small", c.MaxCandDegree())
	}
	wide := fpgasim.DefaultConfig()
	narrow := fpgasim.DefaultConfig()
	narrow.PortMax = 2
	a, err := Run(c, o, Options{Variant: VariantSep, Config: wide})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(c, o, Options{Variant: VariantSep, Config: narrow})
	if err != nil {
		t.Fatal(err)
	}
	if a.Count != b.Count {
		t.Fatalf("port overflow changed results: %d vs %d", a.Count, b.Count)
	}
	if b.Cycles <= a.Cycles {
		t.Errorf("narrow ports not slower: %d vs %d", b.Cycles, a.Cycles)
	}
}

// TestCollectAndEmitTogether: both reporting paths can be active at once.
func TestCollectAndEmitTogether(t *testing.T) {
	c, o, _ := fig1Setup(t)
	emitted := 0
	res, err := Run(c, o, Options{
		Variant: VariantSep,
		Config:  fpgasim.DefaultConfig(),
		Collect: true,
		Emit:    func(graph.Embedding) { emitted++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if emitted != 2 || len(res.Embeddings) != 2 {
		t.Errorf("emit=%d collected=%d, want 2/2", emitted, len(res.Embeddings))
	}
}

// TestSingleVertexQueryKernel: degenerate queries run (the buffer holds
// nothing; the root cursor feeds the complete level directly).
func TestSingleVertexQueryKernel(t *testing.T) {
	g := graph.RandomUniform(graph.GenConfig{NumVertices: 100, NumLabels: 3, AvgDegree: 4, Seed: 5})
	q := graph.MustQuery("v", []graph.Label{1}, nil)
	tr := order.BuildBFSTree(q, 0)
	c := cst.Build(q, g, tr)
	res, err := Run(c, order.Order{0}, Options{Variant: VariantSep, Config: fpgasim.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	// Every label-1 vertex passing the degree filter (degree 0 required)
	// is a match.
	want := int64(len(g.VerticesWithLabel(1)))
	if res.Count != want {
		t.Errorf("count %d, want %d", res.Count, want)
	}
	if res.BufferHighWater != 0 {
		t.Errorf("buffer used for single-vertex query: %d", res.BufferHighWater)
	}
}

// TestRootLargerThanNo: a root candidate set bigger than No is consumed
// across rounds via the level-0 cursor without dropping matches.
func TestRootLargerThanNo(t *testing.T) {
	g := graph.RandomUniform(graph.GenConfig{NumVertices: 500, NumLabels: 2, AvgDegree: 4, Seed: 8})
	rng := rand.New(rand.NewSource(8))
	q := graph.RandomConnectedQuery("rq", 3, 0, 2, rng)
	tr := order.BuildBFSTree(q, order.SelectRoot(q, g))
	c := cst.Build(q, g, tr)
	o := order.PathBased(tr, c)
	if len(c.Candidates(o[0])) < 20 {
		t.Skipf("root has only %d candidates", len(c.Candidates(o[0])))
	}
	cfg := fpgasim.DefaultConfig()
	cfg.No = 8 // far below |C(root)|
	res, err := Run(c, o, Options{Variant: VariantBasic, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if want := cst.Count(c, o); res.Count != want {
		t.Errorf("count %d, want %d", res.Count, want)
	}
}

// TestDeterministicCycles: the cycle model is a pure function of the input.
func TestDeterministicCycles(t *testing.T) {
	c, o, _ := fig1Setup(t)
	var prev int64 = -1
	for i := 0; i < 3; i++ {
		res, err := Run(c, o, Options{Variant: VariantTask, Config: fpgasim.DefaultConfig()})
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && res.Cycles != prev {
			t.Fatalf("cycle count changed across runs: %d vs %d", res.Cycles, prev)
		}
		prev = res.Cycles
	}
}

// TestEdgeLabeledKernel: edge-label constraints flow through the CST into
// the kernel (the Section II extension on the FPGA path).
func TestEdgeLabeledKernel(t *testing.T) {
	b := graph.NewBuilder(4, 2)
	b.AddVertex(0)
	b.AddVertex(1)
	b.AddVertex(0)
	b.AddVertex(1)
	b.AddEdgeLabeled(0, 1, 1)
	b.AddEdgeLabeled(2, 3, 2)
	g := b.MustBuild()
	q := graph.MustQuery("lq", []graph.Label{0, 1}, [][2]graph.QueryVertex{{0, 1}})
	if err := q.SetEdgeLabel(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	tr := order.BuildBFSTree(q, 0)
	c := cst.Build(q, g, tr)
	res, err := Run(c, order.Order{0, 1}, Options{Variant: VariantSep, Config: fpgasim.DefaultConfig(), Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 1 || res.Embeddings[0][0] != 2 {
		t.Errorf("edge-labeled kernel: %v", res.Embeddings)
	}
}
