package core

import "fastmatch/internal/cst"

// Edge-validation strategies. The kernel's batch rounds probe "is candidate
// ci of O[d] CST-adjacent to the mapped candidate mj of an earlier
// neighbour?" for every generated partial. Run replaces the per-probe binary
// search (Adj.Has, still the oracle Simulate and the property tests use)
// with one of two membership structures over the *reverse* adjacency view
// Edge(un → u) — by the CST's mirror invariant, ci ∈ N^u_un reverse-maps to
// exactly the same verdict — selected once per check slot at prepare time
// from the candidate-set and adjacency-list sizes:
//
//   - stratGallop: a monotone cursor over rev.Neighbors(mj). Candidates of a
//     partial are consumed in strictly ascending ci order, so the cursor
//     gallops forward (doubling steps + binary search over the bracket) and
//     the whole batch costs O(|revList| + probes·log step) instead of
//     probes·log|fwdList|. The default; wins on skewed lists where the
//     cursor skips long runs.
//   - stratBitset: a per-slot bitset over C(O[d]) marked lazily from
//     rev.Neighbors(mj) and cached across partials (markedMj); each probe is
//     one word test. Selected for high-degree slots, where marking once and
//     probing O(1) beats log-factor searches — the software analogue of the
//     paper's BRAM bitmap probe that motivates δD.
type strategy uint8

const (
	stratGallop strategy = iota
	stratBitset
)

// bitsetMinAvgDeg is the average forward adjacency-list length above which a
// check slot switches from galloping to the bitset: below it, marking a
// whole reverse list per distinct mj costs more than a few cursor steps.
const bitsetMinAvgDeg = 32

// gallopState is one gallop slot's cursor over the pinned reverse list of
// the current partial's mapped candidate.
type gallopState struct {
	rl  []cst.CandIndex
	cur int32
}

// probe reports whether ci is in the reverse list, advancing the cursor
// monotonically (ci must not decrease within a partial's batch). The common
// dense step — the next list entry — stays inline; longer skips gallop.
func (g *gallopState) probe(ci cst.CandIndex) bool {
	rl, cur := g.rl, g.cur
	n := int32(len(rl))
	for steps := 0; cur < n && rl[cur] < ci; steps++ {
		cur++
		if steps == 4 {
			cur = gallopTo(rl, cur, ci)
			break
		}
	}
	g.cur = cur
	return cur < n && rl[cur] == ci
}

// gallopTo advances cur through rl (ascending) to the first position whose
// value is >= target: doubling steps bracket the answer, a binary search
// pins it. Amortised over an ascending probe sequence the cursor visits each
// list position O(1) times.
func gallopTo(rl []cst.CandIndex, cur int32, target cst.CandIndex) int32 {
	i := int(cur)
	n := len(rl)
	if i >= n || rl[i] >= target {
		return cur
	}
	step := 1
	j := i + 1
	for j < n && rl[j] < target {
		i = j
		j += step
		step <<= 1
	}
	if j > n {
		j = n
	}
	lo, hi := i+1, j
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if rl[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return int32(lo)
}

// bitsetWords returns the number of 64-bit words covering n candidates.
func bitsetWords(n int) int { return (n + 63) / 64 }
