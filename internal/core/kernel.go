// Package core implements FAST, the paper's FPGA subgraph-matching kernel
// (Section VI). The matching process is decomposed into the four pipelined
// modules of Algorithm 4 — Generator, Visited Validator, Edge Validator and
// Synchronizer — which process batches of up to No partial results per
// round instead of one-at-a-time backtracking, because a fully pipelined
// FPGA loop cannot tolerate data dependencies between iterations.
//
// The kernel does the real enumeration work over a CST partition while
// charging cycles to the fpgasim device model. Four variants reproduce the
// paper's ablation: FAST-DRAM (CST stays in DRAM), FAST-BASIC (BRAM, serial
// modules, Eq. 2), FAST-TASK (task parallelism via FIFOs, Eq. 3) and
// FAST-SEP (split tv/tn generators, Eq. 4). All variants return identical
// embedding sets; only the cycle accounting differs.
//
// Run's edge validation picks an intersection strategy per check slot at
// prepare time — a monotone galloping cursor over the reverse CSR adjacency
// list by default, or a lazily marked candidate bitset (the software
// analogue of the paper's BRAM bitmaps) for high-degree slots; see
// intersect.go for the selection rule. Simulate keeps the plain binary
// search, which also serves as the oracle for the strategy property tests.
package core

import (
	"fmt"
	"time"

	"fastmatch/graph"
	"fastmatch/internal/cst"
	"fastmatch/internal/fpgasim"
	"fastmatch/internal/order"
)

// Variant selects the hardware implementation being modelled.
type Variant int

const (
	// VariantSep is the zero value and the default: task parallelism plus
	// split tv/tn generators feeding duplicated FIFOs (Fig. 5(c), Eq. 4) —
	// the paper's final kernel configuration.
	VariantSep Variant = iota
	// VariantDRAM fetches the CST from card DRAM on every access, with no
	// other optimisation (the FAST-DRAM baseline of Fig. 7).
	VariantDRAM
	// VariantBasic loads the CST into BRAM and runs the modules serially
	// (Fig. 5(a), Eq. 2).
	VariantBasic
	// VariantTask adds task parallelism: modules stream through FIFOs and
	// execute concurrently (Fig. 5(b), Eq. 3).
	VariantTask
)

// String names the variant the way the paper does.
func (v Variant) String() string {
	switch v {
	case VariantDRAM:
		return "FAST-DRAM"
	case VariantBasic:
		return "FAST-BASIC"
	case VariantTask:
		return "FAST-TASK"
	case VariantSep:
		return "FAST-SEP"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// Variants lists all kernel variants in ascending optimisation order.
func Variants() []Variant {
	return []Variant{VariantDRAM, VariantBasic, VariantTask, VariantSep}
}

// Result reports one kernel execution over one CST partition.
type Result struct {
	// Count is the number of embeddings found (|M|).
	Count int64
	// Embeddings holds the matches when Options.Collect is set.
	Embeddings []graph.Embedding
	// Cycles is the total modelled cycle count, including CST load and
	// result flush; Duration is Cycles at the configured clock.
	Cycles   int64
	Duration time.Duration
	// LoadCycles / FlushCycles are the DRAM↔BRAM transfer components.
	LoadCycles  int64
	FlushCycles int64
	// Rounds is how many generator rounds ran.
	Rounds int64
	// Partials is N, the total partial results generated; EdgeTasks is M,
	// the total edge-validation tasks — the quantities in Eqs. 1–4.
	Partials  int64
	EdgeTasks int64
	// Pops counts reads from the intermediate results buffer.
	Pops int64
	// Stopped reports that the kernel abandoned the remaining batch rounds
	// early — Options.Cancel fired between rounds, or Options.Take refused
	// an embedding (the caller's result budget ran out). Count and the cycle
	// statistics then cover only the work done up to that point.
	Stopped bool
	// BufferHighWater is the maximum partial-result count resident at any
	// point; the deepest-first strategy bounds it by (|V(q)|−1)·No.
	BufferHighWater int
	// PerModule breaks Cycles down by module name.
	PerModule map[string]int64
}

// Options configures a kernel run.
type Options struct {
	Variant Variant
	Config  fpgasim.Config
	// Collect materialises embeddings in Result.Embeddings; otherwise only
	// Count is maintained (flushing ids to DRAM is still modelled).
	Collect bool
	// Emit, when non-nil, receives every embedding as it completes.
	Emit func(graph.Embedding)
	// Cancel, when non-nil, is the host's abort line: the kernel loop polls
	// it between batch rounds (a round is the natural preemption point — the
	// modules drain their FIFOs and the buffer is consistent) and abandons
	// the remaining rounds once it returns true, reporting Stopped.
	Cancel func() bool
	// Take, when non-nil, is consulted once per complete embedding before
	// the Synchronizer counts it. Returning false means the caller's result
	// budget is exhausted: the embedding is not counted or emitted and the
	// kernel stops, reporting Stopped. Hosts use it to make a shared
	// embedding limit exact across concurrently running kernels.
	Take func() bool
	// Scratch, when non-nil, supplies the reusable per-run buffers (the
	// partial-mapping arena, level buffers, root index). A Scratch may be
	// reused across sequential runs — hosts pool them — but never by two
	// runs concurrently. Nil means the run allocates a private one.
	Scratch *Scratch
}

// Scratch is the kernel's reusable memory: a level-major arena backing
// every partial mapping (the software stand-in for the BRAM partial-results
// buffer, which the hardware sizes once at (|V(q)|−1)·No slots and never
// allocates from again), the per-level partial descriptors, and the root
// index sequence. Run sizes it from (|V(q)|, Config.No) on entry, growing
// monotonically, so a pooled Scratch amortises to zero steady-state
// allocation per kernel run.
type Scratch struct {
	maps     []cst.CandIndex
	vmaps    []graph.VertexID
	partials []partial
	rootIdx  []cst.CandIndex
	// Bitset-strategy state (see intersect.go): one bit arena shared by all
	// bitset check slots plus the candidate index each slot currently has
	// marked (-1 when clean). prepare re-derives the slot layout and resets
	// both, so a pooled Scratch can cross runs over different CSTs.
	bitWords []uint64
	markedMj []cst.CandIndex
}

// partial is an entry of the intermediate results buffer P: the candidate
// indices mapped so far (by matching-order position) plus a resume cursor —
// when a partial result has more candidates than the round's remaining
// No budget, the paper maps the first batch and resumes the rest later
// (Section VI-B).
type partial struct {
	m []cst.CandIndex
	// mv mirrors m with the mapped data vertices, so the Visited Validator
	// scans one contiguous array instead of re-deriving each id through
	// candAt — the hardware keeps exactly this duplicated column in BRAM.
	mv  []graph.VertexID
	cur int32
}

// Run executes the FAST kernel over one CST partition with matching order o.
func Run(c *cst.CST, o order.Order, opts Options) (Result, error) {
	cfg := opts.Config
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if err := o.Validate(c.Tree); err != nil {
		return Result{}, fmt.Errorf("core: %v", err)
	}
	nq := c.Query.NumVertices()

	// Resource admission: the BRAM-only variants must fit the CST plus the
	// partial-results buffer on chip (Section VI-B's buffer sizing).
	bufferBytes := int64(nq-1) * int64(cfg.No) * int64(nq*4+4)
	if opts.Variant != VariantDRAM {
		if need := c.SizeBytes() + bufferBytes; need > cfg.BRAMBytes {
			return Result{}, fmt.Errorf("core: CST (%d B) + buffer (%d B) exceed BRAM (%d B); partition the CST",
				c.SizeBytes(), bufferBytes, cfg.BRAMBytes)
		}
	} else if bufferBytes > cfg.BRAMBytes {
		return Result{}, fmt.Errorf("core: partial-results buffer (%d B) exceeds BRAM (%d B); lower No", bufferBytes, cfg.BRAMBytes)
	}

	run := &runState{
		c:       c,
		o:       o,
		opts:    opts,
		pos:     o.PositionOf(),
		counter: fpgasim.NewCounter(),
		timing:  newTiming(opts.Variant, cfg, c.MaxCandDegree()),
	}
	run.prepare()
	res := run.execute()
	return res, nil
}

// runState carries one kernel execution.
type runState struct {
	c    *cst.CST
	o    order.Order
	opts Options
	pos  []int

	// checks[d] lists the earlier non-tree neighbours (by query vertex) the
	// Edge Validator must probe when extending to depth d.
	checks [][]graph.QueryVertex
	// parentPos[d] is the order position of O[d]'s tree parent.
	parentPos []int
	// Hot-path hoists, resolved once in prepare so round performs zero map
	// lookups, zero pointer derefs and zero indirect calls per candidate:
	// parentAdj[d] is the CSR view (two slice headers, copied by value out
	// of the CST's flat arenas) the Generator walks at depth d,
	// checkAdj[d]/checkPos[d] (aligned with checks[d]) are the Edge
	// Validator's probe targets, and candAt[d] is C(O[d]) for the Visited
	// Validator's id recovery.
	parentAdj []cst.Adj
	checkAdj  [][]cst.Adj
	checkPos  [][]int32
	candAt    [][]graph.VertexID
	// Adaptive edge validation (intersect.go): checkRev[d] mirrors
	// checkAdj[d] with the reverse CSR views, checkStrat[d] the per-slot
	// strategy, slotOf[d] the global slot id (indexing scratch.markedMj and,
	// through bitBase, the scratch bit arena). gallopRevs/gallopCurs are the
	// per-round cursor state for the gallop slots of the level being
	// expanded, reset per partial.
	checkRev   [][]cst.Adj
	checkStrat [][]strategy
	slotOf     [][]int32
	bitBase    []int
	checkBits  [][][]uint64 // bitset slots: pre-cut word windows, else nil
	gallop     []gallopState

	levels  [][]partial     // levels[d]: partials with d vertices mapped
	rootIdx []cst.CandIndex // identity sequence over C(root)
	scratch *Scratch
	// mapBase[d] is where level d's mapping arena begins in scratch.maps;
	// slot i of level d is maps[mapBase[d]+i*d : mapBase[d]+(i+1)*d].
	mapBase []int
	counter *fpgasim.Counter
	timing  *timing

	count     int64
	collected []graph.Embedding
	rounds    int64
	partials  int64
	edgeTasks int64
	pops      int64
	highWater int
	stopped   bool
}

// cancelled polls the host abort line.
func (r *runState) cancelled() bool {
	return r.opts.Cancel != nil && r.opts.Cancel()
}

// takeOne reserves one slot of the caller's result budget; refusal stops
// the kernel.
func (r *runState) takeOne() bool {
	if r.opts.Take != nil && !r.opts.Take() {
		r.stopped = true
		return false
	}
	return true
}

// prepare runs once per Run before the round loop; its loops are bounded by
// query-plan size (order, slots, per-level check tables) or are straight-line
// candidate-array fills, so cancellation is first observed in execute.
//
//fastmatch:nolint cancelpoll one-shot query-plan-sized setup; execute polls per round
func (r *runState) prepare() {
	nq := r.c.Query.NumVertices()
	no := r.opts.Config.No
	sc := r.opts.Scratch
	if sc == nil {
		sc = new(Scratch)
	}
	r.scratch = sc

	r.checks = make([][]graph.QueryVertex, nq)
	r.parentPos = make([]int, nq)
	r.parentAdj = make([]cst.Adj, nq)
	r.checkAdj = make([][]cst.Adj, nq)
	r.checkPos = make([][]int32, nq)
	r.candAt = make([][]graph.VertexID, nq)
	r.checkRev = make([][]cst.Adj, nq)
	r.checkStrat = make([][]strategy, nq)
	r.slotOf = make([][]int32, nq)
	nSlots, maxChecks := 0, 0
	for d, u := range r.o {
		r.candAt[d] = r.c.Candidates(u)
		if d > 0 {
			up := r.c.Tree.Parent[u]
			r.parentPos[d] = r.pos[up]
			r.parentAdj[d] = r.c.Edge(up, u)
		}
		for _, un := range r.c.Query.Neighbors(u) {
			if un == r.c.Tree.Parent[u] {
				continue
			}
			if r.pos[un] < d {
				fwd := r.c.Edge(u, un)
				r.checks[d] = append(r.checks[d], un)
				r.checkAdj[d] = append(r.checkAdj[d], fwd)
				r.checkPos[d] = append(r.checkPos[d], int32(r.pos[un]))
				r.checkRev[d] = append(r.checkRev[d], r.c.Edge(un, u))
				// Strategy (intersect.go): slots whose forward lists are
				// long on average pay off a per-mj bitset mark; the rest
				// gallop a cursor over the reverse list.
				strat := stratGallop
				if nc := len(r.candAt[d]); nc > 0 && len(fwd.Targets) >= bitsetMinAvgDeg*nc {
					strat = stratBitset
				}
				r.checkStrat[d] = append(r.checkStrat[d], strat)
				r.slotOf[d] = append(r.slotOf[d], int32(nSlots))
				nSlots++
			}
		}
		if len(r.checks[d]) > maxChecks {
			maxChecks = len(r.checks[d])
		}
	}
	// Bitset arena layout: bitBase[slot] is the word offset of the slot's
	// bitset over C(O[d]); gallop slots occupy no words. The arena and the
	// marked indices are reset here because a pooled Scratch crosses runs
	// whose slot layouts differ.
	r.bitBase = make([]int, nSlots)
	words := 0
	for d := range r.o {
		for k, strat := range r.checkStrat[d] {
			if strat != stratBitset {
				continue
			}
			r.bitBase[r.slotOf[d][k]] = words
			words += bitsetWords(len(r.candAt[d]))
		}
	}
	if cap(sc.bitWords) < words {
		sc.bitWords = make([]uint64, words)
	}
	sc.bitWords = sc.bitWords[:words]
	clear(sc.bitWords)
	if cap(sc.markedMj) < nSlots {
		sc.markedMj = make([]cst.CandIndex, nSlots)
	}
	sc.markedMj = sc.markedMj[:nSlots]
	for i := range sc.markedMj {
		sc.markedMj[i] = -1
	}
	r.gallop = make([]gallopState, maxChecks)
	// Pre-cut each bitset slot's word window once; the probe loop then
	// indexes a stable slice instead of re-deriving arena offsets.
	r.checkBits = make([][][]uint64, nq)
	for d := range r.o {
		if len(r.checkStrat[d]) == 0 {
			continue
		}
		r.checkBits[d] = make([][]uint64, len(r.checkStrat[d]))
		for k, strat := range r.checkStrat[d] {
			if strat == stratBitset {
				base := r.bitBase[r.slotOf[d][k]]
				r.checkBits[d][k] = sc.bitWords[base : base+bitsetWords(len(r.candAt[d]))]
			}
		}
	}

	// Partial-mapping arena: level d holds at most No partials (one round's
	// output) of mapping width d, and deepest-first scheduling guarantees a
	// level is empty whenever a round refills it, so level-major slots are
	// reused round after round with no per-partial allocation.
	r.mapBase = make([]int, nq)
	total := 0
	for d := 1; d < nq; d++ {
		r.mapBase[d] = total
		total += no * d
	}
	if cap(sc.maps) < total {
		sc.maps = make([]cst.CandIndex, total)
		sc.vmaps = make([]graph.VertexID, total)
	}
	sc.maps = sc.maps[:total]
	sc.vmaps = sc.vmaps[:total]
	np := 1 + (nq-1)*no
	if cap(sc.partials) < np {
		sc.partials = make([]partial, np)
	}
	sc.partials = sc.partials[:np]

	nroot := len(r.c.Candidates(r.o[0]))
	if cap(sc.rootIdx) < nroot {
		sc.rootIdx = make([]cst.CandIndex, nroot)
	}
	r.rootIdx = sc.rootIdx[:nroot]
	for i := range r.rootIdx {
		r.rootIdx[i] = cst.CandIndex(i)
	}

	// Level 0 is a single empty partial whose cursor walks C(root),
	// so arbitrarily large root candidate sets respect the No bound.
	r.levels = make([][]partial, nq)
	sc.partials[0] = partial{m: nil, cur: 0}
	r.levels[0] = sc.partials[0:1:1]
	for d := 1; d < nq; d++ {
		lo := 1 + (d-1)*no
		r.levels[d] = sc.partials[lo : lo : lo+no]
	}
	if r.c.IsEmpty() {
		r.levels[0] = nil
	}
}

// mapSlot returns the arena-backed mapping arrays (candidate indices and
// mirrored data vertices) for the idx-th partial of level d.
func (r *runState) mapSlot(d, idx int) ([]cst.CandIndex, []graph.VertexID) {
	lo := r.mapBase[d] + idx*d
	return r.scratch.maps[lo : lo+d : lo+d], r.scratch.vmaps[lo : lo+d : lo+d]
}

// candidatesOf returns the candidate list the Generator reads for extending
// p at depth d: all of C(root) at depth 0, otherwise the CST adjacency of
// the mapped parent candidate.
func (r *runState) candidatesOf(d int, p *partial) []cst.CandIndex {
	if d == 0 {
		return r.rootIdx
	}
	return r.parentAdj[d].Neighbors(p.m[r.parentPos[d]])
}

// execute is Algorithm 4's main loop: while the buffer has work, run one
// round at the deepest non-empty level.
func (r *runState) execute() Result {
	cfg := r.opts.Config
	var loadCycles int64
	if r.opts.Variant != VariantDRAM {
		loadCycles = cfg.LoadCycles(r.c.SizeBytes())
		r.counter.Add("load", loadCycles)
	}

	for {
		if r.cancelled() {
			r.stopped = true
			break
		}
		d := r.deepestLevel()
		if d < 0 {
			break
		}
		r.round(d)
		if r.stopped {
			break
		}
	}

	// Flush complete results from BRAM to card DRAM (4 bytes per mapped
	// vertex id).
	flushCycles := cfg.LoadCycles(r.count * int64(len(r.o)) * 4)
	r.counter.Add("flush", flushCycles)

	res := Result{
		Count:           r.count,
		Embeddings:      r.collected,
		Cycles:          r.counter.Total(),
		LoadCycles:      loadCycles,
		FlushCycles:     flushCycles,
		Rounds:          r.rounds,
		Partials:        r.partials,
		EdgeTasks:       r.edgeTasks,
		Pops:            r.pops,
		Stopped:         r.stopped,
		BufferHighWater: r.highWater,
		PerModule:       r.counter.PerModule(),
	}
	res.Duration = cfg.CyclesToDuration(res.Cycles)
	return res
}

func (r *runState) deepestLevel() int {
	for d := len(r.levels) - 1; d >= 0; d-- {
		if len(r.levels[d]) > 0 {
			return d
		}
	}
	return -1
}

// round expands the partials at level d into level d+1 (Algorithms 5–8),
// then charges the round's cycles per the variant's composition.
//
// Cancellation is polled once per round by execute before each call: a round
// emits at most No partials, so cancel latency stays bounded without putting
// a branch in the probe loop.
//
//fastmatch:nolint cancelpoll execute polls per round; a round is bounded by No
//fastmatch:hotpath
func (r *runState) round(d int) {
	cfg := r.opts.Config
	u := r.o[d]
	complete := d+1 == len(r.o)
	level := r.levels[d]
	var (
		pops   int64
		nextLv []partial
		nPo    int64
		nTn    int64
	)
	if !complete {
		nextLv = r.levels[d+1][:0]
	}

	// The vertex being matched is O[d] when expanding partials that have d
	// vertices mapped... they extend *to* depth d+1 by matching O[d].
	checkList := r.checksFor(d)

	// Hoist the level's per-check state out of the candidate loop: slice
	// headers for the candidate array and probe metadata, plus the scratch
	// bitset arena — the loop below touches only contiguous locals.
	candHere := r.candAt[d]
	checkPos := r.checkPos[d]
	checkStrat := r.checkStrat[d]
	checkRev := r.checkRev[d]
	checkBits := r.checkBits[d]
	slots := r.slotOf[d]
	marked := r.scratch.markedMj

	budget := int64(cfg.No)
	i := 0
	for i < len(level) && nPo < budget {
		p := &level[i]
		// Per-partial probe setup (Algorithm 7's batch form): every check's
		// counterpart mapping mj is fixed for the whole batch, and the
		// candidates below arrive in strictly ascending ci order. Gallop
		// slots pin the reverse list of mj and reset their cursor; bitset
		// slots mark mj's reverse list once, cached across partials that
		// share the mapping (markedMj) — clearing walks the old list, so the
		// arena never needs a full wipe between partials.
		for k := range checkList {
			mj := p.m[checkPos[k]]
			if checkStrat[k] == stratGallop {
				r.gallop[k] = gallopState{rl: checkRev[k].Neighbors(mj)}
				continue
			}
			slot := slots[k]
			if marked[slot] == mj {
				continue
			}
			bits := checkBits[k]
			if old := marked[slot]; old >= 0 {
				for _, cj := range checkRev[k].Neighbors(old) {
					bits[cj>>6] &^= 1 << (uint(cj) & 63)
				}
			}
			for _, cj := range checkRev[k].Neighbors(mj) {
				bits[cj>>6] |= 1 << (uint(cj) & 63)
			}
			marked[slot] = mj
		}
		cands := r.candidatesOf(d, p)
		avail := cands[p.cur:]
		pops++
		space := budget - nPo
		take := int64(len(avail))
		resumed := false
		if take > space {
			take = space
			resumed = true
		}
		for _, ci := range avail[:take] {
			nPo++
			nTn += int64(len(checkList))
			// Visited validation (Algorithm 6): the newly mapped data
			// vertex must be fresh.
			v := candHere[ci]
			valid := true
			for _, w := range p.mv {
				if w == v {
					valid = false
					break
				}
			}
			// Edge validation (Algorithm 7): the new candidate must be
			// CST-adjacent to every earlier non-tree neighbour's mapping —
			// each probe one bitset word test or one monotone cursor
			// advance, never a per-candidate binary search.
			if valid {
				for k := range checkList {
					if checkStrat[k] == stratBitset {
						bits := checkBits[k]
						if bits[ci>>6]&(1<<(uint(ci)&63)) == 0 {
							valid = false
							break
						}
						continue
					}
					if !r.gallop[k].probe(ci) {
						valid = false
						break
					}
				}
			}
			if !valid {
				continue
			}
			// Synchronizer (Algorithm 8): store back or report.
			if complete {
				if !r.takeOne() {
					break
				}
				r.count++
				if r.opts.Collect || r.opts.Emit != nil {
					//fastmatch:nolint hotpathalloc one embedding per emitted match, only when Collect/Emit opted in
					e := make(graph.Embedding, len(r.o))
					for pos2, w := range p.mv {
						e[r.o[pos2]] = w
					}
					e[u] = v
					if r.opts.Collect {
						//fastmatch:nolint hotpathalloc collected grows only under the WithCollect opt-in
						r.collected = append(r.collected, e)
					}
					if r.opts.Emit != nil {
						r.opts.Emit(e)
					}
				}
			} else {
				// Store back into the next level's arena slot instead of a
				// fresh allocation per partial.
				m, mv := r.mapSlot(d+1, len(nextLv))
				copy(m, p.m)
				copy(mv, p.mv)
				m[d] = ci
				mv[d] = v
				nextLv = append(nextLv, partial{m: m, mv: mv})
			}
		}
		if r.stopped {
			break // result budget refused an embedding; abandon the run
		}
		if resumed {
			p.cur += int32(take)
			break // budget exhausted; this partial resumes next round
		}
		i++
	}
	// Retain unconsumed partials (including a resumed head).
	//fastmatch:nolint hotpathalloc compaction into level's own backing array (level[:0]); never grows
	r.levels[d] = append(level[:0], level[i:]...)
	if !complete {
		r.levels[d+1] = nextLv
	}

	r.rounds++
	r.partials += nPo
	r.edgeTasks += nTn
	r.pops += pops
	r.timing.chargeRound(r.counter, pops, nPo, nTn, len(checkList))

	if hw := r.resident(); hw > r.highWater {
		r.highWater = hw
	}
}

// checksFor returns the edge-validation neighbour list for matching O[d].
func (r *runState) checksFor(d int) []graph.QueryVertex { return r.checks[d] }

// resident counts partials currently buffered (level 0's root cursor is
// bookkeeping, not a buffered partial).
func (r *runState) resident() int {
	total := 0
	for d := 1; d < len(r.levels); d++ {
		total += len(r.levels[d])
	}
	return total
}
