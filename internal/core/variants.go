package core

import (
	"fastmatch/internal/fpgasim"
)

// timing charges the per-round cycle cost of each variant, following the
// cycle analysis of Section VI-B/C/D. With r buffer pops, n new partial
// results and m edge-validation tasks in a round:
//
//	BASIC (Eq. 2): read(r) + gen(n) + visited(n) + collect(n)
//	               + tnGen(m) + edge(m)                       [serial]
//	TASK (Eq. 3):  read(r) + max(gen(n), visited(n))
//	               + max(tnGen(m), edge(m), collect(n))       [FIFO groups]
//	SEP  (Eq. 4):  max(read(r), gen(n), visited(n))
//	               + max(tnGen(m), edge(m), collect(n))       [split generators]
//	DRAM (Eq. 1):  BASIC composition with CST reads at DRAM latency
//	               and no initial BRAM load.
//
// With m ≈ n these give ≈6n, ≈3n and ≈2n per round: TASK's ≤50% gain over
// BASIC and SEP's ≤33% gain over TASK, the caps the paper derives.
type timing struct {
	variant Variant
	read    fpgasim.Module
	gen     fpgasim.Module
	visited fpgasim.Module
	collect fpgasim.Module
	tnGen   fpgasim.Module
	edge    fpgasim.Module
	over    int64
}

// newTiming derives module parameters from the device configuration. The
// Generator and Edge Validator touch the CST, so their initiation intervals
// depend on where the CST lives: BRAM (II = 1, or ⌈D_CST/PortMax⌉ for
// over-long adjacency lists) versus DRAM (II = DRAM latency).
func newTiming(v Variant, cfg fpgasim.Config, maxCandDeg int) *timing {
	genII := int64(cfg.BRAMLatency)
	edgeII := cfg.EdgeProbeII(maxCandDeg) * int64(cfg.BRAMLatency)
	if v == VariantDRAM {
		genII = int64(cfg.DRAMLatency)
		edgeII = cfg.EdgeProbeII(maxCandDeg) * int64(cfg.DRAMLatency)
	}
	return &timing{
		variant: v,
		read:    fpgasim.Module{Name: "read", Depth: cfg.DepthRead, II: 1},
		gen:     fpgasim.Module{Name: "generator", Depth: cfg.DepthGen, II: genII},
		visited: fpgasim.Module{Name: "visited-validator", Depth: cfg.DepthVisited, II: 1},
		collect: fpgasim.Module{Name: "synchronizer", Depth: cfg.DepthCollect, II: 1},
		tnGen:   fpgasim.Module{Name: "tn-generator", Depth: cfg.DepthTnGen, II: 1},
		edge:    fpgasim.Module{Name: "edge-validator", Depth: cfg.DepthEdge, II: edgeII},
		over:    cfg.RoundOverhead,
	}
}

// chargeRound adds one round's cycles to the counter. knn is the number of
// non-tree neighbours checked for the current vertex: the tn-generation
// outer loop (Algorithm 5 lines 10–12) cannot be pipelined across
// neighbours, so it restarts its fill depth knn times.
//
// The buffer-read module is charged per generated partial result (the
// paper's L1·N term — each po requires reading its parent's state), not per
// pop; this is what makes the closed forms come out as Eq. 2 = 4N+2M,
// Eq. 3 = 2N+max(N,M) and Eq. 4 = N+max(N,M), with the exact ≤50% and
// ≤33% optimisation caps.
func (t *timing) chargeRound(counter *fpgasim.Counter, r, n, m int64, knn int) {
	_ = r // pops are tracked in Result for reporting; timing follows N
	read := t.read.Cycles(n)
	gen := t.gen.Cycles(n)
	vis := t.visited.Cycles(n)
	col := t.collect.Cycles(n)
	var tng int64
	if knn > 0 && n > 0 {
		// knn pipelined inner loops of n items each: knn·Depth + m.
		tng = int64(knn)*t.tnGen.Depth + t.tnGen.II*m
	}
	edg := t.edge.Cycles(m)

	var total int64
	switch t.variant {
	case VariantDRAM, VariantBasic:
		total = fpgasim.Serial(read, gen, vis, col, tng, edg)
	case VariantTask:
		total = fpgasim.Serial(
			read,
			fpgasim.Concurrent(gen, vis),
			fpgasim.Concurrent(tng, edg, col),
		)
	case VariantSep:
		total = fpgasim.Serial(
			fpgasim.Concurrent(read, gen, vis),
			fpgasim.Concurrent(tng, edg, col),
		)
	}
	total += t.over

	// Attribute the round to the dominant module for the breakdown, and
	// keep exact totals under the variant's composition.
	counter.Add("rounds", t.over)
	counter.Add(t.read.Name, read)
	counter.Add(t.gen.Name, gen)
	counter.Add(t.visited.Name, vis)
	counter.Add(t.collect.Name, col)
	counter.Add(t.tnGen.Name, tng)
	counter.Add(t.edge.Name, edg)
	// The counter now over-counts relative to the concurrent composition;
	// subtract the overlap so Total matches the variant equation.
	overlap := fpgasim.Serial(read, gen, vis, col, tng, edg) + t.over - total
	if overlap > 0 {
		counter.Add("(overlap)", -overlap)
	}
}
