package core

import (
	"testing"

	"fastmatch/graph"
	"fastmatch/internal/cst"
	"fastmatch/internal/fpgasim"
	"fastmatch/internal/order"
	"fastmatch/ldbc"
)

// benchPlan builds the (CST, order) pair the kernel benchmarks run over,
// mirroring host.Prepare without importing it (host depends on core).
func benchPlan(b *testing.B, queryName string, basePersons int) (*cst.CST, order.Order) {
	b.Helper()
	g := ldbc.Generate(ldbc.Config{BasePersons: basePersons, Seed: 42})
	q, err := ldbc.QueryByName(queryName)
	if err != nil {
		b.Fatal(err)
	}
	root := order.SelectRoot(q, g)
	tree := order.BuildBFSTree(q, root)
	c := cst.Build(q, g, tree)
	return c, order.PathBased(tree, c)
}

// BenchmarkKernelRound measures one full kernel execution over an
// unpartitioned CST — the Run loop is all batch rounds, so ns/op and
// allocs/op track exactly the per-round hot path (Generator, Visited
// Validator, Edge Validator, Synchronizer).
func BenchmarkKernelRound(b *testing.B) {
	for _, name := range []string{"q1", "q5"} {
		c, o := benchPlan(b, name, 200)
		cfg := fpgasim.DefaultConfig()
		opts := Options{Variant: VariantSep, Config: cfg}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var count int64
			for i := 0; i < b.N; i++ {
				res, err := Run(c, o, opts)
				if err != nil {
					b.Fatal(err)
				}
				if count == 0 {
					count = res.Count
				} else if res.Count != count {
					b.Fatalf("count drift: %d then %d", count, res.Count)
				}
			}
		})
	}
}

// BenchmarkKernelRoundScratch is BenchmarkKernelRound with one reused
// Scratch — the steady state of host.Match's sync.Pool, where the arena is
// allocated once and every later run borrows it.
func BenchmarkKernelRoundScratch(b *testing.B) {
	for _, name := range []string{"q1", "q5"} {
		c, o := benchPlan(b, name, 200)
		cfg := fpgasim.DefaultConfig()
		opts := Options{Variant: VariantSep, Config: cfg, Scratch: new(Scratch)}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Run(c, o, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkKernelRoundCollect includes embedding materialisation, whose
// per-embedding allocations are inherent to the Collect contract.
func BenchmarkKernelRoundCollect(b *testing.B) {
	c, o := benchPlan(b, "q1", 200)
	cfg := fpgasim.DefaultConfig()
	opts := Options{Variant: VariantSep, Config: cfg, Collect: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(c, o, opts); err != nil {
			b.Fatal(err)
		}
	}
}

var benchSink graph.VertexID

// BenchmarkVertexLookup pins the cost of the innermost CST probe the
// validators perform per candidate.
func BenchmarkVertexLookup(b *testing.B) {
	c, _ := benchPlan(b, "q1", 200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSink = c.Vertex(0, 0)
	}
}
