package core

import (
	"testing"

	"fastmatch/internal/cst"
	"fastmatch/internal/fpgasim"
	"fastmatch/internal/order"
	"fastmatch/ldbc"
)

// allocPlan is benchPlan for tests: a CST/order pair whose kernel run
// generates thousands of partial results.
func allocPlan(t *testing.T, queryName string) (*cst.CST, order.Order) {
	t.Helper()
	g := ldbc.Generate(ldbc.Config{BasePersons: 200, Seed: 42})
	q, err := ldbc.QueryByName(queryName)
	if err != nil {
		t.Fatal(err)
	}
	root := order.SelectRoot(q, g)
	tree := order.BuildBFSTree(q, root)
	c := cst.Build(q, g, tree)
	return c, order.PathBased(tree, c)
}

// TestKernelRunAllocsO1PerRound is the allocation regression gate for the
// arena refactor: with a warmed Scratch, a whole kernel run may allocate
// only its fixed per-run bookkeeping (runState, hoists, cycle counter —
// O(|V(q)|) small objects), never per partial result and never per round
// beyond that fixed set. Before the arena, this run allocated one mapping
// slice per partial (thousands per run); the bound below fails loudly if
// any per-partial allocation creeps back in.
func TestKernelRunAllocsO1PerRound(t *testing.T) {
	for _, name := range []string{"q1", "q5"} {
		c, o := allocPlan(t, name)
		opts := Options{Variant: VariantSep, Config: fpgasim.DefaultConfig(), Scratch: new(Scratch)}
		res, err := Run(c, o, opts) // warm: sizes the scratch arena
		if err != nil {
			t.Fatal(err)
		}
		if res.Partials < 2000 {
			t.Fatalf("%s: only %d partials; workload too small for the gate to mean anything", name, res.Partials)
		}
		allocs := testing.AllocsPerRun(5, func() {
			if _, err := Run(c, o, opts); err != nil {
				t.Fatal(err)
			}
		})
		// Fixed budget, independent of partials (>= 2000 here) and rounds:
		// generous against Go version drift, but three orders of magnitude
		// below one-alloc-per-partial.
		const budget = 60
		if allocs > budget {
			t.Errorf("%s: %v allocs per run for %d partials over %d rounds; want <= %d (O(1) per run)",
				name, allocs, res.Partials, res.Rounds, budget)
		}
	}
}

// TestKernelScratchReuseMatchesFresh: a Scratch carried across runs of
// different CSTs (the host pool's reality — partitions of many shapes churn
// through one pool) must never change counts.
func TestKernelScratchReuseMatchesFresh(t *testing.T) {
	sc := new(Scratch)
	for _, name := range []string{"q1", "q2", "q3", "q4", "q5"} {
		c, o := allocPlan(t, name)
		fresh, err := Run(c, o, Options{Variant: VariantSep, Config: fpgasim.DefaultConfig()})
		if err != nil {
			t.Fatal(err)
		}
		reused, err := Run(c, o, Options{Variant: VariantSep, Config: fpgasim.DefaultConfig(), Scratch: sc})
		if err != nil {
			t.Fatal(err)
		}
		if fresh.Count != reused.Count || fresh.Partials != reused.Partials ||
			fresh.Rounds != reused.Rounds || fresh.Cycles != reused.Cycles {
			t.Errorf("%s: scratch-reuse drift: fresh {count=%d partials=%d rounds=%d cycles=%d} vs reused {count=%d partials=%d rounds=%d cycles=%d}",
				name, fresh.Count, fresh.Partials, fresh.Rounds, fresh.Cycles,
				reused.Count, reused.Partials, reused.Rounds, reused.Cycles)
		}
	}
}
