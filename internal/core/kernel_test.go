package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fastmatch/graph"
	"fastmatch/internal/cst"
	"fastmatch/internal/fpgasim"
	"fastmatch/internal/order"
)

// fig1Setup builds the paper's Fig. 1 query/data pair and its CST.
func fig1Setup(t testing.TB) (*cst.CST, order.Order, *graph.Graph) {
	t.Helper()
	q := graph.MustQuery("fig1", []graph.Label{0, 1, 2, 3},
		[][2]graph.QueryVertex{{0, 1}, {0, 2}, {1, 2}, {2, 3}})
	labels := []graph.Label{0, 0, 2, 1, 2, 1, 2, 3, 3, 3, 4, 4}
	edges := [][2]graph.VertexID{
		{0, 3}, {0, 2}, {0, 6}, {3, 2}, {2, 8}, {1, 5}, {1, 4},
		{5, 4}, {5, 6}, {4, 9}, {6, 9}, {5, 7}, {6, 10}, {8, 11},
	}
	g, err := graph.FromEdgeList(labels, edges)
	if err != nil {
		t.Fatal(err)
	}
	tr := order.BuildBFSTree(q, 0)
	c := cst.Build(q, g, tr)
	return c, order.Order{0, 1, 2, 3}, g
}

func TestVariantStrings(t *testing.T) {
	want := map[Variant]string{
		VariantDRAM: "FAST-DRAM", VariantBasic: "FAST-BASIC",
		VariantTask: "FAST-TASK", VariantSep: "FAST-SEP",
	}
	for v, s := range want {
		if v.String() != s {
			t.Errorf("%d.String() = %q, want %q", v, v.String(), s)
		}
	}
	if len(Variants()) != 4 {
		t.Errorf("Variants() = %v", Variants())
	}
}

func TestKernelFindsPaperEmbeddings(t *testing.T) {
	c, o, g := fig1Setup(t)
	for _, v := range Variants() {
		res, err := Run(c, o, Options{Variant: v, Config: fpgasim.DefaultConfig(), Collect: true})
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if res.Count != 2 || len(res.Embeddings) != 2 {
			t.Fatalf("%v: count=%d embeddings=%d, want 2", v, res.Count, len(res.Embeddings))
		}
		for _, e := range res.Embeddings {
			if err := graph.VerifyEmbedding(c.Query, g, e); err != nil {
				t.Errorf("%v: invalid embedding %v: %v", v, e, err)
			}
		}
		if res.Cycles <= 0 || res.Duration <= 0 {
			t.Errorf("%v: cycles=%d duration=%v", v, res.Cycles, res.Duration)
		}
	}
}

func TestKernelEmitCallback(t *testing.T) {
	c, o, _ := fig1Setup(t)
	var got int
	_, err := Run(c, o, Options{
		Variant: VariantSep,
		Config:  fpgasim.DefaultConfig(),
		Emit:    func(graph.Embedding) { got++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("emit called %d times, want 2", got)
	}
}

// TestVariantEquivalenceProperty: all variants find exactly the embedding
// set of the CPU enumerator, on random graphs and queries.
func TestVariantEquivalenceProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomUniform(graph.GenConfig{
			NumVertices: 60 + rng.Intn(100),
			NumLabels:   2 + rng.Intn(3),
			AvgDegree:   2 + rng.Float64()*4,
			Seed:        seed,
		})
		q := graph.RandomConnectedQuery("rq", 2+rng.Intn(4), rng.Intn(3), g.NumLabels(), rng)
		tr := order.BuildBFSTree(q, order.SelectRoot(q, g))
		c := cst.Build(q, g, tr)
		o := order.PathBased(tr, c)
		want := make(map[string]bool)
		for _, e := range cst.CollectAll(c, o) {
			want[e.Key()] = true
		}
		for _, v := range Variants() {
			res, err := Run(c, o, Options{Variant: v, Config: fpgasim.DefaultConfig(), Collect: true})
			if err != nil {
				t.Logf("seed %d %v: %v", seed, v, err)
				return false
			}
			if int(res.Count) != len(want) {
				t.Logf("seed %d %v: count %d want %d", seed, v, res.Count, len(want))
				return false
			}
			for _, e := range res.Embeddings {
				if !want[e.Key()] {
					t.Logf("seed %d %v: extra embedding %v", seed, v, e)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestCycleOrdering: the paper's optimisation ladder must hold cycle-wise on
// every input: SEP ≤ TASK ≤ BASIC ≤ DRAM (DRAM pays latency on every CST
// access; BASIC pays a one-off load instead).
func TestCycleOrdering(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomPowerLaw(graph.GenConfig{
			NumVertices: 150 + rng.Intn(150),
			NumLabels:   2 + rng.Intn(2),
			AvgDegree:   4 + rng.Float64()*4,
			Seed:        seed,
		})
		q := graph.RandomConnectedQuery("rq", 3+rng.Intn(3), 1+rng.Intn(2), g.NumLabels(), rng)
		tr := order.BuildBFSTree(q, order.SelectRoot(q, g))
		c := cst.Build(q, g, tr)
		o := order.PathBased(tr, c)
		cycles := make(map[Variant]int64)
		for _, v := range Variants() {
			res, err := Run(c, o, Options{Variant: v, Config: fpgasim.DefaultConfig()})
			if err != nil {
				t.Logf("seed %d %v: %v", seed, v, err)
				return false
			}
			cycles[v] = res.Cycles
		}
		if cycles[VariantSep] > cycles[VariantTask] {
			t.Logf("seed %d: SEP %d > TASK %d", seed, cycles[VariantSep], cycles[VariantTask])
			return false
		}
		if cycles[VariantTask] > cycles[VariantBasic] {
			t.Logf("seed %d: TASK %d > BASIC %d", seed, cycles[VariantTask], cycles[VariantBasic])
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestImprovementCaps: task parallelism gains at most ~50% over BASIC and
// generator separation at most ~33% over TASK (Section VI-C/D).
func TestImprovementCaps(t *testing.T) {
	c, o, _ := fig1Setup(t)
	var cy [4]int64
	for _, v := range Variants() {
		res, err := Run(c, o, Options{Variant: v, Config: fpgasim.DefaultConfig()})
		if err != nil {
			t.Fatal(err)
		}
		cy[v] = res.Cycles
	}
	if gain := 1 - float64(cy[VariantTask])/float64(cy[VariantBasic]); gain > 0.505 {
		t.Errorf("TASK gain %.3f exceeds 50%% cap", gain)
	}
	if gain := 1 - float64(cy[VariantSep])/float64(cy[VariantTask]); gain > 0.34 {
		t.Errorf("SEP gain %.3f exceeds 33%% cap", gain)
	}
}

// TestDRAMPenalty: on a non-trivial workload the DRAM variant must be
// several times slower than BASIC — the Fig. 7 effect (≈5× in the paper).
func TestDRAMPenalty(t *testing.T) {
	g := graph.RandomPowerLaw(graph.GenConfig{NumVertices: 2000, NumLabels: 3, AvgDegree: 8, Seed: 77})
	rng := rand.New(rand.NewSource(77))
	q := graph.RandomConnectedQuery("rq", 4, 2, 3, rng)
	tr := order.BuildBFSTree(q, order.SelectRoot(q, g))
	c := cst.Build(q, g, tr)
	o := order.PathBased(tr, c)
	dram, err := Run(c, o, Options{Variant: VariantDRAM, Config: fpgasim.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	basic, err := Run(c, o, Options{Variant: VariantBasic, Config: fpgasim.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if basic.Count != dram.Count {
		t.Fatalf("count mismatch: %d vs %d", basic.Count, dram.Count)
	}
	ratio := float64(dram.Cycles) / float64(basic.Cycles)
	if ratio < 2 {
		t.Errorf("DRAM/BASIC cycle ratio %.2f, want ≥2 (paper: ≈5)", ratio)
	}
}

// TestBufferBound: the deepest-first strategy keeps the resident partials
// within (|V(q)|−1)·No even with a tiny No, and the kernel still finds all
// embeddings via the resume cursor.
func TestBufferBound(t *testing.T) {
	g := graph.RandomUniform(graph.GenConfig{NumVertices: 300, NumLabels: 2, AvgDegree: 6, Seed: 9})
	rng := rand.New(rand.NewSource(9))
	q := graph.RandomConnectedQuery("rq", 4, 1, 2, rng)
	tr := order.BuildBFSTree(q, order.SelectRoot(q, g))
	c := cst.Build(q, g, tr)
	o := order.PathBased(tr, c)
	want := cst.Count(c, o)

	cfg := fpgasim.DefaultConfig()
	cfg.No = 4 // force many resume rounds
	res, err := Run(c, o, Options{Variant: VariantSep, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != want {
		t.Fatalf("count %d, want %d", res.Count, want)
	}
	bound := (q.NumVertices() - 1) * cfg.No
	if res.BufferHighWater > bound {
		t.Errorf("buffer high-water %d exceeds bound %d", res.BufferHighWater, bound)
	}
	if res.Rounds <= 4 {
		t.Errorf("expected many rounds with No=4, got %d", res.Rounds)
	}
}

// TestNoAmortisation: Eq. 2 — increasing No amortises per-round overhead, so
// cycles decrease (weakly) as No grows.
func TestNoAmortisation(t *testing.T) {
	g := graph.RandomUniform(graph.GenConfig{NumVertices: 400, NumLabels: 2, AvgDegree: 6, Seed: 15})
	rng := rand.New(rand.NewSource(15))
	q := graph.RandomConnectedQuery("rq", 4, 1, 2, rng)
	tr := order.BuildBFSTree(q, order.SelectRoot(q, g))
	c := cst.Build(q, g, tr)
	o := order.PathBased(tr, c)

	var prev int64 = -1
	for _, no := range []int{2, 16, 256, 4096} {
		cfg := fpgasim.DefaultConfig()
		cfg.No = no
		res, err := Run(c, o, Options{Variant: VariantBasic, Config: cfg})
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && res.Cycles > prev+prev/20 {
			t.Errorf("No=%d raised cycles to %d from %d", no, res.Cycles, prev)
		}
		prev = res.Cycles
	}
}

// TestBRAMAdmission: a CST larger than BRAM must be rejected for BRAM
// variants (the host is supposed to partition first) but accepted by DRAM.
func TestBRAMAdmission(t *testing.T) {
	c, o, _ := fig1Setup(t)
	cfg := fpgasim.DefaultConfig()
	cfg.BRAMBytes = 256 // absurdly small: even Fig. 1's CST cannot fit
	cfg.No = 2
	if _, err := Run(c, o, Options{Variant: VariantBasic, Config: cfg}); err == nil {
		t.Error("BASIC accepted oversized CST")
	}
	if _, err := Run(c, o, Options{Variant: VariantDRAM, Config: cfg}); err != nil {
		t.Errorf("DRAM rejected: %v", err)
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	c, _, _ := fig1Setup(t)
	if _, err := Run(c, order.Order{3, 2, 1, 0}, Options{Config: fpgasim.DefaultConfig()}); err == nil {
		t.Error("accepted invalid matching order")
	}
	if _, err := Run(c, order.Order{0, 1, 2, 3}, Options{Config: fpgasim.Config{}}); err == nil {
		t.Error("accepted zero config")
	}
}

// TestEmptyCST: kernels on an empty search space terminate with zero count
// and near-zero cycles.
func TestEmptyCST(t *testing.T) {
	q := graph.MustQuery("missing", []graph.Label{9, 9}, [][2]graph.QueryVertex{{0, 1}})
	g := graph.RandomUniform(graph.GenConfig{NumVertices: 50, NumLabels: 3, AvgDegree: 4, Seed: 3})
	tr := order.BuildBFSTree(q, 0)
	c := cst.Build(q, g, tr)
	res, err := Run(c, order.Order{0, 1}, Options{Variant: VariantSep, Config: fpgasim.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 0 || res.Rounds != 0 {
		t.Errorf("empty CST: count=%d rounds=%d", res.Count, res.Rounds)
	}
}

// TestPerModuleBreakdown: the per-module breakdown must sum to the total.
func TestPerModuleBreakdown(t *testing.T) {
	c, o, _ := fig1Setup(t)
	res, err := Run(c, o, Options{Variant: VariantTask, Config: fpgasim.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, v := range res.PerModule {
		sum += v
	}
	if sum != res.Cycles {
		t.Errorf("per-module sum %d != total %d (%v)", sum, res.Cycles, res.PerModule)
	}
}
