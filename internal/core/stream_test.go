package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fastmatch/graph"
	"fastmatch/internal/cst"
	"fastmatch/internal/fpgasim"
	"fastmatch/internal/order"
)

// TestSimulateFindsPaperEmbeddings: the cycle-stepped simulation agrees
// with the paper's Fig. 1 ground truth for every variant.
func TestSimulateFindsPaperEmbeddings(t *testing.T) {
	c, o, g := fig1Setup(t)
	for _, v := range Variants() {
		res, err := Simulate(c, o, Options{Variant: v, Config: fpgasim.DefaultConfig(), Collect: true})
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if res.Count != 2 {
			t.Fatalf("%v: count = %d, want 2", v, res.Count)
		}
		for _, e := range res.Embeddings {
			if err := graph.VerifyEmbedding(c.Query, g, e); err != nil {
				t.Errorf("%v: %v", v, err)
			}
		}
	}
}

// TestSimulateMatchesRunProperty: the discrete-event simulation and the
// analytic kernel find identical embedding sets and identical N/M task
// counts on random inputs.
func TestSimulateMatchesRunProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomUniform(graph.GenConfig{
			NumVertices: 50 + rng.Intn(80),
			NumLabels:   2 + rng.Intn(2),
			AvgDegree:   2 + rng.Float64()*4,
			Seed:        seed,
		})
		q := graph.RandomConnectedQuery("rq", 2+rng.Intn(4), rng.Intn(3), g.NumLabels(), rng)
		tr := order.BuildBFSTree(q, order.SelectRoot(q, g))
		c := cst.Build(q, g, tr)
		o := order.PathBased(tr, c)
		cfg := fpgasim.DefaultConfig()
		cfg.No = 64 // exercise multi-round behaviour
		for _, v := range Variants() {
			analytic, err := Run(c, o, Options{Variant: v, Config: cfg, Collect: true})
			if err != nil {
				return false
			}
			streamed, err := Simulate(c, o, Options{Variant: v, Config: cfg, Collect: true})
			if err != nil {
				t.Logf("seed %d %v: %v", seed, v, err)
				return false
			}
			if analytic.Count != streamed.Count {
				t.Logf("seed %d %v: count %d vs %d", seed, v, analytic.Count, streamed.Count)
				return false
			}
			if analytic.Partials != streamed.Partials || analytic.EdgeTasks != streamed.EdgeTasks {
				t.Logf("seed %d %v: N/M mismatch: %d/%d vs %d/%d", seed, v,
					analytic.Partials, analytic.EdgeTasks, streamed.Partials, streamed.EdgeTasks)
				return false
			}
			want := make(map[string]bool, len(analytic.Embeddings))
			for _, e := range analytic.Embeddings {
				want[e.Key()] = true
			}
			for _, e := range streamed.Embeddings {
				if !want[e.Key()] {
					t.Logf("seed %d %v: extra embedding %v", seed, v, e)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestSimulateValidatesCycleModel: the analytic per-round composition must
// agree with the discrete-event measurement within a modest factor (pipeline
// fill and single-cycle arbitration differ), and the optimisation ladder
// DRAM ≥ BASIC ≥ TASK ≥ SEP must hold under simulation as well.
func TestSimulateValidatesCycleModel(t *testing.T) {
	g := graph.RandomPowerLaw(graph.GenConfig{NumVertices: 1200, NumLabels: 3, AvgDegree: 6, Seed: 31})
	rng := rand.New(rand.NewSource(31))
	q := graph.RandomConnectedQuery("rq", 4, 2, 3, rng)
	tr := order.BuildBFSTree(q, order.SelectRoot(q, g))
	c := cst.Build(q, g, tr)
	o := order.PathBased(tr, c)
	cfg := fpgasim.DefaultConfig()
	cfg.No = 512

	cycles := map[Variant][2]int64{} // variant → {analytic, streamed}
	for _, v := range Variants() {
		a, err := Run(c, o, Options{Variant: v, Config: cfg})
		if err != nil {
			t.Fatal(err)
		}
		s, err := Simulate(c, o, Options{Variant: v, Config: cfg})
		if err != nil {
			t.Fatal(err)
		}
		cycles[v] = [2]int64{a.Cycles, s.Cycles}
		r := float64(s.Cycles) / float64(a.Cycles)
		t.Logf("%v: analytic %d, streamed %d (ratio %.2f)", v, a.Cycles, s.Cycles, r)
		if r < 0.4 || r > 2.5 {
			t.Errorf("%v: streamed/analytic ratio %.2f outside [0.4, 2.5]", v, r)
		}
	}
	if cycles[VariantSep][1] > cycles[VariantTask][1] {
		t.Errorf("simulated SEP %d > TASK %d", cycles[VariantSep][1], cycles[VariantTask][1])
	}
	if cycles[VariantTask][1] > cycles[VariantBasic][1] {
		t.Errorf("simulated TASK %d > BASIC %d", cycles[VariantTask][1], cycles[VariantBasic][1])
	}
	if cycles[VariantBasic][1] > cycles[VariantDRAM][1] {
		t.Errorf("simulated BASIC %d > DRAM %d", cycles[VariantBasic][1], cycles[VariantDRAM][1])
	}
}

// TestSimulateBackpressure: an Edge Validator with II > 1 (adjacency lists
// beyond the port budget) slows the simulated pipeline down but never
// changes results.
func TestSimulateBackpressure(t *testing.T) {
	g := graph.RandomPowerLaw(graph.GenConfig{NumVertices: 800, NumLabels: 2, AvgDegree: 8, Seed: 13})
	rng := rand.New(rand.NewSource(13))
	q := graph.RandomConnectedQuery("rq", 4, 2, 2, rng)
	tr := order.BuildBFSTree(q, order.SelectRoot(q, g))
	c := cst.Build(q, g, tr)
	o := order.PathBased(tr, c)

	wide := fpgasim.DefaultConfig() // PortMax 512 → II 1
	narrow := fpgasim.DefaultConfig()
	narrow.PortMax = 4 // force II = ⌈D_CST/4⌉ > 1
	if c.MaxCandDegree() <= narrow.PortMax {
		t.Skipf("CST max degree %d too small to exercise backpressure", c.MaxCandDegree())
	}
	fast, err := Simulate(c, o, Options{Variant: VariantSep, Config: wide})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Simulate(c, o, Options{Variant: VariantSep, Config: narrow})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Count != slow.Count {
		t.Fatalf("backpressure changed results: %d vs %d", fast.Count, slow.Count)
	}
	if slow.Cycles <= fast.Cycles {
		t.Errorf("narrow ports not slower: %d vs %d cycles", slow.Cycles, fast.Cycles)
	}
}

// TestSimulateBufferBound: the simulation honours the same
// (|V(q)|−1)·No buffer bound as the analytic kernel.
func TestSimulateBufferBound(t *testing.T) {
	g := graph.RandomUniform(graph.GenConfig{NumVertices: 300, NumLabels: 2, AvgDegree: 6, Seed: 9})
	rng := rand.New(rand.NewSource(9))
	q := graph.RandomConnectedQuery("rq", 4, 1, 2, rng)
	tr := order.BuildBFSTree(q, order.SelectRoot(q, g))
	c := cst.Build(q, g, tr)
	o := order.PathBased(tr, c)
	cfg := fpgasim.DefaultConfig()
	cfg.No = 8
	res, err := Simulate(c, o, Options{Variant: VariantSep, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if want := cst.Count(c, o); res.Count != want {
		t.Fatalf("count %d, want %d", res.Count, want)
	}
	if bound := (q.NumVertices() - 1) * cfg.No; res.BufferHighWater > bound {
		t.Errorf("buffer high-water %d exceeds bound %d", res.BufferHighWater, bound)
	}
}
