package core

import (
	"fmt"

	"fastmatch/graph"
	"fastmatch/internal/cst"
	"fastmatch/internal/fpgasim"
	"fastmatch/internal/order"
)

// Simulate runs the FAST kernel as a cycle-stepped discrete-event
// simulation of the hardware dataflow, instead of the closed-form cycle
// composition Run uses. Every module is stepped cycle by cycle; items move
// through bounded FIFOs with real backpressure (an Edge Validator whose
// initiation interval exceeds one — adjacency lists longer than the port
// budget — stalls the tn generator); the Synchronizer joins each partial
// result's visited and edge verdicts exactly as Algorithm 8 describes.
//
// Simulate exists to validate the analytic model: tests assert that (a) it
// finds exactly the same embeddings as Run, and (b) its measured cycles
// track Run's Eq. 2–4 composition within the fill-overhead tolerance. It is
// much slower than Run (it pays a Go loop per modelled cycle), so the
// experiment harness uses Run; Simulate is for verification and FIFO-sizing
// studies.
func Simulate(c *cst.CST, o order.Order, opts Options) (Result, error) {
	cfg := opts.Config
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if err := o.Validate(c.Tree); err != nil {
		return Result{}, fmt.Errorf("core: %v", err)
	}
	run := &runState{
		c:       c,
		o:       o,
		opts:    opts,
		pos:     o.PositionOf(),
		counter: fpgasim.NewCounter(),
		timing:  newTiming(opts.Variant, cfg, c.MaxCandDegree()),
	}
	run.prepare()

	var loadCycles int64
	if opts.Variant != VariantDRAM {
		loadCycles = cfg.LoadCycles(c.SizeBytes())
		run.counter.Add("load", loadCycles)
	}
	sim := &streamSim{runState: run}
	for {
		if run.cancelled() {
			run.stopped = true
			break
		}
		d := run.deepestLevel()
		if d < 0 {
			break
		}
		sim.simulateRound(d)
		if run.stopped {
			break
		}
	}
	flushCycles := cfg.LoadCycles(run.count * int64(len(o)) * 4)
	run.counter.Add("flush", flushCycles)

	res := Result{
		Count:           run.count,
		Embeddings:      run.collected,
		Cycles:          run.counter.Total(),
		LoadCycles:      loadCycles,
		FlushCycles:     flushCycles,
		Rounds:          run.rounds,
		Partials:        run.partials,
		EdgeTasks:       run.edgeTasks,
		Pops:            run.pops,
		Stopped:         run.stopped,
		BufferHighWater: run.highWater,
		PerModule:       run.counter.PerModule(),
	}
	res.Duration = cfg.CyclesToDuration(res.Cycles)
	return res, nil
}

// poItem is one expanded partial result travelling through the pipeline.
// edge starts true (conjunction identity over its tn tasks).
type poItem struct {
	parent      *partial
	ci          cst.CandIndex
	visitedOK   bool
	visitedDone bool
	edgeOK      bool
	edgeLeft    int
}

// tnTask is one edge-validation task (Algorithm 7's (v, vn, i) triple); k
// indexes the round's check list, so the validator probes the hoisted
// adjacency checkAdj[d][k] directly.
type tnTask struct {
	item *poItem
	k    int
}

// stage is a pipelined unit: it accepts one input every II cycles and makes
// the result visible depth cycles later.
type stage struct {
	ii, depth int64
	nextFree  int64
}

func (s *stage) canAccept(now int64) bool { return now >= s.nextFree }

func (s *stage) accept(now int64) int64 {
	s.nextFree = now + s.ii
	return now + s.depth
}

// delayed is a completion event emerging from a stage's pipeline.
type delayed[T any] struct {
	at   int64
	item T
}

// delayLine holds in-flight items ordered by completion time (entries are
// appended with monotonically non-decreasing timestamps).
type delayLine[T any] struct{ q []delayed[T] }

func (d *delayLine[T]) push(at int64, item T) { d.q = append(d.q, delayed[T]{at, item}) }

func (d *delayLine[T]) pop(now int64) (T, bool) {
	if len(d.q) == 0 || d.q[0].at > now {
		var zero T
		return zero, false
	}
	it := d.q[0].item
	d.q = d.q[1:]
	return it, true
}

func (d *delayLine[T]) empty() bool { return len(d.q) == 0 }

// streamSim steps one round's dataflow cycle by cycle.
type streamSim struct {
	*runState
}

func (r *streamSim) simulateRound(d int) {
	cfg := r.opts.Config
	u := r.o[d]
	complete := d+1 == len(r.o)
	checkList := r.checks[d]
	level := r.levels[d]

	// Phase A (functional): pop exactly what Run's round pops, honouring
	// the No budget and the resume cursor, so the buffer evolves
	// identically.
	var (
		pending []*poItem
		pops    int64
		nPo     int64
	)
	budget := int64(cfg.No)
	i := 0
	for i < len(level) && nPo < budget {
		p := &level[i]
		cands := r.candidatesOf(d, p)
		avail := cands[p.cur:]
		pops++
		space := budget - nPo
		take := int64(len(avail))
		resumed := take > space
		if resumed {
			take = space
		}
		// Copy the parent mapping: the level slice is compacted below,
		// which would otherwise overwrite the storage these items read
		// during the timed phase.
		parent := &partial{
			m:  append([]cst.CandIndex(nil), p.m...),
			mv: append([]graph.VertexID(nil), p.mv...),
		}
		for _, ci := range avail[:take] {
			pending = append(pending, &poItem{parent: parent, ci: ci, edgeOK: true, edgeLeft: len(checkList)})
		}
		nPo += take
		if resumed {
			p.cur += int32(take)
			break
		}
		i++
	}
	r.levels[d] = append(level[:0], level[i:]...)

	// Phase B (timed): stream the items through the six-stage pipeline.
	serial := r.opts.Variant == VariantDRAM || r.opts.Variant == VariantBasic
	taskVariant := r.opts.Variant == VariantTask

	rd := &stage{ii: 1, depth: r.timing.read.Depth}
	gen := &stage{ii: r.timing.gen.II, depth: r.timing.gen.Depth}
	vis := &stage{ii: 1, depth: r.timing.visited.Depth}
	tng := &stage{ii: 1, depth: r.timing.tnGen.Depth}
	edg := &stage{ii: r.timing.edge.II, depth: r.timing.edge.Depth}
	syn := &stage{ii: 1, depth: r.timing.collect.Depth}

	// tv / tn / sync are true hardware FIFOs (bounded except in the serial
	// variants, which buffer through BRAM arrays instead); tnIn models the
	// Po staging buffer in BRAM, which is sized for the whole round.
	cap := cfg.FIFODepth
	if serial {
		cap = 1 << 30
	}
	tvFIFO := fpgasim.NewFIFO[*poItem]("tv", 0)
	tnInFIFO := fpgasim.NewFIFO[*poItem]("tn-in", 0)
	tnFIFO := fpgasim.NewFIFO[tnTask]("tn", 0)
	syFIFO := fpgasim.NewFIFO[*poItem]("sync", 0)

	var rdOut delayLine[*poItem]
	var genOut delayLine[*poItem]
	var visOut delayLine[*poItem]
	var tngOut delayLine[tnTask]
	var edgOut delayLine[tnTask]
	var synOut delayLine[*poItem]

	var nextLv []partial
	if !complete {
		nextLv = r.levels[d+1][:0]
	}
	retire := func(it *poItem) {
		if !it.visitedOK || !it.edgeOK {
			return
		}
		if complete {
			// The timed pipeline still drains its in-flight items after a
			// refusal; they are simply no longer counted or stored.
			if r.stopped || !r.takeOne() {
				return
			}
			r.count++
			if r.opts.Collect || r.opts.Emit != nil {
				e := make(graph.Embedding, len(r.o))
				for pos2, w := range it.parent.mv {
					e[r.o[pos2]] = w
				}
				e[u] = r.candAt[d][it.ci]
				if r.opts.Collect {
					r.collected = append(r.collected, e)
				}
				if r.opts.Emit != nil {
					r.opts.Emit(e)
				}
			}
			return
		}
		m, mv := r.mapSlot(d+1, len(nextLv))
		copy(m, it.parent.m)
		copy(mv, it.parent.mv)
		m[d] = it.ci
		mv[d] = r.candAt[d][it.ci]
		nextLv = append(nextLv, partial{m: m, mv: mv})
	}
	// ready enqueues an item for the Synchronizer once both verdicts are in.
	ready := func(it *poItem) {
		if it.visitedDone && it.edgeLeft == 0 {
			must(syFIFO.Push(it))
		}
	}

	readIdx, genIdx, retired := 0, 0, 0
	var nTn int64
	now := int64(0)
	for retired < len(pending) {
		// Buffer read: fetch the next pending item's parent state (L1).
		if readIdx < len(pending) && rd.canAccept(now) {
			rdOut.push(rd.accept(now), pending[readIdx])
			readIdx++
		}
		// Generator: issue the next read item when its output FIFOs have
		// room (backpressure); serial variants wait for the read loop to
		// drain first.
		genGate := !serial || readIdx == len(pending)
		if genGate && len(rdOut.q) > 0 && rdOut.q[0].at <= now &&
			gen.canAccept(now) && tvFIFO.Len() < cap {
			it := rdOut.q[0].item
			rdOut.q = rdOut.q[1:]
			genOut.push(gen.accept(now), it)
			genIdx++
		}
		if it, ok := genOut.pop(now); ok {
			must(tvFIFO.Push(it))
			must(tnInFIFO.Push(it))
		}

		// Visited Validator: gated behind the Generator in the serial
		// variants (no FIFO decoupling there).
		if !serial || genIdx == len(pending) {
			if it, ok := tvFIFO.Peek(); ok && vis.canAccept(now) {
				tvFIFO.Pop()
				visOut.push(vis.accept(now), it)
			}
		}
		if it, ok := visOut.pop(now); ok {
			it.visitedOK = true
			v := r.candAt[d][it.ci]
			for _, w := range it.parent.mv {
				if w == v {
					it.visitedOK = false
					break
				}
			}
			it.visitedDone = true
			ready(it)
		}

		// tn Generator: in SEP it runs concurrently with the po generator
		// (it has its own copy of the stream); in TASK and the serial
		// variants it is the Generator's second loop, so it starts only
		// after po generation drains.
		tnGateOpen := !taskVariant && !serial || genIdx == len(pending)
		if tnGateOpen {
			if it, ok := tnInFIFO.Peek(); ok {
				if len(checkList) == 0 {
					tnInFIFO.Pop() // nothing to validate; join via visited path
				} else if tng.canAccept(now) && tnFIFO.Len()+len(checkList) <= cap {
					tnInFIFO.Pop()
					at := tng.accept(now)
					for k := range checkList {
						nTn++
						tngOut.push(at, tnTask{item: it, k: k})
					}
				}
			}
		}
		if t, ok := tngOut.pop(now); ok {
			must(tnFIFO.Push(t))
		}

		// Edge Validator: II > 1 (port-budget overflow or DRAM residence)
		// makes it the bottleneck and exercises FIFO backpressure.
		if !serial || genIdx == len(pending) {
			if t, ok := tnFIFO.Peek(); ok && edg.canAccept(now) {
				tnFIFO.Pop()
				edgOut.push(edg.accept(now), t)
			}
		}
		if t, ok := edgOut.pop(now); ok {
			it := t.item
			if !r.checkAdj[d][t.k].Has(it.ci, it.parent.m[r.checkPos[d][t.k]]) {
				it.edgeOK = false
			}
			it.edgeLeft--
			ready(it)
		}

		// Synchronizer.
		if it, ok := syFIFO.Peek(); ok && syn.canAccept(now) {
			syFIFO.Pop()
			synOut.push(syn.accept(now), it)
		}
		if it, ok := synOut.pop(now); ok {
			retire(it)
			retired++
		}
		if retired < len(pending) {
			now++
		}
	}

	if !complete {
		r.levels[d+1] = nextLv
	}
	r.rounds++
	r.partials += nPo
	r.edgeTasks += nTn
	r.pops += pops
	r.counter.Add("stream", now+cfg.RoundOverhead)
	if hw := r.resident(); hw > r.highWater {
		r.highWater = hw
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
