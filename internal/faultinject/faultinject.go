// Package faultinject is a deterministic, seedable fault injector for the
// simulated CPU–FPGA pipeline. Sites — named call points such as one
// device's DRAM staging or the kernel launch — evaluate the injector on
// every call; rules decide, purely from the seed and the per-site call
// sequence, whether that call fails and how: a transient error the caller
// may retry, a one-shot device death, a worker panic, or a latency spike.
//
// Determinism is the point: the same seed and rule set against the same call
// sequence injects the same faults, so a chaos run that trips a bug replays
// byte-identically under -race or a debugger. A nil *Injector is inert and
// evaluates to "no fault" everywhere, which keeps the fault-free pipeline
// free of conditionals at the call sites.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ErrInjected is the default error carried by a Transient outcome; injected
// failures wrap it, so errors.Is(err, ErrInjected) identifies synthetic
// faults regardless of the site message.
var ErrInjected = errors.New("faultinject: injected fault")

// Kind classifies what a matched rule does to the call.
type Kind int

const (
	// Transient fails the call with a retryable error; the device or kernel
	// is healthy again on the next attempt.
	Transient Kind = iota
	// Death permanently fails the component behind the site — a device
	// evaluating it marks itself failed and every later call on it fails.
	Death
	// Panic makes the call site panic, modelling a crashed worker; the
	// host's recover barriers must convert it into a typed error.
	Panic
)

// String names the kind for messages and specs.
func (k Kind) String() string {
	switch k {
	case Transient:
		return "transient"
	case Death:
		return "death"
	case Panic:
		return "panic"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Well-known sites. Device staging sites are per card (SiteDeviceStage);
// the kernel and CPU-enumeration sites are shared by all workers, so their
// call counters advance in submission order under a sequential pipeline and
// in an interleaved (but still seed-deterministic per count) order under a
// parallel one.
const (
	// SiteKernel is evaluated once per kernel launch, before the kernel
	// does any work — an injected failure there never double-emits on
	// retry, because no embedding was produced yet.
	SiteKernel = "kernel"
	// SiteEnumerate is evaluated once per CPU δ-share partition drain.
	SiteEnumerate = "cpu/enumerate"
)

// SiteDeviceStage names card id's DRAM staging site.
func SiteDeviceStage(id int) string { return fmt.Sprintf("device%d/stage", id) }

// Rule is one fault schedule bound to a site. Trigger conditions (Nth,
// EveryNth, Rate) are OR-ed; a rule with none set never fires. The first
// matching rule per call wins.
type Rule struct {
	// Site this rule applies to (exact match).
	Site string
	// Kind of fault injected on a match.
	Kind Kind
	// Nth fires on these 1-based call numbers at the site.
	Nth []int64
	// EveryNth fires on every multiple of this call number (> 0).
	EveryNth int64
	// Rate fires with this probability per call, drawn from the rule's own
	// seed-derived stream (so two rules at one site stay independent).
	Rate float64
	// Once limits the rule to a single firing — the natural shape for a
	// Death schedule.
	Once bool
	// Delay is added to the modelled call latency on a match (and also on
	// its own, with Kind Transient and Err nil left zero: a pure latency
	// spike is a matched rule whose outcome carries only Delay — callers
	// treat a zero-Err Transient outcome with a Delay as slow, not failed).
	Delay time.Duration
	// Err overrides the transient error returned (default wraps
	// ErrInjected).
	Err error
}

// Outcome is one site evaluation's verdict.
type Outcome struct {
	// Fault is set when a rule matched and carries a failure (Transient
	// with an error, Death, or Panic). A pure latency spike has Fault false
	// and Delay set.
	Fault bool
	Kind  Kind
	// Delay is modelled extra latency, independent of Fault.
	Delay time.Duration
	err   error
	site  string
}

// Error returns the transient error for a faulted outcome.
func (o Outcome) Error() error {
	if !o.Fault {
		return nil
	}
	if o.err != nil {
		return o.err
	}
	return fmt.Errorf("faultinject: site %s: %w", o.site, ErrInjected)
}

// Injector evaluates rules against per-site call counters. Safe for
// concurrent use; a nil Injector is valid and always returns the zero
// Outcome.
type Injector struct {
	mu     sync.Mutex
	counts map[string]int64
	rules  []*ruleState
	// evals counts total evaluations; faults counts matched firings.
	evals, faults int64
}

type ruleState struct {
	Rule
	rng   *rand.Rand
	fired bool
}

// New builds an Injector from a seed and rules. Each rule draws its Rate
// stream from a generator seeded by (seed, rule index), so adding a rule
// never perturbs another rule's schedule.
func New(seed int64, rules ...Rule) *Injector {
	in := &Injector{counts: make(map[string]int64)}
	for i, r := range rules {
		in.rules = append(in.rules, &ruleState{
			Rule: r,
			rng:  rand.New(rand.NewSource(seed ^ (int64(i+1) * 0x517cc1b727220a95))),
		})
	}
	return in
}

// Eval advances site's call counter and returns the first matching rule's
// outcome, or the zero Outcome. A matched DelayOnly rule (Transient kind,
// nil Err, Delay set) is a pure latency spike: the outcome carries the
// Delay with Fault false, so the call runs slow but succeeds. To inject a
// failing transient that is also slow, set Err (ErrInjected works) alongside
// Delay.
func (in *Injector) Eval(site string) Outcome {
	if in == nil {
		return Outcome{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.evals++
	in.counts[site]++
	n := in.counts[site]
	for _, r := range in.rules {
		if r.Site != site || (r.Once && r.fired) {
			continue
		}
		if !r.matches(n) {
			continue
		}
		r.fired = true
		in.faults++
		out := Outcome{Kind: r.Kind, Delay: r.Delay, err: r.Err, site: site}
		if r.DelayOnly() {
			// Latency spike: slow, not failed.
			in.faults--
			return out
		}
		out.Fault = true
		return out
	}
	return Outcome{}
}

// matches applies the rule's trigger conditions to call number n.
func (r *ruleState) matches(n int64) bool {
	for _, k := range r.Nth {
		if k == n {
			return true
		}
	}
	if r.EveryNth > 0 && n%r.EveryNth == 0 {
		return true
	}
	if r.Rate > 0 && r.rng.Float64() < r.Rate {
		return true
	}
	return false
}

// DelayOnly reports whether the rule is a pure latency spike: it carries a
// Delay, injects no error of its own, and asks for the benign Transient
// kind — the call slows down but succeeds.
func (r Rule) DelayOnly() bool {
	return r.Delay > 0 && r.Kind == Transient && r.Err == nil
}

// Stats reports total evaluations and fault firings, for reports and tests.
func (in *Injector) Stats() (evals, faults int64) {
	if in == nil {
		return 0, 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.evals, in.faults
}

// Count returns site's current call count (how many Evals it has seen).
func (in *Injector) Count(site string) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts[site]
}
