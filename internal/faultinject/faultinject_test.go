package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	for i := 0; i < 3; i++ {
		if out := in.Eval(SiteKernel); out.Fault || out.Delay != 0 {
			t.Fatalf("nil injector produced outcome %+v", out)
		}
	}
	if e, f := in.Stats(); e != 0 || f != 0 {
		t.Fatalf("nil injector stats = %d, %d", e, f)
	}
}

func TestFailNth(t *testing.T) {
	in := New(1, Rule{Site: SiteKernel, Kind: Transient, Nth: []int64{2, 5}})
	var failed []int64
	for i := int64(1); i <= 6; i++ {
		if out := in.Eval(SiteKernel); out.Fault {
			failed = append(failed, i)
			if !errors.Is(out.Error(), ErrInjected) {
				t.Fatalf("call %d: error %v does not wrap ErrInjected", i, out.Error())
			}
		}
	}
	if len(failed) != 2 || failed[0] != 2 || failed[1] != 5 {
		t.Fatalf("fail-Nth fired on calls %v, want [2 5]", failed)
	}
}

func TestEveryNthIsPerSite(t *testing.T) {
	in := New(1, Rule{Site: SiteDeviceStage(0), Kind: Transient, EveryNth: 3})
	for i := 1; i <= 9; i++ {
		dev0 := in.Eval(SiteDeviceStage(0)).Fault
		dev1 := in.Eval(SiteDeviceStage(1)).Fault
		if dev0 != (i%3 == 0) {
			t.Fatalf("device0 call %d: fault=%v", i, dev0)
		}
		if dev1 {
			t.Fatalf("device1 call %d faulted under a device0 rule", i)
		}
	}
}

func TestOnceFiresOnce(t *testing.T) {
	in := New(1, Rule{Site: SiteKernel, Kind: Death, EveryNth: 1, Once: true})
	if out := in.Eval(SiteKernel); !out.Fault || out.Kind != Death {
		t.Fatalf("first call: outcome %+v, want a Death fault", out)
	}
	for i := 0; i < 5; i++ {
		if in.Eval(SiteKernel).Fault {
			t.Fatal("Once rule fired twice")
		}
	}
}

func TestRateIsDeterministicPerSeed(t *testing.T) {
	schedule := func(seed int64) []bool {
		in := New(seed, Rule{Site: SiteEnumerate, Kind: Transient, Rate: 0.3})
		out := make([]bool, 64)
		for i := range out {
			out[i] = in.Eval(SiteEnumerate).Fault
		}
		return out
	}
	a, b := schedule(42), schedule(42)
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different schedule at call %d", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("rate 0.3 fired %d/%d times; schedule degenerate", fired, len(a))
	}
	c := schedule(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical rate schedules")
	}
}

func TestDelayOnlyIsSlowNotFailed(t *testing.T) {
	in := New(1, Rule{Site: SiteKernel, Kind: Transient, EveryNth: 2, Delay: 5 * time.Millisecond})
	first, second := in.Eval(SiteKernel), in.Eval(SiteKernel)
	if first.Fault || first.Delay != 0 {
		t.Fatalf("call 1: outcome %+v, want clean", first)
	}
	if second.Fault {
		t.Fatal("latency spike reported as a fault")
	}
	if second.Delay != 5*time.Millisecond {
		t.Fatalf("call 2 delay = %v, want 5ms", second.Delay)
	}
	if second.Error() != nil {
		t.Fatalf("latency spike carries error %v", second.Error())
	}
	if _, faults := in.Stats(); faults != 0 {
		t.Fatalf("latency spikes counted as faults: %d", faults)
	}
}

func TestCustomErrAndStats(t *testing.T) {
	boom := errors.New("boom")
	in := New(1, Rule{Site: SiteKernel, Kind: Transient, Nth: []int64{1}, Err: boom})
	out := in.Eval(SiteKernel)
	if !errors.Is(out.Error(), boom) {
		t.Fatalf("error %v, want boom", out.Error())
	}
	in.Eval(SiteKernel)
	if evals, faults := in.Stats(); evals != 2 || faults != 1 {
		t.Fatalf("stats = %d evals, %d faults; want 2, 1", evals, faults)
	}
	if n := in.Count(SiteKernel); n != 2 {
		t.Fatalf("site count = %d, want 2", n)
	}
}

func TestFirstMatchingRuleWins(t *testing.T) {
	in := New(1,
		Rule{Site: SiteKernel, Kind: Transient, Nth: []int64{3}},
		Rule{Site: SiteKernel, Kind: Death, Nth: []int64{3}},
	)
	in.Eval(SiteKernel)
	in.Eval(SiteKernel)
	if out := in.Eval(SiteKernel); !out.Fault || out.Kind != Transient {
		t.Fatalf("outcome %+v, want the first rule's Transient", out)
	}
}
