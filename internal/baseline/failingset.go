package baseline

import (
	"fastmatch/graph"
)

// DAFFS is the DAF-like baseline with failing-set pruning, the third pillar
// of the original DAF (Han et al., SIGMOD 2019) alongside the candidate
// space and adaptive ordering. A failing set summarises which query
// vertices were responsible for a subtree's failure; when the vertex
// matched at the current depth is not in the combined failing set of its
// children, trying its remaining candidates cannot help, so the whole
// sibling range is skipped and the failing set propagates upward unchanged.
//
// This implementation uses the same CS-style index as DAF but a static
// connected order (failing sets need a fixed ancestor relation to reason
// about responsibility).
func DAFFS(q *graph.Query, g *graph.Graph, opts Options) (Result, error) {
	idx := buildTreeIndex(q, g, true, opts)
	if idx.empty() {
		return Result{PeakMemory: idx.peak}, nil
	}
	n := q.NumVertices()
	candCount := make([]int, n)
	for u := 0; u < n; u++ {
		candCount[u] = len(idx.cands[u])
	}
	o := connectedOrder(q, candCount)
	pos := make([]int, n)
	for i, u := range o {
		pos[u] = i
	}
	earlier := make([][]graph.QueryVertex, n)
	for i, u := range o {
		for _, w := range q.Neighbors(u) {
			if pos[w] < i {
				earlier[i] = append(earlier[i], w)
			}
		}
	}

	col := &collector{opts: opts}
	mapping := make(graph.Embedding, n)
	// usedBy[v] records which query vertex currently occupies data vertex
	// v, so visited conflicts can name the culprit for the failing set.
	usedBy := make(map[graph.VertexID]graph.QueryVertex, n)
	dl := newDeadline(opts)
	timedOut := false

	// vset is a bitset over query vertices (n ≤ 64 always holds for
	// subgraph queries).
	type vset uint64
	full := vset(0)
	for u := 0; u < n; u++ {
		full |= 1 << u
	}

	// rec returns (failingSet, keepGoing). A subtree containing matches
	// returns the full set, which no ancestor can prune on.
	//
	// Soundness invariant: a returned failing set F (≠ full) contains only
	// vertices matched strictly before this depth, and the subtree fails
	// for *any* extension as long as the assignments of F are unchanged.
	// It is maintained by (a) pinning the candidate pool — the matched
	// query neighbours that define it are always included — so every
	// per-candidate failure reason replays, and (b) stripping u's own bit
	// from child reasons (u's value is pinned per pool member during the
	// replay). The prune rule: when a child's failing set omits the
	// current vertex, the child's failure is independent of its value, so
	// the remaining candidates are skipped wholesale.
	var rec func(depth int) (vset, bool)
	rec = func(depth int) (vset, bool) {
		if dl.expired() {
			timedOut = true
			return full, false
		}
		if depth == n {
			return full, col.add(mapping)
		}
		u := o[depth]
		uBit := vset(1) << u
		poolDef := vset(0) // the matched neighbours that define u's pool
		for _, w := range earlier[depth] {
			poolDef |= 1 << w
		}
		var pool []graph.VertexID
		if depth == 0 {
			pool = idx.cands[u]
		} else {
			lists := make([][]graph.VertexID, 0, len(earlier[depth]))
			for _, w := range earlier[depth] {
				lists = append(lists, idx.neighborsOf(w, u, mapping[w]))
			}
			pool = intersectSorted(nil, lists...)
		}
		if len(pool) == 0 {
			return poolDef, true
		}
		combined := poolDef
		matched := false
		for _, v := range pool {
			if occupant, clash := usedBy[v]; clash {
				// Visited conflict: the occupant's assignment blocks v.
				combined |= 1 << occupant
				continue
			}
			mapping[u] = v
			usedBy[v] = u
			fs, ok := rec(depth + 1)
			delete(usedBy, v)
			if !ok {
				return full, false
			}
			if fs == full {
				matched = true
				continue
			}
			if fs&uBit == 0 {
				// The child failed for reasons independent of u's value:
				// every remaining candidate fails identically. fs is a
				// valid failing set for this whole node (any pool change
				// caused by vertices outside fs is irrelevant — all
				// candidates hit the same child failure).
				if matched {
					return full, true
				}
				return fs, true
			}
			combined |= fs &^ uBit
		}
		if matched {
			return full, true
		}
		return combined, true
	}
	rec(0)
	if timedOut {
		return col.result(idx.peak), ErrTimeout
	}
	return col.result(idx.peak), nil
}
