package baseline

import (
	"runtime"
	"sync"

	"fastmatch/graph"
)

// The two GPU-style baselines materialise full intermediate result tables
// the way GpSM and GSI do on a GPU, and run table steps with goroutine
// data parallelism standing in for CUDA thread blocks. Their defining
// failure mode — running out of device memory on large inputs (Fig. 14's
// OOM entries) — is reproduced via Options.MemoryBudget.

// table is a flat row-major intermediate relation: every row maps the
// query vertices in cols (in order) to data vertices.
type table struct {
	cols []graph.QueryVertex
	rows []graph.VertexID // len = numRows * len(cols)
}

func (t *table) numRows() int {
	if len(t.cols) == 0 {
		return 0
	}
	return len(t.rows) / len(t.cols)
}

func (t *table) row(i int) []graph.VertexID {
	w := len(t.cols)
	return t.rows[i*w : (i+1)*w]
}

func (t *table) bytes() int64 { return int64(len(t.rows)) * 4 }

func (t *table) colOf(u graph.QueryVertex) int {
	for i, c := range t.cols {
		if c == u {
			return i
		}
	}
	return -1
}

// parallelRows fans rows out over workers and concatenates their outputs in
// deterministic chunk order.
func parallelRows(numRows, width int, produce func(lo, hi int, out *[]graph.VertexID)) []graph.VertexID {
	workers := runtime.GOMAXPROCS(0)
	if workers > numRows {
		workers = numRows
	}
	if workers <= 1 {
		var out []graph.VertexID
		produce(0, numRows, &out)
		return out
	}
	chunks := make([][]graph.VertexID, workers)
	var wg sync.WaitGroup
	per := (numRows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*per, (w+1)*per
		if hi > numRows {
			hi = numRows
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			produce(lo, hi, &chunks[w])
		}(w, lo, hi)
	}
	wg.Wait()
	var total int
	for _, c := range chunks {
		total += len(c)
	}
	out := make([]graph.VertexID, 0, total)
	for _, c := range chunks {
		out = append(out, c...)
	}
	return out
}

// GpSM is the GpSM-like baseline: collect candidate *edges* for every query
// edge, then assemble embeddings with a sequence of binary joins over a
// connected query-edge order, materialising each intermediate relation in
// full. High memory traffic and join-size blow-ups are inherent to the
// strategy, which is why it OOMs first in the paper's comparison.
func GpSM(q *graph.Query, g *graph.Graph, opts Options) (Result, error) {
	n := q.NumVertices()
	cands := make([][]graph.VertexID, n)
	candSet := make([]map[graph.VertexID]bool, n)
	var peak int64
	for u := 0; u < n; u++ {
		cands[u] = candidateFilter(q, g, u, opts)
		if len(cands[u]) == 0 {
			return Result{}, nil
		}
		candSet[u] = make(map[graph.VertexID]bool, len(cands[u]))
		for _, v := range cands[u] {
			candSet[u][v] = true
		}
		peak += int64(len(cands[u])) * 4
	}

	// Connected query-edge order: each joined edge shares an endpoint with
	// the covered prefix.
	type qedge struct{ a, b graph.QueryVertex }
	var edges []qedge
	for u := 0; u < n; u++ {
		for _, w := range q.Neighbors(u) {
			if u < w {
				edges = append(edges, qedge{u, w})
			}
		}
	}
	if len(edges) == 0 { // single-vertex query: the relation is C(u0)
		cur := &table{cols: []graph.QueryVertex{0}, rows: cands[0]}
		return tableResult(cur, n, opts, peak)
	}
	ordered := make([]qedge, 0, len(edges))
	covered := make([]bool, n)
	pickedEdge := make([]bool, len(edges))
	// Seed with the edge whose candidate-edge count is smallest (estimated
	// by endpoint candidate product).
	best := 0
	for i, e := range edges {
		if len(cands[e.a])*len(cands[e.b]) < len(cands[edges[best].a])*len(cands[edges[best].b]) {
			best = i
		}
	}
	ordered = append(ordered, edges[best])
	pickedEdge[best] = true
	covered[edges[best].a], covered[edges[best].b] = true, true
	for len(ordered) < len(edges) {
		pick := -1
		for i, e := range edges {
			if pickedEdge[i] || (!covered[e.a] && !covered[e.b]) {
				continue
			}
			if pick == -1 {
				pick = i
			}
		}
		ordered = append(ordered, edges[pick])
		pickedEdge[pick] = true
		covered[edges[pick].a], covered[edges[pick].b] = true, true
	}

	// Initial relation: candidate edges of the first query edge.
	first := ordered[0]
	cur := &table{cols: []graph.QueryVertex{first.a, first.b}}
	for _, v := range cands[first.a] {
		for _, w := range g.Neighbors(v) {
			if candSet[first.b][w] && v != w {
				cur.rows = append(cur.rows, v, w)
			}
		}
	}
	if cur.bytes() > peak {
		peak = cur.bytes()
	}
	if err := checkBudget(opts, cur.bytes()); err != nil {
		return Result{PeakMemory: peak}, err
	}

	dl := newDeadline(opts)
	for _, e := range ordered[1:] {
		if dl.expiredNow() {
			return Result{PeakMemory: peak}, ErrTimeout
		}
		ca, cb := cur.colOf(e.a), cur.colOf(e.b)
		switch {
		case ca >= 0 && cb >= 0:
			// Both endpoints bound: semi-join filter.
			width := len(cur.cols)
			rows := parallelRows(cur.numRows(), width, func(lo, hi int, out *[]graph.VertexID) {
				for i := lo; i < hi; i++ {
					r := cur.row(i)
					if g.HasEdge(r[ca], r[cb]) {
						*out = append(*out, r...)
					}
				}
			})
			cur = &table{cols: cur.cols, rows: rows}
		default:
			// One endpoint bound: expand with the candidate edges of e.
			bound, free := e.a, e.b
			if ca < 0 {
				bound, free = e.b, e.a
			}
			bc := cur.colOf(bound)
			width := len(cur.cols)
			rows := parallelRows(cur.numRows(), width+1, func(lo, hi int, out *[]graph.VertexID) {
				for i := lo; i < hi; i++ {
					r := cur.row(i)
				next:
					for _, w := range g.Neighbors(r[bc]) {
						if !candSet[free][w] {
							continue
						}
						for _, x := range r { // injectivity
							if x == w {
								continue next
							}
						}
						*out = append(*out, r...)
						*out = append(*out, w)
					}
				}
			})
			cur = &table{cols: append(append([]graph.QueryVertex(nil), cur.cols...), free), rows: rows}
		}
		if cur.bytes() > peak {
			peak = cur.bytes()
		}
		if err := checkBudget(opts, cur.bytes()); err != nil {
			return Result{PeakMemory: peak}, err
		}
		if cur.numRows() == 0 {
			return Result{PeakMemory: peak}, nil
		}
	}
	return tableResult(cur, n, opts, peak)
}

// tableResult converts a final relation into a Result, reordering columns
// into query-vertex order.
func tableResult(cur *table, n int, opts Options, peak int64) (Result, error) {
	col := &collector{opts: opts}
	perm := make([]int, n)
	for u := 0; u < n; u++ {
		perm[u] = cur.colOf(u)
	}
	e := make(graph.Embedding, n)
	for i := 0; i < cur.numRows(); i++ {
		r := cur.row(i)
		for u := 0; u < n; u++ {
			e[u] = r[perm[u]]
		}
		if !col.add(e) {
			break
		}
	}
	return col.result(peak), nil
}

// GSI is the GSI-like baseline: vertex-extending joins with GSI's
// Prealloc-Combine discipline — for each extension step a first parallel
// pass counts every row's output size, a prefix sum pre-allocates the exact
// output table, and a second parallel pass writes without conflicts. Joining
// candidate *vertices* rather than edges keeps intermediate tables smaller
// than GpSM's, matching the paper's observation that GSI still OOMs earlier
// than CPU baselines but handles more than GpSM on some inputs (memory cost
// of preallocation included).
func GSI(q *graph.Query, g *graph.Graph, opts Options) (Result, error) {
	n := q.NumVertices()
	cands := make([][]graph.VertexID, n)
	candSet := make([]map[graph.VertexID]bool, n)
	candCount := make([]int, n)
	var peak int64
	for u := 0; u < n; u++ {
		cands[u] = candidateFilter(q, g, u, opts)
		if len(cands[u]) == 0 {
			return Result{}, nil
		}
		candSet[u] = make(map[graph.VertexID]bool, len(cands[u]))
		for _, v := range cands[u] {
			candSet[u][v] = true
		}
		candCount[u] = len(cands[u])
		peak += int64(len(cands[u])) * 4
	}
	o := connectedOrder(q, candCount)

	cur := &table{cols: []graph.QueryVertex{o[0]}, rows: append([]graph.VertexID(nil), cands[o[0]]...)}
	if cur.bytes() > peak {
		peak = cur.bytes()
	}
	dl := newDeadline(opts)
	for _, u := range o[1:] {
		if dl.expiredNow() {
			return Result{PeakMemory: peak}, ErrTimeout
		}
		width := len(cur.cols)
		// Matched neighbours of u and their columns.
		var nbrCols []int
		for _, w := range q.Neighbors(u) {
			if c := cur.colOf(w); c >= 0 {
				nbrCols = append(nbrCols, c)
			}
		}
		pivot := nbrCols[0]

		extend := func(r []graph.VertexID, emitFn func(graph.VertexID)) {
		next:
			for _, w := range g.Neighbors(r[pivot]) {
				if !candSet[u][w] {
					continue
				}
				for _, c := range nbrCols[1:] {
					if !g.HasEdge(r[c], w) {
						continue next
					}
				}
				for _, x := range r {
					if x == w {
						continue next
					}
				}
				emitFn(w)
			}
		}

		// Pass 1 (prealloc): count each row's extensions in parallel.
		numRows := cur.numRows()
		counts := make([]int64, numRows+1)
		parallelRows(numRows, 0, func(lo, hi int, _ *[]graph.VertexID) {
			for i := lo; i < hi; i++ {
				var c int64
				extend(cur.row(i), func(graph.VertexID) { c++ })
				counts[i+1] = c
			}
		})
		for i := 1; i <= numRows; i++ {
			counts[i] += counts[i-1]
		}
		outRows := counts[numRows]
		outBytes := outRows * int64(width+1) * 4
		if cur.bytes()+outBytes > peak {
			peak = cur.bytes() + outBytes
		}
		// Prealloc itself is what OOMs on the GPU: both tables are live.
		if err := checkBudget(opts, cur.bytes()+outBytes); err != nil {
			return Result{PeakMemory: peak}, err
		}
		// Pass 2 (combine): conflict-free parallel writes at prefix-sum
		// offsets.
		out := make([]graph.VertexID, outRows*int64(width+1))
		parallelRows(numRows, 0, func(lo, hi int, _ *[]graph.VertexID) {
			for i := lo; i < hi; i++ {
				off := counts[i] * int64(width+1)
				r := cur.row(i)
				extend(r, func(w graph.VertexID) {
					copy(out[off:], r)
					out[off+int64(width)] = w
					off += int64(width + 1)
				})
			}
		})
		cur = &table{cols: append(append([]graph.QueryVertex(nil), cur.cols...), u), rows: out}
		if cur.numRows() == 0 {
			return Result{PeakMemory: peak}, nil
		}
	}
	return tableResult(cur, n, opts, peak)
}
