// Package baseline implements the comparison algorithms of Section VII:
// a plain backtracking matcher (the ground-truth oracle), CFL-like
// (tree-indexed backtracking with pairwise edge verification), CECI-like
// (intersection-based enumeration), DAF-like (candidate space with an
// adaptive matching order), and the two GPU-style join strategies GpSM-like
// (edge-candidate binary joins) and GSI-like (vertex-extending
// Prealloc-Combine joins) under an explicit device-memory budget that
// reproduces the paper's OOM behaviour.
//
// These are from-scratch Go reimplementations of the *algorithmic families*;
// the original C++/CUDA systems are not available offline. Comparative
// shapes (who wins, how costs grow) follow from the strategies, which is
// what EXPERIMENTS.md relies on.
package baseline

import (
	"errors"
	"fmt"
	"time"

	"fastmatch/graph"
)

// ErrOOM reports that a join-based algorithm exceeded its device-memory
// budget, the failure mode GSI/GpSM exhibit on larger graphs in Fig. 14.
var ErrOOM = errors.New("baseline: device memory exceeded")

// ErrTimeout reports that a run exceeded Options.Timeout — the paper's
// "INF" entries (3-hour limit there; configurable here).
var ErrTimeout = errors.New("baseline: time limit exceeded")

// Options configures a baseline run.
type Options struct {
	// Collect materialises embeddings; otherwise only the count returns.
	Collect bool
	// Limit stops after this many embeddings when > 0.
	Limit int64
	// MemoryBudget bounds the intermediate tables of the join-based
	// algorithms (bytes); 0 means unlimited. Backtracking algorithms
	// ignore it — their footprint is one partial embedding.
	MemoryBudget int64
	// Threads is used by Parallel; individual algorithms run single
	// threaded like the paper's single-thread baselines.
	Threads int
	// AnchorVertex/AnchorSet restrict the candidate set of one query
	// vertex, which is how Parallel carves the search space into disjoint
	// shares (root-candidate partitioning). AnchorSet == nil disables it.
	AnchorVertex graph.QueryVertex
	AnchorSet    map[graph.VertexID]bool
	// Timeout aborts the run with ErrTimeout (0 = none). Checked every few
	// thousand search steps, like the wall-clock guard the paper's 3-hour
	// limit imposes on the original binaries.
	Timeout time.Duration
}

// deadline tracks a cheap, amortised timeout check.
type deadline struct {
	at    time.Time
	ticks uint32
}

func newDeadline(opts Options) *deadline {
	if opts.Timeout <= 0 {
		return &deadline{}
	}
	return &deadline{at: time.Now().Add(opts.Timeout)}
}

// expired polls the clock on the first call and then once every 4096 calls,
// so small searches still notice an already-expired deadline and large ones
// pay almost nothing.
func (d *deadline) expired() bool {
	if d.at.IsZero() {
		return false
	}
	d.ticks++
	if d.ticks&4095 != 1 {
		return false
	}
	return time.Now().After(d.at)
}

// expiredNow checks the clock immediately (between join phases).
func (d *deadline) expiredNow() bool {
	return !d.at.IsZero() && time.Now().After(d.at)
}

// Result reports a baseline run.
type Result struct {
	Count      int64
	Embeddings []graph.Embedding
	// PeakMemory estimates the largest resident intermediate state in
	// bytes (join tables for GpSM/GSI, index size for tree-based ones).
	PeakMemory int64
}

// Func is the common algorithm signature.
type Func func(q *graph.Query, g *graph.Graph, opts Options) (Result, error)

// Registry maps the paper's algorithm names to implementations.
func Registry() map[string]Func {
	return map[string]Func{
		"backtrack": Backtrack,
		"CFL":       CFL,
		"CECI":      CECI,
		"DAF":       DAF,
		"DAF-FS":    DAFFS,
		"GpSM":      GpSM,
		"GSI":       GSI,
	}
}

// collector accumulates embeddings subject to Collect/Limit and reports
// when enumeration should stop.
type collector struct {
	opts  Options
	count int64
	out   []graph.Embedding
}

func (c *collector) add(e graph.Embedding) bool {
	c.count++
	if c.opts.Collect {
		c.out = append(c.out, e.Clone())
	}
	return c.opts.Limit <= 0 || c.count < c.opts.Limit
}

func (c *collector) result(peak int64) Result {
	return Result{Count: c.count, Embeddings: c.out, PeakMemory: peak}
}

// candidateFilter returns vertices passing the label/degree/NLF filter,
// honouring any anchor restriction in opts.
func candidateFilter(q *graph.Query, g *graph.Graph, u graph.QueryVertex, opts Options) []graph.VertexID {
	nlf := q.NeighborLabelCounts(u)
	anchored := opts.AnchorSet != nil && opts.AnchorVertex == u
	var out []graph.VertexID
	for _, v := range g.VerticesWithLabel(q.Label(u)) {
		if g.Degree(v) < q.Degree(u) {
			continue
		}
		if anchored && !opts.AnchorSet[v] {
			continue
		}
		ok := true
		for l, need := range nlf {
			if g.DegreeWithLabel(v, l) < need {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, v)
		}
	}
	return out
}

// connectedOrder produces a static connected matching order starting at the
// vertex with the fewest candidates, then greedily appending the neighbour
// with the fewest candidates.
func connectedOrder(q *graph.Query, candCount []int) []graph.QueryVertex {
	n := q.NumVertices()
	used := make([]bool, n)
	o := make([]graph.QueryVertex, 0, n)
	best := 0
	for u := 1; u < n; u++ {
		if candCount[u] < candCount[best] {
			best = u
		}
	}
	o = append(o, best)
	used[best] = true
	for len(o) < n {
		pick := -1
		for u := 0; u < n; u++ {
			if used[u] {
				continue
			}
			adjacent := false
			for _, w := range q.Neighbors(u) {
				if used[w] {
					adjacent = true
					break
				}
			}
			if !adjacent {
				continue
			}
			if pick == -1 || candCount[u] < candCount[pick] {
				pick = u
			}
		}
		o = append(o, pick)
		used[pick] = true
	}
	return o
}

func checkBudget(opts Options, bytes int64) error {
	if opts.MemoryBudget > 0 && bytes > opts.MemoryBudget {
		return fmt.Errorf("%w: %d > %d bytes", ErrOOM, bytes, opts.MemoryBudget)
	}
	return nil
}
