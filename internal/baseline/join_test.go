package baseline

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"fastmatch/graph"
)

func TestTableBasics(t *testing.T) {
	tab := &table{cols: []graph.QueryVertex{2, 0}}
	tab.rows = []graph.VertexID{10, 20, 30, 40}
	if tab.numRows() != 2 {
		t.Errorf("numRows = %d", tab.numRows())
	}
	if r := tab.row(1); r[0] != 30 || r[1] != 40 {
		t.Errorf("row(1) = %v", r)
	}
	if tab.bytes() != 16 {
		t.Errorf("bytes = %d", tab.bytes())
	}
	if tab.colOf(2) != 0 || tab.colOf(0) != 1 || tab.colOf(5) != -1 {
		t.Error("colOf wrong")
	}
	empty := &table{}
	if empty.numRows() != 0 {
		t.Errorf("empty numRows = %d", empty.numRows())
	}
}

func TestParallelRowsCoversAllRows(t *testing.T) {
	check := func(n uint8) bool {
		rows := int(n)
		out := parallelRows(rows, 1, func(lo, hi int, dst *[]graph.VertexID) {
			for i := lo; i < hi; i++ {
				*dst = append(*dst, graph.VertexID(i))
			}
		})
		if len(out) != rows {
			return false
		}
		// Chunk order is deterministic, so output is the identity.
		for i, v := range out {
			if v != graph.VertexID(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestGSIPreallocExactness: the two-pass prealloc-combine must produce
// exactly as many rows as the counting pass promised — no gaps, no
// overflow. We validate indirectly: every returned embedding is valid and
// the count matches the oracle (join row corruption would break both).
func TestGSIPreallocExactness(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomUniform(graph.GenConfig{
			NumVertices: 80, NumLabels: 2, AvgDegree: 5, Seed: seed,
		})
		q := graph.RandomConnectedQuery("rq", 2+rng.Intn(3), rng.Intn(2), 2, rng)
		res, err := GSI(q, g, Options{Collect: true})
		if err != nil {
			return false
		}
		for _, e := range res.Embeddings {
			if graph.VerifyEmbedding(q, g, e) != nil {
				return false
			}
		}
		oracle, err := Backtrack(q, g, Options{})
		if err != nil {
			return false
		}
		return res.Count == oracle.Count
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestJoinTimeouts(t *testing.T) {
	g := graph.RandomUniform(graph.GenConfig{NumVertices: 600, NumLabels: 2, AvgDegree: 10, Seed: 19})
	rng := rand.New(rand.NewSource(19))
	q := graph.RandomConnectedQuery("rq", 5, 2, 2, rng)
	for _, name := range []string{"GpSM", "GSI"} {
		_, err := Registry()[name](q, g, Options{Timeout: time.Nanosecond})
		if !errors.Is(err, ErrTimeout) {
			// A fast machine might finish within timer resolution; accept
			// success only when the run genuinely beat the clock.
			if err != nil {
				t.Errorf("%s: unexpected error %v", name, err)
			}
		}
	}
}

func TestGpSMDenseQueryUsesSemiJoin(t *testing.T) {
	// A triangle query exercises the both-endpoints-bound path.
	g := graph.RandomUniform(graph.GenConfig{NumVertices: 120, NumLabels: 1, AvgDegree: 8, Seed: 23})
	q := graph.MustQuery("tri", []graph.Label{0, 0, 0},
		[][2]graph.QueryVertex{{0, 1}, {1, 2}, {0, 2}})
	gp, err := GpSM(q, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := Backtrack(q, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if gp.Count != oracle.Count {
		t.Errorf("GpSM %d vs oracle %d", gp.Count, oracle.Count)
	}
}

func TestCollectorLimit(t *testing.T) {
	c := &collector{opts: Options{Limit: 2, Collect: true}}
	e := graph.Embedding{1}
	if !c.add(e) {
		t.Error("first add stopped")
	}
	if c.add(e) {
		t.Error("limit not enforced")
	}
	if c.count != 2 || len(c.out) != 2 {
		t.Errorf("collector state: %d/%d", c.count, len(c.out))
	}
	// Collected embeddings are clones: mutating the source must not change
	// stored copies.
	e[0] = 99
	if c.out[0][0] == 99 {
		t.Error("collector stored an alias, not a clone")
	}
}
