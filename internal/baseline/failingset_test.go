package baseline

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"fastmatch/graph"
)

// TestDAFFSAgreesWithOracle: failing-set pruning must never change the
// embedding set — it only skips provably fruitless siblings.
func TestDAFFSAgreesWithOracle(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomUniform(graph.GenConfig{
			NumVertices: 60 + rng.Intn(80),
			NumLabels:   2 + rng.Intn(3),
			AvgDegree:   2 + rng.Float64()*4,
			Seed:        seed,
		})
		q := graph.RandomConnectedQuery("rq", 2+rng.Intn(4), rng.Intn(3), g.NumLabels(), rng)
		want, err := Backtrack(q, g, Options{Collect: true})
		if err != nil {
			return false
		}
		got, err := DAFFS(q, g, Options{Collect: true})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if got.Count != want.Count {
			t.Logf("seed %d: DAF-FS %d vs oracle %d", seed, got.Count, want.Count)
			return false
		}
		keys := make(map[string]bool, len(want.Embeddings))
		for _, e := range want.Embeddings {
			keys[e.Key()] = true
		}
		for _, e := range got.Embeddings {
			if !keys[e.Key()] {
				t.Logf("seed %d: extra embedding %v", seed, e)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestDAFFSPrunesIndependentFailure: the classic failing-set scenario — a
// query branch that fails for reasons independent of the currently matched
// vertex. Data: one A hub connected to many Bs, each B to many Cs, but the
// A has no D neighbour while query demands A-D. Without failing sets the
// matcher retries every (B, C) combination; with them the A-level failure
// propagates immediately. We check correctness (zero matches) and that the
// run completes fast even with a large B×C fan-out.
func TestDAFFSPrunesIndependentFailure(t *testing.T) {
	const fan = 120
	b := graph.NewBuilder(2+2*fan, 3*fan)
	a := b.AddVertex(0)
	bs := make([]graph.VertexID, fan)
	for i := range bs {
		bs[i] = b.AddVertex(1)
		b.AddEdge(a, bs[i])
	}
	for _, bb := range bs {
		for i := 0; i < 2; i++ {
			c := b.AddVertex(2)
			b.AddEdge(bb, c)
		}
	}
	// No D vertex adjacent to a at all; add one floating D so the label
	// exists (otherwise candidate filtering trivially empties).
	d := b.AddVertex(3)
	b.AddEdge(d, bs[0])
	g := b.MustBuild()

	// Query: A-B, B-C, A-D.
	q := graph.MustQuery("fsq", []graph.Label{0, 1, 2, 3},
		[][2]graph.QueryVertex{{0, 1}, {1, 2}, {0, 3}})
	res, err := DAFFS(q, g, Options{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 0 {
		t.Errorf("found %d matches of an impossible query", res.Count)
	}
	oracle, err := Backtrack(q, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if oracle.Count != 0 {
		t.Fatalf("oracle disagrees: %d", oracle.Count)
	}
}

func TestDAFFSInRegistry(t *testing.T) {
	if _, ok := Registry()["DAF-FS"]; !ok {
		t.Error("DAF-FS missing from registry")
	}
}

func TestDAFFSLimitAndTimeout(t *testing.T) {
	g := graph.RandomUniform(graph.GenConfig{NumVertices: 300, NumLabels: 2, AvgDegree: 8, Seed: 7})
	rng := rand.New(rand.NewSource(7))
	q := graph.RandomConnectedQuery("rq", 3, 1, 2, rng)
	res, err := DAFFS(q, g, Options{Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count > 3 {
		t.Errorf("Limit ignored: %d", res.Count)
	}
}
