package baseline

import (
	"fastmatch/graph"
)

// Backtrack is the classical Ullmann-style backtracking matcher: a static
// connected matching order, label/degree candidate filtering, and pairwise
// edge verification against the data graph for every earlier query
// neighbour. No auxiliary structure beyond per-vertex candidate lists. It
// doubles as the ground-truth oracle for every other engine in the module.
func Backtrack(q *graph.Query, g *graph.Graph, opts Options) (Result, error) {
	n := q.NumVertices()
	cands := make([][]graph.VertexID, n)
	candCount := make([]int, n)
	var peak int64
	for u := 0; u < n; u++ {
		cands[u] = candidateFilter(q, g, u, opts)
		candCount[u] = len(cands[u])
		peak += int64(len(cands[u])) * 4
		if candCount[u] == 0 {
			return Result{PeakMemory: peak}, nil
		}
	}
	o := connectedOrder(q, candCount)
	pos := make([]int, n)
	for i, u := range o {
		pos[u] = i
	}
	// earlier[i]: query neighbours of o[i] that are matched before it.
	earlier := make([][]graph.QueryVertex, n)
	for i, u := range o {
		for _, w := range q.Neighbors(u) {
			if pos[w] < i {
				earlier[i] = append(earlier[i], w)
			}
		}
	}

	col := &collector{opts: opts}
	mapping := make(graph.Embedding, n)
	used := make(map[graph.VertexID]bool, n)
	dl := newDeadline(opts)
	timedOut := false
	var rec func(depth int) bool
	rec = func(depth int) bool {
		if dl.expired() {
			timedOut = true
			return false
		}
		if depth == n {
			return col.add(mapping)
		}
		u := o[depth]
		var pool []graph.VertexID
		if depth == 0 {
			pool = cands[u]
		} else {
			// Scan the adjacency of the earlier neighbour with the
			// smallest degree, filtering by candidate membership — the
			// "edge verification" strategy (cheaper to generate, pays a
			// HasEdge probe per remaining neighbour).
			pivot := earlier[depth][0]
			for _, w := range earlier[depth][1:] {
				if g.Degree(mapping[w]) < g.Degree(mapping[pivot]) {
					pivot = w
				}
			}
			pool = g.Neighbors(mapping[pivot])
		}
		anchored := opts.AnchorSet != nil && opts.AnchorVertex == u
	cand:
		for _, v := range pool {
			if g.Label(v) != q.Label(u) || g.Degree(v) < q.Degree(u) || used[v] {
				continue
			}
			if anchored && !opts.AnchorSet[v] {
				continue
			}
			for _, w := range earlier[depth] {
				// Half-edge labels must match in both directions so the
				// oracle agrees with FAST on edge-labeled and
				// directed-encoded queries.
				if !g.HasEdgeLabeled(mapping[w], v, q.EdgeLabel(w, u)) ||
					!g.HasEdgeLabeled(v, mapping[w], q.EdgeLabel(u, w)) {
					continue cand
				}
			}
			mapping[u] = v
			used[v] = true
			ok := rec(depth + 1)
			used[v] = false
			if !ok {
				return false
			}
		}
		return true
	}
	rec(0)
	if timedOut {
		return col.result(peak), ErrTimeout
	}
	return col.result(peak), nil
}
