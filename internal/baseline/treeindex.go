package baseline

import (
	"sort"

	"fastmatch/graph"
	"fastmatch/internal/order"
)

// treeIndex is the shared auxiliary structure behind the CFL/CECI/DAF-like
// baselines: a BFS spanning tree of the query, refined candidate sets, and
// per-query-edge candidate adjacency keyed by data vertex. CFL's CPI keeps
// only tree-edge adjacency; CECI's index and DAF's CS also cover non-tree
// edges — controlled by withNonTree.
type treeIndex struct {
	q     *graph.Query
	g     *graph.Graph
	tree  *order.Tree
	cands [][]graph.VertexID
	// adj[{a,b}][v] lists candidates of b adjacent to v ∈ C(a), sorted.
	adj  map[[2]graph.QueryVertex]map[graph.VertexID][]graph.VertexID
	peak int64
}

// buildTreeIndex constructs the index. The construction mirrors CST's
// top-down + bottom-up passes (the baselines and FAST share this part of
// their lineage: CPI begat CST).
func buildTreeIndex(q *graph.Query, g *graph.Graph, withNonTree bool, opts Options) *treeIndex {
	root := order.SelectRoot(q, g)
	t := order.BuildBFSTree(q, root)
	idx := &treeIndex{
		q: q, g: g, tree: t,
		cands: make([][]graph.VertexID, q.NumVertices()),
		adj:   make(map[[2]graph.QueryVertex]map[graph.VertexID][]graph.VertexID),
	}
	for u := 0; u < q.NumVertices(); u++ {
		idx.cands[u] = candidateFilter(q, g, u, opts)
	}
	member := func(u graph.QueryVertex) map[graph.VertexID]bool {
		m := make(map[graph.VertexID]bool, len(idx.cands[u]))
		for _, v := range idx.cands[u] {
			m[v] = true
		}
		return m
	}
	// Top-down.
	for _, u := range t.BFSOrder {
		if u == t.Root {
			continue
		}
		pm := member(t.Parent[u])
		kept := idx.cands[u][:0]
		for _, v := range idx.cands[u] {
			for _, w := range g.Neighbors(v) {
				if pm[w] {
					kept = append(kept, v)
					break
				}
			}
		}
		idx.cands[u] = kept
	}
	// Bottom-up.
	for i := len(t.BFSOrder) - 1; i >= 0; i-- {
		u := t.BFSOrder[i]
		if len(t.Children[u]) == 0 {
			continue
		}
		sets := make([]map[graph.VertexID]bool, len(t.Children[u]))
		for j, uc := range t.Children[u] {
			sets[j] = member(uc)
		}
		kept := idx.cands[u][:0]
	cand:
		for _, v := range idx.cands[u] {
			for _, set := range sets {
				found := false
				for _, w := range g.Neighbors(v) {
					if set[w] {
						found = true
						break
					}
				}
				if !found {
					continue cand
				}
			}
			kept = append(kept, v)
		}
		idx.cands[u] = kept
	}
	// Adjacency lists, both directions, tree edges always and non-tree
	// edges when requested.
	build := func(a, b graph.QueryVertex) {
		bm := member(b)
		m := make(map[graph.VertexID][]graph.VertexID, len(idx.cands[a]))
		for _, v := range idx.cands[a] {
			var list []graph.VertexID
			for _, w := range g.Neighbors(v) {
				if bm[w] {
					list = append(list, w)
				}
			}
			if len(list) > 0 {
				sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
				m[v] = list
				idx.peak += int64(len(list)) * 4
			}
		}
		idx.adj[[2]graph.QueryVertex{a, b}] = m
	}
	for _, u := range t.BFSOrder {
		if u != t.Root {
			build(t.Parent[u], u)
			build(u, t.Parent[u])
		}
	}
	if withNonTree {
		for _, e := range t.NonTreeEdges {
			build(e[0], e[1])
			build(e[1], e[0])
		}
	}
	for _, cands := range idx.cands {
		idx.peak += int64(len(cands)) * 4
	}
	return idx
}

// neighborsOf returns the indexed adjacency of v ∈ C(a) towards b.
func (idx *treeIndex) neighborsOf(a, b graph.QueryVertex, v graph.VertexID) []graph.VertexID {
	return idx.adj[[2]graph.QueryVertex{a, b}][v]
}

// empty reports whether any candidate set died during refinement.
func (idx *treeIndex) empty() bool {
	for _, cands := range idx.cands {
		if len(cands) == 0 {
			return true
		}
	}
	return false
}

// intersectSorted intersects sorted vertex lists; result appended to dst.
func intersectSorted(dst []graph.VertexID, lists ...[]graph.VertexID) []graph.VertexID {
	if len(lists) == 0 {
		return dst
	}
	if len(lists) == 1 {
		return append(dst, lists[0]...)
	}
	// Intersect the two shortest first.
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
	cur := append([]graph.VertexID(nil), lists[0]...)
	for _, l := range lists[1:] {
		var next []graph.VertexID
		i, j := 0, 0
		for i < len(cur) && j < len(l) {
			switch {
			case cur[i] < l[j]:
				i++
			case cur[i] > l[j]:
				j++
			default:
				next = append(next, cur[i])
				i++
				j++
			}
		}
		cur = next
		if len(cur) == 0 {
			break
		}
	}
	return append(dst, cur...)
}
