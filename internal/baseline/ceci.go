package baseline

import (
	"fastmatch/graph"
	"fastmatch/internal/order"
)

// CECI is the CECI-like baseline: a compact embedding-cluster-style index
// that covers *all* query edges (tree and non-tree), a BFS-rank matching
// order, and intersection-based candidate computation — the extension pool
// for a query vertex is the intersection of the indexed adjacency lists of
// every already-matched neighbour, so no pairwise edge probes are needed
// during enumeration. The paper reports this family beating edge
// verification on CPUs (and FAST beating both).
func CECI(q *graph.Query, g *graph.Graph, opts Options) (Result, error) {
	idx := buildTreeIndex(q, g, true, opts)
	if idx.empty() {
		return Result{PeakMemory: idx.peak}, nil
	}
	o := order.CECILike(idx.tree, treeIndexEstimator{idx})
	return enumerateTree(idx, o, opts, true)
}
