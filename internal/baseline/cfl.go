package baseline

import (
	"fastmatch/graph"
	"fastmatch/internal/order"
)

// CFL is the CFL-Match-like baseline: a CPI-style tree index (tree-edge
// adjacency only), a path-based matching order that postpones Cartesian
// products, and *edge verification* — non-tree query edges are checked with
// pairwise HasEdge probes against the data graph during enumeration rather
// than being indexed. The paper singles out this verification cost as the
// reason CFL trails the intersection-based DAF/CECI on CPUs, while FAST
// retires the same check in one pipelined cycle.
func CFL(q *graph.Query, g *graph.Graph, opts Options) (Result, error) {
	idx := buildTreeIndex(q, g, false, opts)
	if idx.empty() {
		return Result{PeakMemory: idx.peak}, nil
	}
	est := treeIndexEstimator{idx}
	o := order.PathBased(idx.tree, est)
	return enumerateTree(idx, o, opts, false)
}

// treeIndexEstimator adapts treeIndex to order.Estimator.
type treeIndexEstimator struct{ idx *treeIndex }

func (e treeIndexEstimator) CandCount(u graph.QueryVertex) int { return len(e.idx.cands[u]) }

func (e treeIndexEstimator) AvgBranch(up, uc graph.QueryVertex) float64 {
	m := e.idx.adj[[2]graph.QueryVertex{up, uc}]
	if len(e.idx.cands[up]) == 0 {
		return 0
	}
	total := 0
	for _, l := range m {
		total += len(l)
	}
	return float64(total) / float64(len(e.idx.cands[up]))
}

// enumerateTree backtracks over a tree index following order o. When
// intersect is false (CFL), extension candidates come from the tree-parent
// adjacency and non-tree edges are verified pairwise on G; when true
// (CECI), candidates are the intersection of the indexed adjacency of every
// earlier query neighbour.
func enumerateTree(idx *treeIndex, o order.Order, opts Options, intersect bool) (Result, error) {
	q, g, t := idx.q, idx.g, idx.tree
	n := q.NumVertices()
	pos := o.PositionOf()
	earlier := make([][]graph.QueryVertex, n) // earlier neighbours per depth
	for i, u := range o {
		for _, w := range q.Neighbors(u) {
			if pos[w] < i {
				earlier[i] = append(earlier[i], w)
			}
		}
	}

	col := &collector{opts: opts}
	mapping := make(graph.Embedding, n)
	used := make(map[graph.VertexID]bool, n)
	// One scratch buffer per depth: the pool at depth d must stay intact
	// while deeper levels compute their own intersections.
	scratch := make([][]graph.VertexID, n)
	dl := newDeadline(opts)
	timedOut := false

	var rec func(depth int) bool
	rec = func(depth int) bool {
		if dl.expired() {
			timedOut = true
			return false
		}
		if depth == n {
			return col.add(mapping)
		}
		u := o[depth]
		var pool []graph.VertexID
		switch {
		case depth == 0:
			pool = idx.cands[u]
		case intersect:
			// CECI: intersect indexed adjacency from every matched
			// neighbour (tree or non-tree).
			lists := make([][]graph.VertexID, 0, len(earlier[depth]))
			for _, w := range earlier[depth] {
				lists = append(lists, idx.neighborsOf(w, u, mapping[w]))
			}
			scratch[depth] = intersectSorted(scratch[depth][:0], lists...)
			pool = scratch[depth]
		default:
			// CFL: tree-parent adjacency only.
			pool = idx.neighborsOf(t.Parent[u], u, mapping[t.Parent[u]])
		}
	cand:
		for _, v := range pool {
			if used[v] {
				continue
			}
			if !intersect {
				// Edge verification for the remaining earlier neighbours.
				for _, w := range earlier[depth] {
					if w == t.Parent[u] {
						continue
					}
					if !g.HasEdge(mapping[w], v) {
						continue cand
					}
				}
			}
			mapping[u] = v
			used[v] = true
			ok := rec(depth + 1)
			used[v] = false
			if !ok {
				return false
			}
		}
		return true
	}
	rec(0)
	if timedOut {
		return col.result(idx.peak), ErrTimeout
	}
	return col.result(idx.peak), nil
}
