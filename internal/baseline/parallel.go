package baseline

import (
	"fmt"
	"sync"

	"fastmatch/graph"
)

// Parallel wraps a baseline with root-candidate partitioning across
// threads, the way the paper evaluates DAF-8 and CECI-8: the candidate set
// of the most selective query vertex is split into `threads` chunks, each
// worker enumerates only its chunk's share of the search space (via the
// anchor restriction in Options), and counts/embeddings are merged. The
// shares are disjoint — an embedding maps the anchor vertex into exactly
// one chunk — so the merge needs no deduplication.
func Parallel(inner Func, threads int) Func {
	if threads < 1 {
		threads = 1
	}
	return func(q *graph.Query, g *graph.Graph, opts Options) (Result, error) {
		anchor := 0
		anchorCands := candidateFilter(q, g, 0, Options{})
		for u := 1; u < q.NumVertices(); u++ {
			c := candidateFilter(q, g, u, Options{})
			if len(c) < len(anchorCands) {
				anchor, anchorCands = u, c
			}
		}
		if len(anchorCands) == 0 {
			return Result{}, nil
		}
		workers := threads
		if workers > len(anchorCands) {
			workers = len(anchorCands)
		}
		chunks := make([]map[graph.VertexID]bool, workers)
		for i := range chunks {
			chunks[i] = make(map[graph.VertexID]bool, len(anchorCands)/workers+1)
		}
		// Round-robin assignment balances skewed candidate degrees better
		// than contiguous ranges on power-law graphs.
		for i, v := range anchorCands {
			chunks[i%workers][v] = true
		}

		results := make([]Result, workers)
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				sub := opts
				sub.Threads = 1
				sub.AnchorVertex = anchor
				sub.AnchorSet = chunks[w]
				results[w], errs[w] = inner(q, g, sub)
			}(w)
		}
		wg.Wait()
		var total Result
		for w := 0; w < workers; w++ {
			if errs[w] != nil {
				return Result{}, fmt.Errorf("worker %d: %w", w, errs[w])
			}
			total.Count += results[w].Count
			total.Embeddings = append(total.Embeddings, results[w].Embeddings...)
			if results[w].PeakMemory > total.PeakMemory {
				total.PeakMemory = results[w].PeakMemory
			}
		}
		return total, nil
	}
}
