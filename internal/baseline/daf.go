package baseline

import (
	"fastmatch/graph"
)

// DAF is the DAF-like baseline: a CS-style candidate space covering every
// query edge, intersection-based extension, and DAF's signature *adaptive
// matching order* — instead of a static order, at every step the enumerator
// picks the extendable query vertex (tree parent already matched) whose
// current intersection pool is smallest. The original's third pillar,
// failing-set pruning, is implemented separately as DAFFS (failingset.go);
// this variant is what the Fig. 14 comparison uses, matching the adaptive
// order + candidate space combination that drives DAF's standing there.
func DAF(q *graph.Query, g *graph.Graph, opts Options) (Result, error) {
	idx := buildTreeIndex(q, g, true, opts)
	if idx.empty() {
		return Result{PeakMemory: idx.peak}, nil
	}
	n := q.NumVertices()
	col := &collector{opts: opts}
	mapping := make(graph.Embedding, n)
	matched := make([]bool, n)
	used := make(map[graph.VertexID]bool, n)

	// pool computes the intersection-based extension candidates of u given
	// the currently matched neighbours.
	pool := func(u graph.QueryVertex) []graph.VertexID {
		var lists [][]graph.VertexID
		for _, w := range idx.q.Neighbors(u) {
			if matched[w] {
				lists = append(lists, idx.neighborsOf(w, u, mapping[w]))
			}
		}
		if len(lists) == 0 {
			return idx.cands[u]
		}
		return intersectSorted(nil, lists...)
	}

	dl := newDeadline(opts)
	timedOut := false
	var rec func(depth int) bool
	rec = func(depth int) bool {
		if dl.expired() {
			timedOut = true
			return false
		}
		if depth == n {
			return col.add(mapping)
		}
		// Adaptive order: pick the connected unmatched vertex with the
		// smallest extension pool right now.
		bestU := -1
		var bestPool []graph.VertexID
		for u := 0; u < n; u++ {
			if matched[u] {
				continue
			}
			connected := depth == 0 // first vertex: any; afterwards require a matched neighbour
			if !connected {
				for _, w := range idx.q.Neighbors(u) {
					if matched[w] {
						connected = true
						break
					}
				}
			}
			if !connected {
				continue
			}
			p := pool(u)
			if bestU == -1 || len(p) < len(bestPool) {
				bestU, bestPool = u, p
				if len(p) == 0 {
					break // dead branch; fail fast
				}
			}
		}
		u := bestU
		matched[u] = true
		ok := true
		for _, v := range bestPool {
			if used[v] {
				continue
			}
			mapping[u] = v
			used[v] = true
			ok = rec(depth + 1)
			used[v] = false
			if !ok {
				break
			}
		}
		matched[u] = false
		return ok
	}
	rec(0)
	if timedOut {
		return col.result(idx.peak), ErrTimeout
	}
	return col.result(idx.peak), nil
}
