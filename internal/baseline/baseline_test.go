package baseline

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"fastmatch/graph"
)

// fig1 returns the paper's Fig. 1 query and data graph (see cst tests for
// the derivation); ground truth is exactly two embeddings.
func fig1() (*graph.Query, *graph.Graph) {
	q := graph.MustQuery("fig1", []graph.Label{0, 1, 2, 3},
		[][2]graph.QueryVertex{{0, 1}, {0, 2}, {1, 2}, {2, 3}})
	labels := []graph.Label{0, 0, 2, 1, 2, 1, 2, 3, 3, 3, 4, 4}
	edges := [][2]graph.VertexID{
		{0, 3}, {0, 2}, {0, 6}, {3, 2}, {2, 8}, {1, 5}, {1, 4},
		{5, 4}, {5, 6}, {4, 9}, {6, 9}, {5, 7}, {6, 10}, {8, 11},
	}
	g, err := graph.FromEdgeList(labels, edges)
	if err != nil {
		panic(err)
	}
	return q, g
}

func TestAllAlgorithmsOnFig1(t *testing.T) {
	q, g := fig1()
	for name, alg := range Registry() {
		res, err := alg(q, g, Options{Collect: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Count != 2 {
			t.Errorf("%s: count = %d, want 2", name, res.Count)
		}
		for _, e := range res.Embeddings {
			if err := graph.VerifyEmbedding(q, g, e); err != nil {
				t.Errorf("%s: invalid embedding %v: %v", name, e, err)
			}
		}
	}
}

// TestAlgorithmsAgreeProperty: every algorithm family returns the exact
// embedding set of the Backtrack oracle on random inputs.
func TestAlgorithmsAgreeProperty(t *testing.T) {
	algs := Registry()
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomUniform(graph.GenConfig{
			NumVertices: 50 + rng.Intn(100),
			NumLabels:   2 + rng.Intn(3),
			AvgDegree:   2 + rng.Float64()*4,
			Seed:        seed,
		})
		q := graph.RandomConnectedQuery("rq", 2+rng.Intn(4), rng.Intn(3), g.NumLabels(), rng)
		ref, err := Backtrack(q, g, Options{Collect: true})
		if err != nil {
			return false
		}
		want := make(map[string]bool, len(ref.Embeddings))
		for _, e := range ref.Embeddings {
			want[e.Key()] = true
		}
		for name, alg := range algs {
			res, err := alg(q, g, Options{Collect: true})
			if err != nil {
				t.Logf("seed %d %s: %v", seed, name, err)
				return false
			}
			if res.Count != ref.Count {
				t.Logf("seed %d %s: count %d, oracle %d", seed, name, res.Count, ref.Count)
				return false
			}
			for _, e := range res.Embeddings {
				if !want[e.Key()] {
					t.Logf("seed %d %s: unexpected embedding %v", seed, name, e)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 35}); err != nil {
		t.Error(err)
	}
}

func TestLimitStopsEarly(t *testing.T) {
	g := graph.RandomUniform(graph.GenConfig{NumVertices: 200, NumLabels: 2, AvgDegree: 8, Seed: 3})
	rng := rand.New(rand.NewSource(3))
	q := graph.RandomConnectedQuery("rq", 3, 0, 2, rng)
	full, err := Backtrack(q, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if full.Count < 10 {
		t.Skipf("workload too small: %d embeddings", full.Count)
	}
	for _, name := range []string{"backtrack", "CFL", "CECI", "DAF"} {
		res, err := Registry()[name](q, g, Options{Limit: 5})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Count != 5 {
			t.Errorf("%s: Limit=5 produced %d", name, res.Count)
		}
	}
}

func TestJoinBudgetsTriggerOOM(t *testing.T) {
	g := graph.RandomUniform(graph.GenConfig{NumVertices: 400, NumLabels: 2, AvgDegree: 8, Seed: 11})
	rng := rand.New(rand.NewSource(11))
	q := graph.RandomConnectedQuery("rq", 4, 1, 2, rng)
	for _, name := range []string{"GpSM", "GSI"} {
		alg := Registry()[name]
		// Unlimited: must succeed.
		if _, err := alg(q, g, Options{}); err != nil {
			t.Fatalf("%s unlimited: %v", name, err)
		}
		// 1 KB of device memory: must OOM on this workload.
		_, err := alg(q, g, Options{MemoryBudget: 1 << 10})
		if !errors.Is(err, ErrOOM) {
			t.Errorf("%s with 1KB budget: err = %v, want ErrOOM", name, err)
		}
	}
}

func TestPeakMemoryReported(t *testing.T) {
	q, g := fig1()
	for name, alg := range Registry() {
		res, err := alg(q, g, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.PeakMemory <= 0 {
			t.Errorf("%s: PeakMemory = %d", name, res.PeakMemory)
		}
	}
}

func TestGpSMPeakExceedsGSI(t *testing.T) {
	// Edge-join materialisation should be hungrier than vertex-extension
	// with prealloc on a dense-ish workload (the paper's explanation for
	// GSI handling graphs GpSM cannot).
	g := graph.RandomUniform(graph.GenConfig{NumVertices: 500, NumLabels: 2, AvgDegree: 10, Seed: 23})
	rng := rand.New(rand.NewSource(23))
	q := graph.RandomConnectedQuery("rq", 4, 2, 2, rng)
	gp, err := GpSM(q, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gs, err := GSI(q, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if gp.Count != gs.Count {
		t.Fatalf("counts differ: %d vs %d", gp.Count, gs.Count)
	}
	t.Logf("GpSM peak %d, GSI peak %d", gp.PeakMemory, gs.PeakMemory)
}

// TestParallelMatchesSequential: DAF-8/CECI-8-style wrappers return the
// same embedding set as one thread.
func TestParallelMatchesSequential(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomPowerLaw(graph.GenConfig{
			NumVertices: 150, NumLabels: 3, AvgDegree: 5, Seed: seed,
		})
		q := graph.RandomConnectedQuery("rq", 2+rng.Intn(3), rng.Intn(2), 3, rng)
		for _, name := range []string{"CECI", "DAF", "backtrack"} {
			seq, err := Registry()[name](q, g, Options{Collect: true})
			if err != nil {
				return false
			}
			par, err := Parallel(Registry()[name], 8)(q, g, Options{Collect: true})
			if err != nil {
				t.Logf("seed %d %s: %v", seed, name, err)
				return false
			}
			if par.Count != seq.Count {
				t.Logf("seed %d %s: parallel %d vs sequential %d", seed, name, par.Count, seq.Count)
				return false
			}
			want := make(map[string]bool)
			for _, e := range seq.Embeddings {
				want[e.Key()] = true
			}
			for _, e := range par.Embeddings {
				if !want[e.Key()] {
					t.Logf("seed %d %s: unexpected embedding", seed, name)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestParallelEmptyAndThreadClamp(t *testing.T) {
	q := graph.MustQuery("missing", []graph.Label{9, 9}, [][2]graph.QueryVertex{{0, 1}})
	_, g := fig1()
	res, err := Parallel(Backtrack, 8)(q, g, Options{})
	if err != nil || res.Count != 0 {
		t.Errorf("empty: %v, %v", res, err)
	}
	// threads < 1 clamps to 1.
	q2, g2 := fig1()
	res, err = Parallel(Backtrack, 0)(q2, g2, Options{})
	if err != nil || res.Count != 2 {
		t.Errorf("clamp: count=%d err=%v", res.Count, err)
	}
}

func TestConnectedOrderIsConnected(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := graph.RandomConnectedQuery("rq", 2+rng.Intn(6), rng.Intn(4), 3, rng)
		counts := make([]int, q.NumVertices())
		for u := range counts {
			counts[u] = rng.Intn(100)
		}
		o := connectedOrder(q, counts)
		if len(o) != q.NumVertices() {
			return false
		}
		seen := make([]bool, q.NumVertices())
		seen[o[0]] = true
		for _, u := range o[1:] {
			ok := false
			for _, w := range q.Neighbors(u) {
				if seen[w] {
					ok = true
					break
				}
			}
			if !ok || seen[u] {
				return false
			}
			seen[u] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestIntersectSorted(t *testing.T) {
	a := []graph.VertexID{1, 3, 5, 7, 9}
	b := []graph.VertexID{3, 4, 5, 9, 10}
	c := []graph.VertexID{5, 9, 11}
	got := intersectSorted(nil, a, b, c)
	want := []graph.VertexID{5, 9}
	if len(got) != len(want) {
		t.Fatalf("intersect = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("intersect = %v, want %v", got, want)
		}
	}
	if got := intersectSorted(nil); got != nil {
		t.Errorf("empty intersect = %v", got)
	}
	single := intersectSorted(nil, a)
	if !sort.SliceIsSorted(single, func(i, j int) bool { return single[i] < single[j] }) {
		t.Error("single-list intersect unsorted")
	}
}

func TestSingleVertexQuery(t *testing.T) {
	q := graph.MustQuery("v", []graph.Label{2}, nil)
	_, g := fig1()
	want := int64(len(g.VerticesWithLabel(2))) // all C-labelled vertices
	for name, alg := range Registry() {
		res, err := alg(q, g, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Count != want {
			t.Errorf("%s: count = %d, want %d", name, res.Count, want)
		}
	}
}
