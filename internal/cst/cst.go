// Package cst implements the paper's candidate search tree (CST), the
// auxiliary data structure at the centre of the CPU–FPGA co-design
// (Section V). A CST is a graph isomorphic to the query q whose vertices
// carry candidate sets C(u) and whose edges carry candidate-level adjacency
// lists N^u_u'(v). Because the CST keeps *all* edge information of q
// (including non-tree edges), it is a complete search space: all embeddings
// of q in G can be computed by traversing only the CST (Theorem 1), which is
// what makes partitioning (Algorithm 2) and BRAM-only matching possible.
package cst

import (
	"fmt"
	"sort"

	"fastmatch/graph"
	"fastmatch/internal/order"
)

// CandIndex is an index into a candidate set C(u). The kernel operates
// entirely on candidate indices; data-vertex ids are recovered only when an
// embedding is reported.
type CandIndex = int32

// Adj is a CSR adjacency view over candidate indices for one directed query
// edge from → to: the neighbours of candidate i of the source vertex are
// Targets[Offsets[i]:Offsets[i+1]], each a candidate index of the
// destination vertex, sorted ascending. It models one BRAM-resident array of
// the paper's CST layout. Adj is a value type: Offsets and Targets are
// subslices of the owning CST's flat index arenas (or, for adjacency a
// restricted piece shares with its parent, of the parent's arenas), so hot
// paths hoist the two slice headers once and then touch only contiguous
// int32 arrays — no per-candidate pointer deref.
type Adj struct {
	Offsets []int32
	Targets []CandIndex

	// maxDeg caches the longest list in this adjacency so restricted pieces
	// can fold shared (aliased) edges into their δD statistic in O(1).
	maxDeg int32
}

// Valid reports whether this view carries an adjacency at all; the dense
// per-CST edge table holds a zero Adj for every non-edge of q.
func (a Adj) Valid() bool { return a.Offsets != nil }

// Neighbors returns N^{from}_{to}(i), aliasing the CSR storage.
func (a Adj) Neighbors(i CandIndex) []CandIndex {
	return a.Targets[a.Offsets[i]:a.Offsets[i+1]]
}

// Degree returns |N^{from}_{to}(i)|.
func (a Adj) Degree(i CandIndex) int {
	return int(a.Offsets[i+1] - a.Offsets[i])
}

// Has reports whether j ∈ N^{from}_{to}(i) — the O(1) edge-existence probe
// the FPGA's Edge Validator performs (Algorithm 7); in software it is a
// hand-rolled binary search. The kernel's batch rounds use the adaptive
// galloping/bitset intersection instead (candidates arrive sorted, so a
// cursor amortises the search); Has remains the oracle those strategies are
// property-tested against, and the probe Simulate and Enumerate use.
func (a Adj) Has(i, j CandIndex) bool {
	lo, hi := int(a.Offsets[i]), int(a.Offsets[i+1])
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a.Targets[mid] < j {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < int(a.Offsets[i+1]) && a.Targets[lo] == j
}

// CST is a candidate search tree for (q, G). Adjacency is stored for both
// directions of every query edge (tree and non-tree) so that top-down,
// bottom-up and validation passes are all O(1)-indexed.
type CST struct {
	Query *graph.Query
	Tree  *order.Tree
	// Cand[u] lists the candidate data vertices of query vertex u, sorted.
	Cand [][]graph.VertexID
	// adj is a dense |V(q)|×|V(q)| table of CSR views indexed from*nq+to —
	// query vertices are small ints, so edge lookup is one multiply-add.
	// Entries are Valid exactly for the directed versions of q's edges, and
	// the views point into the flat offset/target arenas built by
	// adjAssembler (one arena pair per CST; a restricted piece's unchanged
	// edges alias its parent's arenas instead of copying).
	adj []Adj

	// Size and degree statistics are queried on every partition decision,
	// so they are computed eagerly when construction finishes (Build,
	// restrict and the test fixtures all call recomputeStats or fold the
	// stats in while assembling); a CST is immutable once built.
	sizeBytes int64
	maxDeg    int
}

// newCST returns a CST shell with the candidate and dense adjacency tables
// allocated for q's vertex count.
func newCST(q *graph.Query, t *order.Tree) *CST {
	nq := q.NumVertices()
	return &CST{
		Query: q,
		Tree:  t,
		Cand:  make([][]graph.VertexID, nq),
		adj:   make([]Adj, nq*nq),
	}
}

// Edge returns the adjacency view of the directed query edge from → to; the
// view is invalid (zero) when {from,to} is not an edge of q. Hot paths hoist
// the returned value — two slice headers — once per run.
func (c *CST) Edge(from, to graph.QueryVertex) Adj {
	return c.adj[from*len(c.Cand)+to]
}

// edgeRef returns a pointer into the dense table; construction and the
// corruption tests use it, everything else goes through the Edge value view.
func (c *CST) edgeRef(from, to graph.QueryVertex) *Adj {
	return &c.adj[from*len(c.Cand)+to]
}

// setAdj installs the adjacency view for from → to.
func (c *CST) setAdj(from, to graph.QueryVertex, a Adj) {
	c.adj[from*len(c.Cand)+to] = a
}

// Candidates returns C(u) as data-vertex ids (sorted, aliasing storage).
func (c *CST) Candidates(u graph.QueryVertex) []graph.VertexID { return c.Cand[u] }

// CandCount returns |C(u)| (order.Estimator).
func (c *CST) CandCount(u graph.QueryVertex) int { return len(c.Cand[u]) }

// AvgBranch returns the average adjacency-list length from candidates of up
// towards uc (order.Estimator).
func (c *CST) AvgBranch(up, uc graph.QueryVertex) float64 {
	a := c.Edge(up, uc)
	if !a.Valid() || len(c.Cand[up]) == 0 {
		return 0
	}
	return float64(len(a.Targets)) / float64(len(c.Cand[up]))
}

// Vertex returns the data vertex of candidate i of u.
func (c *CST) Vertex(u graph.QueryVertex, i CandIndex) graph.VertexID {
	return c.Cand[u][i]
}

// Adjacency returns N^{from}_{to}(i): candidate indices of `to` adjacent to
// candidate i of `from`. {from,to} must be a query edge.
func (c *CST) Adjacency(from, to graph.QueryVertex, i CandIndex) []CandIndex {
	return c.Edge(from, to).Neighbors(i)
}

// HasCandEdge reports whether candidates i of `from` and j of `to` are
// adjacent in the CST.
func (c *CST) HasCandEdge(from, to graph.QueryVertex, i, j CandIndex) bool {
	return c.Edge(from, to).Has(i, j)
}

// CandIndexOf returns the candidate index of data vertex v within C(u), or
// -1 when v is not a candidate of u.
func (c *CST) CandIndexOf(u graph.QueryVertex, v graph.VertexID) CandIndex {
	cands := c.Cand[u]
	i := sort.Search(len(cands), func(i int) bool { return cands[i] >= v })
	if i < len(cands) && cands[i] == v {
		return CandIndex(i)
	}
	return -1
}

// SizeBytes returns |CST|: 4 bytes per candidate entry plus the CSR
// adjacency arrays, the quantity the δS partition threshold bounds.
func (c *CST) SizeBytes() int64 { return c.sizeBytes }

// MaxCandDegree returns D_CST, the longest candidate adjacency list in any
// direction; the δD threshold bounds it because the FPGA's array-partition
// ports cap the width of an O(1) membership probe.
func (c *CST) MaxCandDegree() int { return c.maxDeg }

// recomputeStats derives the partition statistics from scratch, including
// every view's cached maxDeg. Construction paths that assemble adjacency
// incrementally fold the stats in as they go; this full scan serves the
// synthetic fixtures that install adjacency directly via setAdj.
func (c *CST) recomputeStats() {
	c.sizeBytes, c.maxDeg = 0, 0
	for _, cands := range c.Cand {
		c.sizeBytes += int64(len(cands)) * 4
	}
	for i := range c.adj {
		a := &c.adj[i]
		if !a.Valid() {
			continue
		}
		c.sizeBytes += int64(len(a.Offsets))*4 + int64(len(a.Targets))*4
		a.maxDeg = 0
		for i := 0; i+1 < len(a.Offsets); i++ {
			if d := int32(a.Offsets[i+1] - a.Offsets[i]); d > a.maxDeg {
				a.maxDeg = d
			}
		}
		if int(a.maxDeg) > c.maxDeg {
			c.maxDeg = int(a.maxDeg)
		}
	}
}

// IsEmpty reports whether any candidate set is empty, in which case the CST
// contains no embeddings at all.
func (c *CST) IsEmpty() bool {
	for _, cands := range c.Cand {
		if len(cands) == 0 {
			return true
		}
	}
	return false
}

// Validate checks the CST's structural invariants: sorted candidate sets,
// the dense adjacency table shaped for exactly q's edges (both directions
// present, non-edges invalid), within-range adjacency targets, symmetric
// adjacency for both edge directions, adjacency only between genuine
// data-graph edges, and partition statistics consistent with the layout.
func (c *CST) Validate(g *graph.Graph) error {
	nq := c.Query.NumVertices()
	if len(c.Cand) != nq || len(c.adj) != nq*nq {
		return fmt.Errorf("cst: dense tables sized (%d, %d), want (%d, %d)", len(c.Cand), len(c.adj), nq, nq*nq)
	}
	for u, cands := range c.Cand {
		for i := 1; i < len(cands); i++ {
			if cands[i-1] >= cands[i] {
				return fmt.Errorf("cst: C(%d) not strictly sorted", u)
			}
		}
	}
	var sizeBytes int64
	maxDeg := 0
	for _, cands := range c.Cand {
		sizeBytes += int64(len(cands)) * 4
	}
	for from := 0; from < nq; from++ {
		for to := 0; to < nq; to++ {
			a := c.Edge(from, to)
			if !c.Query.HasEdge(from, to) {
				if a.Valid() {
					return fmt.Errorf("cst: adjacency (%d→%d) present for a non-edge of q", from, to)
				}
				continue
			}
			if !a.Valid() {
				return fmt.Errorf("cst: missing adjacency for query edge %d→%d", from, to)
			}
			if len(a.Offsets) != len(c.Cand[from])+1 {
				return fmt.Errorf("cst: adj %d→%d offsets length %d, want %d", from, to, len(a.Offsets), len(c.Cand[from])+1)
			}
			rev := c.Edge(to, from)
			if !rev.Valid() {
				return fmt.Errorf("cst: missing reverse adjacency for %d→%d", from, to)
			}
			sizeBytes += int64(len(a.Offsets))*4 + int64(len(a.Targets))*4
			for i := 0; i < len(c.Cand[from]); i++ {
				if d := a.Degree(CandIndex(i)); d > maxDeg {
					maxDeg = d
				}
				for _, j := range a.Neighbors(CandIndex(i)) {
					if int(j) >= len(c.Cand[to]) {
						return fmt.Errorf("cst: adj %d→%d target %d out of range", from, to, j)
					}
					if g != nil && !g.HasEdge(c.Cand[from][i], c.Cand[to][j]) {
						return fmt.Errorf("cst: adj %d→%d claims edge (%d,%d) absent from G",
							from, to, c.Cand[from][i], c.Cand[to][j])
					}
					if !rev.Has(j, CandIndex(i)) {
						return fmt.Errorf("cst: adj %d→%d entry (%d,%d) not mirrored", from, to, i, j)
					}
				}
			}
		}
	}
	if c.sizeBytes != sizeBytes || c.maxDeg != maxDeg {
		return fmt.Errorf("cst: cached stats (size %d, maxDeg %d) disagree with layout (size %d, maxDeg %d)",
			c.sizeBytes, c.maxDeg, sizeBytes, maxDeg)
	}
	return nil
}

// Stats summarises a CST for reporting.
type Stats struct {
	CandTotal  int
	AdjEntries int
	SizeBytes  int64
	MaxDegree  int
}

// ComputeStats gathers Stats.
func (c *CST) ComputeStats() Stats {
	s := Stats{SizeBytes: c.SizeBytes(), MaxDegree: c.MaxCandDegree()}
	for _, cands := range c.Cand {
		s.CandTotal += len(cands)
	}
	for i := range c.adj {
		if c.adj[i].Valid() {
			s.AdjEntries += len(c.adj[i].Targets)
		}
	}
	s.AdjEntries /= 2 // both directions stored
	return s
}

// pendingAdj records one directed edge's extents in an adjAssembler's
// arenas; the view is installed only at finish time because target appends
// may move the arena mid-build.
type pendingAdj struct {
	from, to     graph.QueryVertex
	offLo, offN  int
	tgtLo, tgtHi int
	maxDeg       int32
}

// adjAssembler accumulates the CSR adjacency of every edge a CST owns into
// two flat arenas: an exactly pre-sized offsets arena (candidate counts are
// final before adjacency construction starts) and an append-grown targets
// buffer. finish copies the targets into an exactly-sized arena, installs
// the per-edge views, and folds the partition statistics into the CST —
// so a built CST performs O(1) allocations for all of its adjacency, and
// restrict can reuse the grow buffer across pieces via restrictScratch.
type adjAssembler struct {
	off    []int32
	tgt    []CandIndex
	offCur int
	edges  []pendingAdj
}

// newAdjAssembler sizes the assembler: offTotal is the exact total offset
// count across the edges to be built, tgtBuf an optional reusable grow
// buffer, edgeCap the number of directed edges expected.
func newAdjAssembler(offTotal int, tgtBuf []CandIndex, edgeCap int) adjAssembler {
	return adjAssembler{
		off:   make([]int32, offTotal),
		tgt:   tgtBuf[:0],
		edges: make([]pendingAdj, 0, edgeCap),
	}
}

// begin opens the CSR rows for one directed edge with nSrc source
// candidates and returns the edge-local offsets slice (offsets[0] is
// already 0; the caller writes offsets[i+1] relative to its own target
// count, exactly like a standalone Adj).
func (asm *adjAssembler) begin(nSrc int) []int32 {
	off := asm.off[asm.offCur : asm.offCur+nSrc+1]
	off[0] = 0
	return off
}

// commit closes the edge opened by the last begin, recording its extents
// and longest list.
func (asm *adjAssembler) commit(from, to graph.QueryVertex, nSrc, tgtLo int, maxDeg int32) {
	asm.edges = append(asm.edges, pendingAdj{
		from: from, to: to,
		offLo: asm.offCur, offN: nSrc + 1,
		tgtLo: tgtLo, tgtHi: len(asm.tgt),
		maxDeg: maxDeg,
	})
	asm.offCur += nSrc + 1
}

// finish installs every committed edge's view into c and folds the edges'
// size/degree contributions into c's partition statistics (the caller seeds
// those with the candidate bytes and any shared edges first).
func (asm *adjAssembler) finish(c *CST) []CandIndex {
	arena := make([]CandIndex, len(asm.tgt))
	copy(arena, asm.tgt)
	for _, e := range asm.edges {
		offHi, tgtN := e.offLo+e.offN, e.tgtHi-e.tgtLo
		c.setAdj(e.from, e.to, Adj{
			Offsets: asm.off[e.offLo:offHi:offHi],
			Targets: arena[e.tgtLo:e.tgtHi:e.tgtHi],
			maxDeg:  e.maxDeg,
		})
		c.sizeBytes += int64(e.offN)*4 + int64(tgtN)*4
		if int(e.maxDeg) > c.maxDeg {
			c.maxDeg = int(e.maxDeg)
		}
	}
	return asm.tgt // hand the grow buffer back for reuse
}
