package cst

import "fmt"

// WorkerPanic carries a panic recovered on a partition-pool worker back to
// the pool's calling goroutine. Before this type existed a panicking worker
// died without running its pool bookkeeping or closing its split-tree ready
// channel, deadlocking the remaining workers and the ordered drain; now the
// pool records the first panic (value and worker stack), aborts the
// remaining speculation the way a cancellation does, and — once every
// worker has exited cleanly — re-throws the panic as a *WorkerPanic on the
// caller's goroutine, where host.Match's recover barrier converts it into a
// typed error. Callers that use PartitionConcurrent directly see the panic
// itself, as they would with the sequential Partition.
type WorkerPanic struct {
	// Value is the original panic value.
	Value any
	// Stack is the panicking worker goroutine's stack.
	Stack []byte
}

func (wp *WorkerPanic) Error() string {
	return fmt.Sprintf("cst: partition worker panic: %v", wp.Value)
}
