package cst

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"fastmatch/graph"
	"fastmatch/internal/order"
)

// fig1Query is the paper's Fig. 1(a) query: A(u0)-B(u1), A-C(u2), B-C(u1-u2),
// C-D(u2-u3).
func fig1Query() *graph.Query {
	return graph.MustQuery("fig1", []graph.Label{0, 1, 2, 3},
		[][2]graph.QueryVertex{{0, 1}, {0, 2}, {1, 2}, {2, 3}})
}

// fig1Data reconstructs the paper's Fig. 1(b) data graph (0-based: v1→0 …
// v12→11; labels A=0 B=1 C=2 D=3 E=4). It is built so that Algorithm 1
// yields exactly the CST of Fig. 3(b).
func fig1Data() *graph.Graph {
	labels := []graph.Label{0, 0, 2, 1, 2, 1, 2, 3, 3, 3, 4, 4}
	edges := [][2]graph.VertexID{
		{0, 3}, {0, 2}, {0, 6}, // v1-v4, v1-v3, v1-v7
		{3, 2},         // v4-v3
		{2, 8},         // v3-v9
		{1, 5}, {1, 4}, // v2-v6, v2-v5
		{5, 4}, {5, 6}, // v6-v5, v6-v7
		{4, 9}, {6, 9}, // v5-v10, v7-v10
		{5, 7},           // v6-v8
		{6, 10}, {8, 11}, // v7-v11, v9-v12
	}
	g, err := graph.FromEdgeList(labels, edges)
	if err != nil {
		panic(err)
	}
	return g
}

func fig1CST(t *testing.T) *CST {
	t.Helper()
	q, g := fig1Query(), fig1Data()
	tr := order.BuildBFSTree(q, 0)
	c := Build(q, g, tr)
	if err := c.Validate(g); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return c
}

func vertsOf(c *CST, u graph.QueryVertex) []graph.VertexID {
	return append([]graph.VertexID(nil), c.Cand[u]...)
}

func TestBuildMatchesPaperExample2(t *testing.T) {
	c := fig1CST(t)
	want := map[graph.QueryVertex][]graph.VertexID{
		0: {0, 1},    // C(u0) = {v1, v2}
		1: {3, 5},    // C(u1) = {v4, v6}
		2: {2, 4, 6}, // C(u2) = {v3, v5, v7}
		3: {8, 9},    // C(u3) = {v9, v10}
	}
	for u, w := range want {
		got := vertsOf(c, u)
		if len(got) != len(w) {
			t.Fatalf("C(u%d) = %v, want %v", u, got, w)
		}
		for i := range w {
			if got[i] != w[i] {
				t.Fatalf("C(u%d) = %v, want %v", u, got, w)
			}
		}
	}
	// N^{u1}_{u2}(v6) = {v5, v7}: v6 is candidate index 1 of u1.
	i6 := c.CandIndexOf(1, 5)
	var nbr []graph.VertexID
	for _, j := range c.Adjacency(1, 2, i6) {
		nbr = append(nbr, c.Vertex(2, j))
	}
	if len(nbr) != 2 || nbr[0] != 4 || nbr[1] != 6 {
		t.Errorf("N^u1_u2(v6) = %v, want [v5 v7] = [4 6]", nbr)
	}
	// N^{u2}_{u3}(v3) = {v9}.
	i3 := c.CandIndexOf(2, 2)
	nbr = nil
	for _, j := range c.Adjacency(2, 3, i3) {
		nbr = append(nbr, c.Vertex(3, j))
	}
	if len(nbr) != 1 || nbr[0] != 8 {
		t.Errorf("N^u2_u3(v3) = %v, want [v9] = [8]", nbr)
	}
}

func TestEnumerateFindsPaperEmbeddings(t *testing.T) {
	c := fig1CST(t)
	o := order.Order{0, 1, 2, 3}
	got := CollectAll(c, o)
	if len(got) != 2 {
		t.Fatalf("found %d embeddings, want 2: %v", len(got), got)
	}
	keys := map[string]bool{}
	for _, e := range got {
		if err := graph.VerifyEmbedding(c.Query, fig1Data(), e); err != nil {
			t.Errorf("invalid embedding %v: %v", e, err)
		}
		keys[e.Key()] = true
	}
	// Paper's embeddings: (v1,v4,v3,v9) and (v2,v6,v5,v10) — 0-based below.
	for _, want := range []graph.Embedding{{0, 3, 2, 8}, {1, 5, 4, 9}} {
		if !keys[want.Key()] {
			t.Errorf("missing paper embedding %v", want)
		}
	}
}

func TestCandIndexOf(t *testing.T) {
	c := fig1CST(t)
	if i := c.CandIndexOf(2, 4); i < 0 || c.Vertex(2, i) != 4 {
		t.Errorf("CandIndexOf(u2, v5) = %d", i)
	}
	if i := c.CandIndexOf(2, 7); i != -1 {
		t.Errorf("CandIndexOf non-candidate = %d, want -1", i)
	}
}

func TestCSTStats(t *testing.T) {
	c := fig1CST(t)
	s := c.ComputeStats()
	if s.CandTotal != 9 {
		t.Errorf("CandTotal = %d, want 9", s.CandTotal)
	}
	if s.SizeBytes <= 0 || s.SizeBytes != c.SizeBytes() {
		t.Errorf("SizeBytes = %d", s.SizeBytes)
	}
	if s.MaxDegree < 1 || s.MaxDegree > 3 {
		t.Errorf("MaxDegree = %d", s.MaxDegree)
	}
	if c.IsEmpty() {
		t.Error("IsEmpty on non-empty CST")
	}
}

// bruteForce enumerates embeddings directly on the data graph by
// label-aware backtracking, with no auxiliary structure at all. It is the
// ground truth the CST pipeline must agree with.
func bruteForce(q *graph.Query, g *graph.Graph) map[string]bool {
	out := make(map[string]bool)
	n := q.NumVertices()
	mapping := make(graph.Embedding, n)
	used := make(map[graph.VertexID]bool)
	var rec func(u int)
	rec = func(u int) {
		if u == n {
			out[mapping.Key()] = true
			return
		}
	cand:
		for _, v := range g.VerticesWithLabel(q.Label(u)) {
			if used[v] {
				continue
			}
			for _, w := range q.Neighbors(u) {
				if w < u && !g.HasEdge(mapping[w], v) {
					continue cand
				}
			}
			mapping[u] = v
			used[v] = true
			rec(u + 1)
			used[v] = false
		}
	}
	rec(0)
	return out
}

func embeddingSet(es []graph.Embedding) map[string]bool {
	m := make(map[string]bool, len(es))
	for _, e := range es {
		m[e.Key()] = true
	}
	return m
}

func setsEqual(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// TestSoundnessProperty is Theorem 1: enumerating the CST yields exactly
// the brute-force embedding set, on random graphs and random queries.
func TestSoundnessProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomUniform(graph.GenConfig{
			NumVertices: 60 + rng.Intn(120),
			NumLabels:   2 + rng.Intn(3),
			AvgDegree:   2 + rng.Float64()*4,
			Seed:        seed,
		})
		q := graph.RandomConnectedQuery("rq", 2+rng.Intn(4), rng.Intn(3), g.NumLabels(), rng)
		tr := order.BuildBFSTree(q, order.SelectRoot(q, g))
		c := Build(q, g, tr)
		if err := c.Validate(g); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		o := order.PathBased(tr, c)
		if err := o.Validate(tr); err != nil {
			t.Logf("seed %d: bad order: %v", seed, err)
			return false
		}
		got := embeddingSet(CollectAll(c, o))
		want := bruteForce(q, g)
		if !setsEqual(got, want) {
			t.Logf("seed %d: CST found %d embeddings, brute force %d", seed, len(got), len(want))
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSoundnessContainment checks the paper's soundness constraint
// directly: if an embedding maps u to v, then v ∈ C(u).
func TestSoundnessContainment(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomPowerLaw(graph.GenConfig{
			NumVertices: 150, NumLabels: 3, AvgDegree: 4, Seed: seed,
		})
		q := graph.RandomConnectedQuery("rq", 2+rng.Intn(3), rng.Intn(2), 3, rng)
		tr := order.BuildBFSTree(q, 0)
		c := Build(q, g, tr)
		for key := range bruteForce(q, g) {
			// Decode key back into vertex ids (5 bytes per vertex).
			for u := 0; u < q.NumVertices(); u++ {
				v := graph.VertexID(key[u*5]) | graph.VertexID(key[u*5+1])<<8 |
					graph.VertexID(key[u*5+2])<<16 | graph.VertexID(key[u*5+3])<<24
				if c.CandIndexOf(u, v) < 0 {
					t.Logf("seed %d: embedding vertex %d missing from C(u%d)", seed, v, u)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestEnumerateOrderInvariance: the embedding *set* must not depend on the
// matching order used.
func TestEnumerateOrderInvariance(t *testing.T) {
	q, g := fig1Query(), fig1Data()
	tr := order.BuildBFSTree(q, 0)
	c := Build(q, g, tr)
	ref := embeddingSet(CollectAll(c, order.Order{0, 1, 2, 3}))
	for _, o := range order.AllConnected(tr, 0) {
		got := embeddingSet(CollectAll(c, o))
		if !setsEqual(got, ref) {
			t.Errorf("order %v changed the embedding set", o)
		}
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	c := fig1CST(t)
	calls := 0
	n := Enumerate(c, order.Order{0, 1, 2, 3}, func(graph.Embedding) bool {
		calls++
		return false // stop after the first
	})
	if calls != 1 || n != 1 {
		t.Errorf("early stop: calls=%d n=%d, want 1/1", calls, n)
	}
}

func TestBuildEmptyCandidates(t *testing.T) {
	// A query label absent from the data graph must give an empty CST and
	// zero embeddings, not a crash.
	q := graph.MustQuery("missing", []graph.Label{9, 9}, [][2]graph.QueryVertex{{0, 1}})
	g := fig1Data()
	tr := order.BuildBFSTree(q, 0)
	c := Build(q, g, tr)
	if !c.IsEmpty() {
		t.Error("expected empty CST")
	}
	if n := Count(c, order.Order{0, 1}); n != 0 {
		t.Errorf("Count = %d, want 0", n)
	}
}

func TestAvgBranch(t *testing.T) {
	c := fig1CST(t)
	// u0→u1: v1→{v4}, v2→{v6}: 2 entries / 2 candidates = 1.0.
	if b := c.AvgBranch(0, 1); b != 1.0 {
		t.Errorf("AvgBranch(0,1) = %v, want 1.0", b)
	}
	// Sorted candidates must stay sorted after build.
	for u := 0; u < c.Query.NumVertices(); u++ {
		if !sort.SliceIsSorted(c.Cand[u], func(i, j int) bool { return c.Cand[u][i] < c.Cand[u][j] }) {
			t.Errorf("C(u%d) unsorted", u)
		}
	}
}
