package cst

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestPartitionConcurrentMatchesSequentialLDBC is the PR's acceptance gate:
// for every LDBC benchmark query, the concurrent producer — every pool size,
// both modes — yields exactly the sequential Partition's embedding totals.
// The CI -race job runs this, so it also proves the producer is race-clean
// while pieces are enumerated from the worker goroutines.
func TestPartitionConcurrentMatchesSequentialLDBC(t *testing.T) {
	for _, name := range []string{"q1", "q2", "q3", "q4", "q5"} {
		c, o, cfg := ldbcCST(t, name)
		want := Count(c, o)
		var seqSum int64
		seqN := Partition(c, o, cfg, func(p *CST) { seqSum += Enumerate(p, o, nil) })
		if seqSum != want {
			t.Fatalf("%s: sequential union %d, want %d", name, seqSum, want)
		}
		for _, workers := range []int{1, 2, 4} {
			var sum atomic.Int64
			n := PartitionConcurrent(c, o, cfg, ConcurrentOptions{Workers: workers}, func(p *CST) {
				sum.Add(Enumerate(p, o, nil))
			})
			if sum.Load() != want {
				t.Errorf("%s workers=%d: unordered union %d, want %d", name, workers, sum.Load(), want)
			}
			if workers <= 1 && n != seqN {
				t.Errorf("%s workers=%d: %d pieces, sequential %d", name, workers, n, seqN)
			}

			var ordSum int64
			ordN := PartitionConcurrent(c, o, cfg, ConcurrentOptions{Workers: workers, Ordered: true},
				func(p *CST) { ordSum += Enumerate(p, o, nil) })
			if ordSum != want {
				t.Errorf("%s workers=%d: ordered union %d, want %d", name, workers, ordSum, want)
			}
			if ordN != seqN {
				t.Errorf("%s workers=%d: ordered %d pieces, sequential %d", name, workers, ordN, seqN)
			}
		}
	}
}

// TestPartitionConcurrentPieceMultisetMatches: beyond totals, the multiset
// of per-piece embedding counts from the unordered producer equals the
// sequential one — the pieces themselves are identical, only delivery order
// differs.
func TestPartitionConcurrentPieceMultisetMatches(t *testing.T) {
	c, o, cfg := ldbcCST(t, "q2")
	counts := func(run func(process func(*CST)) int) map[int64]int {
		m := make(map[int64]int)
		var mu sync.Mutex
		run(func(p *CST) {
			n := Enumerate(p, o, nil)
			mu.Lock()
			m[n]++
			mu.Unlock()
		})
		return m
	}
	seq := counts(func(process func(*CST)) int { return Partition(c, o, cfg, process) })
	par := counts(func(process func(*CST)) int {
		return PartitionConcurrent(c, o, cfg, ConcurrentOptions{Workers: 4}, process)
	})
	if len(seq) != len(par) {
		t.Fatalf("distinct per-piece counts: %d vs %d", len(par), len(seq))
	}
	for n, k := range seq {
		if par[n] != k {
			t.Fatalf("pieces with %d embeddings: %d vs sequential %d", n, par[n], k)
		}
	}
}

// TestPartitionConcurrentBoundsParallelism: the task pool never runs more
// than Workers process callbacks at once (unordered mode runs them inline on
// the workers), and ordered mode never runs more than one.
func TestPartitionConcurrentBoundsParallelism(t *testing.T) {
	c, o, cfg := ldbcCST(t, "q3")
	const workers = 3
	var inFlight, peak atomic.Int32
	track := func(p *CST) {
		cur := inFlight.Add(1)
		for {
			old := peak.Load()
			if cur <= old || peak.CompareAndSwap(old, cur) {
				break
			}
		}
		Enumerate(p, o, nil)
		inFlight.Add(-1)
	}
	PartitionConcurrent(c, o, cfg, ConcurrentOptions{Workers: workers}, track)
	if p := peak.Load(); p > workers {
		t.Errorf("unordered: %d concurrent process calls, pool bound is %d", p, workers)
	}
	inFlight.Store(0)
	peak.Store(0)
	PartitionConcurrent(c, o, cfg, ConcurrentOptions{Workers: workers, Ordered: true}, track)
	if p := peak.Load(); p > 1 {
		t.Errorf("ordered: %d concurrent process calls, want sequential delivery", p)
	}
}

// TestPartitionConcurrentStealSerialized: unordered-mode Steal offers never
// overlap even with many producer workers, so the host's scheduler state
// needs no locking of its own. The non-atomic counter below is the probe —
// under -race any overlapping offer is reported.
func TestPartitionConcurrentStealSerialized(t *testing.T) {
	c, o, cfg := ldbcCST(t, "q4")
	offers := 0 // deliberately unsynchronised: Steal must be serialized
	var inSteal atomic.Int32
	cfg.Steal = func(p *CST) bool {
		if inSteal.Add(1) != 1 {
			t.Error("overlapping Steal offers")
		}
		offers++
		inSteal.Add(-1)
		return offers%5 == 0
	}
	var processed atomic.Int64
	n := PartitionConcurrent(c, o, cfg, ConcurrentOptions{Workers: 4}, func(p *CST) {
		processed.Add(1)
	})
	if offers == 0 {
		t.Fatal("config never offered a steal — thresholds not tight enough to exercise the hook")
	}
	stolen := int64(offers / 5) // every 5th offer accepted
	if got := processed.Load() + stolen; int64(n) != got {
		t.Errorf("count %d != processed %d + stolen %d", n, processed.Load(), stolen)
	}
}

// TestPartitionOrderedStealSkipsSpeculation: once the drain's Steal takes a
// node, speculating workers must skip its descendants instead of
// materialising restricts the drain will discard. The hook holds every
// speculative chunk task at its gate until the root's Steal decision has
// been marked; with the whole tree under a stolen root, no task may then
// proceed to a restrict.
func TestPartitionOrderedStealSkipsSpeculation(t *testing.T) {
	c, o, cfg := ldbcCST(t, "q2")
	if cfg.Fits(c) {
		t.Fatal("root must violate the thresholds for this scenario")
	}
	release := make(chan struct{})
	var restricts atomic.Int32
	testOrderedHook = func(event string) {
		switch event {
		case "chunk-start":
			<-release
		case "chunk-restrict":
			restricts.Add(1)
		case "stolen":
			close(release)
		}
	}
	defer func() { testOrderedHook = nil }()
	stole := false
	cfg.Steal = func(p *CST) bool {
		if stole {
			return false
		}
		stole = true // first offer is the root: take the whole tree
		return true
	}
	pieces := 0
	n := PartitionConcurrent(c, o, cfg, ConcurrentOptions{Workers: 4, Ordered: true},
		func(*CST) { pieces++ })
	if !stole {
		t.Fatal("Steal was never offered")
	}
	if n != 1 || pieces != 0 {
		t.Fatalf("count=%d pieces=%d after stealing the root, want 1/0", n, pieces)
	}
	if got := restricts.Load(); got != 0 {
		t.Errorf("workers restricted %d chunks under a stolen root, want 0", got)
	}
}

// TestPartitionOrderedStealMidTreeParity: stealing a mid-tree subtree (with
// skip marks active) still delivers every piece outside it, in the exact
// sequential order, with the exact sequential count.
func TestPartitionOrderedStealMidTreeParity(t *testing.T) {
	c, o, cfg := ldbcCST(t, "q3")
	// Sequential reference: accept the third offer.
	runWith := func(run func(PartitionConfig, func(*CST)) int) (pieces []int64, count int) {
		offers := 0
		cfg := cfg
		cfg.Steal = func(p *CST) bool {
			offers++
			return offers == 3
		}
		count = run(cfg, func(p *CST) { pieces = append(pieces, Enumerate(p, o, nil)) })
		return pieces, count
	}
	wantPieces, wantCount := runWith(func(cfg PartitionConfig, process func(*CST)) int {
		return Partition(c, o, cfg, process)
	})
	gotPieces, gotCount := runWith(func(cfg PartitionConfig, process func(*CST)) int {
		return PartitionConcurrent(c, o, cfg, ConcurrentOptions{Workers: 4, Ordered: true}, process)
	})
	if gotCount != wantCount {
		t.Fatalf("count %d, sequential %d", gotCount, wantCount)
	}
	if len(gotPieces) != len(wantPieces) {
		t.Fatalf("%d pieces, sequential %d", len(gotPieces), len(wantPieces))
	}
	for i := range gotPieces {
		if gotPieces[i] != wantPieces[i] {
			t.Fatalf("piece %d has %d embeddings, sequential %d", i, gotPieces[i], wantPieces[i])
		}
	}
}
