package cst

import (
	"sort"
	"sync"

	"fastmatch/graph"
	"fastmatch/internal/order"
)

// Build constructs the CST for (q, G) over the BFS tree t, following
// Algorithm 1: top-down candidate construction, bottom-up refinement, then
// adding edges between non-tree candidate neighbours. The soundness
// constraint — every data vertex participating in an embedding of q stays in
// its candidate set — holds because each pass only removes vertices that
// cannot appear in any embedding.
func Build(q *graph.Query, g *graph.Graph, t *order.Tree) *CST {
	return BuildWorkers(q, g, t, 1)
}

// parallelBuildMin is the candidate-set size below which a stamp-probe pass
// stays serial: goroutine fan-out only pays for itself on large sets.
const parallelBuildMin = 1024

// BuildWorkers is Build with the per-level stamp-probe passes run
// data-parallel over candidate vertices, bounded by workers. Build sits on
// the host's critical path (the modelled FPGA idles until the first
// partition arrives), so every pass leans on the graph's label index:
// candidate filtering scans only same-label vertices, the reachability
// passes probe only same-label neighbourhood runs, and adjacency
// construction intersects label-restricted runs instead of whole adjacency
// lists. The result is identical to Build's for any worker count — each
// pass marks serially, probes in order-preserving chunks, and the barrier
// between passes keeps the level order of Algorithm 1.
func BuildWorkers(q *graph.Query, g *graph.Graph, t *order.Tree, workers int) *CST {
	if workers < 1 {
		workers = 1
	}
	c := newCST(q, t)

	// Line 2/4: compute candidates from local features (label, degree and
	// neighbourhood label frequency). Query vertices are independent here,
	// so they fan out across the worker budget.
	nq := q.NumVertices()
	if workers > 1 && nq > 1 {
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for u := 0; u < nq; u++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(u graph.QueryVertex) {
				defer wg.Done()
				c.Cand[u] = localCandidates(q, g, u)
				<-sem
			}(u)
		}
		wg.Wait()
	} else {
		for u := 0; u < nq; u++ {
			c.Cand[u] = localCandidates(q, g, u)
		}
	}

	// Membership tests use a generation-stamped array instead of hash
	// sets: marking a candidate set costs one pass and queries are O(1)
	// with no per-pass allocation. Candidates of a query vertex all carry
	// its label, so the reachability probe walks only the matching label
	// run of each neighbourhood instead of the whole adjacency list. Marking
	// is serial; the probe over the filtered set is chunked across workers
	// (stamps are read-only while probing, and the join barrier orders each
	// probe pass after its mark).
	stamp := make([]uint32, g.NumVertices())
	var gen uint32
	mark := func(vs []graph.VertexID) {
		gen++
		for _, v := range vs {
			stamp[v] = gen
		}
	}
	probe := func(vs []graph.VertexID, l graph.Label) []graph.VertexID {
		myGen := gen
		return parallelKeep(vs, workers, func(v graph.VertexID) bool {
			for _, w := range g.NeighborsWithLabel(v, l, nil) {
				if stamp[w] == myGen {
					return true
				}
			}
			return false
		})
	}

	// Lines 3-7: top-down construction. A candidate of u survives only if
	// it is adjacent to at least one candidate of u's tree parent.
	topDown := func() {
		for _, u := range t.BFSOrder {
			if u == t.Root {
				continue
			}
			mark(c.Cand[t.Parent[u]])
			c.Cand[u] = probe(c.Cand[u], q.Label(t.Parent[u]))
		}
	}
	topDown()

	// Lines 8-14: bottom-up refinement. A candidate v of u is valid only if
	// every tree child uc has at least one candidate adjacent to v.
	for i := len(t.BFSOrder) - 1; i >= 0; i-- {
		u := t.BFSOrder[i]
		for _, uc := range t.Children[u] {
			mark(c.Cand[uc])
			c.Cand[u] = probe(c.Cand[u], q.Label(uc))
		}
	}

	// One more top-down pass: bottom-up refinement may have removed parent
	// candidates, stranding children whose only parents vanished. The paper
	// removes such candidates from adjacency lists (line 14); pruning them
	// from C(u) as well is equivalent and keeps the CST smaller.
	topDown()

	// Build adjacency lists for tree edges and (lines 15-19) non-tree
	// candidate neighbours, both directions, into the CST's flat CSR arenas.
	// Candidate counts are final here, so the offsets arena is exact.
	dir := directedEdges(t)
	offTotal := 0
	for _, e := range dir {
		offTotal += len(c.Cand[e[0]]) + 1
	}
	for _, cands := range c.Cand {
		c.sizeBytes += int64(len(cands)) * 4
	}
	asm := newAdjAssembler(offTotal, nil, len(dir))
	for _, e := range dir {
		c.buildAdjInto(g, e[0], e[1], &asm)
	}
	asm.finish(c)
	return c
}

// directedEdges lists both directions of every query edge, tree edges first
// in BFS order — the construction order the dense adjacency table is filled
// in.
func directedEdges(t *order.Tree) [][2]graph.QueryVertex {
	dir := make([][2]graph.QueryVertex, 0, 2*(len(t.BFSOrder)-1+len(t.NonTreeEdges)))
	for _, u := range t.BFSOrder {
		if u != t.Root {
			dir = append(dir, [2]graph.QueryVertex{t.Parent[u], u}, [2]graph.QueryVertex{u, t.Parent[u]})
		}
	}
	for _, e := range t.NonTreeEdges {
		dir = append(dir, [2]graph.QueryVertex{e[0], e[1]}, [2]graph.QueryVertex{e[1], e[0]})
	}
	return dir
}

// parallelKeep filters vs in place, preserving order, with the predicate
// evaluated in parallel chunks when the set is large enough to amortise the
// fan-out. Each chunk compacts within its own extent, then a serial pass
// packs the kept runs to the front — exactly the elements (and order) the
// serial filter keeps.
func parallelKeep(vs []graph.VertexID, workers int, keep func(graph.VertexID) bool) []graph.VertexID {
	if workers <= 1 || len(vs) < parallelBuildMin {
		out := vs[:0]
		for _, v := range vs {
			if keep(v) {
				out = append(out, v)
			}
		}
		return out
	}
	chunk := (len(vs) + workers - 1) / workers
	nchunks := (len(vs) + chunk - 1) / chunk
	kept := make([]int, nchunks)
	var wg sync.WaitGroup
	for i := 0; i < nchunks; i++ {
		lo := i * chunk
		hi := min(lo+chunk, len(vs))
		wg.Add(1)
		go func(i int, part []graph.VertexID) {
			defer wg.Done()
			n := 0
			for _, v := range part {
				if keep(v) {
					part[n] = v
					n++
				}
			}
			kept[i] = n
		}(i, vs[lo:hi])
	}
	wg.Wait()
	out := vs[:0]
	for i := 0; i < nchunks; i++ {
		lo := i * chunk
		out = append(out, vs[lo:lo+kept[i]]...)
	}
	return out
}

// localCandidates returns the data vertices conforming with u's local
// features: same label, at least u's degree, and at least u's per-label
// neighbour counts (the NLF filter used by CFL/DAF/CECI). The NLF map is
// hoisted into a sorted slice once per query vertex so the per-candidate
// loop performs no map iteration, and each per-label degree is one
// label-index run-length read.
func localCandidates(q *graph.Query, g *graph.Graph, u graph.QueryVertex) []graph.VertexID {
	type labelNeed struct {
		l    graph.Label
		need int
	}
	nlf := q.NeighborLabelCounts(u)
	needs := make([]labelNeed, 0, len(nlf))
	for l, need := range nlf {
		needs = append(needs, labelNeed{l, need})
	}
	sort.Slice(needs, func(i, j int) bool { return needs[i].l < needs[j].l })
	minDeg := q.Degree(u)
	var out []graph.VertexID
	for _, v := range g.VerticesWithLabel(q.Label(u)) {
		if g.Degree(v) < minDeg {
			continue
		}
		ok := true
		for _, ln := range needs {
			if g.DegreeWithLabel(v, ln.l) < ln.need {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, v)
		}
	}
	return out
}

// buildAdjInto fills the from → to adjacency by intersecting each
// from-candidate's label-restricted data adjacency (the run of neighbours
// labelled like `to`, a zero-copy subslice of the label index) with C(to).
// Both inputs are sorted, so a merge intersection costs
// O(d^label_G(v) + |C(to)|) per candidate. When the query edge carries a
// label, only data edges with a matching half-edge label survive — the
// edge-labeled extension of Section II. Rows land in the assembler's shared
// arenas; the view is installed at finish time.
func (c *CST) buildAdjInto(g *graph.Graph, from, to graph.QueryVertex, asm *adjAssembler) {
	src, dst := c.Cand[from], c.Cand[to]
	lt := c.Query.Label(to)
	want := c.Query.EdgeLabel(from, to)
	wantRev := c.Query.EdgeLabel(to, from)
	off := asm.begin(len(src))
	tgtLo := len(asm.tgt)
	var maxDeg int32
	for i, v := range src {
		rowLo := len(asm.tgt)
		adj, elabels := g.NeighborsWithLabelAndEdgeLabels(v, lt)
		// Merge-intersect adj (sorted vertex ids within the label run) with
		// dst (sorted ids, all labelled lt), emitting dst *indices*.
		ai, di := 0, 0
		for ai < len(adj) && di < len(dst) {
			switch {
			case adj[ai] < dst[di]:
				ai++
			case adj[ai] > dst[di]:
				di++
			default:
				// Both half-edge labels must match so that enumerating via
				// either direction of this adjacency enforces the full
				// (possibly direction-encoded) constraint.
				ok := want == graph.WildcardEdgeLabel || elabels == nil || elabels[ai] == want
				if ok && wantRev != graph.WildcardEdgeLabel && elabels != nil {
					ok = g.HasEdgeLabeled(adj[ai], v, wantRev)
				}
				if ok {
					asm.tgt = append(asm.tgt, CandIndex(di))
				}
				ai++
				di++
			}
		}
		off[i+1] = int32(len(asm.tgt) - tgtLo)
		if d := int32(len(asm.tgt) - rowLo); d > maxDeg {
			maxDeg = d
		}
	}
	asm.commit(from, to, len(src), tgtLo, maxDeg)
}
