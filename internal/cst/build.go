package cst

import (
	"sort"

	"fastmatch/graph"
	"fastmatch/internal/order"
)

// Build constructs the CST for (q, G) over the BFS tree t, following
// Algorithm 1: top-down candidate construction, bottom-up refinement, then
// adding edges between non-tree candidate neighbours. The soundness
// constraint — every data vertex participating in an embedding of q stays in
// its candidate set — holds because each pass only removes vertices that
// cannot appear in any embedding.
//
// Build sits on the host's critical path (the modelled FPGA idles until the
// first partition arrives), so every pass leans on the graph's label index:
// candidate filtering scans only same-label vertices, the reachability
// passes probe only same-label neighbourhood runs, and adjacency
// construction intersects label-restricted runs instead of whole adjacency
// lists.
func Build(q *graph.Query, g *graph.Graph, t *order.Tree) *CST {
	c := newCST(q, t)

	// Line 2/4: compute candidates from local features (label, degree and
	// neighbourhood label frequency).
	for u := 0; u < q.NumVertices(); u++ {
		c.Cand[u] = localCandidates(q, g, u)
	}

	// Membership tests use a generation-stamped array instead of hash
	// sets: marking a candidate set costs one pass and queries are O(1)
	// with no per-pass allocation. Candidates of a query vertex all carry
	// its label, so the reachability probe walks only the matching label
	// run of each neighbourhood instead of the whole adjacency list.
	stamp := make([]uint32, g.NumVertices())
	var gen uint32
	mark := func(vs []graph.VertexID) {
		gen++
		for _, v := range vs {
			stamp[v] = gen
		}
	}
	anyNeighborMarked := func(v graph.VertexID, l graph.Label) bool {
		for _, w := range g.NeighborsWithLabel(v, l, nil) {
			if stamp[w] == gen {
				return true
			}
		}
		return false
	}

	// Lines 3-7: top-down construction. A candidate of u survives only if
	// it is adjacent to at least one candidate of u's tree parent.
	topDown := func() {
		for _, u := range t.BFSOrder {
			if u == t.Root {
				continue
			}
			lp := q.Label(t.Parent[u])
			mark(c.Cand[t.Parent[u]])
			kept := c.Cand[u][:0]
			for _, v := range c.Cand[u] {
				if anyNeighborMarked(v, lp) {
					kept = append(kept, v)
				}
			}
			c.Cand[u] = kept
		}
	}
	topDown()

	// Lines 8-14: bottom-up refinement. A candidate v of u is valid only if
	// every tree child uc has at least one candidate adjacent to v.
	for i := len(t.BFSOrder) - 1; i >= 0; i-- {
		u := t.BFSOrder[i]
		if len(t.Children[u]) == 0 {
			continue
		}
		kept := c.Cand[u]
		for _, uc := range t.Children[u] {
			lc := q.Label(uc)
			mark(c.Cand[uc])
			out := kept[:0]
			for _, v := range kept {
				if anyNeighborMarked(v, lc) {
					out = append(out, v)
				}
			}
			kept = out
		}
		c.Cand[u] = kept
	}

	// One more top-down pass: bottom-up refinement may have removed parent
	// candidates, stranding children whose only parents vanished. The paper
	// removes such candidates from adjacency lists (line 14); pruning them
	// from C(u) as well is equivalent and keeps the CST smaller.
	topDown()

	// Build adjacency lists for tree edges and (lines 15-19) non-tree
	// candidate neighbours, both directions.
	for _, u := range t.BFSOrder {
		if u != t.Root {
			c.buildAdj(g, t.Parent[u], u)
			c.buildAdj(g, u, t.Parent[u])
		}
	}
	for _, e := range t.NonTreeEdges {
		c.buildAdj(g, e[0], e[1])
		c.buildAdj(g, e[1], e[0])
	}
	return c
}

// localCandidates returns the data vertices conforming with u's local
// features: same label, at least u's degree, and at least u's per-label
// neighbour counts (the NLF filter used by CFL/DAF/CECI). The NLF map is
// hoisted into a sorted slice once per query vertex so the per-candidate
// loop performs no map iteration, and each per-label degree is one
// label-index run-length read.
func localCandidates(q *graph.Query, g *graph.Graph, u graph.QueryVertex) []graph.VertexID {
	type labelNeed struct {
		l    graph.Label
		need int
	}
	nlf := q.NeighborLabelCounts(u)
	needs := make([]labelNeed, 0, len(nlf))
	for l, need := range nlf {
		needs = append(needs, labelNeed{l, need})
	}
	sort.Slice(needs, func(i, j int) bool { return needs[i].l < needs[j].l })
	minDeg := q.Degree(u)
	var out []graph.VertexID
	for _, v := range g.VerticesWithLabel(q.Label(u)) {
		if g.Degree(v) < minDeg {
			continue
		}
		ok := true
		for _, ln := range needs {
			if g.DegreeWithLabel(v, ln.l) < ln.need {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, v)
		}
	}
	return out
}

// buildAdj fills the from → to adjacency by intersecting each
// from-candidate's label-restricted data adjacency (the run of neighbours
// labelled like `to`, a zero-copy subslice of the label index) with C(to).
// Both inputs are sorted, so a merge intersection costs
// O(d^label_G(v) + |C(to)|) per candidate. When the query edge carries a
// label, only data edges with a matching half-edge label survive — the
// edge-labeled extension of Section II.
func (c *CST) buildAdj(g *graph.Graph, from, to graph.QueryVertex) {
	src, dst := c.Cand[from], c.Cand[to]
	lt := c.Query.Label(to)
	want := c.Query.EdgeLabel(from, to)
	wantRev := c.Query.EdgeLabel(to, from)
	a := &Adj{Offsets: make([]int32, len(src)+1)}
	for i, v := range src {
		adj, elabels := g.NeighborsWithLabelAndEdgeLabels(v, lt)
		// Merge-intersect adj (sorted vertex ids within the label run) with
		// dst (sorted ids, all labelled lt), emitting dst *indices*.
		ai, di := 0, 0
		for ai < len(adj) && di < len(dst) {
			switch {
			case adj[ai] < dst[di]:
				ai++
			case adj[ai] > dst[di]:
				di++
			default:
				// Both half-edge labels must match so that enumerating via
				// either direction of this adjacency enforces the full
				// (possibly direction-encoded) constraint.
				ok := want == graph.WildcardEdgeLabel || elabels == nil || elabels[ai] == want
				if ok && wantRev != graph.WildcardEdgeLabel && elabels != nil {
					ok = g.HasEdgeLabeled(adj[ai], v, wantRev)
				}
				if ok {
					a.Targets = append(a.Targets, CandIndex(di))
				}
				ai++
				di++
			}
		}
		a.Offsets[i+1] = int32(len(a.Targets))
	}
	c.setAdj(from, to, a)
}
