package cst

import (
	"fastmatch/graph"
	"fastmatch/internal/order"
)

// Build constructs the CST for (q, G) over the BFS tree t, following
// Algorithm 1: top-down candidate construction, bottom-up refinement, then
// adding edges between non-tree candidate neighbours. The soundness
// constraint — every data vertex participating in an embedding of q stays in
// its candidate set — holds because each pass only removes vertices that
// cannot appear in any embedding.
func Build(q *graph.Query, g *graph.Graph, t *order.Tree) *CST {
	c := &CST{
		Query: q,
		Tree:  t,
		Cand:  make([][]graph.VertexID, q.NumVertices()),
		adj:   make(map[edgeKey]*adjList),
	}

	// Line 2/4: compute candidates from local features (label, degree and
	// neighbourhood label frequency).
	for u := 0; u < q.NumVertices(); u++ {
		c.Cand[u] = localCandidates(q, g, u)
	}

	// Membership tests use a generation-stamped array instead of hash
	// sets: marking a candidate set costs one pass and queries are O(1)
	// with no per-pass allocation — CST construction is on the host's
	// critical path (the FPGA idles until the first partition arrives), so
	// its constant factor matters.
	stamp := make([]uint32, g.NumVertices())
	var gen uint32
	mark := func(vs []graph.VertexID) {
		gen++
		for _, v := range vs {
			stamp[v] = gen
		}
	}
	anyNeighborMarked := func(v graph.VertexID) bool {
		for _, w := range g.Neighbors(v) {
			if stamp[w] == gen {
				return true
			}
		}
		return false
	}

	// Lines 3-7: top-down construction. A candidate of u survives only if
	// it is adjacent to at least one candidate of u's tree parent.
	topDown := func() {
		for _, u := range t.BFSOrder {
			if u == t.Root {
				continue
			}
			mark(c.Cand[t.Parent[u]])
			kept := c.Cand[u][:0]
			for _, v := range c.Cand[u] {
				if anyNeighborMarked(v) {
					kept = append(kept, v)
				}
			}
			c.Cand[u] = kept
		}
	}
	topDown()

	// Lines 8-14: bottom-up refinement. A candidate v of u is valid only if
	// every tree child uc has at least one candidate adjacent to v.
	for i := len(t.BFSOrder) - 1; i >= 0; i-- {
		u := t.BFSOrder[i]
		if len(t.Children[u]) == 0 {
			continue
		}
		kept := c.Cand[u]
		for _, uc := range t.Children[u] {
			mark(c.Cand[uc])
			out := kept[:0]
			for _, v := range kept {
				if anyNeighborMarked(v) {
					out = append(out, v)
				}
			}
			kept = out
		}
		c.Cand[u] = kept
	}

	// One more top-down pass: bottom-up refinement may have removed parent
	// candidates, stranding children whose only parents vanished. The paper
	// removes such candidates from adjacency lists (line 14); pruning them
	// from C(u) as well is equivalent and keeps the CST smaller.
	topDown()

	// Build adjacency lists for tree edges and (lines 15-19) non-tree
	// candidate neighbours, both directions.
	for _, u := range t.BFSOrder {
		if u != t.Root {
			c.buildAdj(g, t.Parent[u], u)
			c.buildAdj(g, u, t.Parent[u])
		}
	}
	for _, e := range t.NonTreeEdges {
		c.buildAdj(g, e[0], e[1])
		c.buildAdj(g, e[1], e[0])
	}
	return c
}

// localCandidates returns the data vertices conforming with u's local
// features: same label, at least u's degree, and at least u's per-label
// neighbour counts (the NLF filter used by CFL/DAF/CECI).
func localCandidates(q *graph.Query, g *graph.Graph, u graph.QueryVertex) []graph.VertexID {
	nlf := q.NeighborLabelCounts(u)
	var out []graph.VertexID
	for _, v := range g.VerticesWithLabel(q.Label(u)) {
		if g.Degree(v) < q.Degree(u) {
			continue
		}
		ok := true
		for l, need := range nlf {
			if g.DegreeWithLabel(v, l) < need {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, v)
		}
	}
	return out
}

// buildAdj fills adj[{from,to}] by intersecting each from-candidate's data
// adjacency with C(to). Both inputs are sorted, so a merge intersection
// costs O(d_G(v) + |C(to)|) per candidate. When the query edge carries a
// label, only data edges with a matching half-edge label survive — the
// edge-labeled extension of Section II.
func (c *CST) buildAdj(g *graph.Graph, from, to graph.QueryVertex) {
	src, dst := c.Cand[from], c.Cand[to]
	want := c.Query.EdgeLabel(from, to)
	wantRev := c.Query.EdgeLabel(to, from)
	a := &adjList{Offsets: make([]int32, len(src)+1)}
	for i, v := range src {
		adj := g.Neighbors(v)
		elabels := g.EdgeLabels(v)
		// Merge-intersect adj (sorted vertex ids) with dst (sorted ids),
		// emitting dst *indices*.
		ai, di := 0, 0
		for ai < len(adj) && di < len(dst) {
			switch {
			case adj[ai] < dst[di]:
				ai++
			case adj[ai] > dst[di]:
				di++
			default:
				// Both half-edge labels must match so that enumerating via
				// either direction of this adjacency enforces the full
				// (possibly direction-encoded) constraint.
				ok := want == graph.WildcardEdgeLabel || elabels == nil || elabels[ai] == want
				if ok && wantRev != graph.WildcardEdgeLabel && elabels != nil {
					ok = g.HasEdgeLabeled(adj[ai], v, wantRev)
				}
				if ok {
					a.Targets = append(a.Targets, CandIndex(di))
				}
				ai++
				di++
			}
		}
		a.Offsets[i+1] = int32(len(a.Targets))
	}
	c.adj[edgeKey{from, to}] = a
}
