package cst

import (
	"fmt"
	"testing"

	"fastmatch/internal/order"
	"fastmatch/ldbc"
)

// benchInput builds the LDBC-like data graph and one query's BFS tree,
// shared by the build and partition benchmarks.
func benchInput(b *testing.B, queryName string, basePersons int) (*CST, order.Order, PartitionConfig) {
	b.Helper()
	g := ldbc.Generate(ldbc.Config{BasePersons: basePersons, Seed: 42})
	q, err := ldbc.QueryByName(queryName)
	if err != nil {
		b.Fatal(err)
	}
	root := order.SelectRoot(q, g)
	tree := order.BuildBFSTree(q, root)
	c := Build(q, g, tree)
	o := order.PathBased(tree, c)
	// Thresholds small enough that the benchmark CSTs really split, the way
	// the bench harness shrinks the modelled card.
	cfg := PartitionConfig{MaxSizeBytes: 16 << 10, MaxCandDegree: 64}
	return c, o, cfg
}

// BenchmarkCSTBuild measures Algorithm 1 (candidate filtering plus both
// adjacency passes) — the host-side critical path the FPGA idles behind.
func BenchmarkCSTBuild(b *testing.B) {
	for _, name := range []string{"q1", "q5"} {
		g := ldbc.Generate(ldbc.Config{BasePersons: 200, Seed: 42})
		q, err := ldbc.QueryByName(name)
		if err != nil {
			b.Fatal(err)
		}
		root := order.SelectRoot(q, g)
		tree := order.BuildBFSTree(q, root)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c := Build(q, g, tree)
				if c.IsEmpty() {
					b.Fatal("empty CST")
				}
			}
		})
	}
}

// BenchmarkPartition measures Algorithm 2's sequential restrict-and-recurse
// over a CST that genuinely violates the thresholds.
func BenchmarkPartition(b *testing.B) {
	for _, name := range []string{"q1", "q5"} {
		c, o, cfg := benchInput(b, name, 200)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var pieces int
			for i := 0; i < b.N; i++ {
				n := Partition(c, o, cfg, func(*CST) {})
				if pieces == 0 {
					pieces = n
				} else if n != pieces {
					b.Fatalf("piece drift: %d then %d", pieces, n)
				}
			}
		})
	}
}

// BenchmarkPartitionConcurrent measures the ordered concurrent producer at
// a small pool size — the host.Match configuration.
func BenchmarkPartitionConcurrent(b *testing.B) {
	c, o, cfg := benchInput(b, "q1", 200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		PartitionConcurrent(c, o, cfg, ConcurrentOptions{Workers: 2, Ordered: true}, func(*CST) {})
	}
}

// BenchmarkCSTBuildWorkers measures the parallel stamp-probe build across
// pool sizes; workers=1 is the serial Build baseline on the same input.
func BenchmarkCSTBuildWorkers(b *testing.B) {
	g := ldbc.Generate(ldbc.Config{BasePersons: 200, Seed: 42})
	q, err := ldbc.QueryByName("q5")
	if err != nil {
		b.Fatal(err)
	}
	root := order.SelectRoot(q, g)
	tree := order.BuildBFSTree(q, root)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c := BuildWorkers(q, g, tree, workers)
				if c.IsEmpty() {
					b.Fatal("empty CST")
				}
			}
		})
	}
}

// BenchmarkEnumerate measures the prepared Enumerator's count-only walk — a
// pooled enumerator Reset against the same CST each iteration, the shape
// host.Match's inactive-counter path runs per partition piece.
func BenchmarkEnumerate(b *testing.B) {
	for _, name := range []string{"q1", "q5"} {
		c, o, _ := benchInput(b, name, 200)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var e Enumerator
			var n int64
			for i := 0; i < b.N; i++ {
				e.Reset(c, o)
				n = e.Run(nil)
			}
			if n == 0 {
				b.Fatal("no embeddings")
			}
		})
	}
}
