package cst

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fastmatch/graph"
	"fastmatch/internal/order"
)

func TestEvenChunk(t *testing.T) {
	// 10 items in 3 chunks: 4,3,3 covering [0,10) without gaps.
	prev := 0
	total := 0
	for i := 0; i < 3; i++ {
		c := evenChunk(10, 3, i)
		if c[0] != prev {
			t.Errorf("chunk %d starts at %d, want %d", i, c[0], prev)
		}
		total += c[1] - c[0]
		prev = c[1]
	}
	if total != 10 || prev != 10 {
		t.Errorf("chunks cover %d ending at %d", total, prev)
	}
	if c := evenChunk(2, 2, 1); c != [2]int{1, 2} {
		t.Errorf("evenChunk(2,2,1) = %v", c)
	}
}

// TestPartitionMatchesPaperExample3 reproduces Fig. 4(b)/(c): partitioning
// the Fig. 4(a) CST with k=2 at the root yields a v1-rooted piece with
// C(u1)={v3,v5}, C(u2)={v6,v8}, C(u3)={v9,v10} and a v2-rooted piece with
// C(u1)={v3,v4}, C(u2)={v7}, C(u3)={v9,v10}.
func TestPartitionMatchesPaperExample3(t *testing.T) {
	c := fig4CST()
	o := order.Order{0, 1, 2, 3}
	cfg := PartitionConfig{
		// Force exactly one split (greedy k = ⌈size/(size−1)⌉ = 2) while
		// leaving both halves within budget.
		MaxSizeBytes:  c.SizeBytes() - 1,
		MaxCandDegree: 100,
	}
	var parts []*CST
	n := Partition(c, o, cfg, func(p *CST) { parts = append(parts, p) })
	if n != 2 || len(parts) != 2 {
		t.Fatalf("got %d partitions, want 2", n)
	}
	want := []map[graph.QueryVertex][]graph.VertexID{
		{0: {1}, 1: {3, 5}, 2: {6, 8}, 3: {9, 10}},
		{0: {2}, 1: {3, 4}, 2: {7}, 3: {9, 10}},
	}
	for pi, p := range parts {
		for u, wantCands := range want[pi] {
			got := vertsOf(p, u)
			if len(got) != len(wantCands) {
				t.Fatalf("partition %d: C(u%d) = %v, want %v", pi, u, got, wantCands)
			}
			for i := range wantCands {
				if got[i] != wantCands[i] {
					t.Fatalf("partition %d: C(u%d) = %v, want %v", pi, u, got, wantCands)
				}
			}
		}
	}
}

// TestPartitionNoOverlapNoLoss is the paper's "no overlap of the search
// space … so no repeated results" claim, as a property over random inputs:
// the multiset of embeddings across partitions equals the unpartitioned set.
func TestPartitionNoOverlapNoLoss(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomUniform(graph.GenConfig{
			NumVertices: 60 + rng.Intn(80),
			NumLabels:   2 + rng.Intn(2),
			AvgDegree:   3 + rng.Float64()*3,
			Seed:        seed,
		})
		q := graph.RandomConnectedQuery("rq", 2+rng.Intn(4), rng.Intn(3), g.NumLabels(), rng)
		tr := order.BuildBFSTree(q, order.SelectRoot(q, g))
		c := Build(q, g, tr)
		o := order.PathBased(tr, c)
		full := embeddingSet(CollectAll(c, o))

		// Aggressively small budget to force deep recursive partitioning.
		cfg := PartitionConfig{MaxSizeBytes: c.SizeBytes()/7 + 64, MaxCandDegree: 3}
		union := make(map[string]bool)
		dup := false
		Partition(c, o, cfg, func(p *CST) {
			if err := p.Validate(g); err != nil {
				t.Logf("seed %d: invalid partition: %v", seed, err)
				dup = true
				return
			}
			for _, e := range CollectAll(p, o) {
				if union[e.Key()] {
					dup = true
				}
				union[e.Key()] = true
			}
		})
		if dup {
			t.Logf("seed %d: duplicate embedding across partitions", seed)
			return false
		}
		if !setsEqual(union, full) {
			t.Logf("seed %d: partition union %d vs full %d", seed, len(union), len(full))
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPartitionRespectsThresholds: every produced partition satisfies δS and
// δD whenever splitting can achieve it (singleton candidate sets bound how
// small a CST can get).
func TestPartitionRespectsThresholds(t *testing.T) {
	g := graph.RandomUniform(graph.GenConfig{NumVertices: 200, NumLabels: 2, AvgDegree: 6, Seed: 5})
	q := graph.RandomConnectedQuery("rq", 3, 1, 2, rand.New(rand.NewSource(5)))
	tr := order.BuildBFSTree(q, order.SelectRoot(q, g))
	c := Build(q, g, tr)
	o := order.PathBased(tr, c)
	cfg := PartitionConfig{MaxSizeBytes: c.SizeBytes() / 4, MaxCandDegree: 4}
	count := 0
	Partition(c, o, cfg, func(p *CST) {
		count++
		allSingleton := true
		for u := 0; u < p.Query.NumVertices(); u++ {
			if len(p.Cand[u]) > 1 {
				allSingleton = false
			}
		}
		if !cfg.Fits(p) && !allSingleton {
			t.Errorf("partition violates thresholds: size=%d maxDeg=%d", p.SizeBytes(), p.MaxCandDegree())
		}
	})
	if count < 2 {
		t.Errorf("expected multiple partitions, got %d", count)
	}
}

// TestPartitionFitsIsNoop: a CST already within budget must come back
// unsplit.
func TestPartitionFitsIsNoop(t *testing.T) {
	c := fig4CST()
	o := order.Order{0, 1, 2, 3}
	cfg := PartitionConfig{MaxSizeBytes: 1 << 30, MaxCandDegree: 1 << 20}
	var parts []*CST
	n := Partition(c, o, cfg, func(p *CST) { parts = append(parts, p) })
	if n != 1 || parts[0] != c {
		t.Errorf("got %d partitions, want the original back", n)
	}
}

// TestPartitionFixedK: the Fig. 8 experiment needs fixed-k splitting.
func TestPartitionFixedK(t *testing.T) {
	c := fig4CST()
	o := order.Order{0, 1, 2, 3}
	for _, k := range []int{2, 4} {
		cfg := PartitionConfig{
			MaxSizeBytes:  c.SizeBytes() - 1, // force at least one split
			MaxCandDegree: 100,
			FixedK:        k,
		}
		count := Partition(c, o, cfg, func(*CST) {})
		// Root has 2 candidates, so even k=4 clamps to 2 first-level parts.
		if count < 2 {
			t.Errorf("k=%d: got %d partitions", k, count)
		}
	}
}

// TestPartitionWorkloadConservation: the workload estimates of the pieces
// sum to the whole (tree-embedding counts are partitioned exactly).
func TestPartitionWorkloadConservation(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomUniform(graph.GenConfig{
			NumVertices: 80, NumLabels: 2, AvgDegree: 4, Seed: seed,
		})
		q := graph.RandomConnectedQuery("rq", 2+rng.Intn(3), rng.Intn(2), 2, rng)
		tr := order.BuildBFSTree(q, 0)
		c := Build(q, g, tr)
		o := order.PathBased(tr, c)
		total := EstimateWorkload(c)
		cfg := PartitionConfig{MaxSizeBytes: c.SizeBytes()/5 + 32, MaxCandDegree: 1 << 20}
		var sum float64
		Partition(c, o, cfg, func(p *CST) { sum += EstimateWorkload(p) })
		// Partition restriction can only *remove* unreachable tree
		// mappings that were counted optimistically at vertices preceding
		// the split point, so sum ≤ total; embeddings themselves are
		// conserved (previous test), and for splits at the root the DP is
		// exact, so allow slack but require the bound.
		return sum <= total+1e-6
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
