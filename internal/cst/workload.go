package cst

// EstimateWorkload computes W_CST, the paper's workload estimate for a CST
// (Section V-C): the number of embeddings ignoring all false positives,
// i.e. the number of mappings of the spanning tree t_q into the CST's tree
// edges, with no injectivity or non-tree checks. It is the bottom-up dynamic
// program of Example 4:
//
//	c_u(v) = ∏_{uc ∈ children(u)} Σ_{v' ∈ N^u_uc(v)} c_uc(v')
//	W_CST  = Σ_{v ∈ C(root)} c_root(v)
//
// Counts are float64 because real workloads overflow int64; the scheduler
// only compares magnitudes.
func EstimateWorkload(c *CST) float64 {
	perCand := PerCandidateWorkload(c)
	root := c.Tree.Root
	var total float64
	for i := range c.Cand[root] {
		total += perCand[root][i]
	}
	return total
}

// PerCandidateWorkload returns the DP table c_u(v) indexed as
// [queryVertex][candidateIndex]. The partitioner uses it to split root
// candidates into balanced chunks, and Fig. 4(d)'s example is a direct test
// of this function.
func PerCandidateWorkload(c *CST) [][]float64 {
	n := c.Query.NumVertices()
	table := make([][]float64, n)
	t := c.Tree
	// Bottom-up over BFS order.
	for i := len(t.BFSOrder) - 1; i >= 0; i-- {
		u := t.BFSOrder[i]
		table[u] = make([]float64, len(c.Cand[u]))
		if len(t.Children[u]) == 0 {
			for j := range table[u] {
				table[u][j] = 1
			}
			continue
		}
		for j := range c.Cand[u] {
			prod := 1.0
			for _, uc := range t.Children[u] {
				var sum float64
				for _, k := range c.Adjacency(u, uc, CandIndex(j)) {
					sum += table[uc][k]
				}
				prod *= sum
			}
			table[u][j] = prod
		}
	}
	return table
}

// CountTreeEmbeddings counts tree mappings by explicit one-at-a-time
// backtracking (no dynamic programming, no products): every assignment of a
// candidate to each query vertex such that tree edges are respected counts
// once. Tests use it as an independent check of the workload estimator.
// Only safe on small CSTs.
func CountTreeEmbeddings(c *CST) int64 {
	t := c.Tree
	assigned := make([]CandIndex, c.Query.NumVertices())
	var total int64
	var rec func(pos int)
	rec = func(pos int) {
		if pos == len(t.BFSOrder) {
			total++
			return
		}
		u := t.BFSOrder[pos]
		if u == t.Root {
			for i := range c.Cand[u] {
				assigned[u] = CandIndex(i)
				rec(pos + 1)
			}
			return
		}
		up := t.Parent[u]
		for _, k := range c.Adjacency(up, u, assigned[up]) {
			assigned[u] = k
			rec(pos + 1)
		}
	}
	rec(0)
	return total
}
