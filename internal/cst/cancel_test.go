package cst

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"fastmatch/graph"
	"fastmatch/internal/order"
)

// bigRestrictCST builds a CST large enough that a single restrict step runs
// tens of thousands of loop iterations — i.e. many multiples of the 4096
// amortisation window — so the in-restrict cancel poll is observable.
func bigRestrictCST(t *testing.T) (*CST, graph.QueryVertex) {
	t.Helper()
	g := graph.RandomUniform(graph.GenConfig{
		NumVertices: 24000, NumLabels: 2, AvgDegree: 6, Seed: 11,
	})
	rng := rand.New(rand.NewSource(3))
	q := graph.RandomConnectedQuery("big", 4, 0, g.NumLabels(), rng)
	tr := order.BuildBFSTree(q, 0)
	c := Build(q, g, tr)
	if len(c.Cand[tr.Root]) < 2*4096 {
		t.Fatalf("fixture too small: |C(root)| = %d, need > %d for multiple polls", len(c.Cand[tr.Root]), 2*4096)
	}
	return c, tr.Root
}

// TestRestrictCancelBoundedLatency: the cancel hook must be polled inside
// restrict's loops (amortised, every 4096 iterations), not just between
// pieces — so cancelling mid-restrict aborts the piece instead of paying
// for the whole restriction. The regression: restrict ran to completion
// however long it took, so one large piece could overrun a deadline by its
// full duration.
func TestRestrictCancelBoundedLatency(t *testing.T) {
	c, u := bigRestrictCST(t)
	chunk := [2]int{0, len(c.Cand[u]) - 1} // keep almost everything: maximal restrict work

	// Sanity: without a hook the same restrict completes and is non-empty.
	if part := restrict(c, u, chunk, &restrictScratch{}); part == nil || part.IsEmpty() {
		t.Fatal("uncancelled restrict returned nil/empty piece")
	}

	// Fire on the second poll: the first poll (tick 1) happens at the top of
	// the loops, the second only after ~4096 further iterations — inside the
	// piece. restrict must return nil, and must have polled at least twice,
	// which is impossible unless the check sits inside its loops.
	var calls atomic.Int64
	var firedAt atomic.Int64 // ns timestamp of the first true verdict
	sc := &restrictScratch{cancel: func() bool {
		if calls.Add(1) >= 2 {
			firedAt.CompareAndSwap(0, time.Now().UnixNano())
			return true
		}
		return false
	}}
	part := restrict(c, u, chunk, sc)
	elapsed := time.Duration(time.Now().UnixNano() - firedAt.Load())
	if part != nil {
		t.Fatal("restrict completed despite cancellation firing mid-piece")
	}
	if calls.Load() < 2 {
		t.Fatalf("cancel hook polled %d times during one large restrict, want >= 2 (amortised in-loop poll)", calls.Load())
	}
	// The latency bound: after the hook fires, restrict returns within one
	// amortisation window (~4096 candidate rows), which is microseconds of
	// work; 1s is a wildly generous ceiling that still catches "finished the
	// whole piece first" on any machine.
	if firedAt.Load() != 0 && elapsed > time.Second {
		t.Errorf("restrict returned %v after cancellation, want bounded (≪ 1s)", elapsed)
	}
}

// TestPartitionCancelMidRestrict: the partitioners must treat a nil
// (cancelled) restrict as "stop producing" — sequential recursion returns,
// the unordered pool drains, and ordered mode still closes every ready
// channel so its drain never blocks.
func TestPartitionCancelMidRestrict(t *testing.T) {
	c, _ := bigRestrictCST(t)
	o := order.PathBased(c.Tree, c)
	cfg := PartitionConfig{
		// Tight budgets force deep recursive splitting, i.e. many restricts.
		MaxSizeBytes:  c.SizeBytes() / 64,
		MaxCandDegree: 64,
	}

	full := Partition(c, o, cfg, func(*CST) {})
	if full < 2 {
		t.Fatalf("fixture produced %d pieces uncancelled, want >= 2", full)
	}

	for _, tc := range []struct {
		name string
		run  func(cfg PartitionConfig, process func(*CST)) int
	}{
		{"sequential", func(cfg PartitionConfig, process func(*CST)) int {
			return Partition(c, o, cfg, process)
		}},
		{"unordered", func(cfg PartitionConfig, process func(*CST)) int {
			return PartitionConcurrent(c, o, cfg, ConcurrentOptions{Workers: 4}, process)
		}},
		{"ordered", func(cfg PartitionConfig, process func(*CST)) int {
			return PartitionConcurrent(c, o, cfg, ConcurrentOptions{Workers: 4, Ordered: true}, process)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ccfg := cfg
			var polls atomic.Int64
			// Let a little work happen, then cancel — the fire point lands
			// inside restrict loops as often as between pieces, covering the
			// nil-return path in every producer.
			ccfg.Cancel = func() bool { return polls.Add(1) > 8 }
			var produced atomic.Int64
			count := tc.run(ccfg, func(*CST) { produced.Add(1) })
			if int64(count) < produced.Load() {
				t.Errorf("returned count %d < delivered pieces %d", count, produced.Load())
			}
			if count >= full {
				t.Errorf("cancelled run delivered %d pieces, want < uncancelled %d", count, full)
			}
		})
	}
}
