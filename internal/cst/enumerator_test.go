package cst

import (
	"sync"
	"testing"
)

// TestEnumeratorResetReuse: one Enumerator cycled through every partition
// piece must produce the same per-piece counts as a fresh Enumerate call —
// Reset fully re-derives the hoisted CSR state, leaving nothing of the
// previous piece behind.
func TestEnumeratorResetReuse(t *testing.T) {
	c, o, cfg := ldbcCST(t, "q5")
	var e Enumerator
	var reused, fresh int64
	pieces := 0
	Partition(c, o, cfg, func(p *CST) {
		pieces++
		e.Reset(p, o)
		reused += e.Run(nil)
		fresh += Count(p, o)
	})
	if pieces < 2 {
		t.Fatalf("only %d pieces; config not tight enough to exercise reuse", pieces)
	}
	if reused != fresh {
		t.Fatalf("reused enumerator counted %d, fresh Enumerate %d", reused, fresh)
	}
	if want := Count(c, o); reused != want {
		t.Fatalf("piece total %d != unpartitioned count %d", reused, want)
	}
}

// TestEnumeratorRunCounted: RunCounted must stop exactly at the grant
// budget and count only granted embeddings — the δ-share contract
// host.Match's count-only path relies on.
func TestEnumeratorRunCounted(t *testing.T) {
	c, o, _ := ldbcCST(t, "q1")
	total := Count(c, o)
	if total < 10 {
		t.Fatalf("workload too small: %d embeddings", total)
	}
	for _, budget := range []int64{0, 1, total / 2, total, total + 5} {
		var granted int64
		var e Enumerator
		e.Reset(c, o)
		got := e.RunCounted(func() bool {
			if granted >= budget {
				return false
			}
			granted++
			return true
		})
		want := budget
		if want > total {
			want = total
		}
		if got != want {
			t.Errorf("budget %d: RunCounted = %d, want %d", budget, got, want)
		}
	}
}

// TestEnumeratorPooledConcurrentPartition: pooled enumerators draining a
// concurrent partition stream (the EnumerateParallel shape) must agree with
// the sequential count. Run under -race this covers prepared-Enumerator
// reuse while the partitioner is still producing pieces on other goroutines.
func TestEnumeratorPooledConcurrentPartition(t *testing.T) {
	c, o, cfg := ldbcCST(t, "q5")
	want := Count(c, o)
	var pool sync.Pool
	for _, workers := range []int{2, 4} {
		var mu sync.Mutex
		var total int64
		PartitionConcurrent(c, o, cfg, ConcurrentOptions{Workers: workers}, func(p *CST) {
			e, _ := pool.Get().(*Enumerator)
			if e == nil {
				e = new(Enumerator)
			}
			defer pool.Put(e)
			e.Reset(p, o)
			n := e.Run(nil)
			mu.Lock()
			total += n
			mu.Unlock()
		})
		if total != want {
			t.Fatalf("workers=%d: pooled total %d, want %d", workers, total, want)
		}
	}
}

// TestEnumerateAllocsSteadyState is the CSR/Enumerate allocation gate: after
// a warm-up Reset+Run has sized the Enumerator's hoist buffers, re-running
// the same piece allocates nothing — the prepared shape walks the CST with
// pooled scratch only. A regression here means a per-embedding or per-Reset
// allocation crept back into the hot enumeration loop.
func TestEnumerateAllocsSteadyState(t *testing.T) {
	c, o, _ := ldbcCST(t, "q5")
	var e Enumerator
	e.Reset(c, o)
	want := e.Run(nil)
	if want < 100 {
		t.Fatalf("workload too small for the gate: %d embeddings", want)
	}
	allocs := testing.AllocsPerRun(10, func() {
		e.Reset(c, o)
		if got := e.Run(nil); got != want {
			t.Fatalf("count drifted: %d vs %d", got, want)
		}
	})
	if allocs > 0 {
		t.Errorf("steady-state Reset+Run allocates %v times per run; want 0", allocs)
	}
}

// TestPartitionAllocsBounded gates the satellite fix for the carry-over
// allocations: eager stats folding (no per-CST sync.Once) and the reusable
// restrict target buffer. Measured cost is ~13 allocations per emitted piece
// (the piece's own CST, Cand headers, arenas); the memoised/per-piece-CSR
// version cost ~90, so the bound below catches either regression while
// leaving headroom for Go version drift.
func TestPartitionAllocsBounded(t *testing.T) {
	c, o, cfg := ldbcCST(t, "q5")
	pieces := 0
	allocs := testing.AllocsPerRun(5, func() {
		pieces = Partition(c, o, cfg, func(p *CST) {})
	})
	if pieces < 4 {
		t.Fatalf("only %d pieces; config not tight enough for the gate", pieces)
	}
	const perPiece = 30
	if budget := float64(perPiece * pieces); allocs > budget {
		t.Errorf("Partition allocates %v per run for %d pieces (%.1f/piece); want <= %d/piece",
			allocs, pieces, allocs/float64(pieces), perPiece)
	}
}
