package cst

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fastmatch/graph"
	"fastmatch/internal/order"
)

// TestPartitionBoundsCandDegree: with only the δD threshold active, every
// partition's maximum candidate degree must not exceed it (unless candidate
// sets degenerate to singletons) — the Port_max constraint of Section VI-A.
func TestPartitionBoundsCandDegree(t *testing.T) {
	g := graph.RandomPowerLaw(graph.GenConfig{NumVertices: 600, NumLabels: 2, AvgDegree: 8, Seed: 17})
	rng := rand.New(rand.NewSource(17))
	q := graph.RandomConnectedQuery("rq", 3, 1, 2, rng)
	tr := order.BuildBFSTree(q, order.SelectRoot(q, g))
	c := Build(q, g, tr)
	if c.MaxCandDegree() <= 4 {
		t.Skipf("CST max degree %d too small", c.MaxCandDegree())
	}
	o := order.PathBased(tr, c)
	cfg := PartitionConfig{MaxSizeBytes: 1 << 40, MaxCandDegree: 4}
	violations := 0
	parts := Partition(c, o, cfg, func(p *CST) {
		if p.MaxCandDegree() > 4 {
			allSingleton := true
			for u := 0; u < p.Query.NumVertices(); u++ {
				if len(p.Cand[u]) > 1 {
					allSingleton = false
				}
			}
			if !allSingleton {
				violations++
			}
		}
	})
	if parts < 2 {
		t.Fatalf("expected splitting, got %d partitions", parts)
	}
	if violations > 0 {
		t.Errorf("%d partitions violate δD with splittable candidate sets", violations)
	}
}

// TestPartitionDegreeCompleteness: δD-driven partitioning conserves
// embeddings just like δS-driven partitioning.
func TestPartitionDegreeCompleteness(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomPowerLaw(graph.GenConfig{
			NumVertices: 150, NumLabels: 2, AvgDegree: 6, Seed: seed,
		})
		q := graph.RandomConnectedQuery("rq", 2+rng.Intn(3), rng.Intn(2), 2, rng)
		tr := order.BuildBFSTree(q, 0)
		c := Build(q, g, tr)
		o := order.PathBased(tr, c)
		full := embeddingSet(CollectAll(c, o))
		cfg := PartitionConfig{MaxSizeBytes: 1 << 40, MaxCandDegree: 2}
		union := make(map[string]bool)
		ok := true
		Partition(c, o, cfg, func(p *CST) {
			for _, e := range CollectAll(p, o) {
				if union[e.Key()] {
					ok = false
				}
				union[e.Key()] = true
			}
		})
		return ok && setsEqual(union, full)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPartitionEmptyPartsSkipped: restrictions that strand every candidate
// of some vertex must be dropped, not processed.
func TestPartitionEmptyPartsSkipped(t *testing.T) {
	c := fig4CST()
	o := order.Order{0, 1, 2, 3}
	cfg := PartitionConfig{MaxSizeBytes: 64, MaxCandDegree: 1}
	Partition(c, o, cfg, func(p *CST) {
		if p.IsEmpty() {
			t.Error("empty partition processed")
		}
	})
}

// subtreeOf is markSubtree with a fresh marker, the pre-scratch shape the
// tests below were written against.
func subtreeOf(t *order.Tree, u graph.QueryVertex) []bool {
	in := make([]bool, t.Query.NumVertices())
	markSubtree(t, u, in)
	return in
}

// TestSubtreeOf covers the subtree marker used by restriction.
func TestSubtreeOf(t *testing.T) {
	q := graph.MustQuery("t", []graph.Label{0, 1, 2, 3, 4},
		[][2]graph.QueryVertex{{0, 1}, {0, 2}, {1, 3}, {1, 4}})
	tr := order.BuildBFSTree(q, 0)
	in := subtreeOf(tr, 1)
	want := map[graph.QueryVertex]bool{1: true, 3: true, 4: true}
	for u := 0; u < 5; u++ {
		if in[u] != want[u] {
			t.Errorf("subtreeOf(1)[%d] = %v", u, in[u])
		}
	}
	root := subtreeOf(tr, 0)
	for u := 0; u < 5; u++ {
		if !root[u] {
			t.Errorf("subtreeOf(root) misses %d", u)
		}
	}
}
