package cst

import (
	"runtime/debug"
	"sync"
	"sync/atomic"

	"fastmatch/internal/order"
)

// ConcurrentOptions configures PartitionConcurrent.
type ConcurrentOptions struct {
	// Workers is the size of the bounded task pool the restrict-and-recurse
	// steps run on; <= 1 degrades to the sequential Partition.
	Workers int
	// Ordered replays the exact sequential schedule: process calls and
	// cfg.Steal offers happen on the caller's goroutine, in the order and
	// with the arguments Partition would use, while the restrict work for
	// upcoming pieces runs ahead on the pool. Without Ordered, pieces are
	// streamed to process from the worker goroutines as soon as they become
	// valid, in nondeterministic order.
	Ordered bool
}

// PartitionConcurrent is Partition with the producer itself parallelised:
// Algorithm 2's recursion is unrolled into a bounded task pool in which every
// restrict-and-recurse step on a still-violating piece is an independently
// schedulable task, so on a multi-core host the partitioner no longer
// serialises in front of the kernel fan-out (the Amdahl bottleneck the
// ROADMAP names once kernels drain in parallel). The produced pieces are
// identical to Partition's — restrict is deterministic and the split tree
// does not depend on execution order — only the goroutine and (in unordered
// mode) the order of delivery differ.
//
// In unordered mode process is invoked concurrently from the pool goroutines
// and must be safe for concurrent calls; cfg.Steal is serialised internally
// (offers never overlap, so the FAST-SHARE δ-share hook needs no locking of
// its own), but the offer order is nondeterministic, so a stateful Steal may
// accept different pieces run to run. Disjointness and union-exactness of
// the pieces hold regardless, so totals that sum over pieces are unaffected.
//
// In ordered mode the caller's goroutine delivers process calls and Steal
// offers in the byte-identical sequential order while workers speculatively
// restrict ahead; a piece Steal accepts has its subtree marked abandoned, so
// speculating workers skip its descendants instead of materialising pieces
// the drain will discard (already-computed pieces are simply dropped). This
// is the mode host.Match uses: Algorithm 3's δ routing sees partitions in
// the exact order the sequential pipeline does, keeping the δ split,
// partition counts and embedding totals deterministic.
//
// The return value counts processed plus stolen pieces, exactly like
// Partition (deterministic in ordered mode and whenever cfg.Steal is nil).
func PartitionConcurrent(c *CST, o order.Order, cfg PartitionConfig, opt ConcurrentOptions, process func(*CST)) int {
	if opt.Workers <= 1 {
		return Partition(c, o, cfg, process)
	}
	if opt.Ordered {
		return partitionOrdered(c, o, cfg, opt.Workers, process)
	}
	return partitionUnordered(c, o, cfg, opt.Workers, process)
}

// partitionPool is a bounded LIFO task pool. LIFO scheduling makes the
// workers expand the split tree depth-first, which keeps the set of live
// intermediate CSTs close to the sequential recursion's footprint instead of
// materialising a whole breadth-first frontier. Every worker owns one
// restrictScratch handed to each task it runs, so the restrict steps reuse
// their bookkeeping buffers across tasks instead of allocating per piece.
type partitionPool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	stack  []func(*restrictScratch)
	active int
	cancel func() bool // the caller's Cancel hook; folded into cancelled with abort

	// abort is set when a task panics (and by the ordered drain when its
	// own delivery panics): remaining tasks shrink to near-no-ops exactly
	// as under a cancellation, so the pool drains fast and every worker
	// exits. panicked records the first worker panic for the caller-side
	// rethrow.
	abort    atomic.Bool
	panicMu  sync.Mutex
	panicked *WorkerPanic
}

func newPartitionPool(cancel func() bool) *partitionPool {
	p := &partitionPool{cancel: cancel}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// cancelled is the pool's stop poll, folding the caller's Cancel hook with
// the panic-abort flag; the producers install it as their PartitionConfig
// Cancel so tasks, restricts and the ordered drain all observe a worker
// panic the way they observe a cancellation.
func (p *partitionPool) cancelled() bool {
	if p.abort.Load() {
		return true
	}
	return p.cancel != nil && p.cancel()
}

// runTask executes one task under the worker's recover barrier: a panic is
// recorded (first one wins) and aborts the pool instead of killing the
// worker, so the pop loop's bookkeeping always runs and waiters never block
// on a dead worker.
func (p *partitionPool) runTask(t func(*restrictScratch), sc *restrictScratch) {
	defer func() {
		if r := recover(); r != nil {
			p.recordPanic(r, debug.Stack())
		}
	}()
	t(sc)
}

func (p *partitionPool) recordPanic(value any, stack []byte) {
	p.abort.Store(true)
	p.panicMu.Lock()
	if p.panicked == nil {
		p.panicked = &WorkerPanic{Value: value, Stack: stack}
	}
	p.panicMu.Unlock()
}

// rethrow re-throws the first recorded worker panic on the calling
// goroutine; the caller must only invoke it after the workers have exited.
func (p *partitionPool) rethrow() {
	p.panicMu.Lock()
	wp := p.panicked
	p.panicMu.Unlock()
	if wp != nil {
		panic(wp)
	}
}

func (p *partitionPool) push(t func(*restrictScratch)) {
	p.mu.Lock()
	p.stack = append(p.stack, t)
	p.mu.Unlock()
	p.cond.Signal()
}

// run is one worker's loop: pop and execute tasks until the stack is empty
// and no task is running anywhere (a running task may still push new ones).
// The pop loop itself must drain the stack to terminate — a cancelled pool
// stops producing because each popped task polls sc.cancel inside restrict,
// shrinking every task to a near-no-op rather than abandoning the stack.
//
//fastmatch:nolint cancelpoll drain protocol: tasks poll sc.cancel internally; the pop loop must empty the stack to release waiters
func (p *partitionPool) run() {
	sc := &restrictScratch{cancel: p.cancelled}
	p.mu.Lock()
	for {
		for len(p.stack) == 0 && p.active > 0 {
			p.cond.Wait()
		}
		if len(p.stack) == 0 {
			p.mu.Unlock()
			return
		}
		t := p.stack[len(p.stack)-1]
		p.stack = p.stack[:len(p.stack)-1]
		p.active++
		p.mu.Unlock()
		p.runTask(t, sc)
		p.mu.Lock()
		p.active--
		if p.active == 0 && len(p.stack) == 0 {
			p.cond.Broadcast() // drained: wake every idle worker to exit
		}
	}
}

// splitAt mirrors one level of Partition's recursion: the clamped partition
// factor at order position index, or 1 when the CST cannot be split there.
func splitAt(cur *CST, o order.Order, cfg PartitionConfig, index int) (u int, k int) {
	u = o[index]
	k = cfg.partitionFactor(cur)
	if k > len(cur.Cand[u]) {
		k = len(cur.Cand[u])
	}
	return u, k
}

// partitionUnordered streams valid pieces to process from the workers as
// they appear. Structure mirrors Partition's rec exactly; each chunk's
// restrict is its own task, and each task executes its first child inline so
// the queue only carries the extra parallelism.
func partitionUnordered(c *CST, o order.Order, cfg PartitionConfig, workers int, process func(*CST)) int {
	var (
		count   atomic.Int64
		stealMu sync.Mutex
		pool    = newPartitionPool(cfg.Cancel)
	)
	// Tasks observe a sibling's panic the way they observe a cancellation:
	// the pool folds its abort flag into the stop poll, so after a worker
	// panic the remaining tasks drain cheaply and the pool quiesces.
	cfg.Cancel = pool.cancelled
	steal := func(cur *CST) bool {
		if cfg.Steal == nil {
			return false
		}
		stealMu.Lock()
		defer stealMu.Unlock()
		return cfg.Steal(cur)
	}
	var handle func(sc *restrictScratch, cur *CST, index int)
	var handleChunk func(sc *restrictScratch, cur *CST, index, i, k int)
	handle = func(sc *restrictScratch, cur *CST, index int) {
		for {
			if cfg.cancelled() {
				return
			}
			if cfg.Fits(cur) || index >= len(o) {
				process(cur)
				count.Add(1)
				return
			}
			if steal(cur) {
				count.Add(1)
				return
			}
			_, k := splitAt(cur, o, cfg, index)
			if k <= 1 {
				index++ // cannot split at o[index]; move on, like rec(cur, index+1)
				continue
			}
			for i := 1; i < k; i++ {
				i := i
				pool.push(func(sc *restrictScratch) { handleChunk(sc, cur, index, i, k) })
			}
			handleChunk(sc, cur, index, 0, k)
			return
		}
	}
	handleChunk = func(sc *restrictScratch, cur *CST, index, i, k int) {
		if cfg.cancelled() {
			return
		}
		u := o[index]
		part := restrict(cur, u, evenChunk(len(cur.Cand[u]), k, i), sc)
		if part == nil {
			return // cancelled mid-restrict: stop producing
		}
		if part.IsEmpty() {
			return // restriction stranded a branch: no embeddings here
		}
		switch {
		case cfg.Fits(part):
			process(part)
			count.Add(1)
		case len(part.Cand[u]) == 1:
			handle(sc, part, index+1)
		default:
			handle(sc, part, index)
		}
	}
	pool.push(func(sc *restrictScratch) { handle(sc, c, 0) })
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pool.run()
		}()
	}
	wg.Wait()
	pool.rethrow()
	return int(count.Load())
}

// onode is one node of the ordered mode's split tree: either a valid piece
// to emit, an empty restriction to skip, or a still-violating CST whose
// Steal offer and children are replayed at drain time. Workers fill a node
// in and close ready; the caller's drain walks the tree in sequential order.
type onode struct {
	ready     chan struct{}
	readyOnce sync.Once // closeReady: panic paths and normal paths may both fire
	piece     *CST      // non-nil: emit (Fits, or atomic with the order exhausted)
	steal     *CST      // non-nil: violating; offer Steal, then descend children
	children  []*onode  // in sequential (chunk) order
	// parent links the node to the split-tree node it was speculated under;
	// stolen is set by the drain when cfg.Steal takes this node. A worker
	// about to compute a node first walks the parent chain: any stolen
	// ancestor means the drain will never visit this subtree, so the
	// restrict work would be pure waste and is skipped (the node reads as
	// an empty restriction; its ready channel still closes).
	parent *onode
	stolen atomic.Bool
}

// closeReady closes the node's ready channel exactly once. Compute paths
// close it as early as they can (so the drain runs concurrently with
// speculation) and additionally guarantee it via defer — a panicking task
// must never leave the drain blocked on a channel nobody will close.
func (n *onode) closeReady() { n.readyOnce.Do(func() { close(n.ready) }) }

// abandoned reports whether this node or any ancestor was taken by Steal.
// The chain is as deep as the split tree, which is logarithmic in practice.
func (n *onode) abandoned() bool {
	for a := n; a != nil; a = a.parent {
		if a.stolen.Load() {
			return true
		}
	}
	return false
}

// testOrderedHook, when non-nil, receives ordered-mode lifecycle events:
// "chunk-start" before a speculative chunk task's skip checks,
// "chunk-restrict" when the task proceeds to its restrict, and "stolen"
// right after the drain marks a Steal-taken node. Tests install it (before
// the producer starts, removed after it returns) to hold workers at the
// gate until a Steal decision lands, making the speculation-skip behaviour
// deterministic to observe. Always nil in production.
var testOrderedHook func(event string)

// partitionOrdered computes the split tree on the pool while the caller's
// goroutine drains it in the byte-identical sequential order. Workers run
// ahead of Steal decisions speculatively: once the drain lets Steal take a
// node, the node is marked stolen and speculating workers skip every
// descendant not yet computed (pieces already materialised are discarded) —
// the waste is bounded by the restricts in flight at decision time instead
// of the whole stolen subtree.
//
// Speculation is not backpressured: when process is much slower than
// restrict (kernel execution inline, or a blocking channel send), workers
// can materialise the whole split tree ahead of the drain, so peak memory
// approaches the sum of all piece sizes instead of the sequential
// recursion's live path. Fine at the scales this repo models; a bounded
// speculation window that doesn't deadlock against the DFS drain cursor is
// a ROADMAP item before partitioning data graphs that dwarf host RAM.
func partitionOrdered(c *CST, o order.Order, cfg PartitionConfig, workers int, process func(*CST)) int {
	pool := newPartitionPool(cfg.Cancel)
	// Tasks and the drain observe a worker panic the way they observe a
	// cancellation (the pool folds its abort flag into the stop poll), so
	// speculation collapses and the workers quiesce after a panic.
	cfg.Cancel = pool.cancelled

	// computeNode fills n for one rec(cur, index) invocation; computeChunk
	// is one iteration of rec's split loop (the restrict task). Both close
	// n.ready as early as possible on their normal paths and guarantee the
	// close via defer: a panic between node creation and the explicit close
	// must not leave the drain blocked forever — that was the pre-barrier
	// deadlock.
	var computeNode func(sc *restrictScratch, n *onode, cur *CST, index int)
	var computeChunk func(sc *restrictScratch, n *onode, cur *CST, index, i, k int)
	computeNode = func(sc *restrictScratch, n *onode, cur *CST, index int) {
		defer n.closeReady()
		if cfg.cancelled() || n.abandoned() {
			// Abandon speculation: the node reads as an empty restriction.
			return
		}
		if cfg.Fits(cur) || index >= len(o) {
			n.piece = cur
			return
		}
		n.steal = cur
		_, k := splitAt(cur, o, cfg, index)
		if k <= 1 {
			// Sequential rec(cur, index+1): one child node so the drain
			// replays the repeated Steal offer at the next order position.
			child := &onode{ready: make(chan struct{}), parent: n}
			n.children = []*onode{child}
			n.closeReady()
			computeNode(sc, child, cur, index+1)
			return
		}
		// Work from a local snapshot of the children: once ready closes, the
		// n.children field belongs to the drain, which nils it after its
		// visit — without waiting for speculating workers — so no compute
		// path may touch the field (or index through it) past this point.
		children := make([]*onode, k)
		//fastmatch:nolint cancelpoll k is the split fan-out from splitAt (chunk count), not candidate data
		for i := range children {
			children[i] = &onode{ready: make(chan struct{}), parent: n}
		}
		n.children = children
		n.closeReady()
		for i := 1; i < k; i++ {
			child, i := children[i], i
			pool.push(func(sc *restrictScratch) { computeChunk(sc, child, cur, index, i, k) })
		}
		computeChunk(sc, children[0], cur, index, 0, k)
	}
	computeChunk = func(sc *restrictScratch, n *onode, cur *CST, index, i, k int) {
		defer n.closeReady()
		if testOrderedHook != nil {
			testOrderedHook("chunk-start")
		}
		if cfg.cancelled() || n.abandoned() {
			return
		}
		if testOrderedHook != nil {
			testOrderedHook("chunk-restrict")
		}
		u := o[index]
		part := restrict(cur, u, evenChunk(len(cur.Cand[u]), k, i), sc)
		if part == nil {
			// Cancelled mid-restrict: the node reads as an empty restriction.
			return
		}
		if part.IsEmpty() {
			return // empty node: drain skips it
		}
		next := index
		if len(part.Cand[u]) == 1 {
			next = index + 1
		}
		// A fitting part short-circuits to a leaf inside computeNode, so
		// this covers all three arms of the sequential switch.
		computeNode(sc, n, part, next)
	}

	root := &onode{ready: make(chan struct{})}
	pool.push(func(sc *restrictScratch) { computeNode(sc, root, c, 0) })
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pool.run()
		}()
	}

	count := 0
	var drain func(n *onode)
	drain = func(n *onode) {
		if cfg.cancelled() {
			// Stop delivering. Nodes left unvisited are still filled in (or
			// abandoned) by the workers, which close every ready channel, so
			// nothing below ever blocks on us again.
			return
		}
		<-n.ready
		if n.piece != nil {
			process(n.piece)
			count++
			return
		}
		if n.steal == nil {
			return // empty restriction
		}
		if cfg.Steal != nil && cfg.Steal(n.steal) {
			// Mark before returning: speculating workers poll the chain and
			// stop expanding this subtree; whatever they already built is
			// simply never drained.
			n.stolen.Store(true)
			if testOrderedHook != nil {
				testOrderedHook("stolen")
			}
			count++
			return
		}
		for _, child := range n.children {
			drain(child)
		}
		n.children = nil // release drained pieces promptly
	}
	// A panic out of process (or Steal) on the drain must not strand the
	// speculating workers: abort the pool, wait for them to quiesce, then
	// let the panic continue to the caller.
	func() {
		defer func() {
			if r := recover(); r != nil {
				pool.abort.Store(true)
				wg.Wait()
				panic(r)
			}
		}()
		drain(root)
	}()
	wg.Wait()
	pool.rethrow()
	return count
}
