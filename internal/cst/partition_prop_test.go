package cst

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"fastmatch/graph"
	"fastmatch/internal/order"
)

// This file is the property harness for the partition/enumerate contract the
// whole pipeline rests on (the comment in partition.go, Theorem 1): for any
// (graph, query, thresholds) and for every producer — sequential Partition,
// PartitionConcurrent unordered, PartitionConcurrent ordered —
//
//	(a) every piece satisfies cfg.Fits or is atomic (all candidate sets
//	    singleton, so no split can shrink it further),
//	(b) the pieces' search spaces are pairwise disjoint,
//	(c) the union of per-piece Enumerate counts equals the unpartitioned
//	    count and an independent brute-force oracle over the data graph.
//
// Scaling the producer without this harness is how a silent wrong-count
// ships; every randomized pair below runs against all producers.

// bruteCount is the CST-free oracle: label-filtered injective backtracking
// directly over the data graph, checking every query edge. It shares no code
// with Build/Enumerate, so agreement is meaningful.
func bruteCount(q *graph.Query, g *graph.Graph) int64 {
	n := q.NumVertices()
	mapped := make([]graph.VertexID, n)
	used := make(map[graph.VertexID]bool)
	var rec func(u int) int64
	rec = func(u int) int64 {
		if u == n {
			return 1
		}
		var total int64
		for _, v := range g.VerticesWithLabel(q.Label(u)) {
			if used[v] {
				continue
			}
			ok := true
			for _, un := range q.Neighbors(u) {
				if un < u && !g.HasEdge(mapped[un], v) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			mapped[u] = v
			used[v] = true
			total += rec(u + 1)
			delete(used, v)
		}
		return total
	}
	return rec(0)
}

// propCase is one randomized (graph, query, thresholds) triple.
type propCase struct {
	seed int64
	g    *graph.Graph
	q    *graph.Query
	c    *CST
	o    order.Order
	cfg  PartitionConfig
}

// randomPropCase derives everything deterministically from seed so failures
// reproduce from the logged seed alone.
func randomPropCase(seed int64) propCase {
	rng := rand.New(rand.NewSource(seed))
	g := graph.RandomUniform(graph.GenConfig{
		NumVertices: 30 + rng.Intn(50),
		NumLabels:   2 + rng.Intn(2),
		AvgDegree:   2.5 + rng.Float64()*2,
		Seed:        seed,
	})
	q := graph.RandomConnectedQuery("prop", 2+rng.Intn(3), rng.Intn(3), g.NumLabels(), rng)
	tr := order.BuildBFSTree(q, order.SelectRoot(q, g))
	c := Build(q, g, tr)
	o := order.PathBased(tr, c)
	cfg := PartitionConfig{
		// Tight, randomized thresholds force deep recursive partitioning on
		// most seeds while leaving some single-piece cases in the mix.
		MaxSizeBytes:  c.SizeBytes()/int64(2+rng.Intn(7)) + 32,
		MaxCandDegree: 2 + rng.Intn(5),
	}
	if rng.Intn(4) == 0 {
		cfg.FixedK = 2 + rng.Intn(3) // the Fig. 8 fixed-k mode rides along
	}
	return propCase{seed: seed, g: g, q: q, c: c, o: o, cfg: cfg}
}

// atomic reports whether no candidate set of p can be split further.
func atomicPiece(p *CST) bool {
	for u := 0; u < p.Query.NumVertices(); u++ {
		if len(p.Cand[u]) > 1 {
			return false
		}
	}
	return true
}

// checkPieces asserts invariants (a)–(c) over the collected pieces of one
// producer run. label names the producer for failure messages.
func checkPieces(t *testing.T, pc propCase, label string, pieces []*CST, produced int, want int64) {
	t.Helper()
	if produced != len(pieces) {
		t.Errorf("seed %d %s: produced %d pieces but process saw %d", pc.seed, label, produced, len(pieces))
		return
	}
	var sum int64
	union := make(map[string]int)
	for pi, p := range pieces {
		if err := p.Validate(pc.g); err != nil {
			t.Errorf("seed %d %s: piece %d invalid: %v", pc.seed, label, pi, err)
			return
		}
		if !pc.cfg.Fits(p) && !atomicPiece(p) {
			t.Errorf("seed %d %s: piece %d violates thresholds (size=%d maxDeg=%d) and is not atomic",
				pc.seed, label, pi, p.SizeBytes(), p.MaxCandDegree())
			return
		}
		n := Enumerate(p, pc.o, func(e graph.Embedding) bool {
			if prev, dup := union[e.Key()]; dup {
				t.Errorf("seed %d %s: embedding %v in pieces %d and %d — search spaces overlap",
					pc.seed, label, e, prev, pi)
				return false
			}
			union[e.Key()] = pi
			return true
		})
		sum += n
	}
	if sum != want {
		t.Errorf("seed %d %s: union of piece counts = %d, want %d", pc.seed, label, sum, want)
	}
	if int64(len(union)) != want {
		t.Errorf("seed %d %s: %d distinct embeddings across pieces, want %d", pc.seed, label, len(union), want)
	}
}

// TestPartitionEnumerateProperties is the main harness: >= 100 randomized
// graph/query pairs (the acceptance floor), each checked for all producers
// and several pool sizes. Runs race-clean under -race, which is what makes
// the concurrent producers' process collection below meaningful.
func TestPartitionEnumerateProperties(t *testing.T) {
	const pairs = 110
	for seed := int64(0); seed < pairs; seed++ {
		pc := randomPropCase(seed)
		want := Count(pc.c, pc.o)
		if brute := bruteCount(pc.q, pc.g); brute != want {
			t.Fatalf("seed %d: CST count %d disagrees with brute force %d", seed, want, brute)
		}

		var seq []*CST
		seqN := Partition(pc.c, pc.o, pc.cfg, func(p *CST) { seq = append(seq, p) })
		checkPieces(t, pc, "Partition", seq, seqN, want)

		for _, workers := range []int{2, 4} {
			var mu sync.Mutex
			var got []*CST
			n := PartitionConcurrent(pc.c, pc.o, pc.cfg, ConcurrentOptions{Workers: workers}, func(p *CST) {
				mu.Lock()
				got = append(got, p)
				mu.Unlock()
			})
			checkPieces(t, pc, fmt.Sprintf("PartitionConcurrent(workers=%d)", workers), got, n, want)
		}

		var ordered []*CST
		ordN := PartitionConcurrent(pc.c, pc.o, pc.cfg, ConcurrentOptions{Workers: 3, Ordered: true},
			func(p *CST) { ordered = append(ordered, p) })
		checkPieces(t, pc, "PartitionConcurrent(ordered)", ordered, ordN, want)
		if ordN != seqN {
			t.Errorf("seed %d: ordered produced %d pieces, sequential %d", seed, ordN, seqN)
		}
	}
}

// TestPartitionOrderedByteIdenticalSchedule pins the ordered mode's whole
// contract: the sequence of deliveries — Steal offers and processed pieces,
// with their candidate-set contents — is byte-identical to sequential
// Partition's, including the δ-share Steal decisions, which here follow a
// deterministic accept-every-third script.
func TestPartitionOrderedByteIdenticalSchedule(t *testing.T) {
	signature := func(p *CST) string {
		return fmt.Sprintf("%v", p.Cand)
	}
	trace := func(run func(cfg PartitionConfig, process func(*CST)) int, cfg PartitionConfig) ([]string, int) {
		var events []string
		offers := 0
		cfg.Steal = func(p *CST) bool {
			offers++
			take := offers%3 == 0
			events = append(events, fmt.Sprintf("steal(%v)=%s", take, signature(p)))
			return take
		}
		n := run(cfg, func(p *CST) {
			events = append(events, "emit="+signature(p))
		})
		return events, n
	}

	for seed := int64(200); seed < 220; seed++ {
		pc := randomPropCase(seed)
		seqEvents, seqN := trace(func(cfg PartitionConfig, process func(*CST)) int {
			return Partition(pc.c, pc.o, cfg, process)
		}, pc.cfg)
		for _, workers := range []int{2, 3, 5} {
			ordEvents, ordN := trace(func(cfg PartitionConfig, process func(*CST)) int {
				return PartitionConcurrent(pc.c, pc.o, cfg, ConcurrentOptions{Workers: workers, Ordered: true}, process)
			}, pc.cfg)
			if ordN != seqN {
				t.Fatalf("seed %d workers=%d: count %d, sequential %d", seed, workers, ordN, seqN)
			}
			if len(ordEvents) != len(seqEvents) {
				t.Fatalf("seed %d workers=%d: %d events, sequential %d", seed, workers, len(ordEvents), len(seqEvents))
			}
			for i := range seqEvents {
				if ordEvents[i] != seqEvents[i] {
					t.Fatalf("seed %d workers=%d: event %d differs:\n  ordered:    %s\n  sequential: %s",
						seed, workers, i, ordEvents[i], seqEvents[i])
				}
			}
		}
	}
}

// TestPartitionConcurrentStolenUnionStaysExact: with an unordered concurrent
// producer and a Steal hook racing the emission stream, the stolen pieces
// and the processed pieces together still partition the search space — the
// invariant host.Match's δ-share rests on.
func TestPartitionConcurrentStolenUnionStaysExact(t *testing.T) {
	for seed := int64(300); seed < 330; seed++ {
		pc := randomPropCase(seed)
		want := Count(pc.c, pc.o)
		var mu sync.Mutex
		var all []*CST // processed + stolen: must union exactly
		offers := 0
		pc.cfg.Steal = func(p *CST) bool {
			// Serialized by PartitionConcurrent, so plain state is safe.
			offers++
			if offers%2 == 1 {
				return false
			}
			mu.Lock()
			all = append(all, p)
			mu.Unlock()
			return true
		}
		n := PartitionConcurrent(pc.c, pc.o, pc.cfg, ConcurrentOptions{Workers: 4}, func(p *CST) {
			mu.Lock()
			all = append(all, p)
			mu.Unlock()
		})
		if n != len(all) {
			t.Fatalf("seed %d: count %d but %d pieces seen", seed, n, len(all))
		}
		var sum int64
		union := make(map[string]bool)
		for _, p := range all {
			sum += Enumerate(p, pc.o, func(e graph.Embedding) bool {
				if union[e.Key()] {
					t.Fatalf("seed %d: duplicate embedding across stolen+processed pieces", seed)
				}
				union[e.Key()] = true
				return true
			})
		}
		if sum != want {
			t.Fatalf("seed %d: stolen+processed union %d, want %d", seed, sum, want)
		}
	}
}
