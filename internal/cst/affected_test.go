package cst

import (
	"math/rand"
	"testing"

	"fastmatch/graph"
	"fastmatch/internal/order"
)

// affectedFixture builds a random graph + connected query and returns the
// prepared (CST, order).
func affectedFixture(t *testing.T, rng *rand.Rand) (*graph.Query, *CST, order.Order) {
	t.Helper()
	g := graph.RandomUniform(graph.GenConfig{
		NumVertices: 40,
		NumLabels:   3,
		AvgDegree:   4,
		Seed:        rng.Int63(),
	})
	q := graph.RandomConnectedQuery("aff", 3+rng.Intn(2), rng.Intn(2), 3, rng)
	root := order.SelectRoot(q, g)
	tree := order.BuildBFSTree(q, root)
	c := Build(q, g, tree)
	o := order.PathBased(tree, c)
	return q, c, o
}

// TestAffectedEnumerateOracle: EnumerateAffected must return exactly the
// embeddings of CollectAll that touch a dirty vertex — each exactly once —
// for random dirty sets of varying density, including empty and
// all-vertices.
func TestAffectedEnumerateOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		_, c, o := affectedFixture(t, rng)
		all := CollectAll(c, o)

		dirtySet := make(map[graph.VertexID]bool)
		switch trial % 4 {
		case 0: // sparse
			for i := 0; i < 3; i++ {
				dirtySet[graph.VertexID(rng.Intn(40))] = true
			}
		case 1: // dense
			for v := 0; v < 40; v++ {
				if rng.Intn(2) == 0 {
					dirtySet[graph.VertexID(v)] = true
				}
			}
		case 2: // everything is dirty: affected = all
			for v := 0; v < 40; v++ {
				dirtySet[graph.VertexID(v)] = true
			}
		case 3: // nothing is dirty: affected = none
		}
		dirty := func(v graph.VertexID) bool { return dirtySet[v] }

		want := make(map[string]int)
		for _, em := range all {
			touches := false
			for _, v := range em {
				if dirtySet[v] {
					touches = true
					break
				}
			}
			if touches {
				want[em.Key()]++
			}
		}
		got := make(map[string]int)
		n := EnumerateAffected(c, o, dirty, func(em graph.Embedding) bool {
			got[em.Key()]++
			return true
		})
		if int(n) != len(got) {
			t.Fatalf("trial %d: returned count %d but emitted %d distinct", trial, n, len(got))
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: affected %d embeddings, oracle %d (dirty=%d, all=%d)",
				trial, len(got), len(want), len(dirtySet), len(all))
		}
		for k, cnt := range got {
			if cnt != 1 {
				t.Fatalf("trial %d: embedding %s emitted %d times, want exactly once", trial, k, cnt)
			}
			if want[k] == 0 {
				t.Fatalf("trial %d: emitted embedding %s does not touch the dirty set", trial, k)
			}
		}
	}
}

// TestAffectedEnumerateEarlyStop: a refusing emit stops enumeration; the
// refused embedding still counts, matching Enumerate's contract.
func TestAffectedEnumerateEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		_, c, o := affectedFixture(t, rng)
		dirty := func(graph.VertexID) bool { return true } // affected = all
		total := EnumerateAffected(c, o, dirty, nil)
		if total < 2 {
			continue
		}
		var seen int64
		n := EnumerateAffected(c, o, dirty, func(graph.Embedding) bool {
			seen++
			return seen < 2
		})
		if n != 2 || seen != 2 {
			t.Fatalf("early stop: n=%d seen=%d, want 2 each (total %d)", n, seen, total)
		}
		return
	}
	t.Skip("no fixture with ≥2 embeddings found")
}

// TestAffectedEnumerateNilEmitCounts: count-only mode agrees with the
// collecting mode.
func TestAffectedEnumerateNilEmitCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		_, c, o := affectedFixture(t, rng)
		dirtySet := map[graph.VertexID]bool{3: true, 17: true, 29: true}
		dirty := func(v graph.VertexID) bool { return dirtySet[v] }
		n := EnumerateAffected(c, o, dirty, nil)
		if m := int64(len(CollectAffected(c, o, dirty))); n != m {
			t.Fatalf("trial %d: count-only %d != collected %d", trial, n, m)
		}
	}
}
