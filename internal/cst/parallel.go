package cst

import (
	"sync"
	"sync/atomic"

	"fastmatch/internal/order"
)

// PartitionParallel is Partition with a parallel consumption mode: the
// recursive splitter (Algorithm 2) runs on the caller's goroutine exactly as
// in Partition, but finished pieces are handed to a bounded pool of
// `workers` goroutines instead of being processed inline — the software
// analogue of the paper's multi-PE intra-query parallelism, where many CST
// partitions occupy processing elements concurrently while the partitioner
// keeps producing. process receives the worker index (0 ≤ worker <
// workers) so callers can keep per-worker partial results and merge them
// after the return, avoiding shared counters; process must otherwise be
// safe for concurrent calls. cfg.Steal, when set, is still invoked
// synchronously on the caller's goroutine.
//
// The partition pieces, their count (the return value) and the split
// decisions are byte-identical to Partition's — only the goroutine that
// consumes each piece differs. workers <= 1 degrades to the sequential
// Partition.
//
// This is the self-contained parallel consumption mode, and the reference
// the race-detector parity tests pin down. host.Match's Workers mode
// deliberately does NOT build on it: Algorithm 3's δ routing must run on
// the producer goroutine in emission order to stay deterministic, while
// process here runs on the workers — any change to partition-consumption
// semantics must keep the two in agreement (the shared contract is exactly
// the paragraph above).
func PartitionParallel(c *CST, o order.Order, cfg PartitionConfig, workers int, process func(worker int, p *CST)) int {
	if workers <= 1 {
		return Partition(c, o, cfg, func(p *CST) { process(0, p) })
	}
	ch := make(chan *CST, workers*2)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for p := range ch {
				process(w, p)
			}
		}(w)
	}
	n := Partition(c, o, cfg, func(p *CST) { ch <- p })
	close(ch)
	wg.Wait()
	return n
}

// EnumerateParallel partitions c under cfg and counts the embeddings of
// every piece across `workers` goroutines. Since PR 2 it runs on
// PartitionConcurrent's unordered task pool, so the partitioning work itself
// (the restrict calls) shares the pool with the per-piece enumeration
// instead of serialising in front of it. Because partitions have disjoint
// search spaces whose union is exactly c's (the Partition property Theorem 1
// rests on), the total equals Count(c, o) and is deterministic regardless of
// workers or delivery order. cfg.Steal is ignored: a stolen piece would
// leave this function's count, breaking that guarantee — callers that split
// work elsewhere want PartitionParallel or PartitionConcurrent directly.
// cfg.Cancel is honoured: once it fires, partitioning stops and pieces not
// yet enumerated are skipped, so the returned total is a partial count.
func EnumerateParallel(c *CST, o order.Order, cfg PartitionConfig, workers int) int64 {
	cfg.Steal = nil
	if workers < 1 {
		workers = 1
	}
	var total atomic.Int64
	var enums sync.Pool // *Enumerator per draining goroutine, reused across pieces
	PartitionConcurrent(c, o, cfg, ConcurrentOptions{Workers: workers}, func(p *CST) {
		if cfg.cancelled() {
			return
		}
		e, _ := enums.Get().(*Enumerator)
		if e == nil {
			e = new(Enumerator)
		}
		// Return e to the pool only after a clean Run: a panicking
		// enumeration (recovered by the partition pool's worker barrier)
		// may have left it inconsistent, so it is dropped instead.
		ok := false
		defer func() {
			if ok {
				enums.Put(e)
			}
		}()
		e.Reset(p, o)
		total.Add(e.Run(nil))
		ok = true
	})
	return total.Load()
}
