package cst

import (
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"fastmatch/internal/order"
	"fastmatch/ldbc"
)

// ldbcCST builds the CST and path order for one benchmark query over a
// small LDBC-like graph, plus a partition config tight enough to force a
// real multi-partition workload.
func ldbcCST(t *testing.T, name string) (*CST, order.Order, PartitionConfig) {
	t.Helper()
	g := ldbc.Generate(ldbc.Config{ScaleFactor: 1, BasePersons: 120, Seed: 7})
	q, err := ldbc.QueryByName(name)
	if err != nil {
		t.Fatal(err)
	}
	tr := order.BuildBFSTree(q, order.SelectRoot(q, g))
	c := Build(q, g, tr)
	o := order.PathBased(tr, c)
	cfg := PartitionConfig{MaxSizeBytes: c.SizeBytes()/6 + 64, MaxCandDegree: 16}
	return c, o, cfg
}

// TestEnumerateParallelMatchesSequential: the per-worker counters of
// EnumerateParallel must merge to exactly the sequential totals — both the
// unpartitioned Count and the partition-by-partition sum — on the LDBC
// queries, for any pool size. Run under -race this also proves the pieces
// are consumed without shared-state races.
func TestEnumerateParallelMatchesSequential(t *testing.T) {
	for _, name := range []string{"q1", "q2", "q3", "q4", "q5"} {
		c, o, cfg := ldbcCST(t, name)
		want := Count(c, o)
		var seqSum int64
		seqParts := Partition(c, o, cfg, func(p *CST) { seqSum += Enumerate(p, o, nil) })
		if seqSum != want {
			t.Fatalf("%s: partitioned sequential sum %d, want %d", name, seqSum, want)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			if got := EnumerateParallel(c, o, cfg, workers); got != want {
				t.Errorf("%s workers=%d: EnumerateParallel = %d, want %d", name, workers, got, want)
			}
		}
		if seqParts < 2 {
			t.Errorf("%s: only %d partitions — config not tight enough to exercise the pool", name, seqParts)
		}
	}
}

// TestPartitionParallelDeterministic: the pieces PartitionParallel produces
// are byte-identical to Partition's — same count, and the same multiset of
// per-piece embedding counts — regardless of which worker consumes which.
func TestPartitionParallelDeterministic(t *testing.T) {
	c, o, cfg := ldbcCST(t, "q2")
	var seq []int64
	seqN := Partition(c, o, cfg, func(p *CST) { seq = append(seq, Enumerate(p, o, nil)) })

	const workers = 4
	perWorker := make([][]int64, workers)
	parN := PartitionParallel(c, o, cfg, workers, func(w int, p *CST) {
		perWorker[w] = append(perWorker[w], Enumerate(p, o, nil))
	})
	if parN != seqN {
		t.Fatalf("parallel produced %d pieces, sequential %d", parN, seqN)
	}
	var par []int64
	for _, counts := range perWorker {
		par = append(par, counts...)
	}
	sortI64 := func(s []int64) { sort.Slice(s, func(i, j int) bool { return s[i] < s[j] }) }
	sortI64(seq)
	sortI64(par)
	if len(par) != len(seq) {
		t.Fatalf("got %d processed pieces, want %d", len(par), len(seq))
	}
	for i := range seq {
		if par[i] != seq[i] {
			t.Fatalf("per-piece count multiset differs at %d: %d vs %d", i, par[i], seq[i])
		}
	}
}

// TestPartitionParallelPoolBounds: worker indices stay in range and no more
// than `workers` process calls are ever in flight.
func TestPartitionParallelPoolBounds(t *testing.T) {
	c, o, cfg := ldbcCST(t, "q3")
	const workers = 3
	var inFlight, peak atomic.Int32
	var mu sync.Mutex
	PartitionParallel(c, o, cfg, workers, func(w int, p *CST) {
		if w < 0 || w >= workers {
			t.Errorf("worker index %d out of range", w)
		}
		cur := inFlight.Add(1)
		mu.Lock()
		if cur > peak.Load() {
			peak.Store(cur)
		}
		mu.Unlock()
		Enumerate(p, o, nil)
		inFlight.Add(-1)
	})
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent process calls, pool bound is %d", p, workers)
	}
}

// TestPartitionParallelSinglePiece: more workers than pieces degrades
// gracefully (the unsplit CST comes back through worker 0's channel read or
// any other — totals still match).
func TestPartitionParallelSinglePiece(t *testing.T) {
	c, o, _ := ldbcCST(t, "q1")
	loose := PartitionConfig{MaxSizeBytes: 1 << 40, MaxCandDegree: 1 << 30}
	want := Count(c, o)
	if got := EnumerateParallel(c, o, loose, 8); got != want {
		t.Errorf("single-piece parallel count %d, want %d", got, want)
	}
}
