package cst

import (
	"sync/atomic"
	"testing"
	"time"
)

// runWithPanicGuard runs fn on its own goroutine and returns the value it
// panicked with (nil for a clean return), failing the test if fn is still
// blocked after the timeout — the pre-barrier deadlock this file pins down.
func runWithPanicGuard(t *testing.T, timeout time.Duration, fn func()) any {
	t.Helper()
	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		fn()
	}()
	select {
	case r := <-done:
		return r
	case <-time.After(timeout):
		t.Fatalf("partitioner still blocked after %v: worker panic deadlocked the drain", timeout)
		return nil
	}
}

// TestWorkerPanicRethrownUnordered: a panic in a process callback delivered
// on an unordered pool worker (the path EnumerateParallel's per-piece
// enumeration runs on) must not kill the worker goroutine — before the
// worker recover barrier it crashed the whole process. The pool records the
// panic, drains the remaining tasks like a cancellation, and re-throws it
// on the caller's goroutine as a *WorkerPanic carrying the original value.
func TestWorkerPanicRethrownUnordered(t *testing.T) {
	c, o, cfg := ldbcCST(t, "q2")
	var fired atomic.Bool
	r := runWithPanicGuard(t, 30*time.Second, func() {
		PartitionConcurrent(c, o, cfg, ConcurrentOptions{Workers: 4}, func(p *CST) {
			if fired.CompareAndSwap(false, true) {
				panic("boom in process")
			}
		})
	})
	wp, ok := r.(*WorkerPanic)
	if !ok {
		t.Fatalf("recovered %v (%T), want *WorkerPanic", r, r)
	}
	if wp.Value != "boom in process" {
		t.Fatalf("WorkerPanic value = %v, want the original panic value", wp.Value)
	}
	if len(wp.Stack) == 0 {
		t.Fatal("WorkerPanic carries no worker stack")
	}
}

// TestWorkerPanicOrderedDrainNoDeadlock: a panic inside a speculative
// restrict task must not strand the ordered drain. Before the recover
// barrier the dying worker skipped both its pool bookkeeping and the
// close of its split-tree ready channel, so the caller's drain — and every
// sibling worker waiting on the pool condition — blocked forever. Now the
// node's ready close is deferred, the pool aborts like a cancellation, and
// the panic is re-thrown on the caller once the workers have quiesced.
func TestWorkerPanicOrderedDrainNoDeadlock(t *testing.T) {
	c, o, cfg := ldbcCST(t, "q3")
	var fired atomic.Bool
	testOrderedHook = func(event string) {
		if event == "chunk-restrict" && fired.CompareAndSwap(false, true) {
			panic("boom in restrict task")
		}
	}
	defer func() { testOrderedHook = nil }()
	r := runWithPanicGuard(t, 30*time.Second, func() {
		PartitionConcurrent(c, o, cfg, ConcurrentOptions{Workers: 4, Ordered: true}, func(p *CST) {})
	})
	wp, ok := r.(*WorkerPanic)
	if !ok {
		t.Fatalf("recovered %v (%T), want *WorkerPanic", r, r)
	}
	if wp.Value != "boom in restrict task" {
		t.Fatalf("WorkerPanic value = %v, want the original panic value", wp.Value)
	}
}

// TestDrainPanicQuiescesWorkers: a panic thrown by the ordered drain's own
// process callback (the caller's goroutine) aborts the speculating workers
// before propagating, so no pool goroutine outlives the call.
func TestDrainPanicQuiescesWorkers(t *testing.T) {
	c, o, cfg := ldbcCST(t, "q1")
	r := runWithPanicGuard(t, 30*time.Second, func() {
		first := true
		PartitionConcurrent(c, o, cfg, ConcurrentOptions{Workers: 4, Ordered: true}, func(p *CST) {
			if first {
				first = false
				panic("boom in drain process")
			}
		})
	})
	if r != "boom in drain process" {
		t.Fatalf("recovered %v, want the drain's own panic value", r)
	}
}
