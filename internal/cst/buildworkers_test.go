package cst

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"fastmatch/graph"
	"fastmatch/internal/order"
	"fastmatch/ldbc"
)

// requireSameCST fails unless a and b are structurally identical: same
// candidate sets, same adjacency lists for every directed query edge, and
// same cached stats. This is the contract BuildWorkers promises for every
// worker count.
func requireSameCST(t *testing.T, a, b *CST) {
	t.Helper()
	nq := a.Query.NumVertices()
	if nq != b.Query.NumVertices() {
		t.Fatalf("query size differs: %d vs %d", nq, b.Query.NumVertices())
	}
	for u := graph.QueryVertex(0); u < nq; u++ {
		ca, cb := a.Candidates(u), b.Candidates(u)
		if len(ca) != len(cb) {
			t.Fatalf("u%d: %d vs %d candidates", u, len(ca), len(cb))
		}
		for i := range ca {
			if ca[i] != cb[i] {
				t.Fatalf("u%d: candidate %d differs: %v vs %v", u, i, ca[i], cb[i])
			}
		}
	}
	for from := graph.QueryVertex(0); from < nq; from++ {
		for to := graph.QueryVertex(0); to < nq; to++ {
			ea, eb := a.Edge(from, to), b.Edge(from, to)
			if ea.Valid() != eb.Valid() {
				t.Fatalf("edge %d->%d: validity differs", from, to)
			}
			if !ea.Valid() {
				continue
			}
			if len(ea.Offsets) != len(eb.Offsets) || len(ea.Targets) != len(eb.Targets) {
				t.Fatalf("edge %d->%d: shape differs (%d/%d offsets, %d/%d targets)",
					from, to, len(ea.Offsets), len(eb.Offsets), len(ea.Targets), len(eb.Targets))
			}
			for i := range ea.Offsets {
				if ea.Offsets[i] != eb.Offsets[i] {
					t.Fatalf("edge %d->%d: offset %d differs", from, to, i)
				}
			}
			for i := range ea.Targets {
				if ea.Targets[i] != eb.Targets[i] {
					t.Fatalf("edge %d->%d: target %d differs", from, to, i)
				}
			}
		}
	}
	if a.SizeBytes() != b.SizeBytes() || a.MaxCandDegree() != b.MaxCandDegree() {
		t.Fatalf("stats differ: size %d vs %d, maxDeg %d vs %d",
			a.SizeBytes(), b.SizeBytes(), b.MaxCandDegree(), b.MaxCandDegree())
	}
}

// TestBuildWorkersMatchesSequential: for every worker count the parallel
// build must produce a CST byte-identical to the sequential Build — the
// chunked keep-filter preserves order and the adjacency assembler runs
// serially, so nothing may depend on scheduling.
func TestBuildWorkersMatchesSequential(t *testing.T) {
	g := ldbc.Generate(ldbc.Config{ScaleFactor: 1, BasePersons: 150, Seed: 11})
	for _, name := range []string{"q1", "q2", "q5"} {
		q, err := ldbc.QueryByName(name)
		if err != nil {
			t.Fatal(err)
		}
		tr := order.BuildBFSTree(q, order.SelectRoot(q, g))
		want := Build(q, g, tr)
		for _, workers := range []int{0, 1, 2, 3, 4, 8} {
			t.Run(fmt.Sprintf("%s/workers=%d", name, workers), func(t *testing.T) {
				got := BuildWorkers(q, g, tr, workers)
				requireSameCST(t, want, got)
				if err := got.Validate(g); err != nil {
					t.Fatalf("parallel build invalid: %v", err)
				}
			})
		}
	}
}

// TestBuildWorkersRandomGraphs drives the equivalence over random graphs
// whose candidate counts straddle the parallel threshold, so both the
// serial fallback and the chunked path are exercised.
func TestBuildWorkersRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		n := 50 + rng.Intn(2000)
		labels := 1 + rng.Intn(3)
		b := graph.NewBuilder(n, labels)
		for i := 0; i < n; i++ {
			b.AddVertex(graph.Label(rng.Intn(labels)))
		}
		for e := 0; e < n*3; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				b.AddEdge(graph.VertexID(u), graph.VertexID(v))
			}
		}
		g := b.MustBuild()
		q, err := ldbc.QueryByName("q1")
		if err != nil {
			t.Fatal(err)
		}
		tr := order.BuildBFSTree(q, order.SelectRoot(q, g))
		want := Build(q, g, tr)
		got := BuildWorkers(q, g, tr, 4)
		requireSameCST(t, want, got)
	}
}

// TestBuildWorkersConcurrentBuilds runs several parallel builds at once over
// a shared immutable data graph. Under -race this pins down that
// BuildWorkers keeps all mutable state (stamps, chunk counters, assembler)
// private per build.
func TestBuildWorkersConcurrentBuilds(t *testing.T) {
	g := ldbc.Generate(ldbc.Config{ScaleFactor: 1, BasePersons: 150, Seed: 11})
	q, err := ldbc.QueryByName("q5")
	if err != nil {
		t.Fatal(err)
	}
	tr := order.BuildBFSTree(q, order.SelectRoot(q, g))
	want := Build(q, g, tr)
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := BuildWorkers(q, g, tr, 3)
			// Compare sizes only from goroutines (t.Fatalf is main-only);
			// the full structural check runs once below.
			if got.SizeBytes() != want.SizeBytes() {
				t.Errorf("concurrent build diverged: size %d vs %d", got.SizeBytes(), want.SizeBytes())
			}
		}()
	}
	wg.Wait()
	requireSameCST(t, want, BuildWorkers(q, g, tr, 3))
}

// TestParallelKeep pins the chunked order-preserving filter against the
// serial path for random inputs, worker counts and predicates.
func TestParallelKeep(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(5000)
		vs := make([]graph.VertexID, n)
		for i := range vs {
			vs[i] = graph.VertexID(rng.Intn(1 << 20))
		}
		mod := graph.VertexID(1 + rng.Intn(7))
		keep := func(v graph.VertexID) bool { return v%mod != 0 }

		var want []graph.VertexID
		for _, v := range vs {
			if keep(v) {
				want = append(want, v)
			}
		}
		workers := 1 + rng.Intn(8)
		got := parallelKeep(append([]graph.VertexID(nil), vs...), workers, keep)
		if len(got) != len(want) {
			t.Fatalf("trial %d (workers=%d): kept %d, want %d", trial, workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d (workers=%d): index %d: %v vs %v", trial, workers, i, got[i], want[i])
			}
		}
	}
}
