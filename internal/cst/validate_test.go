package cst

import (
	"strings"
	"testing"

	"fastmatch/graph"
)

// corruptibleCST builds a small real CST (Fig. 4 shape) the corruption tests
// below can damage; each test re-derives a fresh one.
func corruptibleCST(t *testing.T) *CST {
	t.Helper()
	c := fig4CST()
	if err := c.Validate(nil); err != nil {
		t.Fatalf("fixture CST invalid: %v", err)
	}
	return c
}

// TestValidateDenseLayout covers the dense-adjacency invariants Validate
// must catch: a mis-sized table, adjacency installed for a non-edge of q, a
// missing reverse direction, an out-of-range target and a broken mirror.
func TestValidateDenseLayout(t *testing.T) {
	t.Run("table-size", func(t *testing.T) {
		c := corruptibleCST(t)
		c.adj = c.adj[:len(c.adj)-1]
		if err := c.Validate(nil); err == nil || !strings.Contains(err.Error(), "dense tables") {
			t.Errorf("truncated adj table not caught: %v", err)
		}
	})
	t.Run("non-edge-adjacency", func(t *testing.T) {
		c := corruptibleCST(t)
		// {1,2} is not an edge of the fig4 query (edges: 0-1, 0-2, 1-3).
		c.setAdj(1, 2, Adj{Offsets: make([]int32, len(c.Cand[1])+1)})
		if err := c.Validate(nil); err == nil || !strings.Contains(err.Error(), "non-edge") {
			t.Errorf("non-edge adjacency not caught: %v", err)
		}
	})
	t.Run("missing-reverse", func(t *testing.T) {
		c := corruptibleCST(t)
		c.setAdj(1, 0, Adj{})
		if err := c.Validate(nil); err == nil ||
			!(strings.Contains(err.Error(), "missing reverse") || strings.Contains(err.Error(), "missing adjacency")) {
			t.Errorf("missing reverse adjacency not caught: %v", err)
		}
	})
	t.Run("out-of-range-target", func(t *testing.T) {
		c := corruptibleCST(t)
		a := c.Edge(0, 1)
		a.Targets[0] = CandIndex(len(c.Cand[1])) // one past the end
		if err := c.Validate(nil); err == nil || !strings.Contains(err.Error(), "out of range") {
			t.Errorf("out-of-range target not caught: %v", err)
		}
	})
	t.Run("broken-mirror", func(t *testing.T) {
		c := corruptibleCST(t)
		// Drop every edge from the reverse direction but keep the forward
		// entries: each forward entry is now unmirrored.
		rev := c.edgeRef(1, 0)
		rev.Targets = rev.Targets[:0]
		for i := range rev.Offsets {
			rev.Offsets[i] = 0
		}
		if err := c.Validate(nil); err == nil || !strings.Contains(err.Error(), "not mirrored") {
			t.Errorf("broken mirror not caught: %v", err)
		}
	})
	t.Run("edge-absent-from-G", func(t *testing.T) {
		c := corruptibleCST(t)
		// A data graph sharing the candidate id space but missing the
		// claimed edges: every adjacency entry must fail the G cross-check.
		b := graph.NewBuilder(12, 1)
		for i := 0; i < 12; i++ {
			b.AddVertex(0)
		}
		b.AddEdge(0, 11)
		g := b.MustBuild()
		if err := c.Validate(g); err == nil || !strings.Contains(err.Error(), "absent from G") {
			t.Errorf("phantom data edge not caught: %v", err)
		}
	})
}

// TestValidateAcceptsBuiltAndRestricted: Build outputs and restrict outputs
// (which share unchanged adjacency lists with their parent) both satisfy the
// dense-layout invariants against the originating graph.
func TestValidateAcceptsBuiltAndRestricted(t *testing.T) {
	c, o, cfg := ldbcCST(t, "q2")
	pieces := 0
	Partition(c, o, cfg, func(p *CST) {
		pieces++
		if err := p.Validate(nil); err != nil {
			t.Fatalf("piece %d invalid: %v", pieces, err)
		}
	})
	if pieces < 2 {
		t.Fatalf("partition produced %d pieces; thresholds not tight enough", pieces)
	}
}
