package cst

import (
	"sync/atomic"
	"testing"

	"fastmatch/graph"
	"fastmatch/internal/order"
	"fastmatch/ldbc"
)

// FuzzPartitionCounts fuzzes the partition/enumerate invariant across
// threshold space, including the degenerate δS/δD values a caller can hand
// PartitionConfig (zero, negative, or absurdly tiny budgets, and fixed-k
// overrides): whatever the thresholds, partitioning must terminate and the
// per-piece counts must union to exactly the unpartitioned count, for the
// sequential producer and both concurrent modes.
//
// corpus selects the subject: 0 is the paper's Fig. 1 running example, 1 is
// LDBC q1 over a small generated social network (the two seeds below), and
// anything else derives a random graph/query pair from seed.
func FuzzPartitionCounts(f *testing.F) {
	// Seed corpus: the Fig. 1 example with the default-ish thresholds, the
	// same with degenerate δS/δD, and LDBC q1 with a budget tight enough to
	// force splits plus a fixed-k variant.
	f.Add(uint8(0), int64(1), int64(256), 4, 0, uint8(2))
	f.Add(uint8(0), int64(1), int64(0), -1, 0, uint8(3))
	f.Add(uint8(0), int64(2), int64(-7), 0, 3, uint8(4))
	f.Add(uint8(1), int64(7), int64(2048), 8, 0, uint8(2))
	f.Add(uint8(1), int64(7), int64(1), 1, 2, uint8(4))
	f.Add(uint8(2), int64(99), int64(512), 3, 0, uint8(2))

	f.Fuzz(func(t *testing.T, corpus uint8, seed int64, maxSize int64, maxDeg, fixedK int, workers uint8) {
		var (
			q *graph.Query
			g *graph.Graph
		)
		switch corpus % 3 {
		case 0:
			q, g = fig1Query(), fig1Data()
		case 1:
			g = ldbc.Generate(ldbc.Config{ScaleFactor: 1, BasePersons: 40, Seed: 1 + seed%4})
			var err error
			q, err = ldbc.QueryByName("q1")
			if err != nil {
				t.Fatal(err)
			}
		default:
			pc := randomPropCase(seed & 0xffff)
			q, g = pc.q, pc.g
		}
		tr := order.BuildBFSTree(q, order.SelectRoot(q, g))
		c := Build(q, g, tr)
		o := order.PathBased(tr, c)

		// Clamp only magnitudes, never signs: zero and negative thresholds
		// are the degenerate cases under test (they make Fits always false
		// while contributing nothing to the partition factor, driving the
		// recursion to atomic pieces or the order's end).
		if maxSize > c.SizeBytes()*2 {
			maxSize = c.SizeBytes() * 2
		}
		if maxDeg > 1<<16 {
			maxDeg = 1 << 16
		}
		if fixedK < 0 {
			fixedK = -fixedK
		}
		cfg := PartitionConfig{
			MaxSizeBytes:  maxSize,
			MaxCandDegree: maxDeg,
			FixedK:        fixedK % 6,
		}
		w := int(workers%4) + 1

		want := Count(c, o)
		var seqSum int64
		seqN := Partition(c, o, cfg, func(p *CST) { seqSum += Enumerate(p, o, nil) })
		if seqSum != want {
			t.Fatalf("Partition: piece counts union to %d, want %d (cfg=%+v)", seqSum, want, cfg)
		}

		var unordSum atomic.Int64
		PartitionConcurrent(c, o, cfg, ConcurrentOptions{Workers: w}, func(p *CST) {
			unordSum.Add(Enumerate(p, o, nil))
		})
		if unordSum.Load() != want {
			t.Fatalf("PartitionConcurrent(workers=%d): union %d, want %d (cfg=%+v)", w, unordSum.Load(), want, cfg)
		}

		var ordSum int64
		ordN := PartitionConcurrent(c, o, cfg, ConcurrentOptions{Workers: w, Ordered: true}, func(p *CST) {
			ordSum += Enumerate(p, o, nil)
		})
		if ordSum != want {
			t.Fatalf("PartitionConcurrent(ordered, workers=%d): union %d, want %d (cfg=%+v)", w, ordSum, want, cfg)
		}
		if ordN != seqN {
			t.Fatalf("ordered produced %d pieces, sequential %d (cfg=%+v)", ordN, seqN, cfg)
		}
	})
}
