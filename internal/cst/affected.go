package cst

import (
	"fastmatch/graph"
	"fastmatch/internal/order"
)

// Affected-region enumeration for incremental (continuous-query) matching:
// given a CST over one graph epoch and the set of data vertices a delta
// batch touched, enumerate exactly the embeddings that map at least one
// query vertex to a touched ("dirty") vertex — the only embeddings whose
// existence can differ between the epochs, since any embedding avoiding
// every dirty vertex uses only edges both epochs share.
//
// Exactly-once is achieved without dedup by partitioning the affected
// embeddings on u0 := min{u : dirty(em[u])} (minimum over query-vertex
// ids): pass u0 constrains u < u0 to clean candidates, u == u0 to dirty
// ones, and leaves u > u0 free. The passes' outputs are disjoint and their
// union is the affected set.

const (
	classFree int8 = iota
	classMustDirty
	classMustClean
)

// affectedEnum drives one constrained backtracking pass over an
// Enumerator's prepared hoists (candAt/parentAdj/check views), adding only
// the per-query-vertex class filter. It deliberately does not touch
// Enumerator.rec — the static hot path keeps its alloc-gated shape.
type affectedEnum struct {
	e       *Enumerator
	class   []int8 // per query vertex
	dirty   func(graph.VertexID) bool
	emit    func(graph.Embedding) bool
	count   int64
	stopped bool
}

func (a *affectedEnum) rec(depth int) {
	e := a.e
	if depth == e.n {
		a.count++
		if a.emit != nil {
			em := make(graph.Embedding, e.n)
			for d, u := range e.o {
				em[u] = e.mVert[d]
			}
			if !a.emit(em) {
				a.stopped = true
			}
		}
		return
	}
	cand := e.candAt[depth]
	cl := a.class[e.o[depth]]
	if depth == 0 {
		for ci := CandIndex(0); int(ci) < len(cand); ci++ {
			v := cand[ci]
			if (cl == classMustDirty && !a.dirty(v)) || (cl == classMustClean && a.dirty(v)) {
				continue
			}
			e.mIdx[0] = ci
			e.mVert[0] = v
			a.rec(1)
			if a.stopped {
				return
			}
		}
		return
	}
	cands := e.parentAdj[depth].Neighbors(e.mIdx[e.parentPos[depth]])
	chkLo, chkHi := e.checkOff[depth], e.checkOff[depth+1]
next:
	for _, ci := range cands {
		v := cand[ci]
		if (cl == classMustDirty && !a.dirty(v)) || (cl == classMustClean && a.dirty(v)) {
			continue
		}
		for d := 0; d < depth; d++ { // visited validation
			if e.mVert[d] == v {
				continue next
			}
		}
		for k := chkLo; k < chkHi; k++ { // edge validation
			if !e.checkAdj[k].Has(ci, e.mIdx[e.checkPos[k]]) {
				continue next
			}
		}
		e.mIdx[depth] = ci
		e.mVert[depth] = v
		a.rec(depth + 1)
		if a.stopped {
			return
		}
	}
}

// EnumerateAffected invokes emit for every embedding in c that maps at
// least one query vertex to a vertex dirty reports true for, exactly once
// each, and returns how many it found. A pass is skipped outright when u0's
// candidate set contains no dirty vertex, so a batch that misses the
// query's candidate space entirely costs one scan of the candidate arrays
// and no backtracking. Emit may return false to stop early (the refusing
// embedding still counts, matching Enumerate). A nil emit counts only.
func EnumerateAffected(c *CST, o order.Order, dirty func(graph.VertexID) bool, emit func(graph.Embedding) bool) int64 {
	if c.IsEmpty() {
		return 0
	}
	n := c.Query.NumVertices()
	var e Enumerator
	e.Reset(c, o)
	a := affectedEnum{e: &e, class: make([]int8, n), dirty: dirty, emit: emit}
	var total int64
	for u0 := 0; u0 < n; u0++ {
		anyDirty := false
		for _, v := range c.Cand[u0] {
			if dirty(v) {
				anyDirty = true
				break
			}
		}
		if !anyDirty {
			continue
		}
		for u := 0; u < n; u++ {
			switch {
			case u < u0:
				a.class[u] = classMustClean
			case u == u0:
				a.class[u] = classMustDirty
			default:
				a.class[u] = classFree
			}
		}
		a.count = 0
		a.rec(0)
		total += a.count
		if a.stopped {
			break
		}
	}
	return total
}

// CollectAffected returns the affected embeddings as a slice; the
// continuous-query layer and tests use it on delta-sized regions.
func CollectAffected(c *CST, o order.Order, dirty func(graph.VertexID) bool) []graph.Embedding {
	var out []graph.Embedding
	EnumerateAffected(c, o, dirty, func(em graph.Embedding) bool {
		out = append(out, em)
		return true
	})
	return out
}
